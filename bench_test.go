package kaas

// The benchmark harness regenerates every figure of the paper's
// evaluation (one benchmark per table/figure) plus ablation benches for
// the design choices called out in DESIGN.md.
//
// Accelerator time is modeled against a scaled virtual clock, so the
// interesting output is not ns/op but the custom metrics each benchmark
// reports (modeled seconds, reductions, throughput). Run with:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig14 -benchtime=1x

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"kaas/internal/core"
	"kaas/internal/experiments"
	"kaas/internal/psched"
	"kaas/internal/vclock"
)

// benchOpts keeps figure benchmarks fast while exercising the full path.
func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Samples: 2, Scale: 100}
}

// runFigure executes one experiment per iteration and publishes selected
// raw values as benchmark metrics.
func runFigure(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	runner, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		table, err := runner(benchOpts())
		if err != nil {
			b.Fatalf("figure %s: %v", id, err)
		}
		last = table
	}
	for key, unit := range metrics {
		v, err := last.MustGet(key)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, unit)
	}
}

func BenchmarkFig02MotivatingWorkflow(b *testing.B) {
	runFigure(b, "2", map[string]string{
		"accelerator/workflow/total": "accel_s",
		"cpu-only/workflow/total":    "cpu_s",
	})
}

func BenchmarkFig06ColdWarmSmall(b *testing.B) {
	runFigure(b, "6a", map[string]string{
		"exclusive/mean": "exclusive_s",
		"kaas/cold":      "cold_s",
		"kaas/warm_mean": "warm_s",
	})
}

func BenchmarkFig06ColdWarmLarge(b *testing.B) {
	runFigure(b, "6b", map[string]string{
		"exclusive/mean": "exclusive_s",
		"kaas/warm_mean": "warm_s",
	})
}

func BenchmarkFig07WarmOverhead(b *testing.B) {
	runFigure(b, "7", map[string]string{
		"exclusive/500/overhead": "excl_ovh_s",
		"kaas/500/overhead":      "kaas_ovh_s",
	})
}

func BenchmarkFig08Throughput(b *testing.B) {
	runFigure(b, "8", map[string]string{
		"kaas/500/gflops":    "kaas_small_gflops",
		"time/500/gflops":    "time_small_gflops",
		"kaas/18000/gflops":  "kaas_large_gflops",
		"space/18000/gflops": "space_large_gflops",
	})
}

func BenchmarkFig09Slowdown(b *testing.B) {
	runFigure(b, "9", map[string]string{
		"kaas/500/slowdown":  "kaas_small_x",
		"space/500/slowdown": "space_small_x",
	})
}

func BenchmarkFig10Energy(b *testing.B) {
	runFigure(b, "10", map[string]string{
		"kaas/500/eff": "kaas_small_fpw",
		"cpu/500/eff":  "cpu_small_fpw",
	})
}

func BenchmarkFig11Remote(b *testing.B) {
	runFigure(b, "11", map[string]string{
		"remote/4096/total": "remote_s",
		"cpu/4096/total":    "cpu_s",
	})
}

func BenchmarkFig12StrongScaling(b *testing.B) {
	runFigure(b, "12a", map[string]string{
		"warm/1": "warm_1gpu_s",
		"warm/4": "warm_4gpu_s",
	})
}

func BenchmarkFig12WeakScaling(b *testing.B) {
	runFigure(b, "12b", map[string]string{
		"warm/1": "warm_1gpu_s",
		"warm/4": "warm_4gpu_s",
	})
}

func BenchmarkFig13Autoscaling(b *testing.B) {
	runFigure(b, "13", map[string]string{
		"peak_runners": "peak_runners",
		"completions":  "completions",
	})
}

func BenchmarkFig14GPUKernels(b *testing.B) {
	runFigure(b, "14", map[string]string{
		"mci/4096/reduction": "mci_small_red",
		"ga/4096/reduction":  "ga_large_red",
	})
}

func BenchmarkFig15FPGA(b *testing.B) {
	runFigure(b, "15", map[string]string{
		"histogram/reduction": "hist_red",
		"bitmap/reduction":    "bitmap_red",
	})
}

func BenchmarkFig16TPUKernelTime(b *testing.B) {
	runFigure(b, "16a", map[string]string{
		"exclusive/7000/tpu": "excl_tpu_s",
		"kaas/7000/tpu":      "kaas_tpu_s",
	})
}

func BenchmarkFig16TPUTotalTime(b *testing.B) {
	runFigure(b, "16b", map[string]string{
		"exclusive/7000/total": "excl_total_s",
		"kaas/7000/total":      "kaas_total_s",
	})
}

func BenchmarkFig17QPU(b *testing.B) {
	runFigure(b, "17", map[string]string{
		"qasm/reduction":       "qasm_red",
		"falcon-r4t/reduction": "r4t_red",
	})
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationWarmReuse quantifies the core idea: the same platform
// serving invocations warm vs being forced cold (runners reaped after
// every task).
func BenchmarkAblationWarmReuse(b *testing.B) {
	for _, mode := range []string{"warm", "cold-every-time"} {
		b.Run(mode, func(b *testing.B) {
			opts := []Option{
				WithAccelerators(TeslaP100),
				WithoutResultComputation(),
			}
			if mode == "cold-every-time" {
				opts = append(opts, WithIdleTimeout(time.Millisecond))
			}
			p, err := New(opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			if err := p.RegisterByName("matmul"); err != nil {
				b.Fatal(err)
			}
			if mode == "warm" {
				// Absorb the initial cold start outside the measurement.
				if _, _, err := p.Invoke(context.Background(), "matmul", Params{"n": 500}, nil); err != nil {
					b.Fatal(err)
				}
			}
			var total time.Duration
			for i := 0; i < b.N; i++ {
				_, rep, err := p.Invoke(context.Background(), "matmul", Params{"n": 500}, nil)
				if err != nil {
					b.Fatal(err)
				}
				total += rep.Total()
				if mode == "cold-every-time" {
					// Let the reaper release the idle runner.
					time.Sleep(2 * time.Millisecond)
				}
			}
			b.ReportMetric(total.Seconds()/float64(b.N), "modeled_s/op")
		})
	}
}

// BenchmarkAblationTransfer compares in-band and out-of-band payload
// transfer through the TCP endpoint across payload sizes.
func BenchmarkAblationTransfer(b *testing.B) {
	p, err := New(
		WithAccelerators(TeslaP100),
		WithListenAddr("127.0.0.1:0"),
		WithoutResultComputation(),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	if err := p.RegisterByName("ga"); err != nil {
		b.Fatal(err)
	}
	c, err := p.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	for _, n := range []int{64, 1024, 4096} {
		payload := EncodeFloat64s(make([]float64, n*100))
		params := Params{"n": float64(n), "generations": 1}
		// Warm the runner.
		if _, err := c.Invoke("ga", params, payload); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("inband-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Invoke("ga", params, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("oob-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.InvokeOutOfBand("ga", params, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFusion compares a two-stage FPGA pipeline run as two
// separate warm invocations (intermediate payload crosses the host)
// against the fused kernel (intermediate stays on the device) — the
// kernel-fusion optimization of the paper's §6.
func BenchmarkAblationFusion(b *testing.B) {
	bitmap, err := KernelByName("bitmap")
	if err != nil {
		b.Fatal(err)
	}
	hist, err := KernelByName("histogram")
	if err != nil {
		b.Fatal(err)
	}
	fusedKernel, err := Fuse("fpga-pipeline", bitmap, hist)
	if err != nil {
		b.Fatal(err)
	}
	params := Params{"height": 1080, "width": 1920, "n": 2097504}

	for _, mode := range []string{"separate", "fused"} {
		b.Run(mode, func(b *testing.B) {
			p, err := New(WithAccelerators(AlveoU250), WithoutResultComputation())
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			var total time.Duration
			if mode == "fused" {
				if err := p.Register(fusedKernel); err != nil {
					b.Fatal(err)
				}
				// Warm start.
				if _, _, err := p.Invoke(context.Background(), "fpga-pipeline", params, nil); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					_, rep, err := p.Invoke(context.Background(), "fpga-pipeline", params, nil)
					if err != nil {
						b.Fatal(err)
					}
					total += rep.Total()
				}
			} else {
				// The single-slot FPGA holds one warm runner; run the
				// stages as a workflow against one registered kernel at
				// a time is not possible, so model the separate path as
				// the fused kernel's cost plus the intermediate
				// transfer both ways through a second invocation of the
				// bitmap kernel (its output equals the intermediate).
				if err := p.Register(bitmap); err != nil {
					b.Fatal(err)
				}
				if _, _, err := p.Invoke(context.Background(), "bitmap", params, nil); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					_, repA, err := p.Invoke(context.Background(), "bitmap", params, nil)
					if err != nil {
						b.Fatal(err)
					}
					// Second stage modeled as another pass over the
					// intermediate on the same runner.
					_, repB, err := p.Invoke(context.Background(), "bitmap", params, nil)
					if err != nil {
						b.Fatal(err)
					}
					total += repA.Total() + repB.Total()
				}
			}
			b.ReportMetric(total.Seconds()/float64(b.N), "modeled_s/op")
		})
	}
}

// BenchmarkAblationTransport compares remote invocation over the shaped
// 1 Gbps Ethernet link against the RDMA fabric the paper's §6 proposes.
func BenchmarkAblationTransport(b *testing.B) {
	p, err := New(
		WithAccelerators(TeslaP100),
		WithListenAddr("127.0.0.1:0"),
		WithoutResultComputation(),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	if err := p.RegisterByName("ga"); err != nil {
		b.Fatal(err)
	}
	payload := EncodeFloat64s(make([]float64, 1024*100))
	params := Params{"n": 1024, "generations": 1}

	eth, err := p.NewShapedClient()
	if err != nil {
		b.Fatal(err)
	}
	defer eth.Close()
	rdma, err := p.NewRDMAClient()
	if err != nil {
		b.Fatal(err)
	}
	defer rdma.Close()

	// Warm the runner.
	if _, err := eth.Invoke("ga", params, payload); err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		c    *Client
	}{{"ethernet-1g", eth}, {"rdma-100g", rdma}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tc.c.Invoke("ga", params, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationThreshold varies the autoscaler's in-flight threshold
// and reports how many runners a fixed concurrent burst spawns.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, threshold := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("inflight-%d", threshold), func(b *testing.B) {
			var runners float64
			for i := 0; i < b.N; i++ {
				p, err := New(
					WithAccelerators(TeslaP100, TeslaP100, TeslaP100, TeslaP100),
					WithMaxInFlight(threshold),
					WithoutResultComputation(),
				)
				if err != nil {
					b.Fatal(err)
				}
				if err := p.RegisterByName("matmul"); err != nil {
					p.Close()
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for c := 0; c < 8; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						_, _, err := p.Invoke(context.Background(), "matmul", Params{"n": 8000}, nil)
						if err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
				runners = float64(p.Stats().ColdStarts)
				p.Close()
			}
			b.ReportMetric(runners, "runners")
		})
	}
}

// BenchmarkAblationPlacement compares placement policies for a concurrent
// burst across four GPUs.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy core.PlacementPolicy
	}{
		{"least-loaded", PlaceLeastLoaded},
		{"round-robin", PlaceRoundRobin},
		{"first-fit", PlaceFirstFit},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var makespan time.Duration
			for i := 0; i < b.N; i++ {
				p, err := New(
					WithAccelerators(TeslaP100, TeslaP100, TeslaP100, TeslaP100),
					WithMaxInFlight(1),
					WithMaxRunnersPerDevice(4),
					WithPlacement(tc.policy),
					WithoutResultComputation(),
				)
				if err != nil {
					b.Fatal(err)
				}
				if err := p.RegisterByName("matmul"); err != nil {
					p.Close()
					b.Fatal(err)
				}
				start := time.Now()
				var wg sync.WaitGroup
				for c := 0; c < 4; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						_, _, err := p.Invoke(context.Background(), "matmul", Params{"n": 12000}, nil)
						if err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
				makespan = time.Since(start)
				p.Close()
			}
			b.ReportMetric(makespan.Seconds()*1000, "wall_ms")
		})
	}
}

// BenchmarkAblationSharing compares the device fabric's two scheduling
// disciplines under concurrent equal-size kernels: processor sharing
// (MPS-style, the simulator default) against FIFO (exclusive queuing).
func BenchmarkAblationSharing(b *testing.B) {
	for _, tc := range []struct {
		name       string
		discipline psched.Discipline
	}{
		{"processor-sharing", psched.ProcessorSharing},
		{"fifo", psched.FIFO},
	} {
		b.Run(tc.name, func(b *testing.B) {
			clock := vclock.Scaled(2000)
			engine, err := psched.New(clock, psched.Config{
				Capacity:   1e9,
				Discipline: tc.discipline,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer engine.Close()
			var meanLatency time.Duration
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				var mu sync.Mutex
				var total time.Duration
				for j := 0; j < 8; j++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						d, err := engine.Run(context.Background(), 1e9) // 1 modeled s
						if err != nil {
							b.Error(err)
							return
						}
						mu.Lock()
						total += d
						mu.Unlock()
					}()
				}
				wg.Wait()
				meanLatency = total / 8
			}
			b.ReportMetric(meanLatency.Seconds(), "mean_latency_s")
		})
	}
}
