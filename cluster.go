package kaas

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"kaas/internal/artifact"
	"kaas/internal/core"
)

// Cluster federates several platforms (hosts) behind one invocation API —
// the paper's federated-deployment setting (§1, §3.3): kernels are
// registered across nodes, clients invoke by name, and the cluster routes
// each invocation to the least-loaded host that serves the kernel. If one
// host cannot absorb the concurrent demand, additional hosts do (the
// horizontal-scalability story of §3.3).
type Cluster struct {
	mu        sync.Mutex
	platforms []*Platform
	inflight  []int
}

// NewCluster builds a cluster over the given platforms. Platforms should
// share a time scale so modeled durations are comparable.
func NewCluster(platforms ...*Platform) (*Cluster, error) {
	if len(platforms) == 0 {
		return nil, fmt.Errorf("kaas: cluster needs at least one platform")
	}
	for i, p := range platforms {
		if p == nil {
			return nil, fmt.Errorf("kaas: cluster platform %d is nil", i)
		}
	}
	copied := make([]*Platform, len(platforms))
	copy(copied, platforms)
	// Link the members' compiled-kernel caches (where configured, see
	// WithArtifactCache) so a kernel JIT-compiled on one host is a cache
	// hit on its peers: cross-node boots are cached-cold, not cold.
	for i, a := range copied {
		for _, b := range copied[i+1:] {
			artifact.Link(a.artifacts, b.artifacts)
		}
	}
	return &Cluster{
		platforms: copied,
		inflight:  make([]int, len(copied)),
	}, nil
}

// Size returns the number of federated hosts.
func (c *Cluster) Size() int { return len(c.platforms) }

// Register deploys a kernel on every host that has a device of its kind.
// It succeeds if at least one host accepted the kernel.
func (c *Cluster) Register(k Kernel) error {
	var registered int
	var lastErr error
	for _, p := range c.platforms {
		if err := p.Register(k); err != nil {
			lastErr = err
			continue
		}
		registered++
	}
	if registered == 0 {
		return fmt.Errorf("kaas: no host accepted kernel %q: %w", k.Name(), lastErr)
	}
	return nil
}

// RegisterByName deploys a built-in kernel across the cluster.
func (c *Cluster) RegisterByName(name string) error {
	k, err := KernelByName(name)
	if err != nil {
		return err
	}
	return c.Register(k)
}

// Invoke routes one invocation to the least-loaded host serving the
// kernel and returns its result, the report, and the index of the host
// that served it. When the picked host cannot take the work for a
// transient routing reason — it is draining, shut down, overloaded, or
// all its devices of the kernel's kind are breaker-excluded — the
// cluster fails the invocation over to the next-least-loaded serving
// host instead of surfacing the error, so one node leaving (the §3.3
// horizontal-scalability story) is invisible to callers as long as any
// other node can absorb the work. Non-routing errors (bad parameters,
// kernel failures) are returned from the first host that reported them.
func (c *Cluster) Invoke(ctx context.Context, name string, params Params, data []byte) (*Response, *Report, int, error) {
	tried := make(map[int]bool)
	var (
		lastIdx = -1
		lastErr error
	)
	for {
		idx, err := c.pick(name, tried)
		if err != nil {
			// No (further) host serves the kernel: report the last
			// transient failure if rerouting exhausted the cluster.
			if lastErr != nil {
				return nil, nil, lastIdx, lastErr
			}
			return nil, nil, -1, err
		}
		tried[idx] = true

		c.mu.Lock()
		c.inflight[idx]++
		c.mu.Unlock()
		resp, report, err := c.platforms[idx].Invoke(ctx, name, params, data)
		c.mu.Lock()
		c.inflight[idx]--
		c.mu.Unlock()

		if err == nil {
			return resp, report, idx, nil
		}
		lastIdx, lastErr = idx, fmt.Errorf("kaas: host %d: %w", idx, err)
		if !reroutable(err) || ctx.Err() != nil {
			return nil, nil, idx, lastErr
		}
	}
}

// reroutable reports whether a host error is a transient routing
// condition another host may not share, making cross-host failover safe:
// the request was rejected before any kernel executed.
func reroutable(err error) bool {
	return errors.Is(err, ErrDraining) ||
		errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrUnavailable) ||
		errors.Is(err, core.ErrServerClosed)
}

// pick selects the host with the fewest cluster-routed in-flight
// invocations among those that serve the kernel and could route it
// right now (not draining or closed, with at least one eligible device
// of the kernel's kind — a host whose every relevant breaker is open
// would only fail the invocation, so it gets none). Hosts already tried
// by this invocation are skipped. When no host is currently routable
// but some still serve the kernel, the least-loaded of those is picked
// anyway so the caller surfaces the host's own typed error (draining,
// closed, breakers open) rather than a generic routing failure.
func (c *Cluster) pick(name string, tried map[int]bool) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	best, fallback := -1, -1
	for i, p := range c.platforms {
		if tried[i] || !platformServes(p, name) {
			continue
		}
		if !p.server.Routable(name) {
			if fallback == -1 || c.inflight[i] < c.inflight[fallback] {
				fallback = i
			}
			continue
		}
		if best == -1 || c.inflight[i] < c.inflight[best] {
			best = i
		}
	}
	if best == -1 {
		best = fallback
	}
	if best == -1 {
		return -1, fmt.Errorf("kaas: no host serves kernel %q", name)
	}
	return best, nil
}

// platformServes reports whether the platform has the kernel registered.
func platformServes(p *Platform, name string) bool {
	for _, n := range p.Kernels() {
		if n == name {
			return true
		}
	}
	return false
}

// Stats returns per-host statistics.
func (c *Cluster) Stats() []Stats {
	out := make([]Stats, len(c.platforms))
	for i, p := range c.platforms {
		out[i] = p.Stats()
	}
	return out
}

// Close shuts down every host.
func (c *Cluster) Close() {
	for _, p := range c.platforms {
		p.Close()
	}
}
