// Command kaasctl is the KaaS client CLI: register kernels on a KaaS
// server, invoke them, and inspect server state.
//
// Usage:
//
//	kaasctl -server 127.0.0.1:7070 register matmul
//	kaasctl -server 127.0.0.1:7070 invoke matmul n=500 seed=7
//	kaasctl -server 127.0.0.1:7070 -timeout 5s -retries 2 invoke matmul n=500
//	kaasctl -server 127.0.0.1:7070 -tenant acme invoke matmul n=500
//	kaasctl -server 127.0.0.1:7070 list
//	kaasctl -server 127.0.0.1:7070 stats
//	kaasctl -server 127.0.0.1:7070 stats -v   # per-kernel p50/p95/p99 + device tables
//	kaasctl -server 127.0.0.1:7070 cluster status   # membership + gossiped health
//	kaasctl simulate circuit.qasm       # local quantum-circuit simulation
//
// -timeout bounds each call (deadline propagated to the server; 0 waits
// forever) and -retries retries connection-level failures with backoff.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"kaas/internal/client"
	"kaas/internal/core"
	"kaas/internal/cplane"
	"kaas/internal/kernels"
	"kaas/internal/qsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kaasctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kaasctl", flag.ContinueOnError)
	server := fs.String("server", "127.0.0.1:7070", "KaaS server address")
	timeout := fs.Duration("timeout", 0, "per-call deadline, propagated to the server (0 = none)")
	retries := fs.Int("retries", 0, "retries of connection-level failures per call")
	tenant := fs.String("tenant", "", "tenant identity stamped on every invocation (empty = server-side default tenant)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: kaasctl [-server addr] [-timeout d] [-retries n] [-tenant name] <register|invoke|list|stats|cluster> ...")
	}

	var copts []client.Option
	if *timeout > 0 {
		copts = append(copts, client.WithTimeout(*timeout))
	}
	if *retries > 0 {
		copts = append(copts, client.WithRetries(*retries+1))
	}
	if *tenant != "" {
		copts = append(copts, client.WithTenant(*tenant))
	}
	c := client.Dial(*server, copts...)
	defer c.Close()
	ctx := context.Background()

	switch rest[0] {
	case "register":
		if len(rest) != 2 {
			return fmt.Errorf("usage: kaasctl register <kernel>")
		}
		if err := c.RegisterContext(ctx, rest[1]); err != nil {
			return err
		}
		fmt.Printf("registered %s\n", rest[1])
		return nil

	case "invoke":
		if len(rest) < 2 {
			return fmt.Errorf("usage: kaasctl invoke <kernel> [key=value ...]")
		}
		params, err := parseParams(rest[2:])
		if err != nil {
			return err
		}
		res, err := c.InvokeContext(ctx, rest[1], params, nil)
		if err != nil {
			return err
		}
		start := "warm"
		switch {
		case res.Cold && res.CachedCold:
			start = "cached-cold"
		case res.Cold:
			start = "cold"
		}
		fmt.Printf("%s start, server time %v\n", start, res.ServerTime)
		keys := make([]string, 0, len(res.Values))
		for k := range res.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s = %g\n", k, res.Values[k])
		}
		if len(res.Data) > 0 {
			fmt.Printf("  payload: %d bytes\n", len(res.Data))
		}
		return nil

	case "list":
		names, err := c.ListContext(ctx)
		if err != nil {
			return err
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return nil

	case "stats":
		if len(rest) > 1 && rest[1] == "-v" {
			var stats core.Stats
			if err := c.StatsContext(ctx, &stats); err != nil {
				return err
			}
			return printVerboseStats(os.Stdout, &stats)
		}
		var stats json.RawMessage
		if err := c.StatsContext(ctx, &stats); err != nil {
			return err
		}
		var pretty map[string]any
		if err := json.Unmarshal(stats, &pretty); err != nil {
			return err
		}
		out, err := json.MarshalIndent(pretty, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil

	case "cluster":
		if len(rest) != 2 || rest[1] != "status" {
			return fmt.Errorf("usage: kaasctl cluster status")
		}
		body, err := json.Marshal(cplane.Envelope{Type: cplane.ControlStatus})
		if err != nil {
			return err
		}
		reply, err := c.ControlContext(ctx, body)
		if err != nil {
			return err
		}
		var status cplane.Status
		if err := json.Unmarshal(reply, &status); err != nil {
			return fmt.Errorf("decoding cluster status: %w", err)
		}
		return printClusterStatus(os.Stdout, &status)

	case "kernels":
		// Offline helper: list the built-in kernel library.
		for _, k := range kernels.Suite() {
			fmt.Printf("%-12s %s\n", k.Name(), k.Kind())
		}
		return nil

	case "simulate":
		// Offline helper: simulate an OpenQASM-subset circuit locally.
		if len(rest) != 2 {
			return fmt.Errorf("usage: kaasctl simulate <circuit.qasm>")
		}
		return simulate(rest[1])

	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
}

// simulate parses and runs a circuit file, printing the top basis-state
// probabilities.
func simulate(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	circuit, err := qsim.ParseCircuit(string(src))
	if err != nil {
		return err
	}
	state, err := circuit.Run()
	if err != nil {
		return err
	}
	fmt.Printf("%d qubits, %d gates\n", circuit.NumQubits, len(circuit.Gates))
	type outcome struct {
		idx int
		p   float64
	}
	outcomes := make([]outcome, 0, len(state.Amplitudes()))
	for i := range state.Amplitudes() {
		if p := state.Probability(i); p > 1e-12 {
			outcomes = append(outcomes, outcome{i, p})
		}
	}
	sort.Slice(outcomes, func(a, b int) bool { return outcomes[a].p > outcomes[b].p })
	limit := 16
	if len(outcomes) < limit {
		limit = len(outcomes)
	}
	for _, o := range outcomes[:limit] {
		fmt.Printf("  |%0*b⟩  %.6f\n", circuit.NumQubits, o.idx, o.p)
	}
	if len(outcomes) > limit {
		fmt.Printf("  ... %d more states\n", len(outcomes)-limit)
	}
	return nil
}

// printClusterStatus renders a node's membership view as a table: one
// row per member with liveness, drain state, load, shed rate, open
// breakers, and the kernels the member serves.
func printClusterStatus(w io.Writer, st *cplane.Status) error {
	fmt.Fprintf(w, "cluster view of node %s (%d members)\n\n", st.Node, len(st.Members))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tADDR\tSTATE\tBEATS\tDOWN/UP\tINFLIGHT\tSHED/S\tBREAKERS\tKERNELS")
	for _, m := range st.Members {
		state := "down"
		switch {
		case m.Self:
			state = "self"
		case m.Alive && m.Draining:
			state = "draining"
		case m.Alive:
			state = "alive"
		}
		breakers := "-"
		if n := countBreakers(m.OpenBreakers); n > 0 {
			breakers = fmt.Sprintf("%d open", n)
		}
		kernels := "-"
		if len(m.Kernels) > 0 {
			names := append([]string(nil), m.Kernels...)
			sort.Strings(names)
			kernels = strings.Join(names, ",")
		}
		addr := m.Addr
		if addr == "" {
			addr = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d/%d\t%d\t%.2f\t%s\t%s\n",
			m.Node, addr, state, m.Beats, m.Downs, m.Ups, m.InFlight, m.ShedRate, breakers, kernels)
	}
	return tw.Flush()
}

// countBreakers totals a member's per-kind open-breaker counts.
func countBreakers(open map[string]int) int {
	n := 0
	for _, c := range open {
		n += c
	}
	return n
}

// printVerboseStats renders the server's per-kernel latency distributions
// and per-device occupancy as aligned tables — the CLI view of the
// paper's Fig. 2/Fig. 7 breakdowns.
func printVerboseStats(w io.Writer, st *core.Stats) error {
	fmt.Fprintf(w, "kernels: %d  runners: %d  in-flight: %d  cold starts: %d  pre-warms: %d  failovers: %d  evictions: %d  reaps: %d\n",
		st.Kernels, st.Runners, st.InFlight, st.ColdStarts, st.PreWarms, st.Failovers, st.Evictions, st.Reaps)
	if ac := st.ArtifactCache; ac != nil {
		fmt.Fprintf(w, "artifact cache: %d entries (%s of %s)  hits: %d  misses: %d  seeded: %d  evictions: %d\n",
			ac.Entries, formatBytes(ac.UsedBytes), formatBytes(ac.BudgetBytes), ac.Hits, ac.Misses, ac.Seeded, ac.Evictions)
	}
	if dp := st.DataPlane; dp.OOBInvocations > 0 || dp.LeaseGrants > 0 || dp.ArenaCapacity > 0 {
		fmt.Fprintf(w, "data plane: oob invocations: %d (%s)  in-band: %s  leases: %d active (%s granted, %d grants, %d reuses, %d revoked)\n",
			dp.OOBInvocations, formatBytes(int64(dp.OOBBytes)), formatBytes(int64(dp.InBandBytes)),
			dp.ActiveLeases, formatBytes(dp.LeaseBytesGranted), dp.LeaseGrants, dp.LeaseReuses, dp.LeaseRevocations)
	}
	if st.Batching {
		fmt.Fprintf(w, "batching: %d invocations in %d device dispatches\n",
			st.DataPlane.BatchedInvocations, st.DataPlane.BatchDispatches)
	}
	fmt.Fprintln(w)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "KERNEL\tINV\tERR\tCOLD\tHIT/MISS\tPREWARM\tFAILOVER\tRUNNERS\tWARM p50/p95/p99\tCOLD p50/p95/p99\tCACHED-COLD p50/p95/p99")
	names := make([]string, 0, len(st.PerKernel))
	for name := range st.PerKernel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ks := st.PerKernel[name]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d/%d\t%d\t%d\t%d\t%s\t%s\t%s\n",
			name, ks.Invocations, ks.Errors, ks.ColdStarts, ks.CacheHits, ks.CacheMisses,
			ks.PreWarms, ks.Failovers, ks.Runners,
			formatPercentiles(ks.Warm), formatPercentiles(ks.Cold), formatPercentiles(ks.CachedCold))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if len(st.PerTenant) > 0 {
		fmt.Fprintln(w)
		if st.FairQueueing {
			fmt.Fprintln(w, "fair queueing: on")
		}
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "TENANT\tWEIGHT\tADMITTED\tSHED\tINFLIGHT\tQUEUED\tLAT p50/p95/p99")
		tenants := make([]string, 0, len(st.PerTenant))
		for name := range st.PerTenant {
			tenants = append(tenants, name)
		}
		sort.Strings(tenants)
		for _, name := range tenants {
			ts := st.PerTenant[name]
			fmt.Fprintf(tw, "%s\t%g\t%d\t%d\t%d\t%d\t%s\n",
				name, ts.Weight, ts.Admitted, ts.Shed, ts.InFlight, ts.Queued,
				formatPercentiles(ts.Latency))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "DEVICE\tKIND\tRUNNERS\tCTX/SLOTS\tUTIL\tBUSY\tSLOT-BUSY\tMEM\tEVICT\tREAP")
	ids := make([]string, 0, len(st.PerDevice))
	for id := range st.PerDevice {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ds := st.PerDevice[id]
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d/%d\t%.0f%%\t%s\t%s\t%s\t%d\t%d\n",
			id, ds.Kind, ds.Runners, ds.ActiveContexts, ds.Slots, ds.Utilization*100,
			formatDuration(ds.ComputeBusy), formatDuration(ds.SlotBusy),
			formatBytes(ds.MemoryUsed), ds.Evictions, ds.Reaps)
	}
	return tw.Flush()
}

// formatPercentiles renders a latency summary as "p50/p95/p99 (n=N)".
func formatPercentiles(ls core.LatencySummary) string {
	if ls.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%s/%s/%s (n=%d)",
		formatDuration(ls.P50), formatDuration(ls.P95), formatDuration(ls.P99), ls.Count)
}

// formatDuration rounds a duration to a readable precision.
func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

// formatBytes renders a byte count with a binary unit.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// parseParams converts key=value arguments to kernel params.
func parseParams(args []string) (kernels.Params, error) {
	params := make(kernels.Params, len(args))
	for _, a := range args {
		key, value, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("bad parameter %q, want key=value", a)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", a, err)
		}
		params[key] = v
	}
	return params, nil
}
