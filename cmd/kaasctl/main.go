// Command kaasctl is the KaaS client CLI: register kernels on a KaaS
// server, invoke them, and inspect server state.
//
// Usage:
//
//	kaasctl -server 127.0.0.1:7070 register matmul
//	kaasctl -server 127.0.0.1:7070 invoke matmul n=500 seed=7
//	kaasctl -server 127.0.0.1:7070 -timeout 5s -retries 2 invoke matmul n=500
//	kaasctl -server 127.0.0.1:7070 list
//	kaasctl -server 127.0.0.1:7070 stats
//	kaasctl simulate circuit.qasm       # local quantum-circuit simulation
//
// -timeout bounds each call (deadline propagated to the server; 0 waits
// forever) and -retries retries connection-level failures with backoff.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"kaas/internal/client"
	"kaas/internal/kernels"
	"kaas/internal/qsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kaasctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kaasctl", flag.ContinueOnError)
	server := fs.String("server", "127.0.0.1:7070", "KaaS server address")
	timeout := fs.Duration("timeout", 0, "per-call deadline, propagated to the server (0 = none)")
	retries := fs.Int("retries", 0, "retries of connection-level failures per call")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: kaasctl [-server addr] [-timeout d] [-retries n] <register|invoke|list|stats> ...")
	}

	var copts []client.Option
	if *timeout > 0 {
		copts = append(copts, client.WithTimeout(*timeout))
	}
	if *retries > 0 {
		copts = append(copts, client.WithRetries(*retries+1))
	}
	c := client.Dial(*server, copts...)
	defer c.Close()
	ctx := context.Background()

	switch rest[0] {
	case "register":
		if len(rest) != 2 {
			return fmt.Errorf("usage: kaasctl register <kernel>")
		}
		if err := c.RegisterContext(ctx, rest[1]); err != nil {
			return err
		}
		fmt.Printf("registered %s\n", rest[1])
		return nil

	case "invoke":
		if len(rest) < 2 {
			return fmt.Errorf("usage: kaasctl invoke <kernel> [key=value ...]")
		}
		params, err := parseParams(rest[2:])
		if err != nil {
			return err
		}
		res, err := c.InvokeContext(ctx, rest[1], params, nil)
		if err != nil {
			return err
		}
		start := "warm"
		if res.Cold {
			start = "cold"
		}
		fmt.Printf("%s start, server time %v\n", start, res.ServerTime)
		keys := make([]string, 0, len(res.Values))
		for k := range res.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s = %g\n", k, res.Values[k])
		}
		if len(res.Data) > 0 {
			fmt.Printf("  payload: %d bytes\n", len(res.Data))
		}
		return nil

	case "list":
		names, err := c.ListContext(ctx)
		if err != nil {
			return err
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return nil

	case "stats":
		var stats json.RawMessage
		if err := c.StatsContext(ctx, &stats); err != nil {
			return err
		}
		var pretty map[string]any
		if err := json.Unmarshal(stats, &pretty); err != nil {
			return err
		}
		out, err := json.MarshalIndent(pretty, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil

	case "kernels":
		// Offline helper: list the built-in kernel library.
		for _, k := range kernels.Suite() {
			fmt.Printf("%-12s %s\n", k.Name(), k.Kind())
		}
		return nil

	case "simulate":
		// Offline helper: simulate an OpenQASM-subset circuit locally.
		if len(rest) != 2 {
			return fmt.Errorf("usage: kaasctl simulate <circuit.qasm>")
		}
		return simulate(rest[1])

	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
}

// simulate parses and runs a circuit file, printing the top basis-state
// probabilities.
func simulate(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	circuit, err := qsim.ParseCircuit(string(src))
	if err != nil {
		return err
	}
	state, err := circuit.Run()
	if err != nil {
		return err
	}
	fmt.Printf("%d qubits, %d gates\n", circuit.NumQubits, len(circuit.Gates))
	type outcome struct {
		idx int
		p   float64
	}
	outcomes := make([]outcome, 0, len(state.Amplitudes()))
	for i := range state.Amplitudes() {
		if p := state.Probability(i); p > 1e-12 {
			outcomes = append(outcomes, outcome{i, p})
		}
	}
	sort.Slice(outcomes, func(a, b int) bool { return outcomes[a].p > outcomes[b].p })
	limit := 16
	if len(outcomes) < limit {
		limit = len(outcomes)
	}
	for _, o := range outcomes[:limit] {
		fmt.Printf("  |%0*b⟩  %.6f\n", circuit.NumQubits, o.idx, o.p)
	}
	if len(outcomes) > limit {
		fmt.Printf("  ... %d more states\n", len(outcomes)-limit)
	}
	return nil
}

// parseParams converts key=value arguments to kernel params.
func parseParams(args []string) (kernels.Params, error) {
	params := make(kernels.Params, len(args))
	for _, a := range args {
		key, value, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("bad parameter %q, want key=value", a)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", a, err)
		}
		params[key] = v
	}
	return params, nil
}
