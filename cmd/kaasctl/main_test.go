package main

import (
	"os"
	"testing"

	"kaas"
)

// startServer brings up a platform with a TCP endpoint for CLI tests.
func startServer(t *testing.T) string {
	t.Helper()
	p, err := kaas.New(
		kaas.WithAccelerators(kaas.TeslaP100),
		kaas.WithListenAddr("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatalf("kaas.New: %v", err)
	}
	t.Cleanup(p.Close)
	return p.Addr()
}

func TestParseParams(t *testing.T) {
	params, err := parseParams([]string{"n=500", "seed=7", "gamma=0.5"})
	if err != nil {
		t.Fatalf("parseParams: %v", err)
	}
	if params["n"] != 500 || params["seed"] != 7 || params["gamma"] != 0.5 {
		t.Errorf("params = %v", params)
	}
	if _, err := parseParams([]string{"n"}); err == nil {
		t.Error("missing '=' succeeded")
	}
	if _, err := parseParams([]string{"n=abc"}); err == nil {
		t.Error("non-numeric value succeeded")
	}
}

func TestCLIRegisterInvokeListStats(t *testing.T) {
	addr := startServer(t)
	steps := [][]string{
		{"-server", addr, "register", "matmul"},
		{"-server", addr, "invoke", "matmul", "n=64", "seed=3"},
		{"-server", addr, "list"},
		{"-server", addr, "stats"},
		{"-server", addr, "kernels"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("run %v: %v", args, err)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	addr := startServer(t)
	for _, args := range [][]string{
		{},
		{"-server", addr, "register"},
		{"-server", addr, "register", "not-a-kernel"},
		{"-server", addr, "invoke"},
		{"-server", addr, "invoke", "matmul", "n"},
		{"-server", addr, "invoke", "unregistered-kernel", "n=4"},
		{"-server", addr, "frobnicate"},
		{"-server", "127.0.0.1:1", "list"}, // nothing listening
	} {
		if err := run(args); err == nil {
			t.Errorf("run %v succeeded, want error", args)
		}
	}
}

// TestCLIClusterStatus drives `kaasctl cluster status` against a
// platform serving as a single-node cluster, and checks the error paths:
// bad subcommands and a server that is not a cluster node.
func TestCLIClusterStatus(t *testing.T) {
	p, err := kaas.New(
		kaas.WithAccelerators(kaas.TeslaP100),
		kaas.WithListenAddr("127.0.0.1:0"),
		kaas.WithClusterNode("solo"),
	)
	if err != nil {
		t.Fatalf("kaas.New: %v", err)
	}
	t.Cleanup(p.Close)
	if err := run([]string{"-server", p.Addr(), "cluster", "status"}); err != nil {
		t.Errorf("cluster status: %v", err)
	}
	for _, args := range [][]string{
		{"-server", p.Addr(), "cluster"},
		{"-server", p.Addr(), "cluster", "frobnicate"},
		{"-server", startServer(t), "cluster", "status"}, // not a cluster node
	} {
		if err := run(args); err == nil {
			t.Errorf("run %v succeeded, want error", args)
		}
	}
}

func TestCLITimeoutAndRetries(t *testing.T) {
	addr := startServer(t)
	steps := [][]string{
		{"-server", addr, "-timeout", "10s", "-retries", "2", "register", "matmul"},
		{"-server", addr, "-timeout", "10s", "-retries", "2", "invoke", "matmul", "n=32"},
		{"-server", addr, "-timeout", "10s", "list"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("run %v: %v", args, err)
		}
	}
	// A deadline that has effectively already expired must fail promptly
	// instead of executing.
	if err := run([]string{"-server", addr, "-timeout", "1ns", "invoke", "matmul", "n=32"}); err == nil {
		t.Error("1ns timeout succeeded")
	}
	if err := run([]string{"-timeout", "bogus", "list"}); err == nil {
		t.Error("bad -timeout value succeeded")
	}
}

func TestCLISimulate(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bell.qasm"
	src := "qreg q[2];\nh q[0];\ncx q[0], q[1];\n"
	if err := writeFile(path, src); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := run([]string{"simulate", path}); err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if err := run([]string{"simulate"}); err == nil {
		t.Error("missing path succeeded")
	}
	if err := run([]string{"simulate", dir + "/missing.qasm"}); err == nil {
		t.Error("missing file succeeded")
	}
	bad := dir + "/bad.qasm"
	if err := writeFile(bad, "frob q[0];"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := run([]string{"simulate", bad}); err == nil {
		t.Error("bad circuit succeeded")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
