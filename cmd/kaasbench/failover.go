package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"kaas"
	"kaas/internal/client"
	"kaas/internal/cplane"
	"kaas/internal/kernels"
	"kaas/internal/metrics"
	"kaas/internal/vclock"
)

// failoverConfig parameterizes the -failover benchmark.
type failoverConfig struct {
	Invocations int     // per ladder phase
	Conc        int     // concurrent clients
	Scale       float64 // modeled seconds per wall second
	Out         string  // JSON report path ("" = stdout only)
}

// failoverPhase is one rung of the failover ladder: a load phase driven
// through the cluster router, with the router's dispatch counters
// reported as deltas over the phase.
type failoverPhase struct {
	Phase           string  `json:"phase"`
	Invocations     int     `json:"invocations"`
	OK              int     `json:"ok"`
	Failed          int     `json:"failed"`
	P50ms           float64 `json:"p50_ms"`
	P99ms           float64 `json:"p99_ms"`
	Dispatches      uint64  `json:"dispatches"`
	Redispatches    uint64  `json:"redispatches"`
	FailedOver      uint64  `json:"failed_over"`
	BudgetExhausted uint64  `json:"budget_exhausted"`
	Unroutable      uint64  `json:"unroutable"`
}

// stormSide is one arm of the retry-budget storm comparison: the same
// offered retry load with and without a shared budget.
type stormSide struct {
	Retries         uint64  `json:"retries"`
	ConnErrors      uint64  `json:"conn_errors"`
	BudgetExhausted uint64  `json:"budget_exhausted,omitempty"`
	Capacity        float64 `json:"capacity,omitempty"`
	Ratio           float64 `json:"ratio,omitempty"`
}

// stormReport compares the aggregate retry volume a fleet of clients
// fires at a dead address with and without a shared retry budget.
type stormReport struct {
	Clients              int       `json:"clients"`
	InvocationsPerClient int       `json:"invocations_per_client"`
	PolicyMaxAttempts    int       `json:"policy_max_attempts"`
	WithoutBudget        stormSide `json:"without_budget"`
	WithBudget           stormSide `json:"with_budget"`
	SuppressionFactor    float64   `json:"suppression_factor"`
}

// failoverReport is the JSON document -failover-out writes.
type failoverReport struct {
	Scale  float64         `json:"scale"`
	Hosts  int             `json:"hosts"`
	Conc   int             `json:"concurrency"`
	Ladder []failoverPhase `json:"ladder"`
	Storm  stormReport     `json:"storm"`
}

// runFailover measures the cluster control plane's headline behavior:
// a three-rung ladder (steady load on three nodes, the same load with
// one node killed abruptly at the halfway mark, then post-recovery load
// on the surviving pair) driven through the gossip-fed router, followed
// by the retry-budget storm-suppression comparison. The run fails if
// steady or recovery load loses an invocation, or if the node kill
// completes without a single successful failover.
func runFailover(w io.Writer, cfg failoverConfig) error {
	const hosts = 3
	clock := vclock.Scaled(cfg.Scale)

	platforms := make([]*kaas.Platform, hosts)
	var seeds []string
	for i := range platforms {
		p, err := kaas.New(
			kaas.WithTimeScale(cfg.Scale),
			kaas.WithHostName(fmt.Sprintf("node%d", i)),
			kaas.WithAccelerators(kaas.TeslaP100, kaas.TeslaP100),
			kaas.WithoutResultComputation(),
			kaas.WithListenAddr("127.0.0.1:0"),
			kaas.WithClusterNode(fmt.Sprintf("node%d", i), seeds...),
		)
		if err != nil {
			return err
		}
		defer p.Close()
		platforms[i] = p
		seeds = append(seeds, p.Addr())
	}

	obs := cplane.NewNode(cplane.Config{Name: "bench-router", Clock: clock})
	defer obs.Close()
	for _, p := range platforms {
		obs.Join(p.Addr())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := obs.WaitMembers(ctx, hosts); err != nil {
		return err
	}
	router := cplane.NewRouter(cplane.RouterConfig{
		Node:       obs,
		Budget:     client.NewRetryBudget(64, 0.5),
		Idempotent: true, // mci is a pure function of its parameters
	})
	defer router.Close()
	if err := router.Register(ctx, "mci"); err != nil {
		return err
	}

	fmt.Fprintf(w, "failover ladder: %d nodes, %d invocations/phase at concurrency %d (scale %.0fx)\n",
		hosts, cfg.Invocations, cfg.Conc, cfg.Scale)

	report := &failoverReport{Scale: cfg.Scale, Hosts: hosts, Conc: cfg.Conc}
	phases := []struct {
		name    string
		midway  func()
		minOK   int
		minFail uint64 // minimum FailedOver delta
	}{
		{"steady", nil, cfg.Invocations, 0},
		{"node-kill", func() { platforms[hosts-1].Close() }, 0, 1},
		{"post-recovery", nil, cfg.Invocations, 0},
	}
	for _, ph := range phases {
		res := runFailoverPhase(router, cfg, ph.name, ph.midway)
		report.Ladder = append(report.Ladder, res)
		fmt.Fprintf(w, "  %-14s ok=%d/%d  p50=%.2fms p99=%.2fms  redispatches=%d failed-over=%d budget-exhausted=%d\n",
			ph.name, res.OK, res.Invocations, res.P50ms, res.P99ms,
			res.Redispatches, res.FailedOver, res.BudgetExhausted)
		if res.OK < ph.minOK {
			return fmt.Errorf("failover: phase %s completed %d of %d invocations", ph.name, res.OK, res.Invocations)
		}
		if res.FailedOver < ph.minFail {
			return fmt.Errorf("failover: phase %s saw no successful cross-host failover", ph.name)
		}
	}

	storm, err := runRetryStorm(cfg.Conc)
	if err != nil {
		return err
	}
	report.Storm = *storm
	fmt.Fprintf(w, "retry storm vs one dead address (%d clients x %d invocations, %d attempts/policy):\n",
		storm.Clients, storm.InvocationsPerClient, storm.PolicyMaxAttempts)
	fmt.Fprintf(w, "  without budget: %d retries\n", storm.WithoutBudget.Retries)
	fmt.Fprintf(w, "  with budget:    %d retries (capacity %.0f, ratio %.1f, exhausted %d times)\n",
		storm.WithBudget.Retries, storm.WithBudget.Capacity, storm.WithBudget.Ratio, storm.WithBudget.BudgetExhausted)
	fmt.Fprintf(w, "  suppression:    %.1fx fewer retries\n", storm.SuppressionFactor)

	if cfg.Out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", cfg.Out, err)
		}
	}
	return nil
}

// runFailoverPhase drives one ladder rung: Invocations calls through
// the router at Conc concurrency, firing midway (when set) once half
// the calls have been issued.
func runFailoverPhase(router *cplane.Router, cfg failoverConfig, name string, midway func()) failoverPhase {
	before := router.Stats()
	var (
		mu       sync.Mutex
		lat      metrics.Sample
		ok, fail int
		once     sync.Once
	)
	work := make(chan int)
	var wg sync.WaitGroup
	conc := cfg.Conc
	if conc < 1 {
		conc = 1
	}
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				_, err := router.Invoke(context.Background(), "mci", kernels.Params{"n": 1e9}, nil)
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					fail++
				} else {
					ok++
					lat.AddDuration(d)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Invocations; i++ {
		if midway != nil && i == cfg.Invocations/2 {
			once.Do(midway)
		}
		work <- i
	}
	close(work)
	wg.Wait()

	after := router.Stats()
	ms := func(p float64) float64 { return lat.Percentile(p) * 1e3 }
	return failoverPhase{
		Phase:           name,
		Invocations:     cfg.Invocations,
		OK:              ok,
		Failed:          fail,
		P50ms:           ms(50),
		P99ms:           ms(99),
		Dispatches:      after.Dispatches - before.Dispatches,
		Redispatches:    after.Redispatches - before.Redispatches,
		FailedOver:      after.FailedOver - before.FailedOver,
		BudgetExhausted: after.BudgetExhausted - before.BudgetExhausted,
		Unroutable:      after.Unroutable - before.Unroutable,
	}
}

// runRetryStorm fires a fleet of clients at an address that refuses
// connections — every invocation fails and walks its full retry ladder
// — once without a budget and once sharing one small budget, and
// reports the aggregate retry volume of both arms.
func runRetryStorm(clients int) (*stormReport, error) {
	if clients < 1 {
		clients = 1
	}
	const (
		perClient   = 10
		maxAttempts = 6
		capacity    = 8
		ratio       = 0.1
	)
	policy := client.RetryPolicy{MaxAttempts: maxAttempts, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond}

	run := func(budget *client.RetryBudget) (stormSide, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return stormSide{}, err
		}
		addr := ln.Addr().String()
		ln.Close() // the port now refuses connections
		var side stormSide
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				opts := []client.Option{client.WithRetryPolicy(policy)}
				if budget != nil {
					opts = append(opts, client.WithRetryBudget(budget))
				}
				c := client.Dial(addr, opts...)
				defer c.Close()
				for j := 0; j < perClient; j++ {
					c.InvokeContext(context.Background(), "mci", nil, nil)
				}
				m := c.Metrics()
				mu.Lock()
				side.Retries += m.Retries
				side.ConnErrors += m.ConnErrors
				side.BudgetExhausted += m.BudgetExhausted
				mu.Unlock()
			}()
		}
		wg.Wait()
		return side, nil
	}

	without, err := run(nil)
	if err != nil {
		return nil, err
	}
	with, err := run(client.NewRetryBudget(capacity, ratio))
	if err != nil {
		return nil, err
	}
	with.Capacity = capacity
	with.Ratio = ratio
	report := &stormReport{
		Clients:              clients,
		InvocationsPerClient: perClient,
		PolicyMaxAttempts:    maxAttempts,
		WithoutBudget:        without,
		WithBudget:           with,
	}
	if with.Retries > 0 {
		report.SuppressionFactor = float64(without.Retries) / float64(with.Retries)
	}
	return report, nil
}
