package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"kaas/internal/scenario"
)

// scenarioReport is the JSON document -scenario-out writes: the run
// parameters plus every scenario result, diagnostics included. The
// stdout lines stay restricted to the deterministic surface; anything
// machine-dependent (latencies, outcome splits, wall time) lives only
// here.
type scenarioReport struct {
	Seed      int64              `json:"seed"`
	Scale     float64            `json:"scale"`
	Passed    bool               `json:"passed"`
	Scenarios []*scenario.Result `json:"scenarios"`
}

// runScenario drives the scenario harness: one named scenario, the full
// matrix ("all"), or a listing ("list"). Stdout carries only the
// deterministic output surface, so two same-seed runs must print
// byte-identical text — that is the reproducibility contract CI diffs.
// A failed invariant fails the whole run.
func runScenario(w io.Writer, name string, seed int64, scale float64, tracePath, out string) error {
	if name == "list" {
		for _, n := range scenario.List() {
			spec, err := scenario.Lookup(n)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-18s %s\n", n, spec.Description)
		}
		return nil
	}
	var names []string
	if name == "all" {
		if tracePath != "" {
			return fmt.Errorf("-scenario-trace replays into a single named scenario, not %q", name)
		}
		names = scenario.List()
	} else {
		names = []string{name}
	}

	report := &scenarioReport{Seed: seed, Scale: scale, Passed: true}
	failed := 0
	for _, n := range names {
		spec, err := scenario.Lookup(n)
		if err != nil {
			return err
		}
		var res *scenario.Result
		if tracePath != "" {
			trace, err := loadTrace(tracePath)
			if err != nil {
				return err
			}
			res, err = scenario.RunTrace(context.Background(), spec, trace, seed, scale)
			if err != nil {
				return err
			}
		} else {
			res, err = scenario.Run(context.Background(), spec, seed, scale)
			if err != nil {
				return err
			}
		}
		for _, line := range res.DeterministicLines() {
			fmt.Fprintln(w, line)
		}
		report.Scenarios = append(report.Scenarios, res)
		if !res.Passed {
			report.Passed = false
			failed++
		}
	}

	if out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", out, err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(names))
	}
	return nil
}

// loadTrace reads an externally recorded CSV trace
// (offset_ms,kernel,n,payload per line).
func loadTrace(path string) (scenario.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return scenario.ParseCSV(f)
}
