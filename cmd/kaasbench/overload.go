package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"kaas/internal/accel"
	"kaas/internal/client"
	"kaas/internal/core"
	"kaas/internal/faults"
	"kaas/internal/kernels"
	"kaas/internal/metrics"
	"kaas/internal/shm"
	"kaas/internal/vclock"
	"kaas/internal/wire"
)

// runOverload is the survivability benchmark: it drives far more
// concurrent load than the server's admission limits allow, over two
// GPUs of which one keeps flapping, and reports how the control plane
// held up — what fraction of requests were shed with OVERLOADED, the
// latency distribution of the requests that were admitted, and how
// often the flapping device's circuit breaker changed state.
func runOverload(w io.Writer, invocations, conc int, scale float64) error {
	clock := vclock.Scaled(scale)
	host, err := accel.NewHost(clock, "bench", accel.XeonE52698,
		accel.TeslaP100, accel.TeslaP100)
	if err != nil {
		return err
	}
	defer host.Close()
	srv, err := core.New(core.Config{
		Clock:              clock,
		Host:               host,
		MaxInFlightTotal:   24,
		MaxQueuePerKernel:  16,
		BreakerThreshold:   2,                // trip fast: the flapper kills whole bursts
		BreakerOpenTimeout: 30 * time.Second, // modeled
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if err := srv.Register(kernels.NewMonteCarlo()); err != nil {
		return err
	}
	tcp, err := core.ServeTCP(srv, "127.0.0.1:0", shm.NewRegistry(1<<30))
	if err != nil {
		return err
	}
	defer tcp.Close()

	// One device flaps for the whole run — down long enough that every
	// invocation it was serving fails (a burst of consecutive failures
	// trips its breaker), then healthy long enough for half-open probes
	// to close it again. Placement has to keep the other device serving.
	flapper := faults.NewDeviceFlapper(host.Devices()[1])
	stopFlap := make(chan struct{})
	var flapWg sync.WaitGroup
	flapWg.Add(1)
	go func() {
		defer flapWg.Done()
		wait := func(d time.Duration) bool {
			select {
			case <-stopFlap:
				return false
			case <-time.After(d):
				return true
			}
		}
		for {
			flapper.Fail()
			if !wait(60 * time.Millisecond) {
				break
			}
			flapper.Repair()
			if !wait(140 * time.Millisecond) {
				break
			}
		}
		flapper.Repair()
	}()

	// No retry budget: a shed request surfaces its OVERLOADED code
	// instead of being retried into an eventual success, so the counts
	// below measure the server's admission decisions, not the client's
	// persistence.
	c := client.Dial(tcp.Addr())
	defer c.Close()

	if conc < 1 {
		conc = 1
	}
	var (
		mu                        sync.Mutex
		admitted                  metrics.Sample
		shed, unavailable, failed int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				t0 := time.Now()
				_, err := c.InvokeContext(ctx, "mci", kernels.Params{"n": 2e12}, nil)
				d := time.Since(t0)
				cancel()
				mu.Lock()
				var re *client.RemoteError
				switch {
				case err == nil:
					admitted.AddDuration(d)
				case errors.As(err, &re) && re.Code == wire.CodeOverloaded:
					shed++
				case errors.As(err, &re) && re.Code == wire.CodeUnavailable:
					unavailable++
				default:
					failed++
				}
				mu.Unlock()
				// Brief think time so the offered load is sustained over
				// several flap cycles instead of one instantaneous burst
				// of rejections.
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}
	start := time.Now()
	for i := 0; i < invocations; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(stopFlap)
	flapWg.Wait()

	st := srv.Stats()
	var transitions uint64
	for _, d := range st.PerDevice {
		transitions += d.BreakerTransitions
	}
	fails, repairs := flapper.Cycles()

	pct := func(n int) float64 { return 100 * float64(n) / float64(invocations) }
	fmt.Fprintf(w, "overload: %d invocations at concurrency %d against 2x Tesla P100 "+
		"(in-flight cap 24, queue bound 16, one device flapping, scale %.0fx)\n",
		invocations, conc, scale)
	fmt.Fprintf(w, "  completed in %v (%.1f/s offered)\n",
		elapsed.Round(time.Millisecond), float64(invocations)/elapsed.Seconds())
	fmt.Fprintf(w, "  admitted:    %d (%.1f%%), latency %s\n",
		admitted.N(), pct(admitted.N()), percentileLine(&admitted))
	fmt.Fprintf(w, "  shed:        %d (%.1f%%) with OVERLOADED (server counted %d)\n",
		shed, pct(shed), st.Shed)
	if unavailable > 0 {
		fmt.Fprintf(w, "  unavailable: %d (%.1f%%) with UNAVAILABLE\n", unavailable, pct(unavailable))
	}
	if failed > 0 {
		fmt.Fprintf(w, "  failed:      %d (%.1f%%) with other errors\n", failed, pct(failed))
	}
	fmt.Fprintf(w, "  device flapped %d times (%d repairs); breaker transitions: %d\n",
		fails, repairs, transitions)
	for id, d := range st.PerDevice {
		if d.BreakerState != "" && d.Kind == "GPU" {
			fmt.Fprintf(w, "    %s: breaker %s after %d transitions\n", id, d.BreakerState, d.BreakerTransitions)
		}
	}
	if admitted.N()+shed+unavailable+failed != invocations {
		return fmt.Errorf("overload: lost requests: %d admitted + %d shed + %d unavailable + %d failed != %d",
			admitted.N(), shed, unavailable, failed, invocations)
	}
	return nil
}
