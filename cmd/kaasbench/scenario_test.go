package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScenarioList(t *testing.T) {
	var buf bytes.Buffer
	if err := runScenario(&buf, "list", 1, 2000, "", ""); err != nil {
		t.Fatalf("runScenario list: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"replay-diurnal", "chaos-flap", "drain-midload", "mux-storm", "cluster-failover"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing is missing %s:\n%s", want, out)
		}
	}
}

func TestScenarioUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := runScenario(&buf, "no-such", 1, 2000, "", ""); err == nil {
		t.Error("unknown scenario succeeded")
	}
}

// TestScenarioReproducibleOutput runs one scenario twice through the CLI
// path with the same seed and requires byte-identical stdout — the same
// diff the CI reproducibility gate performs on the full matrix.
func TestScenarioReproducibleOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run skipped in short mode")
	}
	out := filepath.Join(t.TempDir(), "scenarios.json")
	run := func() string {
		var buf bytes.Buffer
		if err := runScenario(&buf, "drain-midload", 1, 2000, "", out); err != nil {
			t.Fatalf("runScenario: %v", err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same-seed CLI runs diverged:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	if !strings.Contains(a, "result: PASS") {
		t.Errorf("scenario did not pass:\n%s", a)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading JSON report: %v", err)
	}
	var report scenarioReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("parsing JSON report: %v", err)
	}
	if !report.Passed || len(report.Scenarios) != 1 || report.Scenarios[0].Scenario != "drain-midload" {
		t.Errorf("unexpected report: %+v", report)
	}
}

// TestScenarioExternalTrace replays a recorded CSV trace through a named
// scenario — the kaasbench -scenario-trace path.
func TestScenarioExternalTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run skipped in short mode")
	}
	var sb strings.Builder
	sb.WriteString("offset_ms,kernel,n,payload\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "%d,mci,1000000000,0\n", i*25)
	}
	trace := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(trace, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runScenario(&buf, "replay-diurnal", 1, 2000, trace, ""); err != nil {
		t.Fatalf("runScenario with external trace: %v", err)
	}
	if !strings.Contains(buf.String(), "trace: 40 events") {
		t.Errorf("external trace was not replayed:\n%s", buf.String())
	}
}
