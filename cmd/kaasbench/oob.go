package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"kaas"
	"kaas/internal/shm"
)

// oobConfig parameterizes the -oob data-plane benchmark.
type oobConfig struct {
	Invocations int     // invocations per cell
	Conc        int     // concurrent clients per cell
	Scale       float64 // modeled seconds per wall second
	Seed        int64   // payload-content seed (pinned in CI)
	Out         string  // JSON report path ("" = stdout only)
}

// oobAllocBudget is the flat alloc-bytes-per-op ceiling every out-of-band
// cell must stay under regardless of payload size: the payload moves by
// lease handle, so per-invocation allocation is bounded by protocol
// framing (headers, reply bookkeeping), not by payload bytes. In-band
// cells blow through this budget as soon as payloads outgrow it, which
// is exactly the contrast the gate pins down.
const oobAllocBudget = 128 << 10

// oobPayloadSizes is the payload sweep. The largest is 8x the alloc
// budget, so a single accidental payload copy on the serving path fails
// the gate outright. (The budget leaves room for the occasional fresh
// lease grant under concurrency spikes — a grant allocates one
// payload-class slab, amortized across the run.)
var oobPayloadSizes = []int{4 << 10, 64 << 10, 1 << 20}

// oobBatchWindows is the micro-batching sweep (0 = batching off, the
// comparison arm).
var oobBatchWindows = []time.Duration{0, 50 * time.Millisecond, 200 * time.Millisecond}

// oobCell is one payload-size x transfer-mode measurement.
type oobCell struct {
	Mode            string  `json:"mode"` // "in-band" or "oob"
	PayloadBytes    int     `json:"payload_bytes"`
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`
	MallocsPerOp    float64 `json:"mallocs_per_op"`
	WallUsPerOp     float64 `json:"wall_us_per_op"`
	OOBInvocations  uint64  `json:"oob_invocations"`
	OOBBytes        uint64  `json:"oob_bytes"`
	InBandBytes     uint64  `json:"inband_bytes"`
	LeaseGrants     uint64  `json:"lease_grants"`
	LeaseReuses     uint64  `json:"lease_reuses"`
}

// oobBatchCell is one batch-window measurement at fixed concurrency.
type oobBatchCell struct {
	WindowMs           float64 `json:"window_ms"` // modeled
	Invocations        int     `json:"invocations"`
	Dispatches         uint64  `json:"device_dispatches"`
	BatchedInvocations uint64  `json:"batched_invocations"`
	MeanBatch          float64 `json:"mean_batch_size"`
	ThroughputPerSec   float64 `json:"throughput_per_sec"`
	// UtilizationPct is modeled device utilization: useful compute time
	// over compute plus the launch overhead actually paid. Batching
	// amortizes the per-dispatch launch overhead across members, so this
	// must not drop below the unbatched arm.
	UtilizationPct float64 `json:"device_utilization_pct"`
}

// oobReport is the JSON document -oob-out writes (BENCH_PR10.json).
type oobReport struct {
	Skipped     string         `json:"skipped,omitempty"` // non-empty when shm is unsupported
	Scale       float64        `json:"scale"`
	Conc        int            `json:"concurrency"`
	Invocations int            `json:"invocations_per_cell"`
	AllocBudget int            `json:"oob_alloc_budget_bytes_per_op"`
	Cells       []oobCell      `json:"cells"`
	Batch       []oobBatchCell `json:"batch"`
	Violations  []string       `json:"violations"`
}

// oobEchoKernel is the bench's payload carrier: fixed modeled compute
// (1 ms on a P100) plus payload-proportional transfer cost, so the
// data-plane and launch-overhead effects dominate the measurement.
type oobEchoKernel struct{}

func (oobEchoKernel) Name() string          { return "oobecho" }
func (oobEchoKernel) Kind() kaas.DeviceKind { return kaas.GPU }

// oobEchoWork is the echo kernel's modeled work: 1 ms on a P100, half
// the device's 2 ms launch overhead, so amortizing launches matters.
const oobEchoWork = 8e8

func (oobEchoKernel) Cost(req *kaas.Request) (kaas.Cost, error) {
	n := int64(len(req.Data))
	return kaas.Cost{Work: oobEchoWork, BytesIn: n, BytesOut: n, DeviceMemory: n + 1<<20}, nil
}
func (oobEchoKernel) Execute(req *kaas.Request) (*kaas.Response, error) {
	out := make([]byte, len(req.Data))
	copy(out, req.Data)
	return &kaas.Response{Values: map[string]float64{"bytes": float64(len(out))}, Data: out}, nil
}

// oobPlatform builds one bench platform. Result computation is off so
// the measurement isolates the serving path (wire, lease, dispatch),
// not the host-side reference kernel.
func oobPlatform(cfg oobConfig, oob bool, window time.Duration) (*kaas.Platform, error) {
	opts := []kaas.Option{
		kaas.WithListenAddr("127.0.0.1:0"),
		kaas.WithTimeScale(cfg.Scale),
		kaas.WithAccelerators(kaas.TeslaP100),
		kaas.WithoutResultComputation(),
		kaas.WithClientMux(4),
	}
	if oob {
		opts = append(opts, kaas.WithOutOfBand(256<<20))
	}
	if window > 0 {
		opts = append(opts, kaas.WithBatching(window, 8))
	}
	p, err := kaas.New(opts...)
	if err != nil {
		return nil, err
	}
	if err := p.Register(oobEchoKernel{}); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// oobDrive fires cfg.Invocations invocations of the echo kernel across
// cfg.Conc workers through c and returns the wall-clock elapsed time.
func oobDrive(c *kaas.Client, cfg oobConfig, payload []byte) (time.Duration, error) {
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	per := cfg.Invocations / cfg.Conc
	if per == 0 {
		per = 1
	}
	start := time.Now()
	for w := 0; w < cfg.Conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.Invoke("oobecho", nil, payload); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start), firstErr
}

// runOOBCell measures one payload-size cell in one transfer mode.
func runOOBCell(cfg oobConfig, payloadBytes int, oob bool) (*oobCell, error) {
	p, err := oobPlatform(cfg, oob, 0)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	c, err := p.NewClient()
	if err != nil {
		return nil, err
	}
	defer c.Close()

	payload := make([]byte, payloadBytes)
	rand.New(rand.NewSource(cfg.Seed)).Read(payload)

	// Warm up: cold starts, mux connections, and lease negotiation all
	// happen here, outside the measured window.
	warm := cfg
	warm.Invocations = 4 * cfg.Conc
	if _, err := oobDrive(c, warm, payload); err != nil {
		return nil, err
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	elapsed, err := oobDrive(c, cfg, payload)
	if err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&m1)

	n := float64((cfg.Invocations / cfg.Conc) * cfg.Conc)
	dp := p.Stats().DataPlane
	mode := "in-band"
	if oob {
		mode = "oob"
	}
	return &oobCell{
		Mode:            mode,
		PayloadBytes:    payloadBytes,
		AllocBytesPerOp: float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		MallocsPerOp:    float64(m1.Mallocs-m0.Mallocs) / n,
		WallUsPerOp:     float64(elapsed.Microseconds()) / n,
		OOBInvocations:  dp.OOBInvocations,
		OOBBytes:        dp.OOBBytes,
		InBandBytes:     dp.InBandBytes,
		LeaseGrants:     dp.LeaseGrants,
		LeaseReuses:     dp.LeaseReuses,
	}, nil
}

// runOOBBatchCell measures one batch-window cell at the configured
// concurrency (payload-free: the batching effect is launch-overhead
// amortization, not data movement).
func runOOBBatchCell(cfg oobConfig, window time.Duration) (*oobBatchCell, error) {
	p, err := oobPlatform(cfg, false, window)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	c, err := p.NewClient()
	if err != nil {
		return nil, err
	}
	defer c.Close()

	warm := cfg
	warm.Invocations = 2 * cfg.Conc
	if _, err := oobDrive(c, warm, nil); err != nil {
		return nil, err
	}
	elapsed, err := oobDrive(c, cfg, nil)
	if err != nil {
		return nil, err
	}

	n := (cfg.Invocations / cfg.Conc) * cfg.Conc
	dp := p.Stats().DataPlane
	cell := &oobBatchCell{
		WindowMs:           float64(window) / float64(time.Millisecond),
		Invocations:        n,
		Dispatches:         dp.BatchDispatches,
		BatchedInvocations: dp.BatchedInvocations,
		ThroughputPerSec:   float64(n) / elapsed.Seconds(),
	}
	if dp.BatchDispatches > 0 {
		cell.MeanBatch = float64(dp.BatchedInvocations) / float64(dp.BatchDispatches)
	}

	// Modeled utilization: every invocation carries the same compute time
	// (work / device rate); launch overhead is paid once per device
	// dispatch — per invocation unbatched, per batch otherwise.
	compute := oobEchoWork / kaas.TeslaP100.ComputeRate * float64(time.Second)
	overhead := float64(kaas.TeslaP100.LaunchOverhead)
	dispatches := float64(n)
	if window > 0 {
		dispatches = float64(dp.BatchDispatches)
	}
	useful := float64(n) * compute
	cell.UtilizationPct = 100 * useful / (useful + dispatches*overhead)
	return cell, nil
}

// runOOB sweeps the zero-copy data plane (payload size x transfer mode)
// and the micro-batcher (batch window at fixed concurrency), writes the
// report, and fails if the out-of-band path stopped being zero-copy or
// batching stopped coalescing. A host without shared-memory support
// reports the reason and exits cleanly — the fallback there is the
// in-band path, which the rest of the suite already covers.
func runOOB(w io.Writer, cfg oobConfig) error {
	report := &oobReport{
		Scale:       cfg.Scale,
		Conc:        cfg.Conc,
		Invocations: cfg.Invocations,
		AllocBudget: oobAllocBudget,
		Violations:  []string{},
	}
	if ok, reason := shm.Supported(); !ok {
		report.Skipped = reason
		fmt.Fprintf(w, "oob: skipping data-plane sweep: %s\n", reason)
		fmt.Fprintln(w, "oob: clients on this host fall back to in-band transfer transparently")
		return writeOOBReport(w, cfg, report)
	}

	fmt.Fprintf(w, "oob: data-plane sweep, %d invocations/cell at concurrency %d, scale %.0fx\n",
		cfg.Invocations, cfg.Conc, cfg.Scale)
	fmt.Fprintf(w, "  %-8s %-10s %14s %12s %12s %10s %10s\n",
		"MODE", "PAYLOAD", "ALLOC B/OP", "MALLOCS/OP", "WALL us/OP", "OOB-INV", "GRANTS")
	for _, size := range oobPayloadSizes {
		for _, oob := range []bool{false, true} {
			cell, err := runOOBCell(cfg, size, oob)
			if err != nil {
				return err
			}
			report.Cells = append(report.Cells, *cell)
			fmt.Fprintf(w, "  %-8s %-10d %14.0f %12.1f %12.1f %10d %10d\n",
				cell.Mode, cell.PayloadBytes, cell.AllocBytesPerOp, cell.MallocsPerOp,
				cell.WallUsPerOp, cell.OOBInvocations, cell.LeaseGrants)
			if oob {
				if cell.AllocBytesPerOp > oobAllocBudget {
					report.Violations = append(report.Violations, fmt.Sprintf(
						"oob cell at %d-byte payload allocates %.0f B/op, over the flat %d B/op budget",
						size, cell.AllocBytesPerOp, oobAllocBudget))
				}
				if cell.OOBInvocations == 0 {
					report.Violations = append(report.Violations, fmt.Sprintf(
						"oob cell at %d-byte payload served zero out-of-band invocations", size))
				}
			}
		}
	}

	fmt.Fprintf(w, "oob: micro-batch sweep at concurrency %d\n", cfg.Conc)
	fmt.Fprintf(w, "  %-10s %12s %12s %12s %14s %10s\n",
		"WINDOW", "INV", "DISPATCHES", "MEAN-BATCH", "THROUGHPUT/S", "UTIL")
	var baseline *oobBatchCell
	for _, window := range oobBatchWindows {
		cell, err := runOOBBatchCell(cfg, window)
		if err != nil {
			return err
		}
		report.Batch = append(report.Batch, *cell)
		fmt.Fprintf(w, "  %-10s %12d %12d %12.1f %14.0f %9.1f%%\n",
			time.Duration(cell.WindowMs*float64(time.Millisecond)).String(),
			cell.Invocations, cell.Dispatches, cell.MeanBatch, cell.ThroughputPerSec,
			cell.UtilizationPct)
		if window == 0 {
			baseline = cell
			continue
		}
		if cell.Dispatches == 0 || cell.Dispatches >= uint64(cell.Invocations) {
			report.Violations = append(report.Violations, fmt.Sprintf(
				"batch window %s issued %d dispatches for %d invocations; batching is not coalescing",
				time.Duration(window), cell.Dispatches, cell.Invocations))
		}
		if baseline != nil && cell.UtilizationPct < baseline.UtilizationPct {
			report.Violations = append(report.Violations, fmt.Sprintf(
				"batch window %s device utilization %.1f%% fell below the unbatched arm's %.1f%%",
				time.Duration(window), cell.UtilizationPct, baseline.UtilizationPct))
		}
	}

	return writeOOBReport(w, cfg, report)
}

// writeOOBReport persists the report and turns recorded violations into
// a failing exit, which is what makes the CI job blocking.
func writeOOBReport(w io.Writer, cfg oobConfig, report *oobReport) error {
	if cfg.Out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "oob: report written to %s\n", cfg.Out)
	}
	if len(report.Violations) > 0 {
		for _, v := range report.Violations {
			fmt.Fprintln(w, "oob: VIOLATION:", v)
		}
		return fmt.Errorf("oob: %d data-plane budget violation(s)", len(report.Violations))
	}
	fmt.Fprintln(w, "oob: all data-plane budgets hold")
	return nil
}
