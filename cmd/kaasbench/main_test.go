package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	if err := run([]string{"-fig", "15", "-quick", "-samples", "1", "-scale", "500"}); err != nil {
		t.Fatalf("run -fig 15: %v", err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure succeeded")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag succeeded")
	}
}
