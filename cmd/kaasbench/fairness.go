package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"kaas"
	"kaas/internal/scenario"
	"kaas/internal/vclock"
	"kaas/internal/workload"
)

// fairnessConfig parameterizes the -fairness benchmark.
type fairnessConfig struct {
	Events int     // trace length per arm
	Scale  float64 // modeled seconds per wall second
	Out    string  // JSON report path ("" = stdout only)
}

// fairnessTenant is one tenant's outcome summary within an arm.
type fairnessTenant struct {
	Issued  int     `json:"issued"`
	OK      int     `json:"ok"`
	Failed  int     `json:"failed"`
	Success float64 `json:"success_rate"`
	// P99ms is the modeled 99th-percentile time from arrival to eventual
	// success, including shed-and-retry delays — the latency a tenant
	// actually experiences under contention.
	P99ms float64 `json:"p99_ms"`
	// ShedShare is the fraction of the arm's total shed rejections
	// charged to this tenant.
	ShedShare float64 `json:"shed_share"`
}

// fairnessArm is one side of the FCFS-vs-WFQ comparison.
type fairnessArm struct {
	Mode        string                    `json:"mode"`
	Tenants     map[string]fairnessTenant `json:"tenants"`
	Sheds       int                       `json:"sheds"`
	ColdStarts  uint64                    `json:"cold_starts"`
	WarmHitRate float64                   `json:"warm_hit_rate"`
}

// fairnessReport is the JSON document -fairness-out writes.
type fairnessReport struct {
	Scale          float64     `json:"scale"`
	Events         int         `json:"events"`
	FCFS           fairnessArm `json:"fcfs"`
	WFQ            fairnessArm `json:"wfq"`
	VictimP99Gain  float64     `json:"victim_p99_gain"` // fcfs p99 / wfq p99
	WarmHitDelta   float64     `json:"warm_hit_delta"`  // wfq - fcfs
	AggressorShare float64     `json:"wfq_aggressor_shed_share"`
}

// fairnessTenantWeights is the bench's tenant universe: one aggressor at
// ~10x the victims' offered load, equal fair-share weights.
var fairnessTenants = []string{"aggressor", "victim-a", "victim-b"}

// fairnessTraceSpec mirrors the noisy-neighbor scenario's calibration:
// pace arrivals in the hundreds of modeled milliseconds so the replay
// stays open-loop, and size the work so the aggressor saturates the
// 8-slot admission cap while the victims stay far under their fair
// thirds.
func fairnessTraceSpec(events int) scenario.TraceSpec {
	return scenario.TraceSpec{
		Events:   events,
		Arrivals: scenario.ArrivalSpec{Kind: "poisson", Mean: 400 * time.Millisecond},
		Mix: []scenario.KernelMix{
			{Kernel: "mci", Weight: 10, MinN: 3e11, MaxN: 5e11, Tenant: "aggressor"},
			{Kernel: "mci", Weight: 1, MinN: 3e11, MaxN: 5e11, Tenant: "victim-a"},
			{Kernel: "mci", Weight: 1, MinN: 3e11, MaxN: 5e11, Tenant: "victim-b"},
		},
	}
}

// runFairness replays the same two-victims-one-aggressor trace against
// two identically provisioned platforms — one shedding with the flat
// FCFS admission gate, one dispatching through weighted fair queueing
// with warm-runner stickiness — with every request walking a bounded
// shed-and-retry loop. It reports per-tenant success, time-to-success
// p99, shed charging, and warm-hit rate, and fails unless fair queueing
// materially improves the victims' tail without regressing warm hits.
func runFairness(w io.Writer, cfg fairnessConfig) error {
	trace, err := scenario.Synthesize(fairnessTraceSpec(cfg.Events), 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fairness: %d events (fingerprint %s) at scale %.0fx, aggressor ~10x victims\n",
		len(trace), trace.Fingerprint(), cfg.Scale)

	fcfs, err := runFairnessArm(trace, cfg.Scale, false)
	if err != nil {
		return err
	}
	wfq, err := runFairnessArm(trace, cfg.Scale, true)
	if err != nil {
		return err
	}

	report := &fairnessReport{Scale: cfg.Scale, Events: len(trace), FCFS: *fcfs, WFQ: *wfq}
	report.AggressorShare = wfq.Tenants["aggressor"].ShedShare
	report.WarmHitDelta = wfq.WarmHitRate - fcfs.WarmHitRate
	fcfsP99 := victimP99(fcfs)
	wfqP99 := victimP99(wfq)
	if wfqP99 > 0 {
		report.VictimP99Gain = fcfsP99 / wfqP99
	}

	for _, arm := range []*fairnessArm{fcfs, wfq} {
		fmt.Fprintf(w, "  %-4s sheds=%d cold-starts=%d warm-hit=%.1f%%\n",
			arm.Mode, arm.Sheds, arm.ColdStarts, 100*arm.WarmHitRate)
		for _, tn := range fairnessTenants {
			ts := arm.Tenants[tn]
			fmt.Fprintf(w, "    %-10s ok=%d/%d (%.1f%%)  p99=%.0fms  shed-share=%.1f%%\n",
				tn, ts.OK, ts.Issued, 100*ts.Success, ts.P99ms, 100*ts.ShedShare)
		}
	}
	fmt.Fprintf(w, "  victim p99: fcfs=%.0fms wfq=%.0fms (%.1fx better)  warm-hit delta=%+.1f%%  wfq sheds on aggressor=%.1f%%\n",
		fcfsP99, wfqP99, report.VictimP99Gain, 100*report.WarmHitDelta, 100*report.AggressorShare)

	// Hard gates: the comparison must demonstrate isolation, not merely
	// record numbers.
	for _, v := range []string{"victim-a", "victim-b"} {
		if s := wfq.Tenants[v].Success; s < 0.9 {
			return fmt.Errorf("fairness: WFQ left victim %s at %.1f%% success, want >= 90%%", v, 100*s)
		}
	}
	if wfqP99 > 0.8*fcfsP99 {
		return fmt.Errorf("fairness: WFQ victim p99 %.0fms is not materially better than FCFS %.0fms", wfqP99, fcfsP99)
	}
	if report.AggressorShare < 0.8 {
		return fmt.Errorf("fairness: only %.1f%% of WFQ sheds were charged to the aggressor, want >= 80%%", 100*report.AggressorShare)
	}
	if report.WarmHitDelta < -0.05 {
		return fmt.Errorf("fairness: warm-hit rate regressed %.1f%% under WFQ", -100*report.WarmHitDelta)
	}

	if cfg.Out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", cfg.Out, err)
		}
	}
	return nil
}

// victimP99 pools both victims' time-to-success p99s, taking the worse.
func victimP99(arm *fairnessArm) float64 {
	a, b := arm.Tenants["victim-a"].P99ms, arm.Tenants["victim-b"].P99ms
	if a > b {
		return a
	}
	return b
}

// runFairnessArm replays the trace against one platform arm. Both arms
// share the admission cap; only the dispatch discipline differs.
func runFairnessArm(trace scenario.Trace, scale float64, fair bool) (*fairnessArm, error) {
	// The retry budget is deep (64 attempts) so a request only fails
	// after grinding through the whole backlog window — capping retries
	// low would survivorship-bias the FCFS arm's p99, whose few quick
	// successes are exactly the requests that never queued. Even at this
	// depth the FCFS arm leaves a large fraction of every tenant failed;
	// that residual is part of the measurement, not noise.
	const (
		maxInFlightTotal = 8
		maxAttempts      = 64
		retryDelay       = 500 * time.Millisecond // modeled, scaled by attempt (capped)
	)
	mode := "fcfs"
	opts := []kaas.Option{
		kaas.WithTimeScale(scale),
		kaas.WithAccelerators(kaas.TeslaP100, kaas.TeslaP100),
		kaas.WithoutResultComputation(),
		kaas.WithAdmissionLimits(maxInFlightTotal, 0),
	}
	if fair {
		mode = "wfq"
		opts = append(opts,
			kaas.WithTenantWeights(map[string]float64{"aggressor": 1, "victim-a": 1, "victim-b": 1}),
			kaas.WithTenantLimits(4, 8),
			kaas.WithStickinessBound(4),
		)
	} else {
		opts = append(opts, kaas.WithoutFairQueueing())
	}
	p, err := kaas.New(opts...)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	if err := p.RegisterByName("mci"); err != nil {
		return nil, err
	}

	clock := vclock.Scaled(scale)
	type rec struct {
		tenant string
		ok     bool
		sheds  int
		lat    time.Duration // modeled arrival-to-success
	}
	recs := make([]rec, len(trace))
	var mu sync.Mutex
	var unexpected error
	_, err = workload.Replay(context.Background(), clock, trace.Offsets(), 64, func(ctx context.Context, i int) (time.Duration, error) {
		e := trace[i]
		r := rec{tenant: e.Tenant}
		t0 := clock.Now()
		for attempt := 1; ; attempt++ {
			_, _, ierr := p.InvokeTenant(ctx, e.Tenant, e.Kernel, kaas.Params{"n": e.N}, nil)
			if ierr == nil {
				r.ok = true
				r.lat = clock.Now().Sub(t0)
				break
			}
			if !errors.Is(ierr, kaas.ErrOverloaded) {
				mu.Lock()
				if unexpected == nil {
					unexpected = fmt.Errorf("event %d (%s): %w", i, e.Tenant, ierr)
				}
				mu.Unlock()
				break
			}
			r.sheds++
			if attempt >= maxAttempts {
				break
			}
			backoff := attempt
			if backoff > 4 {
				backoff = 4
			}
			clock.Sleep(retryDelay * time.Duration(backoff))
		}
		mu.Lock()
		recs[i] = r
		mu.Unlock()
		return r.lat, nil
	})
	if err != nil {
		return nil, err
	}
	if unexpected != nil {
		return nil, unexpected
	}

	arm := &fairnessArm{Mode: mode, Tenants: make(map[string]fairnessTenant, len(fairnessTenants))}
	latencies := make(map[string][]time.Duration)
	shedsBy := make(map[string]int)
	for _, r := range recs {
		ts := arm.Tenants[r.tenant]
		ts.Issued++
		if r.ok {
			ts.OK++
			latencies[r.tenant] = append(latencies[r.tenant], r.lat)
		} else {
			ts.Failed++
		}
		arm.Sheds += r.sheds
		shedsBy[r.tenant] += r.sheds
		arm.Tenants[r.tenant] = ts
	}
	for tn, ts := range arm.Tenants {
		if ts.Issued > 0 {
			ts.Success = float64(ts.OK) / float64(ts.Issued)
		}
		if arm.Sheds > 0 {
			ts.ShedShare = float64(shedsBy[tn]) / float64(arm.Sheds)
		}
		ts.P99ms = p99ms(latencies[tn])
		arm.Tenants[tn] = ts
	}
	ks := p.Stats().PerKernel["mci"]
	arm.ColdStarts = ks.ColdStarts
	if ks.Invocations > 0 {
		arm.WarmHitRate = float64(ks.Invocations-ks.ColdStarts) / float64(ks.Invocations)
	}
	return arm, nil
}

// p99ms returns the 99th-percentile of the samples in milliseconds.
func p99ms(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := (len(ds)*99 + 99) / 100
	if idx > len(ds) {
		idx = len(ds)
	}
	return float64(ds[idx-1]) / float64(time.Millisecond)
}
