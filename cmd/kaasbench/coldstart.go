package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"kaas/internal/accel"
	"kaas/internal/artifact"
	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/scenario"
	"kaas/internal/vclock"
	"kaas/internal/workload"
)

// runColdStart measures the cold-start subsystem end to end and writes
// the report as JSON when out is non-empty.
//
// Phase A is the temperature ladder: on a fresh single-GPU platform with
// an artifact cache and a short keepalive, the same kernel is invoked
// cold (empty cache, pays the modeled JIT compile), cached-cold (after
// scale-to-zero reaped the runner, the reboot hits the compiled-artifact
// cache and skips the compile), and warm (live runner). Latencies are
// modeled time from the invocation reports, so the ladder is independent
// of machine speed.
//
// Phase B replays one synthesized diurnal trace against three platform
// configurations — always-warm (no keepalive: runners hold their device
// slots forever), scale-to-zero (idle runners release their slots), and
// scale-to-zero with predictive pre-warm — and compares tail latency
// against the device-seconds each configuration pays. Steady-state
// percentiles exclude each run's first invocation: every configuration
// pays that first boot, and what distinguishes them is what repeat
// arrivals cost.
type coldStartConfig struct {
	Samples int
	Seed    int64
	Scale   float64
	Out     string
}

// ladderStats summarizes one temperature rung in modeled milliseconds.
type ladderStats struct {
	MeanMS    float64 `json:"mean_ms"`
	MinMS     float64 `json:"min_ms"`
	MaxMS     float64 `json:"max_ms"`
	CompileMS float64 `json:"compile_ms"`
}

// diurnalRow is one Phase B configuration's outcome.
type diurnalRow struct {
	Config        string  `json:"config"`
	Events        int     `json:"events"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	SteadyP50MS   float64 `json:"steady_p50_ms"`
	SteadyP99MS   float64 `json:"steady_p99_ms"`
	DeviceSeconds float64 `json:"device_seconds"`
	ColdStarts    int     `json:"cold_starts"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	PreWarms      int     `json:"pre_warms"`
	Reaps         uint64  `json:"reaps"`
}

// coldStartReport is the BENCH_PR7 document.
type coldStartReport struct {
	GeneratedBy string  `json:"generated_by"`
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	Samples     int     `json:"samples"`

	Ladder struct {
		Cold       ladderStats `json:"cold"`
		CachedCold ladderStats `json:"cached_cold"`
		Warm       ladderStats `json:"warm"`
		// ColdOverCachedCold is the headline speedup the artifact cache
		// buys on a runner reboot.
		ColdOverCachedCold float64 `json:"cold_over_cached_cold"`
	} `json:"temperature_ladder"`

	Diurnal []diurnalRow `json:"diurnal_trace"`

	Summary struct {
		// PreWarmSteadyP99OverWarm compares the pre-warmed
		// configuration's steady-state p99 against always-warm's.
		PreWarmSteadyP99OverWarm float64 `json:"prewarm_steady_p99_over_warm"`
		// PreWarmDeviceSecondsFraction is the share of always-warm's
		// device-seconds the pre-warmed configuration paid.
		PreWarmDeviceSecondsFraction float64 `json:"prewarm_device_seconds_fraction"`
	} `json:"summary"`
}

func runColdStart(w io.Writer, cfg coldStartConfig) error {
	if cfg.Samples <= 0 {
		cfg.Samples = 5
	}
	rep := &coldStartReport{
		GeneratedBy: "kaasbench -coldstart",
		Seed:        cfg.Seed,
		Scale:       cfg.Scale,
		Samples:     cfg.Samples,
	}

	fmt.Fprintf(w, "cold-start bench: seed=%d scale=%.0fx samples=%d\n\n", cfg.Seed, cfg.Scale, cfg.Samples)
	if err := runLadder(w, cfg, rep); err != nil {
		return err
	}
	if err := runDiurnalComparison(w, cfg, rep); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nsummary: cached-cold reboot %.1fx faster than cold; pre-warm steady p99 %.2fx warm at %.0f%% of always-warm device-seconds\n",
		rep.Ladder.ColdOverCachedCold,
		rep.Summary.PreWarmSteadyP99OverWarm,
		100*rep.Summary.PreWarmDeviceSecondsFraction)

	if cfg.Out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", cfg.Out)
	}
	return nil
}

// ladderServer builds the fresh single-GPU platform one ladder sample
// runs against.
func ladderServer(clock vclock.Clock) (*core.Server, func(), error) {
	host, err := accel.NewHost(clock, "coldstart", accel.XeonE52698, accel.TeslaP100)
	if err != nil {
		return nil, nil, err
	}
	srv, err := core.New(core.Config{
		Clock: clock,
		Host:  host,
		// Short keepalive so the sample's scale-to-zero wait is cheap.
		KeepAlive:      core.KeepAlive{Idle: 5 * time.Second, SweepEvery: time.Second},
		Artifacts:      artifact.NewCache(64 << 20),
		DisableCompute: true,
	})
	if err != nil {
		host.Close()
		return nil, nil, err
	}
	cleanup := func() {
		srv.Close()
		host.Close()
	}
	k, err := kernels.ByName("mci")
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	if err := srv.Register(k); err != nil {
		cleanup()
		return nil, nil, err
	}
	return srv, cleanup, nil
}

// runLadder measures Phase A.
func runLadder(w io.Writer, cfg coldStartConfig, rep *coldStartReport) error {
	var cold, cached, warm, compile []time.Duration
	req := func() *kernels.Request {
		return &kernels.Request{Params: kernels.Params{"n": 2e9}}
	}
	for i := 0; i < cfg.Samples; i++ {
		clock := vclock.Scaled(cfg.Scale)
		srv, cleanup, err := ladderServer(clock)
		if err != nil {
			return err
		}
		ctx := context.Background()

		_, r1, err := srv.Invoke(ctx, "mci", req())
		if err != nil {
			cleanup()
			return fmt.Errorf("coldstart: cold invoke: %w", err)
		}
		if !r1.Cold || r1.CachedCold {
			cleanup()
			return fmt.Errorf("coldstart: first invoke was not an uncached cold start (cold=%v cached=%v)", r1.Cold, r1.CachedCold)
		}
		cold = append(cold, r1.Total())
		compile = append(compile, r1.Breakdown.Compile)

		// Wait for scale-to-zero: the keepalive reaper must release the
		// runner before the reboot can demonstrate a cache hit.
		deadline := time.Now().Add(10 * time.Second)
		for srv.Stats().Runners != 0 {
			if time.Now().After(deadline) {
				cleanup()
				return fmt.Errorf("coldstart: runner was never reaped")
			}
			time.Sleep(200 * time.Microsecond)
		}

		_, r2, err := srv.Invoke(ctx, "mci", req())
		if err != nil {
			cleanup()
			return fmt.Errorf("coldstart: cached-cold invoke: %w", err)
		}
		if !r2.Cold || !r2.CachedCold {
			cleanup()
			return fmt.Errorf("coldstart: reboot did not hit the artifact cache (cold=%v cached=%v)", r2.Cold, r2.CachedCold)
		}
		cached = append(cached, r2.Total())

		_, r3, err := srv.Invoke(ctx, "mci", req())
		if err != nil {
			cleanup()
			return fmt.Errorf("coldstart: warm invoke: %w", err)
		}
		if r3.Cold {
			cleanup()
			return fmt.Errorf("coldstart: third invoke was not warm")
		}
		warm = append(warm, r3.Total())
		cleanup()
	}

	rep.Ladder.Cold = summarize(cold, mean(compile))
	rep.Ladder.CachedCold = summarize(cached, 0)
	rep.Ladder.Warm = summarize(warm, 0)
	rep.Ladder.ColdOverCachedCold = rep.Ladder.Cold.MeanMS / rep.Ladder.CachedCold.MeanMS

	fmt.Fprintf(w, "temperature ladder (modeled time, mci n=2e9, %d samples):\n", cfg.Samples)
	fmt.Fprintf(w, "  %-12s %10s %10s %10s %10s\n", "temp", "mean", "min", "max", "compile")
	for _, row := range []struct {
		name string
		s    ladderStats
	}{{"cold", rep.Ladder.Cold}, {"cached-cold", rep.Ladder.CachedCold}, {"warm", rep.Ladder.Warm}} {
		fmt.Fprintf(w, "  %-12s %9.0fms %9.0fms %9.0fms %9.0fms\n",
			row.name, row.s.MeanMS, row.s.MinMS, row.s.MaxMS, row.s.CompileMS)
	}
	fmt.Fprintf(w, "  cold / cached-cold = %.1fx\n\n", rep.Ladder.ColdOverCachedCold)
	return nil
}

// diurnalSpec is the Phase B workload: the same sparse diurnal shape the
// diurnal-scale-to-zero scenario replays, with a fixed problem size so
// per-invocation latencies are comparable across configurations.
var diurnalSpec = scenario.TraceSpec{
	Events: 80,
	Arrivals: scenario.ArrivalSpec{
		Kind:      "diurnal",
		Mean:      90 * time.Second,
		Amplitude: 0.5,
		Period:    1800 * time.Second,
	},
	// A fixed, substantial problem size (~1s of modeled GPU time): the
	// regime scale-to-zero targets is kernels that do real work, where a
	// cached-cold reboot amortizes against execution rather than
	// dominating it.
	Mix: []scenario.KernelMix{{Kernel: "mci", Weight: 1, MinN: 1e11, MaxN: 1e11}},
}

// runDiurnalComparison measures Phase B.
func runDiurnalComparison(w io.Writer, cfg coldStartConfig, rep *coldStartReport) error {
	trace, err := scenario.Synthesize(diurnalSpec, cfg.Seed)
	if err != nil {
		return err
	}
	// cacheBytes 1 is the no-cache control: the compile model stays on,
	// but a 1-byte budget rejects every artifact, so each reboot pays
	// the full JIT — what scale-to-zero costs without the cache.
	configs := []struct {
		name       string
		keep       core.KeepAlive
		cacheBytes int64
	}{
		{"always-warm", core.KeepAlive{}, 64 << 20},
		{"scale-to-zero-nocache", core.KeepAlive{Idle: 30 * time.Second, SweepEvery: 10 * time.Second}, 1},
		{"scale-to-zero", core.KeepAlive{Idle: 30 * time.Second, SweepEvery: 10 * time.Second}, 64 << 20},
		{"scale-to-zero+prewarm", core.KeepAlive{Idle: 30 * time.Second, SweepEvery: 10 * time.Second, PreWarmLead: 15 * time.Second}, 64 << 20},
	}

	fmt.Fprintf(w, "diurnal trace (%d events over %.0f modeled minutes, mean gap 90s):\n",
		len(trace), trace.Duration().Minutes())
	fmt.Fprintf(w, "  %-22s %9s %9s %11s %6s %6s %8s %6s\n",
		"config", "p50", "steadyP99", "device-sec", "cold", "hits", "prewarms", "reaps")

	for _, c := range configs {
		row, err := replayConfig(c.name, c.keep, c.cacheBytes, trace, cfg.Scale)
		if err != nil {
			return err
		}
		rep.Diurnal = append(rep.Diurnal, *row)
		fmt.Fprintf(w, "  %-22s %7.0fms %7.0fms %11.0f %6d %6d %8d %6d\n",
			row.Config, row.P50MS, row.SteadyP99MS, row.DeviceSeconds,
			row.ColdStarts, row.CacheHits, row.PreWarms, row.Reaps)
	}

	warmRow, preRow := rep.Diurnal[0], rep.Diurnal[3]
	rep.Summary.PreWarmSteadyP99OverWarm = preRow.SteadyP99MS / warmRow.SteadyP99MS
	rep.Summary.PreWarmDeviceSecondsFraction = preRow.DeviceSeconds / warmRow.DeviceSeconds
	return nil
}

// replayConfig replays the trace against one platform configuration and
// collects its latency distribution and device-second bill.
func replayConfig(name string, keep core.KeepAlive, cacheBytes int64, trace scenario.Trace, scale float64) (*diurnalRow, error) {
	clock := vclock.Scaled(scale)
	host, err := accel.NewHost(clock, "diurnal", accel.XeonE52698, accel.TeslaP100, accel.TeslaP100)
	if err != nil {
		return nil, err
	}
	defer host.Close()
	srv, err := core.New(core.Config{
		Clock:          clock,
		Host:           host,
		KeepAlive:      keep,
		Artifacts:      artifact.NewCache(cacheBytes),
		DisableCompute: true,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	k, err := kernels.ByName("mci")
	if err != nil {
		return nil, err
	}
	if err := srv.Register(k); err != nil {
		return nil, err
	}

	latencies := make([]time.Duration, len(trace))
	task := func(ctx context.Context, i int) (time.Duration, error) {
		e := trace[i]
		_, r, err := srv.Invoke(ctx, e.Kernel, &kernels.Request{Params: kernels.Params{"n": e.N}})
		if err != nil {
			return 0, fmt.Errorf("coldstart: %s event %d: %w", name, i, err)
		}
		latencies[i] = r.Total()
		return r.Total(), nil
	}
	if _, err := workload.Replay(context.Background(), clock, trace.Offsets(), 32, task); err != nil {
		return nil, err
	}

	st := srv.Stats()
	row := &diurnalRow{
		Config:     name,
		Events:     len(trace),
		ColdStarts: st.ColdStarts,
		PreWarms:   st.PreWarms,
		Reaps:      st.Reaps,
	}
	if st.ArtifactCache != nil {
		row.CacheHits = st.ArtifactCache.Hits
		row.CacheMisses = st.ArtifactCache.Misses
	}
	for _, d := range st.PerDevice {
		row.DeviceSeconds += d.SlotBusy.Seconds()
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	row.P50MS = pctMS(sorted, 0.50)
	row.P99MS = pctMS(sorted, 0.99)
	// Steady state drops the run's first arrival: every configuration
	// pays that first boot; repeat arrivals are where they differ.
	steady := sorted[:0:0]
	for i, l := range latencies {
		if i == 0 {
			continue
		}
		steady = append(steady, l)
	}
	sort.Slice(steady, func(i, j int) bool { return steady[i] < steady[j] })
	row.SteadyP50MS = pctMS(steady, 0.50)
	row.SteadyP99MS = pctMS(steady, 0.99)
	return row, nil
}

// summarize reduces modeled samples to a ladder row.
func summarize(samples []time.Duration, compileMean float64) ladderStats {
	min, max := samples[0], samples[0]
	for _, s := range samples {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return ladderStats{
		MeanMS:    mean(samples),
		MinMS:     float64(min) / float64(time.Millisecond),
		MaxMS:     float64(max) / float64(time.Millisecond),
		CompileMS: compileMean,
	}
}

// mean returns the average in modeled milliseconds.
func mean(samples []time.Duration) float64 {
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return float64(sum) / float64(len(samples)) / float64(time.Millisecond)
}

// pctMS reads a nearest-rank percentile in modeled milliseconds.
func pctMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted)-1)*p + 0.5)
	return float64(sorted[idx]) / float64(time.Millisecond)
}
