// Command kaasbench regenerates the paper's evaluation figures against
// the simulated accelerator testbeds and prints each as a text table.
//
// Usage:
//
//	kaasbench -fig 6a            # one figure
//	kaasbench -fig all           # every figure, in paper order
//	kaasbench -fig 14 -quick     # reduced sweep
//	kaasbench -list              # available figure IDs
//	kaasbench -faultcheck        # invocation-path robustness smoke run
//	kaasbench -loadgen 200 -loadgen-conc 8 n=1000    # latency percentiles
//	kaasbench -loadgen 100 -server 127.0.0.1:7070    # against a running kaasd
//	kaasbench -overload 400 -overload-conc 64        # admission + breaker report
//	kaasbench -failover 300 -failover-out BENCH_PR8.json   # cluster failover ladder
//	kaasbench -fairness 650 -fairness-out BENCH_PR9.json   # FCFS vs WFQ noisy neighbor
//	kaasbench -oob -oob-out BENCH_PR10.json          # zero-copy data plane + micro-batch sweep
//	kaasbench -scenario list                         # named replay/chaos scenarios
//	kaasbench -scenario all -seed 1                  # full matrix against its invariants
//	kaasbench -scenario chaos-flap -scenario-out out.json
//
// -faultcheck stands apart from the figures: it serves a platform
// through a fault-injecting listener (internal/faults) that breaks every
// other connection — truncated frames, resets, corrupted bytes, slow
// writes — and reports how many invocations a retrying client completed
// and what the retries cost.
//
// -loadgen drives N concurrent invocations of one kernel — against a
// running kaasd when -server is set, else against an in-process platform
// — and prints client-observed p50/p95/p99 latency split by cold and
// warm starts, the client-side view of the server's latency histograms.
//
// -overload drives an in-process platform configured with admission
// limits well below the offered concurrency while one of its two GPUs
// flaps, and reports the shed rate, the latency percentiles of the
// admitted requests, and the circuit-breaker transition counts.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"kaas"
	"kaas/internal/client"
	"kaas/internal/experiments"
	"kaas/internal/faults"
	"kaas/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kaasbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kaasbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure ID to regenerate (2, 6a, 6b, 7, 8, 9, 10, 11, 12a, 12b, 13, 14, 15, 16a, 16b, 17, or all)")
	quick := fs.Bool("quick", false, "run reduced sweeps")
	samples := fs.Int("samples", 3, "samples per measurement (the paper uses 10)")
	scale := fs.Float64("scale", 2000, "modeled seconds per wall second")
	list := fs.Bool("list", false, "list available figures")
	faultcheck := fs.Bool("faultcheck", false, "run the invocation-path fault-injection smoke benchmark")
	faultN := fs.Int("fault-invocations", 40, "invocations for -faultcheck")
	loadgen := fs.Int("loadgen", 0, "drive this many invocations and print latency percentiles (0 = off)")
	server := fs.String("server", "", "kaasd address for -loadgen (empty = in-process platform)")
	lgKernel := fs.String("loadgen-kernel", "mci", "kernel for -loadgen")
	lgConc := fs.Int("loadgen-conc", 8, "concurrent clients for -loadgen")
	overload := fs.Int("overload", 0, "drive this many invocations past the admission limits and report shed rate, admitted p99, and breaker transitions (0 = off)")
	ovConc := fs.Int("overload-conc", 64, "concurrent clients for -overload")
	mux := fs.Bool("mux", false, "use the multiplexed transport (protocol v2) for -loadgen")
	conns := fs.Int("conns", 4, "shared connections for -mux")
	sweep := fs.Int("sweep", 0, "compare pooled vs. multiplexed transports with this many invocations per cell (0 = off)")
	sweepReps := fs.Int("sweep-reps", 3, "measurement repetitions per -sweep cell (the best is kept)")
	sweepConc := fs.String("sweep-conc", "1,8,64", "comma-separated concurrency levels for -sweep")
	sweepConns := fs.Int("sweep-conns", 4, "shared connections for the muxed cells of -sweep")
	sweepKernel := fs.String("sweep-kernel", "mci", "kernel for -sweep")
	sweepOut := fs.String("sweep-out", "", "write the -sweep report as JSON to this file")
	sweepFigures := fs.String("sweep-figures", "", "file of go test -bench output to embed in the -sweep report")
	sweepProfile := fs.String("sweep-cpuprofile", "", "write a pprof CPU profile per -sweep cell with this path prefix")
	coldstart := fs.Bool("coldstart", false, "measure the cold/cached-cold/warm temperature ladder and the diurnal scale-to-zero device-seconds tradeoff")
	coldstartOut := fs.String("coldstart-out", "", "write the -coldstart report as JSON to this file")
	failover := fs.Int("failover", 0, "run the cross-host failover ladder (steady / node-kill / post-recovery) with this many invocations per phase, plus the retry-budget storm comparison (0 = off)")
	failoverConc := fs.Int("failover-conc", 16, "concurrent clients for -failover")
	failoverOut := fs.String("failover-out", "", "write the -failover report as JSON to this file")
	fairness := fs.Int("fairness", 0, "replay a noisy-neighbor trace with this many events through FCFS and WFQ arms and compare victim p99, shed charging, and warm-hit rate (0 = off)")
	fairnessOut := fs.String("fairness-out", "", "write the -fairness report as JSON to this file")
	scenarioName := fs.String("scenario", "", "run a named replay/chaos scenario against its invariants (a name, all, or list)")
	seed := fs.Int64("seed", 1, "scenario seed: same seed, same trace, same chaos, same verdict lines")
	scenarioOut := fs.String("scenario-out", "", "write the -scenario results (with diagnostics) as JSON to this file")
	scenarioTrace := fs.String("scenario-trace", "", "replay this recorded CSV trace (offset_ms,kernel,n,payload) through the named scenario instead of its synthetic trace")
	oob := fs.Bool("oob", false, "sweep the zero-copy out-of-band data plane (alloc/op per payload size) and the micro-batcher (dispatches per batch window), gated on flat budgets")
	oobN := fs.Int("oob-invocations", 384, "invocations per -oob cell")
	oobConc := fs.Int("oob-conc", 64, "concurrent clients for -oob")
	oobOut := fs.String("oob-out", "", "write the -oob report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *oob {
		return runOOB(os.Stdout, oobConfig{
			Invocations: *oobN,
			Conc:        *oobConc,
			Scale:       *scale,
			Seed:        *seed,
			Out:         *oobOut,
		})
	}

	if *scenarioName != "" {
		return runScenario(os.Stdout, *scenarioName, *seed, *scale, *scenarioTrace, *scenarioOut)
	}

	if *failover > 0 {
		return runFailover(os.Stdout, failoverConfig{
			Invocations: *failover,
			Conc:        *failoverConc,
			Scale:       *scale,
			Out:         *failoverOut,
		})
	}

	if *fairness > 0 {
		return runFairness(os.Stdout, fairnessConfig{
			Events: *fairness,
			Scale:  *scale,
			Out:    *fairnessOut,
		})
	}

	if *coldstart {
		return runColdStart(os.Stdout, coldStartConfig{
			Samples: *samples,
			Seed:    *seed,
			Scale:   *scale,
			Out:     *coldstartOut,
		})
	}

	if *faultcheck {
		return runFaultCheck(os.Stdout, *faultN)
	}

	if *overload > 0 {
		return runOverload(os.Stdout, *overload, *ovConc, *scale)
	}

	if *sweep > 0 {
		levels, err := parseConcLevels(*sweepConc)
		if err != nil {
			return err
		}
		return runSweep(os.Stdout, sweepConfig{
			Invocations: *sweep,
			Reps:        *sweepReps,
			Concurrency: levels,
			Conns:       *sweepConns,
			Kernel:      *sweepKernel,
			Scale:       *scale,
			Out:         *sweepOut,
			Figures:     *sweepFigures,
			CPUProfile:  *sweepProfile,
		})
	}

	if *loadgen > 0 {
		params, err := parseParams(fs.Args())
		if err != nil {
			return err
		}
		return runLoadgen(os.Stdout, *server, *lgKernel, *loadgen, *lgConc, *scale, params, *mux, *conns)
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return nil
	}

	opts := experiments.Options{Quick: *quick, Samples: *samples, Scale: *scale}

	if *fig == "all" {
		for _, e := range experiments.Registry() {
			table, err := e.Run(opts)
			if err != nil {
				return fmt.Errorf("figure %s: %w", e.ID, err)
			}
			fmt.Println(table.String())
		}
		return nil
	}

	runner, err := experiments.ByID(*fig)
	if err != nil {
		return err
	}
	table, err := runner(opts)
	if err != nil {
		return fmt.Errorf("figure %s: %w", *fig, err)
	}
	fmt.Println(table.String())
	return nil
}

// runFaultCheck serves a platform through a fault-injecting listener and
// measures how a retrying client fares: every other connection gets one
// of the fault modes, so roughly half of all fresh connections fail and
// must be retried. It prints the completion count and retry cost.
func runFaultCheck(w *os.File, invocations int) error {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// Every connection is eventually fatal: frames truncate, the stream
	// corrupts, or writes drop after a budget of bytes — so the client
	// must keep replacing connections for the whole run. SlowWrite conns
	// survive on their own and are killed by the periodic CloseRandom
	// below, exercising the stale-pooled-connection path.
	script := faults.Script(
		faults.Plan{Mode: faults.CloseMidFrame},
		faults.Plan{Mode: faults.DropAfterN, N: 800},
		// Corrupt a magic byte: the client detects the desync on the
		// next read instead of waiting out its deadline on a frame
		// whose corrupted length field promises bytes that never come.
		faults.Plan{Mode: faults.CorruptFrame, N: 2},
		faults.Plan{Mode: faults.SlowWrite, Chunk: 64, Delay: 100 * time.Microsecond},
	)
	ln := faults.Wrap(raw, script)

	p, err := kaas.New(
		kaas.WithAccelerators(kaas.TeslaP100),
		kaas.WithListener(ln),
		kaas.WithInvokeTimeout(10*time.Second),
		kaas.WithRetryPolicy(kaas.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond}),
	)
	if err != nil {
		return err
	}
	defer p.Close()

	c, err := p.NewClient()
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Register("mci"); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	completed := 0
	var lat metrics.Sample
	for i := 0; i < invocations; i++ {
		t0 := time.Now()
		if _, err := c.Invoke("mci", kaas.Params{"n": 1000, "seed": float64(i)}, nil); err != nil {
			fmt.Fprintf(w, "invocation %d failed permanently: %v\n", i, err)
			continue
		}
		lat.AddDuration(time.Since(t0))
		completed++
		if i%5 == 4 {
			ln.CloseRandom(rng)
		}
	}
	elapsed := time.Since(start)
	m := c.Metrics()
	fmt.Fprintf(w, "fault-injection smoke run: %d/%d invocations completed in %v\n",
		completed, invocations, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  connections accepted: %d\n", ln.Accepted())
	fmt.Fprintf(w, "  client attempts:      %d\n", m.Attempts)
	fmt.Fprintf(w, "  retries:              %d\n", m.Retries)
	fmt.Fprintf(w, "  stale pooled conns:   %d\n", m.StaleConns)
	fmt.Fprintf(w, "  connection errors:    %d\n", m.ConnErrors)
	fmt.Fprintf(w, "  remote errors:        %d\n", m.RemoteErrors)
	fmt.Fprintf(w, "  latency (incl. retries): %s\n", percentileLine(&lat))
	if completed != invocations {
		return fmt.Errorf("faultcheck: %d of %d invocations failed", invocations-completed, invocations)
	}
	return nil
}

// runLoadgen fires n invocations of one kernel at conc concurrency and
// prints the client-observed latency distribution split by cold and warm
// starts. With a -server address it drives a running kaasd; otherwise it
// hosts an in-process platform at the given time scale. With mux the
// client multiplexes all calls over conns shared connections instead of
// one connection per in-flight request.
func runLoadgen(w io.Writer, server, kernel string, n, conc int, scale float64, params kaas.Params, mux bool, conns int) error {
	var c *kaas.Client
	if server == "" {
		popts := []kaas.Option{
			kaas.WithListenAddr("127.0.0.1:0"),
			kaas.WithTimeScale(scale),
			kaas.WithAccelerators(kaas.TeslaP100, kaas.TeslaP100),
		}
		if mux {
			popts = append(popts, kaas.WithClientMux(conns))
		}
		p, err := kaas.New(popts...)
		if err != nil {
			return err
		}
		defer p.Close()
		c, err = p.NewClient()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "loadgen: in-process platform (2x Tesla P100, scale %.0fx)\n", scale)
	} else {
		var copts []client.Option
		if mux {
			copts = append(copts, client.WithMux(conns))
		}
		c = client.Dial(server, copts...)
		fmt.Fprintf(w, "loadgen: driving %s\n", server)
	}
	if mux {
		fmt.Fprintf(w, "loadgen: multiplexed transport over %d shared connections\n", conns)
	}
	defer c.Close()
	if err := c.Register(kernel); err != nil {
		return err
	}

	if conc < 1 {
		conc = 1
	}
	var (
		mu         sync.Mutex
		cold, warm metrics.Sample
		lastID     string
		failures   int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				res, err := c.Invoke(kernel, params, nil)
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					failures++
				} else if res.Cold {
					cold.AddDuration(d)
					lastID = res.InvocationID
				} else {
					warm.AddDuration(d)
					lastID = res.InvocationID
				}
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Fprintf(w, "loadgen: %d invocations of %q at concurrency %d in %v (%.1f/s)\n",
		n, kernel, conc, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	if failures > 0 {
		fmt.Fprintf(w, "  failures: %d\n", failures)
	}
	fmt.Fprintf(w, "  cold starts: %s\n", percentileLine(&cold))
	fmt.Fprintf(w, "  warm starts: %s\n", percentileLine(&warm))
	if lastID != "" {
		fmt.Fprintf(w, "  last invocation ID: %s\n", lastID)
	}
	if failures > 0 {
		return fmt.Errorf("loadgen: %d of %d invocations failed", failures, n)
	}
	return nil
}

// percentileLine renders a latency sample as count + p50/p95/p99.
func percentileLine(s *metrics.Sample) string {
	if s.N() == 0 {
		return "n=0"
	}
	sec := func(p float64) time.Duration {
		return time.Duration(s.Percentile(p) * float64(time.Second)).Round(10 * time.Microsecond)
	}
	return fmt.Sprintf("n=%d  p50=%v  p95=%v  p99=%v", s.N(), sec(50), sec(95), sec(99))
}

// parseParams converts trailing key=value arguments to kernel params.
func parseParams(args []string) (kaas.Params, error) {
	params := make(kaas.Params, len(args))
	for _, a := range args {
		key, value, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("bad parameter %q, want key=value", a)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("parameter %q: %w", a, err)
		}
		params[key] = v
	}
	return params, nil
}
