// Command kaasbench regenerates the paper's evaluation figures against
// the simulated accelerator testbeds and prints each as a text table.
//
// Usage:
//
//	kaasbench -fig 6a            # one figure
//	kaasbench -fig all           # every figure, in paper order
//	kaasbench -fig 14 -quick     # reduced sweep
//	kaasbench -list              # available figure IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"kaas/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kaasbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kaasbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure ID to regenerate (2, 6a, 6b, 7, 8, 9, 10, 11, 12a, 12b, 13, 14, 15, 16a, 16b, 17, or all)")
	quick := fs.Bool("quick", false, "run reduced sweeps")
	samples := fs.Int("samples", 3, "samples per measurement (the paper uses 10)")
	scale := fs.Float64("scale", 2000, "modeled seconds per wall second")
	list := fs.Bool("list", false, "list available figures")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return nil
	}

	opts := experiments.Options{Quick: *quick, Samples: *samples, Scale: *scale}

	if *fig == "all" {
		for _, e := range experiments.Registry() {
			table, err := e.Run(opts)
			if err != nil {
				return fmt.Errorf("figure %s: %w", e.ID, err)
			}
			fmt.Println(table.String())
		}
		return nil
	}

	runner, err := experiments.ByID(*fig)
	if err != nil {
		return err
	}
	table, err := runner(opts)
	if err != nil {
		return fmt.Errorf("figure %s: %w", *fig, err)
	}
	fmt.Println(table.String())
	return nil
}
