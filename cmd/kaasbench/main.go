// Command kaasbench regenerates the paper's evaluation figures against
// the simulated accelerator testbeds and prints each as a text table.
//
// Usage:
//
//	kaasbench -fig 6a            # one figure
//	kaasbench -fig all           # every figure, in paper order
//	kaasbench -fig 14 -quick     # reduced sweep
//	kaasbench -list              # available figure IDs
//	kaasbench -faultcheck        # invocation-path robustness smoke run
//
// -faultcheck stands apart from the figures: it serves a platform
// through a fault-injecting listener (internal/faults) that breaks every
// other connection — truncated frames, resets, corrupted bytes, slow
// writes — and reports how many invocations a retrying client completed
// and what the retries cost.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"kaas"
	"kaas/internal/experiments"
	"kaas/internal/faults"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kaasbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kaasbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure ID to regenerate (2, 6a, 6b, 7, 8, 9, 10, 11, 12a, 12b, 13, 14, 15, 16a, 16b, 17, or all)")
	quick := fs.Bool("quick", false, "run reduced sweeps")
	samples := fs.Int("samples", 3, "samples per measurement (the paper uses 10)")
	scale := fs.Float64("scale", 2000, "modeled seconds per wall second")
	list := fs.Bool("list", false, "list available figures")
	faultcheck := fs.Bool("faultcheck", false, "run the invocation-path fault-injection smoke benchmark")
	faultN := fs.Int("fault-invocations", 40, "invocations for -faultcheck")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *faultcheck {
		return runFaultCheck(os.Stdout, *faultN)
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return nil
	}

	opts := experiments.Options{Quick: *quick, Samples: *samples, Scale: *scale}

	if *fig == "all" {
		for _, e := range experiments.Registry() {
			table, err := e.Run(opts)
			if err != nil {
				return fmt.Errorf("figure %s: %w", e.ID, err)
			}
			fmt.Println(table.String())
		}
		return nil
	}

	runner, err := experiments.ByID(*fig)
	if err != nil {
		return err
	}
	table, err := runner(opts)
	if err != nil {
		return fmt.Errorf("figure %s: %w", *fig, err)
	}
	fmt.Println(table.String())
	return nil
}

// runFaultCheck serves a platform through a fault-injecting listener and
// measures how a retrying client fares: every other connection gets one
// of the fault modes, so roughly half of all fresh connections fail and
// must be retried. It prints the completion count and retry cost.
func runFaultCheck(w *os.File, invocations int) error {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// Every connection is eventually fatal: frames truncate, the stream
	// corrupts, or writes drop after a budget of bytes — so the client
	// must keep replacing connections for the whole run. SlowWrite conns
	// survive on their own and are killed by the periodic CloseRandom
	// below, exercising the stale-pooled-connection path.
	script := faults.Script(
		faults.Plan{Mode: faults.CloseMidFrame},
		faults.Plan{Mode: faults.DropAfterN, N: 800},
		// Corrupt a magic byte: the client detects the desync on the
		// next read instead of waiting out its deadline on a frame
		// whose corrupted length field promises bytes that never come.
		faults.Plan{Mode: faults.CorruptFrame, N: 2},
		faults.Plan{Mode: faults.SlowWrite, Chunk: 64, Delay: 100 * time.Microsecond},
	)
	ln := faults.Wrap(raw, script)

	p, err := kaas.New(
		kaas.WithAccelerators(kaas.TeslaP100),
		kaas.WithListener(ln),
		kaas.WithInvokeTimeout(10*time.Second),
		kaas.WithRetryPolicy(kaas.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond}),
	)
	if err != nil {
		return err
	}
	defer p.Close()

	c, err := p.NewClient()
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Register("mci"); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	completed := 0
	for i := 0; i < invocations; i++ {
		if _, err := c.Invoke("mci", kaas.Params{"n": 1000, "seed": float64(i)}, nil); err != nil {
			fmt.Fprintf(w, "invocation %d failed permanently: %v\n", i, err)
			continue
		}
		completed++
		if i%5 == 4 {
			ln.CloseRandom(rng)
		}
	}
	elapsed := time.Since(start)
	m := c.Metrics()
	fmt.Fprintf(w, "fault-injection smoke run: %d/%d invocations completed in %v\n",
		completed, invocations, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  connections accepted: %d\n", ln.Accepted())
	fmt.Fprintf(w, "  client attempts:      %d\n", m.Attempts)
	fmt.Fprintf(w, "  retries:              %d\n", m.Retries)
	fmt.Fprintf(w, "  stale pooled conns:   %d\n", m.StaleConns)
	fmt.Fprintf(w, "  connection errors:    %d\n", m.ConnErrors)
	fmt.Fprintf(w, "  remote errors:        %d\n", m.RemoteErrors)
	if completed != invocations {
		return fmt.Errorf("faultcheck: %d of %d invocations failed", invocations-completed, invocations)
	}
	return nil
}
