// The -sweep mode: a head-to-head comparison of the two client
// transports — pooled (one request per connection, protocol v1) and
// multiplexed (many streams per connection, protocol v2) — across client
// concurrency levels, reporting throughput, latency percentiles, and
// allocation cost per invocation. CI runs it to produce the committed
// BENCH_PR5.json baseline.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"kaas"
	"kaas/internal/metrics"
)

// sweepConfig parameterizes one transport sweep.
type sweepConfig struct {
	Invocations int     // invocations per cell
	Reps        int     // measurement repetitions per cell (best kept)
	Concurrency []int   // client concurrency levels
	Conns       int     // shared connections for the muxed cells
	Kernel      string  // kernel under load
	Scale       float64 // modeled seconds per wall second
	Out         string  // JSON report path ("" = stdout table only)
	Figures     string  // optional go test -bench output to embed
	CPUProfile  string  // optional pprof profile path prefix per cell
}

// sweepCell is one measured (transport, concurrency) cell.
type sweepCell struct {
	Transport   string  `json:"transport"` // "pooled" or "mux"
	Concurrency int     `json:"concurrency"`
	Invocations int     `json:"invocations"`
	ThroughputS float64 `json:"throughputPerSec"`
	P50Millis   float64 `json:"p50Millis"`
	P99Millis   float64 `json:"p99Millis"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
}

// sweepReport is the JSON document written to -sweep-out.
type sweepReport struct {
	Kernel      string             `json:"kernel"`
	Scale       float64            `json:"scale"`
	Conns       int                `json:"muxConns"`
	Invocations int                `json:"invocationsPerCell"`
	Reps        int                `json:"repsPerCell"`
	GoVersion   string             `json:"goVersion"`
	Cells       []sweepCell        `json:"cells"`
	Speedup     map[string]float64 `json:"muxSpeedupByConcurrency"`
	Figures     []string           `json:"figureBenchmarks,omitempty"`
}

// parseConcLevels parses a comma-separated concurrency list.
func parseConcLevels(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		levels = append(levels, n)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("no concurrency levels in %q", s)
	}
	return levels, nil
}

// runSweep measures every (transport, concurrency) cell, prints a
// comparison table, and optionally writes the JSON report.
func runSweep(w io.Writer, cfg sweepConfig) error {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	report := sweepReport{
		Kernel:      cfg.Kernel,
		Scale:       cfg.Scale,
		Conns:       cfg.Conns,
		Invocations: cfg.Invocations,
		Reps:        cfg.Reps,
		GoVersion:   runtime.Version(),
		Speedup:     make(map[string]float64),
	}

	fmt.Fprintf(w, "transport sweep: %d invocations of %q per cell, mux over %d conns, scale %.0fx\n",
		cfg.Invocations, cfg.Kernel, cfg.Conns, cfg.Scale)
	fmt.Fprintf(w, "%-8s %5s %12s %10s %10s %10s\n",
		"mode", "conc", "thr/s", "p50", "p99", "allocs/op")
	for _, conc := range cfg.Concurrency {
		var pooled, muxed sweepCell
		for _, mux := range []bool{false, true} {
			cell, err := runSweepCell(cfg, conc, mux)
			if err != nil {
				return err
			}
			report.Cells = append(report.Cells, cell)
			fmt.Fprintf(w, "%-8s %5d %12.1f %10v %10v %10.1f\n",
				cell.Transport, conc, cell.ThroughputS,
				time.Duration(cell.P50Millis*float64(time.Millisecond)).Round(10*time.Microsecond),
				time.Duration(cell.P99Millis*float64(time.Millisecond)).Round(10*time.Microsecond),
				cell.AllocsPerOp)
			if mux {
				muxed = cell
			} else {
				pooled = cell
			}
		}
		if pooled.ThroughputS > 0 {
			speedup := muxed.ThroughputS / pooled.ThroughputS
			report.Speedup[strconv.Itoa(conc)] = speedup
			fmt.Fprintf(w, "%-8s %5d %11.2fx\n", "speedup", conc, speedup)
		}
	}

	if cfg.Figures != "" {
		data, err := os.ReadFile(cfg.Figures)
		if err != nil {
			return fmt.Errorf("read figures file: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "Benchmark") {
				report.Figures = append(report.Figures, strings.Join(strings.Fields(line), " "))
			}
		}
	}

	if cfg.Out != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.Out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "sweep report written to %s\n", cfg.Out)
	}
	return nil
}

// runSweepCell measures one cell on a fresh in-process platform so cold
// starts and pool state never leak between cells. Allocation cost is the
// process-wide malloc delta across the measured run divided by the
// invocation count — an upper bound that includes both client and server
// sides of the call.
func runSweepCell(cfg sweepConfig, conc int, mux bool) (sweepCell, error) {
	cell := sweepCell{Transport: "pooled", Concurrency: conc, Invocations: cfg.Invocations}
	popts := []kaas.Option{
		kaas.WithListenAddr("127.0.0.1:0"),
		kaas.WithTimeScale(cfg.Scale),
		kaas.WithAccelerators(kaas.TeslaP100, kaas.TeslaP100, kaas.TeslaP100, kaas.TeslaP100),
		kaas.WithMaxInFlight(32),
		// The sweep measures the invocation path, not kernel math:
		// modeled device time still accrues, but the real result
		// computation (which costs the same on every transport) is off.
		kaas.WithoutResultComputation(),
	}
	if mux {
		cell.Transport = "mux"
		popts = append(popts, kaas.WithClientMux(cfg.Conns))
	}
	p, err := kaas.New(popts...)
	if err != nil {
		return cell, err
	}
	defer p.Close()
	c, err := p.NewClient()
	if err != nil {
		return cell, err
	}
	defer c.Close()
	if err := c.Register(cfg.Kernel); err != nil {
		return cell, err
	}

	params := kaas.Params{"n": 200, "seed": 1}
	run := func(n int, lat *metrics.Sample) error {
		var (
			mu       sync.Mutex
			firstErr error
		)
		work := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < conc; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range work {
					t0 := time.Now()
					_, err := c.Invoke(cfg.Kernel, params, nil)
					d := time.Since(t0)
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					if lat != nil {
						lat.AddDuration(d)
					}
					mu.Unlock()
				}
			}()
		}
		for i := 0; i < n; i++ {
			work <- struct{}{}
		}
		close(work)
		wg.Wait()
		return firstErr
	}

	// Warm up runners, connections, and the kernel before measuring.
	warmup := 2 * conc
	if warmup < 32 {
		warmup = 32
	}
	if err := run(warmup, nil); err != nil {
		return cell, err
	}

	if cfg.CPUProfile != "" {
		f, err := os.Create(fmt.Sprintf("%s-%s-c%d.pprof", cfg.CPUProfile, cell.Transport, conc))
		if err != nil {
			return cell, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return cell, err
		}
		defer pprof.StopCPUProfile()
	}

	// Measure the cell cfg.Reps times and keep the best-throughput
	// repetition (both transports symmetrically): on a shared host a
	// single run is hostage to GC pauses and scheduler noise, and the
	// fastest repetition is the cleanest view of steady-state cost.
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	for rep := 0; rep < reps; rep++ {
		var lat metrics.Sample
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := run(cfg.Invocations, &lat); err != nil {
			return cell, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)

		thr := float64(cfg.Invocations) / elapsed.Seconds()
		if thr <= cell.ThroughputS {
			continue
		}
		cell.ThroughputS = thr
		cell.P50Millis = lat.Percentile(50) * 1e3
		cell.P99Millis = lat.Percentile(99) * 1e3
		cell.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(cfg.Invocations)
		cell.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.Invocations)
	}
	if cfg.CPUProfile != "" {
		f, err := os.Create(fmt.Sprintf("%s-%s-c%d.allocs", cfg.CPUProfile, cell.Transport, conc))
		if err == nil {
			pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}
	}
	return cell, nil
}
