// Command kaasd runs a KaaS server: a simulated accelerator host with the
// KaaS control plane, serving the KaaS wire protocol over TCP.
//
// Usage:
//
//	kaasd -listen 127.0.0.1:7070 -gpus 4 -fpgas 1 -scale 1
//	kaasd -listen 127.0.0.1:7070 -metrics 127.0.0.1:9090
//	kaasd -listen 127.0.0.1:7071 -node-name b -join 127.0.0.1:7070
//
// With -node-name the daemon joins the wire-backed cluster control
// plane: it heartbeats the -join seeds (and any peers it learns from
// them), gossips its health summary, adopts kernels registered on
// peers, and answers `kaasctl cluster status`.
//
// With -scale 1 the device cost models run in real time; larger scales
// compress modeled time for demonstrations. With -metrics the server
// exposes its per-kernel and per-device counters, gauges, and latency
// histograms in the Prometheus text format at http://<addr>/metrics.
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting
// work, lets in-flight invocations finish (bounded by -drain-timeout),
// and only then exits. A second signal cuts the drain short.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kaas"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kaasd:", err)
		os.Exit(1)
	}
}

// parseTenantWeights parses "tenant=weight,tenant=weight" into the map
// WithTenantWeights takes. Weights must be positive.
func parseTenantWeights(s string) (map[string]float64, error) {
	weights := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenant-weights: %q is not tenant=weight", pair)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights: tenant %q needs a positive weight, got %q", name, val)
		}
		weights[name] = w
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("-tenant-weights: no tenant=weight pairs found")
	}
	return weights, nil
}

// run starts the daemon and blocks until a shutdown signal has been
// handled. ready, when non-nil, receives the TCP listen address once the
// server is serving (tests use it to connect before signaling).
func run(args []string, ready ...chan<- string) error {
	fs := flag.NewFlagSet("kaasd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "TCP listen address")
	gpus := fs.Int("gpus", 4, "number of simulated Tesla P100 GPUs")
	fpgas := fs.Int("fpgas", 1, "number of simulated Alveo U250 FPGAs")
	tpus := fs.Int("tpus", 0, "number of simulated TPU v3 chips")
	qpus := fs.Int("qpus", 0, "number of simulated QPU backends")
	scale := fs.Float64("scale", 1, "modeled seconds per wall second")
	idle := fs.Duration("idle-timeout", 0, "reap task runners idle this long (0 = never); modeled time")
	sweep := fs.Duration("keepalive-sweep", 0, "idle-reaper sweep cadence (0 = half the idle timeout); modeled time")
	prewarmLead := fs.Duration("prewarm-lead", 0, "boot a speculative runner this long before the predicted next arrival of a scaled-to-zero kernel (0 = off); modeled time")
	artifactCache := fs.Int64("artifact-cache-bytes", 0, "compiled-kernel artifact cache budget in bytes (0 = no cache)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a shutdown signal waits for in-flight invocations (0 = exit immediately)")
	metricsAddr := fs.String("metrics", "", "serve Prometheus metrics over HTTP on this address (e.g. 127.0.0.1:9090)")
	nodeName := fs.String("node-name", "", "join the wire-backed cluster control plane under this node name")
	join := fs.String("join", "", "comma-separated peer addresses to seed cluster membership (requires -node-name)")
	heartbeat := fs.Duration("heartbeat", 0, "cluster heartbeat interval per peer (0 = default 1s); modeled time")
	suspectAfter := fs.Int("suspect-after", 0, "consecutive heartbeat misses that mark a peer down (0 = default 2)")
	register := fs.Bool("register-suite", false, "pre-register every built-in kernel with a matching device")
	maxConnStreams := fs.Int("max-conn-streams", 0, "max in-flight streams per multiplexed connection (0 = default 64)")
	tenantWeights := fs.String("tenant-weights", "", "comma-separated tenant=weight pairs enabling weighted fair queueing (e.g. acme=10,free-tier=1)")
	tenantMaxInFlight := fs.Int("tenant-max-inflight", 0, "per-tenant in-flight cap under fair queueing (0 = unlimited)")
	tenantMaxQueue := fs.Int("tenant-max-queue", 0, "per-tenant fair-queue depth bound; overflow is shed and charged to the tenant (0 = unlimited)")
	stickinessBound := fs.Int("stickiness-bound", 0, "max consecutive warm-runner sticky dispatches before strict fair order is forced (0 = default, negative = disable stickiness)")
	oob := fs.Bool("oob", false, "enable the zero-copy out-of-band data plane (pooled tensor arena, leased windows)")
	arenaBytes := fs.Int64("arena-bytes", 0, "tensor arena byte budget with -oob (0 = default 256 MiB)")
	batchWindow := fs.Duration("batch-window", 0, "coalesce same-kernel invocations arriving within this modeled-time window into one device dispatch (0 = off)")
	batchMax := fs.Int("batch-max", 0, "max invocations per coalesced dispatch with -batch-window (0 = default 8)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var profiles []kaas.DeviceProfile
	for i := 0; i < *gpus; i++ {
		profiles = append(profiles, kaas.TeslaP100)
	}
	for i := 0; i < *fpgas; i++ {
		profiles = append(profiles, kaas.AlveoU250)
	}
	for i := 0; i < *tpus; i++ {
		profiles = append(profiles, kaas.TPUv3Chip)
	}
	for i := 0; i < *qpus; i++ {
		profiles = append(profiles, kaas.AerSimulatorHost)
	}

	popts := []kaas.Option{
		kaas.WithListenAddr(*listen),
		kaas.WithTimeScale(*scale),
		kaas.WithAccelerators(profiles...),
		kaas.WithKeepAlive(*idle, *sweep),
	}
	if *prewarmLead > 0 {
		popts = append(popts, kaas.WithPreWarm(*prewarmLead))
	}
	if *artifactCache > 0 {
		popts = append(popts, kaas.WithArtifactCache(*artifactCache))
	}
	if *maxConnStreams > 0 {
		popts = append(popts, kaas.WithMuxStreams(*maxConnStreams))
	}
	if *tenantWeights != "" {
		weights, err := parseTenantWeights(*tenantWeights)
		if err != nil {
			return err
		}
		popts = append(popts, kaas.WithTenantWeights(weights))
	}
	if *tenantMaxInFlight > 0 || *tenantMaxQueue > 0 {
		popts = append(popts, kaas.WithTenantLimits(*tenantMaxInFlight, *tenantMaxQueue))
	}
	if *stickinessBound != 0 {
		popts = append(popts, kaas.WithStickinessBound(*stickinessBound))
	}
	if *arenaBytes > 0 && !*oob {
		return fmt.Errorf("-arena-bytes requires -oob")
	}
	if *oob {
		popts = append(popts, kaas.WithOutOfBand(*arenaBytes))
	}
	if *batchMax > 0 && *batchWindow <= 0 {
		return fmt.Errorf("-batch-max requires -batch-window")
	}
	if *batchWindow > 0 {
		popts = append(popts, kaas.WithBatching(*batchWindow, *batchMax))
	}
	if *join != "" && *nodeName == "" {
		return fmt.Errorf("-join requires -node-name")
	}
	if *nodeName != "" {
		var peers []string
		for _, p := range strings.Split(*join, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		popts = append(popts, kaas.WithClusterNode(*nodeName, peers...))
		if *heartbeat > 0 || *suspectAfter > 0 {
			popts = append(popts, kaas.WithClusterHeartbeat(*heartbeat, *suspectAfter))
		}
	}
	p, err := kaas.New(popts...)
	if err != nil {
		return err
	}
	defer p.Close()

	if *register {
		for _, k := range kaas.KernelSuite() {
			if err := p.Register(k); err != nil {
				fmt.Fprintf(os.Stderr, "kaasd: skip %s: %v\n", k.Name(), err)
			}
		}
	}

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer mln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", p.MetricsHandler())
		go http.Serve(mln, mux)
		fmt.Printf("kaasd metrics on http://%s/metrics\n", mln.Addr())
	}

	fmt.Printf("kaasd listening on %s (%d devices, scale %.0fx)\n",
		p.Addr(), len(profiles), *scale)
	for _, ch := range ready {
		ch <- p.Addr()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	<-sigCh
	if *drainTimeout <= 0 {
		fmt.Println("kaasd: shutting down")
		return nil
	}

	// Graceful drain: stop accepting, finish in-flight invocations, exit.
	// A second signal (or the timeout) cuts the drain short; p.Close in
	// the defer then fences whatever is left.
	fmt.Printf("kaasd: draining (timeout %v)\n", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigCh
		cancel()
	}()
	if err := p.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "kaasd: drain cut short:", err)
	} else {
		fmt.Println("kaasd: drained, shutting down")
	}
	return nil
}
