package main

import (
	"context"
	"encoding/json"
	"errors"
	"syscall"
	"testing"
	"time"

	"kaas/internal/client"
	"kaas/internal/cplane"
	"kaas/internal/kernels"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag succeeded")
	}
}

func TestRunBadListenAddr(t *testing.T) {
	if err := run([]string{"-listen", "256.256.256.256:99999"}); err == nil {
		t.Error("bad listen address succeeded")
	}
}

func TestRunJoinRequiresNodeName(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0", "-join", "127.0.0.1:1"}); err == nil {
		t.Error("-join without -node-name succeeded")
	}
}

// TestClusterJoinGossipAndStatus boots two daemons, joins the second to
// the first, and requires membership to converge, a kernel registered on
// one node to be adopted by the other via gossip, and the control-plane
// status query to see both members alive. One SIGTERM stops both
// daemons (each run registers its own signal channel).
func TestClusterJoinGossipAndStatus(t *testing.T) {
	start := func(args ...string) (string, chan error) {
		t.Helper()
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() {
			done <- run(append([]string{
				"-listen", "127.0.0.1:0",
				"-gpus", "1", "-fpgas", "0",
				"-scale", "1000",
			}, args...), ready)
		}()
		select {
		case addr := <-ready:
			return addr, done
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never came up")
			return "", nil
		}
	}
	addrA, doneA := start("-node-name", "alpha")
	addrB, doneB := start("-node-name", "beta", "-join", addrA)

	ca := client.Dial(addrA)
	defer ca.Close()
	cb := client.Dial(addrB)
	defer cb.Close()
	if err := ca.Register("mci"); err != nil {
		t.Fatalf("register on alpha: %v", err)
	}

	// Gossip must carry the registration to beta and converge the
	// membership view to two live members.
	deadline := time.Now().Add(10 * time.Second)
	adopted, converged := false, false
	for time.Now().Before(deadline) && !(adopted && converged) {
		if names, err := cb.List(); err == nil {
			for _, n := range names {
				if n == "mci" {
					adopted = true
				}
			}
		}
		if body, err := json.Marshal(cplane.Envelope{Type: cplane.ControlStatus}); err == nil {
			if reply, err := cb.ControlContext(context.Background(), body); err == nil {
				var status cplane.Status
				if json.Unmarshal(reply, &status) == nil && len(status.Members) == 2 {
					converged = status.Members[0].Alive && status.Members[1].Alive
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !adopted {
		t.Error("beta never adopted the kernel registered on alpha")
	}
	if !converged {
		t.Error("cluster status never showed two live members")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	for name, done := range map[string]chan error{"alpha": doneA, "beta": doneB} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s: run: %v", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s did not exit on SIGTERM", name)
		}
	}
}

// TestSIGTERMDrainsInFlightInvocation: a shutdown signal arriving while
// an invocation is being served must drain — the invocation completes
// and delivers its result — instead of cutting the connection.
func TestSIGTERMDrainsInFlightInvocation(t *testing.T) {
	ready := make(chan string, 1)
	runDone := make(chan error, 1)
	go func() {
		runDone <- run([]string{
			"-listen", "127.0.0.1:0",
			"-gpus", "1", "-fpgas", "0",
			"-scale", "1", // real time: the cold start alone takes ~0.8s
			"-register-suite",
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
	}

	c := client.Dial(addr)
	defer c.Close()
	// ~1s of modeled exec on top of the ~0.8s cold start: the signal
	// below lands squarely mid-invocation.
	invDone := make(chan error, 1)
	go func() {
		res, err := c.Invoke("mci", kernels.Params{"n": 1e11}, nil)
		if err == nil && res.Values["estimate"] == 0 {
			err = errEmptyResult
		}
		invDone <- err
	}()
	time.Sleep(600 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}

	select {
	case err := <-invDone:
		if err != nil {
			t.Fatalf("in-flight invocation was dropped by shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight invocation never returned after SIGTERM")
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after draining")
	}
}

var errEmptyResult = errors.New("invocation returned an empty result")

// TestRunServesUntilSignal starts the daemon on an ephemeral port and
// shuts it down with SIGTERM.
func TestRunServesUntilSignal(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-gpus", "1", "-fpgas", "1",
			"-scale", "1000",
			"-register-suite",
		})
	}()
	// Give the daemon time to come up and register kernels, then stop it.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}
