package main

import (
	"syscall"
	"testing"
	"time"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag succeeded")
	}
}

func TestRunBadListenAddr(t *testing.T) {
	if err := run([]string{"-listen", "256.256.256.256:99999"}); err == nil {
		t.Error("bad listen address succeeded")
	}
}

// TestRunServesUntilSignal starts the daemon on an ephemeral port and
// shuts it down with SIGTERM.
func TestRunServesUntilSignal(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-gpus", "1", "-fpgas", "1",
			"-scale", "1000",
			"-register-suite",
		})
	}()
	// Give the daemon time to come up and register kernels, then stop it.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}
