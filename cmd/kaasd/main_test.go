package main

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"kaas/internal/client"
	"kaas/internal/kernels"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag succeeded")
	}
}

func TestRunBadListenAddr(t *testing.T) {
	if err := run([]string{"-listen", "256.256.256.256:99999"}); err == nil {
		t.Error("bad listen address succeeded")
	}
}

// TestSIGTERMDrainsInFlightInvocation: a shutdown signal arriving while
// an invocation is being served must drain — the invocation completes
// and delivers its result — instead of cutting the connection.
func TestSIGTERMDrainsInFlightInvocation(t *testing.T) {
	ready := make(chan string, 1)
	runDone := make(chan error, 1)
	go func() {
		runDone <- run([]string{
			"-listen", "127.0.0.1:0",
			"-gpus", "1", "-fpgas", "0",
			"-scale", "1", // real time: the cold start alone takes ~0.8s
			"-register-suite",
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
	}

	c := client.Dial(addr)
	defer c.Close()
	// ~1s of modeled exec on top of the ~0.8s cold start: the signal
	// below lands squarely mid-invocation.
	invDone := make(chan error, 1)
	go func() {
		res, err := c.Invoke("mci", kernels.Params{"n": 1e11}, nil)
		if err == nil && res.Values["estimate"] == 0 {
			err = errEmptyResult
		}
		invDone <- err
	}()
	time.Sleep(600 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}

	select {
	case err := <-invDone:
		if err != nil {
			t.Fatalf("in-flight invocation was dropped by shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight invocation never returned after SIGTERM")
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after draining")
	}
}

var errEmptyResult = errors.New("invocation returned an empty result")

// TestRunServesUntilSignal starts the daemon on an ephemeral port and
// shuts it down with SIGTERM.
func TestRunServesUntilSignal(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-gpus", "1", "-fpgas", "1",
			"-scale", "1000",
			"-register-suite",
		})
	}()
	// Give the daemon time to come up and register kernels, then stop it.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}
