package kaas_test

import (
	"context"
	"fmt"

	"kaas"
)

// ExampleNew shows the minimal KaaS session: register a kernel, watch the
// first invocation pay the cold start, and the second run warm.
func ExampleNew() {
	p, err := kaas.New(kaas.WithAccelerators(kaas.TeslaP100))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer p.Close()

	if err := p.RegisterByName("mci"); err != nil {
		fmt.Println("error:", err)
		return
	}
	for i := 0; i < 2; i++ {
		_, report, err := p.Invoke(context.Background(), "mci", kaas.Params{"n": 1000}, nil)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("invocation %d cold=%v\n", i+1, report.Cold)
	}
	// Output:
	// invocation 1 cold=true
	// invocation 2 cold=false
}

// ExampleFuse composes two FPGA kernels into one device-resident pipeline.
func ExampleFuse() {
	bitmap, _ := kaas.KernelByName("bitmap")
	histogram, _ := kaas.KernelByName("histogram")
	fused, err := kaas.Fuse("bitmap+histogram", bitmap, histogram)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(fused.Name(), "on", fused.Kind())
	// Output:
	// bitmap+histogram on FPGA
}

// ExamplePlatform_NewWorkflow chains heterogeneous kernels into the
// paper's image pipeline.
func ExamplePlatform_NewWorkflow() {
	p, err := kaas.New(kaas.WithAccelerators(kaas.NvidiaA100, kaas.AlveoU250))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer p.Close()
	for _, name := range []string{"preprocess", "bitmap", "resnet"} {
		if err := p.RegisterByName(name); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	w, err := p.NewWorkflow(
		kaas.WorkflowStage{Kernel: "preprocess", Params: kaas.Params{"height": 64, "width": 64, "crop": 32}},
		kaas.WorkflowStage{Kernel: "bitmap", Params: kaas.Params{"height": 32, "width": 32, "factor": 2}},
		kaas.WorkflowStage{Kernel: "resnet", Params: kaas.Params{"batch": 1}},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := w.Run(context.Background(), nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, st := range res.Stages {
		fmt.Println(st.Kernel)
	}
	// Output:
	// preprocess
	// bitmap
	// resnet
}
