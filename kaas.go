// Package kaas is a serverless runtime for hardware accelerator kernels —
// a Go implementation of the Kernel-as-a-Service programming model
// (Pfandzelter et al., Middleware '23).
//
// Applications register kernels with a Platform that manages a pool of
// simulated accelerators (GPU, FPGA, TPU, QPU and host CPU), then invoke
// them in a request/response pattern, in process or over TCP. The
// platform keeps kernel runtimes warm across invocations, places new task
// runners across devices, and autoscales runners with in-flight demand —
// so fine-grained tasks skip the initialization overhead that normally
// erases the benefit of acceleration.
//
// A minimal session:
//
//	p, err := kaas.New(kaas.WithAccelerators(kaas.TeslaP100))
//	// handle err
//	defer p.Close()
//	err = p.RegisterByName("matmul")
//	resp, report, err := p.Invoke(ctx, "matmul", kaas.Params{"n": 500}, nil)
//
// Device time is modeled: accelerators are discrete-event simulators with
// cost profiles calibrated to the paper's testbeds, running against a
// scaled virtual clock (see WithTimeScale). Kernel results are computed
// for real in Go.
package kaas

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"

	"kaas/internal/accel"
	"kaas/internal/artifact"
	"kaas/internal/client"
	"kaas/internal/core"
	"kaas/internal/cplane"
	"kaas/internal/kernels"
	"kaas/internal/netshape"
	"kaas/internal/shm"
	"kaas/internal/vclock"
	"kaas/internal/wire"
)

// Re-exported core types. These aliases are the public names of the
// platform's building blocks.
type (
	// DeviceProfile is an accelerator cost model.
	DeviceProfile = accel.Profile
	// DeviceKind identifies an accelerator architecture.
	DeviceKind = accel.Kind
	// Kernel is a registrable accelerator kernel.
	Kernel = kernels.Kernel
	// Params are named numeric invocation parameters.
	Params = kernels.Params
	// Request is a kernel invocation payload.
	Request = kernels.Request
	// Response is a kernel result.
	Response = kernels.Response
	// Cost is a kernel's modeled device cost.
	Cost = kernels.Cost
	// Report describes how an invocation was served.
	Report = core.Report
	// Stats is a server statistics snapshot.
	Stats = core.Stats
	// Client is a TCP client for a remote platform.
	Client = client.Client
	// ClientResult is a completed client invocation.
	ClientResult = client.Result
	// RetryPolicy bounds client retries of connection-level failures.
	RetryPolicy = client.RetryPolicy
	// ClientMetrics is a snapshot of a client's reliability counters.
	ClientMetrics = client.Metrics
	// RemoteError is a failure reported by the server, carrying the wire
	// protocol's machine-readable code; the client retries only the
	// retryable codes (overload, unavailability).
	RemoteError = client.RemoteError
)

// Machine-readable error codes carried by RemoteError.Code.
const (
	CodeOverloaded       = wire.CodeOverloaded
	CodeUnavailable      = wire.CodeUnavailable
	CodeDeadlineExceeded = wire.CodeDeadlineExceeded
	CodeUnknownKernel    = wire.CodeUnknownKernel
	CodeInternal         = wire.CodeInternal
)

// Typed control-plane errors surfaced by Platform.Invoke.
var (
	// ErrOverloaded: admission control shed the invocation (queue bound,
	// in-flight cap, or deadline-aware rejection). Safe to retry after
	// backoff.
	ErrOverloaded = core.ErrOverloaded
	// ErrDraining: the platform is gracefully shutting down.
	ErrDraining = core.ErrDraining
	// ErrUnavailable: every device of the kernel's kind is excluded by an
	// open circuit breaker.
	ErrUnavailable = core.ErrUnavailable
)

// DefaultRetryPolicy returns the client retry policy used when retries
// are enabled without an explicit policy.
func DefaultRetryPolicy() RetryPolicy { return client.DefaultRetryPolicy() }

// Device kinds.
const (
	CPU  = accel.CPU
	GPU  = accel.GPU
	FPGA = accel.FPGA
	TPU  = accel.TPU
	QPU  = accel.QPU
)

// Placement policies for new task runners.
const (
	PlaceLeastLoaded = core.PlaceLeastLoaded
	PlaceRoundRobin  = core.PlaceRoundRobin
	PlaceFirstFit    = core.PlaceFirstFit
)

// Predefined device profiles calibrated to the paper's testbeds.
var (
	TeslaP100        = accel.TeslaP100
	TeslaV100        = accel.TeslaV100
	NvidiaA100       = accel.NvidiaA100
	AlveoU250        = accel.AlveoU250
	TPUv3Chip        = accel.TPUv3Chip
	AerSimulatorHost = accel.AerSimulatorHost
	FalconR4T        = accel.FalconR4T
	FalconR511H      = accel.FalconR511H
	XeonE52698       = accel.XeonE52698
	EPYC7513         = accel.EPYC7513
)

// KernelSuite returns one instance of every built-in kernel.
func KernelSuite() []Kernel { return kernels.Suite() }

// EncodeFloat64s packs a float64 slice into the kernel payload format
// (little-endian), for in-band and out-of-band data transfer.
func EncodeFloat64s(vals []float64) []byte { return kernels.Float64sToBytes(vals) }

// DecodeFloat64s unpacks a kernel payload into float64s.
func DecodeFloat64s(data []byte) ([]float64, error) { return kernels.BytesToFloat64s(data) }

// KernelByName returns a built-in kernel by name.
func KernelByName(name string) (Kernel, error) { return kernels.ByName(name) }

// Fuse combines two same-kind kernels into one, eliminating the
// intermediate host round trip between them (the paper's kernel-fusion
// optimization, §6). Register the result like any other kernel.
func Fuse(name string, first, second Kernel) (Kernel, error) {
	return kernels.Fuse(name, first, second)
}

// Retarget returns a kernel identical to k but targeting a different
// device kind (e.g. a CPU fallback of a GPU kernel).
func Retarget(k Kernel, kind DeviceKind) Kernel { return kernels.Retarget(k, kind) }

// config collects Platform options.
type config struct {
	timeScale     float64
	hostName      string
	cpu           DeviceProfile
	accels        []DeviceProfile
	maxInFlight   int
	maxPerDevice  int
	placement     core.PlacementPolicy
	idleTimeout   time.Duration
	listenAddr    string
	listener      net.Listener
	disableResult bool
	logger        *slog.Logger
	invokeTimeout time.Duration
	retryPolicy   *client.RetryPolicy
	clientMux     int
	muxStreams    int

	maxInFlightTotal   int
	maxQueuePerKernel  int
	breakerThreshold   int
	breakerOpenTimeout time.Duration

	tenantWeights        map[string]float64
	maxInFlightPerTenant int
	maxQueuePerTenant    int
	stickinessBound      int
	disableFairQueueing  bool

	artifactCacheBytes int64
	keepAlive          core.KeepAlive

	arenaBytes  int64
	batchWindow time.Duration
	batchMax    int

	clusterName    string
	clusterPeers   []string
	clusterBeat    time.Duration
	clusterSuspect int
}

// clientOptions returns the client options implied by the platform
// configuration (timeouts and retry policy), which every client
// constructor applies.
func (c *config) clientOptions() []client.Option {
	var opts []client.Option
	if c.invokeTimeout > 0 {
		opts = append(opts, client.WithTimeout(c.invokeTimeout))
	}
	if c.retryPolicy != nil {
		opts = append(opts, client.WithRetryPolicy(*c.retryPolicy))
	}
	if c.clientMux > 0 {
		opts = append(opts, client.WithMux(c.clientMux))
	}
	return opts
}

// Option configures a Platform.
type Option func(*config)

// WithTimeScale sets how many modeled seconds pass per wall second
// (default 1000). Use 1 to run device costs in real time.
func WithTimeScale(scale float64) Option {
	return func(c *config) { c.timeScale = scale }
}

// WithHostName names the simulated host (default "kaas").
func WithHostName(name string) Option {
	return func(c *config) { c.hostName = name }
}

// WithCPU sets the host CPU profile (default XeonE52698).
func WithCPU(p DeviceProfile) Option {
	return func(c *config) { c.cpu = p }
}

// WithAccelerators attaches accelerator devices to the host.
func WithAccelerators(profiles ...DeviceProfile) Option {
	return func(c *config) { c.accels = append(c.accels, profiles...) }
}

// WithMaxInFlight sets the per-runner in-flight threshold that triggers
// scale-out (default 4).
func WithMaxInFlight(n int) Option {
	return func(c *config) { c.maxInFlight = n }
}

// WithMaxRunnersPerDevice caps runners per device (default 1).
func WithMaxRunnersPerDevice(n int) Option {
	return func(c *config) { c.maxPerDevice = n }
}

// WithPlacement selects the runner placement policy.
func WithPlacement(p core.PlacementPolicy) Option {
	return func(c *config) { c.placement = p }
}

// WithIdleTimeout reaps task runners idle for longer than d.
//
// Deprecated: use WithKeepAlive, which also controls the sweep cadence.
// WithIdleTimeout is kept as a shorthand for WithKeepAlive(d, 0).
func WithIdleTimeout(d time.Duration) Option {
	return func(c *config) { c.idleTimeout = d }
}

// WithKeepAlive sets the scale-to-zero policy: runners idle longer than
// idle release their device slot (freeing the device-seconds an
// always-warm pool would burn), checked every sweepEvery of modeled
// time. A zero sweepEvery defaults to idle/2; a zero idle disables
// reaping, keeping runners warm forever.
func WithKeepAlive(idle, sweepEvery time.Duration) Option {
	return func(c *config) {
		c.keepAlive.Idle = idle
		c.keepAlive.SweepEvery = sweepEvery
	}
}

// WithPreWarm enables the predictive pre-warm pool: when a kernel scales
// to zero, a per-kernel EWMA over its observed idle-gap lengths predicts
// the next arrival, and one runner is booted lead of modeled time ahead
// of it so the returning burst is served warm. Requires a keepalive
// window (the predictor learns from the gaps the reaper observes); a
// zero lead disables pre-warming.
func WithPreWarm(lead time.Duration) Option {
	return func(c *config) { c.keepAlive.PreWarmLead = lead }
}

// WithArtifactCache gives the platform a content-addressed cache of
// compiled kernel artifacts with the given byte budget (least recently
// used beyond it). A cold start that finds its kernel's artifact cached
// skips JIT compilation entirely — the "cached-cold" start temperature —
// and on a cache miss the compiled artifact is published for later boots
// and for peer platforms in the same cluster (see NewCluster, which
// links members' caches). A budget of zero or less disables the cache,
// and every cold start pays the modeled compile cost.
func WithArtifactCache(budgetBytes int64) Option {
	return func(c *config) { c.artifactCacheBytes = budgetBytes }
}

// WithListenAddr serves the platform over TCP on the given address
// (e.g. "127.0.0.1:7070" or ":0" for an ephemeral port).
func WithListenAddr(addr string) Option {
	return func(c *config) { c.listenAddr = addr }
}

// WithListener serves the platform over a caller-provided listener
// instead of opening one. Test and benchmark harnesses use it to
// interpose fault-injecting listeners (internal/faults) between clients
// and the server. It overrides WithListenAddr.
func WithListener(ln net.Listener) Option {
	return func(c *config) { c.listener = ln }
}

// WithInvokeTimeout sets a default per-call deadline for clients created
// by NewClient, NewShapedClient, and NewRDMAClient, applied whenever the
// caller's context carries no deadline. The deadline propagates to
// socket deadlines and over the wire, so the server rejects expired work
// and cancels kernels whose deadline passes mid-flight.
func WithInvokeTimeout(d time.Duration) Option {
	return func(c *config) { c.invokeTimeout = d }
}

// WithRetryPolicy makes clients created by this platform retry
// connection-level failures (dial errors, resets, EOFs) under the given
// bounded backoff policy. Server-reported errors are never retried.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *config) { c.retryPolicy = &p }
}

// WithClientMux makes clients created by this platform multiplex all
// their in-flight calls over conns shared connections (protocol
// version 2: per-stream framing, out-of-order replies, CANCEL frames
// for per-call cancellation). Against a server that predates
// multiplexing, clients negotiate down to the one-request-per-connection
// protocol automatically.
func WithClientMux(conns int) Option {
	return func(c *config) { c.clientMux = conns }
}

// WithMuxStreams bounds how many invocation streams one multiplexed
// connection may have in flight on this platform's TCP endpoint
// (default 64). Per-connection backpressure: past the bound the server
// stops reading new frames from that connection until a stream
// completes.
func WithMuxStreams(n int) Option {
	return func(c *config) { c.muxStreams = n }
}

// WithAdmissionLimits bounds the load the platform accepts: at most
// maxInFlightTotal invocations in flight server-wide and at most
// maxQueuePerKernel invocations per kernel beyond its healthy capacity.
// Excess requests are shed immediately with ErrOverloaded (OVERLOADED on
// the wire) instead of queueing unboundedly; deadline-carrying requests
// whose remaining budget cannot cover the expected wait are shed too.
// Zero for either limit disables it.
func WithAdmissionLimits(maxInFlightTotal, maxQueuePerKernel int) Option {
	return func(c *config) {
		c.maxInFlightTotal = maxInFlightTotal
		c.maxQueuePerKernel = maxQueuePerKernel
	}
}

// WithTenantWeights enables weighted fair queueing across tenants:
// under saturation each tenant's throughput converges to its weight's
// share of capacity. Tenants absent from the map (including the
// "default" tenant unidentified clients map to) get weight 1;
// non-positive weights are treated as 1.
func WithTenantWeights(weights map[string]float64) Option {
	return func(c *config) {
		if c.tenantWeights == nil {
			c.tenantWeights = make(map[string]float64, len(weights))
		}
		for t, w := range weights {
			c.tenantWeights[t] = w
		}
	}
}

// WithTenantLimits bounds each tenant's load: at most maxInFlight of a
// tenant's invocations execute concurrently, and at most maxQueue wait
// in its fair-queue flows — excess is shed with ErrOverloaded charged
// to that tenant, so one noisy tenant's backlog cannot displace others.
// Zero for either limit disables it.
func WithTenantLimits(maxInFlight, maxQueue int) Option {
	return func(c *config) {
		c.maxInFlightPerTenant = maxInFlight
		c.maxQueuePerTenant = maxQueue
	}
}

// WithStickinessBound tunes warm-runner stickiness in fair dispatch: up
// to bound consecutive grants may bypass strict fairness order in favor
// of a flow whose kernel already holds a warm runner with free
// capacity, after which the strictly-fair flow is served regardless.
// Zero keeps the default (4); negative disables stickiness.
func WithStickinessBound(bound int) Option {
	return func(c *config) { c.stickinessBound = bound }
}

// WithoutFairQueueing forces the flat FCFS admission path even when
// tenant weights or limits are configured. Benchmark harnesses use it
// as the comparison baseline; production configurations should not.
func WithoutFairQueueing() Option {
	return func(c *config) { c.disableFairQueueing = true }
}

// WithOutOfBand enables the zero-copy out-of-band data plane: a pooled
// tensor arena of arenaBytes total budget is shared with same-host
// clients, which negotiate leased windows into it and pass payloads by
// handle instead of copying them through the wire. Zero bytes keeps a
// 256 MiB default budget. Requires a TCP endpoint; clients created via
// NewClient use the arena automatically.
func WithOutOfBand(arenaBytes int64) Option {
	return func(c *config) {
		if arenaBytes <= 0 {
			arenaBytes = 256 << 20
		}
		c.arenaBytes = arenaBytes
	}
}

// WithBatching enables server-side micro-batching: same-kernel
// invocations arriving within window of modeled time (or up to max per
// batch, whichever fills first) coalesce into a single device dispatch
// that pays the launch overhead once. max <= 1 keeps the default cap
// of 8.
func WithBatching(window time.Duration, max int) Option {
	return func(c *config) {
		c.batchWindow = window
		c.batchMax = max
	}
}

// WithBreaker tunes the per-device circuit breakers: threshold
// consecutive device failures open a device's breaker (excluding it from
// placement), and after openTimeout of modeled time one probe invocation
// tests whether it healed. A negative threshold disables breakers; zero
// keeps the defaults (3 failures, 5s).
func WithBreaker(threshold int, openTimeout time.Duration) Option {
	return func(c *config) {
		c.breakerThreshold = threshold
		c.breakerOpenTimeout = openTimeout
	}
}

// WithClusterNode joins this platform's TCP endpoint to the wire-backed
// cluster control plane as the named node, seeded with the given peer
// addresses. The node heartbeats its peers on the modeled clock,
// gossips its health summary (drain state, in-flight load, shed rate,
// open breakers per device kind), adopts kernel registrations gossiped
// by peers, and answers MsgControl status queries (kaasctl cluster
// status). Membership is symmetric: one reachable seed is enough to
// join, and peers learn this node's address from its first heartbeat.
// Requires a TCP endpoint (WithListenAddr or WithListener).
func WithClusterNode(name string, peers ...string) Option {
	return func(c *config) {
		c.clusterName = name
		c.clusterPeers = append([]string(nil), peers...)
	}
}

// WithClusterHeartbeat tunes the cluster node's failure detector: every
// is the modeled heartbeat interval per peer (default 1s), and
// suspectAfter the consecutive misses that mark a peer down (default 2).
func WithClusterHeartbeat(every time.Duration, suspectAfter int) Option {
	return func(c *config) {
		c.clusterBeat = every
		c.clusterSuspect = suspectAfter
	}
}

// WithoutResultComputation disables real kernel computation; invocations
// charge modeled device time only. Used by the benchmark harness.
func WithoutResultComputation() Option {
	return func(c *config) { c.disableResult = true }
}

// WithLogger routes the platform's structured lifecycle events
// (registrations, cold starts, evictions, failovers) to the given logger.
func WithLogger(l *slog.Logger) Option {
	return func(c *config) { c.logger = l }
}

// Platform is a KaaS deployment: a simulated accelerator host, the KaaS
// server on top of it, and optionally a TCP endpoint.
type Platform struct {
	clock      vclock.Clock
	host       *accel.Host
	server     *core.Server
	tcp        *core.TCPServer
	regions    *shm.Registry
	arena      *shm.ArenaPool
	artifacts  *artifact.Cache
	node       *cplane.Node
	clientOpts []client.Option
}

// New creates a platform. With no options it models a host with a single
// Tesla P100 GPU.
func New(opts ...Option) (*Platform, error) {
	cfg := config{
		timeScale: 1000,
		hostName:  "kaas",
		cpu:       XeonE52698,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.accels) == 0 {
		cfg.accels = []DeviceProfile{TeslaP100}
	}
	clock := vclock.Scaled(cfg.timeScale)
	host, err := accel.NewHost(clock, cfg.hostName, cfg.cpu, cfg.accels...)
	if err != nil {
		return nil, fmt.Errorf("kaas: %w", err)
	}
	var artifacts *artifact.Cache
	if cfg.artifactCacheBytes > 0 {
		artifacts = artifact.NewCache(cfg.artifactCacheBytes)
	}
	server, err := core.New(core.Config{
		Clock:                clock,
		Host:                 host,
		MaxInFlightPerRunner: cfg.maxInFlight,
		MaxRunnersPerDevice:  cfg.maxPerDevice,
		Placement:            cfg.placement,
		RunnerIdleTimeout:    cfg.idleTimeout,
		KeepAlive:            cfg.keepAlive,
		Artifacts:            artifacts,
		MaxInFlightTotal:     cfg.maxInFlightTotal,
		MaxQueuePerKernel:    cfg.maxQueuePerKernel,
		TenantWeights:        cfg.tenantWeights,
		MaxInFlightPerTenant: cfg.maxInFlightPerTenant,
		MaxQueuePerTenant:    cfg.maxQueuePerTenant,
		StickinessBound:      cfg.stickinessBound,
		DisableFairQueueing:  cfg.disableFairQueueing,
		BreakerThreshold:     cfg.breakerThreshold,
		BreakerOpenTimeout:   cfg.breakerOpenTimeout,
		BatchWindow:          cfg.batchWindow,
		BatchMax:             cfg.batchMax,
		DisableCompute:       cfg.disableResult,
		Logger:               cfg.logger,
	})
	if err != nil {
		host.Close()
		return nil, fmt.Errorf("kaas: %w", err)
	}
	p := &Platform{
		clock:      clock,
		host:       host,
		server:     server,
		regions:    shm.NewRegistry(4 << 30),
		artifacts:  artifacts,
		clientOpts: cfg.clientOptions(),
	}
	var tcpOpts []core.TCPOption
	if cfg.arenaBytes > 0 {
		if ok, reason := shm.Supported(); !ok {
			server.Close()
			host.Close()
			return nil, fmt.Errorf("kaas: out-of-band data plane unavailable: %s", reason)
		}
		p.arena = shm.NewArenaPool(cfg.arenaBytes)
		tcpOpts = append(tcpOpts, core.WithArenaPool(p.arena))
	}
	switch {
	case cfg.listener != nil:
		tcp, err := core.ServeTCPListener(server, cfg.listener, p.regions, tcpOpts...)
		if err != nil {
			server.Close()
			host.Close()
			return nil, fmt.Errorf("kaas: %w", err)
		}
		p.tcp = tcp
	case cfg.listenAddr != "":
		tcp, err := core.ServeTCP(server, cfg.listenAddr, p.regions, tcpOpts...)
		if err != nil {
			server.Close()
			host.Close()
			return nil, fmt.Errorf("kaas: %w", err)
		}
		p.tcp = tcp
	}
	if p.tcp != nil && cfg.muxStreams > 0 {
		p.tcp.SetMaxConnStreams(cfg.muxStreams)
	}
	if cfg.clusterName != "" {
		if p.tcp == nil {
			p.Close()
			return nil, fmt.Errorf("kaas: a cluster node needs a TCP endpoint (use WithListenAddr)")
		}
		p.node = cplane.NewNode(cplane.Config{
			Name:           cfg.clusterName,
			Addr:           p.tcp.Addr(),
			Clock:          clock,
			Local:          server,
			HeartbeatEvery: cfg.clusterBeat,
			SuspectAfter:   cfg.clusterSuspect,
			DialOptions:    cfg.clientOptions(),
			Logger:         cfg.logger,
		})
		p.tcp.SetControlHandler(p.node.HandleControl)
		for _, peer := range cfg.clusterPeers {
			p.node.Join(peer)
		}
	}
	return p, nil
}

// Register deploys a kernel implementation on the platform.
func (p *Platform) Register(k Kernel) error { return p.server.Register(k) }

// RegisterByName deploys a built-in kernel from the library.
func (p *Platform) RegisterByName(name string) error {
	k, err := kernels.ByName(name)
	if err != nil {
		return err
	}
	return p.server.Register(k)
}

// Invoke calls a registered kernel in process.
func (p *Platform) Invoke(ctx context.Context, name string, params Params, data []byte) (*Response, *Report, error) {
	return p.server.Invoke(ctx, name, &kernels.Request{Params: params, Data: data})
}

// InvokeTenant calls a registered kernel in process on behalf of the
// named tenant, so in-process callers participate in fair queueing like
// remote peers. An empty tenant maps to the server's default tenant.
func (p *Platform) InvokeTenant(ctx context.Context, tenant, name string, params Params, data []byte) (*Response, *Report, error) {
	return p.server.Invoke(ctx, name, &kernels.Request{Params: params, Data: data, Tenant: tenant})
}

// Kernels lists the registered kernel names.
func (p *Platform) Kernels() []string { return p.server.Kernels() }

// Stats returns the server's statistics snapshot.
func (p *Platform) Stats() Stats { return p.server.Stats() }

// WriteMetrics writes the platform's metrics in the Prometheus text
// exposition format: per-kernel invocation counters and latency
// histograms (split cold/warm), per-device runner and eviction counters,
// and live device occupancy gauges.
func (p *Platform) WriteMetrics(w io.Writer) error { return p.server.WriteMetrics(w) }

// MetricsHandler returns an HTTP handler serving WriteMetrics, mountable
// as a Prometheus scrape endpoint (see kaasd's -metrics flag).
func (p *Platform) MetricsHandler() http.Handler { return p.server.MetricsHandler() }

// ClusterNode returns the platform's cluster control-plane node, or nil
// when the platform was built without WithClusterNode.
func (p *Platform) ClusterNode() *cplane.Node { return p.node }

// Addr returns the TCP listen address, or "" when not serving.
func (p *Platform) Addr() string {
	if p.tcp == nil {
		return ""
	}
	return p.tcp.Addr()
}

// NewClient returns a TCP client for this platform's endpoint, sharing
// its shared-memory registry so out-of-band transfer works. When the
// platform runs with WithOutOfBand, the client also maps the tensor
// arena and moves payloads by leased window automatically.
func (p *Platform) NewClient() (*Client, error) {
	if p.tcp == nil {
		return nil, fmt.Errorf("kaas: platform has no TCP endpoint (use WithListenAddr)")
	}
	opts := append([]client.Option{client.WithShm(p.regions)}, p.clientOpts...)
	if p.arena != nil {
		opts = append(opts, client.WithArena(p.arena))
	}
	return client.Dial(p.tcp.Addr(), opts...), nil
}

// NewShapedClient returns a TCP client whose traffic is shaped as a
// 1 Gbps / 0.15 ms RTT link, modeling the paper's remote-invocation
// testbed.
func (p *Platform) NewShapedClient() (*Client, error) {
	if p.tcp == nil {
		return nil, fmt.Errorf("kaas: platform has no TCP endpoint (use WithListenAddr)")
	}
	link := netshape.GigabitEthernet(p.clock)
	opts := append([]client.Option{client.WithLink(link)}, p.clientOpts...)
	return client.Dial(p.tcp.Addr(), opts...), nil
}

// NewRDMAClient returns a TCP client shaped as an RDMA fabric
// (100 Gbps, microsecond round trips) — the co-designed transport the
// paper's §6 proposes for lower invocation overhead.
func (p *Platform) NewRDMAClient() (*Client, error) {
	if p.tcp == nil {
		return nil, fmt.Errorf("kaas: platform has no TCP endpoint (use WithListenAddr)")
	}
	link := netshape.RDMA(p.clock)
	opts := append([]client.Option{client.WithLink(link)}, p.clientOpts...)
	return client.Dial(p.tcp.Addr(), opts...), nil
}

// Close shuts the platform down immediately. In-flight invocations are
// fenced (their device contexts stay live until they finish) but new
// work is rejected at once and open connections are cut. For a graceful
// stop that lets in-flight work complete, use Shutdown.
func (p *Platform) Close() {
	if p.node != nil {
		p.node.Close()
	}
	if p.tcp != nil {
		p.tcp.Close()
	}
	p.server.Close()
	p.host.Close()
}

// Shutdown drains the platform gracefully: the TCP endpoint stops
// accepting and finishes requests already in flight, the server waits
// for in-flight invocations to complete, then everything closes. The
// context bounds the whole drain; when it expires the remaining work is
// fenced and cut as in Close, and the context's error is returned.
func (p *Platform) Shutdown(ctx context.Context) error {
	var err error
	if p.node != nil {
		// Peers learn the drain from the last gossip exchanges and the
		// routing layer stops picking this node; stopping our own
		// heartbeats costs nothing further.
		p.node.Close()
	}
	if p.tcp != nil {
		err = p.tcp.Drain(ctx)
	}
	if derr := p.server.Drain(ctx); err == nil {
		err = derr
	}
	p.host.Close()
	return err
}
