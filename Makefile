GO ?= go

.PHONY: all build vet test race fuzz faultcheck lint vuln bench-json bench-coldstart bench-failover bench-fairness bench-dataplane scenario-ci scenario-json ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing smoke run over the wire-protocol decoder.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=10s ./internal/wire

# End-to-end invocation-path robustness check through a fault-injecting
# listener (see internal/faults).
faultcheck:
	$(GO) run ./cmd/kaasbench -faultcheck

# Static analysis. Uses golangci-lint (config in .golangci.yml) when it
# is installed — CI always installs it — and falls back to go vet on
# hosts that lack it so the target never silently vanishes.
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not found; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

# Known-vulnerability scan. Skips with a notice when govulncheck is not
# installed (CI installs it and treats findings as failures).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not found; skipping (CI runs it)"; \
	fi

# Performance baseline: one pass over the paper-figure benchmarks plus a
# pooled-vs-multiplexed transport sweep, recorded as BENCH_PR5.json.
bench-json:
	$(GO) test -run='^$$' -bench=Fig -benchtime=1x . | tee bench_figures.txt
	$(GO) run ./cmd/kaasbench -sweep 5000 -sweep-conc 1,8,64 -sweep-conns 4 \
		-sweep-out BENCH_PR5.json -sweep-figures bench_figures.txt

# Scenario gate: run the replay/chaos matrix tests, then replay the full
# matrix twice with the same seed and require byte-identical deterministic
# output — every invariant must pass and the harness must be reproducible.
SCENARIO_SEED ?= 1
scenario-ci:
	$(GO) test -run 'TestScenario|TestInvariants|TestClassify|TestSynthesize|TestParseCSV|TestChaosTransitions' \
		-count=1 ./internal/scenario ./cmd/kaasbench
	$(GO) run ./cmd/kaasbench -scenario all -seed $(SCENARIO_SEED) > scenario_run1.txt
	$(GO) run ./cmd/kaasbench -scenario all -seed $(SCENARIO_SEED) > scenario_run2.txt
	diff scenario_run1.txt scenario_run2.txt
	@echo "scenario matrix passed and reproduced byte-for-byte (seed $(SCENARIO_SEED))"

# Regenerate the committed scenario result baseline.
scenario-json:
	$(GO) run ./cmd/kaasbench -scenario all -seed 1 -scenario-out BENCH_PR6.json

# Regenerate the committed cold-start report: the cold / cached-cold /
# warm temperature ladder plus the diurnal always-warm vs. scale-to-zero
# vs. pre-warm device-seconds comparison.
bench-coldstart:
	$(GO) run ./cmd/kaasbench -coldstart -seed 1 -coldstart-out BENCH_PR7.json

# Regenerate the committed cluster-failover report: the steady /
# node-kill / post-recovery ladder through the wire-backed control
# plane, plus the retry-budget storm-suppression comparison.
bench-failover:
	$(GO) run ./cmd/kaasbench -failover 300 -failover-out BENCH_PR8.json

# Regenerate the committed fairness report: the same noisy-neighbor
# trace replayed through the flat FCFS gate and through weighted fair
# queueing, comparing victim p99, shed charging, and warm-hit rate.
# The run fails unless WFQ materially improves the victims' tail.
bench-fairness:
	$(GO) run ./cmd/kaasbench -fairness 650 -fairness-out BENCH_PR9.json

# Regenerate the committed data-plane report: the zero-copy out-of-band
# sweep (alloc/op per payload size must stay under a flat budget) and
# the micro-batch window matrix (batched dispatches must coalesce and
# device utilization must not drop below the unbatched arm). On hosts
# without shared-memory support the sweep reports the reason and exits
# cleanly — clients there fall back to in-band transfer transparently.
bench-dataplane:
	$(GO) run ./cmd/kaasbench -oob -seed 1 -oob-out BENCH_PR10.json

ci: vet build test race fuzz scenario-ci

clean:
	$(GO) clean ./...
