GO ?= go

.PHONY: all build vet test race fuzz faultcheck ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing smoke run over the wire-protocol decoder.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=10s ./internal/wire

# End-to-end invocation-path robustness check through a fault-injecting
# listener (see internal/faults).
faultcheck:
	$(GO) run ./cmd/kaasbench -faultcheck

ci: vet build test race fuzz

clean:
	$(GO) clean ./...
