package kaas

import (
	"context"
	"testing"
)

func workflowPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := New(WithAccelerators(NvidiaA100, AlveoU250))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	for _, k := range []string{"preprocess", "bitmap", "resnet"} {
		if err := p.RegisterByName(k); err != nil {
			t.Fatalf("RegisterByName(%s): %v", k, err)
		}
	}
	return p
}

func TestWorkflowValidation(t *testing.T) {
	p := workflowPlatform(t)
	if _, err := p.NewWorkflow(); err == nil {
		t.Error("empty workflow succeeded")
	}
	if _, err := p.NewWorkflow(WorkflowStage{}); err == nil {
		t.Error("nameless stage succeeded")
	}
	if _, err := p.NewWorkflow(WorkflowStage{Kernel: "unregistered"}); err == nil {
		t.Error("unregistered kernel succeeded")
	}
}

func TestWorkflowRunsImagePipeline(t *testing.T) {
	p := workflowPlatform(t)
	w, err := p.NewWorkflow(
		WorkflowStage{Kernel: "preprocess", Params: Params{"height": 128, "width": 128, "crop": 64}},
		WorkflowStage{Kernel: "bitmap", Params: Params{"height": 64, "width": 64, "factor": 2}},
		WorkflowStage{Kernel: "resnet", Params: Params{"batch": 1}},
	)
	if err != nil {
		t.Fatalf("NewWorkflow: %v", err)
	}
	res, err := w.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(res.Stages))
	}
	// Each stage executed on the right device kind.
	wantDevices := []string{"cpu0", "FPGA0", "GPU0"}
	for i, st := range res.Stages {
		if st.Report == nil || st.Response == nil {
			t.Fatalf("stage %d missing result", i)
		}
		if got := st.Report.Device; got == "" || !containsSuffix(got, wantDevices[i]) {
			t.Errorf("stage %d ran on %q, want suffix %q", i, got, wantDevices[i])
		}
		if !st.Report.Cold {
			t.Errorf("stage %d not cold on first run", i)
		}
	}
	if res.Total <= 0 {
		t.Error("zero workflow total")
	}
	if res.Output() == nil || res.Output().Values["first_class"] < 0 {
		t.Error("missing final-stage output")
	}

	// A second run is fully warm and faster.
	res2, err := w.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	for i, st := range res2.Stages {
		if st.Report.Cold {
			t.Errorf("stage %d cold on second run", i)
		}
	}
	if res2.Total >= res.Total {
		t.Errorf("warm workflow (%v) not faster than cold (%v)", res2.Total, res.Total)
	}
}

func TestWorkflowPassesData(t *testing.T) {
	p, err := New(WithAccelerators(AlveoU250))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	if err := p.RegisterByName("bitmap"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Feed a known all-white 32x32 RGB image through two chained bitmap
	// stages: first downsamples 32->16 (luma 1 everywhere), the second
	// consumes the previous output. The second stage expects RGB input,
	// so give it a grayscale-sized image spec that reads the first
	// 16*16/3... instead simply verify the seed payload reaches stage 1.
	white := make([]float64, 32*32*3)
	for i := range white {
		white[i] = 1
	}
	w, err := p.NewWorkflow(
		WorkflowStage{Kernel: "bitmap", Params: Params{"height": 32, "width": 32, "factor": 2}},
	)
	if err != nil {
		t.Fatalf("NewWorkflow: %v", err)
	}
	res, err := w.Run(context.Background(), EncodeFloat64s(white))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.Stages[0].Response.Values["mean_luma"]; got < 0.999 {
		t.Errorf("mean_luma = %v, want 1 (white payload reached the kernel)", got)
	}
	out, err := DecodeFloat64s(res.Output().Data)
	if err != nil {
		t.Fatalf("decode output: %v", err)
	}
	if len(out) != 16*16 {
		t.Errorf("output pixels = %d, want 256", len(out))
	}
}

func TestWorkflowStageFailureNamed(t *testing.T) {
	p := workflowPlatform(t)
	w, err := p.NewWorkflow(
		WorkflowStage{Kernel: "bitmap", Params: Params{"height": -1}},
	)
	if err != nil {
		t.Fatalf("NewWorkflow: %v", err)
	}
	if _, err := w.Run(context.Background(), nil); err == nil {
		t.Error("bad-params stage succeeded")
	}
}

// containsSuffix reports whether s ends with suffix.
func containsSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}
