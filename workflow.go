package kaas

import (
	"context"
	"fmt"
	"time"
)

// WorkflowStage is one step of a kernel workflow.
type WorkflowStage struct {
	// Kernel names a registered kernel.
	Kernel string
	// Params are the stage's invocation parameters.
	Params Params
	// PassData feeds the previous stage's output payload into this
	// stage's request, so heterogeneous kernels compose into pipelines
	// (e.g. CPU preprocess → FPGA bitmap → GPU inference).
	PassData bool
}

// Workflow is an ordered composition of kernels — the disaggregated
// application model of the paper's §3.1/§3.4: each stage is a portable,
// device-agnostic kernel, and the platform routes each invocation to
// whatever hardware serves that kernel.
type Workflow struct {
	platform *Platform
	stages   []WorkflowStage
}

// NewWorkflow builds a workflow over the platform's registered kernels.
// Every referenced kernel must already be registered.
func (p *Platform) NewWorkflow(stages ...WorkflowStage) (*Workflow, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("kaas: workflow needs at least one stage")
	}
	registered := make(map[string]bool)
	for _, name := range p.Kernels() {
		registered[name] = true
	}
	for i, st := range stages {
		if st.Kernel == "" {
			return nil, fmt.Errorf("kaas: workflow stage %d has no kernel", i)
		}
		if !registered[st.Kernel] {
			return nil, fmt.Errorf("kaas: workflow stage %d: kernel %q not registered", i, st.Kernel)
		}
	}
	copied := make([]WorkflowStage, len(stages))
	copy(copied, stages)
	return &Workflow{platform: p, stages: copied}, nil
}

// StageResult is the outcome of one workflow stage.
type StageResult struct {
	// Kernel is the stage's kernel name.
	Kernel string
	// Response is the kernel's output.
	Response *Response
	// Report describes how the invocation was served.
	Report *Report
}

// WorkflowResult is a completed workflow run.
type WorkflowResult struct {
	// Stages holds per-stage outcomes, in order.
	Stages []StageResult
	// Total is the end-to-end modeled completion time.
	Total time.Duration
}

// Output returns the final stage's response.
func (r *WorkflowResult) Output() *Response {
	if len(r.Stages) == 0 {
		return nil
	}
	return r.Stages[len(r.Stages)-1].Response
}

// Run executes the stages in order, passing payloads between stages where
// requested, and returns all stage results. data seeds the first stage's
// payload (may be nil).
func (w *Workflow) Run(ctx context.Context, data []byte) (*WorkflowResult, error) {
	result := &WorkflowResult{Stages: make([]StageResult, 0, len(w.stages))}
	payload := data
	for i, st := range w.stages {
		var in []byte
		if i == 0 || st.PassData {
			in = payload
		}
		resp, report, err := w.platform.Invoke(ctx, st.Kernel, st.Params, in)
		if err != nil {
			return nil, fmt.Errorf("kaas: workflow stage %d (%s): %w", i, st.Kernel, err)
		}
		result.Stages = append(result.Stages, StageResult{
			Kernel:   st.Kernel,
			Response: resp,
			Report:   report,
		})
		result.Total += report.Total()
		payload = resp.Data
	}
	return result, nil
}
