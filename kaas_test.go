package kaas

import (
	"context"
	"net"
	"testing"
	"time"

	"kaas/internal/faults"
)

func TestPlatformDefaults(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	if p.Addr() != "" {
		t.Errorf("Addr = %q, want empty without TCP", p.Addr())
	}
	if _, err := p.NewClient(); err == nil {
		t.Error("NewClient without TCP succeeded")
	}
}

func TestPlatformRegisterInvoke(t *testing.T) {
	p, err := New(WithAccelerators(TeslaP100, AlveoU250))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	if err := p.RegisterByName("matmul"); err != nil {
		t.Fatalf("RegisterByName: %v", err)
	}
	if err := p.RegisterByName("histogram"); err != nil {
		t.Fatalf("RegisterByName histogram: %v", err)
	}
	if err := p.RegisterByName("bogus"); err == nil {
		t.Error("RegisterByName(bogus) succeeded")
	}

	resp, rep, err := p.Invoke(context.Background(), "matmul", Params{"n": 64}, nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if resp.Values["checksum"] <= 0 {
		t.Errorf("checksum = %v", resp.Values["checksum"])
	}
	if !rep.Cold {
		t.Error("first invocation not cold")
	}
	if got := len(p.Kernels()); got != 2 {
		t.Errorf("Kernels = %d, want 2", got)
	}
	if st := p.Stats(); st.ColdStarts != 1 {
		t.Errorf("ColdStarts = %d, want 1", st.ColdStarts)
	}
}

func TestPlatformTCPEndToEnd(t *testing.T) {
	p, err := New(WithListenAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	if p.Addr() == "" {
		t.Fatal("no TCP address")
	}
	c, err := p.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	if err := c.Register("mci"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	res, err := c.Invoke("mci", Params{"n": 10000}, nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if res.Values["estimate"] <= 0 {
		t.Errorf("estimate = %v", res.Values["estimate"])
	}
}

func TestPlatformShapedClient(t *testing.T) {
	p, err := New(WithListenAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	c, err := p.NewShapedClient()
	if err != nil {
		t.Fatalf("NewShapedClient: %v", err)
	}
	defer c.Close()
	if err := c.Register("mci"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := c.Invoke("mci", Params{"n": 1000}, nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
}

func TestPlatformOptions(t *testing.T) {
	p, err := New(
		WithTimeScale(2000),
		WithHostName("node7"),
		WithCPU(EPYC7513),
		WithAccelerators(TeslaV100, TeslaV100),
		WithMaxInFlight(2),
		WithMaxRunnersPerDevice(2),
		WithPlacement(PlaceRoundRobin),
		WithIdleTimeout(10*time.Second),
		WithoutResultComputation(),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	if err := p.RegisterByName("resnet"); err != nil {
		t.Fatalf("RegisterByName: %v", err)
	}
	resp, _, err := p.Invoke(context.Background(), "resnet", Params{"batch": 8}, nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if _, ok := resp.Values["first_class"]; ok {
		t.Error("results computed despite WithoutResultComputation")
	}
}

func TestPlatformListenerTimeoutRetry(t *testing.T) {
	// Serve through a fault-injecting listener whose first connection
	// dies mid-frame: the platform-configured retry policy must recover
	// transparently, and the deadline must ride along on every call.
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := faults.Wrap(raw, func(i int) faults.Plan {
		if i == 0 {
			return faults.Plan{Mode: faults.CloseMidFrame}
		}
		return faults.Plan{}
	})
	p, err := New(
		WithAccelerators(TeslaP100),
		WithListener(ln),
		WithInvokeTimeout(10*time.Second),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	if p.Addr() == "" {
		t.Fatal("no address from custom listener")
	}
	c, err := p.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	if err := c.Register("mci"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := c.Invoke("mci", Params{"n": 1000}, nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	m := c.Metrics()
	if m.Retries == 0 {
		t.Errorf("Metrics = %+v, want at least one retry through the faulty connection", m)
	}
	if m.RemoteErrors != 0 {
		t.Errorf("RemoteErrors = %d, want 0", m.RemoteErrors)
	}
}

func TestKernelLibraryAccessors(t *testing.T) {
	suite := KernelSuite()
	if len(suite) < 12 {
		t.Errorf("KernelSuite = %d kernels, want >= 12", len(suite))
	}
	k, err := KernelByName("vqe")
	if err != nil || k.Name() != "vqe" {
		t.Errorf("KernelByName(vqe) = %v, %v", k, err)
	}
	if _, err := KernelByName("nothing"); err == nil {
		t.Error("KernelByName(nothing) succeeded")
	}
}
