// Package tensor provides dense float64 matrices and small tensors used by
// the KaaS kernel implementations (matrix multiplication, convolution,
// neural-network layers).
//
// Shape agreement is part of each operation's contract: operations panic
// on shape mismatch, like other numeric Go libraries, because a mismatch
// is an unrecoverable programming error rather than a runtime condition.
// Constructors validate user-supplied dimensions and return errors.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix creates a zero matrix with the given dimensions.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("tensor: invalid dimensions %dx%d", rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}, nil
}

// FromSlice creates a matrix that adopts data (length rows*cols, row major).
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("tensor: invalid dimensions %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("tensor: data length %d != %d*%d", len(data), rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// Randn creates a matrix with standard-normal entries drawn from rng.
func Randn(rng *rand.Rand, rows, cols int) (*Matrix, error) {
	m, err := NewMatrix(rows, cols)
	if err != nil {
		return nil, err
	}
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m, nil
}

// Uniform creates a matrix with entries drawn uniformly from [lo, hi).
func Uniform(rng *rand.Rand, rows, cols int, lo, hi float64) (*Matrix, error) {
	m, err := NewMatrix(rows, cols)
	if err != nil {
		return nil, err
	}
	span := hi - lo
	for i := range m.data {
		m.data[i] = lo + rng.Float64()*span
	}
	return m, nil
}

// Eye creates an n-by-n identity matrix.
func Eye(n int) (*Matrix, error) {
	m, err := NewMatrix(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Data returns the underlying row-major storage. Mutations are visible to
// the matrix.
func (m *Matrix) Data() []float64 { return m.data }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	data := make([]float64, len(m.data))
	copy(data, m.data)
	return &Matrix{rows: m.rows, cols: m.cols, data: data}
}

// shapeEq panics unless a and b have identical shapes.
func shapeEq(op string, a, b *Matrix) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d",
			op, a.rows, a.cols, b.rows, b.cols))
	}
}

// MatMul returns a×b. It panics if a.Cols() != b.Rows().
func MatMul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: matmul inner dimension mismatch %d vs %d", a.cols, b.rows))
	}
	out := &Matrix{rows: a.rows, cols: b.cols, data: make([]float64, a.rows*b.cols)}
	// ikj loop order for cache-friendly access to b and out.
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulFLOPs returns the floating-point operation count of multiplying an
// m×k matrix by a k×n matrix (one multiply and one add per inner element).
func MatMulFLOPs(m, k, n int) float64 {
	return 2 * float64(m) * float64(k) * float64(n)
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	shapeEq("add", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	shapeEq("sub", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Hadamard returns the elementwise product a∘b.
func Hadamard(a, b *Matrix) *Matrix {
	shapeEq("hadamard", a, b)
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] *= v
	}
	return out
}

// Scale returns s*a.
func Scale(a *Matrix, s float64) *Matrix {
	out := a.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Matrix) *Matrix {
	out := &Matrix{rows: a.cols, cols: a.rows, data: make([]float64, len(a.data))}
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.data[j*out.cols+i] = a.data[i*a.cols+j]
		}
	}
	return out
}

// Apply returns f applied elementwise to a.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	out := a.Clone()
	for i, v := range out.data {
		out.data[i] = f(v)
	}
	return out
}

// ReLU returns max(0, a) elementwise.
func ReLU(a *Matrix) *Matrix {
	return Apply(a, func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	})
}

// SoftmaxRows returns a with a numerically stable softmax applied to each
// row.
func SoftmaxRows(a *Matrix) *Matrix {
	out := a.Clone()
	for i := 0; i < out.rows; i++ {
		row := out.Row(i)
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxV)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// Frob returns the Frobenius norm.
func (m *Matrix) Frob() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// a and b.
func MaxAbsDiff(a, b *Matrix) float64 {
	shapeEq("maxabsdiff", a, b)
	var m float64
	for i := range a.data {
		d := math.Abs(a.data[i] - b.data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// ArgmaxRows returns, for each row, the index of its maximum element.
func ArgmaxRows(a *Matrix) []int {
	out := make([]int, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
