package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixValidation(t *testing.T) {
	for _, tt := range []struct{ r, c int }{{0, 1}, {1, 0}, {-1, 5}} {
		if _, err := NewMatrix(tt.r, tt.c); err == nil {
			t.Errorf("NewMatrix(%d,%d) succeeded, want error", tt.r, tt.c)
		}
	}
	m, err := NewMatrix(3, 4)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Errorf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
}

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice(2, 2, []float64{1, 2, 3}); err == nil {
		t.Error("FromSlice with wrong length succeeded")
	}
	if _, err := FromSlice(0, 2, nil); err == nil {
		t.Error("FromSlice with zero rows succeeded")
	}
	m, err := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m, _ := NewMatrix(3, 3)
	m.Set(2, 1, 7.5)
	if got := m.At(2, 1); got != 7.5 {
		t.Errorf("At = %v, want 7.5", got)
	}
	row := m.Row(2)
	if row[1] != 7.5 {
		t.Errorf("Row(2)[1] = %v, want 7.5", row[1])
	}
}

func TestMatMulKnownResult(t *testing.T) {
	a, _ := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want, _ := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if MaxAbsDiff(got, want) > 1e-12 {
		t.Errorf("MatMul = %v, want %v", got.Data(), want.Data())
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul with mismatched inner dims did not panic")
		}
	}()
	a, _ := NewMatrix(2, 3)
	b, _ := NewMatrix(2, 2)
	MatMul(a, b)
}

func TestMatMulIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a, _ := Randn(rng, n, n)
		id, _ := Eye(n)
		left := MatMul(id, a)
		right := MatMul(a, id)
		return MaxAbsDiff(left, a) < 1e-12 && MaxAbsDiff(right, a) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, _ := Randn(r, m, k)
		b, _ := Randn(r, k, n)
		c, _ := Randn(r, n, p)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return MaxAbsDiff(left, right) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(10), 1+r.Intn(10)
		a, _ := Randn(r, m, n)
		return MaxAbsDiff(Transpose(Transpose(a)), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransposeMatMulProperty(t *testing.T) {
	// (AB)ᵀ = BᵀAᵀ
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, _ := Randn(r, m, k)
		b, _ := Randn(r, k, n)
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		return MaxAbsDiff(left, right) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(10), 1+r.Intn(10)
		a, _ := Randn(r, m, n)
		b, _ := Randn(r, m, n)
		return MaxAbsDiff(Sub(Add(a, b), b), a) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	a, _ := FromSlice(1, 4, []float64{-1, 0, 2, -3})
	if got := ReLU(a).Data(); got[0] != 0 || got[2] != 2 || got[3] != 0 {
		t.Errorf("ReLU = %v", got)
	}
	if got := Scale(a, 2).Data(); got[2] != 4 {
		t.Errorf("Scale = %v", got)
	}
	b, _ := FromSlice(1, 4, []float64{2, 2, 2, 2})
	if got := Hadamard(a, b).Data(); got[3] != -6 {
		t.Errorf("Hadamard = %v", got)
	}
	if got := Apply(a, math.Abs).Data(); got[0] != 1 {
		t.Errorf("Apply = %v", got)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(8), 1+r.Intn(8)
		a, _ := Uniform(r, m, n, -50, 50)
		s := SoftmaxRows(a)
		for i := 0; i < m; i++ {
			var sum float64
			for _, v := range s.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	a, _ := FromSlice(1, 3, []float64{1000, 1000, 1000})
	s := SoftmaxRows(a)
	for _, v := range s.Data() {
		if math.IsNaN(v) || math.Abs(v-1.0/3) > 1e-9 {
			t.Errorf("softmax of large equal values = %v", s.Data())
			break
		}
	}
}

func TestSumFrobArgmax(t *testing.T) {
	a, _ := FromSlice(2, 2, []float64{3, 4, 0, 0})
	if got := a.Sum(); got != 7 {
		t.Errorf("Sum = %v, want 7", got)
	}
	if got := a.Frob(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Frob = %v, want 5", got)
	}
	b, _ := FromSlice(2, 3, []float64{1, 5, 2, 9, 0, 3})
	got := ArgmaxRows(b)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgmaxRows = %v, want [1 0]", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a, _ := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestMatMulFLOPs(t *testing.T) {
	if got := MatMulFLOPs(10, 20, 30); got != 12000 {
		t.Errorf("MatMulFLOPs = %v, want 12000", got)
	}
}

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := Uniform(rng, 10, 10, -2, 3)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	for _, v := range m.Data() {
		if v < -2 || v >= 3 {
			t.Fatalf("value %v outside [-2, 3)", v)
		}
	}
}
