package tensor

import "fmt"

// Image is a single-channel 2D array used by the convolution and image
// kernels, stored row major.
type Image struct {
	h, w int
	pix  []float64
}

// NewImage creates a zero image of the given size.
func NewImage(h, w int) (*Image, error) {
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("tensor: invalid image size %dx%d", h, w)
	}
	return &Image{h: h, w: w, pix: make([]float64, h*w)}, nil
}

// ImageFromSlice adopts pix (length h*w) as an image.
func ImageFromSlice(h, w int, pix []float64) (*Image, error) {
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("tensor: invalid image size %dx%d", h, w)
	}
	if len(pix) != h*w {
		return nil, fmt.Errorf("tensor: pixel count %d != %d*%d", len(pix), h, w)
	}
	return &Image{h: h, w: w, pix: pix}, nil
}

// H returns the image height.
func (im *Image) H() int { return im.h }

// W returns the image width.
func (im *Image) W() int { return im.w }

// Pix returns the underlying pixel storage.
func (im *Image) Pix() []float64 { return im.pix }

// At returns pixel (y, x).
func (im *Image) At(y, x int) float64 { return im.pix[y*im.w+x] }

// Set assigns pixel (y, x).
func (im *Image) Set(y, x int, v float64) { im.pix[y*im.w+x] = v }

// Conv2DValid computes the "valid" 2D cross-correlation of im with the
// kernel k (no padding, stride 1). The output is (H-kh+1)×(W-kw+1). It
// panics if the kernel is larger than the image.
func Conv2DValid(im *Image, k *Matrix) *Image {
	kh, kw := k.Rows(), k.Cols()
	oh, ow := im.h-kh+1, im.w-kw+1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: kernel %dx%d larger than image %dx%d", kh, kw, im.h, im.w))
	}
	out := &Image{h: oh, w: ow, pix: make([]float64, oh*ow)}
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			var acc float64
			for ky := 0; ky < kh; ky++ {
				irow := im.pix[(y+ky)*im.w+x:]
				krow := k.Row(ky)
				for kx, kv := range krow {
					acc += irow[kx] * kv
				}
			}
			out.pix[y*ow+x] = acc
		}
	}
	return out
}

// Conv2DSame computes a "same" 2D cross-correlation with zero padding so
// the output has the input's size. The kernel's anchor is its center.
func Conv2DSame(im *Image, k *Matrix) *Image {
	kh, kw := k.Rows(), k.Cols()
	py, px := kh/2, kw/2
	out := &Image{h: im.h, w: im.w, pix: make([]float64, im.h*im.w)}
	for y := 0; y < im.h; y++ {
		for x := 0; x < im.w; x++ {
			var acc float64
			for ky := 0; ky < kh; ky++ {
				iy := y + ky - py
				if iy < 0 || iy >= im.h {
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := x + kx - px
					if ix < 0 || ix >= im.w {
						continue
					}
					acc += im.pix[iy*im.w+ix] * k.At(ky, kx)
				}
			}
			out.pix[y*im.w+x] = acc
		}
	}
	return out
}

// Conv2DFLOPs returns the floating-point operation count of a valid 2D
// convolution of an h×w image with a kh×kw kernel.
func Conv2DFLOPs(h, w, kh, kw int) float64 {
	oh, ow := h-kh+1, w-kw+1
	if oh <= 0 || ow <= 0 {
		return 0
	}
	return 2 * float64(oh) * float64(ow) * float64(kh) * float64(kw)
}

// MaxPool2 downsamples the image by a factor of two using 2×2 max pooling.
// Odd trailing rows/columns are dropped.
func MaxPool2(im *Image) *Image {
	oh, ow := im.h/2, im.w/2
	out := &Image{h: oh, w: ow, pix: make([]float64, oh*ow)}
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			a := im.At(2*y, 2*x)
			if b := im.At(2*y, 2*x+1); b > a {
				a = b
			}
			if b := im.At(2*y+1, 2*x); b > a {
				a = b
			}
			if b := im.At(2*y+1, 2*x+1); b > a {
				a = b
			}
			out.pix[y*ow+x] = a
		}
	}
	return out
}

// Downsample reduces the image by integer factor f using averaging.
func Downsample(im *Image, f int) (*Image, error) {
	if f <= 0 {
		return nil, fmt.Errorf("tensor: invalid downsample factor %d", f)
	}
	oh, ow := im.h/f, im.w/f
	if oh == 0 || ow == 0 {
		return nil, fmt.Errorf("tensor: factor %d too large for %dx%d image", f, im.h, im.w)
	}
	out := &Image{h: oh, w: ow, pix: make([]float64, oh*ow)}
	inv := 1 / float64(f*f)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			var acc float64
			for dy := 0; dy < f; dy++ {
				for dx := 0; dx < f; dx++ {
					acc += im.At(y*f+dy, x*f+dx)
				}
			}
			out.pix[y*ow+x] = acc * inv
		}
	}
	return out, nil
}
