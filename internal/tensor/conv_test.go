package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewImageValidation(t *testing.T) {
	if _, err := NewImage(0, 5); err == nil {
		t.Error("NewImage(0,5) succeeded")
	}
	if _, err := ImageFromSlice(2, 2, []float64{1}); err == nil {
		t.Error("ImageFromSlice with bad length succeeded")
	}
	im, err := NewImage(3, 4)
	if err != nil {
		t.Fatalf("NewImage: %v", err)
	}
	if im.H() != 3 || im.W() != 4 || len(im.Pix()) != 12 {
		t.Errorf("image dims wrong: %dx%d", im.H(), im.W())
	}
}

func TestConv2DValidIdentityKernel(t *testing.T) {
	im, _ := ImageFromSlice(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	k, _ := FromSlice(1, 1, []float64{1})
	out := Conv2DValid(im, k)
	if out.H() != 3 || out.W() != 3 {
		t.Fatalf("output dims %dx%d, want 3x3", out.H(), out.W())
	}
	for i, v := range out.Pix() {
		if v != im.Pix()[i] {
			t.Errorf("pixel %d = %v, want %v", i, v, im.Pix()[i])
		}
	}
}

func TestConv2DValidKnownResult(t *testing.T) {
	im, _ := ImageFromSlice(3, 3, []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	k, _ := FromSlice(2, 2, []float64{
		1, 0,
		0, 1,
	})
	out := Conv2DValid(im, k)
	want := []float64{1 + 5, 2 + 6, 4 + 8, 5 + 9}
	if out.H() != 2 || out.W() != 2 {
		t.Fatalf("dims %dx%d, want 2x2", out.H(), out.W())
	}
	for i, v := range out.Pix() {
		if v != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestConv2DValidPanicsOnOversizeKernel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversize kernel did not panic")
		}
	}()
	im, _ := NewImage(2, 2)
	k, _ := NewMatrix(3, 3)
	Conv2DValid(im, k)
}

func TestConv2DSamePreservesSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	im, _ := NewImage(7, 9)
	for i := range im.Pix() {
		im.Pix()[i] = rng.Float64()
	}
	k, _ := Randn(rng, 3, 3)
	out := Conv2DSame(im, k)
	if out.H() != 7 || out.W() != 9 {
		t.Errorf("same conv dims %dx%d, want 7x9", out.H(), out.W())
	}
}

func TestConv2DLinearityProperty(t *testing.T) {
	// conv(a+b, k) == conv(a, k) + conv(b, k)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, w := 4+r.Intn(5), 4+r.Intn(5)
		a, _ := NewImage(h, w)
		b, _ := NewImage(h, w)
		for i := range a.Pix() {
			a.Pix()[i] = r.NormFloat64()
			b.Pix()[i] = r.NormFloat64()
		}
		k, _ := Randn(r, 3, 3)
		sum, _ := NewImage(h, w)
		for i := range sum.Pix() {
			sum.Pix()[i] = a.Pix()[i] + b.Pix()[i]
		}
		left := Conv2DValid(sum, k)
		ca := Conv2DValid(a, k)
		cb := Conv2DValid(b, k)
		for i := range left.Pix() {
			if math.Abs(left.Pix()[i]-(ca.Pix()[i]+cb.Pix()[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConv2DFLOPs(t *testing.T) {
	if got := Conv2DFLOPs(5, 5, 3, 3); got != 2*3*3*3*3 {
		t.Errorf("Conv2DFLOPs = %v, want %v", got, 2*3*3*3*3)
	}
	if got := Conv2DFLOPs(2, 2, 3, 3); got != 0 {
		t.Errorf("Conv2DFLOPs undersized = %v, want 0", got)
	}
}

func TestMaxPool2(t *testing.T) {
	im, _ := ImageFromSlice(2, 4, []float64{
		1, 5, 2, 0,
		3, 4, 8, 1,
	})
	out := MaxPool2(im)
	if out.H() != 1 || out.W() != 2 {
		t.Fatalf("dims %dx%d, want 1x2", out.H(), out.W())
	}
	if out.At(0, 0) != 5 || out.At(0, 1) != 8 {
		t.Errorf("pooled = %v, want [5 8]", out.Pix())
	}
}

func TestDownsample(t *testing.T) {
	im, _ := ImageFromSlice(2, 2, []float64{1, 3, 5, 7})
	out, err := Downsample(im, 2)
	if err != nil {
		t.Fatalf("Downsample: %v", err)
	}
	if out.H() != 1 || out.W() != 1 || out.At(0, 0) != 4 {
		t.Errorf("Downsample = %v, want [4]", out.Pix())
	}
	if _, err := Downsample(im, 0); err == nil {
		t.Error("Downsample factor 0 succeeded")
	}
	if _, err := Downsample(im, 10); err == nil {
		t.Error("Downsample factor larger than image succeeded")
	}
}

func TestImageSetAt(t *testing.T) {
	im, _ := NewImage(2, 3)
	im.Set(1, 2, 4.5)
	if got := im.At(1, 2); got != 4.5 {
		t.Errorf("At = %v, want 4.5", got)
	}
}
