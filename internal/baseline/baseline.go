// Package baseline implements the accelerator delivery models KaaS is
// evaluated against: the conventional one-process-per-task pattern in
// which every task imports the host framework, creates a fresh device
// context, and tears everything down afterwards.
//
//   - Time sharing (the paper's "exclusive" model): run against a host
//     whose device profiles have Slots=1, so context acquisition
//     serializes tasks on the device.
//   - Space sharing (MPS): the same executor against devices with
//     Slots=N, so contexts coexist and kernels share the fabric.
//
// The executor is deliberately the same code for both: the sharing level
// is a property of the device, exactly as in Fig. 4.
package baseline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"kaas/internal/accel"
	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/vclock"
)

// ErrNoDevice indicates the host lacks a device of the kernel's kind.
var ErrNoDevice = errors.New("baseline: no device of required kind")

// Config configures an Executor.
type Config struct {
	// Clock is the time source (required).
	Clock vclock.Clock
	// Host supplies the devices (required).
	Host *accel.Host
	// HostPrepCost is the modeled per-task host-side preparation (memory
	// allocation, argument staging). Default 150 ms, matching the
	// overhead split of Fig. 7.
	HostPrepCost time.Duration
	// SpreadDevices places tasks on the least-busy device instead of the
	// first one (the numba default always uses the first GPU, which the
	// paper's baseline does).
	SpreadDevices bool
	// DisableCompute skips the real host computation, as in core.Config.
	DisableCompute bool
}

// Executor runs kernels the conventional way: everything initialized per
// task. It is safe for concurrent use.
type Executor struct {
	cfg   Config
	clock vclock.Clock

	mu   sync.Mutex
	next int
}

// New creates an executor.
func New(cfg Config) (*Executor, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("baseline: config needs a clock")
	}
	if cfg.Host == nil {
		return nil, fmt.Errorf("baseline: config needs a host")
	}
	if cfg.HostPrepCost == 0 {
		cfg.HostPrepCost = 150 * time.Millisecond
	}
	return &Executor{cfg: cfg, clock: cfg.Clock}, nil
}

// Run executes one task end to end, paying all initialization costs, and
// returns the kernel response with a phase report. Every Run models a
// fresh application process.
func (e *Executor) Run(ctx context.Context, k kernels.Kernel, req *kernels.Request) (*kernels.Response, *core.Report, error) {
	if req == nil {
		req = &kernels.Request{}
	}
	if req.Params == nil {
		req.Params = kernels.Params{}
	}
	devs := e.cfg.Host.DevicesByKind(k.Kind())
	if len(devs) == 0 {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoDevice, k.Kind())
	}
	dev := e.pick(devs)
	prof := dev.Profile()

	report := &core.Report{Kernel: k.Name(), Device: dev.ID(), Cold: true}

	// Host framework import: paid on every task in the baseline model.
	e.clock.Sleep(prof.LibraryInit)
	report.Breakdown.LibraryInit += prof.LibraryInit

	// Host-side preparation.
	e.clock.Sleep(e.cfg.HostPrepCost)
	report.Breakdown.Other += e.cfg.HostPrepCost

	cost, err := k.Cost(req)
	if err != nil {
		return nil, nil, fmt.Errorf("baseline: cost model: %w", err)
	}

	// Device context creation: queues behind other tasks when the device
	// has a single slot (time sharing).
	acqStart := e.clock.Now()
	dctx, err := dev.Acquire(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("baseline: %w", err)
	}
	defer dctx.Release()
	acq := e.clock.Now().Sub(acqStart)
	report.Breakdown.RuntimeInit += prof.RuntimeInit
	if q := acq - prof.RuntimeInit; q > 0 {
		report.Breakdown.Queue += q
	}

	// Kernel setup: also per task here (nothing is cached).
	if cost.SetupTime > 0 {
		e.clock.Sleep(cost.SetupTime)
		report.Breakdown.Setup += cost.SetupTime
	}

	if cost.DeviceMemory > 0 {
		if err := dctx.Alloc(cost.DeviceMemory); err != nil {
			return nil, nil, fmt.Errorf("baseline: %w", err)
		}
		defer dctx.Free(cost.DeviceMemory)
	}

	copyIn, err := dctx.Copy(ctx, cost.BytesIn)
	if err != nil {
		return nil, nil, err
	}
	report.Breakdown.CopyIn += copyIn

	execTime, err := dctx.Exec(ctx, cost.Work)
	if err != nil {
		return nil, nil, err
	}
	report.Breakdown.Exec += execTime

	var resp *kernels.Response
	if e.cfg.DisableCompute {
		resp = &kernels.Response{Values: map[string]float64{"computed": 0}}
	} else {
		resp, err = k.Execute(req)
		if err != nil {
			return nil, nil, fmt.Errorf("baseline: execute: %w", err)
		}
	}

	copyOut, err := dctx.Copy(ctx, cost.BytesOut)
	if err != nil {
		return nil, nil, err
	}
	report.Breakdown.CopyOut += copyOut
	return resp, report, nil
}

// pick selects the target device.
func (e *Executor) pick(devs []*accel.Device) *accel.Device {
	if !e.cfg.SpreadDevices || len(devs) == 1 {
		return devs[0]
	}
	// Least busy by active contexts; ties broken round-robin.
	e.mu.Lock()
	best := devs[e.next%len(devs)]
	e.next++
	e.mu.Unlock()
	for _, d := range devs {
		if d.Stats().ActiveContexts < best.Stats().ActiveContexts {
			best = d
		}
	}
	return best
}
