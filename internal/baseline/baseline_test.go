package baseline

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/kernels"
	"kaas/internal/vclock"
)

func gpuProfile(slots int) accel.Profile {
	return accel.Profile{
		Name:           "test GPU",
		Kind:           accel.GPU,
		RuntimeInit:    400 * time.Millisecond,
		LibraryInit:    500 * time.Millisecond,
		LaunchOverhead: time.Millisecond,
		ComputeRate:    1e9,
		CopyBandwidth:  1e9,
		Slots:          slots,
		MemoryBytes:    1 << 30,
		IdlePower:      30,
		BusyPower:      250,
	}
}

func newExec(t *testing.T, slots int, mutate func(*Config)) (*Executor, vclock.Clock) {
	t.Helper()
	clock := vclock.Scaled(1000)
	host, err := accel.NewHost(clock, "t", accel.XeonE52698, gpuProfile(slots), gpuProfile(slots))
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	cfg := Config{Clock: clock, Host: host}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, clock
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without clock succeeded")
	}
	if _, err := New(Config{Clock: vclock.Real()}); err == nil {
		t.Error("New without host succeeded")
	}
}

func TestEveryTaskPaysFullInit(t *testing.T) {
	e, _ := newExec(t, 8, nil)
	k := kernels.NewMatMul(accel.GPU)
	req := &kernels.Request{Params: kernels.Params{"n": 64}}

	for i := 0; i < 2; i++ {
		_, rep, err := e.Run(context.Background(), k, req)
		if err != nil {
			t.Fatalf("Run %d: %v", i, err)
		}
		if !rep.Cold {
			t.Errorf("run %d not cold", i)
		}
		if rep.Breakdown.LibraryInit < 400*time.Millisecond {
			t.Errorf("run %d LibraryInit = %v, want >= 400ms", i, rep.Breakdown.LibraryInit)
		}
		if rep.Breakdown.RuntimeInit < 300*time.Millisecond {
			t.Errorf("run %d RuntimeInit = %v, want >= 300ms", i, rep.Breakdown.RuntimeInit)
		}
		if rep.Breakdown.Other < 100*time.Millisecond {
			t.Errorf("run %d host prep = %v, want >= 100ms", i, rep.Breakdown.Other)
		}
	}
}

func TestExclusiveSerializesOnDevice(t *testing.T) {
	// Slots=1: two concurrent tasks on the same device must queue.
	e, _ := newExec(t, 1, nil)
	k := &slowKernel{work: 3e9} // 3 modeled seconds
	var wg sync.WaitGroup
	queued := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, rep, err := e.Run(context.Background(), k, nil)
			if err != nil {
				t.Errorf("Run: %v", err)
				return
			}
			queued[i] = rep.Breakdown.Queue
		}()
	}
	wg.Wait()
	// One of the two must have queued for roughly the other's occupancy.
	maxQ := queued[0]
	if queued[1] > maxQ {
		maxQ = queued[1]
	}
	if maxQ < 2*time.Second {
		t.Errorf("max queue = %v, want >= 2s under exclusive sharing", maxQ)
	}
}

func TestSpaceSharingRunsConcurrently(t *testing.T) {
	e, _ := newExec(t, 8, nil)
	k := &slowKernel{work: 3e9}
	var wg sync.WaitGroup
	queued := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, rep, err := e.Run(context.Background(), k, nil)
			if err != nil {
				t.Errorf("Run: %v", err)
				return
			}
			queued[i] = rep.Breakdown.Queue
		}()
	}
	wg.Wait()
	for i, q := range queued {
		if q > time.Second {
			t.Errorf("task %d queued %v under space sharing, want ~0", i, q)
		}
	}
}

func TestSpreadDevicesBalances(t *testing.T) {
	e, _ := newExec(t, 1, func(c *Config) { c.SpreadDevices = true })
	k := &slowKernel{work: 10e9}
	var wg sync.WaitGroup
	devices := make([]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, rep, err := e.Run(context.Background(), k, nil)
			if err != nil {
				t.Errorf("Run: %v", err)
				return
			}
			devices[i] = rep.Device
		}()
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	if devices[0] == devices[1] {
		t.Errorf("both tasks on %s despite SpreadDevices", devices[0])
	}
}

func TestFirstFitDefaultUsesFirstDevice(t *testing.T) {
	e, _ := newExec(t, 8, nil)
	k := &slowKernel{work: 1e6}
	for i := 0; i < 3; i++ {
		_, rep, err := e.Run(context.Background(), k, nil)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if rep.Device != "t/GPU0" {
			t.Errorf("task on %s, want t/GPU0 (numba default)", rep.Device)
		}
	}
}

func TestMissingDeviceKind(t *testing.T) {
	e, _ := newExec(t, 1, nil)
	k := kernels.NewHistogram() // FPGA kernel, host has none
	if _, _, err := e.Run(context.Background(), k, nil); !errors.Is(err, ErrNoDevice) {
		t.Errorf("err = %v, want ErrNoDevice", err)
	}
}

func TestDisableCompute(t *testing.T) {
	e, _ := newExec(t, 8, func(c *Config) { c.DisableCompute = true })
	k := kernels.NewMatMul(accel.GPU)
	resp, _, err := e.Run(context.Background(), k, &kernels.Request{Params: kernels.Params{"n": 64}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := resp.Values["checksum"]; ok {
		t.Error("compute ran despite DisableCompute")
	}
}

func TestSetupWorkCharged(t *testing.T) {
	e, _ := newExec(t, 8, nil)
	k := &slowKernel{work: 1e6, setup: 2 * time.Second}
	_, rep, err := e.Run(context.Background(), k, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Breakdown.Setup < time.Second {
		t.Errorf("Setup = %v, want >= 1s", rep.Breakdown.Setup)
	}
}

// slowKernel is a minimal kernel with configurable work.
type slowKernel struct {
	work  float64
	setup time.Duration
}

var _ kernels.Kernel = (*slowKernel)(nil)

func (s *slowKernel) Name() string     { return "slow" }
func (s *slowKernel) Kind() accel.Kind { return accel.GPU }

func (s *slowKernel) Cost(*kernels.Request) (kernels.Cost, error) {
	return kernels.Cost{Work: s.work, SetupTime: s.setup, BytesIn: 100, BytesOut: 100}, nil
}

func (s *slowKernel) Execute(*kernels.Request) (*kernels.Response, error) {
	return &kernels.Response{Values: map[string]float64{"done": 1}}, nil
}
