// Package artifact implements the content-addressed compiled-kernel
// cache behind the platform's cold-start path. Compiling (JIT'ing,
// transpiling, or place-and-routing) a kernel for a device kind is the
// dominant first-invocation cost on every accelerator the paper models;
// the cache makes that cost a one-time event per (kernel, device-kind)
// pair. Entries are addressed by a digest of the kernel's identity and
// compile signature, bounded by a byte budget with LRU eviction, and —
// mirroring GKM-style kernel registries — distributable across federated
// hosts so an artifact compiled on one node is a hit on its peers.
package artifact

import (
	"container/list"
	"hash/fnv"
	"strings"
	"sync"
	"time"
)

// Key is the content address of a compiled artifact: a 64-bit FNV-1a
// digest, hex-encoded, over the kernel's identity and compile signature.
type Key string

// KeyFor digests the given identity parts into a cache key. Parts are
// joined with an unlikely separator so ("ab","c") and ("a","bc") hash
// differently.
func KeyFor(parts ...string) Key {
	h := fnv.New64a()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0x1f}) // unit separator
		}
		h.Write([]byte(p))
	}
	const hexdigits = "0123456789abcdef"
	sum := h.Sum64()
	var b strings.Builder
	for shift := 60; shift >= 0; shift -= 4 {
		b.WriteByte(hexdigits[(sum>>uint(shift))&0xf])
	}
	return Key(b.String())
}

// Artifact is one compiled kernel image: the key it is addressed by,
// human-readable provenance, its size against the cache budget, and the
// modeled compile cost a miss would pay.
type Artifact struct {
	Key Key
	// Kernel and Kind record provenance (kernel name, device kind).
	Kernel string
	Kind   string
	// Size is the artifact's footprint in bytes.
	Size int64
	// CompileCost is the modeled JIT duration this artifact saves.
	CompileCost time.Duration
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Seeded counts artifacts received from peer caches.
	Seeded      uint64 `json:"seeded"`
	Entries     int    `json:"entries"`
	UsedBytes   int64  `json:"used_bytes"`
	BudgetBytes int64  `json:"budget_bytes"`
}

// Cache is a concurrency-safe LRU artifact cache with a byte budget.
// Lookup and Store implement the local hit/miss path; Seed inserts
// without hit/miss accounting and is how peer caches propagate artifacts
// cluster-wide (see Link). The zero budget means "unbounded".
type Cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = most recently used; values are *Artifact
	index  map[Key]*list.Element

	hits, misses, evictions, seeded uint64

	peers []*Cache
}

// NewCache creates a cache bounded to budget bytes (0 = unbounded).
func NewCache(budget int64) *Cache {
	return &Cache{
		budget: budget,
		order:  list.New(),
		index:  make(map[Key]*list.Element),
	}
}

// Lookup returns the cached artifact for key, or nil on a miss, and
// updates recency and hit/miss counters.
func (c *Cache) Lookup(key Key) *Artifact {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*Artifact)
}

// Store inserts an artifact compiled locally and seeds it into every
// linked peer cache, so a kernel compiled on one node is a cache hit on
// its siblings. Artifacts larger than the whole budget are not cached.
func (c *Cache) Store(a *Artifact) {
	c.mu.Lock()
	c.insertLocked(a)
	peers := append([]*Cache(nil), c.peers...)
	c.mu.Unlock()
	// Seed outside c.mu: peers lock themselves, and bidirectional links
	// would otherwise order locks both ways.
	for _, p := range peers {
		p.Seed(a)
	}
}

// Seed inserts an artifact received from a peer. Unlike Store it does
// not re-propagate (no flooding loops) and does not count as a miss.
func (c *Cache) Seed(a *Artifact) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.index[a.Key]; ok {
		return
	}
	if c.insertLocked(a) {
		c.seeded++
	}
}

// insertLocked adds (or refreshes) an artifact and evicts LRU entries
// until the budget holds. Returns false if the artifact alone exceeds
// the budget and was rejected.
func (c *Cache) insertLocked(a *Artifact) bool {
	if el, ok := c.index[a.Key]; ok {
		c.used += a.Size - el.Value.(*Artifact).Size
		el.Value = a
		c.order.MoveToFront(el)
		c.evictOverBudgetLocked()
		return true
	}
	if c.budget > 0 && a.Size > c.budget {
		return false
	}
	c.index[a.Key] = c.order.PushFront(a)
	c.used += a.Size
	c.evictOverBudgetLocked()
	return true
}

func (c *Cache) evictOverBudgetLocked() {
	for c.budget > 0 && c.used > c.budget {
		el := c.order.Back()
		if el == nil {
			return
		}
		victim := el.Value.(*Artifact)
		c.order.Remove(el)
		delete(c.index, victim.Key)
		c.used -= victim.Size
		c.evictions++
	}
}

// Link connects two caches bidirectionally: artifacts stored on either
// are seeded into the other. Linking is idempotent.
func Link(a, b *Cache) {
	if a == nil || b == nil || a == b {
		return
	}
	a.addPeer(b)
	b.addPeer(a)
}

func (c *Cache) addPeer(p *Cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, q := range c.peers {
		if q == p {
			return
		}
	}
	c.peers = append(c.peers, p)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Seeded:      c.seeded,
		Entries:     len(c.index),
		UsedBytes:   c.used,
		BudgetBytes: c.budget,
	}
}
