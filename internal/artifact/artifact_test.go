package artifact

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func art(name string, size int64) *Artifact {
	return &Artifact{
		Key:         KeyFor(name, "GPU"),
		Kernel:      name,
		Kind:        "GPU",
		Size:        size,
		CompileCost: time.Second,
	}
}

func TestKeyForDistinguishesParts(t *testing.T) {
	if KeyFor("ab", "c") == KeyFor("a", "bc") {
		t.Fatal("KeyFor collides across part boundaries")
	}
	if KeyFor("mci", "GPU") != KeyFor("mci", "GPU") {
		t.Fatal("KeyFor is not deterministic")
	}
	if len(KeyFor("x")) != 16 {
		t.Fatalf("key length = %d, want 16 hex digits", len(KeyFor("x")))
	}
}

func TestCacheHitMissLRU(t *testing.T) {
	c := NewCache(100)
	a := art("a", 40)
	if got := c.Lookup(a.Key); got != nil {
		t.Fatalf("unexpected hit before store: %+v", got)
	}
	c.Store(a)
	if got := c.Lookup(a.Key); got == nil || got.Kernel != "a" {
		t.Fatalf("expected hit for %q, got %+v", a.Key, got)
	}
	// Fill to budget, then overflow: the least recently used entry goes.
	b := art("b", 40)
	c.Store(b)
	c.Lookup(a.Key) // refresh a; b is now LRU
	c.Store(art("c", 40))
	if c.Lookup(b.Key) != nil {
		t.Fatal("LRU entry b survived eviction")
	}
	if c.Lookup(a.Key) == nil {
		t.Fatal("recently used entry a was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.UsedBytes != 80 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 80 used bytes, 2 entries", st)
	}
}

func TestCacheRejectsOversizedArtifact(t *testing.T) {
	c := NewCache(10)
	c.Store(art("huge", 11))
	if got := c.Stats(); got.Entries != 0 || got.UsedBytes != 0 {
		t.Fatalf("oversized artifact was cached: %+v", got)
	}
}

// TestCacheEvictionChurn drives a working set larger than the byte
// budget through the cache: the cache must stay within budget, keep
// serving hits for the hot tail, and never lose accounting consistency.
func TestCacheEvictionChurn(t *testing.T) {
	const budget = 1000
	c := NewCache(budget)
	// 20 artifacts of 150 bytes = 3000 bytes working set, 3x the budget.
	keys := make([]Key, 20)
	for i := range keys {
		a := art(fmt.Sprintf("k%02d", i), 150)
		keys[i] = a.Key
		c.Store(a)
	}
	for round := 0; round < 50; round++ {
		for i, k := range keys {
			if c.Lookup(k) == nil {
				c.Store(art(fmt.Sprintf("k%02d", i), 150))
			}
			// The artifact just stored (or just hit) must be resident: a
			// churning cache may evict the cold tail but never the entry
			// it was asked for last.
			if c.Lookup(k) == nil {
				t.Fatalf("round %d: just-stored artifact %q already evicted", round, k)
			}
			if used := c.Stats().UsedBytes; used > budget {
				t.Fatalf("round %d: used %d bytes > budget %d", round, used, budget)
			}
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("churn produced no evictions despite working set 3x budget")
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("churn expects both hits and misses, got %+v", st)
	}
	if st.Entries != 6 { // floor(1000/150)
		t.Fatalf("entries = %d, want 6 resident at 150B each under a 1000B budget", st.Entries)
	}
}

func TestLinkPropagatesStores(t *testing.T) {
	a, b, c := NewCache(0), NewCache(0), NewCache(0)
	Link(a, b)
	Link(a, c)
	Link(a, b) // idempotent
	x := art("x", 10)
	a.Store(x)
	if b.Lookup(x.Key) == nil || c.Lookup(x.Key) == nil {
		t.Fatal("store on a did not seed linked peers")
	}
	if st := b.Stats(); st.Seeded != 1 {
		t.Fatalf("peer seeded = %d, want 1", st.Seeded)
	}
	// Seeding must not flood back and forth: storing on b reaches a
	// exactly once and stops there.
	y := art("y", 10)
	b.Store(y)
	if a.Lookup(y.Key) == nil {
		t.Fatal("store on b did not seed a")
	}
	if st := c.Stats(); st.Seeded != 1 {
		t.Fatalf("c seeded = %d: b's artifacts must not transit through a", st.Seeded)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	a, b := NewCache(500), NewCache(500)
	Link(a, b)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("k%d", (g+i)%10)
				k := KeyFor(name, "GPU")
				if a.Lookup(k) == nil {
					a.Store(art(name, 60))
				}
				b.Lookup(k)
			}
		}(g)
	}
	wg.Wait()
	if st := a.Stats(); st.UsedBytes > 500 {
		t.Fatalf("budget exceeded under concurrency: %+v", st)
	}
}
