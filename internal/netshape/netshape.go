// Package netshape models network links between KaaS clients and servers.
// The remote-invocation experiment (§5.3) runs client and server on
// different machines joined by 1 Gbps Ethernet with 0.15 ms RTT; this
// package injects that link's latency and serialization delay into the
// modeled timeline so loopback deployments measure like remote ones.
package netshape

import (
	"fmt"
	"time"

	"kaas/internal/vclock"
)

// Link describes one direction-symmetric network link.
type Link struct {
	clock vclock.Clock
	rtt   time.Duration
	// bandwidth in bytes per modeled second
	bandwidth float64
}

// NewLink creates a link with the given round-trip time and bandwidth in
// bytes per second. A nil link (see Loopback) adds no delay.
func NewLink(clock vclock.Clock, rtt time.Duration, bandwidthBps float64) (*Link, error) {
	if rtt < 0 {
		return nil, fmt.Errorf("netshape: negative rtt %v", rtt)
	}
	if bandwidthBps <= 0 {
		return nil, fmt.Errorf("netshape: bandwidth must be positive, got %v", bandwidthBps)
	}
	return &Link{clock: clock, rtt: rtt, bandwidth: bandwidthBps}, nil
}

// GigabitEthernet returns the link of the paper's remote testbed:
// 1 Gbps with 0.15 ms RTT.
func GigabitEthernet(clock vclock.Clock) *Link {
	l, err := NewLink(clock, 150*time.Microsecond, 125e6)
	if err != nil {
		// Static parameters; cannot fail.
		panic(err)
	}
	return l
}

// RDMA returns a link modeling the RDMA transport the paper's §6 proposes
// for reducing invocation overhead: 100 Gbps with ~4 µs round trips.
func RDMA(clock vclock.Clock) *Link {
	l, err := NewLink(clock, 4*time.Microsecond, 12.5e9)
	if err != nil {
		// Static parameters; cannot fail.
		panic(err)
	}
	return l
}

// TransferDelay returns the one-way delay of sending the given number of
// bytes: half the RTT plus serialization time.
func (l *Link) TransferDelay(bytes int64) time.Duration {
	if l == nil {
		return 0
	}
	ser := time.Duration(float64(bytes) / l.bandwidth * float64(time.Second))
	return l.rtt/2 + ser
}

// Transfer sleeps for the one-way transfer delay of the given size.
// It is a no-op on a nil link, so "no shaping" callers can pass nil.
func (l *Link) Transfer(bytes int64) time.Duration {
	if l == nil {
		return 0
	}
	d := l.TransferDelay(bytes)
	l.clock.Sleep(d)
	return d
}

// RTT returns the configured round-trip time (0 for nil links).
func (l *Link) RTT() time.Duration {
	if l == nil {
		return 0
	}
	return l.rtt
}
