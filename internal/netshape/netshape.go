// Package netshape models network links between KaaS clients and servers.
// The remote-invocation experiment (§5.3) runs client and server on
// different machines joined by 1 Gbps Ethernet with 0.15 ms RTT; this
// package injects that link's latency and serialization delay into the
// modeled timeline so loopback deployments measure like remote ones.
//
// Links are described by Profiles (round-trip time, bandwidth, loss),
// which compose: stacking a datacenter fabric profile on a degraded WAN
// hop yields one effective link. A Link's profile can be swapped at
// runtime with SetProfile, which is how the scenario harness
// (internal/scenario) degrades and restores a link mid-run.
package netshape

import (
	"fmt"
	"sync"
	"time"

	"kaas/internal/vclock"
)

// Profile describes one network link's characteristics. All values are
// in modeled time; see Compose for stacking several hops into one
// effective profile.
type Profile struct {
	// RTT is the round-trip time.
	RTT time.Duration
	// BandwidthBps is the link bandwidth in bytes per modeled second.
	BandwidthBps float64
	// Loss is the packet loss fraction in [0, 1). Loss is charged as a
	// deterministic expected retransmission delay — each transfer pays
	// Loss/(1-Loss) extra round trips — so a lossy link slows the
	// modeled timeline without introducing per-transfer randomness.
	// Reproducibility rules out a hidden RNG here: the same trace over
	// the same profile must always take the same modeled time.
	Loss float64
}

// Validate reports profile problems.
func (p Profile) Validate() error {
	if p.RTT < 0 {
		return fmt.Errorf("netshape: negative rtt %v", p.RTT)
	}
	if p.BandwidthBps <= 0 {
		return fmt.Errorf("netshape: bandwidth must be positive, got %v", p.BandwidthBps)
	}
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("netshape: loss must be in [0, 1), got %v", p.Loss)
	}
	return nil
}

// lossPenalty is the expected retransmission delay added to one transfer.
func (p Profile) lossPenalty() time.Duration {
	if p.Loss <= 0 {
		return 0
	}
	return time.Duration(p.Loss / (1 - p.Loss) * float64(p.RTT))
}

// Compose stacks profiles into the effective profile of the path through
// all of them: RTTs add, the narrowest hop's bandwidth wins, and losses
// combine as independent drop probabilities (1 - Π(1-lossᵢ)).
// Composing zero profiles yields a zero-RTT infinite-bandwidth path.
func Compose(profiles ...Profile) Profile {
	out := Profile{BandwidthBps: inf}
	survive := 1.0
	for _, p := range profiles {
		out.RTT += p.RTT
		if p.BandwidthBps < out.BandwidthBps {
			out.BandwidthBps = p.BandwidthBps
		}
		survive *= 1 - p.Loss
	}
	out.Loss = 1 - survive
	return out
}

// inf is the bandwidth of an unconstrained hop (1 EB/s — effectively no
// serialization delay at any realistic payload size).
const inf = 1e18

// Link describes one direction-symmetric network link. Its profile may
// be swapped at runtime (SetProfile), so harnesses can degrade a link
// mid-experiment; a nil *Link adds no delay.
type Link struct {
	clock vclock.Clock

	mu      sync.Mutex
	profile Profile
}

// NewLink creates a link with the given round-trip time and bandwidth in
// bytes per second. A nil link (see the nil-receiver behavior of
// Transfer) adds no delay.
func NewLink(clock vclock.Clock, rtt time.Duration, bandwidthBps float64) (*Link, error) {
	return NewLinkProfile(clock, Profile{RTT: rtt, BandwidthBps: bandwidthBps})
}

// NewLinkProfile creates a link from a full profile.
func NewLinkProfile(clock vclock.Clock, p Profile) (*Link, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Link{clock: clock, profile: p}, nil
}

// GigabitEthernet returns the link of the paper's remote testbed:
// 1 Gbps with 0.15 ms RTT.
func GigabitEthernet(clock vclock.Clock) *Link {
	l, err := NewLink(clock, 150*time.Microsecond, 125e6)
	if err != nil {
		// Static parameters; cannot fail.
		panic(err)
	}
	return l
}

// RDMA returns a link modeling the RDMA transport the paper's §6 proposes
// for reducing invocation overhead: 100 Gbps with ~4 µs round trips.
func RDMA(clock vclock.Clock) *Link {
	l, err := NewLink(clock, 4*time.Microsecond, 12.5e9)
	if err != nil {
		// Static parameters; cannot fail.
		panic(err)
	}
	return l
}

// Profile returns the link's current profile (zero for nil links).
func (l *Link) Profile() Profile {
	if l == nil {
		return Profile{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.profile
}

// SetProfile swaps the link's profile at runtime. In-flight transfers
// finish under the profile they started with; subsequent transfers use
// the new one. It is a no-op on nil links.
func (l *Link) SetProfile(p Profile) error {
	if l == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	l.profile = p
	l.mu.Unlock()
	return nil
}

// TransferDelay returns the one-way delay of sending the given number of
// bytes: half the RTT, serialization time, and the expected
// retransmission penalty of a lossy profile.
func (l *Link) TransferDelay(bytes int64) time.Duration {
	if l == nil {
		return 0
	}
	p := l.Profile()
	ser := time.Duration(float64(bytes) / p.BandwidthBps * float64(time.Second))
	return p.RTT/2 + ser + p.lossPenalty()
}

// Transfer sleeps for the one-way transfer delay of the given size.
// It is a no-op on a nil link, so "no shaping" callers can pass nil.
func (l *Link) Transfer(bytes int64) time.Duration {
	if l == nil {
		return 0
	}
	d := l.TransferDelay(bytes)
	l.clock.Sleep(d)
	return d
}

// RTT returns the configured round-trip time (0 for nil links).
func (l *Link) RTT() time.Duration {
	if l == nil {
		return 0
	}
	return l.Profile().RTT
}
