package netshape

import (
	"testing"
	"time"

	"kaas/internal/vclock"
)

func TestNewLinkValidation(t *testing.T) {
	clock := vclock.Scaled(1000)
	if _, err := NewLink(clock, -time.Second, 1e6); err == nil {
		t.Error("negative rtt succeeded")
	}
	if _, err := NewLink(clock, time.Millisecond, 0); err == nil {
		t.Error("zero bandwidth succeeded")
	}
}

func TestTransferDelayComputation(t *testing.T) {
	clock := vclock.Scaled(1000)
	l, err := NewLink(clock, 10*time.Millisecond, 1e6) // 1 MB/s
	if err != nil {
		t.Fatalf("NewLink: %v", err)
	}
	// 1e6 bytes at 1 MB/s = 1s serialization + 5ms half-RTT.
	got := l.TransferDelay(1e6)
	want := time.Second + 5*time.Millisecond
	if got != want {
		t.Errorf("TransferDelay = %v, want %v", got, want)
	}
	if got := l.TransferDelay(0); got != 5*time.Millisecond {
		t.Errorf("TransferDelay(0) = %v, want 5ms", got)
	}
}

func TestNilLinkIsNoOp(t *testing.T) {
	var l *Link
	if d := l.TransferDelay(1e9); d != 0 {
		t.Errorf("nil TransferDelay = %v, want 0", d)
	}
	if d := l.Transfer(1e9); d != 0 {
		t.Errorf("nil Transfer = %v, want 0", d)
	}
	if l.RTT() != 0 {
		t.Errorf("nil RTT = %v, want 0", l.RTT())
	}
}

func TestTransferSleepsModeledTime(t *testing.T) {
	clock := vclock.Scaled(1000)
	l := GigabitEthernet(clock)
	start := clock.Now()
	d := l.Transfer(125e6) // 1s at 1Gbps + 75µs
	elapsed := clock.Now().Sub(start)
	if d < time.Second {
		t.Errorf("returned delay %v, want >= 1s", d)
	}
	if elapsed < 900*time.Millisecond {
		t.Errorf("modeled sleep %v, want ~1s", elapsed)
	}
}

func TestGigabitEthernetParameters(t *testing.T) {
	l := GigabitEthernet(vclock.Scaled(1000))
	if l.RTT() != 150*time.Microsecond {
		t.Errorf("RTT = %v, want 150µs", l.RTT())
	}
}

func TestRDMAFasterThanEthernet(t *testing.T) {
	clock := vclock.Scaled(1000)
	eth := GigabitEthernet(clock)
	rdma := RDMA(clock)
	const payload = 1 << 20
	if rdma.TransferDelay(payload) >= eth.TransferDelay(payload) {
		t.Errorf("RDMA (%v) not faster than Ethernet (%v)",
			rdma.TransferDelay(payload), eth.TransferDelay(payload))
	}
	if rdma.RTT() >= eth.RTT() {
		t.Errorf("RDMA RTT %v not below Ethernet %v", rdma.RTT(), eth.RTT())
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
		ok   bool
	}{
		{"valid", Profile{RTT: time.Millisecond, BandwidthBps: 1e6}, true},
		{"zero rtt ok", Profile{BandwidthBps: 1e6}, true},
		{"negative rtt", Profile{RTT: -1, BandwidthBps: 1e6}, false},
		{"zero bandwidth", Profile{RTT: time.Millisecond}, false},
		{"negative loss", Profile{BandwidthBps: 1e6, Loss: -0.1}, false},
		{"certain loss", Profile{BandwidthBps: 1e6, Loss: 1}, false},
		{"lossy", Profile{RTT: time.Millisecond, BandwidthBps: 1e6, Loss: 0.5}, true},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestComposeStacksHops(t *testing.T) {
	lan := Profile{RTT: 100 * time.Microsecond, BandwidthBps: 125e6}
	wan := Profile{RTT: 40 * time.Millisecond, BandwidthBps: 12.5e6, Loss: 0.01}
	got := Compose(lan, wan)
	if got.RTT != 40*time.Millisecond+100*time.Microsecond {
		t.Errorf("composed RTT = %v", got.RTT)
	}
	if got.BandwidthBps != 12.5e6 {
		t.Errorf("composed bandwidth = %v, want narrowest hop", got.BandwidthBps)
	}
	if got.Loss <= 0.0099 || got.Loss >= 0.0101 {
		t.Errorf("composed loss = %v, want ~0.01", got.Loss)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("composed profile invalid: %v", err)
	}
}

func TestComposeLossIndependence(t *testing.T) {
	a := Profile{BandwidthBps: 1e6, Loss: 0.5}
	b := Profile{BandwidthBps: 1e6, Loss: 0.5}
	got := Compose(a, b).Loss
	if got < 0.7499 || got > 0.7501 {
		t.Errorf("Compose loss = %v, want 0.75 (independent drops)", got)
	}
}

func TestComposeEmptyIsUnconstrained(t *testing.T) {
	p := Compose()
	if p.RTT != 0 || p.Loss != 0 {
		t.Errorf("empty composition = %+v, want zero RTT and loss", p)
	}
	// An unconstrained path adds no measurable serialization delay.
	l, err := NewLinkProfile(vclock.Scaled(1000), p)
	if err != nil {
		t.Fatalf("NewLinkProfile: %v", err)
	}
	if d := l.TransferDelay(1 << 30); d > time.Microsecond {
		t.Errorf("unconstrained TransferDelay = %v, want ~0", d)
	}
}

func TestLossChargesRetransmissionDelay(t *testing.T) {
	clock := vclock.Scaled(1000)
	clean, err := NewLinkProfile(clock, Profile{RTT: 10 * time.Millisecond, BandwidthBps: 1e6})
	if err != nil {
		t.Fatalf("NewLinkProfile: %v", err)
	}
	lossy, err := NewLinkProfile(clock, Profile{RTT: 10 * time.Millisecond, BandwidthBps: 1e6, Loss: 0.5})
	if err != nil {
		t.Fatalf("NewLinkProfile: %v", err)
	}
	// Loss 0.5 pays one expected extra round trip per transfer.
	diff := lossy.TransferDelay(1000) - clean.TransferDelay(1000)
	if diff != 10*time.Millisecond {
		t.Errorf("loss penalty = %v, want one RTT (10ms)", diff)
	}
	// The penalty is deterministic: same call, same delay.
	if lossy.TransferDelay(1000) != lossy.TransferDelay(1000) {
		t.Error("lossy TransferDelay not deterministic")
	}
}

func TestSetProfileSwapsMidRun(t *testing.T) {
	clock := vclock.Scaled(1000)
	l := GigabitEthernet(clock)
	fast := l.TransferDelay(125e3)
	degraded := Profile{RTT: 80 * time.Millisecond, BandwidthBps: 1.25e6, Loss: 0.02}
	if err := l.SetProfile(degraded); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	if got := l.Profile(); got != degraded {
		t.Errorf("Profile() = %+v, want %+v", got, degraded)
	}
	if slow := l.TransferDelay(125e3); slow <= fast {
		t.Errorf("degraded delay %v not above clean delay %v", slow, fast)
	}
	if err := l.SetProfile(Profile{}); err == nil {
		t.Error("SetProfile accepted an invalid profile")
	}
	if got := l.Profile(); got != degraded {
		t.Errorf("invalid SetProfile mutated the link: %+v", got)
	}
}

func TestNilLinkProfileOps(t *testing.T) {
	var l *Link
	if p := l.Profile(); p != (Profile{}) {
		t.Errorf("nil Profile() = %+v", p)
	}
	if err := l.SetProfile(Profile{}); err != nil {
		t.Errorf("nil SetProfile errored: %v", err)
	}
}
