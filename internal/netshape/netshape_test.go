package netshape

import (
	"testing"
	"time"

	"kaas/internal/vclock"
)

func TestNewLinkValidation(t *testing.T) {
	clock := vclock.Scaled(1000)
	if _, err := NewLink(clock, -time.Second, 1e6); err == nil {
		t.Error("negative rtt succeeded")
	}
	if _, err := NewLink(clock, time.Millisecond, 0); err == nil {
		t.Error("zero bandwidth succeeded")
	}
}

func TestTransferDelayComputation(t *testing.T) {
	clock := vclock.Scaled(1000)
	l, err := NewLink(clock, 10*time.Millisecond, 1e6) // 1 MB/s
	if err != nil {
		t.Fatalf("NewLink: %v", err)
	}
	// 1e6 bytes at 1 MB/s = 1s serialization + 5ms half-RTT.
	got := l.TransferDelay(1e6)
	want := time.Second + 5*time.Millisecond
	if got != want {
		t.Errorf("TransferDelay = %v, want %v", got, want)
	}
	if got := l.TransferDelay(0); got != 5*time.Millisecond {
		t.Errorf("TransferDelay(0) = %v, want 5ms", got)
	}
}

func TestNilLinkIsNoOp(t *testing.T) {
	var l *Link
	if d := l.TransferDelay(1e9); d != 0 {
		t.Errorf("nil TransferDelay = %v, want 0", d)
	}
	if d := l.Transfer(1e9); d != 0 {
		t.Errorf("nil Transfer = %v, want 0", d)
	}
	if l.RTT() != 0 {
		t.Errorf("nil RTT = %v, want 0", l.RTT())
	}
}

func TestTransferSleepsModeledTime(t *testing.T) {
	clock := vclock.Scaled(1000)
	l := GigabitEthernet(clock)
	start := clock.Now()
	d := l.Transfer(125e6) // 1s at 1Gbps + 75µs
	elapsed := clock.Now().Sub(start)
	if d < time.Second {
		t.Errorf("returned delay %v, want >= 1s", d)
	}
	if elapsed < 900*time.Millisecond {
		t.Errorf("modeled sleep %v, want ~1s", elapsed)
	}
}

func TestGigabitEthernetParameters(t *testing.T) {
	l := GigabitEthernet(vclock.Scaled(1000))
	if l.RTT() != 150*time.Microsecond {
		t.Errorf("RTT = %v, want 150µs", l.RTT())
	}
}

func TestRDMAFasterThanEthernet(t *testing.T) {
	clock := vclock.Scaled(1000)
	eth := GigabitEthernet(clock)
	rdma := RDMA(clock)
	const payload = 1 << 20
	if rdma.TransferDelay(payload) >= eth.TransferDelay(payload) {
		t.Errorf("RDMA (%v) not faster than Ethernet (%v)",
			rdma.TransferDelay(payload), eth.TransferDelay(payload))
	}
	if rdma.RTT() >= eth.RTT() {
		t.Errorf("RDMA RTT %v not below Ethernet %v", rdma.RTT(), eth.RTT())
	}
}
