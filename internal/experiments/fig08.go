package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"kaas/internal/accel"
	"kaas/internal/baseline"
	"kaas/internal/core"
	"kaas/internal/energy"
	"kaas/internal/kernels"
	"kaas/internal/metrics"
	"kaas/internal/tensor"
	"kaas/internal/vclock"
	"kaas/internal/workload"
)

// fig08Sizes are the matrix dimensions of the sharing-level sweep; the
// paper's x-axis runs from 250k to 324M elements.
var fig08Sizes = []int{500, 1000, 2000, 4000, 8000, 12000, 18000}

// sharingConcurrency is the request concurrency of §5.1's sharing
// comparison: eight parallel executions, two per installed GPU.
const sharingConcurrency = 8

// sharingModels enumerates the three delivery models of Fig. 4.
var sharingModels = []string{"time", "space", "kaas"}

// sharingRun is the outcome of one 8-way concurrent run.
type sharingRun struct {
	// makespan covers first launch to last completion.
	makespan time.Duration
	// kernelMean is the mean per-task device time (copies + execution,
	// plus per-task runtime init for the baseline models, which the
	// paper's measurements attribute to kernel time).
	kernelMean time.Duration
	// joules is the testbed energy consumed during the run.
	joules float64
}

// runSharingModel performs one concurrent matrix-multiplication run under
// the given sharing model on a fresh four-GPU testbed.
func runSharingModel(o Options, model string, n int) (*sharingRun, error) {
	clock := vclock.Scaled(o.Scale)

	mode := shareSpace
	if model == "time" {
		mode = shareTime
	}
	host, err := newP100Host(clock, mode, false)
	if err != nil {
		return nil, err
	}
	defer host.Close()

	mm := kernels.NewMatMul(accel.GPU)
	var mu sync.Mutex
	var kernelSample metrics.Sample
	addKernelTime := func(d time.Duration) {
		mu.Lock()
		kernelSample.AddDuration(d)
		mu.Unlock()
	}
	var task workload.Task

	meter := energy.HostMeter(host)
	start := clock.Now()

	switch model {
	case "time", "space":
		exec, err := newBaseline(clock, host, func(c *baseline.Config) {
			c.SpreadDevices = true // two concurrent executions per GPU
		})
		if err != nil {
			return nil, err
		}
		task = func(ctx context.Context, client int) (time.Duration, error) {
			// Stagger client program launches slightly, as real process
			// starts do.
			clock.Sleep(clientLaunch + time.Duration(client)*10*time.Millisecond)
			_, rep, err := exec.Run(ctx, mm, matmulReq(n))
			if err != nil {
				return 0, err
			}
			addKernelTime(rep.Breakdown.KernelTime() + rep.Breakdown.RuntimeInit)
			return rep.Total(), nil
		}
	case "kaas":
		srv, err := newKaasServer(clock, host, func(c *core.Config) {
			c.MaxInFlightPerRunner = 2
			c.MaxRunnersPerDevice = 1
		})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		if err := srv.Register(mm); err != nil {
			return nil, err
		}
		// Warm all four runners before measuring, then reset the meter
		// and the start of the measured window.
		if _, err := workload.RunParallel(context.Background(), sharingConcurrency,
			func(ctx context.Context, _ int) (time.Duration, error) {
				_, rep, err := srv.Invoke(ctx, mm.Name(), matmulReq(500))
				if err != nil {
					return 0, err
				}
				return rep.Total(), nil
			}); err != nil {
			return nil, err
		}
		meter = energy.HostMeter(host)
		start = clock.Now()
		task = func(ctx context.Context, client int) (time.Duration, error) {
			clock.Sleep(clientLaunch + time.Duration(client)*10*time.Millisecond)
			_, rep, err := srv.Invoke(ctx, mm.Name(), matmulReq(n))
			if err != nil {
				return 0, err
			}
			if rep.Cold {
				return 0, fmt.Errorf("unexpected cold start at n=%d", n)
			}
			addKernelTime(rep.Breakdown.KernelTime())
			return rep.Total(), nil
		}
	default:
		return nil, fmt.Errorf("experiments: unknown sharing model %q", model)
	}

	if _, err := workload.RunParallel(context.Background(), sharingConcurrency, task); err != nil {
		return nil, fmt.Errorf("sharing model %s n=%d: %w", model, n, err)
	}
	mu.Lock()
	kernelMean := time.Duration(kernelSample.Mean() * float64(time.Second))
	mu.Unlock()
	return &sharingRun{
		makespan:   clock.Now().Sub(start),
		kernelMean: kernelMean,
		joules:     meter.Joules(),
	}, nil
}

// Fig08Throughput reproduces Fig. 8: achieved GFLOP/s of eight concurrent
// matrix multiplications under time sharing, space sharing (MPS), and
// KaaS, across task granularities.
func Fig08Throughput(o Options) (*Table, error) {
	o = o.withDefaults()
	sizes := sweep(o, fig08Sizes)
	table := NewTable("8", "Throughput by sharing level (8 concurrent tasks)",
		"elements", "model", "gflops")
	for _, n := range sizes {
		flop := sharingConcurrency * tensor.MatMulFLOPs(n, n, n)
		for _, model := range sharingModels {
			run, err := runSharingModel(o, model, n)
			if err != nil {
				return nil, err
			}
			gflops := flop / run.makespan.Seconds() / 1e9
			table.AddRow(fmt.Sprintf("%d", n*n), model, fmt.Sprintf("%.2f", gflops))
			table.Set(fmt.Sprintf("%s/%d/gflops", model, n), gflops)
		}
	}
	table.Note("KaaS leads at small sizes and converges with space sharing at large sizes; time sharing stays lowest")
	return table, nil
}

// Fig09Slowdown reproduces Fig. 9: per-task kernel-time slowdown of the
// 8-way concurrent runs relative to an isolated KaaS execution at the
// same granularity.
func Fig09Slowdown(o Options) (*Table, error) {
	o = o.withDefaults()
	sizes := sweep(o, fig08Sizes)
	table := NewTable("9", "Kernel-time slowdown vs isolated KaaS execution (8 concurrent tasks)",
		"elements", "model", "slowdown")

	for _, n := range sizes {
		isolated, err := isolatedKaasKernelTime(o, n)
		if err != nil {
			return nil, err
		}
		for _, model := range sharingModels {
			run, err := runSharingModel(o, model, n)
			if err != nil {
				return nil, err
			}
			slowdown := float64(run.kernelMean) / float64(isolated)
			table.AddRow(fmt.Sprintf("%d", n*n), model, fmt.Sprintf("%.2f", slowdown))
			table.Set(fmt.Sprintf("%s/%d/slowdown", model, n), slowdown)
		}
	}
	table.Note("KaaS multiplexes small tasks without slowdown; baselines pay per-task init; KaaS and MPS converge at large sizes")
	return table, nil
}

// isolatedKaasKernelTime measures one warm KaaS execution with no
// concurrent load.
func isolatedKaasKernelTime(o Options, n int) (time.Duration, error) {
	clock := vclock.Scaled(o.Scale)
	host, err := newP100Host(clock, shareSpace, false)
	if err != nil {
		return 0, err
	}
	defer host.Close()
	srv, err := newKaasServer(clock, host, nil)
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	mm := kernels.NewMatMul(accel.GPU)
	if err := srv.Register(mm); err != nil {
		return 0, err
	}
	if _, _, err := srv.Invoke(context.Background(), mm.Name(), matmulReq(n)); err != nil {
		return 0, err
	}
	_, rep, err := srv.Invoke(context.Background(), mm.Name(), matmulReq(n))
	if err != nil {
		return 0, err
	}
	return rep.Breakdown.KernelTime(), nil
}

// Fig10Energy reproduces Fig. 10: performance efficiency (FLOPS/W) of the
// three GPU sharing models and a CPU-only execution across granularities.
func Fig10Energy(o Options) (*Table, error) {
	o = o.withDefaults()
	sizes := sweep(o, []int{500, 1000, 2000, 4000, 8000, 12000})
	table := NewTable("10", "Performance efficiency by sharing level (8 concurrent tasks)",
		"elements", "model", "flops_per_watt")

	for _, n := range sizes {
		flop := sharingConcurrency * tensor.MatMulFLOPs(n, n, n)
		for _, model := range sharingModels {
			run, err := runSharingModel(o, model, n)
			if err != nil {
				return nil, err
			}
			eff := energy.Efficiency(flop, run.joules)
			table.AddRow(fmt.Sprintf("%d", n*n), model, energy.Format(eff))
			table.Set(fmt.Sprintf("%s/%d/eff", model, n), eff)
		}

		eff, err := cpuEnergyEfficiency(o, n)
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprintf("%d", n*n), "cpu", energy.Format(eff))
		table.Set(fmt.Sprintf("cpu/%d/eff", n), eff)
	}
	table.Note("KaaS is the most efficient model and the only one beating CPU-only at the smallest sizes; GPU models converge at large sizes")
	return table, nil
}

// cpuEnergyEfficiency runs the 8-way concurrent workload on the host CPU
// only (GPU idle power excluded, as in the paper).
func cpuEnergyEfficiency(o Options, n int) (float64, error) {
	clock := vclock.Scaled(o.Scale)
	host, err := accel.NewHost(clock, "cpu-only", accel.XeonE52698)
	if err != nil {
		return 0, err
	}
	defer host.Close()
	exec, err := newBaseline(clock, host, nil)
	if err != nil {
		return 0, err
	}
	mmCPU := kernels.NewMatMul(accel.CPU)
	meter := energy.NewMeter(host.CPU())
	_, err = workload.RunParallel(context.Background(), sharingConcurrency,
		func(ctx context.Context, client int) (time.Duration, error) {
			clock.Sleep(clientLaunch + time.Duration(client)*10*time.Millisecond)
			_, rep, err := exec.Run(ctx, mmCPU, matmulReq(n))
			if err != nil {
				return 0, err
			}
			return rep.Total(), nil
		})
	if err != nil {
		return 0, fmt.Errorf("cpu model n=%d: %w", n, err)
	}
	flop := sharingConcurrency * tensor.MatMulFLOPs(n, n, n)
	return energy.Efficiency(flop, meter.Joules()), nil
}
