package experiments

import (
	"context"
	"fmt"
	"time"

	"kaas/internal/accel"
	"kaas/internal/kernels"
	"kaas/internal/metrics"
	"kaas/internal/vclock"
)

// fig07Sizes are the matrix dimensions of the warm-overhead sweep; the
// paper's x-axis runs to 400M elements (20,000²).
var fig07Sizes = []int{500, 1000, 2000, 5000, 10000, 15000, 20000}

// Fig07WarmOverhead reproduces Fig. 7: the overhead/computation split of
// the matrix multiplication task across input sizes, comparing exclusive
// GPU use with warm KaaS invocations. Input generation time is excluded,
// as in the paper.
func Fig07WarmOverhead(o Options) (*Table, error) {
	o = o.withDefaults()
	clock := vclock.Scaled(o.Scale)
	sizes := sweep(o, fig07Sizes)

	exclHost, err := newP100Host(clock, shareTime, false)
	if err != nil {
		return nil, err
	}
	defer exclHost.Close()
	excl, err := newBaseline(clock, exclHost, nil)
	if err != nil {
		return nil, err
	}

	kaasHost, err := newP100Host(clock, shareSpace, false)
	if err != nil {
		return nil, err
	}
	defer kaasHost.Close()
	srv, err := newKaasServer(clock, kaasHost, nil)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	mm := kernels.NewMatMul(accel.GPU)
	if err := srv.Register(mm); err != nil {
		return nil, err
	}
	// Warm the runner so the sweep measures warm starts only.
	if _, _, err := srv.Invoke(context.Background(), mm.Name(), matmulReq(sizes[0])); err != nil {
		return nil, err
	}

	table := NewTable("7", "Warm overhead vs computation by task granularity",
		"elements", "model", "computation_s", "overhead_s", "total_s")

	measure := func(run func() (*metrics.Breakdown, error)) (comp, over time.Duration, err error) {
		var compSample, overSample metrics.Sample
		for s := 0; s < o.Samples; s++ {
			b, err := run()
			if err != nil {
				return 0, 0, err
			}
			// The baseline attributes per-execution CUDA init to kernel
			// time ("computation"), exactly as the paper observes its
			// 406-419 ms reduction inside the computation series.
			comp := b.KernelTime() + b.RuntimeInit + b.Setup
			over := b.Total() + clientLaunch - comp
			compSample.AddDuration(comp)
			overSample.AddDuration(over)
		}
		return time.Duration(compSample.Mean() * float64(time.Second)),
			time.Duration(overSample.Mean() * float64(time.Second)), nil
	}

	for _, n := range sizes {
		elements := fmt.Sprintf("%d", n*n)

		comp, over, err := measure(func() (*metrics.Breakdown, error) {
			_, rep, err := excl.Run(context.Background(), mm, matmulReq(n))
			if err != nil {
				return nil, fmt.Errorf("fig7 exclusive n=%d: %w", n, err)
			}
			return &rep.Breakdown, nil
		})
		if err != nil {
			return nil, err
		}
		table.AddRow(elements, "exclusive", seconds(comp), seconds(over), seconds(comp+over))
		table.Set(fmt.Sprintf("exclusive/%d/overhead", n), over.Seconds())
		table.Set(fmt.Sprintf("exclusive/%d/computation", n), comp.Seconds())

		comp, over, err = measure(func() (*metrics.Breakdown, error) {
			_, rep, err := srv.Invoke(context.Background(), mm.Name(), matmulReq(n))
			if err != nil {
				return nil, fmt.Errorf("fig7 kaas n=%d: %w", n, err)
			}
			if rep.Cold {
				return nil, fmt.Errorf("fig7 kaas n=%d: unexpected cold start", n)
			}
			return &rep.Breakdown, nil
		})
		if err != nil {
			return nil, err
		}
		table.AddRow(elements, "kaas", seconds(comp), seconds(over), seconds(comp+over))
		table.Set(fmt.Sprintf("kaas/%d/overhead", n), over.Seconds())
		table.Set(fmt.Sprintf("kaas/%d/computation", n), comp.Seconds())
	}

	small := sizes[0]
	exclOver, _ := table.Get(fmt.Sprintf("exclusive/%d/overhead", small))
	kaasOver, _ := table.Get(fmt.Sprintf("kaas/%d/overhead", small))
	table.Note("overhead at %d²: exclusive %.0f ms vs KaaS %.0f ms (paper: 689 ms vs 123 ms)",
		small, exclOver*1000, kaasOver*1000)
	return table, nil
}
