package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"kaas/internal/baseline"
	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/metrics"
	"kaas/internal/vclock"
	"kaas/internal/workload"
)

// fig16Sizes is the conv2d input sweep of §5.6.3.
var fig16Sizes = []int{1000, 2000, 3000, 4000, 5000, 6000, 7000}

// fig16Parallel is the number of simultaneous kernel instances.
const fig16Parallel = 4

// fig16Point holds one (model, N) measurement.
type fig16Point struct {
	tpuTime  time.Duration
	taskTime time.Duration
}

// Fig16TPUKernelTime reproduces Fig. 16a: the TPU time (initialization +
// compile + execution on the device) of four parallel 2D convolutions
// under exclusive, shared (one chip each), and KaaS use of a TPU v3-8.
func Fig16TPUKernelTime(o Options) (*Table, error) {
	table := NewTable("16a", "TPU time of four parallel conv2d instances",
		"n", "model", "tpu_time_s")
	return fig16(o, table, func(p fig16Point) time.Duration { return p.tpuTime }, "tpu")
}

// Fig16TPUTotalTime reproduces Fig. 16b: the total task completion time of
// the same runs, which adds TensorFlow import and request handling.
func Fig16TPUTotalTime(o Options) (*Table, error) {
	table := NewTable("16b", "Total task completion time of four parallel conv2d instances",
		"n", "model", "total_s")
	return fig16(o, table, func(p fig16Point) time.Duration { return p.taskTime }, "total")
}

// fig16 runs the TPU sweep and projects one metric into the table.
func fig16(o Options, table *Table, metric func(fig16Point) time.Duration, key string) (*Table, error) {
	o = o.withDefaults()
	sizes := sweep(o, fig16Sizes)

	for _, n := range sizes {
		for _, model := range []string{"exclusive", "shared", "kaas"} {
			p, err := fig16Run(o, model, n)
			if err != nil {
				return nil, fmt.Errorf("fig16 %s n=%d: %w", model, n, err)
			}
			v := metric(*p)
			table.AddRow(fmt.Sprintf("%d", n), model, seconds(v))
			table.Set(fmt.Sprintf("%s/%d/%s", model, n, key), v.Seconds())
		}
	}
	table.Note("exclusive use blocks the whole board per kernel; shared pins one chip per instance; KaaS serves from warm, pre-compiled runners (paper: 95.9-98.6%% total-time reduction)")
	return table, nil
}

// fig16Run measures the mean TPU time and task time of four parallel
// conv2d instances under one usage model.
func fig16Run(o Options, model string, n int) (*fig16Point, error) {
	clock := vclock.Scaled(o.Scale)
	req := &kernels.Request{Params: kernels.Params{"n": float64(n)}}
	conv := kernels.NewConv2D()

	var mu sync.Mutex
	var tpuSample, taskSample metrics.Sample
	record := func(b *metrics.Breakdown, total time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		tpuSample.AddDuration(b.RuntimeInit + b.Setup + b.KernelTime())
		taskSample.AddDuration(total)
	}

	switch model {
	case "exclusive":
		host, err := newTPUHost(clock, true)
		if err != nil {
			return nil, err
		}
		defer host.Close()
		exec, err := newBaseline(clock, host, nil)
		if err != nil {
			return nil, err
		}
		if _, err := workload.RunParallel(context.Background(), fig16Parallel,
			func(ctx context.Context, client int) (time.Duration, error) {
				clock.Sleep(clientLaunch + time.Duration(client)*10*time.Millisecond)
				_, rep, err := exec.Run(ctx, conv, req)
				if err != nil {
					return 0, err
				}
				// The queue time behind other exclusive kernels is part
				// of the task, not of the TPU time.
				record(&rep.Breakdown, rep.Total()+clientLaunch)
				return rep.Total(), nil
			}); err != nil {
			return nil, err
		}
	case "shared":
		host, err := newTPUHost(clock, false)
		if err != nil {
			return nil, err
		}
		defer host.Close()
		exec, err := newBaseline(clock, host, func(c *baseline.Config) {
			c.SpreadDevices = true // one instance per chip
		})
		if err != nil {
			return nil, err
		}
		if _, err := workload.RunParallel(context.Background(), fig16Parallel,
			func(ctx context.Context, client int) (time.Duration, error) {
				clock.Sleep(clientLaunch + time.Duration(client)*10*time.Millisecond)
				_, rep, err := exec.Run(ctx, conv, req)
				if err != nil {
					return 0, err
				}
				record(&rep.Breakdown, rep.Total()+clientLaunch)
				return rep.Total(), nil
			}); err != nil {
			return nil, err
		}
	case "kaas":
		host, err := newTPUHost(clock, false)
		if err != nil {
			return nil, err
		}
		defer host.Close()
		srv, err := newKaasServer(clock, host, func(c *core.Config) {
			c.MaxInFlightPerRunner = 1
			c.MaxRunnersPerDevice = 1
		})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		if err := srv.Register(conv); err != nil {
			return nil, err
		}
		// Warm one runner per chip.
		if _, err := workload.RunParallel(context.Background(), fig16Parallel,
			func(ctx context.Context, _ int) (time.Duration, error) {
				_, rep, err := srv.Invoke(ctx, conv.Name(), req)
				if err != nil {
					return 0, err
				}
				return rep.Total(), nil
			}); err != nil {
			return nil, err
		}
		if _, err := workload.RunParallel(context.Background(), fig16Parallel,
			func(ctx context.Context, client int) (time.Duration, error) {
				clock.Sleep(clientLaunch + time.Duration(client)*10*time.Millisecond)
				_, rep, err := srv.Invoke(ctx, conv.Name(), req)
				if err != nil {
					return 0, err
				}
				if rep.Cold {
					return 0, fmt.Errorf("unexpected cold start")
				}
				record(&rep.Breakdown, rep.Total()+clientLaunch)
				return rep.Total(), nil
			}); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("experiments: unknown TPU model %q", model)
	}

	return &fig16Point{
		tpuTime:  time.Duration(tpuSample.Mean() * float64(time.Second)),
		taskTime: time.Duration(taskSample.Mean() * float64(time.Second)),
	}, nil
}
