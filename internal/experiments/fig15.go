package experiments

import (
	"context"
	"fmt"
	"time"

	"kaas/internal/kernels"
	"kaas/internal/metrics"
	"kaas/internal/vclock"
)

// Fig15FPGA reproduces Fig. 15: total completion time of the Histogram
// and Bitmap Conversion kernels on the Alveo U250 FPGA, comparing direct
// access from a fresh program (exclusive baseline, PyLog re-initialized
// per task) against KaaS (FPGA runtime and PyLog kept initialized). FPGA
// IP configuration (tens of seconds) is excluded in both, as in the
// paper.
func Fig15FPGA(o Options) (*Table, error) {
	o = o.withDefaults()
	clock := vclock.Scaled(o.Scale)

	baseHost, err := newFPGAHost(clock)
	if err != nil {
		return nil, err
	}
	defer baseHost.Close()
	base, err := newBaseline(clock, baseHost, nil)
	if err != nil {
		return nil, err
	}

	table := NewTable("15", "FPGA kernels: exclusive baseline vs KaaS",
		"kernel", "baseline_s", "kaas_s", "reduction")

	for _, k := range []kernels.Kernel{kernels.NewHistogram(), kernels.NewBitmapConversion()} {
		// The single-slot FPGA fabric can hold one warm runner at a
		// time, so each kernel gets a fresh KaaS deployment (the paper
		// likewise benchmarks the two kernels separately).
		kaasHost, err := newFPGAHost(clock)
		if err != nil {
			return nil, err
		}
		defer kaasHost.Close()
		srv, err := newKaasServer(clock, kaasHost, nil)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		if err := srv.Register(k); err != nil {
			return nil, err
		}
		req := &kernels.Request{Params: kernels.Params{}}
		// Warm the KaaS runner.
		if _, _, err := srv.Invoke(context.Background(), k.Name(), req); err != nil {
			return nil, fmt.Errorf("fig15 warmup %s: %w", k.Name(), err)
		}

		var baseSample, kaasSample metrics.Sample
		for s := 0; s < o.Samples; s++ {
			_, rep, err := base.Run(context.Background(), k, req)
			if err != nil {
				return nil, fmt.Errorf("fig15 baseline %s: %w", k.Name(), err)
			}
			baseSample.AddDuration(rep.Total() + clientLaunch)

			_, kaasRep, err := srv.Invoke(context.Background(), k.Name(), req)
			if err != nil {
				return nil, fmt.Errorf("fig15 kaas %s: %w", k.Name(), err)
			}
			kaasSample.AddDuration(kaasRep.Total() + clientLaunch)
		}
		baseMean := time.Duration(baseSample.Mean() * float64(time.Second))
		kaasMean := time.Duration(kaasSample.Mean() * float64(time.Second))
		red := reduction(baseMean, kaasMean)
		table.AddRow(k.Name(), seconds(baseMean), seconds(kaasMean), pct(red))
		table.Set(k.Name()+"/baseline", baseMean.Seconds())
		table.Set(k.Name()+"/kaas", kaasMean.Seconds())
		table.Set(k.Name()+"/reduction", red)
	}
	table.Note("paper reports 68.5%% (histogram) and 74.9%% (bitmap) reductions; hand-tuned HLS kernels would finish in 80-100 ms")
	return table, nil
}
