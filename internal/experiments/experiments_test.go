package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// quickOpts runs experiments at reduced sweeps for tests.
func quickOpts() Options {
	return Options{Quick: true, Samples: 2, Scale: 100}
}

// get fetches a raw value or fails the test.
func get(t *testing.T, table *Table, key string) float64 {
	t.Helper()
	v, err := table.MustGet(key)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRegistryCompleteAndResolvable(t *testing.T) {
	reg := Registry()
	want := []string{"2", "6a", "6b", "7", "8", "9", "10", "11", "12a", "12b", "13", "14", "15", "16a", "16b", "17"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %q, want %q", i, reg[i].ID, id)
		}
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%q): %v", id, err)
		}
	}
	if _, err := ByID("99"); err == nil {
		t.Error("ByID(99) succeeded")
	}
}

func TestTableFormatting(t *testing.T) {
	table := NewTable("x", "demo", "a", "b")
	table.AddRow("1", "2")
	table.Note("hello %d", 42)
	table.Set("k", 3)
	out := table.String()
	for _, want := range []string{"Figure x: demo", "a", "hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if v, ok := table.Get("k"); !ok || v != 3 {
		t.Errorf("Get(k) = %v, %v", v, ok)
	}
	if _, err := table.MustGet("missing"); err == nil {
		t.Error("MustGet(missing) succeeded")
	}
}

// TestFig02Shape: the naive accelerated workflow must be slower than
// CPU-only, with initialization dominating the GPU stage.
func TestFig02Shape(t *testing.T) {
	table, err := Fig02MotivatingWorkflow(quickOpts())
	if err != nil {
		t.Fatalf("Fig02: %v", err)
	}
	accel := get(t, table, "accelerator/workflow/total")
	cpu := get(t, table, "cpu-only/workflow/total")
	if accel <= cpu {
		t.Errorf("accelerated workflow (%.2fs) not slower than CPU-only (%.2fs)", accel, cpu)
	}
	gpuInitShare := get(t, table, "accelerator/inference/init_share")
	if gpuInitShare < 0.8 {
		t.Errorf("GPU stage init share = %.2f, want >= 0.8 (paper: 98.3%%)", gpuInitShare)
	}
	fpgaKernelShare := get(t, table, "accelerator/bitmap/kernel_share")
	if fpgaKernelShare < 0.05 || fpgaKernelShare > 0.95 {
		t.Errorf("FPGA kernel share = %.2f, want a visible fraction", fpgaKernelShare)
	}
}

// TestFig06Shape: KaaS cold start is cheaper than exclusive execution and
// warm invocations are far cheaper still.
func TestFig06Shape(t *testing.T) {
	for _, run := range []struct {
		name string
		fn   Runner
		// minimum warm improvement vs exclusive
		minWarmReduction float64
	}{
		{"small", Fig06ColdWarmSmall, 0.70},
		{"large", Fig06ColdWarmLarge, 0.20},
	} {
		t.Run(run.name, func(t *testing.T) {
			table, err := run.fn(quickOpts())
			if err != nil {
				t.Fatalf("Fig06: %v", err)
			}
			excl := get(t, table, "exclusive/mean")
			cold := get(t, table, "kaas/cold")
			warm := get(t, table, "kaas/warm_mean")
			if cold >= excl {
				t.Errorf("KaaS cold (%.2fs) not cheaper than exclusive (%.2fs)", cold, excl)
			}
			if warm >= cold {
				t.Errorf("warm (%.2fs) not cheaper than cold (%.2fs)", warm, cold)
			}
			if r := 1 - warm/excl; r < run.minWarmReduction {
				t.Errorf("warm reduction = %.2f, want >= %.2f", r, run.minWarmReduction)
			}
		})
	}
}

// TestFig07Shape: KaaS slashes overhead at small sizes; overheads converge
// relatively at the largest size.
func TestFig07Shape(t *testing.T) {
	table, err := Fig07WarmOverhead(quickOpts())
	if err != nil {
		t.Fatalf("Fig07: %v", err)
	}
	exclSmall := get(t, table, "exclusive/500/overhead")
	kaasSmall := get(t, table, "kaas/500/overhead")
	if kaasSmall >= exclSmall/3 {
		t.Errorf("small-task overhead: kaas %.3fs vs exclusive %.3fs, want >= 3x reduction",
			kaasSmall, exclSmall)
	}
	exclLargeComp := get(t, table, "exclusive/20000/computation")
	exclLargeOver := get(t, table, "exclusive/20000/overhead")
	if exclLargeOver > exclLargeComp {
		t.Errorf("at 20000² exclusive overhead (%.2fs) exceeds computation (%.2fs): overheads should be amortized",
			exclLargeOver, exclLargeComp)
	}
}

// TestFig08Shape: KaaS throughput leads at small sizes; KaaS and MPS
// converge at large sizes while time sharing stays lowest.
func TestFig08Shape(t *testing.T) {
	table, err := Fig08Throughput(quickOpts())
	if err != nil {
		t.Fatalf("Fig08: %v", err)
	}
	small, large := 500, 18000
	kaasSmall := get(t, table, keyf("kaas/%d/gflops", small))
	spaceSmall := get(t, table, keyf("space/%d/gflops", small))
	timeSmall := get(t, table, keyf("time/%d/gflops", small))
	if kaasSmall <= spaceSmall || spaceSmall <= timeSmall {
		t.Errorf("small-size throughput ordering wrong: kaas=%.2f space=%.2f time=%.2f",
			kaasSmall, spaceSmall, timeSmall)
	}
	kaasLarge := get(t, table, keyf("kaas/%d/gflops", large))
	spaceLarge := get(t, table, keyf("space/%d/gflops", large))
	timeLarge := get(t, table, keyf("time/%d/gflops", large))
	ratio := kaasLarge / spaceLarge
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("large-size kaas/space throughput ratio = %.2f, want convergence (~1)", ratio)
	}
	// Time and space sharing converge at large sizes; allow a little
	// measurement noise in the comparison.
	if timeLarge >= 1.05*spaceLarge {
		t.Errorf("time sharing (%.2f) should stay at or below space sharing (%.2f) at large sizes",
			timeLarge, spaceLarge)
	}
}

// TestFig09Shape: at small sizes the baselines' per-task init shows up as
// kernel-time slowdown while KaaS stays near 1; at large sizes KaaS and
// MPS converge near the 2x contention bound and time sharing runs alone.
func TestFig09Shape(t *testing.T) {
	table, err := Fig09Slowdown(quickOpts())
	if err != nil {
		t.Fatalf("Fig09: %v", err)
	}
	small, large := 500, 18000
	kaasSmall := get(t, table, keyf("kaas/%d/slowdown", small))
	spaceSmall := get(t, table, keyf("space/%d/slowdown", small))
	if kaasSmall >= spaceSmall {
		t.Errorf("small-size slowdown: kaas %.2f should be below space %.2f", kaasSmall, spaceSmall)
	}
	kaasLarge := get(t, table, keyf("kaas/%d/slowdown", large))
	spaceLarge := get(t, table, keyf("space/%d/slowdown", large))
	timeLarge := get(t, table, keyf("time/%d/slowdown", large))
	if kaasLarge < 1.3 || spaceLarge < 1.3 {
		t.Errorf("large-size contention missing: kaas=%.2f space=%.2f, want ~2", kaasLarge, spaceLarge)
	}
	if timeLarge > 1.4 {
		t.Errorf("time sharing large slowdown = %.2f, want ~1 (runs alone)", timeLarge)
	}
}

// TestFig10Shape: KaaS is the most efficient model at the smallest size
// and the only GPU model beating the CPU there; GPU models converge and
// beat the CPU at large sizes.
func TestFig10Shape(t *testing.T) {
	table, err := Fig10Energy(quickOpts())
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	small, large := 500, 12000
	kaas := get(t, table, keyf("kaas/%d/eff", small))
	space := get(t, table, keyf("space/%d/eff", small))
	timeEff := get(t, table, keyf("time/%d/eff", small))
	cpu := get(t, table, keyf("cpu/%d/eff", small))
	if kaas <= space || kaas <= timeEff {
		t.Errorf("small-size efficiency: kaas %.3g should lead (space %.3g, time %.3g)", kaas, space, timeEff)
	}
	if kaas <= cpu {
		t.Errorf("small-size: kaas (%.3g) should beat CPU (%.3g)", kaas, cpu)
	}
	if timeEff >= cpu {
		t.Errorf("small-size: time sharing (%.3g) should lose to CPU (%.3g)", timeEff, cpu)
	}
	kaasL := get(t, table, keyf("kaas/%d/eff", large))
	cpuL := get(t, table, keyf("cpu/%d/eff", large))
	if kaasL <= cpuL {
		t.Errorf("large-size: GPU (%.3g) should beat CPU (%.3g)", kaasL, cpuL)
	}
}

// TestFig11Shape: remote GPU invocation beats local CPU execution at the
// largest size; in-band and out-of-band local transfers are close; remote
// adds delay over local.
func TestFig11Shape(t *testing.T) {
	table, err := Fig11Remote(quickOpts())
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	large := 4096
	cpu := get(t, table, keyf("cpu/%d/total", large))
	remote := get(t, table, keyf("remote/%d/total", large))
	local := get(t, table, keyf("local-inband/%d/total", large))
	oob := get(t, table, keyf("local-oob/%d/total", large))
	if cpu <= 2*remote {
		t.Errorf("large-size CPU (%.2fs) should be much slower than remote GPU (%.2fs)", cpu, remote)
	}
	// The network delay is small next to the kernel time at quick-sweep
	// sizes, so allow a little measurement noise in the comparison.
	if remote < 0.95*local {
		t.Errorf("remote (%.2fs) should cost at least as much as local in-band (%.2fs)", remote, local)
	}
	ratio := oob / local
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("out-of-band/in-band ratio = %.2f, want near 1", ratio)
	}
}

// TestFig12Shape: near-linear strong scaling for warm runs and a roughly
// constant cold-start offset.
func TestFig12Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("scaling ratios need wall-clock fidelity the race detector removes")
	}
	// One retry absorbs occasional single-core scheduler noise.
	var lastErr string
	for attempt := 0; attempt < 2; attempt++ {
		table, err := Fig12StrongScaling(quickOpts())
		if err != nil {
			t.Fatalf("Fig12a: %v", err)
		}
		warm1 := get(t, table, "warm/1")
		warm4 := get(t, table, "warm/4")
		speedup := warm1 / warm4
		cold1 := get(t, table, "cold/1")
		cold4 := get(t, table, "cold/4")
		off1 := cold1 - warm1
		off4 := cold4 - warm4
		lastErr = ""
		if speedup < 2.5 || speedup > 6 {
			lastErr = fmt.Sprintf("4-GPU strong-scaling speedup = %.2f, want near 4", speedup)
		} else if off1 < 0.3 || off4 < 0.3 {
			lastErr = fmt.Sprintf("cold offsets %.2fs/%.2fs, want a visible constant init offset", off1, off4)
		}
		if lastErr == "" {
			return
		}
	}
	t.Error(lastErr)
}

// TestFig12WeakShape: weak scaling keeps completion time roughly flat.
func TestFig12WeakShape(t *testing.T) {
	if raceEnabled {
		t.Skip("scaling ratios need wall-clock fidelity the race detector removes")
	}
	var lastErr string
	for attempt := 0; attempt < 2; attempt++ {
		table, err := Fig12WeakScaling(quickOpts())
		if err != nil {
			t.Fatalf("Fig12b: %v", err)
		}
		warm1 := get(t, table, "warm/1")
		warm4 := get(t, table, "warm/4")
		ratio := warm4 / warm1
		lastErr = ""
		if ratio < 0.65 || ratio > 1.6 {
			lastErr = fmt.Sprintf("weak-scaling 4-GPU/1-GPU time ratio = %.2f, want ~1", ratio)
		}
		if lastErr == "" {
			return
		}
	}
	t.Error(lastErr)
}

// TestFig13Shape: runners scale out with clients but stay at or below the
// device count, and tasks keep completing.
func TestFig13Shape(t *testing.T) {
	table, err := Fig13Autoscaling(quickOpts())
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	peak := get(t, table, "peak_runners")
	if peak < 2 {
		t.Errorf("peak runners = %.0f, want >= 2 (scale-out)", peak)
	}
	if peak > 8 {
		t.Errorf("peak runners = %.0f, want <= 8 (one per GPU)", peak)
	}
	if got := get(t, table, "completions"); got < 20 {
		t.Errorf("completions = %.0f, want a steady stream", got)
	}
}

// TestFig14Shape: KaaS reduces completion time substantially at small
// granularity for every kernel; GA at its largest generation count loses
// the advantage (the paper's anomaly).
func TestFig14Shape(t *testing.T) {
	table, err := Fig14GPUKernels(quickOpts())
	if err != nil {
		t.Fatalf("Fig14: %v", err)
	}
	smallest := map[string]int{
		"dtw": 100, "ga": 64, "gnn": 256, "mci": 4096, "matmul": 1024, "qc": 4096,
	}
	for kernel, v := range smallest {
		red := get(t, table, keyf("%s/%d/reduction", kernel, v))
		if red < 0.5 {
			t.Errorf("%s small-granularity reduction = %.2f, want >= 0.5", kernel, red)
		}
	}
	gaLarge := get(t, table, "ga/4096/reduction")
	if gaLarge > 0.05 {
		t.Errorf("GA large-granularity reduction = %.2f, want <= 0.05 (paper: -5.8%%)", gaLarge)
	}
	mmLarge := get(t, table, "matmul/16384/reduction")
	if mmLarge <= gaLarge {
		t.Errorf("matmul large reduction (%.2f) should exceed GA's (%.2f)", mmLarge, gaLarge)
	}
}

// TestFig15Shape: both FPGA kernels see the paper's large reductions.
func TestFig15Shape(t *testing.T) {
	table, err := Fig15FPGA(quickOpts())
	if err != nil {
		t.Fatalf("Fig15: %v", err)
	}
	for _, kernel := range []string{"histogram", "bitmap"} {
		red := get(t, table, kernel+"/reduction")
		if red < 0.5 || red > 0.9 {
			t.Errorf("%s reduction = %.2f, want in [0.5, 0.9] (paper: 68.5%%/74.9%%)", kernel, red)
		}
	}
}

// TestFig16Shape: KaaS removes TPU management from the critical path; the
// exclusive model's whole-board kernels beat shared per-chip kernels.
func TestFig16Shape(t *testing.T) {
	tableA, err := Fig16TPUKernelTime(quickOpts())
	if err != nil {
		t.Fatalf("Fig16a: %v", err)
	}
	n := 7000
	exclTPU := get(t, tableA, keyf("exclusive/%d/tpu", n))
	sharedTPU := get(t, tableA, keyf("shared/%d/tpu", n))
	kaasTPU := get(t, tableA, keyf("kaas/%d/tpu", n))
	if kaasTPU >= exclTPU*0.35 {
		t.Errorf("KaaS TPU time %.2fs vs exclusive %.2fs, want >= 65%% reduction (paper: 81.3-99.6%%)",
			kaasTPU, exclTPU)
	}
	if exclTPU >= sharedTPU {
		t.Errorf("exclusive TPU time (%.2fs) should beat shared (%.2fs): whole board per kernel",
			exclTPU, sharedTPU)
	}

	tableB, err := Fig16TPUTotalTime(quickOpts())
	if err != nil {
		t.Fatalf("Fig16b: %v", err)
	}
	exclTotal := get(t, tableB, keyf("exclusive/%d/total", n))
	kaasTotal := get(t, tableB, keyf("kaas/%d/total", n))
	if red := 1 - kaasTotal/exclTotal; red < 0.8 {
		t.Errorf("total-time reduction = %.2f, want >= 0.8 (paper: 95.9-98.6%%)", red)
	}
}

// TestFig17Shape: every backend sees a reduction in the paper's band.
func TestFig17Shape(t *testing.T) {
	var lastErr string
	for attempt := 0; attempt < 2; attempt++ {
		table, err := Fig17QPU(quickOpts())
		if err != nil {
			t.Fatalf("Fig17: %v", err)
		}
		lastErr = ""
		for _, backend := range []string{"qasm", "mps", "statevector", "falcon-r5.11h", "falcon-r4t"} {
			red := get(t, table, backend+"/reduction")
			if red < 0.15 || red > 0.55 {
				lastErr = fmt.Sprintf("%s reduction = %.2f, want in [0.15, 0.55] (paper: 27-35%%)", backend, red)
			}
		}
		// The Falcon r4T shows the smallest benefit, as in the paper. Its
		// expected margin below the simulators is a few percentage
		// points, so allow timer-jitter slack.
		r4t := get(t, table, "falcon-r4t/reduction")
		qasm := get(t, table, "qasm/reduction")
		if r4t >= qasm+0.05 {
			lastErr = fmt.Sprintf("r4t reduction (%.2f) should be below qasm's (%.2f)", r4t, qasm)
		}
		if lastErr == "" {
			return
		}
	}
	t.Error(lastErr)
}

// keyf formats a Values key.
func keyf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
