//go:build race

package experiments

// raceEnabled reports whether the race detector is active. Its 5-20x wall
// slowdown breaks the scaled-clock fidelity that tight timing-ratio
// assertions depend on.
const raceEnabled = true
