package experiments

import (
	"context"
	"fmt"
	"time"

	"kaas/internal/accel"
	"kaas/internal/vclock"
)

// fig17Backend describes one quantum backend of §5.6.4.
type fig17Backend struct {
	name    string
	profile accel.Profile
}

// fig17Backends returns the five backends: three Aer simulators with
// decreasing per-call cost (QASM, MPS, statevector) and the two Falcon
// processors, whose per-job queue and control-plane overhead dominates.
func fig17Backends() []fig17Backend {
	qasm := accel.AerSimulatorHost
	qasm.Name = "QASM simulator"
	qasm.ComputeRate = 1.2e8

	mps := accel.AerSimulatorHost
	mps.Name = "MPS simulator"
	mps.ComputeRate = 1.5e8

	sv := accel.AerSimulatorHost
	sv.Name = "StateVector simulator"
	sv.ComputeRate = 2e8

	r511h := accel.FalconR511H
	r511h.ComputeRate = 2e8 // shot execution is fast; queueing dominates

	r4t := accel.FalconR4T
	r4t.ComputeRate = 2e8

	return []fig17Backend{
		{"qasm", qasm},
		{"mps", mps},
		{"statevector", sv},
		{"falcon-r5.11h", r511h},
		{"falcon-r4t", r4t},
	}
}

const (
	// fig17EstimatorCalls is the number of estimator-primitive
	// invocations of the single-point VQE calculation (initial
	// evaluation plus two iterations of parameter-shift gradients over
	// four parameters).
	fig17EstimatorCalls = 19
	// fig17CallWork is the modeled backend work of one estimator call
	// (shots × circuit evaluation).
	fig17CallWork = 5.7e7
	// fig17Transpile is the classical transpilation cost of the ansatz
	// circuit; the baseline re-transpiles on every estimator call, a
	// warm KaaS kernel serves the cached transpiled circuit.
	fig17Transpile = 250 * time.Millisecond
)

// Fig17QPU reproduces Fig. 17: the total completion time of a VQE
// single-point electronic-structure calculation on five quantum backends,
// comparing cold estimator invocations (baseline: every call transpiles
// and sets up) against cached KaaS kernel copies.
func Fig17QPU(o Options) (*Table, error) {
	o = o.withDefaults()
	clock := vclock.Scaled(o.Scale)

	table := NewTable("17", "VQE electronic structure on quantum backends",
		"backend", "baseline_s", "kaas_s", "reduction")

	for _, b := range fig17Backends() {
		baselineTotal, err := fig17Run(clock, b.profile, false)
		if err != nil {
			return nil, fmt.Errorf("fig17 baseline %s: %w", b.name, err)
		}
		kaasTotal, err := fig17Run(clock, b.profile, true)
		if err != nil {
			return nil, fmt.Errorf("fig17 kaas %s: %w", b.name, err)
		}
		red := reduction(baselineTotal, kaasTotal)
		table.AddRow(b.name, seconds(baselineTotal), seconds(kaasTotal), pct(red))
		table.Set(b.name+"/baseline", baselineTotal.Seconds())
		table.Set(b.name+"/kaas", kaasTotal.Seconds())
		table.Set(b.name+"/reduction", red)
	}
	table.Note("paper reductions: 34.9%% QASM, 34.8%% MPS, 34.3%% statevector, 33.3%% Falcon r5.11H, 27.3%% Falcon r4T")
	return table, nil
}

// fig17Run measures one VQE optimization on a backend. Both models pay
// the Qiskit import and backend session once; they differ in whether each
// estimator call pays transpilation (baseline) or hits a cached circuit
// (KaaS). The run is sequential, so the total is accumulated from the
// charged phase durations — constants and exact fluid-model times — which
// keeps it free of wall-clock timer jitter.
func fig17Run(clock vclock.Clock, profile accel.Profile, cached bool) (time.Duration, error) {
	dev, err := accel.NewDevice(clock, "qpu/"+profile.Name, profile)
	if err != nil {
		return 0, err
	}
	defer dev.Close()

	total := clientLaunch + profile.LibraryInit // client start + Qiskit import

	dctx, err := dev.Acquire(context.Background()) // backend session
	if err != nil {
		return 0, err
	}
	defer dctx.Release()
	total += profile.RuntimeInit

	transpiles := fig17EstimatorCalls
	if cached {
		// One transpilation, cached for the whole iterative run.
		transpiles = 1
	}
	total += time.Duration(transpiles) * fig17Transpile

	for call := 0; call < fig17EstimatorCalls; call++ {
		copyTime, err := dctx.Copy(context.Background(), 256)
		if err != nil {
			return 0, err
		}
		execTime, err := dctx.Exec(context.Background(), fig17CallWork)
		if err != nil {
			return 0, err
		}
		total += copyTime + execTime
	}
	return total, nil
}
