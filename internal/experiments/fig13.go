package experiments

import (
	"context"
	"fmt"
	"time"

	"kaas/internal/accel"
	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/metrics"
	"kaas/internal/vclock"
	"kaas/internal/workload"
)

// Fig13Autoscaling reproduces Fig. 13: a growing closed-loop client
// population (one new client every ten seconds, up to 32) issuing
// 10,000×10,000 matrix multiplications against an eight-GPU host. KaaS
// starts a new task runner on a fresh GPU whenever all existing runners
// are at their four-in-flight threshold; client turnaround time lets
// fewer runners serve the theoretical maximum (the paper reaches 32
// clients with only seven runners).
func Fig13Autoscaling(o Options) (*Table, error) {
	o = o.withDefaults()

	maxClients := 32
	interval := 10 * time.Second
	total := 330 * time.Second
	if o.Quick {
		maxClients = 12
		interval = 5 * time.Second
		total = 80 * time.Second
	}

	clock := vclock.Scaled(o.Scale)
	host, err := newV100Host(clock, 8)
	if err != nil {
		return nil, err
	}
	defer host.Close()
	srv, err := newKaasServer(clock, host, func(c *core.Config) {
		c.MaxInFlightPerRunner = 4
		c.MaxRunnersPerDevice = 1
		c.Placement = core.PlaceLeastLoaded
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	mm := kernels.NewMatMul(accel.GPU)
	if err := srv.Register(mm); err != nil {
		return nil, err
	}

	// Sampler: record runners and utilization once per modeled second.
	startTime := clock.Now()
	runnersSeries := metrics.NewTimeSeries(startTime)
	utilSeries := metrics.NewTimeSeries(startTime)
	samplerDone := make(chan struct{})
	samplerStopped := make(chan struct{})
	go func() {
		defer close(samplerStopped)
		for {
			select {
			case <-samplerDone:
				return
			default:
			}
			now := clock.Now()
			st := srv.Stats()
			runnersSeries.Record(now, float64(st.Runners))
			var util float64
			for _, d := range host.Devices() {
				util += d.Utilization() * 100
			}
			utilSeries.Record(now, util)
			clock.Sleep(time.Second)
		}
	}()

	completions, err := workload.Ramp(context.Background(), workload.RampConfig{
		Clock:           clock,
		Interval:        interval,
		MaxClients:      maxClients,
		Total:           total,
		ClientThinkTime: 300 * time.Millisecond,
	}, func(ctx context.Context, _ int) (time.Duration, error) {
		_, rep, err := srv.Invoke(ctx, mm.Name(), matmulReq(10000))
		if err != nil {
			return 0, err
		}
		return rep.Total(), nil
	})
	close(samplerDone)
	<-samplerStopped
	if err != nil {
		return nil, fmt.Errorf("fig13 ramp: %w", err)
	}

	// Bin completion times by end time.
	bin := interval
	bins := int(total/bin) + 1
	taskSums := make([]float64, bins)
	taskCounts := make([]int, bins)
	for _, c := range completions {
		i := int(c.End / bin)
		if i >= 0 && i < bins {
			taskSums[i] += c.Duration.Seconds()
			taskCounts[i]++
		}
	}
	runnerBins := runnersSeries.Bin(bin, total)
	utilBins := utilSeries.Bin(bin, total)

	table := NewTable("13", "Autoscaling under a growing client population",
		"t_s", "clients", "runners", "gpu_util_pct", "mean_task_s")
	var peakRunners float64
	for i := 0; i < bins; i++ {
		t := time.Duration(i) * bin
		clients := 1 + int(t/interval)
		if clients > maxClients {
			clients = maxClients
		}
		meanTask := 0.0
		if taskCounts[i] > 0 {
			meanTask = taskSums[i] / float64(taskCounts[i])
		}
		var runners, util float64
		if i < len(runnerBins) {
			runners = runnerBins[i]
		}
		if i < len(utilBins) {
			util = utilBins[i]
		}
		if runners > peakRunners {
			peakRunners = runners
		}
		table.AddRow(
			fmt.Sprintf("%.0f", t.Seconds()),
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.1f", runners),
			fmt.Sprintf("%.0f", util),
			fmt.Sprintf("%.2f", meanTask),
		)
		table.Set(fmt.Sprintf("runners/%d", i), runners)
		table.Set(fmt.Sprintf("mean_task/%d", i), meanTask)
	}
	table.Set("peak_runners", peakRunners)
	table.Set("completions", float64(len(completions)))
	table.Note("peak runners %.0f for %d clients (paper: 7 runners at 32 clients); task completion time stays steady",
		peakRunners, maxClients)
	return table, nil
}
