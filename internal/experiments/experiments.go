// Package experiments regenerates every figure of the paper's evaluation
// (§5) against the simulated accelerator testbeds. Each experiment
// returns a Table whose rows are the series the paper plots; the
// kaasbench command prints them and the benchmark harness asserts their
// shapes.
//
// Experiments disable real host computation of kernel results (the
// modeled device cost is still charged) so that wall-clock arithmetic
// does not leak into the scaled modeled timeline; kernel correctness is
// covered by the kernels package tests.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Options tune an experiment run.
type Options struct {
	// Scale is the virtual-clock factor (modeled seconds per wall
	// second). Default 100, chosen so that wall-clock timer jitter
	// (~1 ms) stays small relative to modeled phases.
	Scale float64
	// Samples is the number of repetitions per measurement. The paper
	// uses 10; the default here is 3 to keep full runs fast.
	Samples int
	// Quick shrinks sweeps to their endpoints for smoke tests and CI.
	Quick bool
}

// withDefaults fills in defaults.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 100
	}
	if o.Samples <= 0 {
		o.Samples = 3
	}
	return o
}

// clientLaunch is the modeled cost of starting the client program for one
// task — part of every total task completion time in the paper
// ("launching the client Python program").
const clientLaunch = 120 * time.Millisecond

// Table is one regenerated figure: labeled columns and formatted rows.
type Table struct {
	// ID is the figure identifier, e.g. "6a".
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are formatted cells.
	Rows [][]string
	// Notes carries caveats and observed headline numbers.
	Notes []string

	// Values holds the raw numeric series keyed by "<row>/<column>" for
	// shape assertions in tests and benchmarks.
	Values map[string]float64
}

// NewTable creates a table with the given identity and columns.
func NewTable(id, title string, columns ...string) *Table {
	return &Table{
		ID:      id,
		Title:   title,
		Columns: columns,
		Values:  make(map[string]float64),
	}
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Set records a raw value for later assertions.
func (t *Table) Set(key string, v float64) {
	t.Values[key] = v
}

// Get returns a raw value recorded with Set.
func (t *Table) Get(key string) (float64, bool) {
	v, ok := t.Values[key]
	return v, ok
}

// MustGet returns a raw value or an error naming the missing key.
func (t *Table) MustGet(key string) (float64, error) {
	if v, ok := t.Values[key]; ok {
		return v, nil
	}
	keys := make([]string, 0, len(t.Values))
	for k := range t.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return 0, fmt.Errorf("experiments: table %s has no value %q (have %v)", t.ID, key, keys)
}

// Note appends a note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", t.ID, t.Title)

	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(Options) (*Table, error)

// Registry maps figure IDs to experiments, in the paper's order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"2", Fig02MotivatingWorkflow},
		{"6a", Fig06ColdWarmSmall},
		{"6b", Fig06ColdWarmLarge},
		{"7", Fig07WarmOverhead},
		{"8", Fig08Throughput},
		{"9", Fig09Slowdown},
		{"10", Fig10Energy},
		{"11", Fig11Remote},
		{"12a", Fig12StrongScaling},
		{"12b", Fig12WeakScaling},
		{"13", Fig13Autoscaling},
		{"14", Fig14GPUKernels},
		{"15", Fig15FPGA},
		{"16a", Fig16TPUKernelTime},
		{"16b", Fig16TPUTotalTime},
		{"17", Fig17QPU},
	}
}

// ByID returns the experiment with the given figure ID.
func ByID(id string) (Runner, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown figure %q", id)
}

// seconds formats a duration in seconds with 3 decimals.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// pct formats a ratio as a percentage.
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}

// reduction returns 1 - after/before (the paper's "% reduction").
func reduction(before, after time.Duration) float64 {
	if before <= 0 {
		return 0
	}
	return 1 - float64(after)/float64(before)
}
