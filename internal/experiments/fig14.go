package experiments

import (
	"context"
	"fmt"
	"time"

	"kaas/internal/accel"
	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/metrics"
	"kaas/internal/vclock"
	"kaas/internal/workload"
)

// fig14Spec describes one GPU kernel's granularity sweep.
type fig14Spec struct {
	kernel kernels.Kernel
	param  string
	values []int
	extra  kernels.Params
}

// fig14Specs enumerates the six kernels of Fig. 14 with granularity
// ranges matching the paper's x-axes.
func fig14Specs() []fig14Spec {
	return []fig14Spec{
		{kernels.NewSoftDTW(), "n", []int{100, 250, 500, 750, 1000}, nil},
		{kernels.NewGeneticAlgorithm(), "generations",
			[]int{64, 512, 1024, 2048, 4096}, kernels.Params{"n": 100}},
		{kernels.NewGNNTraining(), "n",
			[]int{256, 1024, 2048, 3072, 4096}, kernels.Params{"nodes": 2000}},
		{kernels.NewMonteCarlo(), "n", []int{4096, 16384, 32768, 49152, 65536}, nil},
		{kernels.NewMatMul(accel.GPU), "n", []int{1024, 4096, 8192, 12288, 16384}, nil},
		{kernels.NewQuantumSim(), "n", []int{4096, 16384, 32768, 49152, 65536}, nil},
	}
}

// Fig14GPUKernels reproduces Fig. 14: completion times of the six GPU
// kernels across granularities, comparing space sharing with MPS
// (baseline, always on the first — fastest — GPU, the numba default)
// against KaaS (runners spread across all four GPUs, whose unit-to-unit
// speed variability KaaS is exposed to).
func Fig14GPUKernels(o Options) (*Table, error) {
	o = o.withDefaults()
	clock := vclock.Scaled(o.Scale)

	// Baseline: MPS space sharing on the varied-speed host, first GPU.
	baseHost, err := newP100Host(clock, shareSpace, true)
	if err != nil {
		return nil, err
	}
	defer baseHost.Close()
	base, err := newBaseline(clock, baseHost, nil)
	if err != nil {
		return nil, err
	}

	// KaaS: one warm runner per GPU; invocations rotate across them.
	kaasHost, err := newP100Host(clock, shareSpace, true)
	if err != nil {
		return nil, err
	}
	defer kaasHost.Close()
	srv, err := newKaasServer(clock, kaasHost, func(c *core.Config) {
		c.MaxInFlightPerRunner = 1
		c.MaxRunnersPerDevice = 1
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	table := NewTable("14", "GPU kernel suite: baseline (MPS) vs KaaS",
		"kernel", "granularity", "baseline_s", "kaas_s", "reduction")

	specs := fig14Specs()
	for si := range specs {
		spec := specs[si]
		if err := srv.Register(spec.kernel); err != nil {
			return nil, err
		}
		// Warm one runner per GPU with concurrent invocations.
		warmReq := reqFor(spec, spec.values[0])
		if _, err := workload.RunParallel(context.Background(), 4,
			func(ctx context.Context, _ int) (time.Duration, error) {
				_, rep, err := srv.Invoke(ctx, spec.kernel.Name(), warmReq)
				if err != nil {
					return 0, err
				}
				return rep.Total(), nil
			}); err != nil {
			return nil, fmt.Errorf("fig14 warmup %s: %w", spec.kernel.Name(), err)
		}

		values := sweep(o, spec.values)
		for _, v := range values {
			req := reqFor(spec, v)

			var baseSample metrics.Sample
			for s := 0; s < o.Samples; s++ {
				_, rep, err := base.Run(context.Background(), spec.kernel, req)
				if err != nil {
					return nil, fmt.Errorf("fig14 baseline %s %d: %w", spec.kernel.Name(), v, err)
				}
				baseSample.AddDuration(rep.Total() + clientLaunch)
			}

			// Sample KaaS across all four runners (one per GPU) so the
			// mean reflects device speed variability, as in the paper.
			kaasSamples := max(o.Samples, 4)
			var kaasSample metrics.Sample
			for s := 0; s < kaasSamples; s++ {
				_, rep, err := srv.Invoke(context.Background(), spec.kernel.Name(), req)
				if err != nil {
					return nil, fmt.Errorf("fig14 kaas %s %d: %w", spec.kernel.Name(), v, err)
				}
				if rep.Cold {
					return nil, fmt.Errorf("fig14 kaas %s %d: unexpected cold start", spec.kernel.Name(), v)
				}
				kaasSample.AddDuration(rep.Total() + clientLaunch)
			}

			baseMean := time.Duration(baseSample.Mean() * float64(time.Second))
			kaasMean := time.Duration(kaasSample.Mean() * float64(time.Second))
			red := reduction(baseMean, kaasMean)
			table.AddRow(spec.kernel.Name(), fmt.Sprintf("%d", v),
				seconds(baseMean), seconds(kaasMean), pct(red))
			table.Set(fmt.Sprintf("%s/%d/baseline", spec.kernel.Name(), v), baseMean.Seconds())
			table.Set(fmt.Sprintf("%s/%d/kaas", spec.kernel.Name(), v), kaasMean.Seconds())
			table.Set(fmt.Sprintf("%s/%d/reduction", spec.kernel.Name(), v), red)
		}
	}
	table.Note("KaaS reduces completion times across the suite; GA at the highest generation count loses its advantage (paper: +5.8%% for GA at 4,096 via GPU speed variability)")
	return table, nil
}

// reqFor builds the request for one sweep point.
func reqFor(spec fig14Spec, v int) *kernels.Request {
	params := kernels.Params{spec.param: float64(v)}
	for k, val := range spec.extra {
		params[k] = val
	}
	return &kernels.Request{Params: params}
}
