package experiments

import (
	"fmt"
	"time"

	"kaas/internal/accel"
	"kaas/internal/baseline"
	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/vclock"
)

// sharingMode selects how a testbed's devices are shared.
type sharingMode int

const (
	// shareTime serializes tasks on each device (Slots=1).
	shareTime sharingMode = iota + 1
	// shareSpace allows concurrent contexts (MPS-style).
	shareSpace
)

// exclusiveProfile returns p with a single context slot.
func exclusiveProfile(p accel.Profile) accel.Profile {
	p.Slots = 1
	return p
}

// p100SpeedFactors reproduces the GPU-to-GPU performance variability the
// paper observes in its cluster (§5.6.1: up to 14.3% between devices).
var p100SpeedFactors = [4]float64{1.0, 0.97, 0.94, 0.91}

// newP100Host builds the paper's main testbed: four Tesla P100 GPUs. The
// mode controls device slot counts; varied speed factors model per-unit
// variability (the first device is the fastest, as the baseline's default
// placement always uses it).
func newP100Host(clock vclock.Clock, mode sharingMode, varied bool) (*accel.Host, error) {
	profiles := make([]accel.Profile, 4)
	for i := range profiles {
		p := accel.TeslaP100
		if mode == shareTime {
			p = exclusiveProfile(p)
		}
		if varied {
			p.SpeedFactor = p100SpeedFactors[i]
		}
		profiles[i] = p
	}
	return accel.NewHost(clock, "p100", accel.XeonE52698, profiles...)
}

// newV100Host builds the eight-GPU scaling testbed with n GPUs attached.
func newV100Host(clock vclock.Clock, n int) (*accel.Host, error) {
	if n <= 0 || n > 8 {
		return nil, fmt.Errorf("experiments: v100 host needs 1..8 GPUs, got %d", n)
	}
	profiles := make([]accel.Profile, n)
	for i := range profiles {
		profiles[i] = accel.TeslaV100
	}
	return accel.NewHost(clock, "v100", accel.XeonE52698, profiles...)
}

// newFPGAHost builds the Alveo U250 testbed.
func newFPGAHost(clock vclock.Clock) (*accel.Host, error) {
	return accel.NewHost(clock, "fpga", accel.XeonE52698, accel.AlveoU250)
}

// newTPUHost builds the TPU v3-8 board as four chip devices (shared and
// KaaS modes) or one whole-board device (exclusive mode, where each kernel
// execution blocks the entire TPU and the board computes as one unit).
func newTPUHost(clock vclock.Clock, exclusive bool) (*accel.Host, error) {
	if exclusive {
		board := accel.TPUv3Chip
		board.Name = "TPU v3-8 board"
		board.ComputeRate *= 4 // the whole board serves one kernel
		board.Slots = 1
		return accel.NewHost(clock, "tpu", accel.XeonE52698, board)
	}
	chips := make([]accel.Profile, 4)
	for i := range chips {
		chips[i] = accel.TPUv3Chip
	}
	return accel.NewHost(clock, "tpu", accel.XeonE52698, chips...)
}

// newKaasServer builds a KaaS server over a host with experiment-friendly
// defaults (results disabled; see the package comment).
func newKaasServer(clock vclock.Clock, host *accel.Host, mutate func(*core.Config)) (*core.Server, error) {
	cfg := core.Config{
		Clock:          clock,
		Host:           host,
		DisableCompute: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return core.New(cfg)
}

// newBaseline builds a baseline executor with results disabled.
func newBaseline(clock vclock.Clock, host *accel.Host, mutate func(*baseline.Config)) (*baseline.Executor, error) {
	cfg := baseline.Config{
		Clock:          clock,
		Host:           host,
		DisableCompute: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return baseline.New(cfg)
}

// matmulReq builds a matmul request for dimension n.
func matmulReq(n int) *kernels.Request {
	return &kernels.Request{Params: kernels.Params{"n": float64(n)}}
}

// sweep returns the full or quick variant of a sweep.
func sweep[T any](o Options, full []T) []T {
	if !o.Quick || len(full) <= 2 {
		return full
	}
	return []T{full[0], full[len(full)-1]}
}

// mean returns the average of durations.
func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
