package experiments

import (
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/vclock"
)

func TestExclusiveProfile(t *testing.T) {
	p := exclusiveProfile(accel.TeslaP100)
	if p.Slots != 1 {
		t.Errorf("Slots = %d, want 1", p.Slots)
	}
	if accel.TeslaP100.Slots == 1 {
		t.Error("mutated the shared profile")
	}
}

func TestNewP100Host(t *testing.T) {
	clock := vclock.Scaled(1000)
	host, err := newP100Host(clock, shareSpace, true)
	if err != nil {
		t.Fatalf("newP100Host: %v", err)
	}
	defer host.Close()
	gpus := host.DevicesByKind(accel.GPU)
	if len(gpus) != 4 {
		t.Fatalf("GPUs = %d, want 4", len(gpus))
	}
	// Varied hosts carry the speed spread, fastest first.
	for i, d := range gpus {
		if got := d.Profile().SpeedFactor; got != p100SpeedFactors[i] {
			t.Errorf("GPU %d speed factor = %v, want %v", i, got, p100SpeedFactors[i])
		}
	}
	flat, err := newP100Host(clock, shareTime, false)
	if err != nil {
		t.Fatalf("newP100Host flat: %v", err)
	}
	defer flat.Close()
	for _, d := range flat.DevicesByKind(accel.GPU) {
		if d.Profile().Slots != 1 {
			t.Errorf("exclusive host device has %d slots", d.Profile().Slots)
		}
	}
}

func TestNewV100HostValidation(t *testing.T) {
	clock := vclock.Scaled(1000)
	if _, err := newV100Host(clock, 0); err == nil {
		t.Error("0 GPUs succeeded")
	}
	if _, err := newV100Host(clock, 9); err == nil {
		t.Error("9 GPUs succeeded")
	}
	host, err := newV100Host(clock, 3)
	if err != nil {
		t.Fatalf("newV100Host: %v", err)
	}
	defer host.Close()
	if got := len(host.DevicesByKind(accel.GPU)); got != 3 {
		t.Errorf("GPUs = %d, want 3", got)
	}
}

func TestNewTPUHostModes(t *testing.T) {
	clock := vclock.Scaled(1000)
	excl, err := newTPUHost(clock, true)
	if err != nil {
		t.Fatalf("newTPUHost exclusive: %v", err)
	}
	defer excl.Close()
	boards := excl.DevicesByKind(accel.TPU)
	if len(boards) != 1 {
		t.Fatalf("exclusive TPU devices = %d, want 1 board", len(boards))
	}
	if boards[0].Profile().ComputeRate != 4*accel.TPUv3Chip.ComputeRate {
		t.Error("board rate should be 4x chip rate")
	}

	shared, err := newTPUHost(clock, false)
	if err != nil {
		t.Fatalf("newTPUHost shared: %v", err)
	}
	defer shared.Close()
	if got := len(shared.DevicesByKind(accel.TPU)); got != 4 {
		t.Errorf("shared TPU chips = %d, want 4", got)
	}
}

func TestSweepQuickTakesEndpoints(t *testing.T) {
	full := []int{1, 2, 3, 4, 5}
	got := sweep(Options{Quick: true}, full)
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Errorf("quick sweep = %v, want [1 5]", got)
	}
	if got := sweep(Options{}, full); len(got) != 5 {
		t.Errorf("full sweep = %v", got)
	}
	short := []int{7}
	if got := sweep(Options{Quick: true}, short); len(got) != 1 {
		t.Errorf("short sweep = %v", got)
	}
}

func TestMeanDuration(t *testing.T) {
	if got := mean(nil); got != 0 {
		t.Errorf("mean(nil) = %v", got)
	}
	got := mean([]time.Duration{time.Second, 3 * time.Second})
	if got != 2*time.Second {
		t.Errorf("mean = %v, want 2s", got)
	}
}

func TestMatmulReq(t *testing.T) {
	req := matmulReq(777)
	if req.Params.Int("n", 0) != 777 {
		t.Errorf("n = %d, want 777", req.Params.Int("n", 0))
	}
}

func TestReductionHelper(t *testing.T) {
	if got := reduction(10*time.Second, 4*time.Second); got != 0.6 {
		t.Errorf("reduction = %v, want 0.6", got)
	}
	if got := reduction(0, time.Second); got != 0 {
		t.Errorf("reduction with zero base = %v, want 0", got)
	}
}

func TestFig17BackendsDistinct(t *testing.T) {
	backends := fig17Backends()
	if len(backends) != 5 {
		t.Fatalf("backends = %d, want 5", len(backends))
	}
	seen := make(map[string]bool)
	for _, b := range backends {
		if seen[b.name] {
			t.Errorf("duplicate backend %q", b.name)
		}
		seen[b.name] = true
		if err := b.profile.Validate(); err != nil {
			t.Errorf("backend %s profile invalid: %v", b.name, err)
		}
	}
}

func TestConvCompileHelpers(t *testing.T) {
	// reqFor merges the sweep parameter with extras.
	spec := fig14Specs()[1] // ga
	req := reqFor(spec, 128)
	if req.Params.Int("generations", 0) != 128 {
		t.Errorf("generations = %d", req.Params.Int("generations", 0))
	}
	if req.Params.Int("n", 0) != 100 {
		t.Errorf("n = %d, want 100 (extra param)", req.Params.Int("n", 0))
	}
}
