package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"kaas/internal/accel"
	"kaas/internal/baseline"
	"kaas/internal/client"
	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/netshape"
	"kaas/internal/shm"
	"kaas/internal/vclock"
)

// fig11Sizes are the GA population sizes of the remote-invocation sweep.
var fig11Sizes = []int{32, 128, 512, 1024, 2048, 4096}

// remoteSessionOverhead models the per-invocation client-side cost of the
// remote path beyond raw transfer: connection/session establishment and
// serialization-framework overhead (the paper measures 490-832 ms of
// added delay for remote calls).
const remoteSessionOverhead = 400 * time.Millisecond

// Fig11Remote reproduces Fig. 11: total completion time of the GA kernel
// under (1) remote invocation over a shaped 1 Gbps link, (2) local
// invocation with in-band serialized transfer, (3) local invocation with
// out-of-band shared-memory transfer, and (4) local CPU execution on the
// client host.
func Fig11Remote(o Options) (*Table, error) {
	o = o.withDefaults()
	// TCP wall latency leaks into the scaled timeline; keep the scale
	// moderate for this networked experiment.
	if o.Scale > 500 {
		o.Scale = 500
	}
	sizes := sweep(o, fig11Sizes)
	clock := vclock.Scaled(o.Scale)

	// KaaS GPU host with a TCP endpoint.
	host, err := newP100Host(clock, shareSpace, false)
	if err != nil {
		return nil, err
	}
	defer host.Close()
	srv, err := newKaasServer(clock, host, func(c *core.Config) {
		c.MaxInFlightPerRunner = 8
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ga := kernels.NewGeneticAlgorithm()
	if err := srv.Register(ga); err != nil {
		return nil, err
	}
	regions := shm.NewRegistry(1 << 30)
	tcp, err := core.ServeTCP(srv, "127.0.0.1:0", regions)
	if err != nil {
		return nil, err
	}
	defer tcp.Close()

	remote := client.Dial(tcp.Addr(), client.WithLink(netshape.GigabitEthernet(clock)))
	defer remote.Close()
	localInBand := client.Dial(tcp.Addr())
	defer localInBand.Close()
	localOOB := client.Dial(tcp.Addr(), client.WithShm(regions))
	defer localOOB.Close()

	// CPU execution runs on the client machine's EPYC CPUs.
	cpuHost, err := accel.NewHost(clock, "epyc-client", accel.EPYC7513)
	if err != nil {
		return nil, err
	}
	defer cpuHost.Close()
	cpuExec, err := newBaseline(clock, cpuHost, func(c *baseline.Config) {
		c.HostPrepCost = 50 * time.Millisecond
	})
	if err != nil {
		return nil, err
	}
	gaCPU := kernels.Retarget(ga, accel.CPU)

	table := NewTable("11", "GA kernel completion time by invocation path",
		"n", "scenario", "total_s")

	rng := rand.New(rand.NewSource(99))
	for _, n := range sizes {
		payload := kernels.Float64sToBytes(randomPopulation(rng, n))
		params := kernels.Params{"n": float64(n)}

		// Warm the runner at this size before measuring any scenario.
		if _, err := localInBand.Invoke(ga.Name(), params, payload); err != nil {
			return nil, fmt.Errorf("fig11 warmup n=%d: %w", n, err)
		}

		measure := func(scenario string, run func() error) error {
			var total time.Duration
			for s := 0; s < o.Samples; s++ {
				start := clock.Now()
				clock.Sleep(clientLaunch)
				if err := run(); err != nil {
					return fmt.Errorf("fig11 %s n=%d: %w", scenario, n, err)
				}
				total += clock.Now().Sub(start)
			}
			meanTotal := total / time.Duration(o.Samples)
			table.AddRow(fmt.Sprintf("%d", n), scenario, seconds(meanTotal))
			table.Set(fmt.Sprintf("%s/%d/total", scenario, n), meanTotal.Seconds())
			return nil
		}

		if err := measure("remote", func() error {
			clock.Sleep(remoteSessionOverhead)
			_, err := remote.Invoke(ga.Name(), params, payload)
			return err
		}); err != nil {
			return nil, err
		}
		if err := measure("local-inband", func() error {
			_, err := localInBand.Invoke(ga.Name(), params, payload)
			return err
		}); err != nil {
			return nil, err
		}
		if err := measure("local-oob", func() error {
			_, err := localOOB.InvokeOutOfBand(ga.Name(), params, payload)
			return err
		}); err != nil {
			return nil, err
		}
		if err := measure("cpu", func() error {
			_, _, err := cpuExec.Run(context.Background(), gaCPU,
				&kernels.Request{Params: params, Data: payload})
			return err
		}); err != nil {
			return nil, err
		}
	}

	large := sizes[len(sizes)-1]
	cpuLarge, _ := table.Get(fmt.Sprintf("cpu/%d/total", large))
	remoteLarge, _ := table.Get(fmt.Sprintf("remote/%d/total", large))
	if remoteLarge > 0 {
		table.Note("at n=%d, CPU execution is %.1fx slower than remote GPU invocation (paper: 5x)",
			large, cpuLarge/remoteLarge)
	}
	table.Note("in-band and out-of-band local transfer are near-identical, as in the paper")
	return table, nil
}

// randomPopulation builds an n-individual GA population payload.
func randomPopulation(rng *rand.Rand, n int) []float64 {
	vals := make([]float64, n*100)
	for i := range vals {
		vals[i] = rng.Float64()*10 - 5
	}
	return vals
}
