package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/vclock"
	"kaas/internal/workload"
)

// fig12Batches is the workload size: the paper streams 8,000 batches of
// eight images per configured unit.
const fig12Batches = 8000

// fig12QuickBatches shrinks the stream for quick runs.
const fig12QuickBatches = 240

// Fig12StrongScaling reproduces Fig. 12a: the completion time of a fixed
// inference workload (8,000 batches of eight images) on one to eight
// GPUs, with and without warm runners.
func Fig12StrongScaling(o Options) (*Table, error) {
	o = o.withDefaults()
	table := NewTable("12a", "Strong scaling of ResNet inference (fixed workload)",
		"gpus", "cold_s", "warm_s")
	return fig12(o, table, func(gpus, batches int) int { return batches })
}

// Fig12WeakScaling reproduces Fig. 12b: N×8,000 batches on N GPUs,
// distributed round-robin.
func Fig12WeakScaling(o Options) (*Table, error) {
	o = o.withDefaults()
	table := NewTable("12b", "Weak scaling of ResNet inference (workload grows with GPUs)",
		"gpus", "cold_s", "warm_s")
	return fig12(o, table, func(gpus, batches int) int { return gpus * batches })
}

// fig12 runs the scaling sweep. scaleWork maps (gpus, baseBatches) to the
// total batch count of that configuration.
func fig12(o Options, table *Table, scaleWork func(gpus, batches int) int) (*Table, error) {
	// The batch stream's per-task device time is milliseconds of modeled
	// time; keep the scale low so wall-clock timer granularity stays
	// small relative to it and scaling ratios are preserved.
	if o.Scale > 10 {
		o.Scale = 10
	}
	batches := fig12Batches
	gpuCounts := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if o.Quick {
		batches = fig12QuickBatches
		gpuCounts = []int{1, 2, 4}
	}

	for _, gpus := range gpuCounts {
		total := scaleWork(gpus, batches)
		cold, err := fig12Run(o, gpus, total, false)
		if err != nil {
			return nil, fmt.Errorf("fig12 cold gpus=%d: %w", gpus, err)
		}
		warm, err := fig12Run(o, gpus, total, true)
		if err != nil {
			return nil, fmt.Errorf("fig12 warm gpus=%d: %w", gpus, err)
		}
		table.AddRow(fmt.Sprintf("%d", gpus), seconds(cold), seconds(warm))
		table.Set(fmt.Sprintf("cold/%d", gpus), cold.Seconds())
		table.Set(fmt.Sprintf("warm/%d", gpus), warm.Seconds())
	}
	table.Note("workload: %d batches of 8 images per unit; round-robin over runners", batches)
	return table, nil
}

// fig12Run measures the completion time of the batch stream on the given
// GPU count. In warm mode runners are pre-started so only steady-state
// inference is measured; in cold mode runner initialization (parallel
// across GPUs) is included.
func fig12Run(o Options, gpus, totalBatches int, warm bool) (time.Duration, error) {
	clock := vclock.Scaled(o.Scale)
	host, err := newV100Host(clock, gpus)
	if err != nil {
		return 0, err
	}
	defer host.Close()
	srv, err := newKaasServer(clock, host, func(c *core.Config) {
		c.MaxInFlightPerRunner = 4
		c.MaxRunnersPerDevice = 1
		c.Placement = core.PlaceRoundRobin
		c.RoutingOverhead = 200 * time.Microsecond
	})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	resnet := kernels.NewResNetInference()
	if err := srv.Register(resnet); err != nil {
		return 0, err
	}

	req := &kernels.Request{Params: kernels.Params{"batch": 8}}
	clients := 4 * gpus

	if warm {
		if _, err := workload.RunParallel(context.Background(), clients,
			func(ctx context.Context, _ int) (time.Duration, error) {
				_, rep, err := srv.Invoke(ctx, resnet.Name(), req)
				if err != nil {
					return 0, err
				}
				return rep.Total(), nil
			}); err != nil {
			return 0, err
		}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := clock.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Stagger client phases so equal-size batches do not
			// synchronize under processor sharing.
			clock.Sleep(time.Duration(c) * 2 * time.Millisecond)
			for {
				if next.Add(1) > int64(totalBatches) {
					return
				}
				if _, _, err := srv.Invoke(context.Background(), resnet.Name(), req); err != nil {
					errs[c] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := clock.Now().Sub(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}
