package experiments

import (
	"context"
	"fmt"
	"time"

	"kaas/internal/accel"
	"kaas/internal/kernels"
	"kaas/internal/metrics"
	"kaas/internal/vclock"
)

// Fig02MotivatingWorkflow reproduces the motivating example (Figs. 1-2):
// the three-stage image workflow (CPU preprocess, FPGA bitmap conversion,
// GPU inference) run (a) naively on accelerators, with every stage paying
// full initialization, and (b) CPU-only in a single process. The naive
// accelerated version is slower overall because initialization dominates
// the fine-grained tasks.
func Fig02MotivatingWorkflow(o Options) (*Table, error) {
	o = o.withDefaults()
	clock := vclock.Scaled(o.Scale)

	host, err := accel.NewHost(clock, "motivating", accel.XeonE52698,
		accel.AlveoU250, accel.NvidiaA100)
	if err != nil {
		return nil, err
	}
	defer host.Close()

	stages := []struct {
		name   string
		kernel kernels.Kernel
		req    *kernels.Request
	}{
		{"preprocess", kernels.NewImagePreprocess(), &kernels.Request{Params: kernels.Params{}}},
		{"bitmap", kernels.NewBitmapConversion(), &kernels.Request{Params: kernels.Params{}}},
		{"inference", kernels.NewResNetInference(), &kernels.Request{Params: kernels.Params{"batch": 1}}},
	}

	table := NewTable("2", "Motivating workflow: naive accelerator use vs CPU-only",
		"config", "stage", "init_s", "kernel_s", "total_s", "init_share")

	// (a) Naive accelerator implementation: each stage is a fresh process
	// against its accelerator, paying library import, runtime init and
	// kernel setup on the critical path.
	exec, err := newBaseline(clock, host, nil)
	if err != nil {
		return nil, err
	}
	var accelTotal time.Duration
	for _, st := range stages {
		_, rep, err := exec.Run(context.Background(), st.kernel, st.req)
		if err != nil {
			return nil, fmt.Errorf("fig2 accelerated %s: %w", st.name, err)
		}
		b := rep.Breakdown
		b.Other += clientLaunch
		initTime := b.Spawn + b.LibraryInit + b.RuntimeInit + b.Setup
		table.AddRow("accelerator", st.name, seconds(initTime), seconds(b.KernelTime()),
			seconds(b.Total()), pct(float64(initTime)/float64(b.Total())))
		table.Set("accelerator/"+st.name+"/total", b.Total().Seconds())
		table.Set("accelerator/"+st.name+"/init_share", float64(initTime)/float64(b.Total()))
		table.Set("accelerator/"+st.name+"/kernel_share", float64(b.KernelTime())/float64(b.Total()))
		accelTotal += b.Total()
	}
	table.AddRow("accelerator", "workflow", "", "", seconds(accelTotal), "")
	table.Set("accelerator/workflow/total", accelTotal.Seconds())

	// (b) CPU-only: one process, library imported once, all stages on the
	// host CPU.
	cpu := host.CPU()
	dctx, err := cpu.Acquire(context.Background())
	if err != nil {
		return nil, err
	}
	defer dctx.Release()

	var cpuTotal time.Duration
	start := clock.Now()
	clock.Sleep(clientLaunch)
	clock.Sleep(cpu.Profile().LibraryInit)
	for _, st := range stages {
		cost, err := st.kernel.Cost(st.req)
		if err != nil {
			return nil, fmt.Errorf("fig2 cpu-only %s: %w", st.name, err)
		}
		var b metrics.Breakdown
		if b.CopyIn, err = dctx.Copy(context.Background(), cost.BytesIn); err != nil {
			return nil, err
		}
		if b.Exec, err = dctx.Exec(context.Background(), cost.Work); err != nil {
			return nil, err
		}
		if b.CopyOut, err = dctx.Copy(context.Background(), cost.BytesOut); err != nil {
			return nil, err
		}
		table.AddRow("cpu-only", st.name, "0.000", seconds(b.KernelTime()), seconds(b.Total()), "0.0%")
		table.Set("cpu-only/"+st.name+"/total", b.Total().Seconds())
	}
	cpuTotal = clock.Now().Sub(start)
	table.AddRow("cpu-only", "workflow", "", "", seconds(cpuTotal), "")
	table.Set("cpu-only/workflow/total", cpuTotal.Seconds())

	table.Note("naive accelerator workflow is %.1fx slower than CPU-only (paper: accelerators lose to CPU-only)",
		float64(accelTotal)/float64(cpuTotal))
	return table, nil
}
