package experiments

import (
	"context"
	"fmt"
	"time"

	"kaas/internal/accel"
	"kaas/internal/kernels"
	"kaas/internal/vclock"
)

// Fig06ColdWarmSmall reproduces Fig. 6a: 20 iterations of a small
// (500×500) matrix multiplication under exclusive GPU use vs KaaS.
func Fig06ColdWarmSmall(o Options) (*Table, error) {
	return fig06(o, "6a", 500)
}

// Fig06ColdWarmLarge reproduces Fig. 6b: the same comparison for a large
// (10,000×10,000) task.
func Fig06ColdWarmLarge(o Options) (*Table, error) {
	return fig06(o, "6b", 10000)
}

// fig06 runs the cold/warm iteration comparison at one task size.
func fig06(o Options, id string, n int) (*Table, error) {
	o = o.withDefaults()
	iterations := 20
	if o.Quick {
		iterations = 5
	}
	clock := vclock.Scaled(o.Scale)

	// Exclusive model: fresh process per iteration against a
	// single-slot GPU.
	exclHost, err := newP100Host(clock, shareTime, false)
	if err != nil {
		return nil, err
	}
	defer exclHost.Close()
	excl, err := newBaseline(clock, exclHost, nil)
	if err != nil {
		return nil, err
	}

	// KaaS model: registered kernel, warm runners.
	kaasHost, err := newP100Host(clock, shareSpace, false)
	if err != nil {
		return nil, err
	}
	defer kaasHost.Close()
	srv, err := newKaasServer(clock, kaasHost, nil)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	mm := kernels.NewMatMul(accel.GPU)
	if err := srv.Register(mm); err != nil {
		return nil, err
	}

	table := NewTable(id,
		fmt.Sprintf("Cold and warm starts, %dx%d matrix multiplication, %d iterations", n, n, iterations),
		"iteration", "exclusive_s", "kaas_s", "kaas_start")

	var exclusiveSum, warmSum time.Duration
	var coldTotal time.Duration
	for i := 1; i <= iterations; i++ {
		_, exclRep, err := excl.Run(context.Background(), mm, matmulReq(n))
		if err != nil {
			return nil, fmt.Errorf("fig%s exclusive iter %d: %w", id, i, err)
		}
		exclTotal := exclRep.Total() + clientLaunch

		_, kaasRep, err := srv.Invoke(context.Background(), mm.Name(), matmulReq(n))
		if err != nil {
			return nil, fmt.Errorf("fig%s kaas iter %d: %w", id, i, err)
		}
		kaasTotal := kaasRep.Total() + clientLaunch

		start := "warm"
		if kaasRep.Cold {
			start = "cold"
			coldTotal = kaasTotal
		} else {
			warmSum += kaasTotal
		}
		exclusiveSum += exclTotal
		table.AddRow(fmt.Sprintf("%d", i), seconds(exclTotal), seconds(kaasTotal), start)
		if i == 1 {
			table.Set("kaas/cold", kaasTotal.Seconds())
		}
	}

	exclusiveMean := exclusiveSum / time.Duration(iterations)
	warmMean := warmSum / time.Duration(iterations-1)
	table.Set("exclusive/mean", exclusiveMean.Seconds())
	table.Set("kaas/warm_mean", warmMean.Seconds())
	table.Note("KaaS cold start %.1f%% shorter than exclusive (paper: 54.6%% small / 36.9%% large)",
		100*reduction(exclusiveMean, coldTotal))
	table.Note("KaaS warm invocations %.1f%% faster than exclusive (paper: 94.1%% small / 46.4%% large)",
		100*reduction(exclusiveMean, warmMean))
	return table, nil
}
