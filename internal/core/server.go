package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"kaas/internal/accel"
	"kaas/internal/kernels"
	"kaas/internal/metrics"
	"kaas/internal/vclock"
)

// Errors returned by the server.
var (
	// ErrUnknownKernel indicates an invocation of an unregistered kernel.
	ErrUnknownKernel = errors.New("core: unknown kernel")
	// ErrAlreadyRegistered indicates a duplicate registration.
	ErrAlreadyRegistered = errors.New("core: kernel already registered")
	// ErrServerClosed indicates the server has been shut down.
	ErrServerClosed = errors.New("core: server closed")
	// ErrNoDevice indicates the host has no device of the kernel's kind.
	ErrNoDevice = errors.New("core: no device of required kind")
)

// PlacementPolicy selects the device for a new task runner.
type PlacementPolicy int

// Placement policies.
const (
	// PlaceLeastLoaded picks the device of the right kind hosting the
	// fewest runners — the paper's autoscaler behaviour ("start an
	// additional task runner on a new GPU").
	PlaceLeastLoaded PlacementPolicy = iota + 1
	// PlaceRoundRobin cycles through devices per kernel.
	PlaceRoundRobin
	// PlaceFirstFit always picks the first device (the numba default
	// behaviour the paper observes in the baseline).
	PlaceFirstFit
)

// String returns the policy name.
func (p PlacementPolicy) String() string {
	switch p {
	case PlaceLeastLoaded:
		return "least-loaded"
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceFirstFit:
		return "first-fit"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Config configures a Server.
type Config struct {
	// Clock is the time source (required).
	Clock vclock.Clock
	// Host supplies the accelerator devices (required).
	Host *accel.Host
	// MaxInFlightPerRunner is the in-flight threshold above which the
	// autoscaler starts another runner. Default 4 (the paper's limit).
	MaxInFlightPerRunner int
	// MaxRunnersPerDevice caps runners placed on one device. Default 1.
	MaxRunnersPerDevice int
	// Placement selects where new runners go. Default PlaceLeastLoaded.
	Placement PlacementPolicy
	// RunnerSpawnCost is the modeled cost of starting a runner process.
	// Default 30 ms.
	RunnerSpawnCost time.Duration
	// RoutingOverhead is the modeled per-invocation cost of request
	// routing and serialization inside the host. Default 2 ms.
	RoutingOverhead time.Duration
	// RunnerIdleTimeout releases runners idle for this long (0 = never).
	RunnerIdleTimeout time.Duration
	// DisableCompute stops runners from performing the kernel's real
	// host computation (they still charge the modeled device cost).
	// Timing-shape experiments set it so wall-time of host arithmetic
	// does not leak into the scaled modeled timeline; functional use
	// leaves it false.
	DisableCompute bool
	// Logger receives structured lifecycle events (registrations, cold
	// starts, evictions, failovers). Nil disables logging.
	Logger *slog.Logger
}

// Server is the KaaS control plane for one host.
type Server struct {
	cfg   Config
	clock vclock.Clock

	mu         sync.Mutex
	entries    map[string]*entry
	libInit    map[accel.Kind]bool
	runnersOn  map[string]int // device ID -> runner count
	runnerSeq  int
	coldStarts int
	inFlight   int
	closed     bool
	reapTimer  vclock.Timer
}

// entry is the per-kernel state.
type entry struct {
	kernel     kernels.Kernel
	runners    []*runner
	rrNext     int
	lastRunner int
	// runnersOn counts this kernel's runners per device; the per-device
	// runner cap is per kernel, so kernels place independently (device
	// slots still bound total contexts).
	runnersOn map[string]int
}

// runner is a task runner holding a warm device context.
type runner struct {
	id     string
	device *accel.Device
	dctx   *accel.Context

	ready    chan struct{} // closed when cold start completes
	startErr error

	// guarded by Server.mu
	inflight int
	lastUsed time.Time
	removed  bool
	// draining runners finish in-flight work and are then released
	// (set by ReplaceKernel).
	draining bool
}

// New creates a server.
func New(cfg Config) (*Server, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("core: config needs a clock")
	}
	if cfg.Host == nil {
		return nil, fmt.Errorf("core: config needs a host")
	}
	if cfg.MaxInFlightPerRunner <= 0 {
		cfg.MaxInFlightPerRunner = 4
	}
	if cfg.MaxRunnersPerDevice <= 0 {
		cfg.MaxRunnersPerDevice = 1
	}
	if cfg.Placement == 0 {
		cfg.Placement = PlaceLeastLoaded
	}
	if cfg.RunnerSpawnCost == 0 {
		cfg.RunnerSpawnCost = 30 * time.Millisecond
	}
	if cfg.RoutingOverhead == 0 {
		cfg.RoutingOverhead = 2 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	s := &Server{
		cfg:       cfg,
		clock:     cfg.Clock,
		entries:   make(map[string]*entry),
		libInit:   make(map[accel.Kind]bool),
		runnersOn: make(map[string]int),
	}
	if cfg.RunnerIdleTimeout > 0 {
		s.scheduleReapLocked()
	}
	return s, nil
}

// Logger returns the server's structured logger (never nil; a discarding
// logger when none was configured).
func (s *Server) Logger() *slog.Logger { return s.cfg.Logger }

// SetComputeResults toggles real host computation of kernel results.
func (s *Server) SetComputeResults(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.DisableCompute = !on
}

// Register deploys a kernel on the server. Registration initializes the
// kernel's host framework (numba, TensorFlow, ...) once per device kind —
// this is why a KaaS cold start is cheaper than a fresh baseline process
// (§5.1): the library is already warm when the first runner spawns.
func (s *Server) Register(k kernels.Kernel) error {
	if k == nil {
		return fmt.Errorf("core: nil kernel")
	}
	kind := k.Kind()
	if len(s.cfg.Host.DevicesByKind(kind)) == 0 {
		return fmt.Errorf("%w: %s for kernel %q", ErrNoDevice, kind, k.Name())
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if _, ok := s.entries[k.Name()]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrAlreadyRegistered, k.Name())
	}
	needLibInit := !s.libInit[kind]
	s.libInit[kind] = true
	s.entries[k.Name()] = &entry{kernel: k, runnersOn: make(map[string]int)}
	s.mu.Unlock()

	if needLibInit {
		s.clock.Sleep(s.libraryInitCost(kind))
	}
	s.cfg.Logger.Info("kernel registered", "kernel", k.Name(), "kind", kind.String())
	return nil
}

// libraryInitCost reads the library-init cost from the kind's device
// profile.
func (s *Server) libraryInitCost(kind accel.Kind) time.Duration {
	devs := s.cfg.Host.DevicesByKind(kind)
	if len(devs) == 0 {
		return 0
	}
	return devs[0].Profile().LibraryInit
}

// Kernels returns the registered kernel names.
func (s *Server) Kernels() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.entries))
	for name := range s.entries {
		names = append(names, name)
	}
	return names
}

// Invoke routes one invocation to a warm or new runner and returns the
// kernel response plus a report of how it was served.
func (s *Server) Invoke(ctx context.Context, name string, req *kernels.Request) (*kernels.Response, *Report, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrServerClosed
	}
	e, ok := s.entries[name]
	if !ok {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownKernel, name)
	}
	s.inFlight++

	// Snapshot the implementation: ReplaceKernel may swap e.kernel while
	// this invocation is in flight.
	k := e.kernel
	r, spawner := s.selectRunnerLocked(e)
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		s.inFlight--
		s.mu.Unlock()
	}()

	report := &Report{Kernel: name, Runner: r.id}

	// Modeled request routing cost.
	s.clock.Sleep(s.cfg.RoutingOverhead)
	report.Breakdown.Other += s.cfg.RoutingOverhead

	if spawner {
		report.Cold = true
		s.coldStart(k, r, &report.Breakdown)
	} else {
		// Wait for the runner to finish starting if necessary.
		waitStart := s.clock.Now()
		select {
		case <-r.ready:
		case <-ctx.Done():
			s.releaseRunner(e, r)
			return nil, nil, ctx.Err()
		}
		report.Breakdown.Queue += s.clock.Now().Sub(waitStart)
	}
	if r.startErr != nil {
		err := r.startErr
		s.removeRunner(e, r)
		return nil, nil, fmt.Errorf("core: runner start: %w", err)
	}

	resp, err := s.serve(ctx, k, r, req, report)
	s.releaseRunner(e, r)
	if err != nil {
		if errors.Is(err, accel.ErrDeviceFailed) {
			// The runner's device failed: retire the runner and retry
			// once; the autoscaler will place a new runner on a healthy
			// device.
			s.cfg.Logger.Warn("device failure, failing over",
				"kernel", name, "runner", r.id, "device", r.device.ID())
			s.removeRunner(e, r)
			return s.failover(ctx, name, req, report)
		}
		return nil, nil, err
	}
	report.Device = r.device.ID()
	return resp, report, nil
}

// failover retries an invocation after a device failure, accumulating the
// time already spent into the retried report.
func (s *Server) failover(ctx context.Context, name string, req *kernels.Request, prior *Report) (*kernels.Response, *Report, error) {
	resp, report, err := s.Invoke(ctx, name, req)
	if err != nil {
		return nil, nil, fmt.Errorf("core: failover for %q: %w", name, err)
	}
	report.Breakdown = report.Breakdown.Add(prior.Breakdown)
	report.Cold = true
	return resp, report, nil
}

// selectRunnerLocked picks a runner for a new invocation, creating one if
// the autoscaling policy calls for it. It returns the runner and whether
// the caller is responsible for its cold start.
func (s *Server) selectRunnerLocked(e *entry) (*runner, bool) {
	// Prefer the least-loaded existing runner under the in-flight cap,
	// breaking ties by rotating through the pool so load (and therefore
	// devices) is allocated evenly, as the paper observes for KaaS.
	var best *runner
	n := len(e.runners)
	for i := 0; i < n; i++ {
		r := e.runners[(e.lastRunner+1+i)%n]
		if r.removed || r.draining {
			continue
		}
		if r.inflight < s.cfg.MaxInFlightPerRunner && (best == nil || r.inflight < best.inflight) {
			best = r
		}
	}
	if best != nil {
		best.inflight++
		for i, r := range e.runners {
			if r == best {
				e.lastRunner = i
				break
			}
		}
		return best, false
	}

	// All runners saturated: scale out if a device has capacity.
	if dev := s.placeLocked(e); dev != nil {
		s.runnerSeq++
		r := &runner{
			id:       fmt.Sprintf("runner-%d", s.runnerSeq),
			device:   dev,
			ready:    make(chan struct{}),
			inflight: 1,
			lastUsed: s.clock.Now(),
		}
		e.runners = append(e.runners, r)
		s.runnersOn[dev.ID()]++
		e.runnersOn[dev.ID()]++
		s.coldStarts++
		return r, true
	}

	// No capacity for new runners: overbook the least-loaded one. The
	// in-flight limit is a scaling trigger, not an admission limit
	// (§5.5: the GPU can take more parallel work than the threshold).
	for _, r := range e.runners {
		if r.removed || r.draining {
			continue
		}
		if best == nil || r.inflight < best.inflight {
			best = r
		}
	}
	if best == nil {
		// No runner exists and no device capacity: create one anyway on
		// the overall least-loaded device so the invocation can queue on
		// the device slot instead of failing.
		dev := s.leastLoadedDeviceLocked(e)
		s.runnerSeq++
		r := &runner{
			id:       fmt.Sprintf("runner-%d", s.runnerSeq),
			device:   dev,
			ready:    make(chan struct{}),
			inflight: 1,
			lastUsed: s.clock.Now(),
		}
		e.runners = append(e.runners, r)
		s.runnersOn[dev.ID()]++
		e.runnersOn[dev.ID()]++
		s.coldStarts++
		return r, true
	}
	best.inflight++
	return best, false
}

// placeLocked returns the device for a new runner, or nil if every device
// of the kind is at its runner cap.
func (s *Server) placeLocked(e *entry) *accel.Device {
	devs := s.cfg.Host.DevicesByKind(e.kernel.Kind())
	if len(devs) == 0 {
		return nil
	}
	switch s.cfg.Placement {
	case PlaceFirstFit:
		if !devs[0].Failed() && e.runnersOn[devs[0].ID()] < s.cfg.MaxRunnersPerDevice {
			return devs[0]
		}
		return nil
	case PlaceRoundRobin:
		for i := 0; i < len(devs); i++ {
			d := devs[(e.rrNext+i)%len(devs)]
			if !d.Failed() && e.runnersOn[d.ID()] < s.cfg.MaxRunnersPerDevice {
				e.rrNext = (e.rrNext + i + 1) % len(devs)
				return d
			}
		}
		return nil
	default: // PlaceLeastLoaded
		var best *accel.Device
		for _, d := range devs {
			if d.Failed() || e.runnersOn[d.ID()] >= s.cfg.MaxRunnersPerDevice {
				continue
			}
			if best == nil || e.runnersOn[d.ID()] < e.runnersOn[best.ID()] {
				best = d
			}
		}
		return best
	}
}

// leastLoadedDeviceLocked returns the device of the entry's kind with the
// fewest of this kernel's runners, ignoring the per-device runner cap.
// The caller guarantees at least one device of the kind exists (checked
// at Register).
func (s *Server) leastLoadedDeviceLocked(e *entry) *accel.Device {
	devs := s.cfg.Host.DevicesByKind(e.kernel.Kind())
	best := devs[0]
	for _, d := range devs[1:] {
		if best.Failed() && !d.Failed() {
			best = d
			continue
		}
		if !d.Failed() && e.runnersOn[d.ID()] < e.runnersOn[best.ID()] {
			best = d
		}
	}
	return best
}

// coldStart brings a new runner up: spawn the host process, create the
// device context (RuntimeInit), and run kernel setup work. If the target
// device has no free context slot, an idle runner of another kernel is
// evicted first so single-slot devices (FPGAs) can serve multiple
// registered kernels without deadlocking.
func (s *Server) coldStart(k kernels.Kernel, r *runner, b *metrics.Breakdown) {
	defer close(r.ready)

	s.clock.Sleep(s.cfg.RunnerSpawnCost)
	b.Spawn += s.cfg.RunnerSpawnCost

	if st := r.device.Stats(); st.ActiveContexts >= r.device.Profile().Slots {
		s.mu.Lock()
		s.evictIdleRunnerLocked(r.device)
		s.mu.Unlock()
	}

	initStart := s.clock.Now()
	dctx, err := r.device.Acquire(context.Background())
	if err != nil {
		r.startErr = fmt.Errorf("acquire %s: %w", r.device.ID(), err)
		return
	}
	b.RuntimeInit += s.clock.Now().Sub(initStart)
	r.dctx = dctx
	s.cfg.Logger.Info("runner started", "runner", r.id, "device", r.device.ID())

	// Kernel setup (weight loading, transpilation): a fixed modeled
	// duration independent of the device's compute rate.
	cost, err := k.Cost(&kernels.Request{Params: kernels.Params{}})
	if err == nil && cost.SetupTime > 0 {
		s.clock.Sleep(cost.SetupTime)
		b.Setup += cost.SetupTime
	}
}

// serve executes one invocation on a started runner.
func (s *Server) serve(ctx context.Context, k kernels.Kernel, r *runner, req *kernels.Request, report *Report) (*kernels.Response, error) {
	if req == nil {
		req = &kernels.Request{}
	}
	if req.Params == nil {
		req.Params = kernels.Params{}
	}
	cost, err := k.Cost(req)
	if err != nil {
		return nil, fmt.Errorf("core: cost model: %w", err)
	}

	if cost.DeviceMemory > 0 {
		if err := r.dctx.Alloc(cost.DeviceMemory); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		defer r.dctx.Free(cost.DeviceMemory)
	}

	copyIn, err := r.dctx.Copy(ctx, cost.BytesIn)
	if err != nil {
		return nil, err
	}
	report.Breakdown.CopyIn += copyIn

	execTime, err := r.dctx.Exec(ctx, cost.Work)
	if err != nil {
		return nil, err
	}
	report.Breakdown.Exec += execTime

	var resp *kernels.Response
	s.mu.Lock()
	compute := !s.cfg.DisableCompute
	s.mu.Unlock()
	if compute {
		resp, err = k.Execute(req)
		if err != nil {
			return nil, fmt.Errorf("core: execute: %w", err)
		}
	} else {
		resp = &kernels.Response{Values: map[string]float64{"computed": 0}}
	}

	copyOut, err := r.dctx.Copy(ctx, cost.BytesOut)
	if err != nil {
		return nil, err
	}
	report.Breakdown.CopyOut += copyOut
	return resp, nil
}

// releaseRunner decrements a runner's in-flight count, finishing a drain
// when the runner was replaced mid-flight.
func (s *Server) releaseRunner(e *entry, r *runner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.inflight--
	r.lastUsed = s.clock.Now()
	if r.draining && r.inflight == 0 && !r.removed && runnerStarted(r) {
		r.inflight++ // balance the decrement in removeRunnerLocked
		s.removeRunnerLocked(e, r)
	}
}

// evictIdleRunnerLocked releases one started, idle runner on the given
// device (any kernel) to free a context slot. It reports whether a runner
// was evicted.
func (s *Server) evictIdleRunnerLocked(dev *accel.Device) bool {
	for _, e := range s.entries {
		for _, r := range e.runners {
			if r.removed || r.device != dev || r.inflight != 0 {
				continue
			}
			select {
			case <-r.ready:
			default:
				continue // still starting
			}
			r.inflight++ // balance the decrement in removeRunnerLocked
			s.removeRunnerLocked(e, r)
			s.cfg.Logger.Info("runner evicted for slot pressure",
				"runner", r.id, "device", dev.ID())
			return true
		}
	}
	return false
}

// removeRunner deletes a failed or reaped runner.
func (s *Server) removeRunner(e *entry, r *runner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeRunnerLocked(e, r)
}

func (s *Server) removeRunnerLocked(e *entry, r *runner) {
	if r.removed {
		return
	}
	r.removed = true
	r.inflight--
	s.runnersOn[r.device.ID()]--
	e.runnersOn[r.device.ID()]--
	for i, x := range e.runners {
		if x == r {
			e.runners = append(e.runners[:i], e.runners[i+1:]...)
			break
		}
	}
	if r.dctx != nil {
		r.dctx.Release()
	}
}

// reap releases runners idle beyond the configured timeout — the
// scale-down half of elasticity (§3.3).
func (s *Server) reap() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	now := s.clock.Now()
	type victim struct {
		e *entry
		r *runner
	}
	var victims []victim
	for _, e := range s.entries {
		for _, r := range e.runners {
			if r.inflight == 0 && !r.removed && now.Sub(r.lastUsed) >= s.cfg.RunnerIdleTimeout {
				select {
				case <-r.ready:
					victims = append(victims, victim{e, r})
				default:
					// still starting; skip
				}
			}
		}
	}
	for _, v := range victims {
		v.r.inflight++ // balance the decrement in removeRunnerLocked
		s.removeRunnerLocked(v.e, v.r)
		s.cfg.Logger.Info("idle runner reaped",
			"runner", v.r.id, "device", v.r.device.ID())
	}
	s.scheduleReapLocked()
	s.mu.Unlock()
}

// scheduleReapLocked arms the idle-runner reaper timer.
func (s *Server) scheduleReapLocked() {
	interval := s.cfg.RunnerIdleTimeout / 2
	if interval <= 0 {
		interval = s.cfg.RunnerIdleTimeout
	}
	s.reapTimer = s.clock.AfterFunc(interval, s.reap)
}

// Stats is a snapshot of server state.
type Stats struct {
	// Kernels is the number of registered kernels.
	Kernels int
	// Runners is the number of live task runners.
	Runners int
	// InFlight is the number of invocations currently being served.
	InFlight int
	// ColdStarts counts runner creations.
	ColdStarts int
	// RunnersPerDevice maps device IDs to live runner counts.
	RunnersPerDevice map[string]int
}

// Stats returns current server statistics.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Kernels:          len(s.entries),
		InFlight:         s.inFlight,
		ColdStarts:       s.coldStarts,
		RunnersPerDevice: make(map[string]int, len(s.runnersOn)),
	}
	for _, e := range s.entries {
		st.Runners += len(e.runners)
	}
	for id, n := range s.runnersOn {
		if n > 0 {
			st.RunnersPerDevice[id] = n
		}
	}
	return st
}

// Close shuts the server down, releasing all runners.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.reapTimer != nil {
		s.reapTimer.Stop()
		s.reapTimer = nil
	}
	var ctxs []*accel.Context
	for _, e := range s.entries {
		for _, r := range e.runners {
			if r.removed {
				continue
			}
			r.removed = true
			if r.dctx != nil {
				ctxs = append(ctxs, r.dctx)
			}
		}
		e.runners = nil
	}
	s.mu.Unlock()
	for _, c := range ctxs {
		c.Release()
	}
}

// discardHandler is a slog.Handler that drops every record, used when no
// logger is configured.
type discardHandler struct{}

var _ slog.Handler = discardHandler{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
