package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"kaas/internal/accel"
	"kaas/internal/artifact"
	"kaas/internal/breaker"
	"kaas/internal/kernels"
	"kaas/internal/metrics"
	"kaas/internal/shm"
	"kaas/internal/vclock"
)

// Errors returned by the server.
var (
	// ErrUnknownKernel indicates an invocation of an unregistered kernel.
	ErrUnknownKernel = errors.New("core: unknown kernel")
	// ErrAlreadyRegistered indicates a duplicate registration.
	ErrAlreadyRegistered = errors.New("core: kernel already registered")
	// ErrServerClosed indicates the server has been shut down.
	ErrServerClosed = errors.New("core: server closed")
	// ErrNoDevice indicates the host has no device of the kernel's kind.
	ErrNoDevice = errors.New("core: no device of required kind")
	// ErrOverloaded indicates admission control shed the invocation: the
	// server-wide in-flight cap or the kernel's wait-queue bound was hit,
	// or the caller's remaining deadline cannot cover the expected wait.
	// The request was rejected before consuming capacity and is safe to
	// retry after backoff.
	ErrOverloaded = errors.New("core: overloaded")
	// ErrDraining indicates the server is gracefully shutting down and no
	// longer admits new invocations (in-flight ones still complete).
	ErrDraining = errors.New("core: server draining")
	// ErrUnavailable indicates no device of the kernel's kind can
	// currently be used: every candidate is excluded by an open circuit
	// breaker. Unlike a device failure mid-invocation this is not
	// failover-retried — the breakers already encode that retrying now
	// would fail.
	ErrUnavailable = errors.New("core: no device available")
)

// errColdStartAborted signals that the runner this invocation queued on
// had its cold start abandoned because the spawning invocation's context
// was cancelled; the waiter itself is still live and retries on a fresh
// runner.
var errColdStartAborted = errors.New("core: cold start aborted by another invocation")

// PlacementPolicy selects the device for a new task runner.
type PlacementPolicy int

// Placement policies.
const (
	// PlaceLeastLoaded picks the device of the right kind hosting the
	// fewest runners — the paper's autoscaler behaviour ("start an
	// additional task runner on a new GPU").
	PlaceLeastLoaded PlacementPolicy = iota + 1
	// PlaceRoundRobin cycles through devices per kernel.
	PlaceRoundRobin
	// PlaceFirstFit always picks the first device (the numba default
	// behaviour the paper observes in the baseline).
	PlaceFirstFit
)

// String returns the policy name.
func (p PlacementPolicy) String() string {
	switch p {
	case PlaceLeastLoaded:
		return "least-loaded"
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceFirstFit:
		return "first-fit"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// KeepAlive is the scale-to-zero policy: how long idle runners keep
// their device slots, how often the reaper sweeps, and whether a
// predictive pre-warm pool re-boots runners ahead of forecast demand.
type KeepAlive struct {
	// Idle releases a runner's device slot after this much idle modeled
	// time (0 = retain forever). It generalizes the original
	// RunnerIdleTimeout knob, which is still honored as a fallback.
	Idle time.Duration
	// SweepEvery is the reaper cadence in modeled time (default Idle/2).
	SweepEvery time.Duration
	// PreWarmLead enables predictive pre-warming when positive: after a
	// kernel scales to zero, a runner is booted this much modeled time
	// before the arrival-rate estimator's predicted next demand, so the
	// first real invocation of the new busy period lands warm.
	PreWarmLead time.Duration
}

// Config configures a Server.
type Config struct {
	// Clock is the time source (required).
	Clock vclock.Clock
	// Host supplies the accelerator devices (required).
	Host *accel.Host
	// MaxInFlightPerRunner is the in-flight threshold above which the
	// autoscaler starts another runner. Default 4 (the paper's limit).
	MaxInFlightPerRunner int
	// MaxRunnersPerDevice caps runners placed on one device. Default 1.
	MaxRunnersPerDevice int
	// Placement selects where new runners go. Default PlaceLeastLoaded.
	Placement PlacementPolicy
	// RunnerSpawnCost is the modeled cost of starting a runner process.
	// Default 30 ms.
	RunnerSpawnCost time.Duration
	// RoutingOverhead is the modeled per-invocation cost of request
	// routing and serialization inside the host. Default 2 ms.
	RoutingOverhead time.Duration
	// RunnerIdleTimeout releases runners idle for this long (0 = never).
	// Deprecated alias for KeepAlive.Idle; ignored when that is set.
	RunnerIdleTimeout time.Duration
	// KeepAlive tunes scale-to-zero and predictive pre-warming.
	KeepAlive KeepAlive
	// Artifacts is the content-addressed compiled-kernel cache consulted
	// on every cold start: a miss pays the kernel's modeled JIT compile
	// cost and stores the artifact, a hit skips compilation entirely
	// ("cached-cold"). Nil disables compile-cost modeling, preserving the
	// pre-cache cold-start timing exactly.
	Artifacts *artifact.Cache
	// MaxInFlightTotal caps invocations admitted server-wide; beyond it
	// requests are shed with ErrOverloaded. 0 disables the cap.
	MaxInFlightTotal int
	// MaxQueuePerKernel bounds how many invocations may be in flight per
	// kernel beyond its healthy capacity (eligible devices × runner cap ×
	// in-flight cap); the excess is shed with ErrOverloaded instead of
	// queueing unboundedly. 0 disables the bound.
	MaxQueuePerKernel int
	// BreakerThreshold is the number of consecutive device-failure-class
	// errors that opens a device's circuit breaker, excluding it from
	// placement until a half-open probe succeeds. 0 means the default
	// (3); negative disables breakers entirely.
	BreakerThreshold int
	// BreakerOpenTimeout is how long (modeled time) an open breaker waits
	// before admitting a half-open probe. Default 5s.
	BreakerOpenTimeout time.Duration
	// DisableCompute stops runners from performing the kernel's real
	// host computation (they still charge the modeled device cost).
	// Timing-shape experiments set it so wall-time of host arithmetic
	// does not leak into the scaled modeled timeline; functional use
	// leaves it false.
	DisableCompute bool
	// Logger receives structured lifecycle events (registrations, cold
	// starts, evictions, failovers). Nil disables logging.
	Logger *slog.Logger
	// Metrics is the registry the server feeds per-kernel and per-device
	// counters, gauges, and latency histograms. Nil creates a private
	// registry, readable through Server.Metrics.
	Metrics *metrics.Registry
	// TenantWeights assigns relative fair-share weights to tenants for
	// weighted fair dispatch; tenants not listed (and the "default"
	// tenant legacy peers map to) get weight 1. Setting any tenant knob
	// replaces the flat FCFS admission gate with per-tenant/per-kernel
	// flow queues (see fairness.go).
	TenantWeights map[string]float64
	// MaxInFlightPerTenant caps invocations one tenant may have admitted
	// concurrently; excess requests queue in the tenant's flows (or shed
	// when no queue bound is configured). 0 disables the cap.
	MaxInFlightPerTenant int
	// MaxQueuePerTenant bounds how many invocations one tenant may have
	// queued awaiting fair dispatch; the excess is shed with
	// ErrOverloaded charged to that tenant. 0 leaves the queue unbounded.
	MaxQueuePerTenant int
	// StickinessBound caps how many consecutive dispatches may bypass
	// strict virtual-finish order in favor of a flow with warm runners.
	// 0 means the default (4) when fair queueing is enabled; negative
	// disables stickiness.
	StickinessBound int
	// DisableFairQueueing forces the flat FCFS admission gate even when
	// tenant knobs are set — the baseline arm of the fairness benchmark
	// and the anti-neutering scenario check.
	DisableFairQueueing bool
	// BatchWindow enables server-side micro-batching: invocations of the
	// same kernel targeting the same device that arrive within this
	// modeled-time window are coalesced into one device dispatch, paying
	// the launch overhead once for the whole batch. 0 disables batching.
	BatchWindow time.Duration
	// BatchMax caps how many invocations one batch may carry; a full
	// batch dispatches immediately without waiting out the window.
	// Default 8 when batching is enabled.
	BatchMax int
}

// fairQueueingEnabled reports whether the tenant-aware dispatch layer
// should engage: any tenant knob is set and the explicit FCFS override
// is not.
func (c Config) fairQueueingEnabled() bool {
	if c.DisableFairQueueing {
		return false
	}
	return len(c.TenantWeights) > 0 || c.MaxInFlightPerTenant > 0 ||
		c.MaxQueuePerTenant > 0 || c.StickinessBound > 0
}

// Server is the KaaS control plane for one host.
type Server struct {
	cfg      Config
	clock    vclock.Clock
	reg      *metrics.Registry
	devMet   map[string]*deviceMetrics // immutable after New
	invSeq   atomic.Uint64
	breakers *breaker.Set // nil when breakers are disabled
	batcher  *batcher     // nil when micro-batching is disabled
	dpMet    *dataPlaneMetrics

	// arena is the tensor arena pool published by the TCP layer (via
	// WithArenaPool) so Stats and WriteMetrics can report lease
	// accounting; nil when the out-of-band data plane is off.
	arena atomic.Pointer[shm.ArenaPool]

	// hookMu guards breakerHooks; hooks run on the breaker transition
	// path without Server.mu held.
	hookMu       sync.Mutex
	breakerHooks []func(device string, from, to breaker.State)

	// baseCtx bounds background work (pre-warm boots); cancel fires on
	// Close so speculative cold starts never outlive the server.
	baseCtx   context.Context
	cancel    context.CancelFunc
	prewarmWG sync.WaitGroup

	mu         sync.Mutex
	cond       *sync.Cond // broadcast when inFlight reaches 0 (and on Close)
	entries    map[string]*entry
	tenants    map[string]*tenantState
	fair       *fairQueue // nil when fair queueing is not enabled
	libInit    map[accel.Kind]bool
	runnersOn  map[string]int // device ID -> runner count
	runnerSeq  int
	coldStarts int
	preWarms   int
	inFlight   int
	draining   bool
	closed     bool
	reapTimer  vclock.Timer
}

// entry is the per-kernel state.
type entry struct {
	name   string
	kernel kernels.Kernel
	// met is created lazily on first use (see Server.kernelMet):
	// registration sits on the modeled-time critical path, and building
	// the ~two dozen metric series for a kernel is wall-clock work that
	// would inflate the scaled clock.
	metOnce    sync.Once
	met        *kernelMetrics
	runners    []*runner
	rrNext     int
	lastRunner int
	// runnersOn counts this kernel's runners per device; the per-device
	// runner cap is per kernel, so kernels place independently (device
	// slots still bound total contexts).
	runnersOn map[string]int
	// inFlight counts admitted invocations of this kernel (guarded by
	// Server.mu); admission control bounds it.
	inFlight int
	// ewmaWall and ewmaColdWall track exponentially weighted moving
	// averages of wall-clock invocation time (warm path and cold path,
	// in nanoseconds), feeding the deadline-aware admission estimate.
	// Wall time is used because client deadlines are wall-clock.
	ewmaWall     float64
	ewmaColdWall float64
	// Arrival-rate estimator state behind the predictive pre-warm pool
	// (guarded by Server.mu, all in modeled time). ewmaGap averages the
	// inter-arrival gaps of a busy period; ewmaIdleGap averages only the
	// gaps that exceeded the keepalive window — the "overnight" silences
	// whose end pre-warming tries to beat. lastArrival anchors the next
	// prediction, prewarmedAt stops a reaped speculative runner from
	// being re-booted until real demand returns, and prewarm is the
	// pending boot timer (nil when none).
	ewmaGap     float64
	ewmaIdleGap float64
	lastArrival time.Time
	prewarmedAt time.Time
	prewarm     vclock.Timer
}

// runner is a task runner holding a warm device context.
type runner struct {
	id     string
	device *accel.Device
	dctx   *accel.Context

	ready    chan struct{} // closed when cold start completes
	startErr error
	// cached records that the cold start hit the artifact cache and
	// skipped compilation. Written before ready closes, read after.
	cached bool

	// guarded by Server.mu
	inflight int
	lastUsed time.Time
	removed  bool
	// draining runners finish in-flight work and are then released
	// (set by ReplaceKernel).
	draining bool
}

// New creates a server.
func New(cfg Config) (*Server, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("core: config needs a clock")
	}
	if cfg.Host == nil {
		return nil, fmt.Errorf("core: config needs a host")
	}
	if cfg.MaxInFlightPerRunner <= 0 {
		cfg.MaxInFlightPerRunner = 4
	}
	if cfg.MaxRunnersPerDevice <= 0 {
		cfg.MaxRunnersPerDevice = 1
	}
	if cfg.Placement == 0 {
		cfg.Placement = PlaceLeastLoaded
	}
	if cfg.RunnerSpawnCost == 0 {
		cfg.RunnerSpawnCost = 30 * time.Millisecond
	}
	if cfg.RoutingOverhead == 0 {
		cfg.RoutingOverhead = 2 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.KeepAlive.Idle == 0 {
		cfg.KeepAlive.Idle = cfg.RunnerIdleTimeout
	}
	if cfg.KeepAlive.SweepEvery <= 0 {
		cfg.KeepAlive.SweepEvery = cfg.KeepAlive.Idle / 2
	}
	if cfg.KeepAlive.SweepEvery <= 0 {
		cfg.KeepAlive.SweepEvery = cfg.KeepAlive.Idle
	}
	if cfg.fairQueueingEnabled() && cfg.StickinessBound == 0 {
		cfg.StickinessBound = defaultStickinessBound
	}
	registerHelp(cfg.Metrics)
	s := &Server{
		cfg:       cfg,
		clock:     cfg.Clock,
		reg:       cfg.Metrics,
		devMet:    make(map[string]*deviceMetrics),
		entries:   make(map[string]*entry),
		tenants:   make(map[string]*tenantState),
		libInit:   make(map[accel.Kind]bool),
		runnersOn: make(map[string]int),
	}
	if cfg.fairQueueingEnabled() {
		s.fair = newFairQueue()
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.dpMet = newDataPlaneMetrics(s.reg)
	if cfg.BatchWindow > 0 {
		if cfg.BatchMax <= 1 {
			cfg.BatchMax = 8
			s.cfg.BatchMax = 8
		}
		s.batcher = newBatcher(cfg.Clock, cfg.BatchWindow, cfg.BatchMax, s.baseCtx, s.reg)
	}
	for _, d := range append(cfg.Host.Devices(), cfg.Host.CPU()) {
		s.devMet[d.ID()] = newDeviceMetrics(s.reg, d.ID())
	}
	if cfg.BreakerThreshold >= 0 {
		s.breakers = breaker.NewSet(breaker.Config{
			Clock:        cfg.Clock,
			Threshold:    cfg.BreakerThreshold,
			OpenTimeout:  cfg.BreakerOpenTimeout,
			OnTransition: s.onBreakerTransition,
		})
	}
	if cfg.KeepAlive.Idle > 0 {
		s.scheduleReapLocked()
	}
	return s, nil
}

// onBreakerTransition feeds breaker state changes into metrics and the
// log. It runs with the breaker unlocked; it must not take Server.mu
// (breakers are consulted under it).
func (s *Server) onBreakerTransition(dev string, from, to breaker.State) {
	if dm := s.devMet[dev]; dm != nil {
		dm.breakerState.Set(int64(to))
		if c := dm.breakerTransitions[to]; c != nil {
			c.Inc()
		}
	}
	s.cfg.Logger.Warn("breaker transition",
		"device", dev, "from", from.String(), "to", to.String())
	s.hookMu.Lock()
	hooks := s.breakerHooks // append-only: a snapshot is safe to iterate
	s.hookMu.Unlock()
	for _, fn := range hooks {
		fn(dev, from, to)
	}
}

// OnBreakerTransition registers fn to observe every circuit-breaker
// state change. Hooks run synchronously on the transition path with no
// Server locks held, so they may call back into the server but must be
// quick. The TCP layer uses it to revoke arena leases when a device
// breaker opens.
func (s *Server) OnBreakerTransition(fn func(device string, from, to breaker.State)) {
	s.hookMu.Lock()
	s.breakerHooks = append(s.breakerHooks, fn)
	s.hookMu.Unlock()
}

// setArena publishes the tensor arena pool backing the out-of-band data
// plane so Stats and WriteMetrics can report its accounting.
func (s *Server) setArena(p *shm.ArenaPool) { s.arena.Store(p) }

// deviceEligibleLocked reports whether placement may consider the device:
// it is not currently failed and its breaker would admit a request.
func (s *Server) deviceEligibleLocked(d *accel.Device) bool {
	if d.Failed() {
		return false
	}
	return s.breakers == nil || s.breakers.Eligible(d.ID())
}

// claimDeviceLocked claims breaker admission for a placement on the
// device (this is what converts an elapsed open timeout into the single
// half-open probe). With breakers disabled it always succeeds.
func (s *Server) claimDeviceLocked(d *accel.Device) bool {
	return s.breakers == nil || s.breakers.Allow(d.ID())
}

// recordDeviceOutcome feeds an invocation's result on a device into its
// breaker: device-failure-class errors count toward opening it, success
// closes it. Other errors (context cancellation, kernel bugs) say nothing
// about device health and are ignored.
func (s *Server) recordDeviceOutcome(dev string, err error) {
	if s.breakers == nil {
		return
	}
	switch {
	case err == nil:
		s.breakers.RecordSuccess(dev)
	case errors.Is(err, accel.ErrDeviceFailed):
		s.breakers.RecordFailure(dev)
	}
}

// Logger returns the server's structured logger (never nil; a discarding
// logger when none was configured).
func (s *Server) Logger() *slog.Logger { return s.cfg.Logger }

// Metrics returns the registry the server feeds.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// SetComputeResults toggles real host computation of kernel results.
func (s *Server) SetComputeResults(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.DisableCompute = !on
}

// Register deploys a kernel on the server. Registration initializes the
// kernel's host framework (numba, TensorFlow, ...) once per device kind —
// this is why a KaaS cold start is cheaper than a fresh baseline process
// (§5.1): the library is already warm when the first runner spawns.
func (s *Server) Register(k kernels.Kernel) error {
	if k == nil {
		return fmt.Errorf("core: nil kernel")
	}
	kind := k.Kind()
	if len(s.cfg.Host.DevicesByKind(kind)) == 0 {
		return fmt.Errorf("%w: %s for kernel %q", ErrNoDevice, kind, k.Name())
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if _, ok := s.entries[k.Name()]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrAlreadyRegistered, k.Name())
	}
	needLibInit := !s.libInit[kind]
	s.libInit[kind] = true
	s.entries[k.Name()] = &entry{
		name:      k.Name(),
		kernel:    k,
		runnersOn: make(map[string]int),
	}
	s.mu.Unlock()

	if needLibInit {
		s.clock.Sleep(s.libraryInitCost(kind))
	}
	s.cfg.Logger.Info("kernel registered", "kernel", k.Name(), "kind", kind.String())
	return nil
}

// libraryInitCost reads the library-init cost from the kind's device
// profile.
func (s *Server) libraryInitCost(kind accel.Kind) time.Duration {
	devs := s.cfg.Host.DevicesByKind(kind)
	if len(devs) == 0 {
		return 0
	}
	return devs[0].Profile().LibraryInit
}

// kernelMet returns the entry's cached metric instances, creating them on
// first use.
func (s *Server) kernelMet(e *entry) *kernelMetrics {
	e.metOnce.Do(func() { e.met = newKernelMetrics(s.reg, e.name) })
	return e.met
}

// Kernels returns the registered kernel names.
func (s *Server) Kernels() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.entries))
	for name := range s.entries {
		names = append(names, name)
	}
	return names
}

// Invoke routes one invocation to a warm or new runner and returns the
// kernel response plus a report of how it was served.
//
// A device failure mid-invocation retires the failed runner and retries
// on whatever healthy capacity remains, at most once per device of the
// kernel's kind; when every retry budget is spent the invocation fails
// with an error wrapping accel.ErrDeviceFailed. The retries' modeled time
// accumulates into the returned report.
func (s *Server) Invoke(ctx context.Context, name string, req *kernels.Request) (*kernels.Response, *Report, error) {
	wallStart := time.Now()
	tenant := DefaultTenant
	if req != nil {
		tenant = NormalizeTenant(req.Tenant)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrServerClosed
	}
	e, ok := s.entries[name]
	if !ok {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownKernel, name)
	}
	t := s.tenantLocked(tenant)
	kind := e.kernel.Kind()

	var queued time.Duration
	if s.fair != nil {
		w, reason, err := s.fair.enqueueLocked(s, ctx, e, t)
		s.mu.Unlock()
		if err != nil {
			if reason != "" {
				s.shedObserved(e, t, reason)
			}
			return nil, nil, err
		}
		if err := w.await(ctx, s, e, t); err != nil {
			return nil, nil, err
		}
		queued = w.waited
	} else {
		if reason, err := s.admitLocked(ctx, e); err != nil {
			s.mu.Unlock()
			if reason != "" {
				s.shedObserved(e, t, reason)
			}
			return nil, nil, err
		}
		s.admitOneLocked(e, t)
		s.mu.Unlock()
	}

	met := s.kernelMet(e)
	tm := s.tenantMet(t)
	met.invocations.Inc()
	tm.admitted.Inc()
	met.inFlight.Inc()
	tm.inFlight.Inc()
	defer func() {
		met.inFlight.Dec()
		tm.inFlight.Dec()
		s.mu.Lock()
		s.inFlight--
		e.inFlight--
		t.inFlight--
		if s.fair != nil {
			// A slot freed: hand it to the fair dispatcher.
			s.fair.dispatchLocked(s)
		}
		if s.inFlight == 0 {
			s.cond.Broadcast() // wake Drain waiters
		}
		s.mu.Unlock()
	}()

	report := &Report{
		InvocationID: fmt.Sprintf("inv-%d", s.invSeq.Add(1)),
		Kernel:       name,
	}
	report.Breakdown.Queue += queued
	// One attempt per device of the kind on top of the first, so a
	// flapping device cannot keep an invocation bouncing forever.
	maxAttempts := 1 + len(s.cfg.Host.DevicesByKind(kind))

	var resp *kernels.Response
	var err error
	for attempt := 1; ; attempt++ {
		report.Attempts = attempt
		resp, err = s.invokeOnce(ctx, e, t, req, report)
		if err == nil || ctx.Err() != nil {
			break
		}
		// ErrContextReleased is the same failure seen by a sibling: when a
		// device dies with several invocations in flight on one runner, the
		// first to observe ErrDeviceFailed removes the runner and releases
		// its device context, and the others' in-flight ops then fail with
		// the released-context error. Both retry on remaining capacity; only
		// ErrDeviceFailed is breaker evidence (recordDeviceOutcome).
		failover := errors.Is(err, accel.ErrDeviceFailed) ||
			errors.Is(err, accel.ErrContextReleased)
		if !failover && !errors.Is(err, errColdStartAborted) {
			break
		}
		if attempt >= maxAttempts {
			err = fmt.Errorf("core: failover exhausted after %d attempts for %q: %w",
				attempt, name, err)
			break
		}
		if failover {
			met.failovers.Inc()
			// A failed-over invocation pays (at least part of) a cold
			// start, matching how the evaluation classifies it.
			report.Cold = true
		}
	}
	if err != nil {
		met.errors.Inc()
		return nil, nil, err
	}
	met.observe(report.Cold, report.CachedCold, report.Breakdown)
	tm.latency.Observe(report.Breakdown.Total())
	s.observeWallTime(e, report.Cold, time.Since(wallStart))
	return resp, report, nil
}

// ewmaAlpha weights the most recent observation in the wall-time moving
// averages behind deadline-aware admission.
const ewmaAlpha = 0.5

// observeWallTime folds one completed invocation's wall-clock duration
// into the kernel's moving averages.
func (s *Server) observeWallTime(e *entry, cold bool, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := float64(d)
	if e.ewmaWall == 0 {
		e.ewmaWall = v
	} else {
		e.ewmaWall = ewmaAlpha*v + (1-ewmaAlpha)*e.ewmaWall
	}
	if cold {
		if e.ewmaColdWall == 0 {
			e.ewmaColdWall = v
		} else {
			e.ewmaColdWall = ewmaAlpha*v + (1-ewmaAlpha)*e.ewmaColdWall
		}
	}
}

// observeArrivalLocked folds one admitted invocation into the kernel's
// arrival-rate estimator. Gaps shorter than the keepalive window update
// the in-period EWMA; longer gaps are the idle periods whose length the
// pre-warm predictor learns. Real demand also cancels any pending
// speculative boot — the arrival itself will warm the pool.
func (s *Server) observeArrivalLocked(e *entry) {
	now := s.clock.Now()
	if !e.lastArrival.IsZero() {
		gap := float64(now.Sub(e.lastArrival))
		if idle := s.cfg.KeepAlive.Idle; idle > 0 && gap >= float64(idle) {
			if e.ewmaIdleGap == 0 {
				e.ewmaIdleGap = gap
			} else {
				e.ewmaIdleGap = ewmaAlpha*gap + (1-ewmaAlpha)*e.ewmaIdleGap
			}
		} else if gap > 0 {
			if e.ewmaGap == 0 {
				e.ewmaGap = gap
			} else {
				e.ewmaGap = ewmaAlpha*gap + (1-ewmaAlpha)*e.ewmaGap
			}
		}
	}
	e.lastArrival = now
	if e.prewarm != nil {
		e.prewarm.Stop()
		e.prewarm = nil
	}
}

// schedulePreWarmLocked arms a speculative runner boot for a kernel that
// just scaled to zero. The predicted next arrival is the last real
// arrival plus the learned idle-gap EWMA; the boot fires PreWarmLead
// ahead of it so the runner is warm when the busy period resumes. No
// prediction is made until at least one full idle gap has been observed
// (the first night is always paid cold), and a kernel is pre-warmed at
// most once per real arrival so a speculative runner that found no
// demand is not re-booted in a warm/reap loop that would burn the very
// device-seconds scale-to-zero exists to save.
func (s *Server) schedulePreWarmLocked(e *entry) {
	if s.cfg.KeepAlive.PreWarmLead <= 0 || s.draining || s.closed {
		return
	}
	if e.ewmaIdleGap == 0 || !e.prewarmedAt.Before(e.lastArrival) {
		return
	}
	eta := e.lastArrival.Add(time.Duration(e.ewmaIdleGap)).Sub(s.clock.Now()) - s.cfg.KeepAlive.PreWarmLead
	if eta < 0 {
		// The predicted arrival is already past: the estimator has no
		// basis for a boot now being useful, so stay scaled to zero.
		return
	}
	if e.prewarm != nil {
		e.prewarm.Stop()
	}
	e.prewarm = s.clock.AfterFunc(eta, func() {
		// Cold starts sleep modeled time; hand off so the clock's
		// dispatcher is not blocked. The Add is ordered against Close's
		// closed flag under the lock, so a timer that beats its Stop can
		// never race the Close-side Wait at a zero counter.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.prewarmWG.Add(1)
		s.mu.Unlock()
		go s.preWarm(e)
	})
}

// preWarm speculatively boots one runner for a scaled-to-zero kernel.
// The boot follows the normal cold-start path (artifact cache included),
// then releases its claim so the runner sits warm and idle; if demand
// never materializes the regular keepalive reaper retires it.
func (s *Server) preWarm(e *entry) {
	defer s.prewarmWG.Done()
	s.mu.Lock()
	e.prewarm = nil
	if s.closed || s.draining || len(e.runners) > 0 {
		s.mu.Unlock()
		return
	}
	k := e.kernel
	dev := s.placeLocked(e)
	if dev == nil {
		s.mu.Unlock()
		return
	}
	r := s.newRunnerLocked(e, dev)
	e.prewarmedAt = s.clock.Now()
	s.preWarms++
	s.mu.Unlock()

	met := s.kernelMet(e)
	met.preWarms.Inc()
	inv := fmt.Sprintf("prewarm-%d", s.invSeq.Add(1))
	s.cfg.Logger.Info("pre-warming runner", "inv", inv, "kernel", e.name, "runner", r.id)
	var b metrics.Breakdown
	s.coldStart(s.baseCtx, inv, e, k, r, &b)
	if r.startErr != nil {
		s.removeRunner(e, r)
		s.recordDeviceOutcome(r.device.ID(), r.startErr)
		return
	}
	s.releaseRunner(e, r)
}

// admitLocked applies admission control to one invocation before any
// capacity is consumed. It returns a nil error to admit, or the typed
// rejection plus a shed-reason label for metrics ("" when the rejection
// is not a shed, e.g. draining).
func (s *Server) admitLocked(ctx context.Context, e *entry) (string, error) {
	if s.draining {
		return "draining", ErrDraining
	}
	if s.cfg.MaxInFlightTotal > 0 && s.inFlight >= s.cfg.MaxInFlightTotal {
		return "in_flight_cap", fmt.Errorf("%w: %d invocations in flight (cap %d)",
			ErrOverloaded, s.inFlight, s.cfg.MaxInFlightTotal)
	}
	if s.cfg.MaxQueuePerKernel > 0 {
		healthy := s.healthyCapacityLocked(e)
		if e.inFlight >= healthy+s.cfg.MaxQueuePerKernel {
			return "queue_full", fmt.Errorf("%w: kernel %q has %d in flight (capacity %d + queue bound %d)",
				ErrOverloaded, e.name, e.inFlight, healthy, s.cfg.MaxQueuePerKernel)
		}
	}
	// Deadline-aware shedding: if the caller cannot possibly get an
	// answer within its deadline, reject now instead of burning capacity
	// on work whose result nobody will read. Only applies when admission
	// control is configured — the estimate is heuristic and must not
	// affect servers running with unbounded admission.
	if s.cfg.MaxInFlightTotal > 0 || s.cfg.MaxQueuePerKernel > 0 {
		if dl, ok := ctx.Deadline(); ok {
			if est := s.estimateWaitLocked(e); est > 0 && time.Until(dl) < est {
				return "deadline", fmt.Errorf("%w: expected wait %v exceeds remaining deadline %v",
					ErrOverloaded, est.Round(time.Millisecond),
					time.Until(dl).Round(time.Millisecond))
			}
		}
	}
	return "", nil
}

// healthyCapacityLocked estimates how many invocations of e the placement
// layer can serve concurrently: eligible devices of the kind times the
// per-device runner cap times the per-runner in-flight threshold.
func (s *Server) healthyCapacityLocked(e *entry) int {
	eligible := 0
	for _, d := range s.cfg.Host.DevicesByKind(e.kernel.Kind()) {
		if s.deviceEligibleLocked(d) {
			eligible++
		}
	}
	return eligible * s.cfg.MaxRunnersPerDevice * s.cfg.MaxInFlightPerRunner
}

// estimateWaitLocked predicts (in wall time) how long a new invocation of
// e will take to complete, from the kernel's observed moving averages: a
// cold start when no runner exists yet, plus queueing behind the
// invocations already in flight. Returns 0 when there is no history to
// estimate from (admission then defers to the queue bounds alone).
func (s *Server) estimateWaitLocked(e *entry) time.Duration {
	capacity := s.healthyCapacityLocked(e)
	if capacity <= 0 {
		return 0
	}
	var est float64
	if len(e.runners) == 0 {
		est += e.ewmaColdWall
	}
	if e.ewmaWall > 0 {
		// Number of completion "waves" ahead of this request, including
		// its own service time.
		waves := float64(e.inFlight)/float64(capacity) + 1
		est += waves * e.ewmaWall
	}
	return time.Duration(est)
}

// invokeOnce performs one placement attempt of an invocation,
// accumulating modeled time into the report.
func (s *Server) invokeOnce(ctx context.Context, e *entry, t *tenantState, req *kernels.Request, report *Report) (*kernels.Response, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	// Dispatch-time capacity recheck: admission compared the kernel's
	// backlog against healthy capacity when the invocation arrived, but a
	// breaker can open (or every device of the kind fail) while it sat
	// queued. Re-reading the capacity here keeps a mid-queue breaker open
	// from piling admitted work onto a kernel with zero eligible devices;
	// the shed is typed and charged like any other admission rejection.
	if s.cfg.MaxQueuePerKernel > 0 && s.healthyCapacityLocked(e) == 0 {
		s.mu.Unlock()
		s.shedObserved(e, t, "capacity_lost")
		return nil, fmt.Errorf("%w: kernel %q lost every eligible %s device after admission",
			ErrOverloaded, e.name, e.kernel.Kind())
	}
	// Snapshot the implementation: ReplaceKernel may swap e.kernel while
	// this invocation is in flight.
	k := e.kernel
	r, spawner := s.selectRunnerLocked(e)
	s.mu.Unlock()
	if r == nil {
		// Every device of the kind is excluded by an open breaker; there
		// is nowhere to even queue this invocation.
		return nil, fmt.Errorf("%w: every %s device's breaker is open for %q",
			ErrUnavailable, k.Kind(), e.name)
	}

	report.Runner = r.id

	// Modeled request routing cost.
	s.clock.Sleep(s.cfg.RoutingOverhead)
	report.Breakdown.Other += s.cfg.RoutingOverhead

	if spawner {
		report.Cold = true
		s.coldStart(ctx, report.InvocationID, e, k, r, &report.Breakdown)
		report.CachedCold = r.cached
	} else {
		// Wait for the runner to finish starting if necessary.
		waitStart := s.clock.Now()
		s.kernelMet(e).queueDepth.Inc()
		select {
		case <-r.ready:
			s.kernelMet(e).queueDepth.Dec()
		case <-ctx.Done():
			s.kernelMet(e).queueDepth.Dec()
			s.releaseRunner(e, r)
			return nil, ctx.Err()
		}
		report.Breakdown.Queue += s.clock.Now().Sub(waitStart)
	}
	if r.startErr != nil {
		err := r.startErr
		s.removeRunner(e, r)
		if spawner {
			// Only the spawner reports the cold-start outcome to the
			// breaker: one failed start is one piece of evidence, no
			// matter how many invocations were queued on the runner.
			s.recordDeviceOutcome(r.device.ID(), err)
		}
		if !spawner && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The spawner's context expired and took the cold start with
			// it; this waiter is still live and deserves a fresh runner.
			return nil, errColdStartAborted
		}
		return nil, fmt.Errorf("core: runner start: %w", err)
	}

	resp, err := s.serve(ctx, k, r, req, report)
	s.releaseRunner(e, r)
	s.recordDeviceOutcome(r.device.ID(), err)
	if err != nil {
		if errors.Is(err, accel.ErrDeviceFailed) {
			// The runner's device failed: retire the runner; the Invoke
			// loop retries on whatever healthy capacity remains.
			s.cfg.Logger.Warn("device failure, failing over",
				"inv", report.InvocationID, "kernel", report.Kernel,
				"runner", r.id, "device", r.device.ID())
			s.retireRunner(e, r)
		}
		return nil, err
	}
	report.Device = r.device.ID()
	return resp, nil
}

// selectRunnerLocked picks a runner for a new invocation, creating one if
// the autoscaling policy calls for it. It returns the runner and whether
// the caller is responsible for its cold start.
func (s *Server) selectRunnerLocked(e *entry) (*runner, bool) {
	// Prefer the least-loaded existing runner under the in-flight cap,
	// breaking ties by rotating through the pool so load (and therefore
	// devices) is allocated evenly, as the paper observes for KaaS.
	var best *runner
	n := len(e.runners)
	for i := 0; i < n; i++ {
		r := e.runners[(e.lastRunner+1+i)%n]
		if r.removed || r.draining {
			continue
		}
		if r.inflight < s.cfg.MaxInFlightPerRunner && (best == nil || r.inflight < best.inflight) {
			best = r
		}
	}
	if best != nil {
		best.inflight++
		s.setLastRunnerLocked(e, best)
		return best, false
	}

	// All runners saturated: scale out if a device has capacity.
	if dev := s.placeLocked(e); dev != nil {
		return s.newRunnerLocked(e, dev), true
	}

	// No capacity for new runners: overbook the least-loaded one,
	// rotating through ties so saturated pools still spread load. The
	// in-flight limit is a scaling trigger, not an admission limit
	// (§5.5: the GPU can take more parallel work than the threshold).
	for i := 0; i < n; i++ {
		r := e.runners[(e.lastRunner+1+i)%n]
		if r.removed || r.draining {
			continue
		}
		if best == nil || r.inflight < best.inflight {
			best = r
		}
	}
	if best == nil {
		// No runner exists and no device capacity: create one anyway on
		// the overall least-loaded device so the invocation can queue on
		// the device slot instead of failing. A nil device means every
		// device of the kind is behind an open breaker — the caller
		// surfaces ErrUnavailable.
		dev := s.leastLoadedDeviceLocked(e)
		if dev == nil {
			return nil, false
		}
		return s.newRunnerLocked(e, dev), true
	}
	best.inflight++
	s.setLastRunnerLocked(e, best)
	return best, false
}

// setLastRunnerLocked records the rotation point for tie-breaking.
func (s *Server) setLastRunnerLocked(e *entry, picked *runner) {
	for i, r := range e.runners {
		if r == picked {
			e.lastRunner = i
			return
		}
	}
}

// newRunnerLocked creates a runner on dev with one in-flight invocation —
// the caller becomes its spawner.
func (s *Server) newRunnerLocked(e *entry, dev *accel.Device) *runner {
	s.runnerSeq++
	r := &runner{
		id:       fmt.Sprintf("runner-%d", s.runnerSeq),
		device:   dev,
		ready:    make(chan struct{}),
		inflight: 1,
		lastUsed: s.clock.Now(),
	}
	e.runners = append(e.runners, r)
	s.runnersOn[dev.ID()]++
	e.runnersOn[dev.ID()]++
	// Cold starts are counted at completion (see coldStart), not here:
	// counting at creation double-charged a kernel when an aborted cold
	// start's waiter retried on a fresh runner.
	if dm := s.devMet[dev.ID()]; dm != nil {
		dm.runners.Inc()
	}
	return r
}

// placeLocked returns the device for a new runner, or nil if every device
// of the kind is at its runner cap.
func (s *Server) placeLocked(e *entry) *accel.Device {
	devs := s.cfg.Host.DevicesByKind(e.kernel.Kind())
	if len(devs) == 0 {
		return nil
	}
	switch s.cfg.Placement {
	case PlaceFirstFit:
		if s.deviceEligibleLocked(devs[0]) &&
			e.runnersOn[devs[0].ID()] < s.cfg.MaxRunnersPerDevice &&
			s.claimDeviceLocked(devs[0]) {
			return devs[0]
		}
		return nil
	case PlaceRoundRobin:
		for i := 0; i < len(devs); i++ {
			d := devs[(e.rrNext+i)%len(devs)]
			if s.deviceEligibleLocked(d) &&
				e.runnersOn[d.ID()] < s.cfg.MaxRunnersPerDevice &&
				s.claimDeviceLocked(d) {
				e.rrNext = (e.rrNext + i + 1) % len(devs)
				return d
			}
		}
		return nil
	default: // PlaceLeastLoaded
		var best *accel.Device
		for _, d := range devs {
			if !s.deviceEligibleLocked(d) || e.runnersOn[d.ID()] >= s.cfg.MaxRunnersPerDevice {
				continue
			}
			if best == nil || e.runnersOn[d.ID()] < e.runnersOn[best.ID()] {
				best = d
			}
		}
		if best != nil && !s.claimDeviceLocked(best) {
			// Lost the half-open probe race; treat as no capacity.
			return nil
		}
		return best
	}
}

// leastLoadedDeviceLocked returns the device of the entry's kind with the
// fewest of this kernel's runners, ignoring the per-device runner cap but
// honoring open circuit breakers (a breaker-excluded device is skipped; a
// merely failed one is still a legal last resort, so the invocation fails
// with a device error rather than queueing — and feeds the breaker). It
// returns nil only when every device is breaker-excluded. The caller
// guarantees at least one device of the kind exists (checked at
// Register).
func (s *Server) leastLoadedDeviceLocked(e *entry) *accel.Device {
	var best *accel.Device
	for _, d := range s.cfg.Host.DevicesByKind(e.kernel.Kind()) {
		if s.breakers != nil && !s.breakers.Eligible(d.ID()) {
			continue
		}
		switch {
		case best == nil:
			best = d
		case best.Failed() && !d.Failed():
			best = d
		case !d.Failed() && e.runnersOn[d.ID()] < e.runnersOn[best.ID()]:
			best = d
		}
	}
	if best != nil && !s.claimDeviceLocked(best) {
		return nil
	}
	return best
}

// coldStart brings a new runner up: spawn the host process, create the
// device context (RuntimeInit), and run kernel setup work. The caller's
// context bounds the whole sequence, so a cancelled client stops paying
// for spawn and never blocks on a saturated device; the abandoned runner
// is surfaced to waiters through startErr. If the target device has no
// free context slot, an idle runner of another kernel is evicted first so
// single-slot devices (FPGAs) can serve multiple registered kernels
// without deadlocking.
func (s *Server) coldStart(ctx context.Context, inv string, e *entry, k kernels.Kernel, r *runner, b *metrics.Breakdown) {
	defer close(r.ready)

	if err := ctx.Err(); err != nil {
		r.startErr = err
		return
	}
	s.clock.Sleep(s.cfg.RunnerSpawnCost)
	b.Spawn += s.cfg.RunnerSpawnCost

	initStart := s.clock.Now()
	dctx, err := s.acquireSlot(ctx, r.device)
	if err != nil {
		r.startErr = fmt.Errorf("acquire %s: %w", r.device.ID(), err)
		return
	}
	b.RuntimeInit += s.clock.Now().Sub(initStart)
	r.dctx = dctx
	s.cfg.Logger.Info("runner started", "inv", inv, "runner", r.id, "device", r.device.ID())

	// JIT compilation against the artifact cache: a hit means some
	// runner (here or on a linked peer host) already compiled this
	// kernel for this device kind, and the boot proceeds straight to
	// setup ("cached-cold"); a miss pays the modeled compile cost and
	// publishes the artifact.
	if c := s.cfg.Artifacts; c != nil {
		compile, size := kernels.CompileProfile(k)
		key := artifact.KeyFor(k.Name(), k.Kind().String(), compile.String())
		met := s.kernelMet(e)
		if c.Lookup(key) != nil {
			r.cached = true
			met.cacheHits.Inc()
		} else {
			met.cacheMisses.Inc()
			s.clock.Sleep(compile)
			b.Compile += compile
			c.Store(&artifact.Artifact{
				Key:         key,
				Kernel:      k.Name(),
				Kind:        k.Kind().String(),
				Size:        size,
				CompileCost: compile,
			})
		}
	}

	// Kernel setup (weight loading, transpilation): a fixed modeled
	// duration independent of the device's compute rate.
	cost, err := k.Cost(&kernels.Request{Params: kernels.Params{}})
	if err == nil && cost.SetupTime > 0 {
		s.clock.Sleep(cost.SetupTime)
		b.Setup += cost.SetupTime
	}

	// The runner is up: this — not runner creation — is when a cold
	// start is charged, so an aborted boot whose waiter respawned is one
	// cold start, not two.
	s.mu.Lock()
	s.coldStarts++
	s.mu.Unlock()
	s.kernelMet(e).coldStarts.Inc()
}

// evictRetrySlice bounds how long a blocked cold start waits on a
// saturated device before re-checking for an evictable idle runner. It
// makes slot acquisition race-free without holding the server lock
// across the blocking wait: two concurrent cold starts on a single-slot
// device may both pass the pressure check and find only one evictable
// runner, but the loser retries its eviction instead of blocking
// forever.
//
// Device occupancy advances in modeled time, so the retry slice is a
// modeled duration converted to the wall-clock timeout dev.Acquire
// needs. The original constant was 2ms of wall time, which at the
// default test scale of 5000 quantized the re-check to 10 modeled
// seconds — a blocked cold start could idle for ~10 modeled seconds
// after the contended slot's holder had already gone idle.
const evictRetrySliceModeled = 25 * time.Millisecond

// evictRetrySliceFloor keeps the wall slice from collapsing to a busy
// spin on highly scaled clocks, and stands in entirely on clocks with no
// wall conversion (Manual returns scale 0).
const evictRetrySliceFloor = 50 * time.Microsecond

// evictRetrySlice converts the modeled retry slice to wall time for the
// server's clock.
func (s *Server) evictRetrySlice() time.Duration {
	if scale := s.clock.Scale(); scale > 0 {
		if d := time.Duration(float64(evictRetrySliceModeled) / scale); d > evictRetrySliceFloor {
			return d
		}
	}
	return evictRetrySliceFloor
}

// acquireSlot obtains a device context for a cold start, evicting idle
// runners under slot pressure and retrying the eviction for as long as
// the caller's context allows.
func (s *Server) acquireSlot(ctx context.Context, dev *accel.Device) (*accel.Context, error) {
	dm := s.devMet[dev.ID()]
	if dm != nil {
		dm.queueDepth.Inc()
		defer dm.queueDepth.Dec()
	}
	for {
		if st := dev.Stats(); st.ActiveContexts >= dev.Profile().Slots {
			s.mu.Lock()
			s.evictIdleRunnerLocked(dev)
			s.mu.Unlock()
		}
		actx, cancel := context.WithTimeout(ctx, s.evictRetrySlice())
		dctx, err := dev.Acquire(actx)
		cancel()
		if err == nil {
			return dctx, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		if errors.Is(err, context.DeadlineExceeded) {
			continue // every slot still held: re-check for an evictable runner
		}
		return nil, err
	}
}

// serve executes one invocation on a started runner.
func (s *Server) serve(ctx context.Context, k kernels.Kernel, r *runner, req *kernels.Request, report *Report) (*kernels.Response, error) {
	if req == nil {
		req = &kernels.Request{}
	}
	if req.Params == nil {
		req.Params = kernels.Params{}
	}
	cost, err := k.Cost(req)
	if err != nil {
		return nil, fmt.Errorf("core: cost model: %w", err)
	}

	if cost.DeviceMemory > 0 {
		if err := r.dctx.Alloc(cost.DeviceMemory); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		defer r.dctx.Free(cost.DeviceMemory)
	}

	copyIn, err := r.dctx.Copy(ctx, cost.BytesIn)
	if err != nil {
		return nil, err
	}
	report.Breakdown.CopyIn += copyIn

	var execTime time.Duration
	if s.batcher != nil {
		// Micro-batching: join the forming batch for this (device, kernel)
		// bucket and share one coalesced launch with whoever else arrives
		// inside the window.
		execTime, err = s.batcher.exec(ctx, batchKey{device: r.device.ID(), kernel: k.Name()}, r.dctx, cost.Work)
	} else {
		execTime, err = r.dctx.Exec(ctx, cost.Work)
	}
	if err != nil {
		return nil, err
	}
	report.Breakdown.Exec += execTime

	var resp *kernels.Response
	s.mu.Lock()
	compute := !s.cfg.DisableCompute
	s.mu.Unlock()
	if compute {
		resp, err = k.Execute(req)
		if err != nil {
			return nil, fmt.Errorf("core: execute: %w", err)
		}
	} else {
		resp = &kernels.Response{Values: map[string]float64{"computed": 0}}
	}

	copyOut, err := r.dctx.Copy(ctx, cost.BytesOut)
	if err != nil {
		return nil, err
	}
	report.Breakdown.CopyOut += copyOut
	return resp, nil
}

// releaseRunner decrements a runner's in-flight count, finishing a drain
// when the runner was replaced mid-flight.
func (s *Server) releaseRunner(e *entry, r *runner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.inflight--
	r.lastUsed = s.clock.Now()
	if r.draining && r.inflight == 0 && !r.removed && runnerStarted(r) {
		r.inflight++ // balance the decrement in removeRunnerLocked
		s.removeRunnerLocked(e, r)
	}
}

// evictIdleRunnerLocked releases one started, idle runner on the given
// device (any kernel) to free a context slot. It reports whether a runner
// was evicted.
func (s *Server) evictIdleRunnerLocked(dev *accel.Device) bool {
	for _, e := range s.entries {
		for _, r := range e.runners {
			if r.removed || r.device != dev || r.inflight != 0 {
				continue
			}
			select {
			case <-r.ready:
			default:
				continue // still starting
			}
			r.inflight++ // balance the decrement in removeRunnerLocked
			s.removeRunnerLocked(e, r)
			if dm := s.devMet[dev.ID()]; dm != nil {
				dm.evictions.Inc()
			}
			s.cfg.Logger.Info("runner evicted for slot pressure",
				"runner", r.id, "device", dev.ID())
			return true
		}
	}
	return false
}

// removeRunner deletes a failed runner on behalf of a caller that still
// holds an in-flight claim on it; the claim is consumed either way, so
// several waiters of one failed cold start can all call it and the
// runner's in-flight accounting still ends exactly at zero.
func (s *Server) removeRunner(e *entry, r *runner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.removed {
		r.inflight--
		return
	}
	s.removeRunnerLocked(e, r)
}

// retireRunner deletes a runner on behalf of a caller that has already
// released its claim (the failover path: releaseRunner runs before the
// error is inspected). Without the balancing increment the removal
// stole a surviving sibling's claim, driving the runner's in-flight
// count negative — the accounting drift that lets an idle-runner sweep
// mistake a claimed runner for reapable.
func (s *Server) retireRunner(e *entry, r *runner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.removed {
		return
	}
	r.inflight++ // balance the decrement in removeRunnerLocked
	s.removeRunnerLocked(e, r)
}

func (s *Server) removeRunnerLocked(e *entry, r *runner) {
	if r.removed {
		return
	}
	r.removed = true
	r.inflight--
	s.runnersOn[r.device.ID()]--
	e.runnersOn[r.device.ID()]--
	if dm := s.devMet[r.device.ID()]; dm != nil {
		dm.runners.Dec()
	}
	for i, x := range e.runners {
		if x == r {
			e.runners = append(e.runners[:i], e.runners[i+1:]...)
			break
		}
	}
	if r.dctx != nil {
		r.dctx.Release()
	}
}

// reap releases runners idle beyond the configured timeout — the
// scale-down half of elasticity (§3.3).
func (s *Server) reap() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	now := s.clock.Now()
	type victim struct {
		e *entry
		r *runner
	}
	var victims []victim
	for _, e := range s.entries {
		for _, r := range e.runners {
			if r.inflight == 0 && !r.removed && now.Sub(r.lastUsed) >= s.cfg.KeepAlive.Idle {
				select {
				case <-r.ready:
					victims = append(victims, victim{e, r})
				default:
					// still starting; skip
				}
			}
		}
	}
	for _, v := range victims {
		// Re-check at removal time. Selection and removal run under one
		// continuous lock hold today, but the claim interlock — a runner
		// picked for reaping in the same tick an invocation claims it
		// must keep its device context — must not depend on that staying
		// true, so the removal re-verifies the runner is still idle.
		if v.r.removed || v.r.inflight != 0 {
			continue
		}
		v.r.inflight++ // balance the decrement in removeRunnerLocked
		s.removeRunnerLocked(v.e, v.r)
		if dm := s.devMet[v.r.device.ID()]; dm != nil {
			dm.reaps.Inc()
		}
		s.cfg.Logger.Info("idle runner reaped",
			"runner", v.r.id, "device", v.r.device.ID())
		if len(v.e.runners) == 0 && v.e.inFlight == 0 {
			// The kernel scaled to zero: hand the next boot to the
			// pre-warm predictor.
			s.schedulePreWarmLocked(v.e)
		}
	}
	s.scheduleReapLocked()
	s.mu.Unlock()
}

// scheduleReapLocked arms the idle-runner reaper timer.
func (s *Server) scheduleReapLocked() {
	s.reapTimer = s.clock.AfterFunc(s.cfg.KeepAlive.SweepEvery, s.reap)
}

// Drain gracefully shuts the server down: new invocations are rejected
// with ErrDraining while in-flight ones run to completion, then the
// server closes. If ctx expires first the server closes anyway (fencing,
// not dropping, whatever is still in flight — see Close) and the context
// error is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	if s.fair != nil {
		// Queued waiters are not in flight and would never be granted
		// once draining; reject them now so Drain cannot hang on them.
		s.fair.flushLocked(s, ErrDraining)
	}
	s.cfg.Logger.Info("server draining", "in_flight", s.inFlight)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.mu.Lock()
		for s.inFlight > 0 && !s.closed {
			s.cond.Wait()
		}
		s.mu.Unlock()
	}()

	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cfg.Logger.Warn("drain deadline expired, closing with work in flight")
	}
	s.Close()
	<-done // Close broadcasts, so the waiter always exits
	return err
}

// Close shuts the server down, releasing all idle runners immediately.
// Runners with invocations still in flight are fenced, not dropped:
// their device contexts stay live until the last invocation finishes
// (releaseRunner then releases them), so a Close racing an invocation
// can never yank a context out from under a serving kernel.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.fair != nil {
		s.fair.flushLocked(s, ErrServerClosed)
	}
	if s.cancel != nil {
		s.cancel() // abort in-flight pre-warm boots
	}
	if s.reapTimer != nil {
		s.reapTimer.Stop()
		s.reapTimer = nil
	}
	for _, e := range s.entries {
		if e.prewarm != nil {
			e.prewarm.Stop()
			e.prewarm = nil
		}
	}
	for _, e := range s.entries {
		// removeRunnerLocked splices e.runners; iterate a snapshot.
		for _, r := range append([]*runner(nil), e.runners...) {
			if r.removed {
				continue
			}
			if r.inflight > 0 {
				r.draining = true
				continue
			}
			r.inflight++ // balance the decrement in removeRunnerLocked
			s.removeRunnerLocked(e, r)
		}
	}
	s.cond.Broadcast() // wake any Drain waiter
	s.mu.Unlock()
	// Pre-warm boots see the cancelled base context (or the closed flag)
	// and exit promptly; waiting here keeps Close's contract that no
	// background work of this server survives it.
	s.prewarmWG.Wait()
}

// discardHandler is a slog.Handler that drops every record, used when no
// logger is configured.
type discardHandler struct{}

var _ slog.Handler = discardHandler{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
