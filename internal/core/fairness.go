package core

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// DefaultTenant is the tenant identity assumed when a request carries no
// tenant. Legacy (pre-v2 or pre-tenant) peers cannot send the header
// field, and mapping them all to one deterministic key keeps
// mixed-version clusters from splitting queues and metrics between ""
// and "default".
const DefaultTenant = "default"

// NormalizeTenant maps the empty tenant identity to DefaultTenant.
func NormalizeTenant(t string) string {
	if t == "" {
		return DefaultTenant
	}
	return t
}

// defaultStickinessBound is the consecutive-bypass budget used when fair
// queueing is enabled without an explicit StickinessBound.
const defaultStickinessBound = 4

// tenantState is the per-tenant slice of server state (guarded by
// Server.mu except for the lazily built metrics).
type tenantState struct {
	name   string
	weight float64
	// inFlight counts admitted invocations of this tenant; queued counts
	// invocations waiting in the tenant's fair-queue flows.
	inFlight int
	queued   int
	// met is created lazily on first use, for the same reason as
	// entry.met (see Server.kernelMet).
	metOnce sync.Once
	met     *tenantMetrics
}

// tenantLocked returns (creating on first use) the state for a tenant.
func (s *Server) tenantLocked(name string) *tenantState {
	t, ok := s.tenants[name]
	if !ok {
		w := s.cfg.TenantWeights[name]
		if w <= 0 {
			w = 1
		}
		t = &tenantState{name: name, weight: w}
		s.tenants[name] = t
	}
	return t
}

// tenantMet returns the tenant's cached metric instances, creating them
// on first use.
func (s *Server) tenantMet(t *tenantState) *tenantMetrics {
	t.metOnce.Do(func() { t.met = newTenantMetrics(s.reg, t.name) })
	return t.met
}

// shedObserved records one rejection against both the kernel's and the
// tenant's shed counters and logs it.
func (s *Server) shedObserved(e *entry, t *tenantState, reason string) {
	s.kernelMet(e).shed(reason)
	s.tenantMet(t).shed(reason)
	s.cfg.Logger.Warn("invocation shed",
		"kernel", e.name, "tenant", t.name, "reason", reason)
}

// admitOneLocked commits one admitted invocation to the in-flight
// accounting shared by the flat and fair admission paths.
func (s *Server) admitOneLocked(e *entry, t *tenantState) {
	s.inFlight++
	e.inFlight++
	t.inFlight++
	s.observeArrivalLocked(e)
}

// fairWaiter is one invocation queued in a flow, waiting for the
// dispatcher to grant it an in-flight slot.
type fairWaiter struct {
	fl            *flow
	start, finish float64       // virtual start/finish tags
	enqueuedAt    time.Time     // modeled enqueue time
	waited        time.Duration // modeled queue wait, set at grant
	grant         chan struct{} // closed on grant or flush
	granted       bool          // guarded by Server.mu
	err           error         // set before grant closes on a flush
}

// flow is the FIFO lane of one (tenant, kernel) pair. Requests within a
// flow dispatch in arrival order; across flows the dispatcher follows
// virtual finish tags.
type flow struct {
	tenant *tenantState
	entry  *entry
	// lastFinish is the finish tag of the flow's most recently enqueued
	// request; the next request starts no earlier (per-flow FIFO in
	// virtual time).
	lastFinish float64
	queue      []*fairWaiter
}

// removeLocked withdraws a still-queued waiter, reporting whether it was
// found (false means it was already granted or flushed).
func (fl *flow) removeLocked(w *fairWaiter) bool {
	for i, x := range fl.queue {
		if x == w {
			fl.queue = append(fl.queue[:i], fl.queue[i+1:]...)
			return true
		}
	}
	return false
}

// fairQueue is the tenant-aware dispatch layer: per-(tenant, kernel)
// flows drained by weighted fair queueing in virtual time, with bounded
// warm-runner stickiness. All state is guarded by Server.mu.
//
// Virtual time: each request is tagged start = max(V, flow.lastFinish)
// and finish = start + cost/weight, where V is the system virtual time,
// cost is the kernel's observed mean wall time (1.0 before any history),
// and weight is the tenant's configured share. The dispatcher grants the
// queued head with the smallest finish tag whenever an in-flight slot
// frees, advancing V to the granted request's start tag — so a tenant's
// long-run throughput share converges to weight/Σweights of the
// contended capacity, and an idle tenant accumulates no credit.
//
// Stickiness: a flow whose kernel already holds a warm runner with free
// capacity may be granted ahead of the strict minimum-finish flow —
// dispatching where the warm state lives avoids churning the runners the
// cold-start subsystem exists to protect. Each such bypass increments
// stickyStreak; once it reaches the configured StickinessBound the next
// grant is forced to follow strict virtual-finish order, so fairness
// debt eventually overrides locality.
type fairQueue struct {
	vtime        float64
	flows        map[string]*flow
	order        []*flow // deterministic scan order (creation order)
	stickyStreak int
}

func newFairQueue() *fairQueue {
	return &fairQueue{flows: make(map[string]*flow)}
}

// flowLocked returns (creating on first use) the flow for a tenant and
// kernel.
func (f *fairQueue) flowLocked(t *tenantState, e *entry) *flow {
	key := t.name + "\x00" + e.name
	fl, ok := f.flows[key]
	if !ok {
		fl = &flow{tenant: t, entry: e}
		f.flows[key] = fl
		f.order = append(f.order, fl)
	}
	return fl
}

// costLocked estimates one request's service cost for finish-tag math:
// the kernel's observed mean wall time in seconds, or 1.0 before any
// history exists (the unit is irrelevant as long as it is consistent).
func costLocked(e *entry) float64 {
	if e.ewmaWall > 0 {
		return e.ewmaWall / float64(time.Second)
	}
	return 1.0
}

// enqueueLocked admits one invocation into its (tenant, kernel) flow and
// runs the dispatcher, so a request that is dispatchable right now comes
// back already granted. It returns a shed reason plus a typed error when
// admission bounds reject the request instead.
func (f *fairQueue) enqueueLocked(s *Server, ctx context.Context, e *entry, t *tenantState) (*fairWaiter, string, error) {
	if s.draining {
		return nil, "draining", ErrDraining
	}
	// The kernel-level queue bound applies unchanged: fair queueing
	// shares capacity between tenants, it does not grow the backlog one
	// kernel may accumulate.
	if s.cfg.MaxQueuePerKernel > 0 {
		healthy := s.healthyCapacityLocked(e)
		if e.inFlight >= healthy+s.cfg.MaxQueuePerKernel {
			return nil, "queue_full", fmt.Errorf("%w: kernel %q has %d in flight (capacity %d + queue bound %d)",
				ErrOverloaded, e.name, e.inFlight, healthy, s.cfg.MaxQueuePerKernel)
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		if est := s.estimateWaitLocked(e); est > 0 && time.Until(dl) < est {
			return nil, "deadline", fmt.Errorf("%w: expected wait %v exceeds remaining deadline %v",
				ErrOverloaded, est.Round(time.Millisecond),
				time.Until(dl).Round(time.Millisecond))
		}
	}
	// Per-tenant bounds: with a queue bound, overflow beyond it sheds;
	// without one, the in-flight cap itself sheds (nothing would bound
	// the backlog otherwise). Both are charged to the offending tenant.
	capT, bound := s.cfg.MaxInFlightPerTenant, s.cfg.MaxQueuePerTenant
	if capT > 0 && bound == 0 && t.inFlight >= capT {
		return nil, "tenant_in_flight_cap", fmt.Errorf("%w: tenant %q has %d invocations in flight (cap %d)",
			ErrOverloaded, t.name, t.inFlight, capT)
	}
	if bound > 0 && t.queued >= bound {
		return nil, "tenant_queue_full", fmt.Errorf("%w: tenant %q has %d invocations queued (bound %d)",
			ErrOverloaded, t.name, t.queued, bound)
	}

	fl := f.flowLocked(t, e)
	w := &fairWaiter{fl: fl, enqueuedAt: s.clock.Now(), grant: make(chan struct{})}
	w.start = f.vtime
	if fl.lastFinish > w.start {
		w.start = fl.lastFinish
	}
	w.finish = w.start + costLocked(e)/t.weight
	fl.lastFinish = w.finish
	fl.queue = append(fl.queue, w)
	t.queued++
	s.tenantMet(t).queued.Inc()
	f.dispatchLocked(s)
	return w, "", nil
}

// dispatchLocked grants queued requests while in-flight capacity is
// free, choosing flows by (sticky-bounded) virtual finish order.
func (f *fairQueue) dispatchLocked(s *Server) {
	for {
		if s.closed || s.draining {
			return
		}
		if s.cfg.MaxInFlightTotal > 0 && s.inFlight >= s.cfg.MaxInFlightTotal {
			return
		}
		fl := f.pickLocked(s)
		if fl == nil {
			return
		}
		w := fl.queue[0]
		fl.queue = fl.queue[1:]
		fl.tenant.queued--
		s.tenantMet(fl.tenant).queued.Dec()
		if w.start > f.vtime {
			f.vtime = w.start
		}
		w.granted = true
		w.waited = s.clock.Now().Sub(w.enqueuedAt)
		s.admitOneLocked(fl.entry, fl.tenant)
		close(w.grant)
	}
}

// pickLocked selects the next flow to dispatch from: the non-empty flow
// with the smallest head finish tag whose tenant is under its in-flight
// cap — unless a warm-runner flow exists and the stickiness budget
// allows bypassing strict order in its favor. Ties break by flow
// creation order, keeping dispatch deterministic under the modeled
// clock.
func (f *fairQueue) pickLocked(s *Server) *flow {
	var strict, sticky *flow
	capT := s.cfg.MaxInFlightPerTenant
	for _, fl := range f.order {
		if len(fl.queue) == 0 {
			continue
		}
		if capT > 0 && fl.tenant.inFlight >= capT {
			continue
		}
		if strict == nil || fl.queue[0].finish < strict.queue[0].finish {
			strict = fl
		}
		if s.warmFreeRunnerLocked(fl.entry) &&
			(sticky == nil || fl.queue[0].finish < sticky.queue[0].finish) {
			sticky = fl
		}
	}
	if strict == nil {
		return nil
	}
	if bound := s.cfg.StickinessBound; bound > 0 && sticky != nil && sticky != strict {
		if f.stickyStreak < bound {
			f.stickyStreak++
			return sticky
		}
	}
	f.stickyStreak = 0
	return strict
}

// warmFreeRunnerLocked reports whether the kernel holds a started,
// healthy runner with in-flight headroom — the warm state sticky
// dispatch steers toward.
func (s *Server) warmFreeRunnerLocked(e *entry) bool {
	for _, r := range e.runners {
		if r.removed || r.draining || r.inflight >= s.cfg.MaxInFlightPerRunner {
			continue
		}
		select {
		case <-r.ready:
			if r.startErr == nil {
				return true
			}
		default:
		}
	}
	return false
}

// flushLocked rejects every queued waiter with err, charging the shed to
// its tenant. Drain and Close call it so waiters — which are not yet
// in-flight and would otherwise never be granted — unblock promptly.
func (f *fairQueue) flushLocked(s *Server, err error) {
	for _, fl := range f.order {
		for _, w := range fl.queue {
			fl.tenant.queued--
			s.tenantMet(fl.tenant).queued.Dec()
			w.err = err
			s.kernelMet(fl.entry).shed("draining")
			s.tenantMet(fl.tenant).shed("draining")
			close(w.grant)
		}
		fl.queue = nil
	}
}

// await blocks until the waiter is granted, flushed, or its context
// expires. A nil return means the invocation was admitted and its
// in-flight accounting is live; any error means it was not (the
// expiry-while-queued case is shed as "deadline", charged to the
// tenant).
func (w *fairWaiter) await(ctx context.Context, s *Server, e *entry, t *tenantState) error {
	select {
	case <-w.grant:
		return w.err
	case <-ctx.Done():
	}
	s.mu.Lock()
	if w.granted {
		// The grant raced the expiry: the slot is held, so proceed as
		// admitted and let the serving path surface the context error.
		s.mu.Unlock()
		return nil
	}
	if !w.fl.removeLocked(w) {
		// Already flushed by drain/close; its typed error stands.
		s.mu.Unlock()
		return w.err
	}
	t.queued--
	s.tenantMet(t).queued.Dec()
	s.mu.Unlock()
	s.shedObserved(e, t, "deadline")
	return ctx.Err()
}
