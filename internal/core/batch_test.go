package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/metrics"
	"kaas/internal/vclock"
)

// fakeExecer records every coalesced dispatch it receives.
type fakeExecer struct {
	mu      sync.Mutex
	batches [][]float64
	err     error
}

func (f *fakeExecer) ExecBatch(ctx context.Context, works []float64) (time.Duration, error) {
	f.mu.Lock()
	snap := make([]float64, len(works))
	copy(snap, works)
	f.batches = append(f.batches, snap)
	f.mu.Unlock()
	return time.Millisecond, f.err
}

func (f *fakeExecer) dispatched() [][]float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][]float64, len(f.batches))
	copy(out, f.batches)
	return out
}

func newTestBatcher(clock vclock.Clock, window time.Duration, max int) *batcher {
	return newBatcher(clock, window, max, context.Background(), metrics.NewRegistry())
}

// join starts one member and returns a channel carrying its outcome.
func join(b *batcher, ctx context.Context, key batchKey, ex batchExecer, work float64) chan error {
	done := make(chan error, 1)
	go func() {
		_, err := b.exec(ctx, key, ex, work)
		done <- err
	}()
	return done
}

// waitMembers blocks until the pending batch for key holds n members.
func waitMembers(t *testing.T, b *batcher, key batchKey, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		b.mu.Lock()
		p := b.pending[key]
		got := 0
		if p != nil {
			got = len(p.members)
		}
		b.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("batch %v never reached %d members", key, n)
}

// TestBatchNeverMixesKernels drives two kernels' invocations through one
// batcher concurrently: no dispatch may ever carry work from more than
// one (device, kernel) key.
func TestBatchNeverMixesKernels(t *testing.T) {
	clock := vclock.Scaled(1000)
	b := newTestBatcher(clock, 10*time.Millisecond, 4)
	keyA := batchKey{device: "gpu0", kernel: "matmul"}
	keyB := batchKey{device: "gpu0", kernel: "fft"}
	exA, exB := &fakeExecer{}, &fakeExecer{}

	const per = 32
	var wg sync.WaitGroup
	for i := 0; i < per; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			if _, err := b.exec(context.Background(), keyA, exA, 1000+float64(i)); err != nil {
				t.Errorf("exec A%d: %v", i, err)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			if _, err := b.exec(context.Background(), keyB, exB, 2000+float64(i)); err != nil {
				t.Errorf("exec B%d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	countA, countB := 0, 0
	for _, batch := range exA.dispatched() {
		for _, w := range batch {
			if w < 1000 || w >= 2000 {
				t.Fatalf("kernel A dispatch carries foreign work %v", w)
			}
			countA++
		}
	}
	for _, batch := range exB.dispatched() {
		for _, w := range batch {
			if w < 2000 {
				t.Fatalf("kernel B dispatch carries foreign work %v", w)
			}
			countB++
		}
	}
	if countA != per || countB != per {
		t.Fatalf("dispatched %d A + %d B invocations, want %d each", countA, countB, per)
	}
}

// TestBatchWindowExpiryDispatchesPartial parks three members in a batch
// far below its size cap: the window timer alone must flush them as one
// dispatch.
func TestBatchWindowExpiryDispatchesPartial(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	b := newTestBatcher(clock, 50*time.Millisecond, 64)
	key := batchKey{device: "gpu0", kernel: "k"}
	ex := &fakeExecer{}

	dones := []chan error{
		join(b, context.Background(), key, ex, 1),
		join(b, context.Background(), key, ex, 2),
		join(b, context.Background(), key, ex, 3),
	}
	waitMembers(t, b, key, 3)

	clock.Advance(50 * time.Millisecond)
	for i, done := range dones {
		if err := <-done; err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	got := ex.dispatched()
	if len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("dispatches = %v, want one batch of 3", got)
	}
	if b.dispatches.Load() != 1 || b.batched.Load() != 3 {
		t.Fatalf("counters = %d dispatches / %d batched, want 1/3",
			b.dispatches.Load(), b.batched.Load())
	}
}

// TestBatchCancelledMemberSparesSiblings cancels one waiting member
// before the window closes: it withdraws with its context error while
// its siblings dispatch and complete normally.
func TestBatchCancelledMemberSparesSiblings(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	b := newTestBatcher(clock, 50*time.Millisecond, 64)
	key := batchKey{device: "gpu0", kernel: "k"}
	ex := &fakeExecer{}

	ctx, cancel := context.WithCancel(context.Background())
	victim := join(b, ctx, key, ex, 99)
	sibs := []chan error{
		join(b, context.Background(), key, ex, 1),
		join(b, context.Background(), key, ex, 2),
	}
	waitMembers(t, b, key, 3)

	cancel()
	if err := <-victim; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled member err = %v, want context.Canceled", err)
	}

	clock.Advance(50 * time.Millisecond)
	for i, done := range sibs {
		if err := <-done; err != nil {
			t.Fatalf("sibling %d: %v", i, err)
		}
	}
	got := ex.dispatched()
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("dispatches = %v, want one batch of 2 (victim withdrawn)", got)
	}
	for _, w := range got[0] {
		if w == 99 {
			t.Fatal("withdrawn member's work reached the device")
		}
	}
}

// TestBatchAllMembersCancelledSkipsDispatch cancels every member: the
// window closes over an empty batch and nothing reaches the device.
func TestBatchAllMembersCancelledSkipsDispatch(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	b := newTestBatcher(clock, 50*time.Millisecond, 64)
	key := batchKey{device: "gpu0", kernel: "k"}
	ex := &fakeExecer{}

	ctx, cancel := context.WithCancel(context.Background())
	dones := []chan error{
		join(b, ctx, key, ex, 1),
		join(b, ctx, key, ex, 2),
	}
	waitMembers(t, b, key, 2)
	cancel()
	for _, done := range dones {
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Fatalf("member err = %v, want context.Canceled", err)
		}
	}

	clock.Advance(50 * time.Millisecond)
	// Give the leader goroutine a beat to observe the empty batch.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		b.mu.Lock()
		gone := b.pending[key] == nil
		b.mu.Unlock()
		if gone {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got := ex.dispatched(); len(got) != 0 {
		t.Fatalf("dispatches = %v, want none (all members withdrew)", got)
	}
	if b.dispatches.Load() != 0 {
		t.Fatalf("dispatch counter = %d, want 0", b.dispatches.Load())
	}
}

// TestBatchDeterministicComposition feeds members in a fixed arrival
// order with a size cap: the resulting batch compositions are a pure
// function of that order, so two identical runs produce identical
// dispatches.
func TestBatchDeterministicComposition(t *testing.T) {
	run := func() [][]float64 {
		clock := vclock.NewManual(time.Unix(0, 0))
		b := newTestBatcher(clock, time.Second, 4)
		key := batchKey{device: "gpu0", kernel: "k"}
		ex := &fakeExecer{}
		var dones []chan error
		for i := 0; i < 8; i++ {
			dones = append(dones, join(b, context.Background(), key, ex, float64(i)))
			// Serialize arrivals: wait until this member is registered (or,
			// for a capping member, until its batch dispatched) before
			// admitting the next, pinning the composition.
			if i%4 == 3 {
				if err := <-dones[i]; err != nil {
					t.Fatalf("member %d: %v", i, err)
				}
			} else {
				waitMembers(t, b, key, (i%4)+1)
			}
		}
		for i, done := range dones {
			if i%4 == 3 {
				continue // capping member already drained above
			}
			if err := <-done; err != nil {
				t.Fatalf("member %d: %v", i, err)
			}
		}
		return ex.dispatched()
	}

	first, second := run(), run()
	want := [][]float64{{0, 1, 2, 3}, {4, 5, 6, 7}}
	for name, got := range map[string][][]float64{"first": first, "second": second} {
		if len(got) != len(want) {
			t.Fatalf("%s run dispatches = %v, want %v", name, got, want)
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("%s run batch %d = %v, want %v", name, i, got[i], want[i])
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("%s run batch %d = %v, want %v", name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchSizeCapFiresEarly fills a batch to its cap well inside the
// window: it must dispatch immediately without waiting for the timer.
func TestBatchSizeCapFiresEarly(t *testing.T) {
	clock := vclock.NewManual(time.Unix(0, 0))
	b := newTestBatcher(clock, time.Hour, 2)
	key := batchKey{device: "gpu0", kernel: "k"}
	ex := &fakeExecer{}

	dones := []chan error{
		join(b, context.Background(), key, ex, 1),
		join(b, context.Background(), key, ex, 2),
	}
	// No clock advance at all: the cap alone must fire the batch.
	for i, done := range dones {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("member %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("member %d never dispatched at size cap", i)
		}
	}
	if got := ex.dispatched(); len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("dispatches = %v, want one batch of 2", got)
	}
}

// TestServerBatchingCoalesces runs concurrent same-kernel invocations
// through a batching server: every invocation succeeds, yet the device
// sees fewer dispatches than there were invocations.
func TestServerBatchingCoalesces(t *testing.T) {
	s, _, _ := newTestServer(t, 1, func(cfg *Config) {
		cfg.BatchWindow = 5 * time.Millisecond
		cfg.BatchMax = 8
	})
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.Invoke(context.Background(), "k", nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}

	st := s.Stats()
	if !st.Batching {
		t.Fatal("Stats().Batching = false on a batching server")
	}
	dp := st.DataPlane
	if dp.BatchedInvocations != n {
		t.Fatalf("BatchedInvocations = %d, want %d", dp.BatchedInvocations, n)
	}
	if dp.BatchDispatches == 0 || dp.BatchDispatches >= n {
		t.Fatalf("BatchDispatches = %d, want 0 < dispatches < %d (coalescing)", dp.BatchDispatches, n)
	}
	t.Logf("%d invocations coalesced into %d device dispatches", n, dp.BatchDispatches)
}
