package core

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"kaas/internal/kernels"
	"kaas/internal/shm"
	"kaas/internal/wire"
)

// DefaultMaxConnStreams bounds how many invocations one multiplexed
// connection may have in flight before the server stops reading new
// frames from it (per-connection backpressure). The server-wide
// admission limits (Config.MaxInFlightTotal and friends) still apply on
// top of this bound.
const DefaultMaxConnStreams = 64

// maxCoalescedWrite caps how many reply bytes the mux writer batches
// into one socket write before flushing.
const maxCoalescedWrite = 64 << 10

// muxSession serves one multiplexed (protocol version 2) connection:
// a single reader goroutine (the connection's handler) fans invocation
// frames out to bounded worker goroutines, and a single writer goroutine
// serializes their replies back onto the socket, coalescing bursts into
// one write. Per-stream MsgCancel frames cancel the matching in-flight
// invocation's context without disturbing sibling streams.
type muxSession struct {
	t  *TCPServer
	sc *serverConn
	br *bufio.Reader

	// wmu guards socket writes. The reply path is adaptive: with a
	// single stream in flight, repliers write inline (no goroutine
	// handoff); with siblings active they enqueue to the writer
	// goroutine, which batches the backlog into coalesced writes — many
	// frames per syscall. failed flips once a write error closes the
	// connection; later replies are discarded.
	wmu        sync.Mutex
	failed     atomic.Bool
	writeCh    chan *wire.Message
	writerDone chan struct{}
	sem        chan struct{}

	mu      sync.Mutex
	streams map[uint64]context.CancelFunc

	wg sync.WaitGroup
}

// serveMux runs a multiplexed session on sc until the peer disconnects
// or the endpoint drains. It owns the connection's read side; replies
// flow through the session writer.
func (t *TCPServer) serveMux(sc *serverConn) {
	s := &muxSession{
		t:          t,
		sc:         sc,
		br:         bufio.NewReaderSize(sc, 32<<10),
		writeCh:    make(chan *wire.Message, 64),
		writerDone: make(chan struct{}),
		sem:        make(chan struct{}, t.maxConnStreams()),
		streams:    make(map[uint64]context.CancelFunc),
	}
	go s.writeLoop()
	s.readLoop()
	if t.leases != nil {
		// Client disconnect mid-lease: every lease this connection held is
		// revoked so its bytes return to the arena budget. No notice is
		// sent — the peer is gone.
		if n := t.leases.releaseOwner(s); n > 0 {
			t.srv.Logger().Info("released arena leases on disconnect",
				"remote", sc.RemoteAddr(), "leases", n)
		}
	}
}

// readLoop reads frames until the connection dies or the drain poke
// fires, then joins the in-flight streams and the writer.
func (s *muxSession) readLoop() {
	for {
		msg, err := wire.Read(s.br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && s.t.isDraining() {
				// Poked out of the read by Drain: in-flight streams
				// finish and get their replies, then the connection
				// closes gracefully.
				s.finish(false)
				return
			}
			// Peer gone (or stream desynchronized): cancel every
			// in-flight stream so runners stop burning device time for
			// answers nobody will read.
			s.finish(true)
			return
		}
		switch msg.Type {
		case wire.MsgInvoke:
			s.sem <- struct{}{} // per-connection stream bound
			s.wg.Add(1)
			go s.serveInvoke(msg)
		case wire.MsgCancel:
			s.cancelStream(msg.Header.StreamID)
		case wire.MsgLease:
			s.serveLease(msg)
		case wire.MsgHello:
			// Redundant hello on an upgraded connection: re-acknowledge.
			s.send(&wire.Message{Version: wire.VersionMux, Type: wire.MsgHelloAck, Header: wire.Header{
				MuxVersion: wire.VersionMux,
				MaxStreams: cap(s.sem),
				StreamID:   msg.Header.StreamID,
			}})
		case wire.MsgRegister:
			s.serveRegister(msg)
		case wire.MsgList:
			s.send(&wire.Message{Version: wire.VersionMux, Type: wire.MsgListResult, Header: wire.Header{
				Names:    s.t.srv.Kernels(),
				StreamID: msg.Header.StreamID,
			}})
		case wire.MsgStats:
			s.serveStats(msg)
		case wire.MsgControl:
			s.serveControl(msg)
		default:
			s.sendErr(msg.Header.StreamID, fmt.Errorf("unexpected message type %s", msg.Type))
		}
	}
}

// finish joins the session: optionally cancels all in-flight streams,
// waits for their replies to be queued, then flushes and stops the
// writer.
func (s *muxSession) finish(cancelStreams bool) {
	if cancelStreams {
		s.mu.Lock()
		for _, cancel := range s.streams {
			cancel()
		}
		s.mu.Unlock()
	}
	s.wg.Wait()
	close(s.writeCh)
	<-s.writerDone
}

// writeFailed records a write error once: the connection closes (which
// fails the read loop) and later replies are discarded.
func (s *muxSession) writeFailed(err error) {
	if s.failed.Swap(true) {
		return
	}
	s.t.srv.Logger().Warn("mux reply write failed, closing connection",
		"remote", s.sc.RemoteAddr(), "err", err)
	s.sc.Conn.Close()
}

// writeLoop drains replies that lost the inline-write race, coalescing
// queued bursts into one socket write.
func (s *muxSession) writeLoop() {
	defer close(s.writerDone)
	buf := make([]byte, 0, 16<<10)
	appendMsg := func(m *wire.Message) {
		if s.failed.Load() {
			return
		}
		var err error
		buf, err = wire.Append(buf, m)
		if err != nil {
			s.t.srv.Logger().Warn("mux reply encode failed",
				"remote", s.sc.RemoteAddr(), "type", m.Type.String(), "err", err)
		}
	}
	flush := func() {
		if s.failed.Load() || len(buf) == 0 {
			buf = buf[:0]
			return
		}
		s.wmu.Lock()
		_, err := s.sc.Conn.Write(buf)
		s.wmu.Unlock()
		if err != nil {
			s.writeFailed(err)
		}
		buf = buf[:0]
	}
	for msg := range s.writeCh {
		appendMsg(msg)
		// When the queue momentarily empties, yield once before flushing:
		// repliers blocked on the scheduler get a chance to append their
		// frames to this batch, deepening it by several frames per
		// syscall under load.
		yielded := false
	coalesce:
		for len(buf) < maxCoalescedWrite {
			select {
			case next, ok := <-s.writeCh:
				if !ok {
					flush()
					return
				}
				appendMsg(next)
			default:
				if !yielded {
					yielded = true
					runtime.Gosched()
					continue
				}
				break coalesce
			}
		}
		flush()
	}
	flush()
}

// send hands one reply to the transport: inline on the socket when this
// is the connection's only in-flight stream (lowest latency), otherwise
// through the coalescing writer (fewest syscalls).
func (s *muxSession) send(msg *wire.Message) {
	if s.failed.Load() {
		return
	}
	if len(s.sem) <= 1 && s.wmu.TryLock() {
		err := wire.Write(s.sc.Conn, msg)
		s.wmu.Unlock()
		if err != nil {
			s.writeFailed(err)
		}
		return
	}
	s.writeCh <- msg
}

// sendErr queues an error reply on the given stream, classified with the
// wire protocol's machine-readable code.
func (s *muxSession) sendErr(streamID uint64, err error) {
	code, retryable := errorCode(err)
	s.send(&wire.Message{Version: wire.VersionMux, Type: wire.MsgError, Header: wire.Header{
		StreamID:  streamID,
		Error:     err.Error(),
		Code:      code,
		Retryable: retryable,
	}})
}

// addStream registers a stream's cancel function for MsgCancel lookup.
func (s *muxSession) addStream(id uint64, cancel context.CancelFunc) {
	s.mu.Lock()
	s.streams[id] = cancel
	s.mu.Unlock()
}

// removeStream forgets a completed stream.
func (s *muxSession) removeStream(id uint64) {
	s.mu.Lock()
	delete(s.streams, id)
	s.mu.Unlock()
}

// cancelStream cancels one in-flight stream's context, if it is still
// running. Unknown streams (already completed, or never seen) are
// ignored — the cancel raced with the reply.
func (s *muxSession) cancelStream(id uint64) {
	s.mu.Lock()
	cancel := s.streams[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// serveLease negotiates one arena lease for this connection, inline (a
// grant is a map insert, never blocking). The ack echoes the request's
// StreamID so the client demultiplexes it like any reply. Denials carry
// a code distinguishing "not configured" (the client disables the lease
// path for this connection) from "no budget right now" (the client
// simply retries on a later invocation).
func (s *muxSession) serveLease(msg *wire.Message) {
	id := msg.Header.StreamID
	if s.t.leases == nil {
		s.send(&wire.Message{Version: wire.VersionMux, Type: wire.MsgLeaseAck, Header: wire.Header{
			StreamID: id,
			Error:    "out-of-band leases not configured",
			Code:     wire.CodeInternal,
		}})
		return
	}
	l, err := s.t.leases.grant(s, msg.Header.LeaseBytes)
	if err != nil {
		s.send(&wire.Message{Version: wire.VersionMux, Type: wire.MsgLeaseAck, Header: wire.Header{
			StreamID:  id,
			Error:     err.Error(),
			Code:      wire.CodeUnavailable,
			Retryable: true,
		}})
		return
	}
	s.send(&wire.Message{Version: wire.VersionMux, Type: wire.MsgLeaseAck, Header: wire.Header{
		StreamID:   id,
		LeaseID:    l.ID(),
		LeaseBytes: l.Cap(),
	}})
}

// sendLeaseRevoke pushes a lease revocation notice to the client. It
// writes directly under the write lock rather than through the writer
// queue: revocations fire from Drain and breaker hooks, which may run
// while the session is tearing down, after the writer queue has closed.
func (s *muxSession) sendLeaseRevoke(id uint64) {
	if s.failed.Load() {
		return
	}
	s.wmu.Lock()
	err := wire.Write(s.sc.Conn, &wire.Message{
		Version: wire.VersionMux,
		Type:    wire.MsgLeaseRevoke,
		Header:  wire.Header{LeaseID: id},
	})
	s.wmu.Unlock()
	if err != nil {
		s.writeFailed(err)
	}
}

// resolveLease maps a leased invoke onto its arena window, pinning the
// lease for the invocation's lifetime (Retain) so a concurrent revoke
// cannot recycle the slab under a running kernel. A lease that was
// revoked resolves to errLeaseRevoked — retryable, the client resends
// in-band — while an ID this connection never held is an internal error.
func (s *muxSession) resolveLease(msg *wire.Message) (*shm.Lease, error) {
	lt := s.t.leases
	if lt == nil {
		return nil, errors.New("out-of-band leases not configured")
	}
	id := msg.Header.LeaseID
	l, ok := lt.lookup(s, id)
	if !ok {
		if lt.arena.WasRevoked(id) {
			return nil, errLeaseRevoked
		}
		return nil, fmt.Errorf("unknown lease %d", id)
	}
	if n := msg.Header.LeaseLen; n < 0 || n > l.Cap() {
		return nil, fmt.Errorf("lease %d: payload length %d exceeds %d-byte window", id, n, l.Cap())
	}
	if err := l.Retain(); err != nil {
		return nil, errLeaseRevoked
	}
	return l, nil
}

// serveRegister handles a registration frame inline (registrations are
// cheap and rare; they do not occupy a stream slot).
func (s *muxSession) serveRegister(msg *wire.Message) {
	k, err := kernels.ByName(msg.Header.Kernel)
	if err != nil {
		s.sendErr(msg.Header.StreamID, fmt.Errorf("%w: %v", ErrUnknownKernel, err))
		return
	}
	if err := s.t.srv.Register(k); err != nil && !errors.Is(err, ErrAlreadyRegistered) {
		s.sendErr(msg.Header.StreamID, err)
		return
	}
	s.send(&wire.Message{Version: wire.VersionMux, Type: wire.MsgRegistered, Header: wire.Header{
		Kernel:   msg.Header.Kernel,
		StreamID: msg.Header.StreamID,
	}})
}

// serveControl handles a cluster control-plane frame inline (heartbeats
// are small, cheap, and must not queue behind invocation streams).
func (s *muxSession) serveControl(msg *wire.Message) {
	h := s.t.controlHandler()
	if h == nil {
		s.sendErr(msg.Header.StreamID, errors.New("cluster control plane not enabled"))
		return
	}
	resp, err := h(msg.Body)
	if err != nil {
		s.sendErr(msg.Header.StreamID, err)
		return
	}
	s.send(&wire.Message{Version: wire.VersionMux, Type: wire.MsgControlAck, Header: wire.Header{
		StreamID: msg.Header.StreamID,
	}, Body: resp})
}

// serveStats handles a stats frame inline.
func (s *muxSession) serveStats(msg *wire.Message) {
	stats, err := marshalStats(s.t.srv)
	if err != nil {
		s.sendErr(msg.Header.StreamID, err)
		return
	}
	s.send(&wire.Message{Version: wire.VersionMux, Type: wire.MsgStatsResult, Header: wire.Header{
		Stats:    stats,
		StreamID: msg.Header.StreamID,
	}})
}

// serveInvoke runs one invocation stream to completion on its own
// goroutine, bounded by the session's stream semaphore and the server's
// admission control.
func (s *muxSession) serveInvoke(msg *wire.Message) {
	defer s.wg.Done()
	defer func() { <-s.sem }()
	id := msg.Header.StreamID

	req := &kernels.Request{Params: kernels.Params(msg.Header.Params), Tenant: msg.Header.Tenant}
	var lease *shm.Lease
	switch {
	case msg.Header.LeaseID != 0:
		// Zero-copy out-of-band: the payload is already in the leased
		// arena window both endpoints map — only the handle crossed the
		// wire, and the serving path reads the window in place.
		l, err := s.resolveLease(msg)
		if err != nil {
			s.sendErr(id, err)
			return
		}
		defer l.Release()
		lease = l
		req.Data = l.Bytes()[:msg.Header.LeaseLen]
		s.t.srv.dpMet.oobInvocations.Inc()
		s.t.srv.dpMet.oobBytes.Add(uint64(msg.Header.LeaseLen))
	case msg.Header.ShmKey != "":
		if s.t.regions == nil {
			s.sendErr(id, errors.New("out-of-band transfer not configured"))
			return
		}
		data, err := s.t.regions.Get(msg.Header.ShmKey)
		if err != nil {
			s.sendErr(id, err)
			return
		}
		req.Data = data
	case len(msg.Body) > 0:
		req.Data = msg.Body
		s.t.srv.dpMet.inbandBytes.Add(uint64(len(msg.Body)))
	}

	ctx, cancel, err := invokeContext(msg)
	if err != nil {
		s.t.srv.Logger().Warn("rejecting expired invocation",
			"kernel", msg.Header.Kernel, "remote", s.sc.RemoteAddr(), "stream", id, "err", err)
		s.sendErr(id, err)
		return
	}
	defer cancel()
	s.addStream(id, cancel)
	defer s.removeStream(id)

	resp, report, err := s.t.srv.Invoke(ctx, msg.Header.Kernel, req)
	if err != nil {
		if ctx.Err() != nil {
			// The stream was cancelled (deadline, CANCEL frame, or the
			// connection died): the reply is best-effort; sibling
			// streams on this connection are unaffected.
			s.t.srv.Logger().Info("invocation cancelled",
				"kernel", msg.Header.Kernel, "remote", s.sc.RemoteAddr(), "stream", id, "cause", ctx.Err())
		}
		s.sendErr(id, err)
		return
	}

	out := &wire.Message{Version: wire.VersionMux, Type: wire.MsgResult, Header: wire.Header{
		Kernel:        msg.Header.Kernel,
		Values:        resp.Values,
		ColdStart:     report.Cold,
		InvocationID:  report.InvocationID,
		DurationNanos: int64(report.Total()),
		StreamID:      id,
	}}
	switch {
	case lease != nil && len(resp.Data) > 0 && int64(len(resp.Data)) <= lease.Cap():
		// The result rides back through the same leased window the
		// request arrived in: one copy into shared memory, no bytes on
		// the wire. The lease is still pinned (released after send), so a
		// concurrent revoke cannot recycle the slab before the client —
		// which holds its own pin — reads the result out.
		copy(lease.Bytes(), resp.Data)
		out.Header.LeaseID = msg.Header.LeaseID
		out.Header.LeaseResultLen = int64(len(resp.Data))
	case msg.Header.WantShmResult && s.t.regions != nil && len(resp.Data) > 0:
		key, err := s.t.regions.Create(resp.Data)
		if err != nil {
			s.sendErr(id, err)
			return
		}
		out.Header.ResultShmKey = key
		s.send(out)
		if s.failed.Load() {
			// The session died before (or while) the reply was written:
			// the client will never read and delete the result region, so
			// its bytes are returned to the registry budget here.
			s.t.regions.Delete(key)
		}
		return
	default:
		out.Body = resp.Data
	}
	s.send(out)
}
