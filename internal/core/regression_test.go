package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/kernels"
	"kaas/internal/vclock"
)

// hookClock wraps a Clock and calls onSleep before every Sleep, letting
// tests inject device state changes at precise points in the modeled
// timeline (e.g. repair a device during the runner spawn sleep).
type hookClock struct {
	vclock.Clock
	onSleep func(time.Duration)
}

func (h *hookClock) Sleep(d time.Duration) {
	if h.onSleep != nil {
		h.onSleep(d)
	}
	h.Clock.Sleep(d)
}

// execHookKernel runs a hook on every Execute, so a test can fail the
// device mid-service (after Exec, before the output copy).
type execHookKernel struct {
	*fakeKernel
	onExecute func()
}

func (k *execHookKernel) Execute(req *kernels.Request) (*kernels.Response, error) {
	if k.onExecute != nil {
		k.onExecute()
	}
	return k.fakeKernel.Execute(req)
}

// TestFailoverBoundedOnFlappingDevice: a device that recovers during each
// cold start and fails again mid-service used to bounce the invocation
// between failover and cold start forever (the failover path had no
// attempt bound). The retry budget is one attempt per device of the kind
// on top of the first, after which the invocation fails with an error
// wrapping accel.ErrDeviceFailed.
func TestFailoverBoundedOnFlappingDevice(t *testing.T) {
	hc := &hookClock{Clock: vclock.Scaled(5000)}
	host, err := accel.NewHost(hc, "test", accel.XeonE52698, testGPUProfile())
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	dev := host.Devices()[0]

	// The device flaps: healthy through every cold start (repaired during
	// the distinctive spawn sleep), failed again by every Execute.
	const spawnCost = 31 * time.Millisecond
	hc.onSleep = func(d time.Duration) {
		if d == spawnCost {
			dev.Repair()
		}
	}
	s, err := New(Config{Clock: hc, Host: host, RunnerSpawnCost: spawnCost})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)

	k := &execHookKernel{
		fakeKernel: &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()},
		onExecute:  dev.Fail,
	}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := s.Invoke(context.Background(), "k", nil)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("invocation still bouncing between failover and cold start after 10s")
	}
	if !errors.Is(err, accel.ErrDeviceFailed) {
		t.Fatalf("err = %v, want ErrDeviceFailed", err)
	}
	if !strings.Contains(err.Error(), "failover exhausted") {
		t.Errorf("err = %v, want mention of exhausted failover budget", err)
	}
	// One attempt per device of the kind plus the first: 2 for one GPU.
	if got := k.executions(); got != 2 {
		t.Errorf("kernel executed %d times, want 2 (bounded retries)", got)
	}
}

// TestInvokeFailsPromptlyWhenEveryDeviceDown: with the kernel's only
// device failed before any runner exists, the cold start cannot acquire a
// context and the invocation must fail with ErrDeviceFailed after the
// bounded retries, not hang or loop.
func TestInvokeFailsPromptlyWhenEveryDeviceDown(t *testing.T) {
	s, host, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	host.Devices()[0].Fail()

	done := make(chan error, 1)
	go func() {
		_, _, err := s.Invoke(context.Background(), "k", nil)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("invocation against an all-failed host did not return")
	}
	if !errors.Is(err, accel.ErrDeviceFailed) {
		t.Errorf("err = %v, want ErrDeviceFailed", err)
	}
	if st := s.Stats(); st.Runners != 0 {
		t.Errorf("Runners = %d after failed cold starts, want 0", st.Runners)
	}
}

// newSingleSlotServer builds a server over one single-slot GPU, the
// tightest device shape for cold-start contention tests.
func newSingleSlotServer(t *testing.T) (*Server, *accel.Host) {
	t.Helper()
	clock := vclock.Scaled(5000)
	gpu := testGPUProfile()
	gpu.Slots = 1
	host, err := accel.NewHost(clock, "test", accel.XeonE52698, gpu)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	s, err := New(Config{Clock: clock, Host: host})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s, host
}

// TestColdStartHonorsCallerContext: a cold start blocked on a saturated
// device must give up when the invocation's context does, instead of
// waiting forever on a background context, and must not leak the
// half-started runner.
func TestColdStartHonorsCallerContext(t *testing.T) {
	s, host := newSingleSlotServer(t)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// Hold the device's only slot outside the server's control, so the
	// cold start has nothing to evict and nowhere to go.
	dctx, err := host.Devices()[0].Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer dctx.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := s.Invoke(ctx, "k", nil)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cold start ignored the caller's context and blocked on the held slot")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	if st := s.Stats(); st.Runners != 0 {
		t.Errorf("Runners = %d after abandoned cold start, want 0 (runner leaked)", st.Runners)
	}

	// An already-cancelled context never starts paying for the spawn.
	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, _, err := s.Invoke(cancelled, "k", nil); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled invoke err = %v, want Canceled", err)
	}
	if st := s.Stats(); st.Runners != 0 {
		t.Errorf("Runners = %d after pre-cancelled invoke, want 0", st.Runners)
	}
}

// TestConcurrentColdStartsOnSingleSlotDevice: two invocations that both
// pass the slot-pressure check but find only one evictable idle runner
// used to strand the loser in an unbounded Acquire; the eviction must be
// retried around a bounded wait so both complete.
func TestConcurrentColdStartsOnSingleSlotDevice(t *testing.T) {
	s, _ := newSingleSlotServer(t)
	for _, name := range []string{"ka", "kb", "kc"} {
		k := &fakeKernel{name: name, kind: accel.GPU, cost: stdCost()}
		if err := s.Register(k); err != nil {
			t.Fatalf("Register %s: %v", name, err)
		}
	}
	// Warm an idle runner of ka: it holds the only slot.
	if _, _, err := s.Invoke(context.Background(), "ka", nil); err != nil {
		t.Fatalf("Invoke ka: %v", err)
	}

	// kb and kc cold-start concurrently. Both see the device saturated;
	// only one finds ka's idle runner to evict. The loser must keep
	// retrying eviction (against the winner's runner once it idles)
	// rather than deadlock.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, name := range []string{"kb", "kc"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[i] = s.Invoke(context.Background(), name, nil)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent cold starts deadlocked on the single slot")
	}
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent invocation %d: %v", i, err)
		}
	}
}

// TestOverbookRotationSpreadsLoad: when every runner is saturated and no
// device has capacity, overbooked invocations must rotate through the
// pool instead of repeatedly landing on the runner after the stale
// rotation point.
func TestOverbookRotationSpreadsLoad(t *testing.T) {
	s, _, _ := newTestServer(t, 3, func(c *Config) {
		c.MaxInFlightPerRunner = 1
		c.MaxRunnersPerDevice = 1
	})
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries["k"]
	// Saturate: three spawner picks place one runner per device, each at
	// the in-flight cap.
	for i := 0; i < 3; i++ {
		if _, spawner := s.selectRunnerLocked(e); !spawner {
			t.Fatalf("pick %d reused a runner, want a new one per device", i)
		}
	}
	// Every further pick overbooks. Each simulated invocation completes
	// immediately, so all runners stay tied at the cap: only the rotation
	// point decides who gets the work.
	counts := make(map[string]int)
	for i := 0; i < 6; i++ {
		r, spawner := s.selectRunnerLocked(e)
		if spawner {
			t.Fatalf("overbook pick %d created a runner on a full host", i)
		}
		counts[r.id]++
		r.inflight--
	}
	if len(counts) != 3 {
		t.Fatalf("overbooking used %d runners, want all 3: %v", len(counts), counts)
	}
	for id, n := range counts {
		if n != 2 {
			t.Errorf("runner %s served %d overbooked invocations, want 2 (rotation stalled)", id, n)
		}
	}
}
