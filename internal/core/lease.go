package core

import (
	"errors"
	"sync"

	"kaas/internal/shm"
)

// errLeaseRevoked is answered to an invoke naming a lease that was
// revoked (drain, breaker-open, or disconnect). It maps to the wire
// protocol's LEASE_REVOKED code and is retryable: the client drops the
// stale lease and resends the same request in-band, invisibly to its
// caller.
var errLeaseRevoked = errors.New("core: arena lease revoked; resend in-band")

// leaseOwner is the connection-side handle a lease is granted to. The
// mux session implements it; revocation uses it to push MsgLeaseRevoke
// notices so clients stop using withdrawn windows without waiting to
// trip over a stale-lease error.
type leaseOwner interface {
	sendLeaseRevoke(id uint64)
}

// leaseTable tracks which connection owns each arena lease. Leases are
// connection-scoped: a lease may serve many streams on its connection
// (the client pools it across invocations) but never crosses
// connections, and every lease a connection holds is revoked — its
// bytes returned to the arena budget — when the connection closes, the
// endpoint drains, or a device breaker opens.
type leaseTable struct {
	arena *shm.ArenaPool

	mu     sync.Mutex
	owners map[leaseOwner]map[uint64]*shm.Lease
}

func newLeaseTable(arena *shm.ArenaPool) *leaseTable {
	return &leaseTable{
		arena:  arena,
		owners: make(map[leaseOwner]map[uint64]*shm.Lease),
	}
}

// grant acquires an arena lease for the connection.
func (lt *leaseTable) grant(o leaseOwner, bytes int64) (*shm.Lease, error) {
	l, err := lt.arena.Acquire(bytes)
	if err != nil {
		return nil, err
	}
	lt.mu.Lock()
	m := lt.owners[o]
	if m == nil {
		m = make(map[uint64]*shm.Lease)
		lt.owners[o] = m
	}
	m[l.ID()] = l
	lt.mu.Unlock()
	return l, nil
}

// lookup resolves a lease ID against the connection that presents it; a
// lease granted to another connection does not resolve.
func (lt *leaseTable) lookup(o leaseOwner, id uint64) (*shm.Lease, bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l, ok := lt.owners[o][id]
	return l, ok
}

// releaseOwner revokes every lease the connection holds without
// notification — the connection is gone, so its client cannot be told.
// This is the disconnect-mid-lease path that returns the bytes to the
// arena budget. It reports how many leases were released.
func (lt *leaseTable) releaseOwner(o leaseOwner) int {
	lt.mu.Lock()
	m := lt.owners[o]
	delete(lt.owners, o)
	lt.mu.Unlock()
	for id := range m {
		lt.arena.Revoke(id)
	}
	return len(m)
}

// revokeAll withdraws every lease on every connection and notifies each
// owner with a MsgLeaseRevoke frame, used on drain and breaker-open.
// Clients fall back to in-band transfer transparently. It reports how
// many leases were revoked.
func (lt *leaseTable) revokeAll() int {
	type grant struct {
		o  leaseOwner
		id uint64
	}
	lt.mu.Lock()
	var all []grant
	for o, m := range lt.owners {
		for id := range m {
			all = append(all, grant{o: o, id: id})
		}
		delete(lt.owners, o)
	}
	lt.mu.Unlock()
	for _, g := range all {
		lt.arena.Revoke(g.id)
		g.o.sendLeaseRevoke(g.id)
	}
	return len(all)
}
