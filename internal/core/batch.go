package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"kaas/internal/metrics"
	"kaas/internal/vclock"
)

// batchExecer dispatches a coalesced batch of modeled work in one device
// launch. *accel.Context implements it; batcher tests substitute fakes.
type batchExecer interface {
	ExecBatch(ctx context.Context, works []float64) (time.Duration, error)
}

// batchKey identifies one coalescing bucket: invocations batch together
// only when they target the same kernel on the same device, so a batch
// structurally can never mix kernels (or span devices).
type batchKey struct {
	device string
	kernel string
}

// batchSizeBuckets are the batch-size histogram buckets exported as
// kaas_batch_size_total{size=...}.
var batchSizeBuckets = []string{"1", "2", "3-4", "5-8", ">8"}

// sizeBucket maps a dispatched batch size onto its histogram bucket.
func sizeBucket(n int) string {
	switch {
	case n <= 1:
		return "1"
	case n == 2:
		return "2"
	case n <= 4:
		return "3-4"
	case n <= 8:
		return "5-8"
	default:
		return ">8"
	}
}

// batcher coalesces same-kernel invocations that arrive within a modeled
// time window (or up to a size cap, whichever comes first) into a single
// device dispatch: the batch pays the device's launch overhead once
// instead of once per invocation, which is where server-side
// micro-batching wins. Each member still receives its own demultiplexed
// result — the batch is a dispatch optimization, invisible to callers
// except through latency.
//
// Fairness composition: batching runs after admission, so the weighted
// fair queue and the per-tenant in-flight caps have already bounded how
// many of any tenant's invocations can be in flight — and therefore how
// much of any batch one tenant can occupy. The batcher adds no bypass
// around those grants.
type batcher struct {
	clock   vclock.Clock
	window  time.Duration
	max     int
	baseCtx context.Context // detaches dispatch from member contexts

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch

	dispatches atomic.Uint64 // device dispatches issued
	batched    atomic.Uint64 // invocations carried by those dispatches

	dispatchC *metrics.Counter
	batchedC  *metrics.Counter
	sizes     map[string]*metrics.Counter
}

// newBatcher creates a batcher dispatching after window (modeled time)
// or when a batch reaches max members.
func newBatcher(clock vclock.Clock, window time.Duration, max int, baseCtx context.Context, reg *metrics.Registry) *batcher {
	b := &batcher{
		clock:     clock,
		window:    window,
		max:       max,
		baseCtx:   baseCtx,
		pending:   make(map[batchKey]*pendingBatch),
		dispatchC: reg.Counter(metricBatchDispatches),
		batchedC:  reg.Counter(metricBatchedInvocations),
		sizes:     make(map[string]*metrics.Counter, len(batchSizeBuckets)),
	}
	for _, bucket := range batchSizeBuckets {
		b.sizes[bucket] = reg.Counter(metricBatchSize, "size", bucket)
	}
	return b
}

// pendingBatch is one forming batch. fired means it left the pending map
// (no new joiners); dispatched means the member snapshot was taken, after
// which members can no longer withdraw — their work is on the device.
type pendingBatch struct {
	key        batchKey
	ex         batchExecer
	members    []*batchMember
	fired      bool
	dispatched bool
	fire       chan struct{} // closed (once, under batcher.mu) to wake the leader
}

// batchMember is one invocation waiting in a batch.
type batchMember struct {
	work float64
	gone bool // withdrew (context cancelled) before dispatch
	done chan batchResult
}

// batchResult is the dispatch outcome delivered to each member. Every
// member observes the full batch duration: in the model all members
// complete when the coalesced launch does.
type batchResult struct {
	d   time.Duration
	err error
}

// exec joins (or opens) the batch for key and blocks until the batch
// dispatches or ctx is cancelled. The first member's execer performs the
// eventual dispatch; a cancelled member withdraws if the batch has not
// dispatched yet, and otherwise returns its context error while the
// batch — detached onto the server's base context — continues for its
// siblings.
func (b *batcher) exec(ctx context.Context, key batchKey, ex batchExecer, work float64) (time.Duration, error) {
	m := &batchMember{work: work, done: make(chan batchResult, 1)}
	b.mu.Lock()
	p := b.pending[key]
	if p == nil {
		p = &pendingBatch{key: key, ex: ex, fire: make(chan struct{})}
		b.pending[key] = p
		go b.lead(p)
	}
	p.members = append(p.members, m)
	if len(p.members) >= b.max && !p.fired {
		p.fired = true
		delete(b.pending, key)
		close(p.fire)
	}
	b.mu.Unlock()

	select {
	case res := <-m.done:
		return res.d, res.err
	case <-ctx.Done():
	}
	b.mu.Lock()
	if !p.dispatched {
		m.gone = true
	}
	b.mu.Unlock()
	return 0, ctx.Err()
}

// lead runs one batch's lifecycle: wait out the window (or an early fire
// when the batch fills), snapshot the members that did not withdraw, and
// issue the single coalesced device dispatch, fanning the result out to
// every live member.
func (b *batcher) lead(p *pendingBatch) {
	timer := b.clock.AfterFunc(b.window, func() {
		b.mu.Lock()
		if !p.fired {
			p.fired = true
			delete(b.pending, p.key)
			close(p.fire)
		}
		b.mu.Unlock()
	})
	<-p.fire
	timer.Stop()

	b.mu.Lock()
	works := make([]float64, 0, len(p.members))
	live := make([]*batchMember, 0, len(p.members))
	for _, m := range p.members {
		if m.gone {
			continue
		}
		works = append(works, m.work)
		live = append(live, m)
	}
	p.dispatched = true
	b.mu.Unlock()

	if len(live) == 0 {
		return // every member withdrew before the window closed
	}
	d, err := p.ex.ExecBatch(b.baseCtx, works)
	b.dispatches.Add(1)
	b.batched.Add(uint64(len(live)))
	b.dispatchC.Inc()
	b.batchedC.Add(uint64(len(live)))
	if c := b.sizes[sizeBucket(len(live))]; c != nil {
		c.Inc()
	}
	for _, m := range live {
		m.done <- batchResult{d: d, err: err}
	}
}
