package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/wire"
)

func TestInvocationIDsAreAssignedAndUnique(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	seen := make(map[string]bool)
	for i := 0; i < 3; i++ {
		_, rep, err := s.Invoke(context.Background(), "k", nil)
		if err != nil {
			t.Fatalf("Invoke %d: %v", i, err)
		}
		if rep.InvocationID == "" {
			t.Fatal("report has no invocation ID")
		}
		if seen[rep.InvocationID] {
			t.Errorf("invocation ID %q reused", rep.InvocationID)
		}
		seen[rep.InvocationID] = true
		if rep.Attempts != 1 {
			t.Errorf("Attempts = %d for a healthy invocation, want 1", rep.Attempts)
		}
	}
}

func TestStatsPerKernelAndPerDevice(t *testing.T) {
	s, _, _ := newTestServer(t, 2, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
			t.Fatalf("Invoke %d: %v", i, err)
		}
	}

	st := s.Stats()
	ks, ok := st.PerKernel["k"]
	if !ok {
		t.Fatalf("Stats has no per-kernel entry: %+v", st.PerKernel)
	}
	if ks.Invocations != n {
		t.Errorf("Invocations = %d, want %d", ks.Invocations, n)
	}
	if ks.ColdStarts != 1 {
		t.Errorf("ColdStarts = %d, want 1", ks.ColdStarts)
	}
	if ks.Cold.Count != 1 || ks.Warm.Count != n-1 {
		t.Errorf("latency counts cold=%d warm=%d, want 1 and %d", ks.Cold.Count, ks.Warm.Count, n-1)
	}
	if ks.Cold.P50 <= 0 || ks.Warm.P50 <= 0 {
		t.Errorf("latency p50s cold=%v warm=%v, want > 0", ks.Cold.P50, ks.Warm.P50)
	}
	if ks.Cold.P50 <= ks.Warm.P99 {
		t.Errorf("cold p50 %v not slower than warm p99 %v", ks.Cold.P50, ks.Warm.P99)
	}
	if ks.PhasesCold["runtime_init"] <= 0 {
		t.Errorf("cold runtime_init phase = %v, want > 0", ks.PhasesCold["runtime_init"])
	}
	if ks.PhasesWarm["runtime_init"] != 0 {
		t.Errorf("warm runtime_init phase = %v, want 0", ks.PhasesWarm["runtime_init"])
	}

	if len(st.PerDevice) == 0 {
		t.Fatal("Stats has no per-device entries")
	}
	runners := 0
	for id, ds := range st.PerDevice {
		runners += ds.Runners
		if ds.Slots <= 0 && ds.Kind != accel.CPU.String() {
			t.Errorf("device %s reports %d slots", id, ds.Slots)
		}
	}
	if runners != st.Runners {
		t.Errorf("per-device runner sum = %d, want %d", runners, st.Runners)
	}
}

func TestWriteMetricsPrometheusEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
			t.Fatalf("Invoke: %v", err)
		}
	}

	var sb strings.Builder
	if err := s.WriteMetrics(&sb); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`kaas_invocations_total{kernel="k"} 2`,
		`kaas_cold_starts_total{kernel="k"} 1`,
		"# TYPE kaas_invocation_latency_seconds histogram",
		`kaas_invocation_latency_seconds_count{kernel="k",temp="cold"} 1`,
		`kaas_invocation_latency_seconds_count{kernel="k",temp="warm"} 1`,
		`kaas_phase_nanoseconds_total{kernel="k",phase="runtime_init",temp="cold"}`,
		"# TYPE kaas_device_slots gauge",
		"# TYPE kaas_device_active_contexts gauge",
		"# TYPE kaas_device_utilization gauge",
		`kaas_runners{device="`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("--- metrics output ---\n%s", out)
	}
}

// TestInvocationIDOverWire: the server-assigned invocation ID travels in
// the result header, so clients can join their observations against
// server logs and metrics.
func TestInvocationIDOverWire(t *testing.T) {
	srv, tcp, logs := startTCP(t)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := srv.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	conn := dialWire(t, tcp.Addr())
	if err := wire.Write(conn, &wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: "k"},
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	reply, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if reply.Type != wire.MsgResult {
		t.Fatalf("reply = %s (%s), want result", reply.Type, reply.Header.Error)
	}
	if reply.Header.InvocationID == "" {
		t.Fatal("result header has no invocation ID")
	}
	// The same ID appears in the server's structured cold-start log line.
	waitFor(t, 2*time.Second, func() bool {
		return strings.Contains(logs.String(), "inv="+reply.Header.InvocationID)
	}, "invocation ID in server logs")
}
