// Package core implements the KaaS server: the paper's contribution. It
// manages a registry of accelerator kernels, a pool of task runners that
// hold warm device contexts, placement of new runners across devices, and
// in-flight-based autoscaling — the architecture of §4.1 (Fig. 5).
//
// The three sharing models of Fig. 4 map onto this code as follows: time
// sharing and space sharing are provided by the baseline package (fresh
// context and fresh host process per task, device slot count 1 or N);
// KaaS is this server, which pays library initialization once at kernel
// registration, device runtime initialization once per runner, and
// kernel setup work once per runner — so warm invocations run at
// copy+execute cost only.
package core

import (
	"time"

	"kaas/internal/metrics"
)

// Report describes how one invocation was served, with the modeled time
// breakdown the evaluation plots.
type Report struct {
	// InvocationID uniquely identifies the invocation on this server. It
	// appears in every structured log line of the invocation path and
	// rides the wire back to the client, so client-side measurements and
	// server-side events can be joined.
	InvocationID string
	// Kernel is the invoked kernel name.
	Kernel string
	// Device is the device the invocation executed on.
	Device string
	// Runner is the task runner that served the invocation.
	Runner string
	// Cold reports whether this invocation started a new runner (or was
	// retried after a device failure, in which case the retry's cold
	// start is part of the invocation).
	Cold bool
	// CachedCold refines Cold: the runner boot hit the compiled-kernel
	// artifact cache and skipped JIT compilation.
	CachedCold bool
	// Attempts counts placement attempts: 1 for a normally served
	// invocation, more when device failures forced failover retries.
	Attempts int
	// Breakdown is the phase decomposition of the modeled time,
	// accumulated across failover retries.
	Breakdown metrics.Breakdown
}

// Total returns the total modeled task time.
func (r *Report) Total() time.Duration { return r.Breakdown.Total() }
