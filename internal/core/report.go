// Package core implements the KaaS server: the paper's contribution. It
// manages a registry of accelerator kernels, a pool of task runners that
// hold warm device contexts, placement of new runners across devices, and
// in-flight-based autoscaling — the architecture of §4.1 (Fig. 5).
//
// The three sharing models of Fig. 4 map onto this code as follows: time
// sharing and space sharing are provided by the baseline package (fresh
// context and fresh host process per task, device slot count 1 or N);
// KaaS is this server, which pays library initialization once at kernel
// registration, device runtime initialization once per runner, and
// kernel setup work once per runner — so warm invocations run at
// copy+execute cost only.
package core

import (
	"time"

	"kaas/internal/metrics"
)

// Report describes how one invocation was served, with the modeled time
// breakdown the evaluation plots.
type Report struct {
	// Kernel is the invoked kernel name.
	Kernel string
	// Device is the device the invocation executed on.
	Device string
	// Runner is the task runner that served the invocation.
	Runner string
	// Cold reports whether this invocation started a new runner.
	Cold bool
	// Breakdown is the phase decomposition of the modeled time.
	Breakdown metrics.Breakdown
}

// Total returns the total modeled task time.
func (r *Report) Total() time.Duration { return r.Breakdown.Total() }
