package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"kaas/internal/accel"
	"kaas/internal/breaker"
	"kaas/internal/kernels"
	"kaas/internal/shm"
	"kaas/internal/wire"
)

// errorCode classifies a server-side error into the wire protocol's
// machine-readable code plus whether a client may retry the same request
// after backoff. Overload and unavailability are transient; deadline,
// unknown-kernel, and internal failures are not.
func errorCode(err error) (code string, retryable bool) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return wire.CodeOverloaded, true
	case errors.Is(err, ErrDraining), errors.Is(err, ErrServerClosed),
		errors.Is(err, ErrUnavailable), errors.Is(err, accel.ErrDeviceFailed),
		errors.Is(err, accel.ErrContextReleased):
		return wire.CodeUnavailable, true
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return wire.CodeDeadlineExceeded, false
	case errors.Is(err, errLeaseRevoked):
		// Stale-lease invokes are retryable by design: the client drops
		// the revoked lease and resends the same payload in-band.
		return wire.CodeLeaseRevoked, true
	case errors.Is(err, ErrUnknownKernel), errors.Is(err, ErrNoDevice):
		return wire.CodeUnknownKernel, false
	default:
		return wire.CodeInternal, false
	}
}

// aLongTimeAgo is a non-zero past deadline used to unblock pending reads.
var aLongTimeAgo = time.Unix(1, 0)

// TCPServer exposes a Server over the KaaS wire protocol — the
// request/response invocation endpoint of Fig. 5. Clients register
// kernels from the built-in kernel library by name (standing in for code
// upload) and invoke them with in-band payloads or out-of-band
// shared-memory keys.
//
// The server is deadline-aware: invocations carrying an expired
// wire.Header.DeadlineNanos are rejected before touching a runner, a
// live deadline bounds the kernel's context, and a client that
// disconnects mid-invocation cancels the kernel's context so the runner
// stops burning device time for an answer nobody will read.
type TCPServer struct {
	srv     *Server
	ln      net.Listener
	regions *shm.Registry
	// arena and leases back the zero-copy out-of-band data plane on
	// multiplexed connections (WithArenaPool); both nil when it is off.
	arena  *shm.ArenaPool
	leases *leaseTable

	mu           sync.Mutex
	conns        map[net.Conn]struct{}
	draining     bool
	closed       bool
	streamsLimit int
	control      ControlHandler
	wg           sync.WaitGroup
}

// ControlHandler serves cluster control-plane frames (MsgControl): it
// receives the request payload and returns the reply payload carried on
// MsgControlAck. A returned error reaches the peer as MsgError.
type ControlHandler func(payload []byte) ([]byte, error)

// SetControlHandler installs the cluster control-plane handler. With no
// handler installed, MsgControl frames are answered with an error, which
// lets a joining node discover that a peer is not clustered.
func (t *TCPServer) SetControlHandler(h ControlHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.control = h
}

func (t *TCPServer) controlHandler() ControlHandler {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.control
}

// SetMaxConnStreams bounds how many concurrent streams one multiplexed
// connection may have in flight (default DefaultMaxConnStreams). Set it
// before clients connect; existing sessions keep the bound they
// negotiated.
func (t *TCPServer) SetMaxConnStreams(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.streamsLimit = n
}

// maxConnStreams returns the per-connection stream bound.
func (t *TCPServer) maxConnStreams() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.streamsLimit > 0 {
		return t.streamsLimit
	}
	return DefaultMaxConnStreams
}

// TCPOption configures a TCPServer at construction.
type TCPOption func(*TCPServer)

// WithArenaPool enables the zero-copy out-of-band data plane: clients on
// multiplexed connections negotiate leases over windows of this pooled
// tensor arena and move payloads by handle instead of copying them
// through the wire protocol. The pool must be the same instance the
// clients map (same host). Leases are revoked — their bytes returned to
// the pool's budget — on connection close, drain, and breaker-open.
func WithArenaPool(p *shm.ArenaPool) TCPOption {
	return func(t *TCPServer) {
		t.arena = p
		t.leases = newLeaseTable(p)
	}
}

// ServeTCP starts accepting KaaS protocol connections on addr
// (e.g. "127.0.0.1:0"). The optional regions registry enables out-of-band
// payload transfer for same-host clients.
func ServeTCP(s *Server, addr string, regions *shm.Registry, opts ...TCPOption) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: listen: %w", err)
	}
	return ServeTCPListener(s, ln, regions, opts...)
}

// ServeTCPListener serves the KaaS protocol on a caller-provided
// listener. Test and benchmark harnesses use it to interpose
// fault-injecting listeners (see internal/faults) between clients and
// the server.
func ServeTCPListener(s *Server, ln net.Listener, regions *shm.Registry, opts ...TCPOption) (*TCPServer, error) {
	if ln == nil {
		return nil, fmt.Errorf("core: nil listener")
	}
	t := &TCPServer{
		srv:     s,
		ln:      ln,
		regions: regions,
		conns:   make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(t)
	}
	if t.arena != nil {
		s.setArena(t.arena)
		// A breaker opening means the device is shedding everything: its
		// queued tensors will not be consumed, so leased arena memory is
		// reclaimed immediately rather than pinned behind a dead device.
		// Clients holding revoked leases fall back to in-band transfer.
		s.OnBreakerTransition(func(dev string, _, to breaker.State) {
			if to != breaker.Open {
				return
			}
			if n := t.leases.revokeAll(); n > 0 {
				s.Logger().Warn("revoked arena leases on breaker open",
					"device", dev, "leases", n)
			}
		})
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener address.
func (t *TCPServer) Addr() string { return t.ln.Addr().String() }

// Close stops the listener and all connections, then waits for handler
// goroutines to exit.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	err := t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return err
}

// Drain gracefully shuts the endpoint down: the listener stops accepting,
// idle connections are unblocked and closed, and connections with a
// request in flight finish it (and get their reply) before closing. If
// ctx expires first the remaining connections are closed hard and the
// context error returned.
func (t *TCPServer) Drain(ctx context.Context) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.draining = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	t.ln.Close() // stop accepting
	// Revoke every arena lease up front: draining connections may still
	// finish their in-flight invocation, but new payloads go in-band, and
	// the arena's bytes are back in the budget before the endpoint closes.
	if t.leases != nil {
		if n := t.leases.revokeAll(); n > 0 {
			t.srv.Logger().Info("revoked arena leases for drain", "leases", n)
		}
	}
	// Poke every connection out of a blocking idle read: the expired
	// read deadline fails the read, and the handler exits silently
	// because the server is draining. A connection inside an invocation
	// is unaffected — its disconnect watcher treats the timeout as
	// benign, and the handler closes the connection after replying.
	for _, c := range conns {
		c.SetReadDeadline(aLongTimeAgo)
	}

	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		t.mu.Lock()
		t.closed = true
		t.mu.Unlock()
		return nil
	case <-ctx.Done():
		t.Close()
		return ctx.Err()
	}
}

func (t *TCPServer) isDraining() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.draining
}

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		if t.draining {
			// Raced with Drain's snapshot: make sure this connection is
			// poked too, so the drain cannot hang on it.
			conn.SetReadDeadline(aLongTimeAgo)
		}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.handle(conn)
	}
}

// serverConn wraps one client connection with a pushback buffer: the
// mid-invocation disconnect watcher may read (at most) one byte that
// belongs to the next request, which is replayed here before the real
// socket is read again.
type serverConn struct {
	net.Conn
	pending []byte
}

// Read serves pushed-back bytes before touching the socket.
func (c *serverConn) Read(p []byte) (int, error) {
	if len(c.pending) > 0 {
		n := copy(p, c.pending)
		c.pending = c.pending[n:]
		return n, nil
	}
	return c.Conn.Read(p)
}

func (t *TCPServer) handle(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close()
	}()

	sc := &serverConn{Conn: conn}
	for {
		msg, err := wire.Read(sc)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && t.isDraining() {
				return // poked out of an idle read by Drain
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				t.reply(sc, &wire.Message{
					Type:   wire.MsgError,
					Header: wire.Header{Error: err.Error(), Code: wire.CodeInternal},
				})
			}
			return
		}
		if msg.Type == wire.MsgHello {
			if msg.Header.MuxVersion >= wire.VersionMux {
				// Upgrade to the multiplexed protocol: acknowledge with
				// the negotiated version and hand the connection to a
				// mux session, which owns it until it closes.
				ok := t.reply(sc, &wire.Message{Type: wire.MsgHelloAck, Header: wire.Header{
					MuxVersion: wire.VersionMux,
					MaxStreams: t.maxConnStreams(),
					StreamID:   msg.Header.StreamID,
				}})
				if !ok {
					return
				}
				t.serveMux(sc)
				return
			}
			// The peer offered nothing newer than the legacy protocol:
			// acknowledge version 1 and keep serving one request at a
			// time on this connection.
			if !t.reply(sc, &wire.Message{Type: wire.MsgHelloAck, Header: wire.Header{MuxVersion: wire.Version}}) {
				return
			}
			continue
		}
		if !t.dispatch(sc, msg) {
			return
		}
		if t.isDraining() {
			// The request in flight when the drain started got its
			// reply; now the connection closes.
			return
		}
	}
}

// marshalStats encodes the server's statistics document for a
// MsgStatsResult reply.
func marshalStats(srv *Server) (json.RawMessage, error) {
	stats, err := json.Marshal(srv.Stats())
	if err != nil {
		return nil, fmt.Errorf("encode stats: %w", err)
	}
	return stats, nil
}

// dispatch handles one message; it reports whether the connection should
// stay open.
func (t *TCPServer) dispatch(sc *serverConn, msg *wire.Message) bool {
	switch msg.Type {
	case wire.MsgRegister:
		return t.handleRegister(sc, msg)
	case wire.MsgInvoke:
		return t.handleInvoke(sc, msg)
	case wire.MsgList:
		return t.reply(sc, &wire.Message{
			Type:   wire.MsgListResult,
			Header: wire.Header{Names: t.srv.Kernels()},
		})
	case wire.MsgStats:
		stats, err := marshalStats(t.srv)
		if err != nil {
			return t.replyErr(sc, err)
		}
		return t.reply(sc, &wire.Message{
			Type:   wire.MsgStatsResult,
			Header: wire.Header{Stats: stats},
		})
	case wire.MsgControl:
		h := t.controlHandler()
		if h == nil {
			return t.replyErr(sc, errors.New("cluster control plane not enabled"))
		}
		resp, err := h(msg.Body)
		if err != nil {
			return t.replyErr(sc, err)
		}
		return t.reply(sc, &wire.Message{Type: wire.MsgControlAck, Body: resp})
	default:
		return t.replyErr(sc, fmt.Errorf("unexpected message type %s", msg.Type))
	}
}

func (t *TCPServer) handleRegister(sc *serverConn, msg *wire.Message) bool {
	k, err := kernels.ByName(msg.Header.Kernel)
	if err != nil {
		// Not in the library: classify as UNKNOWN_KERNEL on the wire.
		return t.replyErr(sc, fmt.Errorf("%w: %v", ErrUnknownKernel, err))
	}
	if err := t.srv.Register(k); err != nil && !errors.Is(err, ErrAlreadyRegistered) {
		return t.replyErr(sc, err)
	}
	return t.reply(sc, &wire.Message{
		Type:   wire.MsgRegistered,
		Header: wire.Header{Kernel: msg.Header.Kernel},
	})
}

// invokeContext builds the invocation context from the request's wire
// deadline. It returns an error when the deadline already passed, so
// expired work is rejected before it reaches a runner.
func invokeContext(msg *wire.Message) (context.Context, context.CancelFunc, error) {
	if dl := msg.Header.DeadlineNanos; dl > 0 {
		deadline := time.Unix(0, dl)
		if !time.Now().Before(deadline) {
			return nil, nil, fmt.Errorf("core: %w: deadline passed %v ago",
				context.DeadlineExceeded, time.Since(deadline).Round(time.Microsecond))
		}
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	return ctx, cancel, nil
}

// watchPeer watches for the client vanishing while an invocation is in
// flight: a read on an idle request/response connection only returns
// when the peer disconnects (or, rarely, pipelines the next request —
// whose first byte is pushed back). The returned stop function must be
// called before the connection is read or replied to again.
func (t *TCPServer) watchPeer(sc *serverConn, cancel context.CancelFunc) (stop func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1)
		n, err := sc.Conn.Read(buf)
		if n > 0 {
			sc.pending = append(sc.pending, buf[:n]...)
		}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return // unblocked by stop()
			}
			cancel() // peer gone: cancel the kernel's context
		}
	}()
	return func() {
		sc.Conn.SetReadDeadline(aLongTimeAgo)
		<-done
		sc.Conn.SetReadDeadline(time.Time{})
	}
}

func (t *TCPServer) handleInvoke(sc *serverConn, msg *wire.Message) bool {
	// Legacy (pre-tenant) peers leave Tenant empty; the server maps that
	// to the deterministic "default" tenant at admission.
	req := &kernels.Request{Params: kernels.Params(msg.Header.Params), Tenant: msg.Header.Tenant}
	switch {
	case msg.Header.ShmKey != "":
		if t.regions == nil {
			return t.replyErr(sc, errors.New("out-of-band transfer not configured"))
		}
		data, err := t.regions.Get(msg.Header.ShmKey)
		if err != nil {
			return t.replyErr(sc, err)
		}
		req.Data = data
	case len(msg.Body) > 0:
		req.Data = msg.Body
		t.srv.dpMet.inbandBytes.Add(uint64(len(msg.Body)))
	}

	ctx, cancel, err := invokeContext(msg)
	if err != nil {
		t.srv.Logger().Warn("rejecting expired invocation",
			"kernel", msg.Header.Kernel, "remote", sc.RemoteAddr(), "err", err)
		return t.replyErr(sc, err)
	}
	defer cancel()
	stopWatch := t.watchPeer(sc, cancel)

	resp, report, err := t.srv.Invoke(ctx, msg.Header.Kernel, req)
	stopWatch()
	if err != nil {
		if ctx.Err() != nil {
			// The client gave up (deadline or disconnect): the reply is
			// best-effort and the connection is not worth keeping.
			t.srv.Logger().Info("invocation cancelled",
				"kernel", msg.Header.Kernel, "remote", sc.RemoteAddr(), "cause", ctx.Err())
			t.replyErr(sc, err)
			return false
		}
		return t.replyErr(sc, err)
	}

	out := &wire.Message{
		Type: wire.MsgResult,
		Header: wire.Header{
			Kernel:          msg.Header.Kernel,
			Values:          resp.Values,
			ColdStart:       report.Cold,
			CachedColdStart: report.CachedCold,
			InvocationID:    report.InvocationID,
			DurationNanos:   int64(report.Total()),
		},
	}
	if msg.Header.WantShmResult && t.regions != nil && len(resp.Data) > 0 {
		key, err := t.regions.Create(resp.Data)
		if err != nil {
			return t.replyErr(sc, err)
		}
		out.Header.ResultShmKey = key
		if !t.reply(sc, out) {
			// The peer vanished before the reply landed: nobody will ever
			// read (and delete) the result region, so its bytes must be
			// returned to the registry budget here or they leak forever.
			t.regions.Delete(key)
			return false
		}
		return true
	}
	out.Body = resp.Data
	return t.reply(sc, out)
}

func (t *TCPServer) replyErr(conn net.Conn, err error) bool {
	code, retryable := errorCode(err)
	return t.reply(conn, &wire.Message{
		Type:   wire.MsgError,
		Header: wire.Header{Error: err.Error(), Code: code, Retryable: retryable},
	})
}

// reply writes one message, reporting whether the connection is still
// usable. A failed write means the peer is gone: the connection is
// closed (so the handler loop stops reading from a dead peer) and the
// failure is logged rather than silently swallowed.
func (t *TCPServer) reply(conn net.Conn, msg *wire.Message) bool {
	if err := wire.Write(conn, msg); err != nil {
		t.srv.Logger().Warn("reply write failed, closing connection",
			"remote", conn.RemoteAddr(), "type", msg.Type.String(), "err", err)
		conn.Close()
		return false
	}
	return true
}
