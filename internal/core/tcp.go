package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"kaas/internal/kernels"
	"kaas/internal/shm"
	"kaas/internal/wire"
)

// TCPServer exposes a Server over the KaaS wire protocol — the
// request/response invocation endpoint of Fig. 5. Clients register
// kernels from the built-in kernel library by name (standing in for code
// upload) and invoke them with in-band payloads or out-of-band
// shared-memory keys.
type TCPServer struct {
	srv     *Server
	ln      net.Listener
	regions *shm.Registry

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeTCP starts accepting KaaS protocol connections on addr
// (e.g. "127.0.0.1:0"). The optional regions registry enables out-of-band
// payload transfer for same-host clients.
func ServeTCP(s *Server, addr string, regions *shm.Registry) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: listen: %w", err)
	}
	t := &TCPServer{
		srv:     s,
		ln:      ln,
		regions: regions,
		conns:   make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener address.
func (t *TCPServer) Addr() string { return t.ln.Addr().String() }

// Close stops the listener and all connections, then waits for handler
// goroutines to exit.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	err := t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return err
}

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.handle(conn)
	}
}

func (t *TCPServer) handle(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		conn.Close()
	}()

	for {
		msg, err := wire.Read(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				t.reply(conn, &wire.Message{
					Type:   wire.MsgError,
					Header: wire.Header{Error: err.Error()},
				})
			}
			return
		}
		if !t.dispatch(conn, msg) {
			return
		}
	}
}

// dispatch handles one message; it reports whether the connection should
// stay open.
func (t *TCPServer) dispatch(conn net.Conn, msg *wire.Message) bool {
	switch msg.Type {
	case wire.MsgRegister:
		t.handleRegister(conn, msg)
	case wire.MsgInvoke:
		t.handleInvoke(conn, msg)
	case wire.MsgList:
		t.reply(conn, &wire.Message{
			Type:   wire.MsgListResult,
			Header: wire.Header{Names: t.srv.Kernels()},
		})
	case wire.MsgStats:
		stats, err := json.Marshal(t.srv.Stats())
		if err != nil {
			t.replyErr(conn, fmt.Errorf("encode stats: %w", err))
			return true
		}
		t.reply(conn, &wire.Message{
			Type:   wire.MsgStatsResult,
			Header: wire.Header{Stats: stats},
		})
	default:
		t.replyErr(conn, fmt.Errorf("unexpected message type %s", msg.Type))
	}
	return true
}

func (t *TCPServer) handleRegister(conn net.Conn, msg *wire.Message) {
	k, err := kernels.ByName(msg.Header.Kernel)
	if err != nil {
		t.replyErr(conn, err)
		return
	}
	if err := t.srv.Register(k); err != nil && !errors.Is(err, ErrAlreadyRegistered) {
		t.replyErr(conn, err)
		return
	}
	t.reply(conn, &wire.Message{
		Type:   wire.MsgRegistered,
		Header: wire.Header{Kernel: msg.Header.Kernel},
	})
}

func (t *TCPServer) handleInvoke(conn net.Conn, msg *wire.Message) {
	req := &kernels.Request{Params: kernels.Params(msg.Header.Params)}
	switch {
	case msg.Header.ShmKey != "":
		if t.regions == nil {
			t.replyErr(conn, errors.New("out-of-band transfer not configured"))
			return
		}
		data, err := t.regions.Get(msg.Header.ShmKey)
		if err != nil {
			t.replyErr(conn, err)
			return
		}
		req.Data = data
	case len(msg.Body) > 0:
		req.Data = msg.Body
	}

	resp, report, err := t.srv.Invoke(context.Background(), msg.Header.Kernel, req)
	if err != nil {
		t.replyErr(conn, err)
		return
	}

	out := &wire.Message{
		Type: wire.MsgResult,
		Header: wire.Header{
			Kernel:        msg.Header.Kernel,
			Values:        resp.Values,
			ColdStart:     report.Cold,
			DurationNanos: int64(report.Total()),
		},
	}
	if msg.Header.WantShmResult && t.regions != nil && len(resp.Data) > 0 {
		key, err := t.regions.Create(resp.Data)
		if err != nil {
			t.replyErr(conn, err)
			return
		}
		out.Header.ResultShmKey = key
	} else {
		out.Body = resp.Data
	}
	t.reply(conn, out)
}

func (t *TCPServer) replyErr(conn net.Conn, err error) {
	t.reply(conn, &wire.Message{
		Type:   wire.MsgError,
		Header: wire.Header{Error: err.Error()},
	})
}

func (t *TCPServer) reply(conn net.Conn, msg *wire.Message) {
	// A write failure means the peer is gone; the read loop will notice.
	_ = wire.Write(conn, msg)
}
