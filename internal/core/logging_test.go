package core

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"

	"kaas/internal/accel"
)

// TestLifecycleEventsLogged captures the server's structured events
// through a buffered slog handler.
func TestLifecycleEventsLogged(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))

	s, host, _ := newTestServer(t, 2, func(c *Config) {
		c.Logger = logger
	})
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	// Replacement drains the idle runner.
	if err := s.ReplaceKernel(&fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}); err != nil {
		t.Fatalf("ReplaceKernel: %v", err)
	}
	// Failure triggers a failover log.
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	st := s.Stats()
	for id := range st.RunnersPerDevice {
		dev, _ := host.Device(id)
		dev.Fail()
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke after failure: %v", err)
	}

	out := buf.String()
	for _, want := range []string{
		"kernel registered",
		"runner started",
		"kernel replaced",
		"device failure, failing over",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

// TestNoLoggerIsSilent ensures the nil-logger default never panics.
func TestNoLoggerIsSilent(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
}
