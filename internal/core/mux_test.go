package core

import (
	"context"
	"net"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/shm"
	"kaas/internal/vclock"
	"kaas/internal/wire"
)

// muxHandshake upgrades a raw connection to the multiplexed protocol
// and returns the server's acknowledgement.
func muxHandshake(t *testing.T, conn net.Conn) *wire.Message {
	t.Helper()
	err := wire.Write(conn, &wire.Message{Type: wire.MsgHello, Header: wire.Header{MuxVersion: wire.VersionMux}})
	if err != nil {
		t.Fatalf("write hello: %v", err)
	}
	ack, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read hello ack: %v", err)
	}
	if ack.Type != wire.MsgHelloAck || ack.Header.MuxVersion != wire.VersionMux {
		t.Fatalf("hello ack = %s (mux version %d), want ack at version %d",
			ack.Type, ack.Header.MuxVersion, wire.VersionMux)
	}
	return ack
}

// TestMuxPipelinedStreams pipelines several invocations over one
// upgraded connection without waiting for replies in between: the
// server must dispatch them concurrently and answer every stream,
// in whatever order, each reply tagged with its StreamID.
func TestMuxPipelinedStreams(t *testing.T) {
	_, tcp, _ := startTCP(t)
	conn := dialWire(t, tcp.Addr())
	muxHandshake(t, conn)

	// Register over the mux session itself (registrations ride the same
	// framing, just inline).
	err := wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgRegister, Header: wire.Header{
		Kernel: "matmul", StreamID: 100,
	}})
	if err != nil {
		t.Fatalf("write register: %v", err)
	}
	reg, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read register reply: %v", err)
	}
	if reg.Type != wire.MsgRegistered || reg.Header.StreamID != 100 {
		t.Fatalf("register reply = %s (stream %d), want registered on stream 100",
			reg.Type, reg.Header.StreamID)
	}

	const streams = 8
	for id := uint64(1); id <= streams; id++ {
		err := wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgInvoke, Header: wire.Header{
			Kernel:   "matmul",
			Params:   map[string]float64{"n": 32, "seed": float64(id)},
			StreamID: id,
		}})
		if err != nil {
			t.Fatalf("write invoke %d: %v", id, err)
		}
	}

	got := make(map[uint64]bool)
	for i := 0; i < streams; i++ {
		reply, err := wire.Read(conn)
		if err != nil {
			t.Fatalf("read reply %d: %v", i, err)
		}
		if reply.Type != wire.MsgResult {
			t.Fatalf("reply %d = %s (%s), want result", i, reply.Type, reply.Header.Error)
		}
		if reply.Version != wire.VersionMux {
			t.Errorf("reply version = %d, want %d", reply.Version, wire.VersionMux)
		}
		id := reply.Header.StreamID
		if id < 1 || id > streams || got[id] {
			t.Fatalf("reply %d has unexpected or duplicate stream %d", i, id)
		}
		got[id] = true
		if reply.Header.Values["checksum"] <= 0 {
			t.Errorf("stream %d checksum = %v", id, reply.Header.Values["checksum"])
		}
	}
}

// TestMuxCancelFrameStopsKernel sends a CANCEL frame for an in-flight
// stream: the server must cancel that invocation's context (freeing the
// device long before the kernel would finish), answer the stream with a
// deadline-class error, and keep the connection serving other streams.
func TestMuxCancelFrameStopsKernel(t *testing.T) {
	srv, tcp, _ := startTCP(t)
	if err := srv.Register(slowKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	conn := dialWire(t, tcp.Addr())
	muxHandshake(t, conn)

	err := wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgInvoke, Header: wire.Header{
		Kernel: "slow", StreamID: 1,
	}})
	if err != nil {
		t.Fatalf("write invoke: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Stats().InFlight == 1 }, "invocation in flight")

	err = wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgCancel, Header: wire.Header{
		StreamID: 1,
	}})
	if err != nil {
		t.Fatalf("write cancel: %v", err)
	}
	reply, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read cancel reply: %v", err)
	}
	if reply.Type != wire.MsgError || reply.Header.StreamID != 1 {
		t.Fatalf("cancel reply = %s (stream %d), want error on stream 1", reply.Type, reply.Header.StreamID)
	}
	if reply.Header.Code != wire.CodeDeadlineExceeded {
		t.Errorf("cancel reply code = %q, want %q", reply.Header.Code, wire.CodeDeadlineExceeded)
	}
	if reply.Header.Retryable {
		t.Error("cancelled invocation marked retryable")
	}
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 0 }, "device to be freed")

	// The connection outlives the per-stream cancel.
	err = wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgList, Header: wire.Header{
		StreamID: 2,
	}})
	if err != nil {
		t.Fatalf("write list: %v", err)
	}
	if reply, err = wire.Read(conn); err != nil || reply.Type != wire.MsgListResult {
		t.Fatalf("list after cancel = %v, %v; want list result", reply, err)
	}
}

// TestMuxHelloNegotiation pins the version negotiation rules: a client
// offering nothing newer than the legacy protocol stays legacy on the
// same connection, and the mux acknowledgement advertises the configured
// per-connection stream bound.
func TestMuxHelloNegotiation(t *testing.T) {
	srv, tcp, _ := startTCP(t)
	if err := srv.Register(slowKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	tcp.SetMaxConnStreams(3)

	// Legacy offer: acknowledged at version 1, connection keeps serving
	// plain request/response frames.
	legacy := dialWire(t, tcp.Addr())
	if err := wire.Write(legacy, &wire.Message{Type: wire.MsgHello, Header: wire.Header{MuxVersion: wire.Version}}); err != nil {
		t.Fatalf("write legacy hello: %v", err)
	}
	ack, err := wire.Read(legacy)
	if err != nil {
		t.Fatalf("read legacy ack: %v", err)
	}
	if ack.Type != wire.MsgHelloAck || ack.Header.MuxVersion != wire.Version {
		t.Fatalf("legacy ack = %s (mux version %d), want ack at version %d",
			ack.Type, ack.Header.MuxVersion, wire.Version)
	}
	if err := wire.Write(legacy, &wire.Message{Type: wire.MsgList}); err != nil {
		t.Fatalf("write legacy list: %v", err)
	}
	if reply, err := wire.Read(legacy); err != nil || reply.Type != wire.MsgListResult {
		t.Fatalf("legacy list after hello = %v, %v; want list result", reply, err)
	}

	// Mux offer: the acknowledgement carries the stream bound.
	mux := dialWire(t, tcp.Addr())
	ack = muxHandshake(t, mux)
	if ack.Header.MaxStreams != 3 {
		t.Errorf("MaxStreams = %d, want 3", ack.Header.MaxStreams)
	}
}

// TestMuxDrainFinishesStreams drains the endpoint while a multiplexed
// stream is mid-kernel: the stream must run to completion and deliver
// its reply before the drain finishes, matching the legacy connection
// drain semantics.
func TestMuxDrainFinishesStreams(t *testing.T) {
	clock := vclock.Scaled(1000)
	host, err := accel.NewHost(clock, "node", accel.XeonE52698, accel.TeslaP100)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	srv, err := New(Config{Clock: clock, Host: host})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	k := &execHookKernel{
		fakeKernel: &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()},
		onExecute: func() {
			started <- struct{}{}
			<-gate
		},
	}
	if err := srv.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	tcp, err := ServeTCP(srv, "127.0.0.1:0", shm.NewRegistry(1<<30))
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	t.Cleanup(func() { tcp.Close() })

	conn := dialWire(t, tcp.Addr())
	muxHandshake(t, conn)
	err = wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgInvoke, Header: wire.Header{
		Kernel: "k", StreamID: 9,
	}})
	if err != nil {
		t.Fatalf("write invoke: %v", err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("invocation never reached the kernel")
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- tcp.Drain(context.Background()) }()

	// The drain must wait for the in-flight stream.
	select {
	case err := <-drainDone:
		t.Fatalf("drain finished with a stream mid-kernel: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(gate)
	reply, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read reply during drain: %v", err)
	}
	if reply.Type != wire.MsgResult || reply.Header.StreamID != 9 {
		t.Fatalf("drain reply = %s (stream %d), want result on stream 9", reply.Type, reply.Header.StreamID)
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not finish after the stream completed")
	}
}
