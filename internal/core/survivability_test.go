package core

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/breaker"
	"kaas/internal/faults"
	"kaas/internal/shm"
	"kaas/internal/vclock"
	"kaas/internal/wire"
)

// TestBreakerOpensOnFlappingDeviceAndRecovers is the survivability chaos
// test: one of two GPUs flaps (fails mid-service, repaired by the next
// cold-start spawn) until its circuit breaker opens. While the breaker
// is open, sustained load must complete entirely on the healthy device —
// zero scheduler-loop retries against the flapper — and after the open
// timeout a half-open probe must bring the healed device back.
func TestBreakerOpensOnFlappingDeviceAndRecovers(t *testing.T) {
	const spawnCost = 31 * time.Millisecond
	hc := &hookClock{Clock: vclock.Scaled(5000)}
	host, err := accel.NewHost(hc, "test", accel.XeonE52698, testGPUProfile(), testGPUProfile())
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	dev0, dev1 := host.Devices()[0], host.Devices()[1]
	flapper := faults.NewDeviceFlapper(dev0)

	s, err := New(Config{
		Clock:                hc,
		Host:                 host,
		RunnerSpawnCost:      spawnCost,
		MaxRunnersPerDevice:  1,
		MaxInFlightPerRunner: 1,
		BreakerOpenTimeout:   10 * time.Minute, // modeled
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)

	// The flapper's repair half runs during the distinctive cold-start
	// spawn sleep, so every placement attempt finds the device healthy.
	hc.onSleep = func(d time.Duration) {
		if d == spawnCost {
			flapper.Repair()
		}
	}

	dev0Busy := func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.runnersOn[dev0.ID()] > 0
	}

	// Hook modes: chaos fails dev0 whenever an invocation is running on
	// it; block parks the first execution NOT on dev0 (to pin the healthy
	// device's runner while the recovery probe places on dev0).
	const (
		modeChaos = iota
		modeBlock
	)
	var mode atomic.Int32
	gate := make(chan struct{})
	blocked := make(chan struct{}, 1)
	k := &execHookKernel{
		fakeKernel: &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()},
		onExecute: func() {
			switch mode.Load() {
			case modeChaos:
				if dev0Busy() {
					flapper.Fail()
				}
			case modeBlock:
				if !dev0Busy() {
					blocked <- struct{}{}
					<-gate
				}
			}
		},
	}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// Phase A: with the healthy device down, every failover attempt lands
	// on the flapper and fails mid-service. Three consecutive failures
	// trip the breaker; the invocation then exhausts its budget.
	dev1.Fail()
	if _, _, err := s.Invoke(context.Background(), "k", nil); !errors.Is(err, accel.ErrDeviceFailed) {
		t.Fatalf("chaos invoke err = %v, want ErrDeviceFailed", err)
	}
	if got := s.breakers.State(dev0.ID()); got != breaker.Open {
		t.Fatalf("breaker state after 3 consecutive failures = %v, want open", got)
	}
	if got := k.executions(); got != 3 {
		t.Fatalf("kernel executed %d times in the chaos phase, want 3", got)
	}

	// Phase B: both devices look healthy again, but dev0's breaker is
	// open. Sustained load must be served entirely by dev1 — if the
	// scheduler retried against dev0 even once, the chaos hook would fail
	// it mid-service and the failover retry would inflate the execution
	// count past one per invocation.
	flapper.Repair()
	dev1.Repair()
	const sustained = 5
	for i := 0; i < sustained; i++ {
		if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
			t.Fatalf("sustained invoke %d with open breaker: %v", i, err)
		}
	}
	if got := k.executions(); got != 3+sustained {
		t.Errorf("executions after sustained load = %d, want %d (placement retried the open device)",
			got, 3+sustained)
	}
	if fails, _ := flapper.Cycles(); fails != 3 {
		t.Errorf("device failed %d times, want 3 (load reached the open device)", fails)
	}
	st := s.Stats()
	if got := st.PerDevice[dev0.ID()].BreakerState; got != "open" {
		t.Errorf("dev0 BreakerState = %q, want open", got)
	}
	if got := st.PerDevice[dev0.ID()].Runners; got != 0 {
		t.Errorf("dev0 has %d runners while its breaker is open, want 0", got)
	}
	s.mu.Lock()
	if d := s.leastLoadedDeviceLocked(s.entries["k"]); d != nil && d.ID() == dev0.ID() {
		s.mu.Unlock()
		t.Fatal("last-resort placement returned the breaker-open device")
	}
	s.mu.Unlock()

	// Phase C: past the open timeout the breaker admits one half-open
	// probe. Pin dev1's only runner with a blocked invocation so the next
	// one must place somewhere new: the healed dev0.
	hc.Sleep(11 * time.Minute)
	mode.Store(modeBlock)
	pinErr := make(chan error, 1)
	go func() {
		_, _, err := s.Invoke(context.Background(), "k", nil)
		pinErr <- err
	}()
	select {
	case <-blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("pinning invocation never reached the kernel")
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("probe invoke: %v", err)
	}
	close(gate)
	select {
	case err := <-pinErr:
		if err != nil {
			t.Fatalf("pinned invoke: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pinned invocation never finished")
	}

	if got := s.breakers.State(dev0.ID()); got != breaker.Closed {
		t.Errorf("breaker state after successful probe = %v, want closed", got)
	}
	st = s.Stats()
	if got := st.PerDevice[dev0.ID()].Runners; got != 1 {
		t.Errorf("dev0 runners after recovery = %d, want 1 (placement did not return)", got)
	}
	if got := st.PerDevice[dev0.ID()].BreakerTransitions; got != 3 {
		t.Errorf("dev0 breaker transitions = %d, want 3 (open, half-open, closed)", got)
	}
}

// TestAdmissionShedsExcessLoad: with a server-wide in-flight cap, excess
// invocations must be rejected promptly with ErrOverloaded — shed, not
// queued behind work that may never finish — and counted in stats.
func TestAdmissionShedsExcessLoad(t *testing.T) {
	s, _, _ := newTestServer(t, 1, func(c *Config) {
		c.MaxInFlightTotal = 2
	})
	gate := make(chan struct{})
	started := make(chan struct{}, 2)
	k := &execHookKernel{
		fakeKernel: &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()},
		onExecute: func() {
			started <- struct{}{}
			<-gate
		},
	}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// Fill the cap with two invocations parked inside the kernel.
	admitted := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, err := s.Invoke(context.Background(), "k", nil)
			admitted <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("admitted invocations never reached the kernel")
		}
	}

	// Everything beyond the cap is shed immediately.
	for i := 0; i < 3; i++ {
		start := time.Now()
		_, _, err := s.Invoke(context.Background(), "k", nil)
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("overload invoke %d err = %v, want ErrOverloaded", i, err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Errorf("overload rejection %d took %v, want immediate", i, elapsed)
		}
	}
	st := s.Stats()
	if st.Shed != 3 {
		t.Errorf("Stats.Shed = %d, want 3", st.Shed)
	}
	if ks := st.PerKernel["k"]; ks.Shed != 3 {
		t.Errorf("kernel Shed = %d, want 3", ks.Shed)
	}

	// Hold the admitted pair a while longer so the kernel's observed
	// wall time is far above the hopeless deadline probed below.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-admitted; err != nil {
			t.Errorf("admitted invocation failed: %v", err)
		}
	}

	// Deadline-aware shedding: with wall-time history on the books (the
	// two slow invocations above), a deadline far shorter than the
	// expected service time is rejected before burning any capacity.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, _, err := s.Invoke(ctx, "k", nil); !errors.Is(err, ErrOverloaded) {
		t.Errorf("hopeless-deadline invoke err = %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Shed != 4 {
		t.Errorf("Stats.Shed after deadline rejection = %d, want 4", st.Shed)
	}
}

// TestOverloadedCodeOverTCP: admission rejections must reach the wire as
// structured OVERLOADED errors marked retryable, while unknown kernels
// get a non-retryable UNKNOWN_KERNEL.
func TestOverloadedCodeOverTCP(t *testing.T) {
	clock := vclock.Scaled(1000)
	host, err := accel.NewHost(clock, "node", accel.XeonE52698, accel.TeslaP100)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	srv, err := New(Config{Clock: clock, Host: host, MaxInFlightTotal: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	if err := srv.Register(slowKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	tcp, err := ServeTCP(srv, "127.0.0.1:0", shm.NewRegistry(1<<30))
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	t.Cleanup(func() { tcp.Close() })

	// Occupy the server's single admission slot with the slow kernel.
	conn1 := dialWire(t, tcp.Addr())
	if err := wire.Write(conn1, &wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: "slow"},
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 1 }, "invocation in flight")

	conn2 := dialWire(t, tcp.Addr())
	start := time.Now()
	if err := wire.Write(conn2, &wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: "slow"},
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	reply, err := wire.Read(conn2)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if reply.Type != wire.MsgError {
		t.Fatalf("reply = %s, want error", reply.Type)
	}
	if reply.Header.Code != wire.CodeOverloaded {
		t.Errorf("Code = %q, want %q (error %q)", reply.Header.Code, wire.CodeOverloaded, reply.Header.Error)
	}
	if !reply.Header.Retryable {
		t.Error("OVERLOADED reply not marked retryable")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("shed took %v, want immediate (the slow kernel runs for seconds)", elapsed)
	}

	// Unknown kernels are a caller bug, not a capacity problem: the code
	// must be UNKNOWN_KERNEL and not retryable.
	if err := wire.Write(conn2, &wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: "no-such-kernel"},
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	reply, err = wire.Read(conn2)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if reply.Type != wire.MsgError {
		t.Fatalf("reply = %s, want error", reply.Type)
	}
	if reply.Header.Code != wire.CodeUnknownKernel {
		t.Errorf("Code = %q, want %q", reply.Header.Code, wire.CodeUnknownKernel)
	}
	if reply.Header.Retryable {
		t.Error("UNKNOWN_KERNEL reply marked retryable")
	}

	// Unblock the slow invocation before teardown so host close doesn't
	// race a live device context.
	conn1.Close()
	waitFor(t, 4*time.Second, func() bool { return srv.Stats().InFlight == 0 }, "in-flight drain")
}

// TestCloseFencesInFlightInvocation: Close must not yank the device
// context out from under a serving kernel. Run with -race: the old Close
// released every runner's context immediately, racing the invocation's
// copy-out. The fenced runner finishes, then releases its context.
func TestCloseFencesInFlightInvocation(t *testing.T) {
	s, host, _ := newTestServer(t, 1, nil)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	k := &execHookKernel{
		fakeKernel: &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()},
		onExecute: func() {
			started <- struct{}{}
			<-gate
		},
	}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := s.Invoke(context.Background(), "k", nil)
		done <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("invocation never reached the kernel")
	}

	s.Close()
	select {
	case err := <-done:
		t.Fatalf("invocation returned %v during Close, want it to keep running", err)
	default:
	}

	close(gate)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("in-flight invocation failed after Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fenced invocation never finished")
	}

	// The fence is not a leak: once the invocation finished, its device
	// context must have been released.
	waitFor(t, 2*time.Second, func() bool {
		return host.Devices()[0].Stats().ActiveContexts == 0
	}, "fenced runner to release its device context")
}

// TestDrainCompletesInFlightThenCloses: Drain lets admitted work finish,
// rejects new work with ErrDraining, and closes the server once idle.
func TestDrainCompletesInFlightThenCloses(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	k := &execHookKernel{
		fakeKernel: &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()},
		onExecute: func() {
			started <- struct{}{}
			<-gate
		},
	}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	invDone := make(chan error, 1)
	go func() {
		_, _, err := s.Invoke(context.Background(), "k", nil)
		invDone <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("invocation never reached the kernel")
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(context.Background()) }()
	waitFor(t, 2*time.Second, func() bool { return s.Stats().Draining }, "server to start draining")

	if _, _, err := s.Invoke(context.Background(), "k", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("invoke while draining err = %v, want ErrDraining", err)
	}
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned %v with work in flight", err)
	default:
	}

	close(gate)
	if err := <-invDone; err != nil {
		t.Errorf("in-flight invocation failed during drain: %v", err)
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Errorf("Drain = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned after the last invocation finished")
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); !errors.Is(err, ErrServerClosed) {
		t.Errorf("invoke after drain err = %v, want ErrServerClosed", err)
	}
}

// TestDrainDeadlineFencesRemainingWork: an expired drain context closes
// the server without dropping the invocation still in flight.
func TestDrainDeadlineFencesRemainingWork(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	k := &execHookKernel{
		fakeKernel: &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()},
		onExecute: func() {
			started <- struct{}{}
			<-gate
		},
	}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	invDone := make(chan error, 1)
	go func() {
		_, _, err := s.Invoke(context.Background(), "k", nil)
		invDone <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("invocation never reached the kernel")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with blocked work = %v, want DeadlineExceeded", err)
	}
	// The cut-short drain fenced, not dropped, the invocation.
	close(gate)
	select {
	case err := <-invDone:
		if err != nil {
			t.Errorf("invocation failed after forced drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fenced invocation never finished")
	}
}

// TestTCPDrainCompletesInFlight: TCPServer.Drain stops accepting new
// connections but lets the invocation already being served finish and
// deliver its reply.
func TestTCPDrainCompletesInFlight(t *testing.T) {
	clock := vclock.Scaled(1000)
	host, err := accel.NewHost(clock, "node", accel.XeonE52698, accel.TeslaP100)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	srv, err := New(Config{Clock: clock, Host: host})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	k := &execHookKernel{
		fakeKernel: &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()},
		onExecute: func() {
			started <- struct{}{}
			<-gate
		},
	}
	if err := srv.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	tcp, err := ServeTCP(srv, "127.0.0.1:0", shm.NewRegistry(1<<30))
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	t.Cleanup(func() { tcp.Close() })

	conn := dialWire(t, tcp.Addr())
	if err := wire.Write(conn, &wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: "k"},
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("invocation never reached the kernel")
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- tcp.Drain(context.Background()) }()

	// New connections stop being accepted once the listener is down.
	waitFor(t, 2*time.Second, func() bool {
		c, err := net.DialTimeout("tcp", tcp.Addr(), 100*time.Millisecond)
		if err != nil {
			return true
		}
		c.Close()
		return false
	}, "listener to stop accepting")

	// The in-flight invocation still gets its reply.
	close(gate)
	reply, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read during drain: %v", err)
	}
	if reply.Type != wire.MsgResult {
		t.Fatalf("reply = %s (%s), want result", reply.Type, reply.Header.Error)
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Errorf("TCP Drain = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("TCP drain never finished after the reply was delivered")
	}
}

// TestUnavailableWhenEveryBreakerOpen: with every device of the kind
// behind an open breaker, an invocation fails fast with ErrUnavailable
// instead of queueing against capacity that cannot exist.
func TestUnavailableWhenEveryBreakerOpen(t *testing.T) {
	s, host, _ := newTestServer(t, 1, func(c *Config) {
		c.BreakerThreshold = 1
		c.BreakerOpenTimeout = time.Hour // modeled: never recovers in-test
	})
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	host.Devices()[0].Fail()
	// The first invocation's cold start fails against the dead device and
	// trips its breaker (threshold 1); the failover attempt then finds no
	// eligible device left, so the invocation itself already surfaces
	// ErrUnavailable.
	if _, _, err := s.Invoke(context.Background(), "k", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("first invoke err = %v, want ErrUnavailable", err)
	}
	if got := s.breakers.State(host.Devices()[0].ID()); got != breaker.Open {
		t.Fatalf("breaker state after failed cold start = %v, want open", got)
	}
	start := time.Now()
	_, _, err := s.Invoke(context.Background(), "k", nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("second invoke err = %v, want ErrUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("ErrUnavailable took %v, want immediate", elapsed)
	}
}

// TestCapacityLostAfterAdmission: the queue-bound admission formula
// (inFlight >= healthy + bound) happily admits work when healthy
// capacity is zero — a backlog of zero always sits under the bound — so
// capacity that vanished before (or while) an invocation queued used to
// slip through admission with nowhere to run. The dispatch-time
// capacity recheck must shed such invocations with the typed overload
// error, counted like any other admission rejection. Regression test
// for the capacity-snapshot bug.
func TestCapacityLostAfterAdmission(t *testing.T) {
	s, host, _ := newTestServer(t, 1, func(c *Config) {
		c.BreakerThreshold = 1
		c.BreakerOpenTimeout = time.Hour // modeled: never recovers in-test
		c.MaxQueuePerKernel = 4
	})
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// The only GPU dies: healthy capacity is 0, yet the queue-bound
	// formula still admits (0 in flight < 0 capacity + 4 bound).
	host.Devices()[0].Fail()
	_, _, err := s.Invoke(context.Background(), "k", nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("invoke after capacity loss err = %v, want ErrOverloaded", err)
	}
	st := s.Stats()
	if st.PerKernel["k"].Shed == 0 {
		t.Error("capacity-lost rejection was not counted as a shed")
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight accounting leaked: %d after shed", st.InFlight)
	}
}
