package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/artifact"
	"kaas/internal/faults"
	"kaas/internal/vclock"
)

// pollUntil spins (in wall time) until cond returns true or the deadline
// passes, failing the test on timeout. Modeled time advances on its own
// under a scaled clock, so polling is how tests wait for reaper and
// pre-warm timers to fire.
func pollUntil(t *testing.T, wait time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(wait)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestArtifactCacheColdThenCachedCold drives the full cold / cached-cold
// split: the first boot of a kernel pays JIT compilation and publishes
// the artifact; after the runner scales to zero, the next boot hits the
// cache and skips compilation entirely.
func TestArtifactCacheColdThenCachedCold(t *testing.T) {
	cache := artifact.NewCache(64 << 20)
	s, _, _ := newTestServer(t, 1, func(cfg *Config) {
		cfg.KeepAlive = KeepAlive{Idle: 2 * time.Second}
		cfg.Artifacts = cache
	})
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	_, r1, err := s.Invoke(context.Background(), "k", nil)
	if err != nil {
		t.Fatalf("Invoke 1: %v", err)
	}
	if !r1.Cold || r1.CachedCold {
		t.Errorf("first invoke: Cold=%v CachedCold=%v, want cold and uncached", r1.Cold, r1.CachedCold)
	}
	if r1.Breakdown.Compile <= 0 {
		t.Errorf("first cold start Compile = %v, want > 0 (JIT on cache miss)", r1.Breakdown.Compile)
	}

	// Let the keepalive reaper scale the kernel to zero, so the next
	// invocation is a genuine cold start against a warm cache.
	pollUntil(t, 5*time.Second, "runner reap", func() bool { return s.Stats().Runners == 0 })

	_, r2, err := s.Invoke(context.Background(), "k", nil)
	if err != nil {
		t.Fatalf("Invoke 2: %v", err)
	}
	if !r2.Cold || !r2.CachedCold {
		t.Errorf("second invoke: Cold=%v CachedCold=%v, want cached-cold", r2.Cold, r2.CachedCold)
	}
	if r2.Breakdown.Compile != 0 {
		t.Errorf("cached-cold Compile = %v, want 0 (compilation skipped)", r2.Breakdown.Compile)
	}
	// The compile phase dominates the boot, so the cache hit must be
	// visibly faster even through wall-clock jitter.
	if gain := r1.Breakdown.Total() - r2.Breakdown.Total(); gain < 2*time.Second {
		t.Errorf("cached-cold saved only %v over cold (cold %v, cached %v)",
			gain, r1.Breakdown.Total(), r2.Breakdown.Total())
	}

	st := s.Stats()
	ks := st.PerKernel["k"]
	if ks.CacheHits != 1 || ks.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", ks.CacheHits, ks.CacheMisses)
	}
	if ks.ColdStarts != 2 {
		t.Errorf("ColdStarts = %d, want 2", ks.ColdStarts)
	}
	if ks.Cold.Count != 1 || ks.CachedCold.Count != 1 {
		t.Errorf("latency counts cold/cached-cold = %d/%d, want 1/1", ks.Cold.Count, ks.CachedCold.Count)
	}
	if st.ArtifactCache == nil {
		t.Fatal("Stats.ArtifactCache = nil with a cache configured")
	}
	if st.ArtifactCache.Entries != 1 || st.ArtifactCache.Hits != 1 || st.ArtifactCache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 entry, 1 hit, 1 miss", *st.ArtifactCache)
	}
}

// prewarmConfig is the keepalive shape shared by the pre-warm tests:
// generous modeled margins so wall-clock jitter at scale 5000 cannot
// blur the reap / predict / boot sequence.
func prewarmConfig(cfg *Config) {
	cfg.KeepAlive = KeepAlive{
		Idle:        60 * time.Second,
		SweepEvery:  10 * time.Second,
		PreWarmLead: 30 * time.Second,
	}
}

// TestScaleToZeroThenPreWarmServesWarm teaches the idle-gap estimator
// one diurnal period and checks the predicted boot lands before the next
// arrival: invocation three finds a pre-warmed runner and is served warm.
func TestScaleToZeroThenPreWarmServesWarm(t *testing.T) {
	s, _, clock := newTestServer(t, 1, prewarmConfig)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// Arrival one: cold, and the estimator has no gap yet.
	if _, r, err := s.Invoke(context.Background(), "k", nil); err != nil || !r.Cold {
		t.Fatalf("Invoke 1: err=%v cold=%v, want cold success", err, r != nil && r.Cold)
	}

	// One full idle period (>> keepalive): the runner is reaped, and no
	// pre-warm can fire because no idle gap has been observed yet.
	clock.Sleep(120 * time.Second)
	if st := s.Stats(); st.Runners != 0 || st.PreWarms != 0 {
		t.Fatalf("after first idle period: Runners=%d PreWarms=%d, want 0/0", st.Runners, st.PreWarms)
	}

	// Arrival two: still cold, but now the estimator learns the gap.
	if _, r, err := s.Invoke(context.Background(), "k", nil); err != nil || !r.Cold {
		t.Fatalf("Invoke 2: err=%v cold=%v, want cold success", err, r != nil && r.Cold)
	}

	// Scale to zero again; the reaper hands the kernel to the pre-warm
	// predictor, which boots a runner ahead of the predicted arrival.
	pollUntil(t, 5*time.Second, "pre-warmed runner", func() bool {
		st := s.Stats()
		return st.PreWarms == 1 && st.Runners == 1
	})

	// Arrival three, near the predicted time: served by the speculative
	// runner, so it is not a cold start.
	_, r3, err := s.Invoke(context.Background(), "k", nil)
	if err != nil {
		t.Fatalf("Invoke 3: %v", err)
	}
	if r3.Cold {
		t.Errorf("third invoke was cold despite a pre-warmed runner")
	}
	ks := s.Stats().PerKernel["k"]
	if ks.PreWarms != 1 {
		t.Errorf("PreWarms = %d, want exactly 1 (one boot per real arrival)", ks.PreWarms)
	}
	if ks.ColdStarts != 3 {
		// Two demand-driven boots plus the speculative one.
		t.Errorf("ColdStarts = %d, want 3", ks.ColdStarts)
	}
}

// TestPreWarmNoLeakWhenDemandNeverArrives: a speculative runner whose
// predicted demand never materializes must be retired by the normal
// keepalive reaper — no runner left behind, no goroutine leaked, and no
// re-boot loop burning device-seconds.
func TestPreWarmNoLeakWhenDemandNeverArrives(t *testing.T) {
	faults.GuardGoroutines(t)
	s, _, clock := newTestServer(t, 1, prewarmConfig)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke 1: %v", err)
	}
	clock.Sleep(120 * time.Second)
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke 2: %v", err)
	}

	// The predictor boots one runner for the arrival that never comes...
	pollUntil(t, 5*time.Second, "pre-warmed runner", func() bool {
		st := s.Stats()
		return st.PreWarms == 1 && st.Runners == 1
	})
	// ...and the reaper retires it after the keepalive window.
	pollUntil(t, 5*time.Second, "speculative runner reaped", func() bool {
		return s.Stats().Runners == 0
	})

	// No re-boot: the kernel is pre-warmed at most once per real arrival,
	// so a missed prediction cannot start a warm/reap thrash loop. Give
	// another sweep interval a chance to misbehave before asserting.
	clock.Sleep(30 * time.Second)
	st := s.Stats()
	if st.PreWarms != 1 {
		t.Errorf("PreWarms = %d after missed prediction, want still 1 (no thrash loop)", st.PreWarms)
	}
	if st.Runners != 0 {
		t.Errorf("Runners = %d, want 0 (speculative runner leaked)", st.Runners)
	}
}

// TestEvictRetrySliceScalesWithClock pins the unit fix: the retry slice
// handed to dev.Acquire is a wall duration derived from a modeled
// budget, so the re-check cadence is the same number of modeled
// milliseconds on every clock. The original constant was 2ms of wall
// time, which a scale-5000 test clock stretched to 10 modeled seconds
// of dead wait per retry.
func TestEvictRetrySliceScalesWithClock(t *testing.T) {
	cases := []struct {
		name  string
		clock vclock.Clock
		want  time.Duration
	}{
		// Real time: the modeled budget passes through unchanged.
		{"real", vclock.Real(), evictRetrySliceModeled},
		// Scaled 5000x: 25ms/5000 = 5us of wall time would busy-spin, so
		// the floor applies (still only 0.25 modeled seconds per retry).
		{"scaled", vclock.Scaled(5000), evictRetrySliceFloor},
		// Mildly scaled: straight division.
		{"scaled-10x", vclock.Scaled(10), evictRetrySliceModeled / 10},
		// Manual clocks advance only when driven, so no wall conversion
		// exists; the floor keeps the loop live without spinning.
		{"manual", vclock.NewManual(time.Unix(0, 0)), evictRetrySliceFloor},
	}
	for _, tc := range cases {
		s := &Server{clock: tc.clock}
		if got := s.evictRetrySlice(); got != tc.want {
			t.Errorf("%s: evictRetrySlice() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBlockedColdStartRechecksInModeledTime is the behavioral side of
// the retry-slice fix: on a saturated single-slot device the losing cold
// start's wait is bounded by the winner's occupancy plus a modeled-time
// retry slice — not quantized to multi-second steps by a wall-time
// timeout misread under a scaled clock.
func TestBlockedColdStartRechecksInModeledTime(t *testing.T) {
	// One contention round: warm an idle ka runner onto the only slot,
	// then cold-start kb and kc concurrently and return the larger of
	// the two RuntimeInit phases — the losing cold start's wait.
	round := func() time.Duration {
		s, _ := newSingleSlotServer(t)
		for _, name := range []string{"ka", "kb", "kc"} {
			k := &fakeKernel{name: name, kind: accel.GPU, cost: stdCost()}
			if err := s.Register(k); err != nil {
				t.Fatalf("Register %s: %v", name, err)
			}
		}
		if _, _, err := s.Invoke(context.Background(), "ka", nil); err != nil {
			t.Fatalf("Invoke ka: %v", err)
		}

		var wg sync.WaitGroup
		reports := make([]*Report, 2)
		errs := make([]error, 2)
		for i, name := range []string{"kb", "kc"} {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, reports[i], errs[i] = s.Invoke(context.Background(), name, nil)
			}()
		}
		wg.Wait()
		var worst time.Duration
		for i, err := range errs {
			if err != nil {
				t.Fatalf("contending invoke %d: %v", i, err)
			}
			if reports[i].Breakdown.RuntimeInit > worst {
				worst = reports[i].Breakdown.RuntimeInit
			}
		}
		s.Close()
		return worst
	}

	// The loser's wait is the winner's ~0.5s occupancy plus retry
	// slices of 0.25 modeled seconds — though a coarse OS timer can
	// stretch any one slice to several modeled seconds at this clock
	// scale, so take the best of a few rounds. The old wall-time slice
	// meant even the first retry blocked for 10 modeled seconds, giving
	// the pre-fix code a hard floor above 10s in EVERY round no matter
	// how quickly the slot frees — the bound splits the two regimes.
	best := round()
	for i := 0; i < 4 && best >= 9*time.Second; i++ {
		if w := round(); w < best {
			best = w
		}
	}
	if best >= 9*time.Second {
		t.Errorf("losing cold start waited %v for the slot in the best round, want < 9s of modeled time", best)
	}
}

// TestFailoverKeepsSiblingClaimAccounting pins the failover bookkeeping
// fix: when a device fails with several invocations in flight on one
// runner, the first to observe the failure retires the runner, and the
// siblings' claim releases must still balance to exactly zero. The old
// path released the retirer's claim and then decremented again inside
// removal, driving the runner's in-flight count negative — accounting
// drift that made claimed runners look reapable.
func TestFailoverKeepsSiblingClaimAccounting(t *testing.T) {
	s, host, _ := newTestServer(t, 1, nil)
	dev := host.Devices()[0]

	arrived := make(chan struct{}, 2)
	release := make(chan struct{})
	k := &execHookKernel{
		fakeKernel: &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()},
		onExecute: func() {
			arrived <- struct{}{}
			<-release
		},
	}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// Warm one runner, then capture it. The warm-up invocation must not
	// block in the execute hook.
	close(release)
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("warm-up Invoke: %v", err)
	}
	for len(arrived) > 0 {
		<-arrived
	}
	release = make(chan struct{})
	k.onExecute = func() {
		arrived <- struct{}{}
		<-release
	}
	s.mu.Lock()
	if n := len(s.entries["k"].runners); n != 1 {
		s.mu.Unlock()
		t.Fatalf("runners = %d after warm-up, want 1", n)
	}
	r0 := s.entries["k"].runners[0]
	s.mu.Unlock()

	// Two invocations in flight on the same runner, both held at the
	// execute hook; fail the device under them, then let them proceed
	// into the failure.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[i] = s.Invoke(context.Background(), "k", nil)
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-arrived:
		case <-time.After(5 * time.Second):
			t.Fatal("invocations never reached the execute hook")
		}
	}
	dev.Fail()
	close(release)
	wg.Wait()

	// With the only device failed, both invocations exhaust failover.
	for i, err := range errs {
		if !errors.Is(err, accel.ErrDeviceFailed) {
			t.Errorf("invoke %d err = %v, want ErrDeviceFailed", i, err)
		}
	}
	s.mu.Lock()
	removed, inflight := r0.removed, r0.inflight
	s.mu.Unlock()
	if !removed {
		t.Error("failed runner was not retired")
	}
	if inflight != 0 {
		t.Errorf("retired runner in-flight count = %d, want exactly 0", inflight)
	}
}

// TestReaperNeverStealsClaimedRunners stresses the reap/claim interlock:
// invocations arriving right at the keepalive boundary race the sweep
// that wants to retire their runner. Every invocation must succeed — a
// reaped runner releasing its device context under a claimed invocation
// would surface as spurious context errors — while reaps still happen.
func TestReaperNeverStealsClaimedRunners(t *testing.T) {
	s, _, clock := newTestServer(t, 1, func(cfg *Config) {
		cfg.KeepAlive = KeepAlive{Idle: 2 * time.Second, SweepEvery: time.Second}
	})
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 3*40)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
					errCh <- err
					return
				}
				// Idle gaps straddle the keepalive window — some right at
				// the boundary so claims and sweeps collide, some several
				// windows long so reaps are sure to land.
				clock.Sleep(time.Duration(i%4) * 2 * time.Second)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("invocation failed under reap churn: %v", err)
	}
	if st := s.Stats(); st.Reaps == 0 {
		t.Error("no reaps happened; the stress never exercised the interlock")
	}
}

// TestAbortedColdStartCountsOnce pins the double-count fix: when a
// spawner's context dies mid-boot and a queued waiter respawns on a
// fresh runner, the kernel is charged one completed cold start, and the
// waiters' breakdowns carry exactly one spawn quantum between them — the
// aborted boot's phases are not double-counted against the winner.
func TestAbortedColdStartCountsOnce(t *testing.T) {
	const spawnCost = 100 * time.Millisecond
	cases := []struct {
		name    string
		waiters int
	}{
		{"one waiter", 1},
		{"two waiters", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := vclock.Scaled(5000)
			gpu := testGPUProfile()
			gpu.Slots = 1
			host, err := accel.NewHost(clock, "test", accel.XeonE52698, gpu)
			if err != nil {
				t.Fatalf("NewHost: %v", err)
			}
			t.Cleanup(host.Close)
			s, err := New(Config{Clock: clock, Host: host, RunnerSpawnCost: spawnCost})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			t.Cleanup(s.Close)
			k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
			if err := s.Register(k); err != nil {
				t.Fatalf("Register: %v", err)
			}

			// Hold the device's only slot so the spawner's boot blocks
			// until its context gives up.
			held, err := host.Devices()[0].Acquire(context.Background())
			if err != nil {
				t.Fatalf("Acquire: %v", err)
			}

			// The doomed spawner: its context dies while the cold start
			// waits on the held slot.
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			spawnerDone := make(chan error, 1)
			go func() {
				_, _, err := s.Invoke(ctx, "k", nil)
				spawnerDone <- err
			}()
			pollUntil(t, 2*time.Second, "spawner's runner", func() bool {
				return s.Stats().Runners == 1
			})

			// The waiters queue on the doomed runner before it aborts.
			var wg sync.WaitGroup
			reports := make([]*Report, tc.waiters)
			errs := make([]error, tc.waiters)
			for i := 0; i < tc.waiters; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, reports[i], errs[i] = s.Invoke(context.Background(), "k", nil)
				}()
			}
			pollUntil(t, 2*time.Second, "waiters to queue", func() bool {
				return s.Stats().PerKernel["k"].QueueDepth == int64(tc.waiters)
			})

			if err := <-spawnerDone; !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("spawner err = %v, want DeadlineExceeded", err)
			}
			// Free the slot; the waiters' respawn can now boot.
			held.Release()
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("waiter %d: %v", i, err)
				}
			}

			// One completed cold start, no matter how many runners were
			// created along the way.
			st := s.Stats()
			if got := st.PerKernel["k"].ColdStarts; got != 1 {
				t.Errorf("kernel ColdStarts = %d, want 1 (aborted boot must not count)", got)
			}
			if st.ColdStarts != 1 {
				t.Errorf("server ColdStarts = %d, want 1", st.ColdStarts)
			}
			// Exactly one spawn quantum across all waiters: the winner of
			// the respawn pays it once; the aborted boot's spawn is the
			// doomed spawner's cost, not theirs.
			var spawn time.Duration
			cold := 0
			for _, r := range reports {
				if r.Cold {
					cold++
				}
				spawn += r.Breakdown.Spawn
			}
			if cold != 1 {
				t.Errorf("cold waiter reports = %d, want exactly 1 (one respawns, the rest queue on it)", cold)
			}
			if spawn != spawnCost {
				t.Errorf("waiters' summed Spawn = %v, want exactly %v (one quantum)", spawn, spawnCost)
			}
		})
	}
}
