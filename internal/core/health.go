package core

import (
	"sort"

	"kaas/internal/breaker"
)

// KindHealth summarizes routable capacity for one device kind.
type KindHealth struct {
	// Devices counts devices of this kind on the host.
	Devices int `json:"devices"`
	// Eligible counts devices placement may currently use: not failed
	// and with a breaker that would admit a request.
	Eligible int `json:"eligible"`
	// OpenBreakers counts devices whose breaker is open (excluded from
	// placement until the open timeout elapses).
	OpenBreakers int `json:"openBreakers"`
}

// TenantHealth is the per-tenant slice of a Health summary: enough for
// cluster routing to skip a member one tenant has saturated without
// shipping the full stats document in every heartbeat.
type TenantHealth struct {
	// InFlight counts the tenant's admitted invocations executing now;
	// Queued counts its invocations waiting in fair-queue flows.
	InFlight int `json:"inFlight,omitempty"`
	Queued   int `json:"queued,omitempty"`
	// Saturated reports the tenant is at its in-flight cap or queue
	// bound on this host — a new request for it would queue behind a
	// full backlog or shed outright.
	Saturated bool `json:"saturated,omitempty"`
}

// Health is the compact, routing-oriented view of a server. The cluster
// control plane gossips it between nodes so peers can skip hosts that
// are draining, closed, or have no eligible device for a kernel's kind.
type Health struct {
	// Draining reports a graceful shutdown in progress.
	Draining bool `json:"draining,omitempty"`
	// Closed reports the server no longer accepts work.
	Closed bool `json:"closed,omitempty"`
	// InFlight counts admitted invocations currently executing.
	InFlight int `json:"inFlight"`
	// Shed counts admission-control rejections since startup.
	Shed uint64 `json:"shed"`
	// Kinds maps device-kind name to its capacity summary.
	Kinds map[string]KindHealth `json:"kinds,omitempty"`
	// Kernels lists the registered kernel names, sorted.
	Kernels []string `json:"kernels,omitempty"`
	// Tenants maps tenant name to its load summary; only tenants with
	// live load or a saturated bound are listed, keeping gossip small.
	Tenants map[string]TenantHealth `json:"tenants,omitempty"`
}

// Health returns the server's current routing-oriented health summary.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Draining: s.draining,
		Closed:   s.closed,
		InFlight: s.inFlight,
		Kinds:    make(map[string]KindHealth),
	}
	for _, d := range s.cfg.Host.Devices() {
		kind := d.Kind().String()
		kh := h.Kinds[kind]
		kh.Devices++
		if s.deviceEligibleLocked(d) {
			kh.Eligible++
		}
		if s.breakers != nil && s.breakers.State(d.ID()) == breaker.Open {
			kh.OpenBreakers++
		}
		h.Kinds[kind] = kh
	}
	h.Kernels = make([]string, 0, len(s.entries))
	for name, e := range s.entries {
		h.Kernels = append(h.Kernels, name)
		h.Shed += s.kernelMet(e).shedTotal()
	}
	sort.Strings(h.Kernels)
	for name, t := range s.tenants {
		th := TenantHealth{
			InFlight: t.inFlight,
			Queued:   t.queued,
			Saturated: (s.cfg.MaxInFlightPerTenant > 0 && t.inFlight >= s.cfg.MaxInFlightPerTenant) ||
				(s.cfg.MaxQueuePerTenant > 0 && t.queued >= s.cfg.MaxQueuePerTenant),
		}
		if th.InFlight == 0 && th.Queued == 0 && !th.Saturated {
			continue
		}
		if h.Tenants == nil {
			h.Tenants = make(map[string]TenantHealth)
		}
		h.Tenants[name] = th
	}
	return h
}

// Routable reports whether an invocation of the named kernel could be
// admitted and placed right now: the kernel is registered, the server
// is accepting work, and at least one device of the kernel's kind is
// eligible (not failed, breaker closed or ready to probe). Cluster
// routing uses it to skip hosts that could only fail the invocation —
// notably a host whose every device breaker for the kind is open.
func (s *Server) Routable(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return false
	}
	e, ok := s.entries[name]
	if !ok {
		return false
	}
	for _, d := range s.cfg.Host.DevicesByKind(e.kernel.Kind()) {
		if s.deviceEligibleLocked(d) {
			return true
		}
	}
	return false
}
