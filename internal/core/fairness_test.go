package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/kernels"
)

// fairTestHarness pins the server at saturation and steps the dispatcher
// one grant at a time, so the WFQ properties below are checked against
// the exact grant order instead of a racy approximation. All mutation
// happens under s.mu, the same discipline the production paths follow.
type fairTestHarness struct {
	s       *Server
	waiters []*fairWaiter
	granted map[*fairWaiter]bool
}

func newFairHarness(s *Server) *fairTestHarness {
	return &fairTestHarness{s: s, granted: make(map[*fairWaiter]bool)}
}

// saturate pins the server's global in-flight count at its cap so
// enqueued waiters queue instead of dispatching immediately.
func (h *fairTestHarness) saturate() {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	h.s.inFlight = h.s.cfg.MaxInFlightTotal
}

// enqueue queues one waiter for (tenant, kernel), failing the test on a
// shed.
func (h *fairTestHarness) enqueue(t *testing.T, tenant, kernel string) {
	t.Helper()
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	e, ok := h.s.entries[kernel]
	if !ok {
		t.Fatalf("kernel %q not registered", kernel)
	}
	ts := h.s.tenantLocked(tenant)
	w, reason, err := h.s.fair.enqueueLocked(h.s, context.Background(), e, ts)
	if err != nil {
		t.Fatalf("enqueueLocked(%s/%s) shed %q: %v", tenant, kernel, reason, err)
	}
	h.waiters = append(h.waiters, w)
}

// step frees one in-flight slot, runs the dispatcher, and returns the
// tenant granted by that step ("" when nothing was dispatchable).
func (h *fairTestHarness) step() string {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	h.s.inFlight--
	h.s.fair.dispatchLocked(h.s)
	for _, w := range h.waiters {
		if w.granted && !h.granted[w] {
			h.granted[w] = true
			return w.fl.tenant.name
		}
	}
	h.s.inFlight++ // nothing granted: restore the pinned saturation
	return ""
}

// registerFake registers a fake GPU kernel under the given name.
func registerFake(t *testing.T, s *Server, name string) {
	t.Helper()
	if err := s.Register(&fakeKernel{name: name, kind: accel.GPU, cost: stdCost()}); err != nil {
		t.Fatalf("Register(%s): %v", name, err)
	}
}

// TestFairQueueWeightedShares drains a saturated two-tenant backlog and
// requires the grant split to converge to the configured 3:1 weights.
func TestFairQueueWeightedShares(t *testing.T) {
	s, _, _ := newTestServer(t, 1, func(c *Config) {
		c.TenantWeights = map[string]float64{"heavy": 3, "light": 1}
		c.MaxInFlightTotal = 4
	})
	registerFake(t, s, "k")
	h := newFairHarness(s)
	h.saturate()
	for i := 0; i < 200; i++ {
		h.enqueue(t, "heavy", "k")
		h.enqueue(t, "light", "k")
	}
	counts := map[string]int{}
	for g := 0; g < 200; g++ {
		counts[h.step()]++
	}
	share := float64(counts["heavy"]) / 200
	if share < 0.70 || share > 0.80 {
		t.Errorf("heavy tenant took %.0f%% of grants (%v), want ~75%% for 3:1 weights", 100*share, counts)
	}
}

// TestFairQueueNoStarvation floods one flow at 10x weight and requires
// the thin flow's waiters to still be granted near their virtual-time
// slots — a backlogged heavy tenant must not starve a light one.
func TestFairQueueNoStarvation(t *testing.T) {
	s, _, _ := newTestServer(t, 1, func(c *Config) {
		c.TenantWeights = map[string]float64{"heavy": 10, "light": 1}
		c.MaxInFlightTotal = 4
	})
	registerFake(t, s, "k")
	h := newFairHarness(s)
	h.saturate()
	for i := 0; i < 200; i++ {
		h.enqueue(t, "heavy", "k")
	}
	for i := 0; i < 5; i++ {
		h.enqueue(t, "light", "k")
	}
	var lightPositions []int
	for g := 0; g < 120; g++ {
		if h.step() == "light" {
			lightPositions = append(lightPositions, g+1)
		}
	}
	if len(lightPositions) != 5 {
		t.Fatalf("light tenant got %d of 5 grants in 120 steps: %v", len(lightPositions), lightPositions)
	}
	// The i-th light waiter's finish tag is i+1 virtual units; the heavy
	// flow packs ~10 grants per unit, so position ~11(i+1) is on-schedule
	// and anything far past it means starvation crept in.
	for i, pos := range lightPositions {
		if limit := 11*(i+1) + 3; pos > limit {
			t.Errorf("light waiter %d granted at position %d, want <= %d", i, pos, limit)
		}
	}
}

// TestFairQueueStickinessBounded gives one flow a warm runner and a
// worse virtual-time position, and requires sticky dispatch to favor it
// for at most StickinessBound consecutive grants before strict finish
// order takes back over.
func TestFairQueueStickinessBounded(t *testing.T) {
	s, _, _ := newTestServer(t, 1, func(c *Config) {
		// The cold tenant's 10x weight makes the cold flow the strict
		// choice at every step, so every warm grant is a sticky bypass.
		c.TenantWeights = map[string]float64{"cold-t": 10, "warm-t": 1}
		c.MaxInFlightTotal = 4
		c.StickinessBound = 3
	})
	registerFake(t, s, "warm")
	registerFake(t, s, "cold")
	// One real invocation boots a runner for "warm", giving its flow the
	// warm-free-runner state sticky dispatch steers toward.
	if _, _, err := s.Invoke(context.Background(), "warm", nil); err != nil {
		t.Fatalf("warm-up Invoke: %v", err)
	}
	// Pin the warm kernel's observed cost high so its finish tags always
	// trail the cold flow's: every warm grant is then provably a sticky
	// bypass, never a strict-order win.
	s.mu.Lock()
	s.entries["warm"].ewmaWall = float64(10 * time.Second)
	s.mu.Unlock()
	h := newFairHarness(s)
	h.saturate()
	for i := 0; i < 20; i++ {
		h.enqueue(t, "cold-t", "cold")
		h.enqueue(t, "warm-t", "warm")
	}
	var order []string
	for g := 0; g < 12; g++ {
		order = append(order, h.step())
	}
	// Bound 3 yields a period-4 pattern: three sticky bypasses toward the
	// warm flow, then one forced strict grant to the cold flow.
	want := []string{
		"warm-t", "warm-t", "warm-t", "cold-t",
		"warm-t", "warm-t", "warm-t", "cold-t",
		"warm-t", "warm-t", "warm-t", "cold-t",
	}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("grant order %v, want %v", order, want)
	}
	streak, maxStreak := 0, 0
	for _, g := range order {
		if g == "warm-t" {
			streak++
			if streak > maxStreak {
				maxStreak = streak
			}
		} else {
			streak = 0
		}
	}
	if maxStreak > 3 {
		t.Errorf("sticky streak reached %d consecutive grants, bound is 3", maxStreak)
	}
}

// TestFairQueueDeterministicOrder runs the same saturated enqueue
// schedule on two fresh servers and requires identical grant orders —
// the dispatcher must be a pure function of the schedule under the
// modeled clock, with no map-iteration or timing nondeterminism.
func TestFairQueueDeterministicOrder(t *testing.T) {
	run := func() []string {
		s, _, _ := newTestServer(t, 1, func(c *Config) {
			c.TenantWeights = map[string]float64{"a": 2, "b": 1, "c": 1}
			c.MaxInFlightTotal = 2
		})
		registerFake(t, s, "k")
		h := newFairHarness(s)
		h.saturate()
		for i := 0; i < 30; i++ {
			h.enqueue(t, "a", "k")
			h.enqueue(t, "b", "k")
			h.enqueue(t, "c", "k")
		}
		var order []string
		for g := 0; g < 60; g++ {
			order = append(order, h.step())
		}
		return order
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same schedule produced different grant orders:\n%v\n%v", a, b)
	}
}

// TestFairQueueTenantQueueBound fills one tenant's queue to its bound
// and requires the overflow to shed with the typed overload error,
// charged to that tenant, while a second tenant still enqueues freely.
func TestFairQueueTenantQueueBound(t *testing.T) {
	s, _, _ := newTestServer(t, 1, func(c *Config) {
		c.TenantWeights = map[string]float64{"full": 1, "ok": 1}
		c.MaxInFlightTotal = 2
		c.MaxQueuePerTenant = 4
	})
	registerFake(t, s, "k")
	h := newFairHarness(s)
	h.saturate()
	for i := 0; i < 4; i++ {
		h.enqueue(t, "full", "k")
	}
	s.mu.Lock()
	e := s.entries["k"]
	ts := s.tenantLocked("full")
	_, reason, err := s.fair.enqueueLocked(s, context.Background(), e, ts)
	s.mu.Unlock()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow enqueue error = %v, want ErrOverloaded", err)
	}
	if reason != "tenant_queue_full" {
		t.Errorf("overflow shed reason = %q, want tenant_queue_full", reason)
	}
	h.enqueue(t, "ok", "k") // the other tenant's lane is unaffected
}

// TestFairQueueConcurrentInvoke exercises the full Invoke path with two
// tenants racing through the fair queue (run under -race). Every
// request must complete, and the per-tenant accounting must balance.
func TestFairQueueConcurrentInvoke(t *testing.T) {
	s, _, _ := newTestServer(t, 2, func(c *Config) {
		c.TenantWeights = map[string]float64{"a": 3, "b": 1}
		c.MaxInFlightTotal = 4
		c.MaxQueuePerTenant = 128
	})
	registerFake(t, s, "k")
	const perTenant = 24
	var wg sync.WaitGroup
	errs := make(chan error, 2*perTenant)
	for _, tenant := range []string{"a", "b"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				req := &kernels.Request{Tenant: tenant}
				if _, _, err := s.Invoke(context.Background(), "k", req); err != nil {
					errs <- fmt.Errorf("tenant %s: %w", tenant, err)
				}
			}(tenant)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if !st.FairQueueing {
		t.Error("Stats.FairQueueing = false with tenant weights configured")
	}
	for _, tenant := range []string{"a", "b"} {
		ts, ok := st.PerTenant[tenant]
		if !ok {
			t.Fatalf("Stats.PerTenant missing tenant %q (have %v)", tenant, st.PerTenant)
		}
		if ts.Admitted != perTenant {
			t.Errorf("tenant %s admitted %d, want %d", tenant, ts.Admitted, perTenant)
		}
		if ts.InFlight != 0 || ts.Queued != 0 {
			t.Errorf("tenant %s left residue: inFlight=%d queued=%d", tenant, ts.InFlight, ts.Queued)
		}
	}
	if w := st.PerTenant["a"].Weight; w != 3 {
		t.Errorf("tenant a weight %v, want 3", w)
	}
}
