package core

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"kaas/internal/accel"
	"kaas/internal/artifact"
	"kaas/internal/metrics"
)

// LatencySummary condenses one latency histogram: observation count,
// mean, extremes, and the percentiles the paper's Fig. 7 reports.
type LatencySummary struct {
	// Count is the number of completed invocations observed.
	Count uint64
	// Mean is the average modeled latency.
	Mean time.Duration
	// Min and Max are the observed extremes.
	Min, Max time.Duration
	// P50, P95, P99 are estimated from the histogram buckets.
	P50, P95, P99 time.Duration
}

func summarize(h *metrics.Histogram) LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// KernelStats is the per-kernel slice of a Stats snapshot.
type KernelStats struct {
	// Invocations counts accepted invocations (including failed ones).
	Invocations uint64
	// ColdStarts counts completed cold starts for this kernel (runner
	// boots that reached readiness; an aborted boot whose waiter
	// respawned counts once, not twice).
	ColdStarts uint64
	// CacheHits and CacheMisses count cold starts that found (or had to
	// compile and publish) the kernel's artifact in the compiled-kernel
	// cache. Both stay zero when no cache is configured.
	CacheHits, CacheMisses uint64
	// PreWarms counts runners booted speculatively by the pre-warm
	// predictor for this kernel.
	PreWarms uint64
	// Failovers counts device-failure retries.
	Failovers uint64
	// Errors counts invocations that returned an error.
	Errors uint64
	// Shed counts invocations rejected by admission control (queue
	// bound, in-flight cap, deadline-aware rejection, or draining).
	Shed uint64
	// InFlight is the number of invocations being served right now.
	InFlight int64
	// QueueDepth is the number of invocations waiting on a starting
	// runner right now.
	QueueDepth int64
	// Runners is the kernel's live runner count.
	Runners int
	// Warm, Cold, and CachedCold summarize the modeled latency
	// distributions split by start temperature: warm (runner reuse),
	// cold (full boot with compilation), cached-cold (boot that skipped
	// compilation on an artifact-cache hit).
	Warm, Cold, CachedCold LatencySummary
	// PhasesWarm, PhasesCold, and PhasesCachedCold are cumulative
	// modeled time per invocation phase (queue, spawn, runtime_init, ...).
	PhasesWarm, PhasesCold, PhasesCachedCold map[string]time.Duration
}

// TenantStats is the per-tenant slice of a Stats snapshot.
type TenantStats struct {
	// Weight is the tenant's fair-share weight in weighted fair dispatch
	// (1 when unconfigured).
	Weight float64
	// Admitted counts invocations admitted for this tenant.
	Admitted uint64
	// Shed counts invocations rejected by admission control and charged
	// to this tenant (its own caps, queue bounds, or deadline expiry
	// while queued).
	Shed uint64
	// InFlight is the number of the tenant's invocations being served
	// right now; Queued is how many wait in its fair-queue flows.
	InFlight, Queued int
	// Latency summarizes the tenant's modeled invocation latency.
	Latency LatencySummary
}

// DeviceStats is the per-device slice of a Stats snapshot.
type DeviceStats struct {
	// Kind is the device's accelerator kind name.
	Kind string
	// Runners is the number of live task runners placed on the device.
	Runners int
	// ActiveContexts and Slots describe context-slot occupancy.
	ActiveContexts, Slots int
	// QueueDepth is the number of cold starts waiting for a slot.
	QueueDepth int64
	// MemoryUsed is the current device memory allocation in bytes.
	MemoryUsed int64
	// ColdStarts counts device context creations.
	ColdStarts int
	// Evictions counts runners evicted for slot pressure.
	Evictions uint64
	// Reaps counts idle runners reaped from this device.
	Reaps uint64
	// BreakerState is the device's circuit-breaker state ("closed",
	// "open", "half-open"), or "" when breakers are disabled.
	BreakerState string
	// BreakerTransitions counts the device's breaker state changes.
	BreakerTransitions uint64
	// ComputeBusy is total modeled time the compute fabric was active.
	ComputeBusy time.Duration
	// SlotBusy is cumulative modeled time context slots were held — the
	// device-seconds scale-to-zero releases and always-warm pools pay.
	SlotBusy time.Duration
	// Uptime is modeled time since device creation.
	Uptime time.Duration
	// Utilization is the instantaneous compute utilization in [0, 1].
	Utilization float64
}

// DataPlaneStats snapshots the out-of-band data plane and the
// micro-batcher: lease-arena accounting, bytes moved by handle versus
// copied in-band, and batch coalescing totals.
type DataPlaneStats struct {
	// OOBInvocations counts invocations whose payload arrived through an
	// arena lease (moved by handle, zero-copy).
	OOBInvocations uint64
	// OOBBytes is the payload bytes moved by lease handle; InBandBytes is
	// the payload bytes copied through the wire protocol.
	OOBBytes, InBandBytes uint64
	// LeaseGrants, LeaseReuses, and LeaseRevocations snapshot the arena
	// pool's lifecycle counters (reuses are grants served from a pooled
	// slab without allocating).
	LeaseGrants, LeaseReuses, LeaseRevocations uint64
	// ActiveLeases is the number of live leases; LeaseBytesGranted the
	// bytes they hold; ArenaCapacity the pool's byte budget (0 =
	// unlimited). All zero when no arena is configured.
	ActiveLeases      int
	LeaseBytesGranted int64
	ArenaCapacity     int64
	// BatchDispatches counts coalesced device dispatches;
	// BatchedInvocations the invocations those dispatches carried. Both
	// zero when batching is off.
	BatchDispatches, BatchedInvocations uint64
}

// Stats is a snapshot of server state: the coarse totals plus per-kernel
// latency distributions and per-device occupancy tables.
type Stats struct {
	// Kernels is the number of registered kernels.
	Kernels int
	// Runners is the number of live task runners.
	Runners int
	// InFlight is the number of invocations currently being served.
	InFlight int
	// ColdStarts counts completed cold starts.
	ColdStarts int
	// PreWarms counts speculative runner boots by the pre-warm pool.
	PreWarms int
	// Failovers counts device-failure retries across all kernels.
	Failovers uint64
	// Evictions counts slot-pressure evictions across all devices.
	Evictions uint64
	// Reaps counts idle-runner reaps across all devices.
	Reaps uint64
	// Shed counts admission-control rejections across all kernels.
	Shed uint64
	// Draining reports whether the server is gracefully shutting down.
	Draining bool
	// RunnersPerDevice maps device IDs to live runner counts.
	RunnersPerDevice map[string]int
	// PerKernel holds per-kernel counters and latency summaries.
	PerKernel map[string]KernelStats
	// PerDevice holds per-device occupancy and utilization.
	PerDevice map[string]DeviceStats
	// PerTenant holds per-tenant admission counters and latency
	// summaries for every tenant that has invoked the server. Empty
	// until a request arrives (legacy callers appear as "default").
	PerTenant map[string]TenantStats
	// FairQueueing reports whether the tenant-aware weighted fair
	// dispatch layer is active.
	FairQueueing bool
	// Batching reports whether server-side micro-batching is active.
	Batching bool
	// DataPlane snapshots the out-of-band data plane and micro-batcher.
	DataPlane DataPlaneStats
	// ArtifactCache snapshots the compiled-kernel cache, or nil when the
	// server runs without one.
	ArtifactCache *artifact.Stats
}

// Stats returns current server statistics.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Kernels:          len(s.entries),
		InFlight:         s.inFlight,
		ColdStarts:       s.coldStarts,
		PreWarms:         s.preWarms,
		Draining:         s.draining,
		RunnersPerDevice: make(map[string]int, len(s.runnersOn)),
		PerKernel:        make(map[string]KernelStats, len(s.entries)),
		PerDevice:        make(map[string]DeviceStats),
		PerTenant:        make(map[string]TenantStats, len(s.tenants)),
		FairQueueing:     s.fair != nil,
		Batching:         s.batcher != nil,
	}
	st.DataPlane = DataPlaneStats{
		OOBInvocations: s.dpMet.oobInvocations.Value(),
		OOBBytes:       s.dpMet.oobBytes.Value(),
		InBandBytes:    s.dpMet.inbandBytes.Value(),
	}
	if b := s.batcher; b != nil {
		st.DataPlane.BatchDispatches = b.dispatches.Load()
		st.DataPlane.BatchedInvocations = b.batched.Load()
	}
	if p := s.arena.Load(); p != nil {
		as := p.Stats()
		st.DataPlane.LeaseGrants = as.Grants
		st.DataPlane.LeaseReuses = as.Reuses
		st.DataPlane.LeaseRevocations = as.Revocations
		st.DataPlane.ActiveLeases = as.Active
		st.DataPlane.LeaseBytesGranted = as.Granted
		st.DataPlane.ArenaCapacity = as.Capacity
	}
	for name, t := range s.tenants {
		tm := s.tenantMet(t)
		st.PerTenant[name] = TenantStats{
			Weight:   t.weight,
			Admitted: tm.admitted.Value(),
			Shed:     tm.shedTotal(),
			InFlight: t.inFlight,
			Queued:   t.queued,
			Latency:  summarize(tm.latency),
		}
	}
	for name, e := range s.entries {
		st.Runners += len(e.runners)
		met := s.kernelMet(e)
		ks := KernelStats{
			Invocations:      met.invocations.Value(),
			ColdStarts:       met.coldStarts.Value(),
			CacheHits:        met.cacheHits.Value(),
			CacheMisses:      met.cacheMisses.Value(),
			PreWarms:         met.preWarms.Value(),
			Failovers:        met.failovers.Value(),
			Errors:           met.errors.Value(),
			Shed:             met.shedTotal(),
			InFlight:         met.inFlight.Value(),
			QueueDepth:       met.queueDepth.Value(),
			Runners:          len(e.runners),
			Warm:             summarize(met.latWarm),
			Cold:             summarize(met.latCold),
			CachedCold:       summarize(met.latCachedCold),
			PhasesWarm:       phaseTotals(met.phaseWarm),
			PhasesCold:       phaseTotals(met.phaseCold),
			PhasesCachedCold: phaseTotals(met.phaseCachedCold),
		}
		st.Failovers += ks.Failovers
		st.Shed += ks.Shed
		st.PerKernel[name] = ks
	}
	for id, n := range s.runnersOn {
		if n > 0 {
			st.RunnersPerDevice[id] = n
		}
	}
	for _, d := range append(s.cfg.Host.Devices(), s.cfg.Host.CPU()) {
		ds := d.Stats()
		dm := s.devMet[d.ID()]
		dev := DeviceStats{
			Kind:           d.Kind().String(),
			Runners:        s.runnersOn[d.ID()],
			ActiveContexts: ds.ActiveContexts,
			Slots:          d.Profile().Slots,
			MemoryUsed:     ds.MemoryUsed,
			ColdStarts:     ds.ColdStarts,
			ComputeBusy:    ds.ComputeBusy,
			SlotBusy:       ds.SlotBusy,
			Uptime:         ds.Uptime,
			Utilization:    d.Utilization(),
		}
		if dm != nil {
			dev.QueueDepth = dm.queueDepth.Value()
			dev.Evictions = dm.evictions.Value()
			dev.Reaps = dm.reaps.Value()
		}
		if s.breakers != nil {
			dev.BreakerState = s.breakers.State(d.ID()).String()
			if dm != nil {
				dev.BreakerTransitions = dm.breakerTransitionTotal()
			}
		}
		st.Evictions += dev.Evictions
		st.Reaps += dev.Reaps
		st.PerDevice[d.ID()] = dev
	}
	if s.cfg.Artifacts != nil {
		cs := s.cfg.Artifacts.Stats()
		st.ArtifactCache = &cs
	}
	return st
}

// phaseTotals snapshots a phase accumulator map into durations, dropping
// phases that never occurred.
func phaseTotals(phases map[string]*metrics.Counter) map[string]time.Duration {
	out := make(map[string]time.Duration, len(phases))
	for name, c := range phases {
		if v := c.Value(); v > 0 {
			out[name] = time.Duration(v)
		}
	}
	return out
}

// WriteMetrics writes the server's metrics in the Prometheus text
// exposition format: everything the registry holds plus live per-device
// gauges (context occupancy, utilization, busy time, memory, energy)
// sampled at call time.
func (s *Server) WriteMetrics(w io.Writer) error {
	if err := s.reg.WritePrometheus(w); err != nil {
		return err
	}

	devices := append(s.cfg.Host.Devices(), s.cfg.Host.CPU())
	sort.Slice(devices, func(i, j int) bool { return devices[i].ID() < devices[j].ID() })

	families := []struct {
		name, typ, help string
		value           func(d deviceSample) float64
	}{
		{"kaas_device_active_contexts", "gauge", "Device contexts currently held.",
			func(d deviceSample) float64 { return float64(d.stats.ActiveContexts) }},
		{"kaas_device_slots", "gauge", "Device context slot capacity.",
			func(d deviceSample) float64 { return float64(d.slots) }},
		{"kaas_device_utilization", "gauge", "Instantaneous compute utilization in [0, 1].",
			func(d deviceSample) float64 { return d.util }},
		{"kaas_device_busy_seconds_total", "counter", "Modeled time the compute fabric was active.",
			func(d deviceSample) float64 { return d.stats.ComputeBusy.Seconds() }},
		{"kaas_device_slot_busy_seconds_total", "counter", "Modeled device-seconds context slots were held.",
			func(d deviceSample) float64 { return d.stats.SlotBusy.Seconds() }},
		{"kaas_device_memory_bytes", "gauge", "Device memory currently allocated.",
			func(d deviceSample) float64 { return float64(d.stats.MemoryUsed) }},
		{"kaas_device_cold_starts_total", "counter", "Device context creations (each paid RuntimeInit).",
			func(d deviceSample) float64 { return float64(d.stats.ColdStarts) }},
		{"kaas_device_energy_joules_total", "counter", "Modeled energy consumed by the device.",
			func(d deviceSample) float64 { return d.energy }},
	}

	samples := make([]deviceSample, len(devices))
	for i, d := range devices {
		samples[i] = deviceSample{
			id:     d.ID(),
			stats:  d.Stats(),
			slots:  d.Profile().Slots,
			util:   d.Utilization(),
			energy: d.Energy(),
		}
	}
	for _, f := range families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, d := range samples {
			if _, err := fmt.Fprintf(w, "%s{device=%q} %g\n", f.name, d.id, f.value(d)); err != nil {
				return err
			}
		}
	}

	// Lease-arena gauges are sampled live from the pool, like the device
	// gauges above, so scrape-time accounting always matches the arena.
	if p := s.arena.Load(); p != nil {
		as := p.Stats()
		leaseFamilies := []struct {
			name, typ, help string
			value           float64
		}{
			{"kaas_lease_active", "gauge", "Live arena leases.", float64(as.Active)},
			{"kaas_lease_bytes_granted", "gauge", "Bytes held by live arena leases.", float64(as.Granted)},
			{"kaas_lease_bytes_pooled", "gauge", "Bytes parked on the arena free lists.", float64(as.Pooled)},
			{"kaas_lease_grants_total", "counter", "Arena leases granted.", float64(as.Grants)},
			{"kaas_lease_reuses_total", "counter", "Lease grants served from a pooled slab without allocating.", float64(as.Reuses)},
			{"kaas_lease_revocations_total", "counter", "Arena leases revoked.", float64(as.Revocations)},
		}
		for _, f := range leaseFamilies {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
				f.name, f.help, f.name, f.typ, f.name, f.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// deviceSample is one device's live readings for WriteMetrics.
type deviceSample struct {
	id     string
	stats  accel.Stats
	slots  int
	util   float64
	energy float64
}

// MetricsHandler returns an HTTP handler serving WriteMetrics, mountable
// as a Prometheus scrape endpoint.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
}
