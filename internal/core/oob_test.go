package core

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"net"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/breaker"
	"kaas/internal/kernels"
	"kaas/internal/shm"
	"kaas/internal/vclock"
	"kaas/internal/wire"
)

// dataKernel echoes its request payload back as the result payload.
type dataKernel struct{}

func (dataKernel) Name() string     { return "data" }
func (dataKernel) Kind() accel.Kind { return accel.GPU }
func (dataKernel) Cost(*kernels.Request) (kernels.Cost, error) {
	return kernels.Cost{Work: 1e6, BytesIn: 1 << 10, BytesOut: 1 << 10, DeviceMemory: 1 << 16}, nil
}
func (dataKernel) Execute(req *kernels.Request) (*kernels.Response, error) {
	out := make([]byte, len(req.Data))
	copy(out, req.Data)
	return &kernels.Response{Values: map[string]float64{"bytes": float64(len(out))}, Data: out}, nil
}

// deadWriteConn reads normally but fails every write, modeling a peer
// whose receive side vanished while the server composes a reply.
type deadWriteConn struct {
	net.Conn
}

func (deadWriteConn) Write([]byte) (int, error) {
	return 0, errors.New("connection reset by peer")
}

// startTCPArena is startTCP with the out-of-band arena enabled.
func startTCPArena(t *testing.T, arena *shm.ArenaPool) (*Server, *TCPServer) {
	t.Helper()
	clock := vclock.Scaled(1000)
	host, err := accel.NewHost(clock, "node", accel.XeonE52698, accel.TeslaP100)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	srv, err := New(Config{
		Clock:  clock,
		Host:   host,
		Logger: slog.New(slog.NewTextHandler(&syncBuffer{}, nil)),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	tcp, err := ServeTCP(srv, "127.0.0.1:0", shm.NewRegistry(1<<30), WithArenaPool(arena))
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	t.Cleanup(func() { tcp.Close() })
	return srv, tcp
}

// TestShmResultRegionFreedOnDeadPeer is the regression test for the
// legacy-path result-region leak: an invocation asking for an
// out-of-band result whose peer dies before the reply is written must
// return the region's bytes to the registry budget. Before the fix the
// region stayed allocated forever — nobody would ever read and delete
// it — and this test fails with a non-zero registry.
func TestShmResultRegionFreedOnDeadPeer(t *testing.T) {
	srv, tcp, _ := startTCP(t)
	if err := srv.Register(dataKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}

	ours, theirs := net.Pipe()
	t.Cleanup(func() { ours.Close(); theirs.Close() })
	sc := &serverConn{Conn: deadWriteConn{ours}}

	ok := tcp.handleInvoke(sc, &wire.Message{
		Type: wire.MsgInvoke,
		Header: wire.Header{
			Kernel:        "data",
			WantShmResult: true,
		},
		Body: []byte("payload"),
	})
	if ok {
		t.Fatal("handleInvoke reported a usable connection after a failed reply write")
	}
	if used := tcp.regions.Used(); used != 0 {
		t.Fatalf("registry holds %d bytes after dead-peer reply, want 0 (result region leaked)", used)
	}
}

// TestMuxShmResultRegionFreedOnFailedSession is the mux-path twin of the
// dead-peer leak regression: when the session write fails while the
// result-region reply is in flight, the region must be deleted rather
// than stranded against the registry budget.
func TestMuxShmResultRegionFreedOnFailedSession(t *testing.T) {
	srv, tcp, _ := startTCP(t)
	if err := srv.Register(dataKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}

	ours, theirs := net.Pipe()
	t.Cleanup(func() { ours.Close(); theirs.Close() })
	s := &muxSession{
		t:          tcp,
		sc:         &serverConn{Conn: deadWriteConn{ours}},
		writeCh:    make(chan *wire.Message, 64),
		writerDone: make(chan struct{}),
		sem:        make(chan struct{}, 8),
		streams:    make(map[uint64]context.CancelFunc),
	}
	go s.writeLoop()
	t.Cleanup(func() { s.finish(false) })

	s.sem <- struct{}{}
	s.wg.Add(1)
	s.serveInvoke(&wire.Message{
		Version: wire.VersionMux,
		Type:    wire.MsgInvoke,
		Header: wire.Header{
			Kernel:        "data",
			WantShmResult: true,
			StreamID:      7,
		},
		Body: []byte("payload"),
	})
	if !s.failed.Load() {
		t.Fatal("session did not observe the reply write failure")
	}
	if used := tcp.regions.Used(); used != 0 {
		t.Fatalf("registry holds %d bytes after failed-session reply, want 0 (result region leaked)", used)
	}
}

// fakeLeaseOwner records revocation notices pushed to a connection.
type fakeLeaseOwner struct {
	revoked chan uint64
}

func (f *fakeLeaseOwner) sendLeaseRevoke(id uint64) { f.revoked <- id }

// TestDisconnectMidLeaseReturnsBudget is the regression test for the
// arena-budget accounting on client disconnect: a connection that dies
// while holding leases must have every lease revoked and its bytes
// returned, or the arena budget leaks one window per crashed client.
func TestDisconnectMidLeaseReturnsBudget(t *testing.T) {
	arena := shm.NewArenaPool(1 << 20)
	_, tcp := startTCPArena(t, arena)

	owner := &fakeLeaseOwner{revoked: make(chan uint64, 4)}
	if _, err := tcp.leases.grant(owner, 4096); err != nil {
		t.Fatalf("grant: %v", err)
	}
	if _, err := tcp.leases.grant(owner, 8192); err != nil {
		t.Fatalf("grant: %v", err)
	}
	if st := arena.Stats(); st.Active != 2 || st.Granted == 0 {
		t.Fatalf("arena before disconnect = %+v, want 2 active leases", st)
	}

	if n := tcp.leases.releaseOwner(owner); n != 2 {
		t.Fatalf("releaseOwner = %d leases, want 2", n)
	}
	st := arena.Stats()
	if st.Active != 0 || st.Granted != 0 {
		t.Fatalf("arena after disconnect = %+v, want all bytes returned to budget", st)
	}
	if st.Revocations != 2 {
		t.Fatalf("revocations = %d, want 2", st.Revocations)
	}
	select {
	case id := <-owner.revoked:
		t.Fatalf("disconnect path notified the dead peer about lease %d", id)
	default:
	}

	// The returned budget must be grantable again.
	if _, err := tcp.leases.grant(owner, 4096); err != nil {
		t.Fatalf("grant after release: %v", err)
	}
}

// TestBreakerOpenRevokesLeases wires the breaker-transition hook through
// the lease table: a device breaker opening revokes every outstanding
// lease and pushes a MsgLeaseRevoke notice to each owner.
func TestBreakerOpenRevokesLeases(t *testing.T) {
	arena := shm.NewArenaPool(1 << 20)
	srv, tcp := startTCPArena(t, arena)

	owner := &fakeLeaseOwner{revoked: make(chan uint64, 4)}
	l, err := tcp.leases.grant(owner, 4096)
	if err != nil {
		t.Fatalf("grant: %v", err)
	}

	srv.onBreakerTransition("gpu0", breaker.Closed, breaker.Open)

	select {
	case id := <-owner.revoked:
		if id != l.ID() {
			t.Fatalf("revoke notice names lease %d, want %d", id, l.ID())
		}
	case <-time.After(time.Second):
		t.Fatal("no revoke notice after breaker opened")
	}
	if st := arena.Stats(); st.Active != 0 || st.Granted != 0 {
		t.Fatalf("arena after breaker-open = %+v, want all leases revoked", st)
	}

	// Half-open and close transitions must not disturb fresh leases.
	if _, err := tcp.leases.grant(owner, 4096); err != nil {
		t.Fatalf("grant after breaker: %v", err)
	}
	srv.onBreakerTransition("gpu0", breaker.Open, breaker.HalfOpen)
	srv.onBreakerTransition("gpu0", breaker.HalfOpen, breaker.Closed)
	if st := arena.Stats(); st.Active != 1 {
		t.Fatalf("arena after recovery transitions = %+v, want lease untouched", st)
	}
}

// TestDrainRevokesLeases covers the drain path: taking the endpoint out
// of rotation withdraws every lease with notification, so clients
// switch to in-band transfer before their connections close.
func TestDrainRevokesLeases(t *testing.T) {
	arena := shm.NewArenaPool(1 << 20)
	_, tcp := startTCPArena(t, arena)

	owner := &fakeLeaseOwner{revoked: make(chan uint64, 4)}
	if _, err := tcp.leases.grant(owner, 4096); err != nil {
		t.Fatalf("grant: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tcp.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	select {
	case <-owner.revoked:
	case <-time.After(time.Second):
		t.Fatal("no revoke notice on drain")
	}
	if st := arena.Stats(); st.Active != 0 || st.Granted != 0 {
		t.Fatalf("arena after drain = %+v, want all leases revoked", st)
	}
}

// TestServeLeaseOverWire exercises the lease negotiation frames over a
// real mux connection: grant, bounded ack, and stale-lease invoke
// answered with the retryable LEASE_REVOKED code.
func TestServeLeaseOverWire(t *testing.T) {
	arena := shm.NewArenaPool(1 << 20)
	srv, tcp := startTCPArena(t, arena)
	if err := srv.Register(dataKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}

	conn := dialWire(t, tcp.Addr())
	muxHandshake(t, conn)

	err := wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgLease, Header: wire.Header{
		LeaseBytes: 1 << 12, StreamID: 1,
	}})
	if err != nil {
		t.Fatalf("write lease: %v", err)
	}
	ack, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read lease ack: %v", err)
	}
	if ack.Type != wire.MsgLeaseAck || ack.Header.LeaseID == 0 {
		t.Fatalf("lease ack = %s (%s), want granted lease", ack.Type, ack.Header.Error)
	}
	if ack.Header.LeaseBytes < 1<<12 {
		t.Fatalf("granted window = %d bytes, want >= %d", ack.Header.LeaseBytes, 1<<12)
	}

	// Fill the window directly (both endpoints map the same pool here)
	// and invoke by handle.
	l, ok := arena.Get(ack.Header.LeaseID)
	if !ok {
		t.Fatal("granted lease not resolvable in the shared arena")
	}
	payload := bytes.Repeat([]byte{0xAB}, 1<<10)
	copy(l.Bytes(), payload)
	err = wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgInvoke, Header: wire.Header{
		Kernel:   "data",
		StreamID: 2,
		LeaseID:  ack.Header.LeaseID,
		LeaseLen: int64(len(payload)),
	}})
	if err != nil {
		t.Fatalf("write invoke: %v", err)
	}
	res, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	if res.Type != wire.MsgResult {
		t.Fatalf("reply = %s (%s), want result", res.Type, res.Header.Error)
	}
	if res.Header.LeaseResultLen != int64(len(payload)) {
		t.Fatalf("result length in window = %d, want %d", res.Header.LeaseResultLen, len(payload))
	}
	if !bytes.Equal(l.Bytes()[:len(payload)], payload) {
		t.Fatal("result window does not hold the echoed payload")
	}

	// Revoke behind the client's back: the same handle must now be
	// answered with the retryable stale-lease code, not silently served.
	arena.Revoke(ack.Header.LeaseID)
	err = wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgInvoke, Header: wire.Header{
		Kernel:   "data",
		StreamID: 3,
		LeaseID:  ack.Header.LeaseID,
		LeaseLen: 8,
	}})
	if err != nil {
		t.Fatalf("write stale invoke: %v", err)
	}
	stale, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read stale reply: %v", err)
	}
	if stale.Type != wire.MsgError || stale.Header.Code != wire.CodeLeaseRevoked {
		t.Fatalf("stale-lease reply = %s code %q, want error %q",
			stale.Type, stale.Header.Code, wire.CodeLeaseRevoked)
	}
	if !stale.Header.Retryable {
		t.Fatal("stale-lease error not retryable; clients could not fall back in-band")
	}
}

// TestServeLeaseDeniedWithoutArena verifies a server without an arena
// answers lease negotiation with a permanent denial instead of an
// unexpected-type error.
func TestServeLeaseDeniedWithoutArena(t *testing.T) {
	_, tcp, _ := startTCP(t)
	conn := dialWire(t, tcp.Addr())
	muxHandshake(t, conn)

	err := wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgLease, Header: wire.Header{
		LeaseBytes: 4096, StreamID: 1,
	}})
	if err != nil {
		t.Fatalf("write lease: %v", err)
	}
	ack, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read lease ack: %v", err)
	}
	if ack.Type != wire.MsgLeaseAck || ack.Header.LeaseID != 0 || ack.Header.Code != wire.CodeInternal {
		t.Fatalf("denial = %s lease %d code %q, want lease ack with no lease and code %q",
			ack.Type, ack.Header.LeaseID, ack.Header.Code, wire.CodeInternal)
	}
}
