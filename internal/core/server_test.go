package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/kernels"
	"kaas/internal/vclock"
)

// fakeKernel is a controllable kernel for server tests.
type fakeKernel struct {
	name    string
	kind    accel.Kind
	cost    kernels.Cost
	execErr error
	costErr error

	mu    sync.Mutex
	execs int
}

var _ kernels.Kernel = (*fakeKernel)(nil)

func (f *fakeKernel) Name() string     { return f.name }
func (f *fakeKernel) Kind() accel.Kind { return f.kind }

func (f *fakeKernel) Cost(*kernels.Request) (kernels.Cost, error) {
	if f.costErr != nil {
		return kernels.Cost{}, f.costErr
	}
	return f.cost, nil
}

func (f *fakeKernel) Execute(*kernels.Request) (*kernels.Response, error) {
	f.mu.Lock()
	f.execs++
	f.mu.Unlock()
	if f.execErr != nil {
		return nil, f.execErr
	}
	return &kernels.Response{Values: map[string]float64{"ok": 1}}, nil
}

func (f *fakeKernel) executions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.execs
}

// testGPUProfile returns a fast GPU profile for server tests.
func testGPUProfile() accel.Profile {
	return accel.Profile{
		Name:           "test GPU",
		Kind:           accel.GPU,
		RuntimeInit:    400 * time.Millisecond,
		LibraryInit:    500 * time.Millisecond,
		LaunchOverhead: time.Millisecond,
		ComputeRate:    1e9,
		CopyBandwidth:  1e9,
		Slots:          8,
		MemoryBytes:    1 << 30,
		IdlePower:      30,
		BusyPower:      250,
	}
}

// newTestServer builds a server over nGPUs test GPUs at the given scale.
func newTestServer(t *testing.T, nGPUs int, mutate func(*Config)) (*Server, *accel.Host, vclock.Clock) {
	t.Helper()
	clock := vclock.Scaled(5000)
	profiles := make([]accel.Profile, nGPUs)
	for i := range profiles {
		profiles[i] = testGPUProfile()
	}
	cpu := accel.XeonE52698
	host, err := accel.NewHost(clock, "test", cpu, profiles...)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	cfg := Config{Clock: clock, Host: host}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s, host, clock
}

func stdCost() kernels.Cost {
	return kernels.Cost{Work: 1e8, BytesIn: 1e6, BytesOut: 1e6, DeviceMemory: 1 << 20}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without clock succeeded")
	}
	if _, err := New(Config{Clock: vclock.Real()}); err == nil {
		t.Error("New without host succeeded")
	}
}

func TestRegisterValidation(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k1", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := s.Register(k); !errors.Is(err, ErrAlreadyRegistered) {
		t.Errorf("duplicate register err = %v, want ErrAlreadyRegistered", err)
	}
	fpga := &fakeKernel{name: "k2", kind: accel.FPGA, cost: stdCost()}
	if err := s.Register(fpga); !errors.Is(err, ErrNoDevice) {
		t.Errorf("missing-device register err = %v, want ErrNoDevice", err)
	}
	if err := s.Register(nil); err == nil {
		t.Error("Register(nil) succeeded")
	}
	names := s.Kernels()
	if len(names) != 1 || names[0] != "k1" {
		t.Errorf("Kernels = %v", names)
	}
}

func TestRegisterPaysLibraryInitOncePerKind(t *testing.T) {
	s, _, clock := newTestServer(t, 1, nil)
	start := clock.Now()
	if err := s.Register(&fakeKernel{name: "a", kind: accel.GPU, cost: stdCost()}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	first := clock.Now().Sub(start)
	if first < 400*time.Millisecond {
		t.Errorf("first registration took %v, want >= LibraryInit (500ms)", first)
	}
	start = clock.Now()
	if err := s.Register(&fakeKernel{name: "b", kind: accel.GPU, cost: stdCost()}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	second := clock.Now().Sub(start)
	if second > 200*time.Millisecond {
		t.Errorf("second registration took %v, want fast (library warm)", second)
	}
}

func TestInvokeUnknownKernel(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	if _, _, err := s.Invoke(context.Background(), "nope", nil); !errors.Is(err, ErrUnknownKernel) {
		t.Errorf("err = %v, want ErrUnknownKernel", err)
	}
}

func TestColdThenWarmInvocation(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	resp, rep, err := s.Invoke(context.Background(), "k", nil)
	if err != nil {
		t.Fatalf("cold Invoke: %v", err)
	}
	if !rep.Cold {
		t.Error("first invocation not cold")
	}
	if rep.Breakdown.RuntimeInit < 300*time.Millisecond {
		t.Errorf("cold RuntimeInit = %v, want >= 300ms", rep.Breakdown.RuntimeInit)
	}
	if rep.Breakdown.Spawn <= 0 {
		t.Error("cold start has zero spawn cost")
	}
	if resp.Values["ok"] != 1 {
		t.Errorf("response = %v", resp.Values)
	}

	_, rep2, err := s.Invoke(context.Background(), "k", nil)
	if err != nil {
		t.Fatalf("warm Invoke: %v", err)
	}
	if rep2.Cold {
		t.Error("second invocation cold, want warm")
	}
	if rep2.Breakdown.RuntimeInit != 0 || rep2.Breakdown.Spawn != 0 {
		t.Errorf("warm invocation paid init: %+v", rep2.Breakdown)
	}
	if rep2.Total() >= rep.Total() {
		t.Errorf("warm total %v not faster than cold %v", rep2.Total(), rep.Total())
	}
	if k.executions() != 2 {
		t.Errorf("executions = %d, want 2", k.executions())
	}
	if rep2.Device == "" || rep2.Runner == "" {
		t.Error("report missing device/runner")
	}
}

func TestAutoscalerSpawnsRunnersUnderLoad(t *testing.T) {
	s, _, _ := newTestServer(t, 4, func(c *Config) {
		c.MaxInFlightPerRunner = 2
	})
	k := &fakeKernel{name: "k", kind: accel.GPU,
		cost: kernels.Cost{Work: 5e9, BytesIn: 1000, BytesOut: 1000}} // ~5s kernels
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
				t.Errorf("Invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	// 8 concurrent clients at threshold 2 need up to 4 runners; at least
	// 2 must have been started.
	if st.ColdStarts < 2 {
		t.Errorf("ColdStarts = %d, want >= 2", st.ColdStarts)
	}
	if st.ColdStarts > 4 {
		t.Errorf("ColdStarts = %d, want <= 4 runners for 8 clients", st.ColdStarts)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after completion", st.InFlight)
	}
}

func TestLeastLoadedPlacementSpreadsDevices(t *testing.T) {
	s, _, _ := newTestServer(t, 4, func(c *Config) {
		c.MaxInFlightPerRunner = 1
		c.Placement = PlaceLeastLoaded
	})
	k := &fakeKernel{name: "k", kind: accel.GPU,
		cost: kernels.Cost{Work: 5e9, BytesIn: 1000, BytesOut: 1000}}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
				t.Errorf("Invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if len(st.RunnersPerDevice) < 3 {
		t.Errorf("runners on %d devices, want spread across >= 3", len(st.RunnersPerDevice))
	}
	for dev, n := range st.RunnersPerDevice {
		if n > 1 {
			t.Errorf("device %s has %d runners, want <= 1", dev, n)
		}
	}
}

func TestFirstFitPlacementUsesOneDevice(t *testing.T) {
	s, _, _ := newTestServer(t, 4, func(c *Config) {
		c.Placement = PlaceFirstFit
		c.MaxRunnersPerDevice = 8
		c.MaxInFlightPerRunner = 1
	})
	k := &fakeKernel{name: "k", kind: accel.GPU,
		cost: kernels.Cost{Work: 2e9, BytesIn: 1000, BytesOut: 1000}}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
				t.Errorf("Invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if len(st.RunnersPerDevice) != 1 {
		t.Errorf("first-fit used %d devices, want 1: %v", len(st.RunnersPerDevice), st.RunnersPerDevice)
	}
}

func TestOverbookingWhenAtCapacity(t *testing.T) {
	// One device, one runner max, threshold 1: a second concurrent
	// invocation must overbook the existing runner rather than fail.
	s, _, _ := newTestServer(t, 1, func(c *Config) {
		c.MaxInFlightPerRunner = 1
		c.MaxRunnersPerDevice = 1
	})
	k := &fakeKernel{name: "k", kind: accel.GPU,
		cost: kernels.Cost{Work: 3e9, BytesIn: 1000, BytesOut: 1000}}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
				t.Errorf("Invoke: %v", err)
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.ColdStarts != 1 {
		t.Errorf("ColdStarts = %d, want 1 (single runner)", st.ColdStarts)
	}
}

func TestRunnerReaperScalesDown(t *testing.T) {
	s, _, _ := newTestServer(t, 2, func(c *Config) {
		c.RunnerIdleTimeout = 2 * time.Second
	})
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if st := s.Stats(); st.Runners != 1 {
		t.Fatalf("Runners = %d, want 1", st.Runners)
	}
	// Wait past the idle timeout in modeled time (~2s modeled = 0.4ms
	// wall at scale 5000; wait generously in wall time).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().Runners == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Stats(); st.Runners != 0 {
		t.Errorf("Runners = %d after idle timeout, want 0", st.Runners)
	}
	// Next invocation is cold again.
	_, rep, err := s.Invoke(context.Background(), "k", nil)
	if err != nil {
		t.Fatalf("Invoke after reap: %v", err)
	}
	if !rep.Cold {
		t.Error("invocation after reap not cold")
	}
}

func TestExecuteErrorPropagates(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost(),
		execErr: errors.New("boom")}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); err == nil {
		t.Error("Invoke with failing kernel succeeded")
	}
	// The runner survives; a subsequent good invocation works warm.
	k.execErr = nil
	_, rep, err := s.Invoke(context.Background(), "k", nil)
	if err != nil {
		t.Fatalf("Invoke after failure: %v", err)
	}
	if rep.Cold {
		t.Error("runner did not survive a kernel failure")
	}
}

func TestCostErrorPropagates(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, costErr: errors.New("bad params")}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); err == nil {
		t.Error("Invoke with failing cost model succeeded")
	}
}

func TestDeviceMemoryExhaustion(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU,
		cost: kernels.Cost{Work: 1e6, DeviceMemory: 2 << 30}} // > 1 GiB device
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); !errors.Is(err, accel.ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestComputeResultsToggle(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	s.SetComputeResults(false)
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if k.executions() != 0 {
		t.Errorf("executions = %d with compute disabled, want 0", k.executions())
	}
	s.SetComputeResults(true)
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if k.executions() != 1 {
		t.Errorf("executions = %d with compute enabled, want 1", k.executions())
	}
}

func TestRealKernelThroughServer(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	mm := kernels.NewMatMul(accel.GPU)
	if err := s.Register(mm); err != nil {
		t.Fatalf("Register: %v", err)
	}
	resp, _, err := s.Invoke(context.Background(), "matmul",
		&kernels.Request{Params: kernels.Params{"n": 64, "seed": 3}})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if resp.Values["checksum"] <= 0 {
		t.Errorf("checksum = %v, want > 0", resp.Values["checksum"])
	}
	// The server result matches direct kernel execution.
	direct, err := mm.Execute(&kernels.Request{Params: kernels.Params{"n": 64, "seed": 3}})
	if err != nil {
		t.Fatalf("direct Execute: %v", err)
	}
	if resp.Values["checksum"] != direct.Values["checksum"] {
		t.Error("server result differs from direct execution")
	}
}

func TestCloseRejectsFurtherWork(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	s.Close()
	s.Close() // idempotent
	if _, _, err := s.Invoke(context.Background(), "k", nil); !errors.Is(err, ErrServerClosed) {
		t.Errorf("err = %v, want ErrServerClosed", err)
	}
	if err := s.Register(&fakeKernel{name: "k2", kind: accel.GPU}); !errors.Is(err, ErrServerClosed) {
		t.Errorf("register after close err = %v, want ErrServerClosed", err)
	}
}

func TestPlacementPolicyString(t *testing.T) {
	for _, tt := range []struct {
		p    PlacementPolicy
		want string
	}{
		{PlaceLeastLoaded, "least-loaded"},
		{PlaceRoundRobin, "round-robin"},
		{PlaceFirstFit, "first-fit"},
		{PlacementPolicy(9), "placement(9)"},
	} {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestRoundRobinPlacementCycles(t *testing.T) {
	s, _, _ := newTestServer(t, 3, func(c *Config) {
		c.Placement = PlaceRoundRobin
		c.MaxInFlightPerRunner = 1
	})
	k := &fakeKernel{name: "k", kind: accel.GPU,
		cost: kernels.Cost{Work: 200e9, BytesIn: 100, BytesOut: 100}} // ~200 modeled s
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
				t.Errorf("Invoke: %v", err)
			}
		}()
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	st := s.Stats()
	if len(st.RunnersPerDevice) != 3 {
		t.Errorf("round-robin used %d devices, want 3: %v", len(st.RunnersPerDevice), st.RunnersPerDevice)
	}
}

func TestManyKernelsShareDevices(t *testing.T) {
	s, _, _ := newTestServer(t, 2, func(c *Config) {
		c.MaxRunnersPerDevice = 4
	})
	for i := 0; i < 4; i++ {
		k := &fakeKernel{name: fmt.Sprintf("k%d", i), kind: accel.GPU, cost: stdCost()}
		if err := s.Register(k); err != nil {
			t.Fatalf("Register k%d: %v", i, err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("k%d", i)
			if _, _, err := s.Invoke(context.Background(), name, nil); err != nil {
				t.Errorf("Invoke %s: %v", name, err)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Runners != 4 {
		t.Errorf("Runners = %d, want 4 (one per kernel)", st.Runners)
	}
	if st.Kernels != 4 {
		t.Errorf("Kernels = %d, want 4", st.Kernels)
	}
}

// TestIdleRunnerEvictionOnSlotPressure: on a single-slot device, a second
// kernel's cold start must evict the first kernel's idle runner instead
// of deadlocking.
func TestIdleRunnerEvictionOnSlotPressure(t *testing.T) {
	clock := vclock.Scaled(5000)
	fpga := testGPUProfile()
	fpga.Kind = accel.FPGA
	fpga.Slots = 1
	host, err := accel.NewHost(clock, "test", accel.XeonE52698, fpga)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	s, err := New(Config{Clock: clock, Host: host})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)

	k1 := &fakeKernel{name: "k1", kind: accel.FPGA, cost: stdCost()}
	k2 := &fakeKernel{name: "k2", kind: accel.FPGA, cost: stdCost()}
	if err := s.Register(k1); err != nil {
		t.Fatalf("Register k1: %v", err)
	}
	if err := s.Register(k2); err != nil {
		t.Fatalf("Register k2: %v", err)
	}

	if _, _, err := s.Invoke(context.Background(), "k1", nil); err != nil {
		t.Fatalf("Invoke k1: %v", err)
	}
	// k2's cold start needs the only slot; k1's idle runner is evicted.
	done := make(chan error, 1)
	go func() {
		_, _, err := s.Invoke(context.Background(), "k2", nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Invoke k2: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("k2 invocation deadlocked on the single slot")
	}
	// And back: k1 is cold again (its runner was evicted) but succeeds.
	_, rep, err := s.Invoke(context.Background(), "k1", nil)
	if err != nil {
		t.Fatalf("re-Invoke k1: %v", err)
	}
	if !rep.Cold {
		t.Error("k1 should be cold after eviction")
	}
}

// TestFailoverOnDeviceFailure: when a runner's device fails mid-service,
// the invocation retries on a healthy device transparently.
func TestFailoverOnDeviceFailure(t *testing.T) {
	s, host, _ := newTestServer(t, 2, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Warm a runner on the first device.
	_, rep, err := s.Invoke(context.Background(), "k", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	firstDevice := rep.Device

	// Fail that device; the next invocation must succeed elsewhere.
	dev, ok := host.Device(firstDevice)
	if !ok {
		t.Fatalf("device %q not found", firstDevice)
	}
	dev.Fail()
	resp, rep2, err := s.Invoke(context.Background(), "k", nil)
	if err != nil {
		t.Fatalf("Invoke after failure: %v", err)
	}
	if resp.Values["ok"] != 1 {
		t.Errorf("response = %v", resp.Values)
	}
	if rep2.Device == firstDevice {
		t.Errorf("failover stayed on failed device %q", rep2.Device)
	}
	if !rep2.Cold {
		t.Error("failover invocation should report cold")
	}
	// The failed device's runner is gone; only the new one remains.
	if st := s.Stats(); st.RunnersPerDevice[firstDevice] != 0 {
		t.Errorf("failed device still hosts %d runners", st.RunnersPerDevice[firstDevice])
	}

	// Repairing the device makes it placeable again.
	dev.Repair()
	if dev.Failed() {
		t.Error("Repair did not clear failure")
	}
}

// TestFailoverExhaustsHealthyDevices: if every device of the kind has
// failed, the invocation reports the failure instead of looping.
func TestFailoverExhaustsHealthyDevices(t *testing.T) {
	s, host, _ := newTestServer(t, 1, nil)
	k := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(k); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	host.Devices()[0].Fail()
	if _, _, err := s.Invoke(context.Background(), "k", nil); !errors.Is(err, accel.ErrDeviceFailed) {
		t.Errorf("err = %v, want ErrDeviceFailed", err)
	}
}
