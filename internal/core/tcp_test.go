package core

import (
	"bytes"
	"log/slog"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/kernels"
	"kaas/internal/shm"
	"kaas/internal/vclock"
	"kaas/internal/wire"
)

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// slowKernel burns enough modeled device work that, at the test clock
// scale, an invocation takes seconds of wall time unless cancelled.
type slowKernel struct{}

func (slowKernel) Name() string     { return "slow" }
func (slowKernel) Kind() accel.Kind { return accel.GPU }
func (slowKernel) Cost(*kernels.Request) (kernels.Cost, error) {
	// 8e11 work/s on a Tesla P100 × 1000 scale: ~5 s of wall time.
	return kernels.Cost{Work: 4e15}, nil
}
func (slowKernel) Execute(*kernels.Request) (*kernels.Response, error) {
	return &kernels.Response{Values: map[string]float64{"done": 1}}, nil
}

// startTCP brings up a server over TCP with a log capture, returning the
// core server, TCP endpoint, and log buffer.
func startTCP(t *testing.T) (*Server, *TCPServer, *syncBuffer) {
	t.Helper()
	clock := vclock.Scaled(1000)
	host, err := accel.NewHost(clock, "node", accel.XeonE52698, accel.TeslaP100)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	logs := &syncBuffer{}
	srv, err := New(Config{
		Clock:  clock,
		Host:   host,
		Logger: slog.New(slog.NewTextHandler(logs, nil)),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	tcp, err := ServeTCP(srv, "127.0.0.1:0", shm.NewRegistry(1<<30))
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	t.Cleanup(func() { tcp.Close() })
	return srv, tcp, logs
}

// dialWire opens a raw protocol connection.
func dialWire(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// waitFor polls cond until it holds or the wall deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestInvokeRejectsExpiredDeadline(t *testing.T) {
	srv, tcp, _ := startTCP(t)
	if err := srv.Register(slowKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	conn := dialWire(t, tcp.Addr())
	err := wire.Write(conn, &wire.Message{
		Type: wire.MsgInvoke,
		Header: wire.Header{
			Kernel:        "slow",
			DeadlineNanos: time.Now().Add(-time.Second).UnixNano(),
		},
	})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	start := time.Now()
	reply, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if reply.Type != wire.MsgError {
		t.Fatalf("reply = %s, want error", reply.Type)
	}
	if !strings.Contains(reply.Header.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", reply.Header.Error)
	}
	// Rejected before reaching a runner: no cold start, nothing in
	// flight, and the rejection must be prompt (the slow kernel takes
	// seconds when it runs).
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("rejection took %v", elapsed)
	}
	st := srv.Stats()
	if st.ColdStarts != 0 || st.InFlight != 0 {
		t.Errorf("Stats = %+v, want no cold starts and nothing in flight", st)
	}
}

func TestClientDisconnectCancelsInvocation(t *testing.T) {
	srv, tcp, logs := startTCP(t)
	if err := srv.Register(slowKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	conn := dialWire(t, tcp.Addr())
	if err := wire.Write(conn, &wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: "slow"},
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Wait until the invocation is in flight, then vanish.
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 1 }, "invocation in flight")
	conn.Close()

	// The kernel runs ~5 s of wall time if nobody cancels it; the
	// disconnect watcher must cancel its context well before that.
	start := time.Now()
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 0 }, "in-flight count to drain")
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancellation took %v after disconnect", elapsed)
	}
	waitFor(t, 2*time.Second, func() bool {
		return strings.Contains(logs.String(), "invocation cancelled")
	}, "cancellation log entry")

	// The server must keep serving new work afterwards.
	conn2 := dialWire(t, tcp.Addr())
	if err := wire.Write(conn2, &wire.Message{
		Type:   wire.MsgRegister,
		Header: wire.Header{Kernel: "matmul"},
	}); err != nil {
		t.Fatalf("register after disconnect: %v", err)
	}
	reply, err := wire.Read(conn2)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if reply.Type != wire.MsgRegistered {
		t.Fatalf("reply = %s, want registered", reply.Type)
	}
	if err := wire.Write(conn2, &wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: "matmul", Params: map[string]float64{"n": 32}},
	}); err != nil {
		t.Fatalf("invoke after disconnect: %v", err)
	}
	reply, err = wire.Read(conn2)
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	if reply.Type != wire.MsgResult {
		t.Fatalf("reply = %s (%s), want result", reply.Type, reply.Header.Error)
	}
}

func TestReplyWriteFailureIsLoggedAndCloses(t *testing.T) {
	srv, tcp, logs := startTCP(t)
	if err := srv.Register(slowKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	conn := dialWire(t, tcp.Addr())
	if err := wire.Write(conn, &wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: "slow"},
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 1 }, "invocation in flight")
	// Close with a pending RST so the server's reply write fails
	// outright instead of landing in the kernel socket buffer.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
	waitFor(t, 4*time.Second, func() bool {
		s := logs.String()
		return strings.Contains(s, "invocation cancelled") || strings.Contains(s, "reply write failed")
	}, "disconnect handling log entry")
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 0 }, "in-flight drain")
}

func TestDeadlineCancelsMidFlightKernel(t *testing.T) {
	srv, tcp, _ := startTCP(t)
	if err := srv.Register(slowKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	conn := dialWire(t, tcp.Addr())
	// A live deadline far shorter than the kernel's ~5 s of wall time.
	if err := wire.Write(conn, &wire.Message{
		Type: wire.MsgInvoke,
		Header: wire.Header{
			Kernel:        "slow",
			DeadlineNanos: time.Now().Add(300 * time.Millisecond).UnixNano(),
		},
	}); err != nil {
		t.Fatalf("write: %v", err)
	}
	start := time.Now()
	reply, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if reply.Type != wire.MsgError {
		t.Fatalf("reply = %s, want error", reply.Type)
	}
	if !strings.Contains(reply.Header.Error, "deadline") &&
		!strings.Contains(reply.Header.Error, "context") {
		t.Errorf("error %q does not mention cancellation", reply.Header.Error)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline enforcement took %v", elapsed)
	}
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 0 }, "in-flight drain")
}

func TestServeTCPListenerNil(t *testing.T) {
	if _, err := ServeTCPListener(nil, nil, nil); err == nil {
		t.Error("nil listener accepted")
	}
}

func TestPipelinedSecondRequestSurvivesWatcher(t *testing.T) {
	srv, tcp, _ := startTCP(t)
	if err := srv.Register(kernels.NewMonteCarlo()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	conn := dialWire(t, tcp.Addr())
	// Send two invocations back to back: while the first is served, the
	// disconnect watcher may read the first byte of the second frame —
	// which must be pushed back, not lost.
	for i := 0; i < 2; i++ {
		if err := wire.Write(conn, &wire.Message{
			Type:   wire.MsgInvoke,
			Header: wire.Header{Kernel: "mci", Params: map[string]float64{"n": 5000, "seed": float64(i)}},
		}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		reply, err := wire.Read(conn)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if reply.Type != wire.MsgResult {
			t.Fatalf("reply %d = %s (%s), want result", i, reply.Type, reply.Header.Error)
		}
	}
}

// TestMonteCarloName guards the kernel name the pipelining test relies on.
func TestMonteCarloName(t *testing.T) {
	if name := kernels.NewMonteCarlo().Name(); name != "mci" {
		t.Fatalf("Monte Carlo kernel is %q, update the test", name)
	}
}

// TestLegacyPeerMapsToDefaultTenant: a pre-tenant peer cannot send the
// Tenant header field, and a tenant-aware peer may send any name. Both
// must land in per-tenant accounting under deterministic keys — the
// legacy invocation under "default", never under "" — so mixed-version
// clusters do not split queues and metrics between two spellings of the
// same tenant.
func TestLegacyPeerMapsToDefaultTenant(t *testing.T) {
	srv, tcp, _ := startTCP(t)
	if err := srv.Register(kernels.NewMonteCarlo()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	conn := dialWire(t, tcp.Addr())
	// A legacy frame: no Tenant field at all.
	legacy := &wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: "mci", Params: map[string]float64{"n": 5000}},
	}
	// A tenant-aware frame from the same connection.
	tagged := &wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: "mci", Params: map[string]float64{"n": 5000}, Tenant: "acme"},
	}
	for i, msg := range []*wire.Message{legacy, tagged} {
		if err := wire.Write(conn, msg); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		reply, err := wire.Read(conn)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if reply.Type != wire.MsgResult {
			t.Fatalf("reply %d = %s (%s), want result", i, reply.Type, reply.Header.Error)
		}
	}
	st := srv.Stats()
	if _, ok := st.PerTenant[""]; ok {
		t.Error(`Stats.PerTenant contains the "" key — legacy tenants are not normalized`)
	}
	if got := st.PerTenant[DefaultTenant].Admitted; got != 1 {
		t.Errorf("default tenant admitted %d, want 1 (the legacy frame)", got)
	}
	if got := st.PerTenant["acme"].Admitted; got != 1 {
		t.Errorf("tenant acme admitted %d, want 1 (the tagged frame)", got)
	}
}
