package core

import (
	"kaas/internal/breaker"
	"kaas/internal/metrics"
)

// Metric family names exported by the server's registry. Durations in
// histogram families are expressed in seconds on export; phase
// accumulators are integer nanosecond counters.
const (
	metricInvocations  = "kaas_invocations_total"
	metricErrors       = "kaas_invocation_errors_total"
	metricColdStarts   = "kaas_cold_starts_total"
	metricFailovers    = "kaas_failovers_total"
	metricInFlight     = "kaas_in_flight"
	metricQueueDepth   = "kaas_queue_depth"
	metricLatency      = "kaas_invocation_latency_seconds"
	metricPhaseNanos   = "kaas_phase_nanoseconds_total"
	metricEvictions    = "kaas_evictions_total"
	metricReaps        = "kaas_reaps_total"
	metricRunners      = "kaas_runners"
	metricDeviceQueue  = "kaas_device_queue_depth"
	metricShed         = "kaas_shed_total"
	metricBreakerGauge = "kaas_breaker_state"
	metricBreakerTrans = "kaas_breaker_transitions_total"
	metricCacheHits    = "kaas_artifact_cache_hits_total"
	metricCacheMisses  = "kaas_artifact_cache_misses_total"
	metricPreWarms     = "kaas_prewarms_total"

	metricTenantAdmitted = "kaas_tenant_invocations_total"
	metricTenantShed     = "kaas_tenant_shed_total"
	metricTenantInFlight = "kaas_tenant_in_flight"
	metricTenantQueued   = "kaas_tenant_queued"
	metricTenantLatency  = "kaas_tenant_latency_seconds"

	metricBatchDispatches    = "kaas_batch_dispatches_total"
	metricBatchedInvocations = "kaas_batched_invocations_total"
	metricBatchSize          = "kaas_batch_size_total"
	metricOOBInvocations     = "kaas_oob_invocations_total"
	metricOOBBytes           = "kaas_oob_bytes_total"
	metricInBandBytes        = "kaas_inband_bytes_total"
)

// shedReasons enumerates the admission-control rejection reasons used as
// the reason label on kaas_shed_total and kaas_tenant_shed_total. A
// reason not listed here is silently dropped by shed(), so new rejection
// paths must register their label.
var shedReasons = []string{
	"in_flight_cap", "queue_full", "deadline", "draining",
	"capacity_lost", "tenant_in_flight_cap", "tenant_queue_full",
}

// registerHelp attaches HELP text to the server's metric families once
// per registry.
func registerHelp(reg *metrics.Registry) {
	reg.Help(metricInvocations, "Invocations accepted per kernel.")
	reg.Help(metricErrors, "Invocations that returned an error, per kernel.")
	reg.Help(metricColdStarts, "Task runner cold starts per kernel.")
	reg.Help(metricFailovers, "Failover retries after device failures, per kernel.")
	reg.Help(metricInFlight, "Invocations currently being served, per kernel.")
	reg.Help(metricQueueDepth, "Invocations waiting for a runner to finish starting, per kernel.")
	reg.Help(metricLatency, "Modeled invocation latency per kernel, split cold/warm by the temp label.")
	reg.Help(metricPhaseNanos, "Cumulative modeled time per invocation phase, per kernel, split cold/warm.")
	reg.Help(metricEvictions, "Runners evicted for device slot pressure, per device.")
	reg.Help(metricReaps, "Idle runners reaped by the scale-down timer, per device.")
	reg.Help(metricRunners, "Live task runners per device.")
	reg.Help(metricDeviceQueue, "Cold starts waiting for a device context slot, per device.")
	reg.Help(metricShed, "Invocations rejected by admission control, per kernel and reason.")
	reg.Help(metricBreakerGauge, "Circuit breaker state per device (0=closed, 1=open, 2=half-open).")
	reg.Help(metricBreakerTrans, "Circuit breaker state transitions per device, labeled by destination state.")
	reg.Help(metricCacheHits, "Cold starts that found the kernel's compiled artifact cached, per kernel.")
	reg.Help(metricCacheMisses, "Cold starts that paid JIT compilation, per kernel.")
	reg.Help(metricPreWarms, "Runners booted speculatively by the pre-warm predictor, per kernel.")
	reg.Help(metricTenantAdmitted, "Invocations admitted per tenant.")
	reg.Help(metricTenantShed, "Invocations rejected by admission control, per tenant and reason.")
	reg.Help(metricTenantInFlight, "Invocations currently being served, per tenant.")
	reg.Help(metricTenantQueued, "Invocations waiting in fair-queue flows, per tenant.")
	reg.Help(metricTenantLatency, "Modeled invocation latency per tenant.")
	reg.Help(metricBatchDispatches, "Coalesced device dispatches issued by the micro-batcher.")
	reg.Help(metricBatchedInvocations, "Invocations carried by coalesced device dispatches.")
	reg.Help(metricBatchSize, "Dispatched batches by batch-size bucket.")
	reg.Help(metricOOBInvocations, "Invocations whose payload arrived out-of-band through an arena lease.")
	reg.Help(metricOOBBytes, "Payload bytes moved by lease handle (never copied on the serving path).")
	reg.Help(metricInBandBytes, "Payload bytes copied through the wire protocol in-band.")
}

// dataPlaneMetrics caches the data-plane counters so the invocation hot
// path updates them with single atomic operations.
type dataPlaneMetrics struct {
	oobInvocations *metrics.Counter
	oobBytes       *metrics.Counter
	inbandBytes    *metrics.Counter
}

func newDataPlaneMetrics(reg *metrics.Registry) *dataPlaneMetrics {
	return &dataPlaneMetrics{
		oobInvocations: reg.Counter(metricOOBInvocations),
		oobBytes:       reg.Counter(metricOOBBytes),
		inbandBytes:    reg.Counter(metricInBandBytes),
	}
}

// kernelMetrics caches one kernel's metric instances so the invocation
// hot path updates them with single atomic operations, never touching the
// registry maps.
type kernelMetrics struct {
	invocations *metrics.Counter
	errors      *metrics.Counter
	coldStarts  *metrics.Counter
	failovers   *metrics.Counter
	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter
	preWarms    *metrics.Counter
	inFlight    *metrics.Gauge
	queueDepth  *metrics.Gauge
	sheds       map[string]*metrics.Counter // by rejection reason

	latCold         *metrics.Histogram
	latCachedCold   *metrics.Histogram
	latWarm         *metrics.Histogram
	phaseCold       map[string]*metrics.Counter
	phaseCachedCold map[string]*metrics.Counter
	phaseWarm       map[string]*metrics.Counter
}

func newKernelMetrics(reg *metrics.Registry, kernel string) *kernelMetrics {
	km := &kernelMetrics{
		invocations:     reg.Counter(metricInvocations, "kernel", kernel),
		errors:          reg.Counter(metricErrors, "kernel", kernel),
		coldStarts:      reg.Counter(metricColdStarts, "kernel", kernel),
		failovers:       reg.Counter(metricFailovers, "kernel", kernel),
		inFlight:        reg.Gauge(metricInFlight, "kernel", kernel),
		queueDepth:      reg.Gauge(metricQueueDepth, "kernel", kernel),
		cacheHits:       reg.Counter(metricCacheHits, "kernel", kernel),
		cacheMisses:     reg.Counter(metricCacheMisses, "kernel", kernel),
		preWarms:        reg.Counter(metricPreWarms, "kernel", kernel),
		sheds:           make(map[string]*metrics.Counter, len(shedReasons)),
		latCold:         reg.Histogram(metricLatency, "kernel", kernel, "temp", "cold"),
		latCachedCold:   reg.Histogram(metricLatency, "kernel", kernel, "temp", "cached-cold"),
		latWarm:         reg.Histogram(metricLatency, "kernel", kernel, "temp", "warm"),
		phaseCold:       make(map[string]*metrics.Counter),
		phaseCachedCold: make(map[string]*metrics.Counter),
		phaseWarm:       make(map[string]*metrics.Counter),
	}
	for _, reason := range shedReasons {
		km.sheds[reason] = reg.Counter(metricShed, "kernel", kernel, "reason", reason)
	}
	for _, p := range (metrics.Breakdown{}).Phases() {
		km.phaseCold[p.Name] = reg.Counter(metricPhaseNanos, "kernel", kernel, "phase", p.Name, "temp", "cold")
		km.phaseCachedCold[p.Name] = reg.Counter(metricPhaseNanos, "kernel", kernel, "phase", p.Name, "temp", "cached-cold")
		km.phaseWarm[p.Name] = reg.Counter(metricPhaseNanos, "kernel", kernel, "phase", p.Name, "temp", "warm")
	}
	return km
}

// observe records one completed invocation's latency and phase breakdown
// under the cold, cached-cold, or warm series.
func (km *kernelMetrics) observe(cold, cachedCold bool, b metrics.Breakdown) {
	lat, phases := km.latWarm, km.phaseWarm
	switch {
	case cold && cachedCold:
		lat, phases = km.latCachedCold, km.phaseCachedCold
	case cold:
		lat, phases = km.latCold, km.phaseCold
	}
	lat.Observe(b.Total())
	for _, p := range b.Phases() {
		if p.D > 0 {
			phases[p.Name].Add(uint64(p.D))
		}
	}
}

// shed counts one admission-control rejection under its reason label.
func (km *kernelMetrics) shed(reason string) {
	if c, ok := km.sheds[reason]; ok {
		c.Inc()
	}
}

// shedTotal sums rejections across all reasons.
func (km *kernelMetrics) shedTotal() uint64 {
	var n uint64
	for _, c := range km.sheds {
		n += c.Value()
	}
	return n
}

// tenantMetrics caches one tenant's metric instances, following the
// kernelMetrics pattern: built lazily, updated with single atomic
// operations on the invocation hot path.
type tenantMetrics struct {
	admitted *metrics.Counter
	inFlight *metrics.Gauge
	queued   *metrics.Gauge
	latency  *metrics.Histogram
	sheds    map[string]*metrics.Counter // by rejection reason
}

func newTenantMetrics(reg *metrics.Registry, tenant string) *tenantMetrics {
	tm := &tenantMetrics{
		admitted: reg.Counter(metricTenantAdmitted, "tenant", tenant),
		inFlight: reg.Gauge(metricTenantInFlight, "tenant", tenant),
		queued:   reg.Gauge(metricTenantQueued, "tenant", tenant),
		latency:  reg.Histogram(metricTenantLatency, "tenant", tenant),
		sheds:    make(map[string]*metrics.Counter, len(shedReasons)),
	}
	for _, reason := range shedReasons {
		tm.sheds[reason] = reg.Counter(metricTenantShed, "tenant", tenant, "reason", reason)
	}
	return tm
}

// shed counts one admission-control rejection under its reason label.
func (tm *tenantMetrics) shed(reason string) {
	if c, ok := tm.sheds[reason]; ok {
		c.Inc()
	}
}

// shedTotal sums rejections across all reasons.
func (tm *tenantMetrics) shedTotal() uint64 {
	var n uint64
	for _, c := range tm.sheds {
		n += c.Value()
	}
	return n
}

// deviceMetrics caches one device's metric instances.
type deviceMetrics struct {
	evictions  *metrics.Counter
	reaps      *metrics.Counter
	runners    *metrics.Gauge
	queueDepth *metrics.Gauge
	// breakerState exports the device's circuit-breaker state as a gauge
	// (the breaker.State numeric values); breakerTransitions counts state
	// changes by destination state.
	breakerState       *metrics.Gauge
	breakerTransitions map[breaker.State]*metrics.Counter
}

func newDeviceMetrics(reg *metrics.Registry, id string) *deviceMetrics {
	dm := &deviceMetrics{
		evictions:          reg.Counter(metricEvictions, "device", id),
		reaps:              reg.Counter(metricReaps, "device", id),
		runners:            reg.Gauge(metricRunners, "device", id),
		queueDepth:         reg.Gauge(metricDeviceQueue, "device", id),
		breakerState:       reg.Gauge(metricBreakerGauge, "device", id),
		breakerTransitions: make(map[breaker.State]*metrics.Counter, 3),
	}
	for _, st := range []breaker.State{breaker.Closed, breaker.Open, breaker.HalfOpen} {
		dm.breakerTransitions[st] = reg.Counter(metricBreakerTrans, "device", id, "to", st.String())
	}
	return dm
}

// breakerTransitionTotal sums the device's breaker transitions across all
// destination states.
func (dm *deviceMetrics) breakerTransitionTotal() uint64 {
	var n uint64
	for _, c := range dm.breakerTransitions {
		n += c.Value()
	}
	return n
}
