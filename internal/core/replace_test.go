package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/kernels"
	"kaas/internal/vclock"
)

func TestReplaceKernelSwapsImplementation(t *testing.T) {
	s, _, _ := newTestServer(t, 2, nil)
	v1 := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.Register(v1); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, _, err := s.Invoke(context.Background(), "k", nil); err != nil {
		t.Fatalf("Invoke v1: %v", err)
	}
	if st := s.Stats(); st.Runners != 1 {
		t.Fatalf("Runners = %d, want 1", st.Runners)
	}

	// Swap in a new implementation; the idle v1 runner is drained away.
	v2 := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.ReplaceKernel(v2); err != nil {
		t.Fatalf("ReplaceKernel: %v", err)
	}
	if st := s.Stats(); st.Runners != 0 {
		t.Errorf("Runners after replace = %d, want 0 (drained)", st.Runners)
	}

	_, rep, err := s.Invoke(context.Background(), "k", nil)
	if err != nil {
		t.Fatalf("Invoke v2: %v", err)
	}
	if !rep.Cold {
		t.Error("post-replacement invocation should be cold")
	}
	if v2.executions() != 1 {
		t.Errorf("v2 executions = %d, want 1", v2.executions())
	}
	if v1.executions() != 1 {
		t.Errorf("v1 executions = %d, want 1 (only the pre-replace call)", v1.executions())
	}
}

func TestReplaceKernelDrainsBusyRunnersAfterFlight(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	slow := &fakeKernel{name: "k", kind: accel.GPU,
		cost: kernels.Cost{Work: 20e9, BytesIn: 100, BytesOut: 100}} // ~20 modeled s
	if err := s.Register(slow); err != nil {
		t.Fatalf("Register: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := s.Invoke(context.Background(), "k", nil)
		done <- err
	}()
	// Wait for the runner to exist and be busy.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.Stats(); st.Runners == 1 && st.InFlight == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	v2 := &fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}
	if err := s.ReplaceKernel(v2); err != nil {
		t.Fatalf("ReplaceKernel: %v", err)
	}
	// The busy runner survives until its invocation completes.
	if err := <-done; err != nil {
		t.Fatalf("in-flight invocation failed across replacement: %v", err)
	}
	// After completion the drained runner is gone.
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().Runners == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.Runners != 0 {
		t.Errorf("Runners = %d after drain, want 0", st.Runners)
	}
}

func TestReplaceKernelValidation(t *testing.T) {
	s, _, _ := newTestServer(t, 1, nil)
	if err := s.ReplaceKernel(nil); err == nil {
		t.Error("nil kernel succeeded")
	}
	unknown := &fakeKernel{name: "ghost", kind: accel.GPU, cost: stdCost()}
	if err := s.ReplaceKernel(unknown); !errors.Is(err, ErrUnknownKernel) {
		t.Errorf("err = %v, want ErrUnknownKernel", err)
	}
	if err := s.Register(&fakeKernel{name: "k", kind: accel.GPU, cost: stdCost()}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	fpga := &fakeKernel{name: "k", kind: accel.FPGA, cost: stdCost()}
	if err := s.ReplaceKernel(fpga); !errors.Is(err, ErrNoDevice) {
		t.Errorf("err = %v, want ErrNoDevice (no FPGA on host)", err)
	}
}

func TestRetargetMovesKernelToNewKind(t *testing.T) {
	clock := vclock.Scaled(5000)
	gpu := testGPUProfile()
	cpu := accel.XeonE52698
	host, err := accel.NewHost(clock, "test", cpu, gpu)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	s, err := New(Config{Clock: clock, Host: host})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)

	mm := kernels.NewMatMul(accel.GPU)
	if err := s.Register(mm); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := s.Retarget("matmul", accel.CPU); err != nil {
		t.Fatalf("Retarget: %v", err)
	}
	_, rep, err := s.Invoke(context.Background(), "matmul",
		&kernels.Request{Params: kernels.Params{"n": 32}})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if rep.Device != "test/cpu0" {
		t.Errorf("post-retarget device = %q, want test/cpu0", rep.Device)
	}
	if err := s.Retarget("nope", accel.CPU); !errors.Is(err, ErrUnknownKernel) {
		t.Errorf("err = %v, want ErrUnknownKernel", err)
	}
}
