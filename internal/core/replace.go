package core

import (
	"fmt"

	"kaas/internal/accel"
	"kaas/internal/kernels"
)

// ReplaceKernel atomically swaps a registered kernel's implementation —
// the dynamic optimization of the paper's §6: the provider can replace a
// kernel with a better implementation (or retarget it to newer hardware)
// without reconfiguring the application. The new implementation must keep
// the same name.
//
// Existing runners of the old implementation are drained: idle ones are
// released immediately, busy ones finish their in-flight invocations and
// are released afterwards. New invocations spawn runners of the new
// implementation.
func (s *Server) ReplaceKernel(k kernels.Kernel) error {
	if k == nil {
		return fmt.Errorf("core: nil kernel")
	}
	if len(s.cfg.Host.DevicesByKind(k.Kind())) == 0 {
		return fmt.Errorf("%w: %s for kernel %q", ErrNoDevice, k.Kind(), k.Name())
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	e, ok := s.entries[k.Name()]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownKernel, k.Name())
	}
	oldKind := e.kernel.Kind()
	e.kernel = k

	// Drain: idle runners go now; busy runners are marked and reaped as
	// they release.
	var victims []*runner
	for _, r := range e.runners {
		if r.removed {
			continue
		}
		r.draining = true
		if r.inflight == 0 && runnerStarted(r) {
			victims = append(victims, r)
		}
	}
	for _, r := range victims {
		r.inflight++ // balance the decrement in removeRunnerLocked
		s.removeRunnerLocked(e, r)
	}
	needLibInit := !s.libInit[k.Kind()]
	s.libInit[k.Kind()] = true
	s.mu.Unlock()

	// A retarget to a new device kind initializes that kind's framework.
	if needLibInit && k.Kind() != oldKind {
		s.clock.Sleep(s.libraryInitCost(k.Kind()))
	}
	s.cfg.Logger.Info("kernel replaced",
		"kernel", k.Name(), "kind", k.Kind().String(), "drained", len(victims))
	return nil
}

// runnerStarted reports whether the runner's cold start has completed.
func runnerStarted(r *runner) bool {
	select {
	case <-r.ready:
		return true
	default:
		return false
	}
}

// Retarget replaces a registered kernel with the same implementation
// bound to a different device kind — a hardware upgrade without touching
// the application (§3.4, §6).
func (s *Server) Retarget(name string, kind accel.Kind) error {
	s.mu.Lock()
	e, ok := s.entries[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownKernel, name)
	}
	k := e.kernel
	s.mu.Unlock()
	return s.ReplaceKernel(kernels.Retarget(k, kind))
}
