// Package workload generates the client load patterns of the evaluation:
// closed-loop clients performing back-to-back invocations, fixed-count
// parallel batches, the ramping client population of the autoscaling
// experiment (§5.5), and open-loop trace replay (Replay) for the
// scenario harness's trace-driven workloads.
package workload

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"kaas/internal/vclock"
)

// sleepCtx waits d of modeled time, returning false immediately when ctx
// is done first. Unlike Clock.Sleep it never strands the caller past a
// cancellation, so load generators stop promptly mid-schedule.
func sleepCtx(ctx context.Context, clock vclock.Clock, d time.Duration) bool {
	if ctx.Err() != nil {
		return false
	}
	if d <= 0 {
		return true
	}
	done := make(chan struct{})
	t := clock.AfterFunc(d, func() { close(done) })
	select {
	case <-ctx.Done():
		t.Stop()
		return false
	case <-done:
		return true
	}
}

// Task performs one unit of client work (one kernel invocation end to
// end) and returns its completion time in modeled time.
type Task func(ctx context.Context, client int) (time.Duration, error)

// RunParallel launches n clients that each perform one task concurrently
// and returns all completion times. The first error aborts the run.
func RunParallel(ctx context.Context, n int, task Task) ([]time.Duration, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: invalid client count %d", n)
	}
	durations := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			durations[i], errs[i] = task(ctx, i)
		}()
	}
	wg.Wait()
	return durations, errors.Join(errs...)
}

// ClosedLoop runs n clients that each perform iterations tasks back to
// back, returning every completion time (n × iterations entries).
func ClosedLoop(ctx context.Context, n, iterations int, task Task) ([]time.Duration, error) {
	if n <= 0 || iterations <= 0 {
		return nil, fmt.Errorf("workload: invalid shape clients=%d iterations=%d", n, iterations)
	}
	all := make([][]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iterations; j++ {
				d, err := task(ctx, i)
				if err != nil {
					errs[i] = fmt.Errorf("client %d iteration %d: %w", i, j, err)
					return
				}
				all[i] = append(all[i], d)
			}
		}()
	}
	wg.Wait()
	var flat []time.Duration
	for _, ds := range all {
		flat = append(flat, ds...)
	}
	return flat, errors.Join(errs...)
}

// Completion is one finished task in a ramp run.
type Completion struct {
	// Client is the issuing client index.
	Client int
	// Start and End are modeled times relative to the ramp start.
	Start, End time.Duration
	// Duration is the task completion time.
	Duration time.Duration
}

// RampConfig describes a growing closed-loop client population.
type RampConfig struct {
	// Clock is the time source (required).
	Clock vclock.Clock
	// Interval is how often a new client joins.
	Interval time.Duration
	// MaxClients bounds the population.
	MaxClients int
	// Total is the experiment duration; at Total all clients stop.
	Total time.Duration
	// ClientThinkTime is slept between a client's tasks (response
	// handling, logging — the turnaround the paper observes).
	ClientThinkTime time.Duration
}

// Validate reports configuration problems.
func (c *RampConfig) Validate() error {
	if c.Clock == nil {
		return fmt.Errorf("workload: ramp needs a clock")
	}
	if c.Interval <= 0 || c.MaxClients <= 0 || c.Total <= 0 {
		return fmt.Errorf("workload: invalid ramp config %+v", c)
	}
	return nil
}

// Ramp starts one closed-loop client every Interval up to MaxClients and
// runs until Total has elapsed in modeled time. It returns every task
// completion. Task errors stop the failing client but not the run.
// Cancelling the context mid-ramp stops the run promptly — no further
// clients launch and the wait-out of the schedule is abandoned — and
// returns the completions recorded so far along with the context's
// error.
func Ramp(parent context.Context, cfg RampConfig, task Task) ([]Completion, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := cfg.Clock.Now()
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu          sync.Mutex
		completions []Completion
		wg          sync.WaitGroup
	)

	runClient := func(id int) {
		defer wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			tStart := cfg.Clock.Now()
			if tStart.Sub(start) >= cfg.Total {
				return
			}
			d, err := task(ctx, id)
			if err != nil {
				return // context cancelled or client failure
			}
			tEnd := cfg.Clock.Now()
			mu.Lock()
			completions = append(completions, Completion{
				Client:   id,
				Start:    tStart.Sub(start),
				End:      tEnd.Sub(start),
				Duration: d,
			})
			mu.Unlock()
			if cfg.ClientThinkTime > 0 && !sleepCtx(ctx, cfg.Clock, cfg.ClientThinkTime) {
				return
			}
		}
	}

	// Launch clients on the ramp schedule.
	for i := 0; i < cfg.MaxClients; i++ {
		elapsed := cfg.Clock.Now().Sub(start)
		if elapsed >= cfg.Total {
			break
		}
		wg.Add(1)
		go runClient(i)
		if i < cfg.MaxClients-1 && !sleepCtx(ctx, cfg.Clock, cfg.Interval) {
			break
		}
	}
	// Wait out the remainder of the experiment, then stop everyone.
	if remaining := cfg.Total - cfg.Clock.Now().Sub(start); remaining > 0 {
		sleepCtx(ctx, cfg.Clock, remaining)
	}
	cancel()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	out := make([]Completion, len(completions))
	copy(out, completions)
	return out, parent.Err()
}

// Replay fires one task per offset, each at its offset from the replay
// start in modeled time — the open-loop arrival process of a trace-driven
// workload (the trace synthesizers live in internal/scenario). Offsets
// must be non-decreasing. maxConcurrent bounds the in-flight tasks; once
// the bound is reached the replay blocks before dispatching the next
// arrival, degrading from open-loop to closed-loop under overload rather
// than spawning unboundedly (<= 0 means unbounded). Each task receives
// its offset index as the client argument. Completions are recorded for
// tasks that return nil; callers that need to observe failures classify
// them inside the task. Cancelling the context abandons undispatched
// arrivals, waits for in-flight tasks, and returns the context's error.
func Replay(ctx context.Context, clock vclock.Clock, offsets []time.Duration, maxConcurrent int, task Task) ([]Completion, error) {
	if task == nil {
		return nil, fmt.Errorf("workload: replay needs a task")
	}
	if clock == nil {
		return nil, fmt.Errorf("workload: replay needs a clock")
	}
	if !sort.SliceIsSorted(offsets, func(i, j int) bool { return offsets[i] < offsets[j] }) {
		return nil, fmt.Errorf("workload: replay offsets must be non-decreasing")
	}

	var sem chan struct{}
	if maxConcurrent > 0 {
		sem = make(chan struct{}, maxConcurrent)
	}

	var (
		mu          sync.Mutex
		completions []Completion
		wg          sync.WaitGroup
	)
	start := clock.Now()
	for i, off := range offsets {
		if wait := off - clock.Now().Sub(start); wait > 0 && !sleepCtx(ctx, clock, wait) {
			break
		}
		if ctx.Err() != nil {
			break
		}
		if sem != nil {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			tStart := clock.Now()
			d, err := task(ctx, i)
			if err != nil {
				return
			}
			tEnd := clock.Now()
			mu.Lock()
			completions = append(completions, Completion{
				Client:   i,
				Start:    tStart.Sub(start),
				End:      tEnd.Sub(start),
				Duration: d,
			})
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	out := make([]Completion, len(completions))
	copy(out, completions)
	return out, ctx.Err()
}
