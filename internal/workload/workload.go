// Package workload generates the client load patterns of the evaluation:
// closed-loop clients performing back-to-back invocations, fixed-count
// parallel batches, and the ramping client population of the autoscaling
// experiment (§5.5).
package workload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"kaas/internal/vclock"
)

// Task performs one unit of client work (one kernel invocation end to
// end) and returns its completion time in modeled time.
type Task func(ctx context.Context, client int) (time.Duration, error)

// RunParallel launches n clients that each perform one task concurrently
// and returns all completion times. The first error aborts the run.
func RunParallel(ctx context.Context, n int, task Task) ([]time.Duration, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: invalid client count %d", n)
	}
	durations := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			durations[i], errs[i] = task(ctx, i)
		}()
	}
	wg.Wait()
	return durations, errors.Join(errs...)
}

// ClosedLoop runs n clients that each perform iterations tasks back to
// back, returning every completion time (n × iterations entries).
func ClosedLoop(ctx context.Context, n, iterations int, task Task) ([]time.Duration, error) {
	if n <= 0 || iterations <= 0 {
		return nil, fmt.Errorf("workload: invalid shape clients=%d iterations=%d", n, iterations)
	}
	all := make([][]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iterations; j++ {
				d, err := task(ctx, i)
				if err != nil {
					errs[i] = fmt.Errorf("client %d iteration %d: %w", i, j, err)
					return
				}
				all[i] = append(all[i], d)
			}
		}()
	}
	wg.Wait()
	var flat []time.Duration
	for _, ds := range all {
		flat = append(flat, ds...)
	}
	return flat, errors.Join(errs...)
}

// Completion is one finished task in a ramp run.
type Completion struct {
	// Client is the issuing client index.
	Client int
	// Start and End are modeled times relative to the ramp start.
	Start, End time.Duration
	// Duration is the task completion time.
	Duration time.Duration
}

// RampConfig describes a growing closed-loop client population.
type RampConfig struct {
	// Clock is the time source (required).
	Clock vclock.Clock
	// Interval is how often a new client joins.
	Interval time.Duration
	// MaxClients bounds the population.
	MaxClients int
	// Total is the experiment duration; at Total all clients stop.
	Total time.Duration
	// ClientThinkTime is slept between a client's tasks (response
	// handling, logging — the turnaround the paper observes).
	ClientThinkTime time.Duration
}

// Validate reports configuration problems.
func (c *RampConfig) Validate() error {
	if c.Clock == nil {
		return fmt.Errorf("workload: ramp needs a clock")
	}
	if c.Interval <= 0 || c.MaxClients <= 0 || c.Total <= 0 {
		return fmt.Errorf("workload: invalid ramp config %+v", c)
	}
	return nil
}

// Ramp starts one closed-loop client every Interval up to MaxClients and
// runs until Total has elapsed in modeled time. It returns every task
// completion. Task errors stop the failing client but not the run.
func Ramp(ctx context.Context, cfg RampConfig, task Task) ([]Completion, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := cfg.Clock.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu          sync.Mutex
		completions []Completion
		wg          sync.WaitGroup
	)

	runClient := func(id int) {
		defer wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			tStart := cfg.Clock.Now()
			if tStart.Sub(start) >= cfg.Total {
				return
			}
			d, err := task(ctx, id)
			if err != nil {
				return // context cancelled or client failure
			}
			tEnd := cfg.Clock.Now()
			mu.Lock()
			completions = append(completions, Completion{
				Client:   id,
				Start:    tStart.Sub(start),
				End:      tEnd.Sub(start),
				Duration: d,
			})
			mu.Unlock()
			if cfg.ClientThinkTime > 0 {
				cfg.Clock.Sleep(cfg.ClientThinkTime)
			}
		}
	}

	// Launch clients on the ramp schedule.
	for i := 0; i < cfg.MaxClients; i++ {
		elapsed := cfg.Clock.Now().Sub(start)
		if elapsed >= cfg.Total {
			break
		}
		wg.Add(1)
		go runClient(i)
		if i < cfg.MaxClients-1 {
			cfg.Clock.Sleep(cfg.Interval)
		}
	}
	// Wait out the remainder of the experiment, then stop everyone.
	if remaining := cfg.Total - cfg.Clock.Now().Sub(start); remaining > 0 {
		cfg.Clock.Sleep(remaining)
	}
	cancel()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	out := make([]Completion, len(completions))
	copy(out, completions)
	return out, nil
}
