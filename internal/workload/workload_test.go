package workload

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"kaas/internal/vclock"
)

func TestRunParallel(t *testing.T) {
	var count atomic.Int32
	durations, err := RunParallel(context.Background(), 5,
		func(_ context.Context, client int) (time.Duration, error) {
			count.Add(1)
			return time.Duration(client) * time.Second, nil
		})
	if err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	if count.Load() != 5 || len(durations) != 5 {
		t.Errorf("count=%d durations=%d, want 5/5", count.Load(), len(durations))
	}
	if durations[3] != 3*time.Second {
		t.Errorf("durations[3] = %v", durations[3])
	}
}

func TestRunParallelValidation(t *testing.T) {
	if _, err := RunParallel(context.Background(), 0, nil); err == nil {
		t.Error("zero clients succeeded")
	}
}

func TestRunParallelPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := RunParallel(context.Background(), 3,
		func(_ context.Context, client int) (time.Duration, error) {
			if client == 1 {
				return 0, boom
			}
			return time.Second, nil
		})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestClosedLoop(t *testing.T) {
	var count atomic.Int32
	durations, err := ClosedLoop(context.Background(), 3, 4,
		func(context.Context, int) (time.Duration, error) {
			count.Add(1)
			return time.Second, nil
		})
	if err != nil {
		t.Fatalf("ClosedLoop: %v", err)
	}
	if count.Load() != 12 || len(durations) != 12 {
		t.Errorf("count=%d durations=%d, want 12/12", count.Load(), len(durations))
	}
	if _, err := ClosedLoop(context.Background(), 0, 1, nil); err == nil {
		t.Error("zero clients succeeded")
	}
}

func TestClosedLoopStopsFailingClient(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	_, err := ClosedLoop(context.Background(), 1, 10,
		func(context.Context, int) (time.Duration, error) {
			if calls.Add(1) == 3 {
				return 0, boom
			}
			return time.Second, nil
		})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3 (stop at failure)", calls.Load())
	}
}

func TestRampValidation(t *testing.T) {
	if _, err := Ramp(context.Background(), RampConfig{}, nil); err == nil {
		t.Error("empty config succeeded")
	}
	cfg := RampConfig{Clock: vclock.Scaled(1000), Interval: -1, MaxClients: 1, Total: time.Second}
	if _, err := Ramp(context.Background(), cfg, nil); err == nil {
		t.Error("negative interval succeeded")
	}
}

func TestRampGrowsPopulation(t *testing.T) {
	clock := vclock.Scaled(1000)
	cfg := RampConfig{
		Clock:      clock,
		Interval:   2 * time.Second,
		MaxClients: 5,
		Total:      12 * time.Second,
	}
	var maxClient atomic.Int32
	completions, err := Ramp(context.Background(), cfg,
		func(_ context.Context, client int) (time.Duration, error) {
			if int32(client) > maxClient.Load() {
				maxClient.Store(int32(client))
			}
			clock.Sleep(500 * time.Millisecond) // simulated task
			return 500 * time.Millisecond, nil
		})
	if err != nil {
		t.Fatalf("Ramp: %v", err)
	}
	if len(completions) == 0 {
		t.Fatal("no completions recorded")
	}
	if maxClient.Load() != 4 {
		t.Errorf("max client index = %d, want 4 (all five clients ran)", maxClient.Load())
	}
	// Early completions come from client 0 only; late ones from many.
	for _, c := range completions {
		if c.End < c.Start {
			t.Fatalf("completion ends before start: %+v", c)
		}
		if c.Start > cfg.Total {
			t.Fatalf("task started after experiment end: %+v", c)
		}
	}
}

func TestRampStopsAtTotal(t *testing.T) {
	clock := vclock.Scaled(1000)
	cfg := RampConfig{
		Clock:           clock,
		Interval:        time.Second,
		MaxClients:      2,
		Total:           5 * time.Second,
		ClientThinkTime: 100 * time.Millisecond,
	}
	start := clock.Now()
	_, err := Ramp(context.Background(), cfg,
		func(context.Context, int) (time.Duration, error) {
			clock.Sleep(300 * time.Millisecond)
			return 300 * time.Millisecond, nil
		})
	if err != nil {
		t.Fatalf("Ramp: %v", err)
	}
	elapsed := clock.Now().Sub(start)
	if elapsed < 5*time.Second {
		t.Errorf("ramp ended at %v, want >= Total", elapsed)
	}
	if elapsed > 8*time.Second {
		t.Errorf("ramp overran to %v, want ~Total", elapsed)
	}
}
