package workload

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"kaas/internal/vclock"
)

func TestRunParallel(t *testing.T) {
	var count atomic.Int32
	durations, err := RunParallel(context.Background(), 5,
		func(_ context.Context, client int) (time.Duration, error) {
			count.Add(1)
			return time.Duration(client) * time.Second, nil
		})
	if err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	if count.Load() != 5 || len(durations) != 5 {
		t.Errorf("count=%d durations=%d, want 5/5", count.Load(), len(durations))
	}
	if durations[3] != 3*time.Second {
		t.Errorf("durations[3] = %v", durations[3])
	}
}

func TestRunParallelValidation(t *testing.T) {
	if _, err := RunParallel(context.Background(), 0, nil); err == nil {
		t.Error("zero clients succeeded")
	}
}

func TestRunParallelPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := RunParallel(context.Background(), 3,
		func(_ context.Context, client int) (time.Duration, error) {
			if client == 1 {
				return 0, boom
			}
			return time.Second, nil
		})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestClosedLoop(t *testing.T) {
	var count atomic.Int32
	durations, err := ClosedLoop(context.Background(), 3, 4,
		func(context.Context, int) (time.Duration, error) {
			count.Add(1)
			return time.Second, nil
		})
	if err != nil {
		t.Fatalf("ClosedLoop: %v", err)
	}
	if count.Load() != 12 || len(durations) != 12 {
		t.Errorf("count=%d durations=%d, want 12/12", count.Load(), len(durations))
	}
	if _, err := ClosedLoop(context.Background(), 0, 1, nil); err == nil {
		t.Error("zero clients succeeded")
	}
}

func TestClosedLoopStopsFailingClient(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	_, err := ClosedLoop(context.Background(), 1, 10,
		func(context.Context, int) (time.Duration, error) {
			if calls.Add(1) == 3 {
				return 0, boom
			}
			return time.Second, nil
		})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3 (stop at failure)", calls.Load())
	}
}

func TestRampValidation(t *testing.T) {
	if _, err := Ramp(context.Background(), RampConfig{}, nil); err == nil {
		t.Error("empty config succeeded")
	}
	cfg := RampConfig{Clock: vclock.Scaled(1000), Interval: -1, MaxClients: 1, Total: time.Second}
	if _, err := Ramp(context.Background(), cfg, nil); err == nil {
		t.Error("negative interval succeeded")
	}
}

func TestRampGrowsPopulation(t *testing.T) {
	clock := vclock.Scaled(1000)
	cfg := RampConfig{
		Clock:      clock,
		Interval:   2 * time.Second,
		MaxClients: 5,
		Total:      12 * time.Second,
	}
	var maxClient atomic.Int32
	completions, err := Ramp(context.Background(), cfg,
		func(_ context.Context, client int) (time.Duration, error) {
			if int32(client) > maxClient.Load() {
				maxClient.Store(int32(client))
			}
			clock.Sleep(500 * time.Millisecond) // simulated task
			return 500 * time.Millisecond, nil
		})
	if err != nil {
		t.Fatalf("Ramp: %v", err)
	}
	if len(completions) == 0 {
		t.Fatal("no completions recorded")
	}
	if maxClient.Load() != 4 {
		t.Errorf("max client index = %d, want 4 (all five clients ran)", maxClient.Load())
	}
	// Early completions come from client 0 only; late ones from many.
	for _, c := range completions {
		if c.End < c.Start {
			t.Fatalf("completion ends before start: %+v", c)
		}
		if c.Start > cfg.Total {
			t.Fatalf("task started after experiment end: %+v", c)
		}
	}
}

func TestRampStopsAtTotal(t *testing.T) {
	clock := vclock.Scaled(1000)
	cfg := RampConfig{
		Clock:           clock,
		Interval:        time.Second,
		MaxClients:      2,
		Total:           5 * time.Second,
		ClientThinkTime: 100 * time.Millisecond,
	}
	start := clock.Now()
	_, err := Ramp(context.Background(), cfg,
		func(context.Context, int) (time.Duration, error) {
			clock.Sleep(300 * time.Millisecond)
			return 300 * time.Millisecond, nil
		})
	if err != nil {
		t.Fatalf("Ramp: %v", err)
	}
	elapsed := clock.Now().Sub(start)
	if elapsed < 5*time.Second {
		t.Errorf("ramp ended at %v, want >= Total", elapsed)
	}
	if elapsed > 8*time.Second {
		t.Errorf("ramp overran to %v, want ~Total", elapsed)
	}
}

func TestRampValidationEdgeCases(t *testing.T) {
	clock := vclock.Scaled(1000)
	cases := []struct {
		name string
		cfg  RampConfig
	}{
		{"nil clock", RampConfig{Interval: time.Second, MaxClients: 1, Total: time.Second}},
		{"zero interval", RampConfig{Clock: clock, MaxClients: 1, Total: time.Second}},
		{"zero max clients", RampConfig{Clock: clock, Interval: time.Second, Total: time.Second}},
		{"negative max clients", RampConfig{Clock: clock, Interval: time.Second, MaxClients: -3, Total: time.Second}},
		{"zero total", RampConfig{Clock: clock, Interval: time.Second, MaxClients: 1}},
		{"negative total", RampConfig{Clock: clock, Interval: time.Second, MaxClients: 1, Total: -time.Second}},
	}
	for _, tc := range cases {
		if _, err := Ramp(context.Background(), tc.cfg, nil); err == nil {
			t.Errorf("%s: Ramp accepted invalid config", tc.name)
		}
	}
}

func TestRampCtxCancelMidRamp(t *testing.T) {
	clock := vclock.Scaled(1000)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := RampConfig{
		Clock:      clock,
		Interval:   time.Second,
		MaxClients: 4,
		// An hour of modeled time: without prompt cancellation the run
		// would wait out the schedule for ~3.6 wall seconds.
		Total:           time.Hour,
		ClientThinkTime: 100 * time.Millisecond,
	}
	var calls atomic.Int32
	done := make(chan struct{})
	var (
		completions []Completion
		err         error
	)
	go func() {
		defer close(done)
		completions, err = Ramp(ctx, cfg, func(context.Context, int) (time.Duration, error) {
			if calls.Add(1) == 5 {
				cancel()
			}
			clock.Sleep(200 * time.Millisecond)
			return 200 * time.Millisecond, nil
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Ramp did not return promptly after ctx cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// Completions recorded before the cancel are preserved.
	if len(completions) == 0 {
		t.Error("no completions returned from a cancelled ramp")
	}
}

func TestRampPreCancelledContext(t *testing.T) {
	clock := vclock.Scaled(1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := RampConfig{Clock: clock, Interval: time.Second, MaxClients: 2, Total: time.Hour}
	var calls atomic.Int32
	start := time.Now()
	_, err := Ramp(ctx, cfg, func(context.Context, int) (time.Duration, error) {
		calls.Add(1)
		return time.Millisecond, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pre-cancelled ramp ran for %v wall time", elapsed)
	}
}

func TestReplayValidation(t *testing.T) {
	clock := vclock.Scaled(1000)
	noop := func(context.Context, int) (time.Duration, error) { return 0, nil }
	if _, err := Replay(context.Background(), clock, nil, 0, nil); err == nil {
		t.Error("nil task accepted")
	}
	if _, err := Replay(context.Background(), nil, nil, 0, noop); err == nil {
		t.Error("nil clock accepted")
	}
	unsorted := []time.Duration{2 * time.Second, time.Second}
	if _, err := Replay(context.Background(), clock, unsorted, 0, noop); err == nil {
		t.Error("unsorted offsets accepted")
	}
	got, err := Replay(context.Background(), clock, nil, 0, noop)
	if err != nil || len(got) != 0 {
		t.Errorf("empty replay = (%v, %v), want no completions, nil", got, err)
	}
}

func TestReplayFiresAtOffsets(t *testing.T) {
	clock := vclock.Scaled(1000)
	offsets := []time.Duration{0, 500 * time.Millisecond, time.Second, time.Second}
	completions, err := Replay(context.Background(), clock, offsets, 0,
		func(_ context.Context, i int) (time.Duration, error) {
			clock.Sleep(50 * time.Millisecond)
			return 50 * time.Millisecond, nil
		})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(completions) != len(offsets) {
		t.Fatalf("completions = %d, want %d", len(completions), len(offsets))
	}
	starts := make(map[int]time.Duration, len(completions))
	for _, c := range completions {
		starts[c.Client] = c.Start
	}
	for i, off := range offsets {
		if starts[i] < off {
			t.Errorf("task %d started at %v, before its offset %v", i, starts[i], off)
		}
		// Generous upper bound: scheduling noise, not the schedule.
		if starts[i] > off+5*time.Second {
			t.Errorf("task %d started at %v, far past its offset %v", i, starts[i], off)
		}
	}
}

func TestReplayErrorsAreNotRecorded(t *testing.T) {
	clock := vclock.Scaled(1000)
	boom := errors.New("boom")
	offsets := []time.Duration{0, 0, 0}
	completions, err := Replay(context.Background(), clock, offsets, 0,
		func(_ context.Context, i int) (time.Duration, error) {
			if i == 1 {
				return 0, boom
			}
			return time.Millisecond, nil
		})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(completions) != 2 {
		t.Errorf("completions = %d, want 2 (failed task dropped)", len(completions))
	}
}

func TestReplayBoundsConcurrency(t *testing.T) {
	clock := vclock.Scaled(1000)
	offsets := make([]time.Duration, 16) // all fire immediately
	var inFlight, peak atomic.Int32
	completions, err := Replay(context.Background(), clock, offsets, 2,
		func(context.Context, int) (time.Duration, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			clock.Sleep(100 * time.Millisecond)
			inFlight.Add(-1)
			return 100 * time.Millisecond, nil
		})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(completions) != 16 {
		t.Errorf("completions = %d, want 16", len(completions))
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeded bound 2", p)
	}
}

func TestReplayCtxCancelAbandonsSchedule(t *testing.T) {
	clock := vclock.Scaled(1000)
	ctx, cancel := context.WithCancel(context.Background())
	// Second arrival is an hour of modeled time out; cancel must not
	// wait for it.
	offsets := []time.Duration{0, time.Hour}
	var calls atomic.Int32
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Replay(ctx, clock, offsets, 0,
			func(context.Context, int) (time.Duration, error) {
				calls.Add(1)
				cancel()
				return time.Millisecond, nil
			})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Replay did not return promptly after ctx cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (second arrival abandoned)", calls.Load())
	}
}
