// Package breaker implements per-device circuit breakers for the KaaS
// control plane: cross-invocation memory of device health, so a device
// that keeps failing is excluded from placement instead of being
// rediscovered failing by every new invocation.
//
// A breaker follows the classic three-state machine:
//
//	Closed ── N consecutive failures ──▶ Open
//	Open ── open timeout elapses ──▶ HalfOpen (one probe admitted)
//	HalfOpen ── probe succeeds ──▶ Closed
//	HalfOpen ── probe fails ──▶ Open
//
// The per-invocation `Failed()` flag on a device only protects placement
// while the device is down; a flapping device (healthy at placement,
// failed by execution) passes that check every time. The breaker counts
// the resulting failures across invocations and opens after a threshold,
// and placement consults it before choosing a device.
//
// Time is measured on a vclock.Clock so breakers run in modeled time
// alongside the device simulators, and tests are deterministic at any
// clock scale. A stuck half-open probe (e.g. its invocation was cancelled
// before the device reported an outcome) self-heals: after another open
// timeout the probe slot is handed to the next caller.
package breaker

import (
	"sync"
	"time"

	"kaas/internal/vclock"
)

// State is a breaker's position in the state machine.
type State int

// Breaker states. The numeric values are stable: they are exported as
// gauge values (kaas_breaker_state) and must not be reordered.
const (
	// Closed admits all traffic (the healthy state).
	Closed State = iota
	// Open rejects all traffic until the open timeout elapses.
	Open
	// HalfOpen admits a single probe to test whether the device healed.
	HalfOpen
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "state(?)"
	}
}

// Config parameterizes a breaker Set.
type Config struct {
	// Clock is the time source (required). Breakers measure the open
	// timeout in this clock's (modeled) time.
	Clock vclock.Clock
	// Threshold is the number of consecutive failures that opens the
	// breaker. Default 3.
	Threshold int
	// OpenTimeout is how long an open breaker waits before admitting a
	// half-open probe, in modeled time. Default 5s.
	OpenTimeout time.Duration
	// OnTransition, when non-nil, is called after every state change
	// with the breaker's key and the states involved. It runs with the
	// breaker unlocked and must not call back into the Set.
	OnTransition func(key string, from, to State)
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 5 * time.Second
	}
	return c
}

// Breaker is one circuit breaker. All methods are safe for concurrent
// use.
type Breaker struct {
	key   string
	cfg   Config
	clock vclock.Clock

	mu          sync.Mutex
	state       State
	consecutive int       // failures since the last success (Closed)
	openedAt    time.Time // modeled time the breaker last opened
	probing     bool      // a half-open probe is in flight
	probeAt     time.Time // modeled time the probe was admitted
}

func newBreaker(key string, cfg Config) *Breaker {
	return &Breaker{key: key, cfg: cfg, clock: cfg.Clock}
}

// State returns the breaker's current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Eligible reports, without side effects, whether a request for this
// device could currently be admitted: the breaker is closed, or has been
// open long enough to probe, or is half-open with a free (or expired)
// probe slot. Placement uses it to filter candidate devices before
// claiming one with Allow.
func (b *Breaker) Eligible() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.eligibleLocked(b.clock.Now())
}

func (b *Breaker) eligibleLocked(now time.Time) bool {
	switch b.state {
	case Closed:
		return true
	case Open:
		return now.Sub(b.openedAt) >= b.cfg.OpenTimeout
	default: // HalfOpen
		return !b.probing || now.Sub(b.probeAt) >= b.cfg.OpenTimeout
	}
}

// Allow claims admission for one request. In the closed state it always
// succeeds. In the open state it fails until the open timeout elapses,
// then transitions to half-open and admits the caller as the probe. In
// the half-open state only the probe is admitted; a probe that never
// reports an outcome is forfeited after another open timeout so the
// breaker cannot wedge.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	now := b.clock.Now()
	switch b.state {
	case Closed:
		b.mu.Unlock()
		return true
	case Open:
		if now.Sub(b.openedAt) < b.cfg.OpenTimeout {
			b.mu.Unlock()
			return false
		}
		notify := b.transitionLocked(HalfOpen)
		b.probing = true
		b.probeAt = now
		b.mu.Unlock()
		notify()
		return true
	default: // HalfOpen
		if b.probing && now.Sub(b.probeAt) < b.cfg.OpenTimeout {
			b.mu.Unlock()
			return false
		}
		b.probing = true
		b.probeAt = now
		b.mu.Unlock()
		return true
	}
}

// RecordSuccess reports a successful operation on the device. Any
// non-closed breaker closes: a success is direct evidence the device
// works, whether it came from the half-open probe or from a straggling
// in-flight invocation.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	b.consecutive = 0
	b.probing = false
	notify := func() {}
	if b.state != Closed {
		notify = b.transitionLocked(Closed)
	}
	b.mu.Unlock()
	notify()
}

// RecordFailure reports a device-failure-class error. In the closed
// state it counts toward the threshold; in the half-open state it sends
// the breaker straight back to open; in the open state it is ignored
// (a straggler from before the breaker opened must not extend the open
// period and delay the next probe).
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	notify := func() {}
	switch b.state {
	case Closed:
		b.consecutive++
		if b.consecutive >= b.cfg.Threshold {
			notify = b.transitionLocked(Open)
			b.openedAt = b.clock.Now()
		}
	case HalfOpen:
		b.probing = false
		notify = b.transitionLocked(Open)
		b.openedAt = b.clock.Now()
	case Open:
		// ignore
	}
	b.mu.Unlock()
	notify()
}

// transitionLocked changes state and returns the notification thunk to
// run after unlocking.
func (b *Breaker) transitionLocked(to State) func() {
	from := b.state
	b.state = to
	if hook := b.cfg.OnTransition; hook != nil {
		key := b.key
		return func() { hook(key, from, to) }
	}
	return func() {}
}

// Set is a collection of breakers keyed by device ID, created on demand
// with a shared configuration.
type Set struct {
	cfg Config

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewSet creates a breaker set. The config's Clock is required.
func NewSet(cfg Config) *Set {
	return &Set{cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// For returns the breaker for key, creating it (closed) on first use.
func (s *Set) For(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = newBreaker(key, s.cfg)
		s.m[key] = b
	}
	return b
}

// Eligible reports whether key's breaker would admit a request (see
// Breaker.Eligible). A key never seen before is eligible.
func (s *Set) Eligible(key string) bool { return s.For(key).Eligible() }

// Allow claims admission for one request on key's breaker.
func (s *Set) Allow(key string) bool { return s.For(key).Allow() }

// RecordSuccess reports a successful device operation on key.
func (s *Set) RecordSuccess(key string) { s.For(key).RecordSuccess() }

// RecordFailure reports a device-failure-class error on key.
func (s *Set) RecordFailure(key string) { s.For(key).RecordFailure() }

// State returns the current state of key's breaker.
func (s *Set) State(key string) State { return s.For(key).State() }
