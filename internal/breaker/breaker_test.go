package breaker

import (
	"sync"
	"testing"
	"time"

	"kaas/internal/vclock"
)

// newTestSet builds a set on a manual clock with a small threshold.
func newTestSet(t *testing.T, hook func(key string, from, to State)) (*Set, *vclock.Manual) {
	t.Helper()
	clock := vclock.NewManual(time.Unix(0, 0))
	s := NewSet(Config{
		Clock:        clock,
		Threshold:    3,
		OpenTimeout:  10 * time.Second,
		OnTransition: hook,
	})
	return s, clock
}

func TestClosedUntilThreshold(t *testing.T) {
	s, _ := newTestSet(t, nil)
	for i := 0; i < 2; i++ {
		s.RecordFailure("d")
		if got := s.State("d"); got != Closed {
			t.Fatalf("state after %d failures = %v, want closed", i+1, got)
		}
		if !s.Allow("d") {
			t.Fatalf("Allow rejected while closed after %d failures", i+1)
		}
	}
	s.RecordFailure("d")
	if got := s.State("d"); got != Open {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if s.Allow("d") {
		t.Error("Allow admitted while open before the timeout")
	}
	if s.Eligible("d") {
		t.Error("Eligible true while open before the timeout")
	}
}

func TestSuccessResetsConsecutiveCount(t *testing.T) {
	s, _ := newTestSet(t, nil)
	s.RecordFailure("d")
	s.RecordFailure("d")
	s.RecordSuccess("d")
	s.RecordFailure("d")
	s.RecordFailure("d")
	if got := s.State("d"); got != Closed {
		t.Fatalf("state = %v, want closed (success must reset the failure streak)", got)
	}
}

func TestHalfOpenProbeAndRecovery(t *testing.T) {
	var mu sync.Mutex
	var transitions []State
	s, clock := newTestSet(t, func(_ string, _, to State) {
		mu.Lock()
		transitions = append(transitions, to)
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		s.RecordFailure("d")
	}
	if got := s.State("d"); got != Open {
		t.Fatalf("state = %v, want open", got)
	}

	// Before the timeout: rejected. After: exactly one probe admitted.
	if s.Allow("d") {
		t.Fatal("probe admitted before the open timeout")
	}
	clock.Advance(10 * time.Second)
	if !s.Eligible("d") {
		t.Fatal("not eligible after the open timeout")
	}
	if !s.Allow("d") {
		t.Fatal("probe rejected after the open timeout")
	}
	if got := s.State("d"); got != HalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if s.Allow("d") {
		t.Error("second concurrent probe admitted in half-open")
	}

	s.RecordSuccess("d")
	if got := s.State("d"); got != Closed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []State{Open, HalfOpen, Closed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i, st := range want {
		if transitions[i] != st {
			t.Fatalf("transition %d = %v, want %v", i, transitions[i], st)
		}
	}
}

func TestFailedProbeReopens(t *testing.T) {
	s, clock := newTestSet(t, nil)
	for i := 0; i < 3; i++ {
		s.RecordFailure("d")
	}
	clock.Advance(10 * time.Second)
	if !s.Allow("d") {
		t.Fatal("probe rejected")
	}
	s.RecordFailure("d")
	if got := s.State("d"); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The open window restarts from the failed probe.
	if s.Allow("d") {
		t.Error("admitted immediately after a failed probe")
	}
	clock.Advance(10 * time.Second)
	if !s.Allow("d") {
		t.Error("probe rejected after the second open timeout")
	}
}

func TestAbandonedProbeExpires(t *testing.T) {
	s, clock := newTestSet(t, nil)
	for i := 0; i < 3; i++ {
		s.RecordFailure("d")
	}
	clock.Advance(10 * time.Second)
	if !s.Allow("d") {
		t.Fatal("probe rejected")
	}
	// The probe invocation vanishes without reporting an outcome (e.g.
	// its context was cancelled). The slot must not wedge forever.
	if s.Allow("d") {
		t.Fatal("second probe admitted while the first is live")
	}
	clock.Advance(10 * time.Second)
	if !s.Allow("d") {
		t.Error("probe slot did not expire after an abandoned probe")
	}
}

func TestLateFailureWhileOpenIsIgnored(t *testing.T) {
	s, clock := newTestSet(t, nil)
	for i := 0; i < 3; i++ {
		s.RecordFailure("d")
	}
	clock.Advance(9 * time.Second)
	// A straggling in-flight invocation fails late; the open window must
	// not be extended by it.
	s.RecordFailure("d")
	clock.Advance(time.Second)
	if !s.Allow("d") {
		t.Error("late failure extended the open window")
	}
}

func TestLateSuccessWhileOpenCloses(t *testing.T) {
	s, _ := newTestSet(t, nil)
	for i := 0; i < 3; i++ {
		s.RecordFailure("d")
	}
	// A straggler succeeds on the supposedly dead device: direct
	// evidence it works again.
	s.RecordSuccess("d")
	if got := s.State("d"); got != Closed {
		t.Fatalf("state = %v, want closed after a success while open", got)
	}
}

func TestSetKeysAreIndependent(t *testing.T) {
	s, _ := newTestSet(t, nil)
	for i := 0; i < 3; i++ {
		s.RecordFailure("a")
	}
	if got := s.State("a"); got != Open {
		t.Fatalf("a = %v, want open", got)
	}
	if got := s.State("b"); got != Closed {
		t.Fatalf("b = %v, want closed", got)
	}
	if !s.Allow("b") {
		t.Error("healthy key rejected")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}
