package client

import (
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/netshape"
	"kaas/internal/shm"
	"kaas/internal/vclock"
	"kaas/internal/wire"
)

// startServer brings up a full KaaS TCP server on loopback.
func startServer(t *testing.T) (*core.TCPServer, *shm.Registry, vclock.Clock) {
	t.Helper()
	clock := vclock.Scaled(1000)
	host, err := accel.NewHost(clock, "node", accel.XeonE52698,
		accel.TeslaP100, accel.TeslaP100, accel.AlveoU250)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	srv, err := core.New(core.Config{Clock: clock, Host: host})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(srv.Close)
	regions := shm.NewRegistry(1 << 30)
	tcp, err := core.ServeTCP(srv, "127.0.0.1:0", regions)
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	t.Cleanup(func() { tcp.Close() })
	return tcp, regions, clock
}

func TestRegisterInvokeEndToEnd(t *testing.T) {
	tcp, _, _ := startServer(t)
	c := Dial(tcp.Addr())
	defer c.Close()

	if err := c.Register("matmul"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Re-registering is idempotent at the protocol level.
	if err := c.Register("matmul"); err != nil {
		t.Fatalf("re-Register: %v", err)
	}

	res, err := c.Invoke("matmul", kernels.Params{"n": 64, "seed": 2}, nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if !res.Cold {
		t.Error("first invocation not cold")
	}
	if res.Values["checksum"] <= 0 {
		t.Errorf("checksum = %v", res.Values["checksum"])
	}
	if res.ServerTime <= 0 {
		t.Error("missing server time")
	}

	res2, err := c.Invoke("matmul", kernels.Params{"n": 64, "seed": 2}, nil)
	if err != nil {
		t.Fatalf("warm Invoke: %v", err)
	}
	if res2.Cold {
		t.Error("second invocation cold")
	}
	if res2.ServerTime >= res.ServerTime {
		t.Errorf("warm (%v) not faster than cold (%v)", res2.ServerTime, res.ServerTime)
	}
	if res2.Values["checksum"] != res.Values["checksum"] {
		t.Error("same seed produced different results across invocations")
	}
}

func TestInvokeUnknownKernelReturnsRemoteError(t *testing.T) {
	tcp, _, _ := startServer(t)
	c := Dial(tcp.Addr())
	defer c.Close()
	_, err := c.Invoke("missing", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Message == "" {
		t.Error("empty remote error message")
	}
}

func TestRegisterUnknownKernel(t *testing.T) {
	tcp, _, _ := startServer(t)
	c := Dial(tcp.Addr())
	defer c.Close()
	var re *RemoteError
	if err := c.Register("not-a-kernel"); !errors.As(err, &re) {
		t.Errorf("err = %v, want RemoteError", err)
	}
}

func TestListKernels(t *testing.T) {
	tcp, _, _ := startServer(t)
	c := Dial(tcp.Addr())
	defer c.Close()
	if err := c.Register("matmul"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Register("histogram"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	names, err := c.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	found := make(map[string]bool, len(names))
	for _, n := range names {
		found[n] = true
	}
	if !found["matmul"] || !found["histogram"] {
		t.Errorf("List = %v", names)
	}
}

func TestStats(t *testing.T) {
	tcp, _, _ := startServer(t)
	c := Dial(tcp.Addr())
	defer c.Close()
	if err := c.Register("matmul"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := c.Invoke("matmul", kernels.Params{"n": 32}, nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	var st core.Stats
	if err := c.Stats(&st); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Kernels != 1 || st.ColdStarts != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestInBandPayloadRoundTrip(t *testing.T) {
	tcp, _, _ := startServer(t)
	c := Dial(tcp.Addr())
	defer c.Close()
	if err := c.Register("bitmap"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	white := make([]float64, 32*32*3)
	for i := range white {
		white[i] = 1
	}
	res, err := c.Invoke("bitmap",
		kernels.Params{"height": 32, "width": 32, "factor": 2},
		kernels.Float64sToBytes(white))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if math.Abs(res.Values["mean_luma"]-1) > 1e-9 {
		t.Errorf("mean_luma = %v, want 1 (white input)", res.Values["mean_luma"])
	}
	pix, err := kernels.BytesToFloat64s(res.Data)
	if err != nil {
		t.Fatalf("decode result payload: %v", err)
	}
	if len(pix) != 16*16 {
		t.Errorf("result pixels = %d, want 256", len(pix))
	}
}

func TestOutOfBandInvocation(t *testing.T) {
	tcp, regions, _ := startServer(t)
	c := Dial(tcp.Addr(), WithShm(regions))
	defer c.Close()
	if err := c.Register("bitmap"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	white := make([]float64, 32*32*3)
	for i := range white {
		white[i] = 1
	}
	res, err := c.InvokeOutOfBand("bitmap",
		kernels.Params{"height": 32, "width": 32, "factor": 2},
		kernels.Float64sToBytes(white))
	if err != nil {
		t.Fatalf("InvokeOutOfBand: %v", err)
	}
	if math.Abs(res.Values["mean_luma"]-1) > 1e-9 {
		t.Errorf("mean_luma = %v, want 1", res.Values["mean_luma"])
	}
	if len(res.Data) == 0 {
		t.Error("no out-of-band result payload")
	}
	// All temporary regions cleaned up.
	if n := regions.Len(); n != 0 {
		t.Errorf("leaked %d shm regions", n)
	}
}

func TestOutOfBandWithoutShmFails(t *testing.T) {
	tcp, _, _ := startServer(t)
	c := Dial(tcp.Addr())
	defer c.Close()
	if _, err := c.InvokeOutOfBand("bitmap", nil, []byte{1}); err == nil {
		t.Error("InvokeOutOfBand without WithShm succeeded")
	}
}

func TestConcurrentInvocations(t *testing.T) {
	tcp, _, _ := startServer(t)
	c := Dial(tcp.Addr())
	defer c.Close()
	if err := c.Register("mci"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.Invoke("mci", kernels.Params{"n": 10000, "seed": float64(i)}, nil)
			if err != nil {
				t.Errorf("Invoke %d: %v", i, err)
				return
			}
			if math.Abs(res.Values["estimate"]-math.Log(10)) > 0.2 {
				t.Errorf("estimate %d = %v", i, res.Values["estimate"])
			}
		}()
	}
	wg.Wait()
}

func TestShapedLinkAddsModeledDelay(t *testing.T) {
	tcp, _, clock := startServer(t)
	link := netshape.GigabitEthernet(clock)
	c := Dial(tcp.Addr(), WithLink(link))
	defer c.Close()
	if err := c.Register("mci"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Send a 1 MB payload through the shaped link: ~8 ms modeled at
	// 1 Gbps each way for the request.
	payload := make([]byte, 1<<20)
	start := clock.Now()
	if _, err := c.Invoke("mci", kernels.Params{"n": 1000}, payload); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	elapsed := clock.Now().Sub(start)
	if elapsed < 8*time.Millisecond {
		t.Errorf("shaped invoke took %v modeled, want >= 8ms of transfer", elapsed)
	}
}

func TestClientClose(t *testing.T) {
	tcp, _, _ := startServer(t)
	c := Dial(tcp.Addr())
	c.Close()
	if _, err := c.Invoke("matmul", nil, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestServerRejectsGarbageProtocol(t *testing.T) {
	tcp, _, _ := startServer(t)
	conn, err := net.Dial("tcp", tcp.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n___padding___")); err != nil {
		t.Fatalf("write: %v", err)
	}
	msg, err := wire.Read(conn)
	if err != nil {
		t.Fatalf("read error reply: %v", err)
	}
	if msg.Type != wire.MsgError {
		t.Errorf("reply type = %v, want MsgError", msg.Type)
	}
}

func TestServerCloseTerminatesConnections(t *testing.T) {
	tcp, _, _ := startServer(t)
	c := Dial(tcp.Addr())
	defer c.Close()
	if err := c.Register("matmul"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := tcp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tcp.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := c.Invoke("matmul", kernels.Params{"n": 32}, nil); err == nil {
		t.Error("invoke after server close succeeded")
	}
}
