package client

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"syscall"
	"time"

	"kaas/internal/wire"
)

// RetryPolicy bounds how a Client retries connection-level failures:
// exponential backoff with deterministic jitter and a hard attempt
// budget. Remote errors (the server executed the request and reported a
// failure) are never retried; only dial errors, resets, EOFs, and
// corrupted streams are, because those mean the request may never have
// reached a healthy server.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first.
	// Values <= 1 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 5 ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 500 ms).
	MaxDelay time.Duration
	// Multiplier grows the delay each retry (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1] (default 0.2). Jitter draws from a PRNG seeded with Seed,
	// so retry schedules are reproducible.
	Jitter float64
	// Seed seeds the jitter PRNG (default 1).
	Seed int64
}

// DefaultRetryPolicy returns the policy used by WithRetries: three total
// attempts, 5 ms base delay doubling to a 500 ms cap, 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		Seed:        1,
	}
}

// withDefaults fills zero fields with the default values.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// delay returns the backoff before retry number retry (1-based), with
// jitter drawn from rng.
func (p RetryPolicy) delay(retry int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		// Spread the delay across [1-j, 1+j] of its nominal value.
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// connError marks a transport-level failure: the request may never have
// reached a healthy server, so the call is safe to retry under the
// client's policy. Remote errors are deliberately never wrapped in it.
type connError struct {
	err error
}

// Error implements error.
func (e *connError) Error() string { return e.err.Error() }

// Unwrap exposes the underlying failure.
func (e *connError) Unwrap() error { return e.err }

// isConnError reports whether err is a retryable connection-level
// failure.
func isConnError(err error) bool {
	var ce *connError
	return errors.As(err, &ce)
}

// IsConnFailure reports whether err (from any Client call) is a
// connection-level failure — the request may never have reached a
// healthy server, but equally may have executed before the connection
// died. Cluster routing uses this ambiguity to decide whether
// re-dispatching to a peer is safe: only idempotent work may be
// re-dispatched after a connection failure.
func IsConnFailure(err error) bool { return isConnError(err) }

// asConnError classifies a raw transport failure, wrapping it so the
// retry loop can recognize it. Errors that prove the server processed the
// request (RemoteError) or that retrying cannot fix (ErrClosed, context
// expiry) pass through unwrapped.
func asConnError(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrClosed) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return err
	}
	if transportFailure(err) {
		return &connError{err: err}
	}
	return err
}

// transportFailure reports whether err is a connection-level failure:
// a dial error, a peer reset/EOF, or a desynchronized (corrupted) wire
// stream.
func transportFailure(err error) bool {
	if errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	// A frame that fails to decode means the stream is desynchronized —
	// the connection is useless, equivalent to a reset.
	if errors.Is(err, wire.ErrBadMagic) || errors.Is(err, wire.ErrBadVersion) {
		return true
	}
	var op *net.OpError
	return errors.As(err, &op)
}
