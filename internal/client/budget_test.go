package client

import (
	"context"
	"net"
	"testing"
	"time"
)

func TestRetryBudgetBucketMath(t *testing.T) {
	b := NewRetryBudget(3, 0.5)
	for i := 0; i < 3; i++ {
		if !b.Spend() {
			t.Fatalf("Spend %d on a full bucket failed", i)
		}
	}
	if b.Spend() {
		t.Fatal("Spend on an empty bucket succeeded")
	}
	if b.Tokens() != 0 {
		t.Fatalf("Tokens = %v after draining, want 0", b.Tokens())
	}
	if b.Spent() != 3 || b.Exhausted() != 1 {
		t.Fatalf("Spent/Exhausted = %d/%d, want 3/1", b.Spent(), b.Exhausted())
	}

	// Two successes credit one whole token back — exactly one retry.
	b.Credit()
	if b.Spend() {
		t.Fatal("Spend succeeded on a fractional token")
	}
	b.Credit()
	if !b.Spend() {
		t.Fatal("Spend failed after two credits refilled one token")
	}

	// Credits never overflow the capacity.
	for i := 0; i < 100; i++ {
		b.Credit()
	}
	if b.Tokens() != 3 {
		t.Fatalf("Tokens = %v after overcredit, want capacity 3", b.Tokens())
	}
}

func TestRetryBudgetDefaults(t *testing.T) {
	b := NewRetryBudget(0, 0)
	if b.Tokens() != DefaultRetryBudgetCapacity {
		t.Fatalf("default capacity = %v, want %v", b.Tokens(), float64(DefaultRetryBudgetCapacity))
	}
	b.Spend()
	b.Credit()
	want := DefaultRetryBudgetCapacity - 1 + DefaultRetryBudgetRatio
	if got := b.Tokens(); got != want {
		t.Fatalf("tokens after one spend and one credit = %v, want %v", got, want)
	}
}

// deadAddr returns an address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestClientRetryBudgetBoundsAttempts: against a dead server, the shared
// budget cuts the retry ladder short of the per-invocation policy and
// records the exhaustion in the client metrics.
func TestClientRetryBudgetBoundsAttempts(t *testing.T) {
	addr := deadAddr(t)
	budget := NewRetryBudget(2, 0.1)
	c := Dial(addr,
		WithRetryPolicy(RetryPolicy{MaxAttempts: 6, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}),
		WithRetryBudget(budget),
	)
	defer c.Close()

	if _, err := c.InvokeContext(context.Background(), "mci", nil, nil); err == nil {
		t.Fatal("invoke against a dead address succeeded")
	}
	m := c.Metrics()
	// The first attempt is free; the budget pays for 2 of the policy's 5
	// retries; the 3rd is skipped.
	if m.Retries != 2 {
		t.Errorf("Retries = %d, want 2 budgeted retries", m.Retries)
	}
	if m.BudgetExhausted != 1 {
		t.Errorf("BudgetExhausted = %d, want 1", m.BudgetExhausted)
	}
	if budget.Spent() != 2 || budget.Exhausted() != 1 {
		t.Errorf("budget Spent/Exhausted = %d/%d, want 2/1", budget.Spent(), budget.Exhausted())
	}

	// A second invocation finds the bucket already empty: its first
	// attempt fails and no retries follow.
	if _, err := c.InvokeContext(context.Background(), "mci", nil, nil); err == nil {
		t.Fatal("invoke against a dead address succeeded")
	}
	if got := c.Metrics().Retries; got != 2 {
		t.Errorf("retries after invoking with an empty budget = %d, want still 2", got)
	}
}

// TestClientRetryBudgetSharedAcrossClients: two clients sharing one
// budget drain it together — the point of the bucket is bounding the
// aggregate storm, not per-client counts.
func TestClientRetryBudgetSharedAcrossClients(t *testing.T) {
	addr := deadAddr(t)
	budget := NewRetryBudget(3, 0.1)
	policy := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	c1 := Dial(addr, WithRetryPolicy(policy), WithRetryBudget(budget))
	defer c1.Close()
	c2 := Dial(addr, WithRetryPolicy(policy), WithRetryBudget(budget))
	defer c2.Close()

	c1.InvokeContext(context.Background(), "mci", nil, nil)
	c2.InvokeContext(context.Background(), "mci", nil, nil)
	// Three budgeted retries total, however they were split between the
	// clients (first attempts are free).
	if total := c1.Metrics().Retries + c2.Metrics().Retries; total != 3 {
		t.Errorf("total retries = %d, want the 3 the budget covers", total)
	}
	if budget.Exhausted() == 0 {
		t.Error("budget exhaustion not recorded")
	}
}
