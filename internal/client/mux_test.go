package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"kaas/internal/kernels"
	"kaas/internal/wire"
)

// TestMuxConcurrentInvocations drives many concurrent invocations
// through a two-connection mux pool: every call must succeed, the
// client must stay on the multiplexed protocol, and the server must see
// only the shared connections (not one per request).
func TestMuxConcurrentInvocations(t *testing.T) {
	_, ln := startFaultyServer(t, nil)
	c := Dial(ln.Addr().String(), WithMux(2))
	defer c.Close()

	if err := c.Register("matmul"); err != nil {
		t.Fatalf("Register: %v", err)
	}

	const workers = 24
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			res, err := c.Invoke("matmul", kernels.Params{"n": 32, "seed": seed}, nil)
			if err != nil {
				errs <- err
				return
			}
			if res.Values["checksum"] <= 0 {
				errs <- errors.New("zero checksum")
			}
		}(float64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent invoke: %v", err)
	}

	if c.muxFallback.Load() {
		t.Error("client fell back to the legacy protocol against a mux-capable server")
	}
	if n := ln.Accepted(); n > 2 {
		t.Errorf("server accepted %d connections, want at most the 2 shared ones", n)
	}
}

// TestMuxCancelLeavesSiblingStreams cancels one in-flight stream on a
// single shared connection: the CANCEL frame must stop the server-side
// kernel, while sibling streams on the same connection keep working and
// the connection itself stays healthy.
func TestMuxCancelLeavesSiblingStreams(t *testing.T) {
	srv, ln := startFaultyServer(t, nil)
	if err := srv.Register(slowKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := Dial(ln.Addr().String(), WithMux(1))
	defer c.Close()
	if err := c.Register("matmul"); err != nil {
		t.Fatalf("Register: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	slowErr := make(chan error, 1)
	go func() {
		_, err := c.InvokeContext(ctx, "slow", nil, nil)
		slowErr <- err
	}()
	waitUntil(t, 5*time.Second, func() bool { return srv.Stats().InFlight >= 1 }, "slow invocation in flight")

	// A sibling stream on the same connection completes while the slow
	// stream occupies it.
	if _, err := c.Invoke("matmul", kernels.Params{"n": 32, "seed": 1}, nil); err != nil {
		t.Fatalf("sibling Invoke while slow stream in flight: %v", err)
	}

	cancel()
	if err := <-slowErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled invoke err = %v, want context.Canceled", err)
	}
	// The CANCEL frame must reach the server and stop the kernel well
	// before the ~5 s it would otherwise burn.
	waitUntil(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 0 }, "server-side cancellation")

	// The shared connection survived the per-stream cancel.
	if _, err := c.Invoke("matmul", kernels.Params{"n": 32, "seed": 2}, nil); err != nil {
		t.Fatalf("Invoke after cancel: %v", err)
	}
	if n := ln.Accepted(); n != 1 {
		t.Errorf("server accepted %d connections, want exactly the 1 shared one", n)
	}
}

// TestMuxOutOfOrderReplies checks the demultiplexer routes replies by
// StreamID, not arrival order: a scripted server answers the second
// request first.
func TestMuxOutOfOrderReplies(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer raw.Close()

	serverErr := make(chan error, 1)
	go func() {
		serverErr <- func() error {
			conn, err := raw.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			hello, err := wire.Read(conn)
			if err != nil || hello.Type != wire.MsgHello {
				return errors.New("expected hello")
			}
			if err := wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgHelloAck, Header: wire.Header{
				MuxVersion: wire.VersionMux, MaxStreams: 4,
			}}); err != nil {
				return err
			}
			// Collect both invokes before answering, then reply in
			// reverse order, echoing each request's "x" param so the
			// client can detect a misrouted reply.
			var reqs []*wire.Message
			for len(reqs) < 2 {
				msg, err := wire.Read(conn)
				if err != nil {
					return err
				}
				if msg.Type == wire.MsgInvoke {
					reqs = append(reqs, msg)
				}
			}
			for i := len(reqs) - 1; i >= 0; i-- {
				req := reqs[i]
				err := wire.Write(conn, &wire.Message{Version: wire.VersionMux, Type: wire.MsgResult, Header: wire.Header{
					Kernel:   req.Header.Kernel,
					Values:   map[string]float64{"x": req.Header.Params["x"]},
					StreamID: req.Header.StreamID,
				}})
				if err != nil {
					return err
				}
			}
			// Hold the connection open until the client is done.
			wire.Read(conn)
			return nil
		}()
	}()

	c := Dial(raw.Addr().String(), WithMux(1))
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, x := range []float64{1, 2} {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			res, err := c.Invoke("echo", kernels.Params{"x": x}, nil)
			if err != nil {
				errs <- err
				return
			}
			if res.Values["x"] != x {
				errs <- errors.New("reply routed to the wrong stream")
			}
		}(x)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("out-of-order invoke: %v", err)
	}
	c.Close()
	if err := <-serverErr; err != nil {
		t.Errorf("scripted server: %v", err)
	}
}

// TestMuxFallbackToLegacyServer points a mux-enabled client at a server
// that predates multiplexing (it rejects the hello with an error): the
// client must fall back to the one-request-per-connection protocol and
// still complete calls.
func TestMuxFallbackToLegacyServer(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer raw.Close()

	// A minimal legacy server: hellos are unknown frames, invokes echo.
	go func() {
		for {
			conn, err := raw.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					msg, err := wire.Read(conn)
					if err != nil {
						return
					}
					var reply *wire.Message
					switch msg.Type {
					case wire.MsgHello:
						reply = &wire.Message{Type: wire.MsgError, Header: wire.Header{
							Error: "unexpected message type hello",
						}}
					case wire.MsgInvoke:
						reply = &wire.Message{Type: wire.MsgResult, Header: wire.Header{
							Kernel: msg.Header.Kernel,
							Values: map[string]float64{"x": msg.Header.Params["x"]},
						}}
					default:
						reply = &wire.Message{Type: wire.MsgError, Header: wire.Header{Error: "unsupported"}}
					}
					if err := wire.Write(conn, reply); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	c := Dial(raw.Addr().String(), WithMux(2))
	defer c.Close()

	res, err := c.Invoke("echo", kernels.Params{"x": 7}, nil)
	if err != nil {
		t.Fatalf("Invoke via fallback: %v", err)
	}
	if res.Values["x"] != 7 {
		t.Errorf("x = %v, want 7", res.Values["x"])
	}
	if !c.muxFallback.Load() {
		t.Error("client did not record the legacy fallback")
	}

	// Subsequent calls skip the handshake entirely and keep working.
	if _, err := c.Invoke("echo", kernels.Params{"x": 8}, nil); err != nil {
		t.Fatalf("second Invoke via fallback: %v", err)
	}
}
