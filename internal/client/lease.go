package client

import (
	"context"
	"sync"

	"kaas/internal/shm"
	"kaas/internal/wire"
)

// clientLease is one granted arena window held by a mux connection. The
// client keeps its own Retain pin on the lease from grant until discard,
// so a server-side revocation cannot recycle the slab while a result the
// client has not read yet sits in the window.
type clientLease struct {
	l      *shm.Lease
	doomed bool // revoked while checked out; discarded on checkin
}

// leasePool is a mux connection's cache of granted arena leases. Leases
// are connection-scoped and reused across invocations: after the one
// negotiation round trip, every payload moves by handle with no
// per-invocation allocation. denied flips permanently when the server
// reports it has no arena configured.
type leasePool struct {
	mu     sync.Mutex
	denied bool
	free   []*clientLease
	inuse  map[uint64]*clientLease
}

func newLeasePool() *leasePool {
	return &leasePool{inuse: make(map[uint64]*clientLease)}
}

// checkout takes a free lease with at least need bytes of window, or nil
// when none fits (the caller negotiates a fresh one).
func (p *leasePool) checkout(need int64) *clientLease {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, cl := range p.free {
		if cl.l.Cap() >= need {
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.inuse[cl.l.ID()] = cl
			return cl
		}
	}
	return nil
}

// use records a freshly negotiated lease as checked out.
func (p *leasePool) use(cl *clientLease) {
	p.mu.Lock()
	p.inuse[cl.l.ID()] = cl
	p.mu.Unlock()
}

// checkin returns a lease to the free list — unless it was revoked while
// in use, in which case its pin is dropped and the slab goes back to the
// arena.
func (p *leasePool) checkin(cl *clientLease) {
	p.mu.Lock()
	delete(p.inuse, cl.l.ID())
	if cl.doomed {
		p.mu.Unlock()
		cl.l.Release()
		return
	}
	p.free = append(p.free, cl)
	p.mu.Unlock()
}

// discard drops a lease for good (stale-lease error from the server).
func (p *leasePool) discard(cl *clientLease) {
	p.mu.Lock()
	delete(p.inuse, cl.l.ID())
	cl.doomed = true
	p.mu.Unlock()
	cl.l.Release()
}

// revoked handles a MsgLeaseRevoke notice: a free lease is dropped
// immediately; a checked-out lease is marked so checkin drops it.
func (p *leasePool) revoked(id uint64) {
	p.mu.Lock()
	for i, cl := range p.free {
		if cl.l.ID() == id {
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.mu.Unlock()
			cl.l.Release()
			return
		}
	}
	if cl := p.inuse[id]; cl != nil {
		cl.doomed = true
	}
	p.mu.Unlock()
}

// deny permanently disables the lease path for this connection.
func (p *leasePool) deny() {
	p.mu.Lock()
	p.denied = true
	p.mu.Unlock()
}

// isDenied reports whether the server refused lease support outright.
func (p *leasePool) isDenied() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.denied
}

// releaseAll drops every pin when the connection dies. Checked-out
// leases are marked doomed; their in-flight user's checkin releases them.
func (p *leasePool) releaseAll() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	for _, cl := range p.inuse {
		cl.doomed = true
	}
	p.mu.Unlock()
	for _, cl := range free {
		cl.l.Release()
	}
}

// invokeLeased attempts the zero-copy out-of-band path for one invoke:
// check out (or negotiate) a lease, copy the payload into the shared
// window, and send only the handle. used=false means the caller should
// fall back to the plain in-band round trip — the server has no arena,
// the budget was full, or the lease was revoked mid-flight; never an
// error the caller sees.
func (m *muxConn) invokeLeased(ctx context.Context, msg *wire.Message) (reply *wire.Message, used bool, err error) {
	need := int64(len(msg.Body))
	cl := m.leases.checkout(need)
	if cl == nil {
		cl = m.negotiateLease(ctx, need)
		if cl == nil {
			return nil, false, nil
		}
	}

	n := copy(cl.l.Bytes(), msg.Body)
	lm := *msg
	lm.Body = nil
	lm.Header.LeaseID = cl.l.ID()
	lm.Header.LeaseLen = int64(n)

	reply, err = m.roundTrip(ctx, &lm)
	if err != nil {
		m.leases.checkin(cl)
		return nil, true, err
	}
	if reply.Type == wire.MsgError && reply.Header.Code == wire.CodeLeaseRevoked {
		// The server withdrew the lease (drain, breaker-open) between our
		// checkout and its read: drop it and resend in-band, invisibly to
		// the caller.
		m.leases.discard(cl)
		return nil, false, nil
	}
	if rl := reply.Header.LeaseResultLen; rl > 0 && reply.Header.LeaseID == cl.l.ID() && rl <= cl.l.Cap() {
		// The result came back through the same window; copy it out
		// before the lease returns to the pool and the window is reused.
		data := make([]byte, rl)
		copy(data, cl.l.Bytes()[:rl])
		reply.Body = data
		reply.Header.LeaseResultLen = 0
	}
	m.leases.checkin(cl)
	return reply, true, nil
}

// negotiateLease asks the server for a fresh arena lease, returning nil
// on any denial (the invoke falls back to in-band transfer). A
// "not configured" denial — or a server old enough to answer MsgLease
// with an unexpected-type error — disables the lease path for this
// connection permanently.
func (m *muxConn) negotiateLease(ctx context.Context, need int64) *clientLease {
	if m.leases.isDenied() {
		return nil
	}
	ack, err := m.roundTrip(ctx, &wire.Message{Type: wire.MsgLease, Header: wire.Header{LeaseBytes: need}})
	if err != nil {
		return nil
	}
	if ack.Type != wire.MsgLeaseAck || ack.Header.LeaseID == 0 {
		if ack.Type == wire.MsgError ||
			(ack.Type == wire.MsgLeaseAck && ack.Header.Code == wire.CodeInternal) {
			m.leases.deny()
		}
		return nil
	}
	l, ok := m.c.arena.Get(ack.Header.LeaseID)
	if !ok {
		return nil // revoked before the ack arrived
	}
	if l.Retain() != nil {
		return nil
	}
	cl := &clientLease{l: l}
	m.leases.use(cl)
	return cl
}
