// Package client implements the KaaS client API (§4.1): TCP-based kernel
// registration and invocation with in-band (serialized) or out-of-band
// (shared-memory) data transfer, plus optional network shaping so
// loopback deployments can be measured as if remote.
//
// The client is built for a long-lived shared service: every call has a
// context-aware variant that propagates deadlines onto socket read/write
// deadlines and into the wire header (so the server can reject expired
// work and cancel in-flight kernels), and connection-level failures can
// be retried under a bounded RetryPolicy with exponential backoff and
// deterministic jitter. Server-reported failures (RemoteError) carry the
// wire protocol's machine-readable code: transient ones (OVERLOADED,
// UNAVAILABLE — the request was shed before executing) are retried with
// backoff like connection failures; all others fail fast. Retry activity
// is observable through Metrics.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kaas/internal/kernels"
	"kaas/internal/netshape"
	"kaas/internal/shm"
	"kaas/internal/wire"
)

// ErrClosed indicates use of a closed client.
var ErrClosed = errors.New("client: closed")

// RemoteError is a failure reported by the server.
type RemoteError struct {
	// Message is the server's error text.
	Message string
	// Code is the machine-readable failure class (a wire.Code* constant).
	// Servers predating structured errors send none; it defaults to
	// wire.CodeInternal.
	Code string
	// Retryable reports whether the server shed the request before
	// executing it, so retrying after backoff is safe and may succeed.
	Retryable bool
}

// Error implements error.
func (e *RemoteError) Error() string {
	if e.Code != "" && e.Code != wire.CodeInternal {
		return "client: server error (" + e.Code + "): " + e.Message
	}
	return "client: server error: " + e.Message
}

// Option configures a Client.
type Option func(*Client)

// WithLink shapes all traffic through the given network link.
func WithLink(l *netshape.Link) Option {
	return func(c *Client) { c.link = l }
}

// WithShm enables out-of-band transfer through a shared-memory registry.
// The registry must be the same instance the server uses (same host).
func WithShm(r *shm.Registry) Option {
	return func(c *Client) { c.regions = r }
}

// WithArena enables the zero-copy out-of-band data plane on the
// multiplexed transport: the client negotiates leases over windows of
// the server's pooled tensor arena and moves invocation payloads by
// handle — the bytes never ride the wire and the serving path reads the
// shared window in place. The pool must be the same instance the server
// serves (same host). Requires WithMux; connections whose server lacks
// arena support, and leases revoked mid-flight (drain, breaker-open),
// fall back to in-band transfer transparently.
func WithArena(p *shm.ArenaPool) Option {
	return func(c *Client) { c.arena = p }
}

// WithTimeout sets a default per-call deadline applied whenever the
// caller's context has none. Zero (the default) means calls without a
// context deadline wait forever.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithRetryPolicy enables bounded retries of connection-level failures.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// WithRetries enables the default retry policy with the given total
// attempt budget (including the first attempt).
func WithRetries(attempts int) Option {
	p := DefaultRetryPolicy()
	p.MaxAttempts = attempts
	return WithRetryPolicy(p)
}

// WithMux switches the client to the multiplexed transport: all
// in-flight requests share a small fixed set of conns connections
// (rather than one pooled connection per request), interleaved by
// StreamID under protocol version 2. Cancelling one call sends a
// per-stream CANCEL frame instead of tearing down the shared socket.
// Servers that predate multiplexing negotiate the client back to the
// legacy pooled transport transparently. conns values below 1 mean 1.
func WithMux(conns int) Option {
	return func(c *Client) {
		if conns < 1 {
			conns = 1
		}
		c.muxConns = conns
	}
}

// WithRetryBudget attaches a cross-invocation retry budget: retries are
// only attempted while the shared token bucket has tokens, so a dead
// server cannot trigger a synchronized retry storm from every caller.
// The same budget may be shared by many clients.
func WithRetryBudget(b *RetryBudget) Option {
	return func(c *Client) { c.budget = b }
}

// WithTenant stamps every invocation from this client with a tenant
// identity for server-side fair queueing. Servers that predate tenant
// accounting ignore the header; unidentified clients are accounted to
// the server's "default" tenant.
func WithTenant(tenant string) Option {
	return func(c *Client) { c.tenant = tenant }
}

// Metrics is a snapshot of the client's reliability counters.
type Metrics struct {
	// Attempts counts round-trip attempts, including retries.
	Attempts uint64
	// Retries counts policy-driven retry attempts.
	Retries uint64
	// StaleConns counts pooled connections found dead and replaced
	// transparently.
	StaleConns uint64
	// ConnErrors counts connection-level failures observed.
	ConnErrors uint64
	// RemoteErrors counts server-reported (never retried) failures.
	RemoteErrors uint64
	// BudgetExhausted counts retries this client skipped because the
	// shared retry budget was empty (zero without WithRetryBudget).
	BudgetExhausted uint64
}

// clientMetrics is the atomic backing store for Metrics.
type clientMetrics struct {
	attempts        atomic.Uint64
	retries         atomic.Uint64
	staleConns      atomic.Uint64
	connErrors      atomic.Uint64
	remoteErrors    atomic.Uint64
	budgetExhausted atomic.Uint64
}

// Client talks to a KaaS server. It is safe for concurrent use: by
// default each in-flight request uses its own pooled connection; with
// WithMux all requests share a small fixed set of multiplexed
// connections.
type Client struct {
	addr     string
	link     *netshape.Link
	regions  *shm.Registry
	arena    *shm.ArenaPool
	timeout  time.Duration
	retry    RetryPolicy
	budget   *RetryBudget
	muxConns int
	tenant   string

	mux         *muxPool
	muxFallback atomic.Bool

	metrics clientMetrics

	rngMu sync.Mutex
	rng   *rand.Rand

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// Dial creates a client for the server at addr. Connections are opened
// lazily.
func Dial(addr string, opts ...Option) *Client {
	c := &Client{addr: addr, retry: RetryPolicy{MaxAttempts: 1}.withDefaults()}
	for _, o := range opts {
		o(c)
	}
	c.rng = rand.New(rand.NewSource(c.retry.Seed))
	if c.muxConns > 0 {
		c.mux = newMuxPool(c, c.muxConns)
	}
	return c
}

// Metrics returns a snapshot of the client's reliability counters.
func (c *Client) Metrics() Metrics {
	return Metrics{
		Attempts:        c.metrics.attempts.Load(),
		Retries:         c.metrics.retries.Load(),
		StaleConns:      c.metrics.staleConns.Load(),
		ConnErrors:      c.metrics.connErrors.Load(),
		RemoteErrors:    c.metrics.remoteErrors.Load(),
		BudgetExhausted: c.metrics.budgetExhausted.Load(),
	}
}

// Close closes all pooled and multiplexed connections.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	c.mu.Unlock()
	if c.mux != nil {
		c.mux.close()
	}
}

// getConn returns a pooled or fresh connection, reporting whether it came
// from the pool (pooled connections may be stale and get one transparent
// replacement on failure).
func (c *Client) getConn(ctx context.Context) (conn net.Conn, pooled bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, true, nil
	}
	c.mu.Unlock()
	conn, err = c.dial(ctx)
	return conn, false, err
}

// dial opens a fresh connection, honoring the context deadline.
func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, asConnError(fmt.Errorf("client: dial %s: %w", c.addr, err))
	}
	return conn, nil
}

// putConn returns a healthy connection to the pool.
func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

// roundTrip sends one message and reads one reply under the client's
// retry policy, propagating the context deadline to the socket and the
// wire header.
func (c *Client) roundTrip(ctx context.Context, msg *wire.Message) (*wire.Message, error) {
	if c.timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.timeout)
			defer cancel()
		}
	}
	// An already-expired context returns promptly without any network
	// traffic — the kernel is never executed.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		msg.Header.DeadlineNanos = deadline.UnixNano()
	}

	var lastErr error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			if c.budget != nil && !c.budget.Spend() {
				// The shared budget is empty: every caller is already
				// retrying, and one more synchronized retry only deepens
				// the storm. Fail with the last real error.
				c.metrics.budgetExhausted.Add(1)
				break
			}
			if !c.backoff(ctx, attempt) {
				// The remaining deadline cannot cover the backoff (or the
				// context was cancelled outright): give the caller the
				// last real failure now instead of sleeping into a
				// guaranteed context error.
				break
			}
			c.metrics.retries.Add(1)
		}
		reply, err := c.attempt(ctx, msg)
		if err == nil {
			if c.budget != nil {
				c.budget.Credit()
			}
			return reply, nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			c.metrics.remoteErrors.Add(1)
			if !re.Retryable {
				return nil, err
			}
			// The server shed the request (overload, drain, open
			// breakers) before executing it: retrying with backoff is
			// safe.
			lastErr = err
			continue
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		if !isConnError(err) {
			return nil, err
		}
		c.metrics.connErrors.Add(1)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ctx.Err()
	}
	return nil, lastErr
}

// backoff sleeps between retries. It reports false — without sleeping —
// when the context is cancelled or its remaining deadline cannot cover
// the sleep, so the retry loop fails fast with the last real error
// rather than burning the caller's remaining budget on a wait that can
// only end in a context error.
func (c *Client) backoff(ctx context.Context, retry int) bool {
	c.rngMu.Lock()
	d := c.retry.delay(retry, c.rng)
	c.rngMu.Unlock()
	if d <= 0 {
		return ctx.Err() == nil
	}
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < d {
		return false
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// attempt performs one round trip, over the multiplexed transport when
// enabled (and not negotiated away), else over a pooled connection. A
// pooled connection that fails with a connection-level error is replaced
// transparently exactly once: the pool cannot know the server closed an
// idle connection until it is used.
func (c *Client) attempt(ctx context.Context, msg *wire.Message) (*wire.Message, error) {
	if c.mux != nil && !c.muxFallback.Load() {
		reply, handled, err := c.mux.attempt(ctx, msg)
		if handled {
			return reply, err
		}
		// The server negotiated down to the legacy protocol: fall
		// through to the pooled path (and stay there).
	}
	conn, pooled, err := c.getConn(ctx)
	if err != nil {
		return nil, err
	}
	c.metrics.attempts.Add(1)
	reply, err := c.do(ctx, conn, msg)
	if err != nil && pooled && isConnError(err) && ctx.Err() == nil {
		c.metrics.staleConns.Add(1)
		fresh, derr := c.dial(ctx)
		if derr != nil {
			return nil, derr
		}
		c.metrics.attempts.Add(1)
		return c.do(ctx, fresh, msg)
	}
	return reply, err
}

// ctxCause reports the context error behind a failed I/O operation, or
// nil if the failure was not caused by the context. The socket deadline
// is set to the context deadline, and the socket's timer can fire a
// moment before the context's own — so a socket i/o timeout at or past
// the context deadline counts as the deadline expiring.
func ctxCause(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if deadline, ok := ctx.Deadline(); ok && !time.Now().Before(deadline) {
			return context.DeadlineExceeded
		}
	}
	return nil
}

// do performs one round trip on one connection, applying link shaping to
// both directions. The context deadline becomes the socket deadline, and
// cancellation closes the connection so blocked I/O unblocks — which the
// server observes as a client disconnect and cancels the kernel.
func (c *Client) do(ctx context.Context, conn net.Conn, msg *wire.Message) (*wire.Message, error) {
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	// Sizing a frame costs a full header encode — only worth it when a
	// shaped link will charge for the bytes.
	if c.link != nil {
		if size, err := wire.FrameSize(msg); err == nil {
			c.link.Transfer(size)
		}
	}
	if err := wire.Write(conn, msg); err != nil {
		conn.Close()
		if ctxErr := ctxCause(ctx, err); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, asConnError(err)
	}
	reply, err := wire.Read(conn)
	if err != nil {
		conn.Close()
		if ctxErr := ctxCause(ctx, err); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, asConnError(fmt.Errorf("client: read reply: %w", err))
	}
	if c.link != nil {
		if size, err := wire.FrameSize(reply); err == nil {
			c.link.Transfer(size)
		}
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		// Cancelled while the reply was in flight; the AfterFunc is
		// closing the connection, so don't pool it.
		conn.Close()
		return nil, ctxErr
	}
	conn.SetDeadline(time.Time{})
	c.putConn(conn)
	if rerr := replyError(reply); rerr != nil {
		return nil, rerr
	}
	return reply, nil
}

// replyError converts a server error frame into a RemoteError; non-error
// frames yield nil.
func replyError(reply *wire.Message) error {
	if reply.Type != wire.MsgError {
		return nil
	}
	code := reply.Header.Code
	if code == "" {
		code = wire.CodeInternal
	}
	return &RemoteError{
		Message:   reply.Header.Error,
		Code:      code,
		Retryable: reply.Header.Retryable,
	}
}

// Register registers a kernel (by library name) on the server.
func (c *Client) Register(kernel string) error {
	return c.RegisterContext(context.Background(), kernel)
}

// RegisterContext registers a kernel, honoring the context's deadline and
// cancellation.
func (c *Client) RegisterContext(ctx context.Context, kernel string) error {
	reply, err := c.roundTrip(ctx, &wire.Message{
		Type:   wire.MsgRegister,
		Header: wire.Header{Kernel: kernel},
	})
	if err != nil {
		return err
	}
	if reply.Type != wire.MsgRegistered {
		return fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return nil
}

// Result is a completed invocation.
type Result struct {
	// Values are the kernel's scalar outputs.
	Values map[string]float64
	// Data is the kernel's output payload.
	Data []byte
	// Cold reports whether the invocation started a new runner.
	Cold bool
	// CachedCold reports whether a cold start skipped JIT compilation
	// because the compiled artifact was already cached. Only meaningful
	// when Cold is true.
	CachedCold bool
	// InvocationID is the server-assigned identifier of this invocation,
	// joinable against the server's structured logs and metrics.
	InvocationID string
	// ServerTime is the server-side modeled invocation duration.
	ServerTime time.Duration
}

// Invoke calls a kernel with parameters and an optional in-band payload.
func (c *Client) Invoke(kernel string, params kernels.Params, data []byte) (*Result, error) {
	return c.InvokeContext(context.Background(), kernel, params, data)
}

// InvokeContext calls a kernel, honoring the context's deadline and
// cancellation: an expired context returns before any network traffic,
// the deadline rides the wire header so the server rejects stale work,
// and cancelling mid-flight closes the connection, which the server
// observes and cancels the kernel's context.
func (c *Client) InvokeContext(ctx context.Context, kernel string, params kernels.Params, data []byte) (*Result, error) {
	return c.InvokeTenantContext(ctx, c.tenant, kernel, params, data)
}

// InvokeTenantContext is InvokeContext with an explicit per-call tenant
// identity, overriding any WithTenant default. Cluster routers use it to
// share one client per server address across many tenants.
func (c *Client) InvokeTenantContext(ctx context.Context, tenant, kernel string, params kernels.Params, data []byte) (*Result, error) {
	return c.invoke(ctx, &wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: kernel, Params: params, Tenant: tenant},
		Body:   data,
	})
}

// InvokeOutOfBand calls a kernel passing the payload through shared
// memory: only the region key crosses the wire. Requires WithShm and a
// same-host server. Results are also returned out-of-band when possible.
func (c *Client) InvokeOutOfBand(kernel string, params kernels.Params, data []byte) (*Result, error) {
	return c.InvokeOutOfBandContext(context.Background(), kernel, params, data)
}

// InvokeOutOfBandContext is InvokeOutOfBand with deadline and
// cancellation propagation.
func (c *Client) InvokeOutOfBandContext(ctx context.Context, kernel string, params kernels.Params, data []byte) (*Result, error) {
	if c.regions == nil {
		return nil, errors.New("client: out-of-band transfer needs WithShm")
	}
	key, err := c.regions.Create(data)
	if err != nil {
		return nil, err
	}
	defer c.regions.Delete(key)
	return c.invoke(ctx, &wire.Message{
		Type: wire.MsgInvoke,
		Header: wire.Header{
			Kernel:        kernel,
			Params:        params,
			Tenant:        c.tenant,
			ShmKey:        key,
			WantShmResult: true,
		},
	})
}

func (c *Client) invoke(ctx context.Context, msg *wire.Message) (*Result, error) {
	reply, err := c.roundTrip(ctx, msg)
	if err != nil {
		return nil, err
	}
	if reply.Type != wire.MsgResult {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	res := &Result{
		Values:       reply.Header.Values,
		Data:         reply.Body,
		Cold:         reply.Header.ColdStart,
		CachedCold:   reply.Header.CachedColdStart,
		InvocationID: reply.Header.InvocationID,
		ServerTime:   time.Duration(reply.Header.DurationNanos),
	}
	if key := reply.Header.ResultShmKey; key != "" && c.regions != nil {
		data, err := c.regions.Get(key)
		if err != nil {
			return nil, err
		}
		c.regions.Delete(key)
		res.Data = data
	}
	return res, nil
}

// ControlContext performs one cluster control-plane round trip: payload
// rides a MsgControl frame and the peer's MsgControlAck body is
// returned. The cplane package uses it for heartbeat gossip; kaasctl
// uses it for cluster status. Servers without a control plane answer
// with a RemoteError.
func (c *Client) ControlContext(ctx context.Context, payload []byte) ([]byte, error) {
	reply, err := c.roundTrip(ctx, &wire.Message{Type: wire.MsgControl, Body: payload})
	if err != nil {
		return nil, err
	}
	if reply.Type != wire.MsgControlAck {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return reply.Body, nil
}

// List returns the kernel names registered on the server.
func (c *Client) List() ([]string, error) {
	return c.ListContext(context.Background())
}

// ListContext is List with deadline and cancellation propagation.
func (c *Client) ListContext(ctx context.Context) ([]string, error) {
	reply, err := c.roundTrip(ctx, &wire.Message{Type: wire.MsgList})
	if err != nil {
		return nil, err
	}
	if reply.Type != wire.MsgListResult {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return reply.Header.Names, nil
}

// Stats fetches the server's statistics document.
func (c *Client) Stats(out any) error {
	return c.StatsContext(context.Background(), out)
}

// StatsContext is Stats with deadline and cancellation propagation.
func (c *Client) StatsContext(ctx context.Context, out any) error {
	reply, err := c.roundTrip(ctx, &wire.Message{Type: wire.MsgStats})
	if err != nil {
		return err
	}
	if reply.Type != wire.MsgStatsResult {
		return fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	if err := json.Unmarshal(reply.Header.Stats, out); err != nil {
		return fmt.Errorf("client: decode stats: %w", err)
	}
	return nil
}
