// Package client implements the KaaS client API (§4.1): TCP-based kernel
// registration and invocation with in-band (serialized) or out-of-band
// (shared-memory) data transfer, plus optional network shaping so
// loopback deployments can be measured as if remote.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"kaas/internal/kernels"
	"kaas/internal/netshape"
	"kaas/internal/shm"
	"kaas/internal/wire"
)

// ErrClosed indicates use of a closed client.
var ErrClosed = errors.New("client: closed")

// RemoteError is a failure reported by the server.
type RemoteError struct {
	// Message is the server's error text.
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string { return "client: server error: " + e.Message }

// Option configures a Client.
type Option func(*Client)

// WithLink shapes all traffic through the given network link.
func WithLink(l *netshape.Link) Option {
	return func(c *Client) { c.link = l }
}

// WithShm enables out-of-band transfer through a shared-memory registry.
// The registry must be the same instance the server uses (same host).
func WithShm(r *shm.Registry) Option {
	return func(c *Client) { c.regions = r }
}

// Client talks to a KaaS server. It is safe for concurrent use: each
// in-flight request uses its own pooled connection.
type Client struct {
	addr    string
	link    *netshape.Link
	regions *shm.Registry

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// Dial creates a client for the server at addr. Connections are opened
// lazily.
func Dial(addr string, opts ...Option) *Client {
	c := &Client{addr: addr}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Close closes all pooled connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
}

// getConn returns a pooled or fresh connection.
func (c *Client) getConn() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	return conn, nil
}

// putConn returns a healthy connection to the pool.
func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

// roundTrip sends one message and reads one reply, applying link shaping
// to both directions.
func (c *Client) roundTrip(msg *wire.Message) (*wire.Message, error) {
	conn, err := c.getConn()
	if err != nil {
		return nil, err
	}
	if size, err := wire.FrameSize(msg); err == nil {
		c.link.Transfer(size)
	}
	if err := wire.Write(conn, msg); err != nil {
		conn.Close()
		return nil, err
	}
	reply, err := wire.Read(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: read reply: %w", err)
	}
	if size, err := wire.FrameSize(reply); err == nil {
		c.link.Transfer(size)
	}
	c.putConn(conn)
	if reply.Type == wire.MsgError {
		return nil, &RemoteError{Message: reply.Header.Error}
	}
	return reply, nil
}

// Register registers a kernel (by library name) on the server.
func (c *Client) Register(kernel string) error {
	reply, err := c.roundTrip(&wire.Message{
		Type:   wire.MsgRegister,
		Header: wire.Header{Kernel: kernel},
	})
	if err != nil {
		return err
	}
	if reply.Type != wire.MsgRegistered {
		return fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return nil
}

// Result is a completed invocation.
type Result struct {
	// Values are the kernel's scalar outputs.
	Values map[string]float64
	// Data is the kernel's output payload.
	Data []byte
	// Cold reports whether the invocation started a new runner.
	Cold bool
	// ServerTime is the server-side modeled invocation duration.
	ServerTime time.Duration
}

// Invoke calls a kernel with parameters and an optional in-band payload.
func (c *Client) Invoke(kernel string, params kernels.Params, data []byte) (*Result, error) {
	return c.invoke(&wire.Message{
		Type:   wire.MsgInvoke,
		Header: wire.Header{Kernel: kernel, Params: params},
		Body:   data,
	})
}

// InvokeOutOfBand calls a kernel passing the payload through shared
// memory: only the region key crosses the wire. Requires WithShm and a
// same-host server. Results are also returned out-of-band when possible.
func (c *Client) InvokeOutOfBand(kernel string, params kernels.Params, data []byte) (*Result, error) {
	if c.regions == nil {
		return nil, errors.New("client: out-of-band transfer needs WithShm")
	}
	key, err := c.regions.Create(data)
	if err != nil {
		return nil, err
	}
	defer c.regions.Delete(key)
	return c.invoke(&wire.Message{
		Type: wire.MsgInvoke,
		Header: wire.Header{
			Kernel:        kernel,
			Params:        params,
			ShmKey:        key,
			WantShmResult: true,
		},
	})
}

func (c *Client) invoke(msg *wire.Message) (*Result, error) {
	reply, err := c.roundTrip(msg)
	if err != nil {
		return nil, err
	}
	if reply.Type != wire.MsgResult {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	res := &Result{
		Values:     reply.Header.Values,
		Data:       reply.Body,
		Cold:       reply.Header.ColdStart,
		ServerTime: time.Duration(reply.Header.DurationNanos),
	}
	if key := reply.Header.ResultShmKey; key != "" && c.regions != nil {
		data, err := c.regions.Get(key)
		if err != nil {
			return nil, err
		}
		c.regions.Delete(key)
		res.Data = data
	}
	return res, nil
}

// List returns the kernel names registered on the server.
func (c *Client) List() ([]string, error) {
	reply, err := c.roundTrip(&wire.Message{Type: wire.MsgList})
	if err != nil {
		return nil, err
	}
	if reply.Type != wire.MsgListResult {
		return nil, fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	return reply.Header.Names, nil
}

// Stats fetches the server's statistics document.
func (c *Client) Stats(out any) error {
	reply, err := c.roundTrip(&wire.Message{Type: wire.MsgStats})
	if err != nil {
		return err
	}
	if reply.Type != wire.MsgStatsResult {
		return fmt.Errorf("client: unexpected reply %s", reply.Type)
	}
	if err := json.Unmarshal(reply.Header.Stats, out); err != nil {
		return fmt.Errorf("client: decode stats: %w", err)
	}
	return nil
}
