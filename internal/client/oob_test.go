package client

import (
	"math"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/shm"
	"kaas/internal/vclock"
)

// startOOBServer brings up a server with the zero-copy arena enabled,
// returning the core server (for stats), the TCP endpoint, and the
// shared arena pool both endpoints map.
func startOOBServer(t *testing.T) (*core.Server, *core.TCPServer, *shm.ArenaPool) {
	t.Helper()
	clock := vclock.Scaled(1000)
	host, err := accel.NewHost(clock, "node", accel.XeonE52698,
		accel.TeslaP100, accel.AlveoU250)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	srv, err := core.New(core.Config{Clock: clock, Host: host})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(srv.Close)
	arena := shm.NewArenaPool(4 << 20)
	tcp, err := core.ServeTCP(srv, "127.0.0.1:0", shm.NewRegistry(1<<30), core.WithArenaPool(arena))
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	t.Cleanup(func() { tcp.Close() })
	return srv, tcp, arena
}

// whitePixels is a 32×32 all-white RGB image payload for the bitmap
// kernel, whose result payload (the downsampled grayscale pixels) rides
// back through the same channel the request used.
func whitePixels() []byte {
	px := make([]float64, 32*32*3)
	for i := range px {
		px[i] = 1
	}
	return kernels.Float64sToBytes(px)
}

func invokeBitmap(t *testing.T, c *Client) *Result {
	t.Helper()
	res, err := c.Invoke("bitmap",
		kernels.Params{"height": 32, "width": 32, "factor": 2}, whitePixels())
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if math.Abs(res.Values["mean_luma"]-1) > 1e-9 {
		t.Fatalf("mean_luma = %v, want 1 (white input)", res.Values["mean_luma"])
	}
	pix, err := kernels.BytesToFloat64s(res.Data)
	if err != nil {
		t.Fatalf("decode result payload: %v", err)
	}
	if len(pix) != 16*16 {
		t.Fatalf("result pixels = %d, want 256", len(pix))
	}
	return res
}

// TestOOBInvokeRoundTrip sends payloads through the leased arena window:
// results stay correct, the server counts the invocations as
// out-of-band, and one negotiated lease serves the whole run — payloads
// move by handle, not by per-invocation grants.
func TestOOBInvokeRoundTrip(t *testing.T) {
	srv, tcp, arena := startOOBServer(t)
	c := Dial(tcp.Addr(), WithMux(1), WithArena(arena))
	defer c.Close()
	if err := c.Register("bitmap"); err != nil {
		t.Fatalf("Register: %v", err)
	}

	const n = 8
	for i := 0; i < n; i++ {
		invokeBitmap(t, c)
	}

	dp := srv.Stats().DataPlane
	if dp.OOBInvocations != n {
		t.Fatalf("OOBInvocations = %d, want %d", dp.OOBInvocations, n)
	}
	if want := uint64(n * len(whitePixels())); dp.OOBBytes != want {
		t.Fatalf("OOBBytes = %d, want %d", dp.OOBBytes, want)
	}
	st := arena.Stats()
	if st.Grants != 1 {
		t.Fatalf("arena grants = %d over %d invocations, want 1 (lease reuse)", st.Grants, n)
	}
	if st.Active != 1 {
		t.Fatalf("active leases = %d, want 1 pooled on the connection", st.Active)
	}
}

// TestOOBStaleLeaseFallsBackInBand revokes the client's pooled lease
// behind its back: the next invoke hits the server's stale-lease error
// and must transparently resend in-band — the caller sees a correct
// result, never an error.
func TestOOBStaleLeaseFallsBackInBand(t *testing.T) {
	srv, tcp, arena := startOOBServer(t)
	c := Dial(tcp.Addr(), WithMux(1), WithArena(arena))
	defer c.Close()
	if err := c.Register("bitmap"); err != nil {
		t.Fatalf("Register: %v", err)
	}

	invokeBitmap(t, c)
	if dp := srv.Stats().DataPlane; dp.OOBInvocations != 1 {
		t.Fatalf("OOBInvocations = %d, want 1 before revocation", dp.OOBInvocations)
	}

	// Withdraw every lease without telling the client (the notification
	// path is exercised elsewhere): its next handle is stale on arrival.
	arena.RevokeAll()

	invokeBitmap(t, c)
	dp := srv.Stats().DataPlane
	if dp.InBandBytes == 0 {
		t.Fatal("stale-lease invoke did not fall back to in-band transfer")
	}
	if st := arena.Stats(); st.Revocations == 0 {
		t.Fatalf("arena stats = %+v, want recorded revocations", st)
	}

	// The lease path must recover: a later invoke negotiates a fresh
	// lease rather than staying in-band forever.
	invokeBitmap(t, c)
	if dp := srv.Stats().DataPlane; dp.OOBInvocations < 2 {
		t.Fatalf("OOBInvocations = %d after recovery, want >= 2", dp.OOBInvocations)
	}
}

// TestOOBClientAgainstPlainServer points an arena-equipped client at a
// server without one: negotiation is denied once, every invoke runs
// in-band, and the caller never notices.
func TestOOBClientAgainstPlainServer(t *testing.T) {
	tcp, _, _ := startServer(t)
	arena := shm.NewArenaPool(1 << 20)
	c := Dial(tcp.Addr(), WithMux(1), WithArena(arena))
	defer c.Close()
	if err := c.Register("bitmap"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := 0; i < 3; i++ {
		invokeBitmap(t, c)
	}
	if st := arena.Stats(); st.Grants != 0 {
		t.Fatalf("arena grants = %d against a plain server, want 0", st.Grants)
	}
}

// TestInBandClientAgainstOOBServer is the legacy-interop direction: a
// client without an arena (and one without mux at all) works unchanged
// against a lease-enabled server.
func TestInBandClientAgainstOOBServer(t *testing.T) {
	srv, tcp, _ := startOOBServer(t)

	muxed := Dial(tcp.Addr(), WithMux(1))
	defer muxed.Close()
	if err := muxed.Register("bitmap"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	invokeBitmap(t, muxed)

	legacy := Dial(tcp.Addr())
	defer legacy.Close()
	invokeBitmap(t, legacy)

	dp := srv.Stats().DataPlane
	if dp.OOBInvocations != 0 {
		t.Fatalf("OOBInvocations = %d from in-band clients, want 0", dp.OOBInvocations)
	}
	if dp.InBandBytes == 0 {
		t.Fatal("in-band byte counter did not move")
	}
}

// TestClientCloseReleasesLeases covers disconnect-mid-lease end to end:
// closing the client drops the connection, and the server returns every
// lease the connection held to the arena budget.
func TestClientCloseReleasesLeases(t *testing.T) {
	_, tcp, arena := startOOBServer(t)
	c := Dial(tcp.Addr(), WithMux(1), WithArena(arena))
	if err := c.Register("bitmap"); err != nil {
		c.Close()
		t.Fatalf("Register: %v", err)
	}
	invokeBitmap(t, c)
	if st := arena.Stats(); st.Active == 0 {
		t.Fatal("no live lease after an out-of-band invoke")
	}

	c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := arena.Stats()
		if st.Active == 0 && st.Granted == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("arena stats = %+v after client close, want all leases released", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
