package client

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/shm"
	"kaas/internal/vclock"
	"kaas/internal/wire"
)

// TestBackoffCappedByContextDeadline: a retry backoff longer than the
// context's remaining deadline must not be slept through — the client
// fails fast and returns the last transport error, not the context error
// it would have manufactured by waiting out the deadline.
func TestBackoffCappedByContextDeadline(t *testing.T) {
	// A listener that is immediately closed: every dial is refused, so
	// the retry loop is nothing but backoff.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := Dial(addr, WithRetryPolicy(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Second,
		MaxDelay:    10 * time.Second,
	}))
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.InvokeContext(ctx, "mci", nil, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("invoke against a dead address succeeded")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the transport error, not the deadline it slept through", err)
	}
	if !isConnError(err) {
		t.Errorf("err = %v, want the last connection error", err)
	}
	// The first 10s backoff exceeds the 200ms budget, so the call must
	// return almost immediately — well before even the context deadline.
	if elapsed > 2*time.Second {
		t.Errorf("invoke returned after %v, want prompt fail-fast (backoff overran the deadline)", elapsed)
	}
}

// gateKernel parks every execution on a channel so a test can hold the
// server's admission slots exactly as long as it needs.
type gateKernel struct {
	started chan struct{}
	gate    chan struct{}
}

func (gateKernel) Name() string     { return "gate" }
func (gateKernel) Kind() accel.Kind { return accel.GPU }
func (gateKernel) Cost(*kernels.Request) (kernels.Cost, error) {
	return kernels.Cost{Work: 1e8, BytesIn: 64, BytesOut: 16, DeviceMemory: 1 << 20}, nil
}
func (k gateKernel) Execute(*kernels.Request) (*kernels.Response, error) {
	k.started <- struct{}{}
	<-k.gate
	return &kernels.Response{Values: map[string]float64{"ok": 1}}, nil
}

// TestOverloadedRetriedUntilAdmitted: an OVERLOADED rejection is marked
// retryable, so the client backs off and retries until admission control
// lets it through, instead of failing the call on first rejection.
func TestOverloadedRetriedUntilAdmitted(t *testing.T) {
	clock := vclock.Scaled(1000)
	host, err := accel.NewHost(clock, "node", accel.XeonE52698, accel.TeslaP100)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	srv, err := core.New(core.Config{Clock: clock, Host: host, MaxInFlightTotal: 1})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(srv.Close)
	gk := gateKernel{started: make(chan struct{}, 1), gate: make(chan struct{})}
	if err := srv.Register(gk); err != nil {
		t.Fatalf("Register gate: %v", err)
	}
	if err := srv.Register(kernels.NewMonteCarlo()); err != nil {
		t.Fatalf("Register mci: %v", err)
	}
	tcp, err := core.ServeTCP(srv, "127.0.0.1:0", shm.NewRegistry(1<<30))
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	t.Cleanup(func() { tcp.Close() })

	// Occupy the single admission slot with a parked invocation.
	occupant := Dial(tcp.Addr())
	defer occupant.Close()
	occDone := make(chan error, 1)
	go func() {
		_, err := occupant.Invoke("gate", nil, nil)
		occDone <- err
	}()
	select {
	case <-gk.started:
	case <-time.After(10 * time.Second):
		t.Fatal("occupant never reached the kernel")
	}

	c := Dial(tcp.Addr(), WithRetryPolicy(RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
	}))
	defer c.Close()
	invDone := make(chan error, 1)
	go func() {
		_, err := c.Invoke("mci", kernels.Params{"n": 1000}, nil)
		invDone <- err
	}()

	// Wait until at least one rejection has come back, then free the
	// slot: a later retry must be admitted and succeed.
	waitUntil(t, 5*time.Second, func() bool { return c.Metrics().RemoteErrors >= 1 }, "an OVERLOADED rejection")
	close(gk.gate)
	if err := <-occDone; err != nil {
		t.Fatalf("occupant invoke: %v", err)
	}
	select {
	case err := <-invDone:
		if err != nil {
			t.Fatalf("overloaded invoke never recovered: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("overloaded invoke did not return")
	}
	m := c.Metrics()
	if m.Retries == 0 {
		t.Error("OVERLOADED rejection was not retried")
	}
	if m.RemoteErrors == 0 {
		t.Error("no remote error recorded for the rejection")
	}
}

// TestRemoteErrorCodeSurfaced: the structured code and retryable bit on
// a wire error reach the caller through RemoteError.
func TestRemoteErrorCodeSurfaced(t *testing.T) {
	_, ln := startFaultyServer(t, nil)
	c := Dial(ln.Addr().String())
	defer c.Close()
	var re *RemoteError
	_, err := c.Invoke("no-such-kernel", nil, nil)
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Code != wire.CodeUnknownKernel {
		t.Errorf("Code = %q, want %q", re.Code, wire.CodeUnknownKernel)
	}
	if re.Retryable {
		t.Error("UNKNOWN_KERNEL marked retryable")
	}
}
