package client

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"kaas/internal/accel"
	"kaas/internal/core"
	"kaas/internal/faults"
	"kaas/internal/kernels"
	"kaas/internal/shm"
	"kaas/internal/vclock"
)

// slowKernel burns ~5 s of wall time of modeled device work at the test
// clock scale unless its context is cancelled.
type slowKernel struct{}

func (slowKernel) Name() string     { return "slow" }
func (slowKernel) Kind() accel.Kind { return accel.GPU }
func (slowKernel) Cost(*kernels.Request) (kernels.Cost, error) {
	return kernels.Cost{Work: 4e15}, nil
}
func (slowKernel) Execute(*kernels.Request) (*kernels.Response, error) {
	return &kernels.Response{Values: map[string]float64{"done": 1}}, nil
}

// startFaultyServer brings up a KaaS TCP server behind a fault-injecting
// listener scripted by plans (nil = no faults).
func startFaultyServer(t *testing.T, plans func(i int) faults.Plan) (*core.Server, *faults.Listener) {
	t.Helper()
	clock := vclock.Scaled(1000)
	host, err := accel.NewHost(clock, "node", accel.XeonE52698,
		accel.TeslaP100, accel.TeslaP100)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(host.Close)
	srv, err := core.New(core.Config{Clock: clock, Host: host})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(srv.Close)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := faults.Wrap(raw, plans)
	tcp, err := core.ServeTCPListener(srv, ln, shm.NewRegistry(1<<30))
	if err != nil {
		t.Fatalf("ServeTCPListener: %v", err)
	}
	t.Cleanup(func() { tcp.Close() })
	return srv, ln
}

// waitUntil polls cond until it holds or the wall deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDeadlinePropagationEndToEnd(t *testing.T) {
	srv, ln := startFaultyServer(t, nil)
	if err := srv.Register(slowKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := Dial(ln.Addr().String())
	defer c.Close()

	// Phase 1: an already-expired context returns promptly without any
	// network traffic or kernel execution.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, err := c.InvokeContext(expired, "slow", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("expired ctx returned after %v", elapsed)
	}
	if n := ln.Accepted(); n != 0 {
		t.Errorf("expired ctx opened %d connections", n)
	}
	if st := srv.Stats(); st.ColdStarts != 0 {
		t.Errorf("expired ctx executed the kernel: %+v", st)
	}

	// Phase 2: a mid-flight cancellation is observed by the server —
	// the kernel's context is cancelled and in-flight work drains long
	// before the kernel's ~5 s of wall time.
	baselineGoroutines := runtime.NumGoroutine()
	ctx, cancel2 := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.InvokeContext(ctx, "slow", nil, nil)
		errCh <- err
	}()
	waitUntil(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 1 }, "invocation in flight")
	cancel2()

	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled invoke err = %v, want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled invoke did not return")
	}
	start = time.Now()
	waitUntil(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 0 }, "server to drain")
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("server drained %v after cancellation", elapsed)
	}

	// No pooled-connection leak: the cancelled connection must not be
	// reused, and no goroutines may linger.
	c.mu.Lock()
	idle := len(c.idle)
	c.mu.Unlock()
	if idle != 0 {
		t.Errorf("%d cancelled connections pooled", idle)
	}
	waitUntil(t, 2*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baselineGoroutines
	}, "goroutines to settle")

	// The platform keeps serving this client afterwards.
	if err := c.Register("matmul"); err != nil {
		t.Fatalf("Register after cancel: %v", err)
	}
	if _, err := c.Invoke("matmul", kernels.Params{"n": 32}, nil); err != nil {
		t.Fatalf("Invoke after cancel: %v", err)
	}
}

func TestDefaultTimeoutAgainstStalledServer(t *testing.T) {
	srv, ln := startFaultyServer(t, faults.Script(
		faults.Plan{Mode: faults.Stall, Delay: 250 * time.Millisecond},
	))
	if err := srv.Register(slowKernel{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := Dial(ln.Addr().String(), WithTimeout(50*time.Millisecond))
	defer c.Close()
	start := time.Now()
	_, err := c.Invoke("slow", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled invoke err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout fired after %v, want ~50ms", elapsed)
	}
}

func TestRemoteErrorNeverRetried(t *testing.T) {
	_, ln := startFaultyServer(t, nil)
	c := Dial(ln.Addr().String(), WithRetries(5))
	defer c.Close()
	var re *RemoteError
	if _, err := c.Invoke("no-such-kernel", nil, nil); !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	m := c.Metrics()
	if m.Retries != 0 {
		t.Errorf("RemoteError was retried %d times", m.Retries)
	}
	if m.RemoteErrors != 1 {
		t.Errorf("RemoteErrors = %d, want 1", m.RemoteErrors)
	}
	if m.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", m.Attempts)
	}
}

func TestStalePooledConnReplacedTransparently(t *testing.T) {
	srv, ln := startFaultyServer(t, nil)
	if err := srv.Register(kernels.NewMonteCarlo()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// No retry budget: recovery must come from the transparent
	// stale-connection replacement, not the policy.
	c := Dial(ln.Addr().String())
	defer c.Close()
	if _, err := c.Invoke("mci", kernels.Params{"n": 1000}, nil); err != nil {
		t.Fatalf("first Invoke: %v", err)
	}

	// Kill every live server-side connection while the client's conn
	// sits idle in its pool.
	rng := rand.New(rand.NewSource(42))
	killed := 0
	for ln.CloseRandom(rng) {
		killed++
	}
	if killed == 0 {
		t.Fatal("no connections to kill")
	}
	waitUntil(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 0 }, "server idle")

	if _, err := c.Invoke("mci", kernels.Params{"n": 1000}, nil); err != nil {
		t.Fatalf("Invoke over stale pooled conn: %v", err)
	}
	m := c.Metrics()
	if m.StaleConns != 1 {
		t.Errorf("StaleConns = %d, want 1", m.StaleConns)
	}
	if m.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (transparent replacement only)", m.Retries)
	}
}

// TestRetryRecoversFromEveryFaultMode drives one faulty connection per
// stream-breaking fault mode and asserts the retry policy recovers.
func TestRetryRecoversFromEveryFaultMode(t *testing.T) {
	modes := []faults.Plan{
		{Mode: faults.DropAfterN, N: 6},
		{Mode: faults.CloseMidFrame},
		{Mode: faults.CorruptFrame, N: 2},
		{Mode: faults.DropAfterN, N: 0}, // immediate drop: pure reset
	}
	for _, plan := range modes {
		plan := plan
		t.Run(plan.Mode.String(), func(t *testing.T) {
			srv, ln := startFaultyServer(t, func(i int) faults.Plan {
				if i == 0 {
					return plan
				}
				return faults.Plan{}
			})
			if err := srv.Register(kernels.NewMonteCarlo()); err != nil {
				t.Fatalf("Register: %v", err)
			}
			c := Dial(ln.Addr().String(), WithRetryPolicy(RetryPolicy{
				MaxAttempts: 4,
				BaseDelay:   time.Millisecond,
			}))
			defer c.Close()
			res, err := c.Invoke("mci", kernels.Params{"n": 1000, "seed": 3}, nil)
			if err != nil {
				t.Fatalf("Invoke through %s: %v", plan.Mode, err)
			}
			if res.Values["estimate"] == 0 {
				t.Error("empty result after recovery")
			}
			m := c.Metrics()
			if m.ConnErrors == 0 {
				t.Errorf("fault mode %s never surfaced a connection error", plan.Mode)
			}
			if m.Retries == 0 {
				t.Errorf("fault mode %s never triggered a retry", plan.Mode)
			}
		})
	}
}

// TestSlowWriteModeSucceedsWithoutRetry covers the non-fatal fault mode:
// a throttled connection delivers intact frames, so no retry fires.
func TestSlowWriteModeSucceedsWithoutRetry(t *testing.T) {
	srv, ln := startFaultyServer(t, faults.Script(
		faults.Plan{Mode: faults.SlowWrite, Chunk: 16, Delay: 200 * time.Microsecond},
	))
	if err := srv.Register(kernels.NewMonteCarlo()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := Dial(ln.Addr().String(), WithRetries(3))
	defer c.Close()
	if _, err := c.Invoke("mci", kernels.Params{"n": 1000}, nil); err != nil {
		t.Fatalf("Invoke over slow link: %v", err)
	}
	if m := c.Metrics(); m.Retries != 0 {
		t.Errorf("slow write triggered %d retries", m.Retries)
	}
}

// TestPoolSurvivesRandomConnKills is the connection-pool concurrency
// test: N goroutines × M invocations while a background goroutine keeps
// closing random server-side connections. Every invocation must return
// exactly one correct reply — none lost, none cross-wired.
func TestPoolSurvivesRandomConnKills(t *testing.T) {
	srv, ln := startFaultyServer(t, nil)
	matmul, err := kernels.ByName("matmul")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if err := srv.Register(matmul); err != nil {
		t.Fatalf("Register: %v", err)
	}
	c := Dial(ln.Addr().String(), WithRetryPolicy(RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
	}))
	defer c.Close()

	const workers = 8
	const perWorker = 10

	// Precompute the expected checksum per seed locally: the kernel is
	// deterministic, so a cross-wired or duplicated reply would land on
	// the wrong seed's expectation.
	expected := make([]float64, workers*perWorker)
	for i := range expected {
		resp, err := matmul.Execute(&kernels.Request{
			Params: kernels.Params{"n": 48, "seed": float64(i)},
		})
		if err != nil {
			t.Fatalf("local Execute: %v", err)
		}
		expected[i] = resp.Values["checksum"]
	}

	// Background killer: closes a random live server-side connection on a
	// cadence slow enough that a retried attempt can finish between kills
	// but fast enough to hit dozens of in-flight invocations per run.
	stopKiller := make(chan struct{})
	var killerWg sync.WaitGroup
	killerWg.Add(1)
	go func() {
		defer killerWg.Done()
		rng := rand.New(rand.NewSource(99))
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopKiller:
				return
			case <-ticker.C:
				ln.CloseRandom(rng)
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				id := w*perWorker + j
				res, err := c.Invoke("matmul", kernels.Params{"n": 48, "seed": float64(id)}, nil)
				if err != nil {
					errs <- err
					continue
				}
				if got := res.Values["checksum"]; got != expected[id] {
					errs <- errors.New("cross-wired reply: wrong checksum for seed")
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopKiller)
	killerWg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("lost or wrong reply: %v", err)
	}

	m := c.Metrics()
	if m.Attempts < workers*perWorker {
		t.Errorf("Attempts = %d, want >= %d", m.Attempts, workers*perWorker)
	}
	t.Logf("pool under fire: %d attempts, %d retries, %d stale conns, %d conn errors, %d server conns",
		m.Attempts, m.Retries, m.StaleConns, m.ConnErrors, ln.Accepted())
	waitUntil(t, 2*time.Second, func() bool { return srv.Stats().InFlight == 0 }, "server drain")
}

// TestRetryDelaysAreDeterministic pins the jitter PRNG so two policies
// with the same seed produce identical backoff schedules.
func TestRetryDelaysAreDeterministic(t *testing.T) {
	p := DefaultRetryPolicy().withDefaults()
	a := rand.New(rand.NewSource(p.Seed))
	b := rand.New(rand.NewSource(p.Seed))
	for retry := 1; retry <= 5; retry++ {
		da, db := p.delay(retry, a), p.delay(retry, b)
		if da != db {
			t.Errorf("retry %d: %v != %v with same seed", retry, da, db)
		}
		if da <= 0 || da > p.MaxDelay+time.Duration(p.Jitter*float64(p.MaxDelay)) {
			t.Errorf("retry %d delay %v out of bounds", retry, da)
		}
	}
}

func TestConnErrorClassification(t *testing.T) {
	if isConnError(&RemoteError{Message: "boom"}) {
		t.Error("RemoteError classified as connection error")
	}
	if isConnError(asConnError(&RemoteError{Message: "boom"})) {
		t.Error("asConnError wrapped a RemoteError")
	}
	if isConnError(asConnError(context.Canceled)) {
		t.Error("context.Canceled classified as retryable")
	}
	if isConnError(asConnError(ErrClosed)) {
		t.Error("ErrClosed classified as retryable")
	}
	if !isConnError(asConnError(&net.OpError{Op: "dial", Err: errors.New("refused")})) {
		t.Error("dial error not classified as retryable")
	}
}
