package client

import (
	"sync"
	"sync/atomic"
)

// RetryBudget is a cross-invocation token bucket that bounds the total
// volume of retries a client (or a set of callers sharing the budget)
// may generate. The per-invocation RetryPolicy spaces retries out in
// time; the budget bounds them in aggregate, which is what matters when
// a node dies: without it, every caller's policy fires in lockstep and
// the survivors absorb a synchronized retry storm on top of the failed
// node's displaced load.
//
// The math follows the classic retry-throttling scheme: the bucket
// starts full at Capacity tokens, every retry (or cross-host
// re-dispatch) spends one token, and every success credits Ratio tokens
// back, capped at Capacity. In steady state a success rate of s and
// failure rate f sustain retries only while f <= s*Ratio — during a
// correlated outage the bucket drains in about Capacity retries and
// further retries are skipped until successes refill it. There is no
// time-based refill, so behavior is deterministic for a deterministic
// workload.
//
// The zero value is not usable; construct with NewRetryBudget. A single
// budget is safe for concurrent use and is designed to be shared across
// clients (e.g. all peer clients of a cluster router).
type RetryBudget struct {
	mu       sync.Mutex
	capacity float64
	ratio    float64
	tokens   float64

	spent     atomic.Uint64
	exhausted atomic.Uint64
}

// Default retry-budget parameters: enough tokens to ride out a burst of
// transient failures, refilled at one token per ten successes.
const (
	DefaultRetryBudgetCapacity = 10
	DefaultRetryBudgetRatio    = 0.1
)

// NewRetryBudget returns a full bucket with the given capacity and
// per-success refill ratio. Non-positive values take the defaults.
func NewRetryBudget(capacity, ratio float64) *RetryBudget {
	if capacity <= 0 {
		capacity = DefaultRetryBudgetCapacity
	}
	if ratio <= 0 {
		ratio = DefaultRetryBudgetRatio
	}
	return &RetryBudget{capacity: capacity, ratio: ratio, tokens: capacity}
}

// Spend takes one token for a retry. When the bucket is empty it
// records the exhaustion and returns false: the caller must give up
// with its last real error instead of retrying.
func (b *RetryBudget) Spend() bool {
	b.mu.Lock()
	if b.tokens < 1 {
		b.mu.Unlock()
		b.exhausted.Add(1)
		return false
	}
	b.tokens--
	b.mu.Unlock()
	b.spent.Add(1)
	return true
}

// Credit returns Ratio tokens to the bucket after a success, capped at
// capacity.
func (b *RetryBudget) Credit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
	b.mu.Unlock()
}

// Tokens returns the current token count.
func (b *RetryBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Spent counts retries the budget paid for.
func (b *RetryBudget) Spent() uint64 { return b.spent.Load() }

// Exhausted counts retries skipped because the bucket was empty.
func (b *RetryBudget) Exhausted() uint64 { return b.exhausted.Load() }
