package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kaas/internal/wire"
)

// errMuxUnsupported is an internal sentinel: the server only speaks the
// legacy protocol, so the client must fall back to one request per
// connection. Never returned to callers.
var errMuxUnsupported = errors.New("client: server does not support multiplexing")

// maxCoalescedWrite caps how many request bytes the mux writer batches
// into one socket write before flushing.
const maxCoalescedWrite = 64 << 10

// muxPool is the multiplexed transport: a small fixed set of shared
// connections over which all in-flight requests are interleaved, each
// tagged with a StreamID and demultiplexed back to its caller. Requests
// spread across the connections round-robin; a dead connection is
// redialed on next use.
type muxPool struct {
	c     *Client
	slots []muxSlot
	next  atomic.Uint64
}

// muxSlot holds one shared connection; the mutex serializes (re)dialing.
type muxSlot struct {
	mu   sync.Mutex
	conn *muxConn
}

// newMuxPool creates the transport with n shared connections, opened
// lazily.
func newMuxPool(c *Client, n int) *muxPool {
	if n < 1 {
		n = 1
	}
	return &muxPool{c: c, slots: make([]muxSlot, n)}
}

// attempt performs one round trip over the multiplexed transport.
// handled=false means the server negotiated down to the legacy protocol
// and the caller should use the pooled path instead. Like the pooled
// path, a cached connection found dead mid-call is replaced
// transparently exactly once.
func (p *muxPool) attempt(ctx context.Context, msg *wire.Message) (reply *wire.Message, handled bool, err error) {
	mc, fresh, err := p.get(ctx)
	if errors.Is(err, errMuxUnsupported) {
		return nil, false, nil
	}
	if err != nil {
		return nil, true, err
	}
	p.c.metrics.attempts.Add(1)
	reply, err = p.oobRoundTrip(ctx, mc, msg)
	if err != nil && !fresh && isConnError(err) && ctx.Err() == nil {
		p.c.metrics.staleConns.Add(1)
		mc2, _, derr := p.get(ctx)
		if errors.Is(derr, errMuxUnsupported) {
			return nil, false, nil
		}
		if derr != nil {
			return nil, true, derr
		}
		p.c.metrics.attempts.Add(1)
		reply, err = p.oobRoundTrip(ctx, mc2, msg)
	}
	if err != nil {
		return nil, true, err
	}
	if rerr := replyError(reply); rerr != nil {
		return nil, true, rerr
	}
	return reply, true, nil
}

// oobRoundTrip routes one request over mc, taking the zero-copy leased
// path when the out-of-band arena is configured and the request carries
// an in-band payload. Anything the lease path cannot serve — no arena on
// the server, budget full, lease revoked mid-flight — falls back to the
// plain in-band round trip transparently.
func (p *muxPool) oobRoundTrip(ctx context.Context, mc *muxConn, msg *wire.Message) (*wire.Message, error) {
	if p.c.arena != nil && msg.Type == wire.MsgInvoke && len(msg.Body) > 0 && msg.Header.ShmKey == "" {
		if reply, used, err := mc.invokeLeased(ctx, msg); used {
			return reply, err
		}
	}
	return mc.roundTrip(ctx, msg)
}

// get returns a live shared connection, dialing and handshaking one if
// the slot is empty or its connection died. fresh reports whether the
// connection was just dialed (a fresh connection gets no transparent
// replacement on failure).
func (p *muxPool) get(ctx context.Context) (mc *muxConn, fresh bool, err error) {
	slot := &p.slots[p.next.Add(1)%uint64(len(p.slots))]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.conn != nil && !slot.conn.isDead() {
		return slot.conn, false, nil
	}
	mc, err = p.handshake(ctx)
	if err != nil {
		return nil, false, err
	}
	slot.conn = mc
	return mc, true, nil
}

// handshake dials a fresh connection and offers the protocol upgrade.
// A MsgHelloAck at VersionMux creates a mux connection; a legacy server
// (which answers MsgError for the unknown hello) flips the client into
// permanent fallback and donates the still-healthy connection to the
// legacy pool.
func (p *muxPool) handshake(ctx context.Context) (*muxConn, error) {
	c := p.c
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()

	conn, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	}
	hello := &wire.Message{Type: wire.MsgHello, Header: wire.Header{MuxVersion: wire.VersionMux}}
	if err := wire.Write(conn, hello); err != nil {
		conn.Close()
		if ctxErr := ctxCause(ctx, err); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, asConnError(err)
	}
	reply, err := wire.Read(conn)
	if err != nil {
		conn.Close()
		if ctxErr := ctxCause(ctx, err); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, asConnError(fmt.Errorf("client: read hello reply: %w", err))
	}
	conn.SetDeadline(time.Time{})

	switch {
	case reply.Type == wire.MsgHelloAck && reply.Header.MuxVersion >= wire.VersionMux:
		mc := newMuxConn(c, conn)
		return mc, nil
	case reply.Type == wire.MsgHelloAck || reply.Type == wire.MsgError:
		// The server is older than the multiplexed protocol (it either
		// acked version 1 or rejected the hello outright). Fall back for
		// the lifetime of this client; the connection itself is healthy,
		// so the legacy pool gets it.
		c.muxFallback.Store(true)
		c.putConn(conn)
		return nil, errMuxUnsupported
	default:
		conn.Close()
		return nil, asConnError(fmt.Errorf("client: unexpected hello reply %s", reply.Type))
	}
}

// close tears down every shared connection.
func (p *muxPool) close() {
	for i := range p.slots {
		slot := &p.slots[i]
		slot.mu.Lock()
		if slot.conn != nil {
			slot.conn.fail(ErrClosed)
			slot.conn = nil
		}
		slot.mu.Unlock()
	}
}

// muxConn is one shared multiplexed connection: a writer goroutine
// serializes (and coalesces) outgoing frames, a reader goroutine
// demultiplexes replies to waiting callers by StreamID, and per-stream
// cancellation sends a CANCEL frame instead of tearing the socket down.
type muxConn struct {
	c    *Client
	conn net.Conn

	// wmu guards socket writes. The transport is adaptive: a caller that
	// is alone on the connection (inflight <= 1) writes its frame inline
	// for minimum latency; with siblings in flight, frames go through the
	// writer goroutine, which coalesces the backlog into batched writes —
	// many frames per syscall — which is where multiplexing wins under
	// load.
	wmu      sync.Mutex
	inflight atomic.Int64
	writeCh  chan *wire.Message
	dead     chan struct{}

	failOnce sync.Once

	// leases caches this connection's granted arena windows for the
	// zero-copy out-of-band path (WithArena).
	leases *leasePool

	mu      sync.Mutex
	failErr error
	pending map[uint64]chan *wire.Message
	nextID  uint64
}

func newMuxConn(c *Client, conn net.Conn) *muxConn {
	m := &muxConn{
		c:       c,
		conn:    conn,
		writeCh: make(chan *wire.Message, 64),
		dead:    make(chan struct{}),
		leases:  newLeasePool(),
		pending: make(map[uint64]chan *wire.Message),
	}
	go m.readLoop()
	go m.writeLoop()
	return m
}

// isDead reports whether the connection has failed.
func (m *muxConn) isDead() bool {
	select {
	case <-m.dead:
		return true
	default:
		return false
	}
}

// fail marks the connection dead exactly once, waking every waiter and
// dropping the connection's arena-lease pins (the server revokes its
// side of each lease when it observes the disconnect).
func (m *muxConn) fail(err error) {
	m.failOnce.Do(func() {
		m.mu.Lock()
		m.failErr = asConnError(err)
		m.mu.Unlock()
		close(m.dead)
		m.conn.Close()
		m.leases.releaseAll()
	})
}

// failure returns the error that killed the connection.
func (m *muxConn) failure() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failErr != nil {
		return m.failErr
	}
	return &connError{err: errors.New("client: mux connection closed")}
}

// replyChPool recycles reply channels across calls. A channel may be
// recycled only after its single send was received (the reader sends at
// most once per stream, under the pending-map entry it deletes).
var replyChPool = sync.Pool{New: func() any { return make(chan *wire.Message, 1) }}

// register allocates a stream ID and its reply channel.
func (m *muxConn) register() (uint64, chan *wire.Message) {
	ch := replyChPool.Get().(chan *wire.Message)
	m.inflight.Add(1)
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.pending[id] = ch
	m.mu.Unlock()
	return id, ch
}

// deregister forgets a stream; late replies for it are dropped by the
// reader.
func (m *muxConn) deregister(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
	m.inflight.Add(-1)
}

// readLoop demultiplexes replies to waiting callers by StreamID.
// Replies for deregistered streams (cancelled calls) are dropped. A read
// failure kills the connection and wakes every waiter.
func (m *muxConn) readLoop() {
	br := bufio.NewReaderSize(m.conn, 32<<10)
	for {
		msg, err := wire.Read(br)
		if err != nil {
			m.fail(fmt.Errorf("client: read reply: %w", err))
			return
		}
		if msg.Type == wire.MsgLeaseRevoke {
			// Unsolicited server notice (drain, breaker-open): stop using
			// the window; the next payload goes in-band or over a fresh
			// lease.
			m.leases.revoked(msg.Header.LeaseID)
			continue
		}
		m.mu.Lock()
		ch := m.pending[msg.Header.StreamID]
		delete(m.pending, msg.Header.StreamID)
		m.mu.Unlock()
		if ch != nil {
			ch <- msg
		}
	}
}

// writeLoop drains frames enqueued by callers with sibling streams in
// flight, coalescing queued bursts into one write.
func (m *muxConn) writeLoop() {
	buf := make([]byte, 0, 16<<10)
	for {
		var msg *wire.Message
		select {
		case msg = <-m.writeCh:
		case <-m.dead:
			return
		}
		var err error
		buf, err = wire.Append(buf[:0], msg)
		if err != nil {
			// Encoding was pre-validated by FrameSize on the hot path;
			// a failure here means the message is unencodable for
			// everyone on this socket.
			m.fail(err)
			return
		}
		// Coalesce the backlog into one write. When the queue momentarily
		// empties, yield once before flushing: callers blocked on the
		// scheduler get a chance to append their frames to this batch,
		// deepening it by several frames per syscall under load.
		yielded := false
	coalesce:
		for len(buf) < maxCoalescedWrite {
			select {
			case next := <-m.writeCh:
				buf, err = wire.Append(buf, next)
				if err != nil {
					m.fail(err)
					return
				}
			default:
				if !yielded {
					yielded = true
					runtime.Gosched()
					continue
				}
				break coalesce
			}
		}
		m.wmu.Lock()
		_, err = m.conn.Write(buf)
		m.wmu.Unlock()
		if err != nil {
			m.fail(err)
			return
		}
	}
}

// enqueue hands one frame to the transport: inline on the socket when
// the caller is alone on the connection (lowest latency), otherwise
// through the coalescing writer (fewest syscalls). Reports whether the
// frame went through the writer queue.
func (m *muxConn) enqueue(ctx context.Context, msg *wire.Message) (queued bool, err error) {
	if m.inflight.Load() <= 1 && m.wmu.TryLock() {
		werr := wire.Write(m.conn, msg)
		m.wmu.Unlock()
		if werr != nil {
			m.fail(werr)
			return false, m.failure()
		}
		return false, nil
	}
	select {
	case m.writeCh <- msg:
		return true, nil
	case <-m.dead:
		return false, m.failure()
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// roundTrip sends one request over the shared connection and waits for
// its demultiplexed reply. Context cancellation aborts only this stream:
// a best-effort CANCEL frame tells the server to stop the kernel, and
// sibling streams on the connection are untouched.
func (m *muxConn) roundTrip(ctx context.Context, msg *wire.Message) (*wire.Message, error) {
	id, ch := m.register()
	msg.Version = wire.VersionMux
	msg.Header.StreamID = id

	// An unencodable request (non-finite params) must fail this call
	// only, never the shared socket — and the check is a map walk, not
	// the full header encode FrameSize would cost.
	if err := wire.CheckEncodable(msg); err != nil {
		m.deregister(id)
		return nil, err
	}
	if m.c.link != nil {
		if size, err := wire.FrameSize(msg); err == nil {
			m.c.link.Transfer(size)
		}
	}

	queued, err := m.enqueue(ctx, msg)
	if err != nil {
		m.deregister(id)
		return nil, err
	}

	select {
	case reply := <-ch:
		replyChPool.Put(ch)
		m.inflight.Add(-1)
		if m.c.link != nil {
			if size, err := wire.FrameSize(reply); err == nil {
				m.c.link.Transfer(size)
			}
		}
		return reply, nil
	case <-m.dead:
		// The reply may have raced with the connection dying.
		select {
		case reply := <-ch:
			replyChPool.Put(ch)
			m.inflight.Add(-1)
			return reply, nil
		default:
		}
		m.deregister(id)
		return nil, m.failure()
	case <-ctx.Done():
		m.deregister(id)
		// Best-effort per-stream cancel: the server stops the kernel
		// and its (discarded) error reply frees the stream. If the
		// writer queue is full the wire deadline still bounds the
		// server side.
		cancel := &wire.Message{Version: wire.VersionMux, Type: wire.MsgCancel, Header: wire.Header{StreamID: id}}
		if !queued && m.wmu.TryLock() {
			// The invoke is already on the socket, so an inline cancel
			// cannot overtake it.
			err := wire.Write(m.conn, cancel)
			m.wmu.Unlock()
			if err != nil {
				m.fail(err)
			}
		} else {
			// A queued invoke means the cancel must follow it through
			// the writer queue or the server would see the cancel first
			// and ignore it.
			select {
			case m.writeCh <- cancel:
			default:
			}
		}
		return nil, ctx.Err()
	}
}
