// Package vclock provides scaled virtual clocks for accelerator simulation.
//
// The KaaS accelerator simulators express costs in modeled time (the time
// scale of the paper's hardware: hundreds of milliseconds of CUDA context
// creation, seconds of kernel execution). Running experiments at that scale
// would take hours, so the runtime executes against a Clock that maps
// modeled durations onto a scaled-down wall clock. A scale of 1000 means
// one modeled second passes in one wall millisecond.
//
// All components of the runtime take a Clock so that tests can use a large
// scale factor for speed, and so the server can run in real time when
// deployed as an actual service.
package vclock

import (
	"runtime"
	"sync"
	"time"
)

// Clock is the time source used by the KaaS runtime and the device
// simulators. Now and Sleep operate in modeled time.
type Clock interface {
	// Now returns the current modeled time.
	Now() time.Time

	// Sleep blocks for the given modeled duration.
	Sleep(d time.Duration)

	// AfterFunc calls f in its own goroutine after the given modeled
	// duration. The returned Timer can be used to cancel the call.
	AfterFunc(d time.Duration, f func()) Timer

	// Scale returns the number of modeled seconds that pass per wall
	// second. A real-time clock returns 1.
	Scale() float64
}

// Timer is a handle to a pending AfterFunc call.
type Timer interface {
	// Stop prevents the timer from firing. It reports whether the call
	// was stopped before it ran.
	Stop() bool
}

// Real returns a Clock backed directly by the wall clock (scale 1).
func Real() Clock { return realClock{} }

type realClock struct{}

var _ Clock = realClock{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }
func (realClock) Scale() float64        { return 1 }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return stdTimer{t: time.AfterFunc(d, f)}
}

type stdTimer struct{ t *time.Timer }

func (s stdTimer) Stop() bool { return s.t.Stop() }

// Scaled returns a Clock whose modeled time runs scale times faster than
// the wall clock. Modeled time starts at the wall time of creation so that
// timestamps remain recognizable. A scale of 1000 turns a modeled second
// into a wall millisecond.
func Scaled(scale float64) Clock {
	if scale <= 0 {
		scale = 1
	}
	return &scaledClock{
		scale: scale,
		epoch: time.Now(),
		wake:  make(chan struct{}, 1),
	}
}

type scaledClock struct {
	scale float64
	epoch time.Time

	// Pending AfterFunc timers, dispatched by a single goroutine per
	// clock: one spinner watching the earliest deadline costs far less
	// than a spinning goroutine per timer, which matters under load —
	// the scheduling engines re-arm a timer on every job arrival and
	// completion.
	mu      sync.Mutex
	timers  timerHeap
	wake    chan struct{}
	running bool
}

var _ Clock = (*scaledClock)(nil)

func (c *scaledClock) Now() time.Time {
	wall := time.Since(c.epoch)
	return c.epoch.Add(time.Duration(float64(wall) * c.scale))
}

// spinThreshold is the wall-time window near a deadline within which the
// scaled clock spins instead of sleeping. time.Sleep routinely overshoots
// by a millisecond or more (measured up to ~4 ms on loaded single-core
// hosts); at high scale factors that overshoot would inflate modeled
// durations by whole seconds, so precision matters more than the brief
// busy-wait costs.
const spinThreshold = 2 * time.Millisecond

func (c *scaledClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(c.toWall(d))
	sleepUntil(deadline)
}

// sleepUntil sleeps coarsely to near the wall deadline, then spins.
func sleepUntil(deadline time.Time) {
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return
		}
		if remaining > spinThreshold {
			time.Sleep(remaining - spinThreshold)
			continue
		}
		runtime.Gosched()
	}
}

// AfterFunc registers the callback on the clock's timer wheel. All of a
// clock's pending timers share one dispatcher goroutine that sleeps
// coarsely and spins across the last stretch before the earliest
// deadline, so callbacks fire within microseconds of their wall
// deadline at the cost of a single spinner, however many timers are
// pending. Callbacks run sequentially on the dispatcher goroutine (never
// on the caller's), so they must not block for long.
func (c *scaledClock) AfterFunc(d time.Duration, f func()) Timer {
	t := &wheelTimer{
		c:        c,
		deadline: time.Now().Add(c.toWall(d)),
		f:        f,
	}
	c.mu.Lock()
	c.timers.push(t)
	first := c.timers[0] == t
	if !c.running {
		c.running = true
		go c.dispatch()
		first = false
	}
	c.mu.Unlock()
	if first {
		// A new earliest deadline: poke the dispatcher out of its sleep
		// so it does not oversleep past it.
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
	return t
}

// dispatch runs a clock's due timers until none are pending.
func (c *scaledClock) dispatch() {
	var due []*wheelTimer
	for {
		due = due[:0]
		c.mu.Lock()
		now := time.Now()
		for len(c.timers) > 0 {
			t := c.timers[0]
			if t.stopped {
				c.timers.pop()
				continue
			}
			if t.deadline.After(now) {
				break
			}
			t.fired = true
			c.timers.pop()
			due = append(due, t)
		}
		if len(due) > 0 {
			c.mu.Unlock()
			for _, t := range due {
				t.f()
			}
			continue
		}
		if len(c.timers) == 0 {
			c.running = false
			c.mu.Unlock()
			return
		}
		next := c.timers[0].deadline
		c.mu.Unlock()

		if remaining := time.Until(next); remaining > spinThreshold {
			timer := time.NewTimer(remaining - spinThreshold)
			select {
			case <-timer.C:
			case <-c.wake:
				timer.Stop()
			}
		} else {
			select {
			case <-c.wake:
			default:
				runtime.Gosched()
			}
		}
	}
}

// wheelTimer is one pending AfterFunc registration on a scaled clock.
// Stopped entries stay in the heap and are discarded when they surface
// at the top — cheaper than mid-heap removal under the engines'
// constant re-arming.
type wheelTimer struct {
	c        *scaledClock
	deadline time.Time
	f        func()
	stopped  bool // guarded by c.mu
	fired    bool // guarded by c.mu
}

func (t *wheelTimer) Stop() bool {
	c := t.c
	c.mu.Lock()
	if t.stopped || t.fired {
		c.mu.Unlock()
		return false
	}
	// Marked only: the dispatcher discards stopped entries when they
	// surface at the top of the heap.
	t.stopped = true
	head := len(c.timers) > 0 && c.timers[0] == t
	c.mu.Unlock()
	if head {
		// The dispatcher is sleeping toward this timer's deadline; wake
		// it so it re-reads the heap (and can exit if nothing is left)
		// instead of holding its goroutine until the stale deadline.
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
	return true
}

// timerHeap is a min-heap of pending timers ordered by wall deadline.
type timerHeap []*wheelTimer

func (h *timerHeap) push(t *wheelTimer) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h)[i].deadline.Before((*h)[parent].deadline) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

// pop removes the earliest timer.
func (h *timerHeap) pop() {
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	(*h)[n] = nil
	*h = (*h)[:n]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && (*h)[left].deadline.Before((*h)[smallest].deadline) {
			smallest = left
		}
		if right < n && (*h)[right].deadline.Before((*h)[smallest].deadline) {
			smallest = right
		}
		if smallest == i {
			return
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}

func (c *scaledClock) Scale() float64 { return c.scale }

func (c *scaledClock) toWall(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	w := time.Duration(float64(d) / c.scale)
	if w <= 0 {
		w = time.Nanosecond
	}
	return w
}

// Manual is a Clock driven entirely by explicit Advance calls, for
// deterministic tests. Sleep blocks until enough virtual time has been
// advanced by another goroutine.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*manualWaiter
}

type manualWaiter struct {
	deadline time.Time
	fire     func()        // non-nil for AfterFunc waiters
	ch       chan struct{} // non-nil for Sleep waiters
	stopped  bool
}

var _ Clock = (*Manual)(nil)

// NewManual returns a Manual clock starting at the given time.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now returns the current manual time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Scale reports 0 to indicate that manual time is not tied to wall time.
func (m *Manual) Scale() float64 { return 0 }

// Sleep blocks until Advance has moved the clock d past the current time.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	w := &manualWaiter{deadline: m.now.Add(d), ch: make(chan struct{})}
	m.waiters = append(m.waiters, w)
	m.mu.Unlock()
	<-w.ch
}

// AfterFunc schedules f to run when the clock has advanced past d.
func (m *Manual) AfterFunc(d time.Duration, f func()) Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &manualWaiter{deadline: m.now.Add(d), fire: f}
	if d <= 0 {
		go f()
		w.stopped = true
		return manualTimer{m: m, w: w}
	}
	m.waiters = append(m.waiters, w)
	return manualTimer{m: m, w: w}
}

type manualTimer struct {
	m *Manual
	w *manualWaiter
}

func (t manualTimer) Stop() bool {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	if t.w.stopped {
		return false
	}
	t.w.stopped = true
	return true
}

// Advance moves the clock forward by d, releasing any sleepers and firing
// any timers whose deadlines are reached.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	var due []*manualWaiter
	remaining := m.waiters[:0]
	for _, w := range m.waiters {
		switch {
		case w.stopped:
			// drop
		case !w.deadline.After(m.now):
			due = append(due, w)
		default:
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()

	for _, w := range due {
		if w.ch != nil {
			close(w.ch)
		}
		if w.fire != nil {
			w.fire()
		}
	}
}
