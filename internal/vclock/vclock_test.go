package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := Real()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Real().Now() = %v, want within [%v, %v]", got, before, after)
	}
	if c.Scale() != 1 {
		t.Errorf("Real().Scale() = %v, want 1", c.Scale())
	}
}

func TestRealClockSleep(t *testing.T) {
	c := Real()
	start := time.Now()
	c.Sleep(10 * time.Millisecond)
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("slept %v, want >= 10ms", elapsed)
	}
}

func TestRealClockAfterFunc(t *testing.T) {
	c := Real()
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("AfterFunc did not fire within 1s")
	}
}

func TestRealClockAfterFuncStop(t *testing.T) {
	c := Real()
	var fired atomic.Bool
	timer := c.AfterFunc(time.Hour, func() { fired.Store(true) })
	if !timer.Stop() {
		t.Error("Stop() = false, want true for pending timer")
	}
	if fired.Load() {
		t.Error("timer fired despite Stop")
	}
}

func TestScaledClockAdvancesFaster(t *testing.T) {
	c := Scaled(1000)
	start := c.Now()
	time.Sleep(5 * time.Millisecond)
	elapsed := c.Now().Sub(start)
	// 5ms wall at scale 1000 is 5 modeled seconds.
	if elapsed < 4*time.Second {
		t.Errorf("modeled elapsed = %v, want >= 4s", elapsed)
	}
}

func TestScaledClockSleepIsShort(t *testing.T) {
	c := Scaled(1000)
	start := time.Now()
	c.Sleep(2 * time.Second) // modeled: should be ~2ms wall
	wall := time.Since(start)
	if wall > 500*time.Millisecond {
		t.Errorf("scaled sleep took %v wall time, want ~2ms", wall)
	}
}

func TestScaledClockSleepNonPositive(t *testing.T) {
	c := Scaled(1000)
	start := time.Now()
	c.Sleep(0)
	c.Sleep(-time.Second)
	if wall := time.Since(start); wall > 100*time.Millisecond {
		t.Errorf("non-positive sleeps took %v", wall)
	}
}

func TestScaledClockAfterFunc(t *testing.T) {
	c := Scaled(1000)
	done := make(chan struct{})
	c.AfterFunc(time.Second, func() { close(done) }) // ~1ms wall
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("scaled AfterFunc did not fire")
	}
}

func TestScaledClockDefaultsOnBadScale(t *testing.T) {
	c := Scaled(-5)
	if c.Scale() != 1 {
		t.Errorf("Scale() = %v, want 1 for invalid input", c.Scale())
	}
}

func TestManualClockSleepBlocksUntilAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Sleep(10 * time.Second)
		done.Store(true)
	}()
	time.Sleep(5 * time.Millisecond)
	if done.Load() {
		t.Fatal("Sleep returned before Advance")
	}
	m.Advance(9 * time.Second)
	time.Sleep(5 * time.Millisecond)
	if done.Load() {
		t.Fatal("Sleep returned after partial Advance")
	}
	m.Advance(time.Second)
	wg.Wait()
	if !done.Load() {
		t.Fatal("Sleep did not return after full Advance")
	}
}

func TestManualClockAfterFunc(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var count atomic.Int32
	m.AfterFunc(5*time.Second, func() { count.Add(1) })
	m.Advance(4 * time.Second)
	if count.Load() != 0 {
		t.Fatal("AfterFunc fired early")
	}
	m.Advance(time.Second)
	if count.Load() != 1 {
		t.Fatalf("AfterFunc fired %d times, want 1", count.Load())
	}
	m.Advance(time.Hour)
	if count.Load() != 1 {
		t.Fatalf("AfterFunc fired %d times after extra advance, want 1", count.Load())
	}
}

func TestManualClockAfterFuncStop(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var fired atomic.Bool
	timer := m.AfterFunc(5*time.Second, func() { fired.Store(true) })
	if !timer.Stop() {
		t.Error("Stop() = false, want true")
	}
	m.Advance(time.Minute)
	if fired.Load() {
		t.Error("stopped timer fired")
	}
	if timer.Stop() {
		t.Error("second Stop() = true, want false")
	}
}

func TestManualClockAfterFuncImmediate(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	m.AfterFunc(0, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("immediate AfterFunc never fired")
	}
}

func TestManualClockNowAdvances(t *testing.T) {
	start := time.Unix(100, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Errorf("Now() = %v, want %v", m.Now(), start)
	}
	m.Advance(42 * time.Second)
	want := start.Add(42 * time.Second)
	if !m.Now().Equal(want) {
		t.Errorf("Now() = %v, want %v", m.Now(), want)
	}
	if m.Scale() != 0 {
		t.Errorf("Manual Scale() = %v, want 0", m.Scale())
	}
}
