package cplane_test

import (
	"context"
	"encoding/json"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"kaas"
	"kaas/internal/client"
	"kaas/internal/cplane"
	"kaas/internal/vclock"
	"kaas/internal/wire"
)

// fakePeer is a minimal wire endpoint that answers MsgControl frames
// with its own gossip — or, while muted, with an error — so heartbeat
// outcomes can be scripted without a real server.
type fakePeer struct {
	ln    net.Listener
	name  string
	muted atomic.Bool
	seq   atomic.Uint64
}

func newFakePeer(t *testing.T, name string) *fakePeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	f := &fakePeer{ln: ln, name: name}
	go f.serve()
	t.Cleanup(func() { ln.Close() })
	return f
}

func (f *fakePeer) addr() string { return f.ln.Addr().String() }

func (f *fakePeer) serve() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			for {
				msg, err := wire.Read(conn)
				if err != nil {
					return
				}
				if msg.Type != wire.MsgControl || f.muted.Load() {
					wire.Write(conn, &wire.Message{Type: wire.MsgError, Header: wire.Header{
						Error: "muted", Code: wire.CodeInternal,
					}})
					continue
				}
				body, _ := json.Marshal(&cplane.Gossip{
					Node: f.name, Addr: f.addr(), Seq: f.seq.Add(1),
				})
				wire.Write(conn, &wire.Message{Type: wire.MsgControlAck, Body: body})
			}
		}()
	}
}

// waitFor polls cond until it holds or the wall deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// peerRow finds the membership row for the given address.
func peerRow(n *cplane.Node, addr string) (cplane.Member, bool) {
	for _, m := range n.Members() {
		if m.Addr == addr {
			return m, true
		}
	}
	return cplane.Member{}, false
}

// TestHeartbeatFlapExactlyOnce drives a peer through miss/resume cycles
// on a manual clock and asserts the node records exactly one transition
// per state change: down once when SuspectAfter misses accumulate (no
// per-miss thrash), up once when heartbeats resume.
func TestHeartbeatFlapExactlyOnce(t *testing.T) {
	fake := newFakePeer(t, "flappy")
	clock := vclock.NewManual(time.Unix(0, 0))
	n := cplane.NewNode(cplane.Config{
		Name:           "observer",
		Clock:          clock,
		HeartbeatEvery: time.Second,
		SuspectAfter:   2,
	})
	t.Cleanup(n.Close)

	// Join fires the first beat immediately (no clock advance needed).
	// Member.Beats increments only after the next beat's timer is armed,
	// so once it ticks, one clock advance fires exactly one more beat —
	// the stepping below is deterministic.
	n.Join(fake.addr())
	row := func() cplane.Member {
		m, ok := peerRow(n, fake.addr())
		if !ok {
			t.Fatal("peer missing from membership view")
		}
		return m
	}
	waitFor(t, "initial beat", func() bool { return row().Beats >= 1 })
	if m := row(); !m.Alive || m.Ups != 1 {
		t.Fatalf("after admission: alive=%v ups=%d, want alive with 1 up", m.Alive, m.Ups)
	}

	beatOnce := func() {
		t.Helper()
		before := row().Beats
		clock.Advance(time.Second)
		waitFor(t, "heartbeat cycle", func() bool { return row().Beats == before+1 })
	}

	fake.muted.Store(true)
	beatOnce() // miss 1: suspect, but no transition yet
	if m := row(); !m.Alive || m.Downs != 0 {
		t.Fatalf("after one miss: alive=%v downs=%d, want alive with 0 downs", m.Alive, m.Downs)
	}
	beatOnce() // miss 2 = SuspectAfter: exactly one down transition
	if m := row(); m.Alive || m.Downs != 1 {
		t.Fatalf("after two misses: alive=%v downs=%d, want down with 1 transition", m.Alive, m.Downs)
	}
	beatOnce() // misses 3 and 4: already down, no further transitions
	beatOnce()
	if m := row(); m.Downs != 1 || m.Ups != 1 {
		t.Fatalf("after repeated misses: downs=%d ups=%d, want exactly 1/1", m.Downs, m.Ups)
	}

	fake.muted.Store(false)
	beatOnce() // resume: exactly one up transition
	if m := row(); !m.Alive || m.Ups != 2 {
		t.Fatalf("after resume: alive=%v ups=%d, want re-admitted once", m.Alive, m.Ups)
	}
	beatOnce() // still alive: no further transitions
	beatOnce()
	if m := row(); m.Downs != 1 || m.Ups != 2 {
		t.Fatalf("after flap settled: downs=%d ups=%d, want exactly 1/2", m.Downs, m.Ups)
	}
}

// TestReportUnreachableSingleTransition: a router-reported failure marks
// the peer down exactly once, repeated reports add nothing, and the next
// successful heartbeat re-admits it.
func TestReportUnreachableSingleTransition(t *testing.T) {
	fake := newFakePeer(t, "gone")
	clock := vclock.NewManual(time.Unix(0, 0))
	n := cplane.NewNode(cplane.Config{Name: "observer", Clock: clock, HeartbeatEvery: time.Second})
	t.Cleanup(n.Close)
	n.Join(fake.addr())
	row := func() cplane.Member {
		m, _ := peerRow(n, fake.addr())
		return m
	}
	waitFor(t, "admission", func() bool { return row().Beats >= 1 })

	n.ReportUnreachable(fake.addr())
	n.ReportUnreachable(fake.addr())
	if m := row(); m.Alive || m.Downs != 1 {
		t.Fatalf("after ReportUnreachable x2: alive=%v downs=%d, want down with 1 transition", m.Alive, m.Downs)
	}
	// Heartbeats still answer, so the next beat re-admits the peer.
	before := row().Beats
	clock.Advance(time.Second)
	waitFor(t, "re-admission", func() bool { return row().Beats == before+1 })
	if m := row(); !m.Alive || m.Ups != 2 || m.Downs != 1 {
		t.Fatalf("after heartbeat resumes: alive=%v ups=%d downs=%d, want alive 2/1", m.Alive, m.Ups, m.Downs)
	}
}

// newClusterNode builds a wire-serving platform joined to the given seed
// peers.
func newClusterNode(t *testing.T, name string, peers ...string) *kaas.Platform {
	t.Helper()
	p, err := kaas.New(
		kaas.WithHostName(name),
		kaas.WithAccelerators(kaas.TeslaP100),
		kaas.WithTimeScale(2000),
		kaas.WithListenAddr("127.0.0.1:0"),
		kaas.WithClusterNode(name, peers...),
	)
	if err != nil {
		t.Fatalf("New %s: %v", name, err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestGossipConvergesMembershipAndKernels: three nodes joined in a chain
// (c→b→a) converge to a full mesh through gossiped peer lists, and a
// kernel registered on one node propagates to all of them.
func TestGossipConvergesMembershipAndKernels(t *testing.T) {
	a := newClusterNode(t, "node-a")
	b := newClusterNode(t, "node-b", a.Addr())
	c := newClusterNode(t, "node-c", b.Addr())

	for _, p := range []*kaas.Platform{a, b, c} {
		p := p
		waitFor(t, "full mesh on "+p.ClusterNode().Name(), func() bool {
			alive := 0
			for _, m := range p.ClusterNode().Members() {
				if !m.Self && m.Alive {
					alive++
				}
			}
			return alive == 2
		})
	}

	if err := a.RegisterByName("mci"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for _, p := range []*kaas.Platform{b, c} {
		p := p
		waitFor(t, "kernel propagation to "+p.ClusterNode().Name(), func() bool {
			for _, name := range p.Kernels() {
				if name == "mci" {
					return true
				}
			}
			return false
		})
	}

	// The status envelope answers over the wire too (the kaasctl path).
	cl, err := a.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()
	payload, _ := json.Marshal(&cplane.Envelope{Type: cplane.ControlStatus})
	body, err := cl.ControlContext(context.Background(), payload)
	if err != nil {
		t.Fatalf("ControlContext: %v", err)
	}
	var st cplane.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if st.Node != "node-a" || len(st.Members) != 3 {
		t.Fatalf("status = node %q with %d members, want node-a with 3", st.Node, len(st.Members))
	}
	if !st.Members[0].Self {
		t.Error("status does not list self first")
	}
}

// TestRouterFailsOverOnNodeDeath: an observer-backed router re-dispatches
// an invocation that hits a freshly killed node to a live peer, marks the
// dead node unreachable, and counts the failover.
func TestRouterFailsOverOnNodeDeath(t *testing.T) {
	a := newClusterNode(t, "node-a")
	b := newClusterNode(t, "node-b", a.Addr())

	obs := cplane.NewNode(cplane.Config{Name: "router"})
	t.Cleanup(obs.Close)
	obs.Join(a.Addr())
	obs.Join(b.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := obs.WaitMembers(ctx, 2); err != nil {
		t.Fatalf("WaitMembers: %v", err)
	}

	budget := client.NewRetryBudget(8, 0.5)
	r := cplane.NewRouter(cplane.RouterConfig{Node: obs, Budget: budget, Idempotent: true})
	t.Cleanup(r.Close)
	if err := r.Register(ctx, "mci"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := r.Invoke(ctx, "mci", kaas.Params{"n": 1000}, nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}

	// Kill node-a abruptly. Ties break by name, so with equal load the
	// router picks node-a first, observes the connection failure, and
	// must fail over to node-b.
	a.Close()
	res, err := r.Invoke(ctx, "mci", kaas.Params{"n": 1000}, nil)
	if err != nil {
		t.Fatalf("Invoke after kill: %v", err)
	}
	if res == nil || res.Values["estimate"] == 0 {
		t.Error("failover result missing")
	}
	st := r.Stats()
	if st.FailedOver < 1 || st.Redispatches < 1 {
		t.Errorf("router stats = %+v, want at least one failover", st)
	}
	if m, ok := peerRow(obs, a.Addr()); !ok || m.Alive {
		t.Error("dead node still alive in membership view")
	}

	// Subsequent invocations skip the dead node outright: no further
	// re-dispatches accrue.
	before := r.Stats().Redispatches
	for i := 0; i < 3; i++ {
		if _, err := r.Invoke(ctx, "mci", kaas.Params{"n": 1000}, nil); err != nil {
			t.Fatalf("Invoke %d after down-mark: %v", i, err)
		}
	}
	if after := r.Stats().Redispatches; after != before {
		t.Errorf("%d re-dispatches against a known-dead node", after-before)
	}
}

// TestRouterSkipsDrainingNode: invocations keep succeeding across a
// graceful drain — either the drain state has gossiped (the node is
// skipped) or the race surfaces a typed UNAVAILABLE that re-dispatches
// to the survivor.
func TestRouterSkipsDrainingNode(t *testing.T) {
	a := newClusterNode(t, "node-a")
	b := newClusterNode(t, "node-b", a.Addr())

	obs := cplane.NewNode(cplane.Config{Name: "router"})
	t.Cleanup(obs.Close)
	obs.Join(a.Addr())
	obs.Join(b.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := obs.WaitMembers(ctx, 2); err != nil {
		t.Fatalf("WaitMembers: %v", err)
	}
	r := cplane.NewRouter(cplane.RouterConfig{Node: obs, Idempotent: true})
	t.Cleanup(r.Close)
	if err := r.Register(ctx, "mci"); err != nil {
		t.Fatalf("Register: %v", err)
	}

	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.Invoke(ctx, "mci", kaas.Params{"n": 1000}, nil); err != nil {
			t.Fatalf("Invoke %d during drain: %v", i, err)
		}
	}
}

// TestRouterUnknownKernel surfaces a terminal error instead of spinning
// across members.
func TestRouterUnknownKernel(t *testing.T) {
	a := newClusterNode(t, "node-a")
	obs := cplane.NewNode(cplane.Config{Name: "router"})
	t.Cleanup(obs.Close)
	obs.Join(a.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := obs.WaitMembers(ctx, 1); err != nil {
		t.Fatalf("WaitMembers: %v", err)
	}
	r := cplane.NewRouter(cplane.RouterConfig{Node: obs})
	t.Cleanup(r.Close)
	if _, err := r.Invoke(ctx, "ghost", nil, nil); err == nil {
		t.Fatal("unknown kernel succeeded")
	}
}

// TestControlHandlerRejectsGarbage: malformed control payloads produce
// typed errors, not panics.
func TestControlHandlerRejectsGarbage(t *testing.T) {
	n := cplane.NewNode(cplane.Config{Name: "n"})
	t.Cleanup(n.Close)
	if _, err := n.HandleControl([]byte("not json")); err == nil {
		t.Error("garbage payload accepted")
	}
	if _, err := n.HandleControl([]byte(`{"type":"nope"}`)); err == nil {
		t.Error("unknown control type accepted")
	}
	if _, err := n.HandleControl([]byte(`{"type":"gossip"}`)); err == nil {
		t.Error("gossip without payload accepted")
	}
}
