package cplane

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kaas/internal/client"
	"kaas/internal/kernels"
	"kaas/internal/wire"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Node supplies the membership and health view the router routes
	// on: a serving cluster node, or an observer Node (empty Addr, nil
	// Local) joined to the cluster from the client side.
	Node *Node
	// Budget is the shared cross-host re-dispatch budget. Every
	// failover spends one token, every success credits tokens back;
	// when the bucket is empty failovers stop and the last error
	// surfaces. Nil means unbounded.
	Budget *client.RetryBudget
	// Idempotent declares the routed workload safe to re-dispatch after
	// a connection-level failure, where the dead node may or may not
	// have executed the request. Typed pre-execution errors
	// (OVERLOADED, UNAVAILABLE) re-dispatch regardless.
	Idempotent bool
	// DialOptions are applied to the clients the router opens to
	// members.
	DialOptions []client.Option
}

// RouterStats is a snapshot of the router's dispatch counters.
type RouterStats struct {
	// Dispatches counts invocations routed (first attempts).
	Dispatches uint64 `json:"dispatches"`
	// Redispatches counts cross-host failover attempts.
	Redispatches uint64 `json:"redispatches"`
	// FailedOver counts invocations that succeeded on a node other than
	// the one first picked.
	FailedOver uint64 `json:"failedOver"`
	// BudgetExhausted counts failovers skipped because the shared retry
	// budget was empty.
	BudgetExhausted uint64 `json:"budgetExhausted"`
	// Unroutable counts invocations that found no eligible node.
	Unroutable uint64 `json:"unroutable"`
	// TenantSkips counts picks that bypassed a member because the
	// invoking tenant had saturated it (per gossiped tenant health).
	TenantSkips uint64 `json:"tenantSkips,omitempty"`
}

// Router dispatches invocations across the cluster using the health
// view its Node gossips: it picks the least-loaded node that is alive,
// not draining, serves the kernel, and has an eligible device of the
// kernel's kind, and fails retryable typed errors over to the next
// healthy peer under the shared retry budget.
type Router struct {
	cfg RouterConfig

	dispatches      atomic.Uint64
	redispatches    atomic.Uint64
	failedOver      atomic.Uint64
	budgetExhausted atomic.Uint64
	unroutable      atomic.Uint64
	tenantSkips     atomic.Uint64

	mu       sync.Mutex
	clients  map[string]*client.Client
	inflight map[string]int
	closed   bool
}

// NewRouter creates a router over the node's membership view.
func NewRouter(cfg RouterConfig) *Router {
	return &Router{
		cfg:      cfg,
		clients:  make(map[string]*client.Client),
		inflight: make(map[string]int),
	}
}

// Close closes the router's member clients. The underlying Node is not
// closed; it may outlive the router.
func (r *Router) Close() {
	r.mu.Lock()
	r.closed = true
	clients := make([]*client.Client, 0, len(r.clients))
	for _, c := range r.clients {
		clients = append(clients, c)
	}
	r.clients = make(map[string]*client.Client)
	r.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}

// Stats returns a snapshot of the router's dispatch counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Dispatches:      r.dispatches.Load(),
		Redispatches:    r.redispatches.Load(),
		FailedOver:      r.failedOver.Load(),
		BudgetExhausted: r.budgetExhausted.Load(),
		Unroutable:      r.unroutable.Load(),
		TenantSkips:     r.tenantSkips.Load(),
	}
}

// Register registers a library kernel on every live member, so a
// subsequent Invoke can land anywhere. Gossip then keeps late joiners
// in sync. It succeeds when at least one member accepted the
// registration.
func (r *Router) Register(ctx context.Context, kernel string) error {
	var ok int
	var lastErr error
	for _, m := range r.cfg.Node.Members() {
		if m.Addr == "" || !m.Alive {
			continue
		}
		if err := r.clientFor(m.Addr).RegisterContext(ctx, kernel); err != nil {
			lastErr = fmt.Errorf("cplane: register %q on %s: %w", kernel, m.Node, err)
			continue
		}
		r.cfg.Node.noteKernel(m.Addr, kernel)
		ok++
	}
	if ok == 0 {
		if lastErr != nil {
			return lastErr
		}
		return fmt.Errorf("cplane: register %q: no live members", kernel)
	}
	return nil
}

// Invoke dispatches one invocation, failing over across members until
// it succeeds, the candidates run out, or the retry budget does.
func (r *Router) Invoke(ctx context.Context, kernel string, params kernels.Params, data []byte) (*client.Result, error) {
	return r.InvokeTenant(ctx, "", kernel, params, data)
}

// InvokeTenant is Invoke with a tenant identity: the tenant rides the
// wire header for server-side fair queueing, and the pick prefers
// members the tenant has not saturated (per gossiped tenant health),
// falling back to saturated ones only when no other candidate exists.
func (r *Router) InvokeTenant(ctx context.Context, tenant, kernel string, params kernels.Params, data []byte) (*client.Result, error) {
	kind := kindOf(kernel)
	tried := make(map[string]bool)
	var lastErr error
	for hop := 0; ; hop++ {
		m, ok := r.pick(tenant, kernel, kind, tried)
		if !ok {
			if lastErr != nil {
				return nil, lastErr
			}
			r.unroutable.Add(1)
			return nil, fmt.Errorf("cplane: no live node serves kernel %q", kernel)
		}
		if hop == 0 {
			r.dispatches.Add(1)
		} else {
			if r.cfg.Budget != nil && !r.cfg.Budget.Spend() {
				r.budgetExhausted.Add(1)
				return nil, lastErr
			}
			r.redispatches.Add(1)
		}
		tried[m.Addr] = true
		res, err := r.dispatch(ctx, m.Addr, tenant, kernel, params, data)
		if err == nil {
			if r.cfg.Budget != nil {
				r.cfg.Budget.Credit()
			}
			if hop > 0 {
				r.failedOver.Add(1)
			}
			return res, nil
		}
		lastErr = fmt.Errorf("cplane: node %s: %w", m.Node, err)
		if client.IsConnFailure(err) {
			// The node vanished mid-request: mark it down now rather
			// than waiting for missed heartbeats, so sibling
			// invocations stop picking it.
			r.cfg.Node.ReportUnreachable(m.Addr)
		}
		if ctx.Err() != nil || !r.redispatchable(err) {
			return nil, lastErr
		}
	}
}

// dispatch runs one attempt on the member at addr, tracking per-member
// in-flight load for the least-loaded pick.
func (r *Router) dispatch(ctx context.Context, addr, tenant, kernel string, params kernels.Params, data []byte) (*client.Result, error) {
	c := r.clientFor(addr)
	r.addInflight(addr, 1)
	defer r.addInflight(addr, -1)
	return c.InvokeTenantContext(ctx, tenant, kernel, params, data)
}

// redispatchable decides whether a failed attempt may move to another
// node. Typed OVERLOADED and UNAVAILABLE errors are always safe: the
// server reported them before executing the kernel. A connection-level
// failure is ambiguous — the request may have executed on the node that
// died — so it re-dispatches only for workloads declared idempotent.
// Everything else (deadline expiry, unknown kernel, internal errors)
// fails in place.
func (r *Router) redispatchable(err error) bool {
	var re *client.RemoteError
	if errors.As(err, &re) {
		return re.Code == wire.CodeOverloaded || re.Code == wire.CodeUnavailable
	}
	return r.cfg.Idempotent && client.IsConnFailure(err)
}

// pick selects the untried member with the least router-local in-flight
// load among those that are alive, not draining, serve the kernel, and
// have an eligible device of its kind. Ties break by node name so
// routing is deterministic. Members the invoking tenant has saturated
// (per gossiped tenant health) are skipped on a first pass and only
// reconsidered when no unsaturated candidate exists — a saturated
// member would queue or shed the tenant's request, but it still beats
// no member at all.
func (r *Router) pick(tenant, kernel, kind string, tried map[string]bool) (Member, bool) {
	members := r.cfg.Node.Members()
	r.mu.Lock()
	defer r.mu.Unlock()
	best := -1
	bestLoad := 0
	skippedSaturated := false
	for pass := 0; pass < 2 && best == -1; pass++ {
		for i, m := range members {
			if m.Addr == "" || tried[m.Addr] || !m.Alive || m.Draining {
				continue
			}
			if !containsString(m.Kernels, kernel) {
				continue
			}
			if kind != "" && m.Eligible[kind] == 0 {
				continue
			}
			if pass == 0 && tenant != "" && m.Tenants[tenant].Saturated {
				skippedSaturated = true
				continue
			}
			load := r.inflight[m.Addr]
			if best == -1 || load < bestLoad ||
				(load == bestLoad && m.Node < members[best].Node) {
				best, bestLoad = i, load
			}
		}
		if pass == 0 && best != -1 && skippedSaturated {
			// Bypassed at least one saturated member in favor of an
			// unsaturated one (the fallback pass, by contrast, uses
			// saturated members and counts nothing).
			r.tenantSkips.Add(1)
		}
		if !skippedSaturated {
			break // second pass could not add candidates
		}
	}
	if best == -1 {
		return Member{}, false
	}
	return members[best], true
}

// clientFor returns (creating on first use) the shared client for one
// member address.
func (r *Router) clientFor(addr string) *client.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.clients[addr]
	if c == nil {
		c = client.Dial(addr, r.cfg.DialOptions...)
		if r.closed {
			c.Close()
		} else {
			r.clients[addr] = c
		}
	}
	return c
}

// addInflight adjusts the router-local in-flight count for addr.
func (r *Router) addInflight(addr string, delta int) {
	r.mu.Lock()
	r.inflight[addr] += delta
	r.mu.Unlock()
}

// kindOf resolves a library kernel's device kind name, or "" for
// kernels the library does not know (eligibility is then not checked).
func kindOf(kernel string) string {
	k, err := kernels.ByName(kernel)
	if err != nil {
		return ""
	}
	return k.Kind().String()
}

// containsString reports whether list contains s.
func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
