// Package cplane is the wire-backed cluster control plane: kaasd nodes
// join each other over the KaaS wire protocol (MsgControl frames on the
// existing transport), exchange modeled-time heartbeats, gossip
// per-node health summaries (drain state, in-flight load, shed rate,
// open-breaker counts per device kind), and propagate kernel
// registrations cluster-wide. On top of the membership view, Router
// dispatches invocations to the least-loaded healthy node and fails
// retryable typed errors over to peers under a shared retry budget.
//
// Membership is symmetric and gossip-driven: a node only needs one seed
// peer — its first heartbeat introduces it (name and advertised
// address) to the receiver, which admits it and starts heartbeating
// back. Nodes that advertise no address (observers, e.g. a client-side
// Router) receive the full gossip exchange but are never admitted to
// the routing set.
//
// Failure detection is deliberately boring: a peer that misses
// SuspectAfter consecutive heartbeats is marked down exactly once (no
// per-miss thrash) and re-admitted exactly once on its next successful
// exchange. A router that observes a connection-level failure can
// short-circuit detection with ReportUnreachable.
package cplane

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"kaas/internal/client"
	"kaas/internal/core"
	"kaas/internal/kernels"
	"kaas/internal/vclock"
)

// Control envelope types carried in MsgControl payloads.
const (
	// ControlGossip is a heartbeat: the body carries the sender's
	// Gossip, the reply carries the receiver's.
	ControlGossip = "gossip"
	// ControlStatus asks the receiving node for its membership view
	// (kaasctl cluster status).
	ControlStatus = "status"
)

// Envelope frames one control-plane request.
type Envelope struct {
	// Type selects the request (ControlGossip or ControlStatus).
	Type string `json:"type"`
	// Gossip is the sender's health summary on ControlGossip requests.
	Gossip *Gossip `json:"gossip,omitempty"`
}

// Gossip is one node's self-reported health summary. It rides
// MsgControl frames as JSON in both directions of a heartbeat, so every
// exchange refreshes both ends' view of each other.
type Gossip struct {
	// Node is the sender's cluster-unique name.
	Node string `json:"node"`
	// Addr is the sender's advertised wire address. Empty for
	// observers, which are never admitted to the routing set.
	Addr string `json:"addr,omitempty"`
	// Seq increases with every summary the sender builds.
	Seq uint64 `json:"seq"`
	// Draining reports the sender is shutting down (or closed) and must
	// not receive new work.
	Draining bool `json:"draining,omitempty"`
	// InFlight is the sender's admitted in-flight invocation count.
	InFlight int `json:"inFlight"`
	// ShedRate is the sender's admission-control rejection rate in
	// sheds per modeled second since its previous summary.
	ShedRate float64 `json:"shedRate,omitempty"`
	// Eligible maps device-kind name to the number of devices placement
	// may currently use on the sender.
	Eligible map[string]int `json:"eligible,omitempty"`
	// OpenBreakers maps device-kind name to the sender's open-breaker
	// count.
	OpenBreakers map[string]int `json:"openBreakers,omitempty"`
	// Kernels lists the kernel names registered on the sender. Peers
	// adopt library kernels they are missing, propagating registrations
	// cluster-wide without a coordinator.
	Kernels []string `json:"kernels,omitempty"`
	// Tenants maps tenant name to the sender's per-tenant load summary
	// (only tenants with live load or a saturated bound are listed), so
	// routers can skip members a tenant has already saturated.
	Tenants map[string]core.TenantHealth `json:"tenants,omitempty"`
	// Peers lists the wire addresses of the members the sender knows,
	// so membership converges transitively: a node that joins one seed
	// is introduced to the whole cluster within a heartbeat round.
	Peers []string `json:"peers,omitempty"`
}

// Member is one row of a node's membership view.
type Member struct {
	// Node is the member's name ("?" until its first gossip arrives).
	Node string `json:"node"`
	// Addr is the member's wire address (empty for the local observer).
	Addr string `json:"addr"`
	// Self marks the local node's own row.
	Self bool `json:"self,omitempty"`
	// Alive reports the member answered its most recent heartbeat.
	Alive bool `json:"alive"`
	// Draining mirrors the member's last gossiped drain state.
	Draining bool `json:"draining,omitempty"`
	// InFlight mirrors the member's last gossiped in-flight count.
	InFlight int `json:"inFlight"`
	// ShedRate mirrors the member's last gossiped shed rate.
	ShedRate float64 `json:"shedRate,omitempty"`
	// Eligible mirrors the member's last gossiped per-kind eligible
	// device counts.
	Eligible map[string]int `json:"eligible,omitempty"`
	// OpenBreakers mirrors the member's last gossiped per-kind
	// open-breaker counts.
	OpenBreakers map[string]int `json:"openBreakers,omitempty"`
	// Kernels mirrors the member's last gossiped kernel names.
	Kernels []string `json:"kernels,omitempty"`
	// Tenants mirrors the member's last gossiped per-tenant load.
	Tenants map[string]core.TenantHealth `json:"tenants,omitempty"`
	// Downs counts alive→down transitions observed for this member.
	Downs uint64 `json:"downs,omitempty"`
	// Ups counts down→alive transitions (including first admission).
	Ups uint64 `json:"ups,omitempty"`
	// Beats counts completed heartbeat exchanges (hit or miss) with this
	// member. Tests step the clock one heartbeat at a time by watching
	// it; kaasctl surfaces it as a liveness odometer.
	Beats uint64 `json:"beats,omitempty"`
}

// Status is the reply to a ControlStatus request.
type Status struct {
	// Node is the answering node's name.
	Node string `json:"node"`
	// Members is the answering node's membership view, self first, then
	// peers sorted by name.
	Members []Member `json:"members"`
}

// Config configures a Node.
type Config struct {
	// Name is the node's cluster-unique name.
	Name string
	// Addr is the advertised wire address of the node's TCP endpoint.
	// Empty makes the node an observer: it heartbeats peers and tracks
	// membership but is never routed to and never heartbeated back.
	Addr string
	// Clock drives heartbeat scheduling in modeled time.
	Clock vclock.Clock
	// Local is the node's serving core (its health feeds the node's
	// gossip). Nil for observers.
	Local *core.Server
	// HeartbeatEvery is the modeled interval between heartbeats to each
	// peer (default 1s).
	HeartbeatEvery time.Duration
	// SuspectAfter is how many consecutive missed heartbeats mark a
	// peer down (default 2).
	SuspectAfter int
	// HeartbeatTimeout bounds each heartbeat RPC in wall time (default
	// 1s): heartbeats are tiny, so a peer that cannot answer quickly is
	// as good as down.
	HeartbeatTimeout time.Duration
	// DialOptions are applied to the clients the node opens to peers.
	DialOptions []client.Option
	// Logger receives membership transitions. Nil discards.
	Logger *slog.Logger
}

// Node is one cluster member: it heartbeats its peers, serves their
// heartbeats and status queries through HandleControl, and maintains
// the membership view Router routes on.
type Node struct {
	cfg   Config
	clock vclock.Clock
	log   *slog.Logger

	mu       sync.Mutex
	peers    map[string]*peer // keyed by advertised address
	closed   bool
	seq      uint64
	lastShed uint64    // cumulative sheds at the previous summary
	lastBeat time.Time // modeled time of the previous summary
}

// peer is the node's private state for one remote member.
type peer struct {
	addr   string
	name   string
	c      *client.Client
	alive  bool
	misses int
	downs  uint64
	ups    uint64
	beats  uint64
	last   Gossip
	timer  vclock.Timer // pending heartbeat, cancelled on Close
}

// NewNode creates a node and returns it without contacting anyone; call
// Join to seed the peer set.
func NewNode(cfg Config) *Node {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	return &Node{
		cfg:   cfg,
		clock: cfg.Clock,
		log:   cfg.Logger.With("node", cfg.Name),
	}
}

// Name returns the node's cluster name.
func (n *Node) Name() string { return n.cfg.Name }

// Join adds a peer by wire address and starts heartbeating it.
// Idempotent; joining the node's own address is a no-op. The peer
// learns about this node (and any others) from the heartbeats
// themselves, so one seed address is enough to join a cluster.
func (n *Node) Join(addr string) {
	if p := n.admit(addr); p != nil {
		go n.beat(p)
	}
}

// admit creates the peer record (and its client) for addr if it is new,
// returning nil when the peer already exists, is the node itself, or
// the node is closed.
func (n *Node) admit(addr string) *peer {
	if addr == "" || addr == n.cfg.Addr {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	if n.peers == nil {
		n.peers = make(map[string]*peer)
	}
	if _, ok := n.peers[addr]; ok {
		return nil
	}
	p := &peer{addr: addr, name: "?", c: client.Dial(addr, n.cfg.DialOptions...)}
	n.peers[addr] = p
	return p
}

// Close stops all heartbeats and closes the peer clients. In-flight
// heartbeats finish (and may record one last miss) but never reschedule.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
		if p.timer != nil {
			p.timer.Stop()
		}
	}
	n.mu.Unlock()
	for _, p := range peers {
		p.c.Close()
	}
}

// beat performs one heartbeat exchange with p, records the outcome, and
// schedules the next beat.
func (n *Node) beat(p *peer) {
	payload, err := json.Marshal(&Envelope{Type: ControlGossip, Gossip: n.localGossip()})
	if err != nil {
		n.log.Error("encode gossip", "err", err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HeartbeatTimeout)
	body, err := p.c.ControlContext(ctx, payload)
	cancel()
	if err != nil {
		n.miss(p, err)
	} else {
		var g Gossip
		if derr := json.Unmarshal(body, &g); derr != nil {
			n.miss(p, fmt.Errorf("decode gossip reply: %w", derr))
		} else {
			n.heard(p, &g)
			n.adoptKernels(g.Kernels)
			n.joinPeers(g.Peers)
		}
	}

	n.mu.Lock()
	if !n.closed {
		p.timer = n.clock.AfterFunc(n.cfg.HeartbeatEvery, func() {
			// AfterFunc callbacks share the clock's dispatcher goroutine;
			// the RPC must not run there.
			go n.beat(p)
		})
	}
	// beats increments only after the next timer is armed, so an
	// observer that saw it tick knows one clock advance fires exactly
	// one more beat.
	p.beats++
	n.mu.Unlock()
}

// miss records one failed heartbeat. The peer is marked down exactly
// once, when the miss count crosses SuspectAfter — repeated misses on
// an already-down peer cause no further transitions.
func (n *Node) miss(p *peer, err error) {
	n.mu.Lock()
	p.misses++
	down := p.alive && p.misses >= n.cfg.SuspectAfter
	if down {
		p.alive = false
		p.downs++
	}
	misses := p.misses
	n.mu.Unlock()
	if down {
		n.log.Warn("peer down", "peer", p.name, "addr", p.addr, "misses", misses, "err", err)
	}
}

// heard records a successful gossip exchange with p: the miss count
// resets and a down peer is re-admitted exactly once.
func (n *Node) heard(p *peer, g *Gossip) {
	n.mu.Lock()
	if g.Node != "" {
		p.name = g.Node
	}
	p.misses = 0
	up := !p.alive
	if up {
		p.alive = true
		p.ups++
	}
	p.last = *g
	n.mu.Unlock()
	if up {
		n.log.Info("peer up", "peer", p.name, "addr", p.addr)
	}
}

// ReportUnreachable marks the peer at addr down immediately — the
// routing layer calls it when an invocation fails at the connection
// level, short-circuiting heartbeat-based detection. Exactly one
// transition is recorded; the next successful heartbeat re-admits the
// peer.
func (n *Node) ReportUnreachable(addr string) {
	n.mu.Lock()
	p := n.peers[addr]
	down := p != nil && p.alive
	if down {
		p.alive = false
		p.downs++
		if p.misses < n.cfg.SuspectAfter {
			p.misses = n.cfg.SuspectAfter
		}
	}
	n.mu.Unlock()
	if down {
		n.log.Warn("peer down", "peer", p.name, "addr", addr, "cause", "unreachable")
	}
}

// HandleControl serves one control-plane request; wire it to the TCP
// endpoint with core.TCPServer.SetControlHandler.
func (n *Node) HandleControl(payload []byte) ([]byte, error) {
	var env Envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, fmt.Errorf("cplane: decode control payload: %w", err)
	}
	switch env.Type {
	case ControlGossip:
		if env.Gossip == nil {
			return nil, errors.New("cplane: gossip payload missing")
		}
		n.Observe(env.Gossip)
		return json.Marshal(n.localGossip())
	case ControlStatus:
		return json.Marshal(n.Status())
	default:
		return nil, fmt.Errorf("cplane: unknown control type %q", env.Type)
	}
}

// Observe ingests a peer's gossip received outside this node's own
// heartbeats (i.e. the peer heartbeated us). An unknown sender that
// advertises an address is admitted and heartbeated from now on — this
// is how membership propagates: joining one node joins the cluster.
func (n *Node) Observe(g *Gossip) {
	if g.Addr == "" || g.Addr == n.cfg.Addr {
		return // observers are never admitted to the routing set
	}
	if p := n.admit(g.Addr); p != nil {
		n.heard(p, g)
		n.adoptKernels(g.Kernels)
		n.joinPeers(g.Peers)
		go n.beat(p)
		return
	}
	n.mu.Lock()
	p := n.peers[g.Addr]
	n.mu.Unlock()
	if p == nil {
		return // closed
	}
	n.heard(p, g)
	n.adoptKernels(g.Kernels)
	n.joinPeers(g.Peers)
}

// noteKernel optimistically adds kernel to the membership row for addr
// after a successful wire registration, so routing can use the kernel
// immediately instead of waiting for the member's next heartbeat to
// confirm it (which it will: gossip overwrites the row).
func (n *Node) noteKernel(addr, kernel string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p := n.peers[addr]; p != nil && !containsString(p.last.Kernels, kernel) {
		p.last.Kernels = append(p.last.Kernels, kernel)
	}
}

// joinPeers admits gossiped member addresses this node has not met,
// converging membership transitively.
func (n *Node) joinPeers(addrs []string) {
	for _, addr := range addrs {
		n.Join(addr)
	}
}

// adoptKernels registers gossiped kernels the local server is missing,
// resolving them from the kernel library by name — the same path wire
// registrations take. Kernels the library does not know or the host has
// no device for are skipped; the propagation is best-effort.
func (n *Node) adoptKernels(names []string) {
	if n.cfg.Local == nil || len(names) == 0 {
		return
	}
	have := make(map[string]bool)
	for _, name := range n.cfg.Local.Kernels() {
		have[name] = true
	}
	for _, name := range names {
		if have[name] {
			continue
		}
		k, err := kernels.ByName(name)
		if err != nil {
			continue
		}
		if err := n.cfg.Local.Register(k); err == nil {
			n.log.Info("kernel adopted from cluster gossip", "kernel", name)
		}
	}
}

// localGossip builds the node's current health summary.
func (n *Node) localGossip() *Gossip {
	g := &Gossip{Node: n.cfg.Name, Addr: n.cfg.Addr}
	n.mu.Lock()
	n.seq++
	g.Seq = n.seq
	for addr := range n.peers {
		g.Peers = append(g.Peers, addr)
	}
	n.mu.Unlock()
	sort.Strings(g.Peers)
	if n.cfg.Local == nil {
		return g
	}
	h := n.cfg.Local.Health()
	g.Draining = h.Draining || h.Closed
	g.InFlight = h.InFlight
	g.Kernels = h.Kernels
	g.Tenants = h.Tenants
	for kind, kh := range h.Kinds {
		if kh.Eligible > 0 {
			if g.Eligible == nil {
				g.Eligible = make(map[string]int)
			}
			g.Eligible[kind] = kh.Eligible
		}
		if kh.OpenBreakers > 0 {
			if g.OpenBreakers == nil {
				g.OpenBreakers = make(map[string]int)
			}
			g.OpenBreakers[kind] = kh.OpenBreakers
		}
	}
	// Shed rate over the modeled window since this node's previous
	// summary.
	now := n.clock.Now()
	n.mu.Lock()
	if !n.lastBeat.IsZero() && now.After(n.lastBeat) && h.Shed >= n.lastShed {
		g.ShedRate = float64(h.Shed-n.lastShed) / now.Sub(n.lastBeat).Seconds()
	}
	n.lastShed, n.lastBeat = h.Shed, now
	n.mu.Unlock()
	return g
}

// Members returns the node's membership view: the local node first,
// then peers sorted by name (address as tiebreak).
func (n *Node) Members() []Member {
	var members []Member
	if self := n.selfMember(); self != nil {
		members = append(members, *self)
	}
	n.mu.Lock()
	remote := make([]Member, 0, len(n.peers))
	for _, p := range n.peers {
		remote = append(remote, Member{
			Node:         p.name,
			Addr:         p.addr,
			Alive:        p.alive,
			Draining:     p.last.Draining,
			InFlight:     p.last.InFlight,
			ShedRate:     p.last.ShedRate,
			Eligible:     p.last.Eligible,
			OpenBreakers: p.last.OpenBreakers,
			Kernels:      p.last.Kernels,
			Tenants:      p.last.Tenants,
			Downs:        p.downs,
			Ups:          p.ups,
			Beats:        p.beats,
		})
	}
	n.mu.Unlock()
	sort.Slice(remote, func(i, j int) bool {
		if remote[i].Node != remote[j].Node {
			return remote[i].Node < remote[j].Node
		}
		return remote[i].Addr < remote[j].Addr
	})
	return append(members, remote...)
}

// selfMember builds the local node's own membership row, or nil for
// observers (which are not part of the routing set).
func (n *Node) selfMember() *Member {
	if n.cfg.Local == nil {
		return nil
	}
	h := n.cfg.Local.Health()
	m := &Member{
		Node:     n.cfg.Name,
		Addr:     n.cfg.Addr,
		Self:     true,
		Alive:    true,
		Draining: h.Draining || h.Closed,
		InFlight: h.InFlight,
		Kernels:  h.Kernels,
		Tenants:  h.Tenants,
	}
	for kind, kh := range h.Kinds {
		if kh.Eligible > 0 {
			if m.Eligible == nil {
				m.Eligible = make(map[string]int)
			}
			m.Eligible[kind] = kh.Eligible
		}
		if kh.OpenBreakers > 0 {
			if m.OpenBreakers == nil {
				m.OpenBreakers = make(map[string]int)
			}
			m.OpenBreakers[kind] = kh.OpenBreakers
		}
	}
	return m
}

// Status returns the node's membership view for kaasctl cluster status.
func (n *Node) Status() Status {
	return Status{Node: n.cfg.Name, Members: n.Members()}
}

// discardHandler is a slog.Handler that drops every record, used when no
// logger is configured.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// WaitMembers blocks until at least want peers are alive in the node's
// membership view or ctx expires. Harnesses use it to let the first
// heartbeat round complete before offering load.
func (n *Node) WaitMembers(ctx context.Context, want int) error {
	for {
		n.mu.Lock()
		alive := 0
		for _, p := range n.peers {
			if p.alive {
				alive++
			}
		}
		n.mu.Unlock()
		if alive >= want {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cplane: %d of %d peers alive: %w", alive, want, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}
