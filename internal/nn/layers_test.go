package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kaas/internal/tensor"
)

func TestNewDenseValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDense(rng, 0, 5); err == nil {
		t.Error("NewDense(0,5) succeeded")
	}
	if _, err := NewDense(rng, 5, -1); err == nil {
		t.Error("NewDense(5,-1) succeeded")
	}
}

func TestDenseForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := NewDense(rng, 4, 3)
	if err != nil {
		t.Fatalf("NewDense: %v", err)
	}
	x, _ := tensor.Randn(rng, 7, 4)
	y := d.Forward(x)
	if y.Rows() != 7 || y.Cols() != 3 {
		t.Errorf("output shape %dx%d, want 7x3", y.Rows(), y.Cols())
	}
}

func TestDenseForwardAddsBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, _ := NewDense(rng, 2, 2)
	// zero weights, known bias
	for i := range d.W.Data() {
		d.W.Data()[i] = 0
	}
	d.B.Set(0, 0, 1.5)
	d.B.Set(0, 1, -2)
	x, _ := tensor.Randn(rng, 3, 2)
	y := d.Forward(x)
	for i := 0; i < 3; i++ {
		if y.At(i, 0) != 1.5 || y.At(i, 1) != -2 {
			t.Errorf("row %d = %v, want [1.5 -2]", i, y.Row(i))
		}
	}
}

// TestDenseGradientCheck verifies backprop against numerical gradients.
func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, _ := NewDense(rng, 3, 2)
	x, _ := tensor.Randn(rng, 4, 3)
	labels := []int{0, 1, 1, 0}

	// Analytic gradient of loss with respect to W[0][0].
	loss := func() float64 {
		logits := d.Forward(x)
		l, _, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatalf("SoftmaxCrossEntropy: %v", err)
		}
		return l
	}

	logits := d.Forward(x)
	_, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatalf("SoftmaxCrossEntropy: %v", err)
	}
	// Capture analytic dL/dW without applying an update (lr=0).
	gradW := tensor.MatMul(tensor.Transpose(x), grad)

	const eps = 1e-6
	for _, idx := range []int{0, 2, 5} {
		orig := d.W.Data()[idx]
		d.W.Data()[idx] = orig + eps
		lp := loss()
		d.W.Data()[idx] = orig - eps
		lm := loss()
		d.W.Data()[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := gradW.Data()[idx]
		if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("W[%d]: numeric grad %v, analytic %v", idx, numeric, analytic)
		}
	}
}

func TestDenseBackwardReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, _ := NewDense(rng, 5, 3)
	x, _ := tensor.Randn(rng, 16, 5)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 3
	}
	logits := d.Forward(x)
	first, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatalf("loss: %v", err)
	}
	for i := 0; i < 50; i++ {
		d.Backward(grad, 0.5)
		logits = d.Forward(x)
		_, grad, err = SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
	}
	last, _, _ := SoftmaxCrossEntropy(d.Forward(x), labels)
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	x, _ := tensor.FromSlice(1, 4, []float64{-2, 0, 3, -0.5})
	out, mask := ReLUForward(x)
	wantOut := []float64{0, 0, 3, 0}
	wantMask := []float64{0, 0, 1, 0}
	for i := range wantOut {
		if out.Data()[i] != wantOut[i] {
			t.Errorf("out[%d] = %v, want %v", i, out.Data()[i], wantOut[i])
		}
		if mask.Data()[i] != wantMask[i] {
			t.Errorf("mask[%d] = %v, want %v", i, mask.Data()[i], wantMask[i])
		}
	}
	g, _ := tensor.FromSlice(1, 4, []float64{1, 1, 1, 1})
	back := ReLUBackward(g, mask)
	if back.Data()[2] != 1 || back.Data()[0] != 0 {
		t.Errorf("backward = %v", back.Data())
	}
}

func TestSoftmaxCrossEntropyValidation(t *testing.T) {
	logits, _ := tensor.Randn(rand.New(rand.NewSource(1)), 2, 3)
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0}); err == nil {
		t.Error("mismatched label count succeeded")
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0, 7}); err == nil {
		t.Error("out-of-range label succeeded")
	}
}

func TestSoftmaxCrossEntropyGradientSumsToZero(t *testing.T) {
	// Each row's gradient must sum to zero (softmax property).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, c := 1+r.Intn(6), 2+r.Intn(5)
		logits, _ := tensor.Randn(r, n, c)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(c)
		}
		_, grad, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var s float64
			for _, v := range grad.Row(i) {
				s += v
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	logits, _ := tensor.FromSlice(2, 2, []float64{3, 1, 0, 5})
	if got := Accuracy(logits, []int{0, 1}); got != 1 {
		t.Errorf("Accuracy = %v, want 1", got)
	}
	if got := Accuracy(logits, []int{1, 0}); got != 0 {
		t.Errorf("Accuracy = %v, want 0", got)
	}
	if got := Accuracy(logits, nil); got != 0 {
		t.Errorf("Accuracy(empty) = %v, want 0", got)
	}
}

func TestDenseFLOPs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, _ := NewDense(rng, 10, 20)
	if got := d.FLOPs(5); got != 2*5*10*20 {
		t.Errorf("FLOPs = %v, want %v", got, 2*5*10*20)
	}
}
