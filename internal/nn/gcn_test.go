package nn

import (
	"math"
	"math/rand"
	"testing"

	"kaas/internal/tensor"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := SyntheticCitationGraph(42, 120, 16, 4)
	if err != nil {
		t.Fatalf("SyntheticCitationGraph: %v", err)
	}
	return g
}

func TestSyntheticCitationGraphValidation(t *testing.T) {
	if _, err := SyntheticCitationGraph(1, 0, 4, 2); err == nil {
		t.Error("zero nodes succeeded")
	}
	if _, err := SyntheticCitationGraph(1, 4, 0, 2); err == nil {
		t.Error("zero features succeeded")
	}
	if _, err := SyntheticCitationGraph(1, 4, 4, 0); err == nil {
		t.Error("zero classes succeeded")
	}
	if _, err := SyntheticCitationGraph(1, 2, 4, 5); err == nil {
		t.Error("more classes than nodes succeeded")
	}
}

func TestSyntheticCitationGraphShape(t *testing.T) {
	g := testGraph(t)
	if g.NumNodes != 120 {
		t.Errorf("NumNodes = %d", g.NumNodes)
	}
	if g.Features.Rows() != 120 || g.Features.Cols() != 16 {
		t.Errorf("feature shape %dx%d", g.Features.Rows(), g.Features.Cols())
	}
	if len(g.Labels) != 120 {
		t.Errorf("labels = %d", len(g.Labels))
	}
	for _, l := range g.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestNormalizedAdjacencySymmetric(t *testing.T) {
	g := testGraph(t)
	a := g.NormAdj
	if d := tensor.MaxAbsDiff(a, tensor.Transpose(a)); d > 1e-12 {
		t.Errorf("normalized adjacency not symmetric, max diff %v", d)
	}
	// Self loops mean strictly positive diagonal.
	for i := 0; i < a.Rows(); i++ {
		if a.At(i, i) <= 0 {
			t.Fatalf("diagonal entry %d = %v, want > 0", i, a.At(i, i))
		}
	}
}

func TestNormalizedAdjacencyRowSpectrum(t *testing.T) {
	// The symmetric normalization keeps entries in (0, 1].
	g := testGraph(t)
	for _, v := range g.NormAdj.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("adjacency entry %v outside [0,1]", v)
		}
	}
}

func TestGCNTrainingReducesLossAndLearns(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(7))
	model, err := NewGCN(rng, g, 16)
	if err != nil {
		t.Fatalf("NewGCN: %v", err)
	}
	logits := model.Forward()
	first, _, err := SoftmaxCrossEntropy(logits, g.Labels)
	if err != nil {
		t.Fatalf("loss: %v", err)
	}
	last, err := model.Train(60, 0.3)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
	if acc := model.Accuracy(); acc < 0.7 {
		t.Errorf("accuracy after training = %v, want >= 0.7", acc)
	}
}

func TestGCNValidation(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := NewGCN(rng, g, 0); err == nil {
		t.Error("NewGCN(hidden=0) succeeded")
	}
}

func TestGCNFLOPsPositiveAndMonotonic(t *testing.T) {
	small, _ := SyntheticCitationGraph(1, 50, 8, 2)
	large, _ := SyntheticCitationGraph(1, 200, 8, 2)
	rng := rand.New(rand.NewSource(1))
	ms, _ := NewGCN(rng, small, 8)
	ml, _ := NewGCN(rng, large, 8)
	if ms.FLOPsPerStep() <= 0 {
		t.Error("FLOPsPerStep <= 0")
	}
	if ml.FLOPsPerStep() <= ms.FLOPsPerStep() {
		t.Error("larger graph should cost more FLOPs")
	}
}

func TestResNetLiteInference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model, err := NewResNetLite(rng, DefaultResNetConfig())
	if err != nil {
		t.Fatalf("NewResNetLite: %v", err)
	}
	batch := make([]*tensor.Image, 8)
	for i := range batch {
		im, _ := tensor.NewImage(32, 32)
		for j := range im.Pix() {
			im.Pix()[j] = rng.Float64()
		}
		batch[i] = im
	}
	logits, err := model.Infer(batch)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if logits.Rows() != 8 || logits.Cols() != 10 {
		t.Errorf("logits shape %dx%d, want 8x10", logits.Rows(), logits.Cols())
	}
	for _, v := range logits.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("logits contain NaN/Inf")
		}
	}
	preds, err := model.Predict(batch)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if len(preds) != 8 {
		t.Errorf("predictions = %d, want 8", len(preds))
	}
	for _, p := range preds {
		if p < 0 || p >= 10 {
			t.Fatalf("prediction %d out of range", p)
		}
	}
}

func TestResNetLiteDeterministic(t *testing.T) {
	mkLogits := func() *tensor.Matrix {
		rng := rand.New(rand.NewSource(5))
		model, err := NewResNetLite(rng, DefaultResNetConfig())
		if err != nil {
			t.Fatalf("NewResNetLite: %v", err)
		}
		im, _ := tensor.NewImage(32, 32)
		irng := rand.New(rand.NewSource(9))
		for j := range im.Pix() {
			im.Pix()[j] = irng.Float64()
		}
		logits, err := model.Infer([]*tensor.Image{im})
		if err != nil {
			t.Fatalf("Infer: %v", err)
		}
		return logits
	}
	a, b := mkLogits(), mkLogits()
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Error("same seed produced different logits")
	}
}

func TestResNetLiteValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewResNetLite(rng, ResNetConfig{ImageSize: 4}); err == nil {
		t.Error("tiny image size succeeded")
	}
	cfg := DefaultResNetConfig()
	cfg.Classes = 0
	if _, err := NewResNetLite(rng, cfg); err == nil {
		t.Error("zero classes succeeded")
	}
	model, err := NewResNetLite(rng, DefaultResNetConfig())
	if err != nil {
		t.Fatalf("NewResNetLite: %v", err)
	}
	if _, err := model.Infer(nil); err == nil {
		t.Error("empty batch succeeded")
	}
	wrong, _ := tensor.NewImage(16, 16)
	if _, err := model.Infer([]*tensor.Image{wrong}); err == nil {
		t.Error("wrong image size succeeded")
	}
}

func TestResNetLiteFLOPs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model, _ := NewResNetLite(rng, DefaultResNetConfig())
	if model.FLOPsPerImage() <= 0 {
		t.Error("FLOPsPerImage <= 0")
	}
	if ResNet50FLOPsPerImage < 1e9 {
		t.Error("ResNet50FLOPsPerImage implausibly small")
	}
}
