// Package nn implements the small neural networks used by the KaaS kernel
// suite: dense layers with full backpropagation, a two-layer graph
// convolutional network (the paper's GNN training kernel), and a compact
// residual convolutional classifier standing in for ResNet-50 in the
// scaling experiments.
//
// Everything is real, tested compute — not a mock: forward passes produce
// genuine predictions and training reduces a genuine cross-entropy loss.
// Each model also reports its FLOP count so the accelerator cost model can
// charge device time proportional to the true arithmetic performed.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"kaas/internal/tensor"
)

// Dense is a fully connected layer y = xW + b.
type Dense struct {
	W *tensor.Matrix // in×out
	B *tensor.Matrix // 1×out

	// cached forward input for backprop
	lastX *tensor.Matrix
}

// NewDense creates a dense layer with Glorot-uniform initialization.
func NewDense(rng *rand.Rand, in, out int) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: invalid dense shape %d->%d", in, out)
	}
	limit := math.Sqrt(6 / float64(in+out))
	w, err := tensor.Uniform(rng, in, out, -limit, limit)
	if err != nil {
		return nil, err
	}
	b, err := tensor.NewMatrix(1, out)
	if err != nil {
		return nil, err
	}
	return &Dense{W: w, B: b}, nil
}

// Forward computes xW + b for a batch x (rows are samples).
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	d.lastX = x
	out := tensor.MatMul(x, d.W)
	for i := 0; i < out.Rows(); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += d.B.At(0, j)
		}
	}
	return out
}

// Backward consumes the gradient with respect to the layer output and
// returns the gradient with respect to the input, updating parameters
// with learning rate lr (plain SGD).
func (d *Dense) Backward(gradOut *tensor.Matrix, lr float64) *tensor.Matrix {
	gradW := tensor.MatMul(tensor.Transpose(d.lastX), gradOut)
	gradX := tensor.MatMul(gradOut, tensor.Transpose(d.W))

	// Parameter update.
	wd := d.W.Data()
	for i, g := range gradW.Data() {
		wd[i] -= lr * g
	}
	bd := d.B.Data()
	for j := range bd {
		var g float64
		for i := 0; i < gradOut.Rows(); i++ {
			g += gradOut.At(i, j)
		}
		bd[j] -= lr * g
	}
	return gradX
}

// FLOPs returns the forward FLOP count for a batch of the given size.
func (d *Dense) FLOPs(batch int) float64 {
	return tensor.MatMulFLOPs(batch, d.W.Rows(), d.W.Cols())
}

// ReLUForward applies ReLU and returns both the activation and a mask for
// backprop.
func ReLUForward(x *tensor.Matrix) (out, mask *tensor.Matrix) {
	out = x.Clone()
	mask = x.Clone()
	od, md := out.Data(), mask.Data()
	for i, v := range od {
		if v > 0 {
			md[i] = 1
		} else {
			od[i] = 0
			md[i] = 0
		}
	}
	return out, mask
}

// ReLUBackward masks the output gradient with the stored mask.
func ReLUBackward(gradOut, mask *tensor.Matrix) *tensor.Matrix {
	return tensor.Hadamard(gradOut, mask)
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// against integer labels and the gradient with respect to the logits.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (loss float64, grad *tensor.Matrix, err error) {
	if len(labels) != logits.Rows() {
		return 0, nil, fmt.Errorf("nn: %d labels for %d rows", len(labels), logits.Rows())
	}
	probs := tensor.SoftmaxRows(logits)
	grad = probs.Clone()
	n := float64(logits.Rows())
	for i, label := range labels {
		if label < 0 || label >= logits.Cols() {
			return 0, nil, fmt.Errorf("nn: label %d out of range [0,%d)", label, logits.Cols())
		}
		p := probs.At(i, label)
		loss -= math.Log(math.Max(p, 1e-15))
		grad.Set(i, label, grad.At(i, label)-1)
	}
	loss /= n
	grad = tensor.Scale(grad, 1/n)
	return loss, grad, nil
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Matrix, labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	pred := tensor.ArgmaxRows(logits)
	var hit int
	for i, p := range pred {
		if p == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(labels))
}
