package nn

import (
	"fmt"
	"math/rand"

	"kaas/internal/tensor"
)

// ResNetLite is a compact residual convolutional classifier that stands in
// for ResNet-50 in the scaling experiments (§5.4): a small conv stem over
// the input image, 2×2 max pooling, then residual dense blocks and a
// softmax head. Inference is real arithmetic; the scaling experiments
// charge the accelerator cost model with ResNet-50's published FLOP count
// so that modeled device times match the paper's workload.
type ResNetLite struct {
	stemKernels []*tensor.Matrix // conv filters applied to the input image
	blocks      []*residualBlock
	head        *Dense
	imgSize     int
	classes     int
	featDim     int
}

type residualBlock struct {
	fc1, fc2 *Dense
}

// ResNetConfig describes a ResNetLite instance.
type ResNetConfig struct {
	// ImageSize is the (square) input image side length.
	ImageSize int
	// StemFilters is the number of 3×3 conv filters in the stem.
	StemFilters int
	// Blocks is the number of residual dense blocks.
	Blocks int
	// Hidden is the width of the residual blocks.
	Hidden int
	// Classes is the number of output classes.
	Classes int
}

// DefaultResNetConfig returns the configuration used by the scaling
// experiments: 32×32 inputs, 4 stem filters, 3 residual blocks of width
// 128, 10 classes.
func DefaultResNetConfig() ResNetConfig {
	return ResNetConfig{ImageSize: 32, StemFilters: 4, Blocks: 3, Hidden: 128, Classes: 10}
}

// NewResNetLite builds a randomly initialized model.
func NewResNetLite(rng *rand.Rand, cfg ResNetConfig) (*ResNetLite, error) {
	if cfg.ImageSize < 8 {
		return nil, fmt.Errorf("nn: image size %d too small", cfg.ImageSize)
	}
	if cfg.StemFilters <= 0 || cfg.Blocks < 0 || cfg.Hidden <= 0 || cfg.Classes <= 0 {
		return nil, fmt.Errorf("nn: invalid resnet config %+v", cfg)
	}
	m := &ResNetLite{imgSize: cfg.ImageSize, classes: cfg.Classes}
	for i := 0; i < cfg.StemFilters; i++ {
		k, err := tensor.Randn(rng, 3, 3)
		if err != nil {
			return nil, err
		}
		m.stemKernels = append(m.stemKernels, tensor.Scale(k, 0.3))
	}
	pooled := cfg.ImageSize / 2
	m.featDim = cfg.StemFilters * pooled * pooled

	in := m.featDim
	proj, err := NewDense(rng, in, cfg.Hidden)
	if err != nil {
		return nil, err
	}
	m.blocks = append(m.blocks, &residualBlock{fc1: proj})
	for i := 0; i < cfg.Blocks; i++ {
		fc1, err := NewDense(rng, cfg.Hidden, cfg.Hidden)
		if err != nil {
			return nil, err
		}
		fc2, err := NewDense(rng, cfg.Hidden, cfg.Hidden)
		if err != nil {
			return nil, err
		}
		m.blocks = append(m.blocks, &residualBlock{fc1: fc1, fc2: fc2})
	}
	m.head, err = NewDense(rng, cfg.Hidden, cfg.Classes)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Classes returns the number of output classes.
func (m *ResNetLite) Classes() int { return m.classes }

// ImageSize returns the expected input side length.
func (m *ResNetLite) ImageSize() int { return m.imgSize }

// Infer classifies a batch of images and returns per-image logits.
func (m *ResNetLite) Infer(batch []*tensor.Image) (*tensor.Matrix, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("nn: empty batch")
	}
	feats, err := tensor.NewMatrix(len(batch), m.featDim)
	if err != nil {
		return nil, err
	}
	for i, im := range batch {
		if im.H() != m.imgSize || im.W() != m.imgSize {
			return nil, fmt.Errorf("nn: image %d is %dx%d, want %dx%d",
				i, im.H(), im.W(), m.imgSize, m.imgSize)
		}
		row := feats.Row(i)
		off := 0
		for _, k := range m.stemKernels {
			fm := tensor.MaxPool2(tensor.Conv2DSame(im, k))
			copy(row[off:off+len(fm.Pix())], fm.Pix())
			off += len(fm.Pix())
		}
	}

	x := feats
	for _, b := range m.blocks {
		if b.fc2 == nil {
			// projection block
			x, _ = ReLUForward(b.fc1.Forward(x))
			continue
		}
		h, _ := ReLUForward(b.fc1.Forward(x))
		h = b.fc2.Forward(h)
		x = tensor.Add(x, h) // residual connection
		x, _ = ReLUForward(x)
	}
	return m.head.Forward(x), nil
}

// Predict returns the argmax class for each image in the batch.
func (m *ResNetLite) Predict(batch []*tensor.Image) ([]int, error) {
	logits, err := m.Infer(batch)
	if err != nil {
		return nil, err
	}
	return tensor.ArgmaxRows(logits), nil
}

// FLOPsPerImage returns the real arithmetic cost of classifying one image
// with this model.
func (m *ResNetLite) FLOPsPerImage() float64 {
	conv := float64(len(m.stemKernels)) * 2 * float64(m.imgSize*m.imgSize) * 9
	var dense float64
	for _, b := range m.blocks {
		dense += b.fc1.FLOPs(1)
		if b.fc2 != nil {
			dense += b.fc2.FLOPs(1)
		}
	}
	dense += m.head.FLOPs(1)
	return conv + dense
}

// ResNet50FLOPsPerImage is the published forward-pass cost of ResNet-50 at
// 224×224, used to charge the device cost model in the scaling experiments
// (~3.8 GFLOPs, counting multiply-adds as two operations).
const ResNet50FLOPsPerImage = 7.7e9
