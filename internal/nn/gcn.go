package nn

import (
	"fmt"
	"math"
	"math/rand"

	"kaas/internal/tensor"
)

// Graph is an undirected graph with node features and labels, the input of
// the GCN training kernel. Adjacency is stored densely (the synthetic
// citation graphs used in the experiments are small).
type Graph struct {
	// NumNodes is the node count.
	NumNodes int
	// Features is the NumNodes×F feature matrix.
	Features *tensor.Matrix
	// Labels holds one class per node.
	Labels []int
	// NumClasses is the number of distinct classes.
	NumClasses int
	// NormAdj is the symmetrically normalized adjacency with self loops:
	// D^{-1/2} (A+I) D^{-1/2}.
	NormAdj *tensor.Matrix
}

// SyntheticCitationGraph generates a small community-structured graph that
// mimics a citation dataset: nodes in the same class link densely, nodes
// in different classes sparsely, and features are noisy class prototypes.
// It stands in for the DGL Core Graph Dataset used by the paper.
func SyntheticCitationGraph(seed int64, nodes, features, classes int) (*Graph, error) {
	if nodes <= 0 || features <= 0 || classes <= 0 {
		return nil, fmt.Errorf("nn: invalid graph spec nodes=%d features=%d classes=%d", nodes, features, classes)
	}
	if classes > nodes {
		return nil, fmt.Errorf("nn: more classes (%d) than nodes (%d)", classes, nodes)
	}
	rng := rand.New(rand.NewSource(seed))

	labels := make([]int, nodes)
	for i := range labels {
		labels[i] = i % classes
	}

	// Class prototype features plus noise.
	protos, err := tensor.Randn(rng, classes, features)
	if err != nil {
		return nil, err
	}
	feat, err := tensor.NewMatrix(nodes, features)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nodes; i++ {
		proto := protos.Row(labels[i])
		row := feat.Row(i)
		for j := range row {
			row[j] = proto[j] + 0.5*rng.NormFloat64()
		}
	}

	// Adjacency: intra-class probability 0.05, inter-class 0.002.
	adj, err := tensor.NewMatrix(nodes, nodes)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nodes; i++ {
		for j := i + 1; j < nodes; j++ {
			p := 0.002
			if labels[i] == labels[j] {
				p = 0.05
			}
			if rng.Float64() < p {
				adj.Set(i, j, 1)
				adj.Set(j, i, 1)
			}
		}
	}

	return &Graph{
		NumNodes:   nodes,
		Features:   feat,
		Labels:     labels,
		NumClasses: classes,
		NormAdj:    normalizeAdjacency(adj),
	}, nil
}

// normalizeAdjacency returns D^{-1/2} (A+I) D^{-1/2}.
func normalizeAdjacency(adj *tensor.Matrix) *tensor.Matrix {
	n := adj.Rows()
	a := adj.Clone()
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		for _, v := range a.Row(i) {
			deg[i] += v
		}
	}
	for i := 0; i < n; i++ {
		di := 1 / math.Sqrt(deg[i])
		row := a.Row(i)
		for j := range row {
			row[j] *= di / math.Sqrt(deg[j])
		}
	}
	return a
}

// GCN is a two-layer graph convolutional network for node classification:
// softmax(Â · ReLU(Â X W₁) · W₂), trained with full-batch gradient descent
// — the paper's GNN kernel.
type GCN struct {
	l1, l2 *Dense
	graph  *Graph

	// forward caches
	h1pre, mask1, h1 *tensor.Matrix
	agg0             *tensor.Matrix
}

// NewGCN builds a GCN with the given hidden width for graph g.
func NewGCN(rng *rand.Rand, g *Graph, hidden int) (*GCN, error) {
	if hidden <= 0 {
		return nil, fmt.Errorf("nn: invalid hidden width %d", hidden)
	}
	l1, err := NewDense(rng, g.Features.Cols(), hidden)
	if err != nil {
		return nil, err
	}
	l2, err := NewDense(rng, hidden, g.NumClasses)
	if err != nil {
		return nil, err
	}
	return &GCN{l1: l1, l2: l2, graph: g}, nil
}

// Forward computes class logits for every node.
func (g *GCN) Forward() *tensor.Matrix {
	g.agg0 = tensor.MatMul(g.graph.NormAdj, g.graph.Features)
	g.h1pre = g.l1.Forward(g.agg0)
	g.h1, g.mask1 = ReLUForward(g.h1pre)
	agg1 := tensor.MatMul(g.graph.NormAdj, g.h1)
	return g.l2.Forward(agg1)
}

// TrainStep runs one full-batch training iteration and returns the loss.
func (g *GCN) TrainStep(lr float64) (float64, error) {
	logits := g.Forward()
	loss, grad, err := SoftmaxCrossEntropy(logits, g.graph.Labels)
	if err != nil {
		return 0, err
	}
	gradAgg1 := g.l2.Backward(grad, lr)
	// Gradient through the aggregation Â h1: Âᵀ = Â (symmetric).
	gradH1 := tensor.MatMul(g.graph.NormAdj, gradAgg1)
	gradPre := ReLUBackward(gradH1, g.mask1)
	g.l1.Backward(gradPre, lr)
	return loss, nil
}

// Train runs iters training steps and returns the final loss.
func (g *GCN) Train(iters int, lr float64) (float64, error) {
	var loss float64
	var err error
	for i := 0; i < iters; i++ {
		loss, err = g.TrainStep(lr)
		if err != nil {
			return 0, fmt.Errorf("gcn iteration %d: %w", i, err)
		}
	}
	return loss, nil
}

// Accuracy evaluates node-classification accuracy with current weights.
func (g *GCN) Accuracy() float64 {
	return Accuracy(g.Forward(), g.graph.Labels)
}

// FLOPsPerStep estimates the arithmetic cost of one training iteration
// (forward plus backward, roughly 3x forward).
func (g *GCN) FLOPsPerStep() float64 {
	n := float64(g.graph.NumNodes)
	f := float64(g.graph.Features.Cols())
	h := float64(g.l1.W.Cols())
	c := float64(g.graph.NumClasses)
	forward := 2*n*n*f + 2*n*f*h + 2*n*n*h + 2*n*h*c
	return 3 * forward
}
