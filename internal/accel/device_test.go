package accel

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"kaas/internal/vclock"
)

// testProfile is a small fast profile for unit tests.
func testProfile() Profile {
	return Profile{
		Name:           "test-gpu",
		Kind:           GPU,
		RuntimeInit:    100 * time.Millisecond,
		LibraryInit:    200 * time.Millisecond,
		LaunchOverhead: time.Millisecond,
		ComputeRate:    1000, // work units/s
		CopyBandwidth:  1e6,  // bytes/s
		CopyLatency:    time.Millisecond,
		Slots:          2,
		MemoryBytes:    1 << 20,
		IdlePower:      10,
		BusyPower:      110,
	}
}

func testDevice(t *testing.T, p Profile) *Device {
	t.Helper()
	d, err := NewDevice(vclock.Scaled(10000), "test/gpu0", p)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{CPU, "CPU"}, {GPU, "GPU"}, {FPGA, "FPGA"}, {TPU, "TPU"}, {QPU, "QPU"},
		{Kind(42), "Kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, name := range []string{"CPU", "GPU", "FPGA", "TPU", "QPU", "gpu", "cpu"} {
		if _, err := ParseKind(name); err != nil {
			t.Errorf("ParseKind(%q): %v", name, err)
		}
	}
	if _, err := ParseKind("NPU"); err == nil {
		t.Error("ParseKind(NPU) succeeded, want error")
	}
}

func TestProfileValidate(t *testing.T) {
	good := testProfile()
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"no name", func(p *Profile) { p.Name = "" }},
		{"no kind", func(p *Profile) { p.Kind = 0 }},
		{"zero compute", func(p *Profile) { p.ComputeRate = 0 }},
		{"zero bandwidth", func(p *Profile) { p.CopyBandwidth = 0 }},
		{"negative slots", func(p *Profile) { p.Slots = -1 }},
		{"negative memory", func(p *Profile) { p.MemoryBytes = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testProfile()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestPredefinedProfilesValid(t *testing.T) {
	for _, p := range []Profile{
		TeslaP100, TeslaV100, NvidiaA100, AlveoU250, TPUv3Chip,
		AerSimulatorHost, FalconR4T, FalconR511H, XeonE52698, EPYC7513,
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", p.Name, err)
		}
	}
}

func TestAcquirePaysRuntimeInit(t *testing.T) {
	clock := vclock.Scaled(10000)
	d, err := NewDevice(clock, "t/gpu0", testProfile())
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	defer d.Close()

	start := clock.Now()
	c, err := d.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer c.Release()
	elapsed := clock.Now().Sub(start)
	if elapsed < 100*time.Millisecond {
		t.Errorf("Acquire took %v modeled, want >= RuntimeInit (100ms)", elapsed)
	}
	if got := d.Stats().ColdStarts; got != 1 {
		t.Errorf("ColdStarts = %d, want 1", got)
	}
}

func TestSlotsLimitConcurrentContexts(t *testing.T) {
	d := testDevice(t, testProfile()) // Slots: 2
	c1, err := d.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire 1: %v", err)
	}
	c2, err := d.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire 2: %v", err)
	}

	// Third Acquire must block until a release.
	acquired := make(chan *Context, 1)
	go func() {
		c, err := d.Acquire(context.Background())
		if err != nil {
			t.Errorf("Acquire 3: %v", err)
			return
		}
		acquired <- c
	}()
	select {
	case <-acquired:
		t.Fatal("third Acquire succeeded while both slots held")
	case <-time.After(20 * time.Millisecond):
	}
	c1.Release()
	select {
	case c3 := <-acquired:
		c3.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("third Acquire did not proceed after Release")
	}
	c2.Release()
	if got := d.Stats().ActiveContexts; got != 0 {
		t.Errorf("ActiveContexts = %d, want 0", got)
	}
}

func TestAcquireRespectsContextCancel(t *testing.T) {
	p := testProfile()
	p.Slots = 1
	d := testDevice(t, p)
	c1, err := d.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer c1.Release()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := d.Acquire(ctx)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Acquire did not honor cancel")
	}
}

func TestExecDuration(t *testing.T) {
	d := testDevice(t, testProfile())
	c, err := d.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer c.Release()

	// 500 units at 1000/s = 500ms + 1ms launch.
	elapsed, err := c.Exec(context.Background(), 500)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	want := 501 * time.Millisecond
	if math.Abs(float64(elapsed-want)) > 0.2*float64(want) {
		t.Errorf("Exec = %v, want ~%v", elapsed, want)
	}
}

func TestExecBatchAmortizesLaunchOverhead(t *testing.T) {
	d := testDevice(t, testProfile())
	c, err := d.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer c.Release()

	// Four 125-unit members at 1000/s = 500ms compute + ONE 1ms launch,
	// where four separate Execs would pay the launch four times.
	elapsed, err := c.ExecBatch(context.Background(), []float64{125, 125, 125, 125})
	if err != nil {
		t.Fatalf("ExecBatch: %v", err)
	}
	want := 501 * time.Millisecond
	if math.Abs(float64(elapsed-want)) > 0.2*float64(want) {
		t.Errorf("ExecBatch = %v, want ~%v", elapsed, want)
	}

	if _, err := c.ExecBatch(context.Background(), nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if _, err := c.ExecBatch(context.Background(), []float64{10, -1}); err == nil {
		t.Error("negative member work accepted, want error")
	}
}

func TestCopyDuration(t *testing.T) {
	d := testDevice(t, testProfile())
	c, err := d.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer c.Release()

	// 500,000 bytes at 1e6 B/s = 500ms + 1ms latency.
	elapsed, err := c.Copy(context.Background(), 500000)
	if err != nil {
		t.Fatalf("Copy: %v", err)
	}
	want := 501 * time.Millisecond
	if math.Abs(float64(elapsed-want)) > 0.2*float64(want) {
		t.Errorf("Copy = %v, want ~%v", elapsed, want)
	}
}

func TestExecContention(t *testing.T) {
	// Use a modest scale so wall-clock goroutine launch skew is
	// negligible in modeled time and both kernels truly overlap.
	d, err := NewDevice(vclock.Scaled(500), "t/gpu0", testProfile())
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	t.Cleanup(d.Close)
	c1, _ := d.Acquire(context.Background())
	defer c1.Release()
	c2, _ := d.Acquire(context.Background())
	defer c2.Release()

	// Two concurrent 500-unit kernels share the fabric: ~1s each.
	var wg sync.WaitGroup
	durations := make([]time.Duration, 2)
	for i, c := range []*Context{c1, c2} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dur, err := c.Exec(context.Background(), 500)
			if err != nil {
				t.Errorf("Exec: %v", err)
			}
			durations[i] = dur
		}()
	}
	wg.Wait()
	for i, dur := range durations {
		if dur < 800*time.Millisecond {
			t.Errorf("kernel %d = %v, want ~1s under contention", i, dur)
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	d := testDevice(t, testProfile()) // 1 MiB
	c, _ := d.Acquire(context.Background())
	defer c.Release()

	if err := c.Alloc(512 << 10); err != nil {
		t.Fatalf("Alloc 512K: %v", err)
	}
	if err := c.Alloc(1 << 20); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("over-alloc err = %v, want ErrOutOfMemory", err)
	}
	if got := d.Stats().MemoryUsed; got != 512<<10 {
		t.Errorf("MemoryUsed = %d, want %d", got, 512<<10)
	}
	c.Free(256 << 10)
	if got := d.Stats().MemoryUsed; got != 256<<10 {
		t.Errorf("MemoryUsed after Free = %d, want %d", got, 256<<10)
	}
	if err := c.Alloc(-1); err == nil {
		t.Error("Alloc(-1) succeeded, want error")
	}
}

func TestReleaseReturnsMemory(t *testing.T) {
	d := testDevice(t, testProfile())
	c, _ := d.Acquire(context.Background())
	if err := c.Alloc(512 << 10); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	c.Release()
	if got := d.Stats().MemoryUsed; got != 0 {
		t.Errorf("MemoryUsed after Release = %d, want 0", got)
	}
	// Double release is harmless.
	c.Release()
	// Use after release fails.
	if _, err := c.Exec(context.Background(), 1); !errors.Is(err, ErrContextReleased) {
		t.Errorf("Exec after release = %v, want ErrContextReleased", err)
	}
	if _, err := c.Copy(context.Background(), 1); !errors.Is(err, ErrContextReleased) {
		t.Errorf("Copy after release = %v, want ErrContextReleased", err)
	}
	if err := c.Alloc(1); !errors.Is(err, ErrContextReleased) {
		t.Errorf("Alloc after release = %v, want ErrContextReleased", err)
	}
}

func TestDeviceClose(t *testing.T) {
	clock := vclock.Scaled(10000)
	d, err := NewDevice(clock, "t/gpu0", testProfile())
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	c, _ := d.Acquire(context.Background())
	d.Close()
	d.Close() // idempotent
	if _, err := d.Acquire(context.Background()); !errors.Is(err, ErrDeviceClosed) {
		t.Errorf("Acquire after close = %v, want ErrDeviceClosed", err)
	}
	if _, err := c.Exec(context.Background(), 1); !errors.Is(err, ErrDeviceClosed) {
		t.Errorf("Exec after close = %v, want ErrDeviceClosed", err)
	}
}

func TestEnergyModel(t *testing.T) {
	d := testDevice(t, testProfile())
	c, _ := d.Acquire(context.Background())
	defer c.Release()
	if _, err := c.Exec(context.Background(), 1000); err != nil { // ~1s busy
		t.Fatalf("Exec: %v", err)
	}
	e := d.Energy()
	// At least the dynamic part: (110-10) W * 1s = 100 J.
	if e < 90 {
		t.Errorf("Energy = %v J, want >= 90", e)
	}
	// Sanity upper bound: uptime is a few modeled seconds at most here.
	if e > 10000 {
		t.Errorf("Energy = %v J, implausibly large", e)
	}
}

func TestSpeedFactorScalesRate(t *testing.T) {
	clock := vclock.Scaled(10000)
	slow := testProfile()
	slow.SpeedFactor = 0.5
	d, err := NewDevice(clock, "t/slow", slow)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	defer d.Close()
	c, _ := d.Acquire(context.Background())
	defer c.Release()
	// 500 units at 500/s = 1s.
	elapsed, err := c.Exec(context.Background(), 500)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if elapsed < 800*time.Millisecond {
		t.Errorf("Exec on half-speed device = %v, want ~1s", elapsed)
	}
}

func TestHostConstruction(t *testing.T) {
	clock := vclock.Scaled(10000)
	gpu := testProfile()
	fpga := testProfile()
	fpga.Kind = FPGA
	cpu := testProfile()
	cpu.Kind = CPU
	h, err := NewHost(clock, "node1", cpu, gpu, gpu, fpga)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer h.Close()

	if h.Name() != "node1" {
		t.Errorf("Name = %q", h.Name())
	}
	if got := len(h.Devices()); got != 3 {
		t.Errorf("len(Devices) = %d, want 3", got)
	}
	if got := len(h.DevicesByKind(GPU)); got != 2 {
		t.Errorf("GPU devices = %d, want 2", got)
	}
	if got := len(h.DevicesByKind(FPGA)); got != 1 {
		t.Errorf("FPGA devices = %d, want 1", got)
	}
	if got := len(h.DevicesByKind(CPU)); got != 1 {
		t.Errorf("CPU devices = %d, want 1", got)
	}
	if _, ok := h.Device("node1/GPU1"); !ok {
		t.Error("Device(node1/GPU1) not found")
	}
	if _, ok := h.Device("nonexistent"); ok {
		t.Error("Device(nonexistent) found")
	}
	if h.TotalEnergy() < 0 {
		t.Error("TotalEnergy negative")
	}
}

func TestHostRejectsBadProfile(t *testing.T) {
	clock := vclock.Scaled(10000)
	cpu := testProfile()
	cpu.Kind = CPU
	bad := Profile{}
	if _, err := NewHost(clock, "node1", cpu, bad); err == nil {
		t.Error("NewHost with invalid profile succeeded, want error")
	}
	if _, err := NewHost(clock, "node1", bad); err == nil {
		t.Error("NewHost with invalid CPU profile succeeded, want error")
	}
}
