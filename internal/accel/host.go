package accel

import (
	"fmt"

	"kaas/internal/vclock"
)

// Host is a machine that exposes a set of accelerator devices plus its own
// CPU (modeled as a device so CPU-only kernels flow through the same cost
// model).
type Host struct {
	name    string
	clock   vclock.Clock
	cpu     *Device
	devices []*Device
	byKind  map[Kind][]*Device
}

// NewHost builds a host with the given CPU profile and one device per
// accelerator profile. Device IDs are "<name>/<kind><index>".
func NewHost(clock vclock.Clock, name string, cpu Profile, accels ...Profile) (*Host, error) {
	cpuDev, err := NewDevice(clock, fmt.Sprintf("%s/cpu0", name), cpu)
	if err != nil {
		return nil, fmt.Errorf("host %s: %w", name, err)
	}
	h := &Host{
		name:    name,
		clock:   clock,
		cpu:     cpuDev,
		devices: make([]*Device, 0, len(accels)),
	}
	counts := make(map[Kind]int, 4)
	for _, p := range accels {
		idx := counts[p.Kind]
		counts[p.Kind]++
		id := fmt.Sprintf("%s/%s%d", name, p.Kind, idx)
		dev, err := NewDevice(clock, id, p)
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("host %s: %w", name, err)
		}
		h.devices = append(h.devices, dev)
	}
	// The device set is immutable after construction, so the per-kind
	// views are built once: DevicesByKind sits on the per-invocation
	// placement path.
	h.byKind = make(map[Kind][]*Device, 4)
	for _, d := range h.devices {
		if d.Kind() == CPU {
			// Kind CPU always resolves to the host CPU device alone.
			continue
		}
		h.byKind[d.Kind()] = append(h.byKind[d.Kind()], d)
	}
	h.byKind[CPU] = []*Device{h.cpu}
	return h, nil
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Clock returns the host's time source.
func (h *Host) Clock() vclock.Clock { return h.clock }

// CPU returns the host CPU device.
func (h *Host) CPU() *Device { return h.cpu }

// Devices returns all accelerator devices (excluding the CPU).
func (h *Host) Devices() []*Device {
	out := make([]*Device, len(h.devices))
	copy(out, h.devices)
	return out
}

// DevicesByKind returns the accelerator devices of the given kind, or the
// CPU device for Kind CPU. The returned slice is a shared read-only view;
// callers must not modify it.
func (h *Host) DevicesByKind(kind Kind) []*Device {
	return h.byKind[kind]
}

// Device returns the device with the given ID, if present.
func (h *Host) Device(id string) (*Device, bool) {
	if h.cpu.ID() == id {
		return h.cpu, true
	}
	for _, d := range h.devices {
		if d.ID() == id {
			return d, true
		}
	}
	return nil, false
}

// TotalEnergy sums modeled energy across the CPU and all devices.
func (h *Host) TotalEnergy() float64 {
	total := h.cpu.Energy()
	for _, d := range h.devices {
		total += d.Energy()
	}
	return total
}

// Close shuts down every device on the host.
func (h *Host) Close() {
	if h.cpu != nil {
		h.cpu.Close()
	}
	for _, d := range h.devices {
		d.Close()
	}
}
