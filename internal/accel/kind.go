// Package accel models hardware accelerators as simulated devices.
//
// A Device is a contended resource built from psched engines: one engine
// for the compute fabric (processor shared, the way MPS divides SMs among
// concurrent contexts) and one for the host-device interconnect. Contexts
// are the unit of sharing: acquiring a context pays the device's runtime
// initialization cost (e.g. CUDA context creation), the number of
// concurrently held contexts is capped by the device profile's Slots, and
// all work (copies, kernel launches) is charged against the device's cost
// model in modeled time through a vclock.Clock.
//
// The three sharing levels of the paper map directly onto context usage:
//
//   - time sharing: Slots=1 and a fresh context per task;
//   - space sharing (MPS): Slots=N and a fresh context per task;
//   - KaaS: Slots=N and long-lived contexts reused across invocations.
package accel

import "fmt"

// Kind identifies the accelerator architecture a device implements.
type Kind int

// Supported accelerator kinds.
const (
	CPU Kind = iota + 1
	GPU
	FPGA
	TPU
	QPU
)

// String returns the conventional short name of the kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case FPGA:
		return "FPGA"
	case TPU:
		return "TPU"
	case QPU:
		return "QPU"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a short name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "CPU", "cpu":
		return CPU, nil
	case "GPU", "gpu":
		return GPU, nil
	case "FPGA", "fpga":
		return FPGA, nil
	case "TPU", "tpu":
		return TPU, nil
	case "QPU", "qpu":
		return QPU, nil
	default:
		return 0, fmt.Errorf("accel: unknown kind %q", s)
	}
}
