package accel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"kaas/internal/psched"
	"kaas/internal/vclock"
)

// Errors returned by device operations.
var (
	// ErrOutOfMemory indicates a device memory allocation did not fit.
	ErrOutOfMemory = errors.New("accel: out of device memory")
	// ErrContextReleased indicates use of a context after Release.
	ErrContextReleased = errors.New("accel: context already released")
	// ErrDeviceClosed indicates the device has been shut down.
	ErrDeviceClosed = errors.New("accel: device closed")
	// ErrDeviceFailed indicates the device is in an injected failure
	// state (XID error, thermal shutdown, link drop). Operations fail
	// until the device is repaired.
	ErrDeviceFailed = errors.New("accel: device failed")
)

// Device is one simulated accelerator instance. All methods are safe for
// concurrent use. Compute contention follows processor sharing (matching
// MPS-style space sharing); host-device copies contend on a shared link.
type Device struct {
	id      string
	profile Profile
	clock   vclock.Clock

	compute *psched.Engine
	link    *psched.Engine
	slots   chan struct{}

	mu         sync.Mutex
	memUsed    int64
	closed     bool
	failed     bool
	createdAt  time.Time
	ctxCounter int
	activeCtx  int
	coldStarts int
	// slotHeld accumulates slot occupancy of released contexts;
	// liveCtxStartSum is the sum of live contexts' acquire offsets from
	// createdAt, so Stats can charge still-held slots without a context
	// list.
	slotHeld        time.Duration
	liveCtxStartSum time.Duration
}

// NewDevice creates a device with the given id and profile, timed by clock.
func NewDevice(clock vclock.Clock, id string, profile Profile) (*Device, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	profile = profile.withDefaults()
	compute, err := psched.New(clock, psched.Config{
		Capacity:   profile.ComputeRate * profile.SpeedFactor,
		Discipline: psched.ProcessorSharing,
	})
	if err != nil {
		return nil, fmt.Errorf("accel: compute engine: %w", err)
	}
	link, err := psched.New(clock, psched.Config{
		Capacity:   profile.CopyBandwidth,
		Discipline: psched.ProcessorSharing,
	})
	if err != nil {
		compute.Close()
		return nil, fmt.Errorf("accel: link engine: %w", err)
	}
	return &Device{
		id:        id,
		profile:   profile,
		clock:     clock,
		compute:   compute,
		link:      link,
		slots:     make(chan struct{}, profile.Slots),
		createdAt: clock.Now(),
	}, nil
}

// ID returns the device identifier.
func (d *Device) ID() string { return d.id }

// Profile returns the device's cost model (with defaults applied).
func (d *Device) Profile() Profile { return d.profile }

// Kind returns the device's accelerator kind.
func (d *Device) Kind() Kind { return d.profile.Kind }

// Fail puts the device into a failure state: all new operations return
// ErrDeviceFailed until Repair is called. Used for failure-injection
// testing of the runtime's failover behaviour.
func (d *Device) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
}

// Repair clears an injected failure.
func (d *Device) Repair() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = false
}

// Failed reports whether the device is in a failure state.
func (d *Device) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// Close shuts the device down. Outstanding operations fail.
func (d *Device) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	d.compute.Close()
	d.link.Close()
}

// Acquire obtains an execution context, blocking while all slots are held
// (this queueing is exactly the paper's time sharing when Slots is 1). It
// pays the profile's RuntimeInit cost before returning.
func (d *Device) Acquire(ctx context.Context) (*Context, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrDeviceClosed
	}
	if d.failed {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrDeviceFailed, d.id)
	}
	d.mu.Unlock()

	select {
	case d.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	d.clock.Sleep(d.profile.RuntimeInit)

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		<-d.slots
		return nil, ErrDeviceClosed
	}
	d.ctxCounter++
	d.activeCtx++
	d.coldStarts++
	now := d.clock.Now()
	c := &Context{
		id:         fmt.Sprintf("%s/ctx-%d", d.id, d.ctxCounter),
		device:     d,
		acquiredAt: now,
	}
	d.liveCtxStartSum += now.Sub(d.createdAt)
	d.mu.Unlock()
	return c, nil
}

// Stats is a point-in-time snapshot of device state.
type Stats struct {
	// ActiveContexts is the number of currently held contexts.
	ActiveContexts int
	// ColdStarts counts context creations (each paid RuntimeInit).
	ColdStarts int
	// MemoryUsed is the current device memory allocation.
	MemoryUsed int64
	// ComputeBusy is total modeled time the compute fabric was active.
	ComputeBusy time.Duration
	// ComputeActive is the number of kernels executing right now.
	ComputeActive int
	// WorkDone is the total compute work served.
	WorkDone float64
	// SlotBusy is cumulative modeled time context slots were held,
	// summed across slots — the "device-seconds" a tenancy accounting
	// would bill. A device holding 2 contexts for 1 modeled second
	// accrues 2 seconds.
	SlotBusy time.Duration
	// Uptime is modeled time since device creation.
	Uptime time.Duration
}

// Stats returns current device statistics.
func (d *Device) Stats() Stats {
	cu := d.compute.Usage()
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	// Slot-busy time of live contexts: each has been held from its
	// acquire instant to now; the start-offset sum folds them all in
	// without tracking the context list.
	uptime := now.Sub(d.createdAt)
	slotBusy := d.slotHeld + time.Duration(d.activeCtx)*uptime - d.liveCtxStartSum
	return Stats{
		ActiveContexts: d.activeCtx,
		ColdStarts:     d.coldStarts,
		MemoryUsed:     d.memUsed,
		ComputeBusy:    cu.BusyTime,
		ComputeActive:  cu.Active,
		WorkDone:       cu.WorkDone,
		SlotBusy:       slotBusy,
		Uptime:         uptime,
	}
}

// Energy returns the modeled energy in joules consumed so far, using a
// two-level power model: idle power for the whole uptime plus the
// busy-idle delta for time the compute fabric was active.
func (d *Device) Energy() float64 {
	s := d.Stats()
	idle := d.profile.IdlePower * s.Uptime.Seconds()
	dynamic := (d.profile.BusyPower - d.profile.IdlePower) * s.ComputeBusy.Seconds()
	return idle + dynamic
}

// Utilization returns the instantaneous compute utilization in [0, 1]:
// 1 when any kernel is resident on the fabric.
func (d *Device) Utilization() float64 {
	if d.compute.Usage().Active > 0 {
		return 1
	}
	return 0
}

// Context is a held execution context on a device (the analogue of a CUDA
// context / TPU client / FPGA runtime session). A context may be used by
// several goroutines concurrently; kernels launched through it contend on
// the device's shared compute fabric.
type Context struct {
	id         string
	device     *Device
	acquiredAt time.Time

	mu       sync.Mutex
	released bool
	memHeld  int64
}

// ID returns the context identifier.
func (c *Context) ID() string { return c.id }

// Device returns the owning device.
func (c *Context) Device() *Device { return c.device }

// Release frees the context's slot and any memory it still holds.
func (c *Context) Release() {
	c.mu.Lock()
	if c.released {
		c.mu.Unlock()
		return
	}
	c.released = true
	held := c.memHeld
	c.memHeld = 0
	c.mu.Unlock()

	d := c.device
	now := d.clock.Now()
	d.mu.Lock()
	d.memUsed -= held
	d.activeCtx--
	d.slotHeld += now.Sub(c.acquiredAt)
	d.liveCtxStartSum -= c.acquiredAt.Sub(d.createdAt)
	d.mu.Unlock()
	<-d.slots
}

// checkLive returns an error if the context or device is unusable.
func (c *Context) checkLive() error {
	c.mu.Lock()
	released := c.released
	c.mu.Unlock()
	if released {
		return ErrContextReleased
	}
	c.device.mu.Lock()
	closed := c.device.closed
	failed := c.device.failed
	c.device.mu.Unlock()
	if closed {
		return ErrDeviceClosed
	}
	if failed {
		return fmt.Errorf("%w: %s", ErrDeviceFailed, c.device.id)
	}
	return nil
}

// Alloc reserves bytes of device memory for this context.
func (c *Context) Alloc(bytes int64) error {
	if err := c.checkLive(); err != nil {
		return err
	}
	if bytes < 0 {
		return fmt.Errorf("accel: negative allocation %d", bytes)
	}
	d := c.device
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.memUsed+bytes > d.profile.MemoryBytes {
		return fmt.Errorf("%w: want %d, used %d of %d",
			ErrOutOfMemory, bytes, d.memUsed, d.profile.MemoryBytes)
	}
	d.memUsed += bytes
	c.mu.Lock()
	c.memHeld += bytes
	c.mu.Unlock()
	return nil
}

// Free returns bytes of device memory.
func (c *Context) Free(bytes int64) {
	if bytes <= 0 {
		return
	}
	c.mu.Lock()
	if bytes > c.memHeld {
		bytes = c.memHeld
	}
	c.memHeld -= bytes
	c.mu.Unlock()
	d := c.device
	d.mu.Lock()
	d.memUsed -= bytes
	d.mu.Unlock()
}

// Copy transfers bytes across the host-device link, contending with other
// transfers, and returns the modeled transfer duration.
func (c *Context) Copy(ctx context.Context, bytes int64) (time.Duration, error) {
	if err := c.checkLive(); err != nil {
		return 0, err
	}
	if bytes < 0 {
		return 0, fmt.Errorf("accel: negative copy size %d", bytes)
	}
	c.device.clock.Sleep(c.device.profile.CopyLatency)
	d, err := c.device.link.Run(ctx, float64(bytes))
	if err != nil {
		return d, fmt.Errorf("copy on %s: %w", c.device.id, err)
	}
	return d + c.device.profile.CopyLatency, nil
}

// Exec launches a kernel execution of the given work units on the device
// fabric and blocks until it completes, returning the modeled kernel time
// (including launch overhead).
func (c *Context) Exec(ctx context.Context, work float64) (time.Duration, error) {
	if err := c.checkLive(); err != nil {
		return 0, err
	}
	if work < 0 {
		return 0, fmt.Errorf("accel: negative work %v", work)
	}
	c.device.clock.Sleep(c.device.profile.LaunchOverhead)
	d, err := c.device.compute.Run(ctx, work)
	if err != nil {
		return d, fmt.Errorf("exec on %s: %w", c.device.id, err)
	}
	return d + c.device.profile.LaunchOverhead, nil
}

// ExecBatch launches the given work units as one coalesced kernel
// dispatch: the device pays LaunchOverhead once for the whole batch
// instead of once per member, then runs the summed work on the compute
// fabric. This is the modeled win of server-side micro-batching — N
// same-kernel invocations amortize a single launch. It returns the
// modeled batch time (including the single launch overhead).
func (c *Context) ExecBatch(ctx context.Context, works []float64) (time.Duration, error) {
	if err := c.checkLive(); err != nil {
		return 0, err
	}
	var total float64
	for _, w := range works {
		if w < 0 {
			return 0, fmt.Errorf("accel: negative work %v", w)
		}
		total += w
	}
	if len(works) == 0 {
		return 0, nil
	}
	c.device.clock.Sleep(c.device.profile.LaunchOverhead)
	d, err := c.device.compute.Run(ctx, total)
	if err != nil {
		return d, fmt.Errorf("exec batch on %s: %w", c.device.id, err)
	}
	return d + c.device.profile.LaunchOverhead, nil
}
