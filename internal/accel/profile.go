package accel

import (
	"fmt"
	"time"
)

// Profile is the cost model of a device type. All durations are modeled
// time; all rates are per modeled second.
type Profile struct {
	// Name is the marketing name of the device, e.g. "Tesla P100".
	Name string
	// Kind is the accelerator architecture.
	Kind Kind

	// RuntimeInit is the cost of creating a fresh execution context on
	// the device (CUDA context creation, TPU system init, FPGA runtime
	// bring-up). Paid on every Device.Acquire.
	RuntimeInit time.Duration
	// LibraryInit is the cost of initializing the host-side framework
	// that drives the device (importing numba, TensorFlow, PyLog,
	// Qiskit). It is a property of a host process, not of a context:
	// callers that spawn a fresh process per task (the paper's baseline)
	// pay it per task, while a KaaS runner pays it once.
	LibraryInit time.Duration
	// LaunchOverhead is the fixed cost of dispatching one kernel
	// execution on an existing context.
	LaunchOverhead time.Duration

	// ComputeRate is the sustained execution rate in work units per
	// second. Work units are kernel-defined (FLOPs for dense kernels).
	ComputeRate float64
	// CopyBandwidth is the host-device interconnect bandwidth in
	// bytes per second.
	CopyBandwidth float64
	// CopyLatency is the fixed per-transfer cost.
	CopyLatency time.Duration

	// Slots is the maximum number of concurrently held contexts
	// (1 disables space sharing). Zero defaults to 1.
	Slots int
	// MemoryBytes is the device memory capacity.
	MemoryBytes int64

	// IdlePower and BusyPower are the device power draw in watts when
	// idle and when executing kernels.
	IdlePower float64
	BusyPower float64

	// SpeedFactor scales ComputeRate for an individual device instance,
	// modeling the unit-to-unit performance variability the paper
	// observes across its GPUs. Zero defaults to 1.
	SpeedFactor float64
}

// Validate reports whether the profile is usable.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("accel: profile has no name")
	}
	if p.Kind == 0 {
		return fmt.Errorf("accel: profile %q has no kind", p.Name)
	}
	if p.ComputeRate <= 0 {
		return fmt.Errorf("accel: profile %q has non-positive compute rate", p.Name)
	}
	if p.CopyBandwidth <= 0 {
		return fmt.Errorf("accel: profile %q has non-positive copy bandwidth", p.Name)
	}
	if p.Slots < 0 {
		return fmt.Errorf("accel: profile %q has negative slots", p.Name)
	}
	if p.MemoryBytes < 0 {
		return fmt.Errorf("accel: profile %q has negative memory", p.Name)
	}
	return nil
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (p Profile) withDefaults() Profile {
	if p.Slots == 0 {
		p.Slots = 1
	}
	if p.SpeedFactor == 0 {
		p.SpeedFactor = 1
	}
	return p
}

// Predefined profiles calibrated against the testbeds in the paper's §5.
// Compute rates are effective (achieved) rates for the paper's kernel
// implementations, not datasheet peaks; initialization costs reproduce the
// overhead split of Figs. 2, 6 and 7.
var (
	// TeslaP100 models the four-GPU host of §5.1–§5.3 and §5.6.1.
	TeslaP100 = Profile{
		Name:           "Tesla P100",
		Kind:           GPU,
		RuntimeInit:    410 * time.Millisecond,
		LibraryInit:    420 * time.Millisecond,
		LaunchOverhead: 2 * time.Millisecond,
		ComputeRate:    8e11, // effective numba-CUDA FLOP/s
		CopyBandwidth:  12e9, // PCIe 3.0 x16 effective
		CopyLatency:    50 * time.Microsecond,
		Slots:          16,
		MemoryBytes:    16 << 30,
		IdlePower:      30,
		BusyPower:      250,
	}

	// TeslaV100 models the eight-GPU host of §5.4–§5.5. The compute rate
	// reflects tensor-core inference throughput (~1k ResNet-50 images/s,
	// matching the paper's 70 s for 64,000 images on one GPU).
	TeslaV100 = Profile{
		Name:           "Tesla V100",
		Kind:           GPU,
		RuntimeInit:    390 * time.Millisecond,
		LibraryInit:    830 * time.Millisecond, // PyTorch import
		LaunchOverhead: 1 * time.Millisecond,
		ComputeRate:    8e12,
		CopyBandwidth:  14e9,
		CopyLatency:    50 * time.Microsecond,
		Slots:          16,
		MemoryBytes:    32 << 30,
		IdlePower:      35,
		BusyPower:      300,
	}

	// NvidiaA100 models the motivating-example GPU of Fig. 2.
	NvidiaA100 = Profile{
		Name:           "A100 80GB",
		Kind:           GPU,
		RuntimeInit:    680 * time.Millisecond,
		LibraryInit:    900 * time.Millisecond,
		LaunchOverhead: 1 * time.Millisecond,
		ComputeRate:    6e12,
		CopyBandwidth:  24e9,
		CopyLatency:    40 * time.Microsecond,
		Slots:          16,
		MemoryBytes:    80 << 30,
		IdlePower:      50,
		BusyPower:      400,
	}

	// AlveoU250 models the FPGA testbed of §5.6.2. PyLog offers no
	// spatial sharing, so the fabric holds a single context.
	AlveoU250 = Profile{
		Name:           "Alveo U250",
		Kind:           FPGA,
		RuntimeInit:    350 * time.Millisecond, // PYNQ/PyLog runtime bring-up
		LibraryInit:    620 * time.Millisecond, // PyLog import + driver attach
		LaunchOverhead: 5 * time.Millisecond,
		// PyLog-generated kernels process a few million elements per
		// second end to end — orders of magnitude from hand-tuned HLS
		// (§5.6.2 reports 80-100 ms for hand-tuned vs ~0.4 s via PyLog).
		ComputeRate:   7e6,
		CopyBandwidth: 10e9,
		CopyLatency:   100 * time.Microsecond,
		Slots:         1,
		MemoryBytes:   64 << 30,
		IdlePower:     25,
		BusyPower:     110,
	}

	// TPUv3Chip models one chip of the v3-8 board of §5.6.3. A board is
	// four of these; each chip serves one context at a time (running two
	// processes on one chip errors out, per the paper).
	TPUv3Chip = Profile{
		Name:           "TPU v3 chip",
		Kind:           TPU,
		RuntimeInit:    3200 * time.Millisecond, // TPU system init
		LibraryInit:    9500 * time.Millisecond, // TensorFlow import
		LaunchOverhead: 3 * time.Millisecond,
		// Effective per-chip tf.nn.conv2d element throughput including
		// layout and memory-bound overheads — far below matrix-unit peak.
		ComputeRate:   5e8,
		CopyBandwidth: 8e9,
		CopyLatency:   120 * time.Microsecond,
		Slots:         1,
		MemoryBytes:   16 << 30,
		IdlePower:     55,
		BusyPower:     220,
	}

	// AerSimulatorHost models the classical host that runs Qiskit Aer
	// simulator backends (QASM, MPS, statevector) in §5.6.4.
	AerSimulatorHost = Profile{
		Name:           "Aer simulator host",
		Kind:           QPU,
		RuntimeInit:    900 * time.Millisecond,  // session + backend setup
		LibraryInit:    2100 * time.Millisecond, // Qiskit import
		LaunchOverhead: 15 * time.Millisecond,
		ComputeRate:    2e8, // amplitude-gate operations per second
		CopyBandwidth:  1e9,
		CopyLatency:    1 * time.Millisecond,
		Slots:          4,
		MemoryBytes:    64 << 30,
		IdlePower:      40,
		BusyPower:      130,
	}

	// FalconR4T models the five-qubit IBM Falcon r4T processor. The
	// compute rate is dominated by shot execution and control latency.
	FalconR4T = Profile{
		Name:           "Falcon r4T",
		Kind:           QPU,
		RuntimeInit:    1800 * time.Millisecond, // session handshake + calibration fetch
		LibraryInit:    2100 * time.Millisecond,
		LaunchOverhead: 250 * time.Millisecond, // queue + control-plane per job
		ComputeRate:    4e4,                    // shot-gates per second
		CopyBandwidth:  5e7,
		CopyLatency:    20 * time.Millisecond,
		Slots:          1,
		MemoryBytes:    1 << 20,
		IdlePower:      0, // cryostat power not attributed to jobs
		BusyPower:      0,
	}

	// FalconR511H models the seven-qubit IBM Falcon r5.11H processor.
	FalconR511H = Profile{
		Name:           "Falcon r5.11H",
		Kind:           QPU,
		RuntimeInit:    1500 * time.Millisecond,
		LibraryInit:    2100 * time.Millisecond,
		LaunchOverhead: 200 * time.Millisecond,
		ComputeRate:    6e4,
		CopyBandwidth:  5e7,
		CopyLatency:    20 * time.Millisecond,
		Slots:          1,
		MemoryBytes:    1 << 20,
		IdlePower:      0,
		BusyPower:      0,
	}

	// XeonE52698 models the CPU of the main GPU testbed for CPU-only
	// baselines. There is no device runtime to initialize.
	XeonE52698 = Profile{
		Name:           "Xeon E5-2698 v4",
		Kind:           CPU,
		RuntimeInit:    0,
		LibraryInit:    420 * time.Millisecond, // numba import for CPU path
		LaunchOverhead: 100 * time.Microsecond,
		ComputeRate:    4.2e10, // effective numba CPU FLOP/s across cores
		CopyBandwidth:  50e9,   // host memory; copies are nearly free
		CopyLatency:    0,
		Slots:          40,
		MemoryBytes:    1 << 40,
		IdlePower:      90,
		BusyPower:      270,
	}

	// EPYC7513 models the remote client host of §5.3.
	EPYC7513 = Profile{
		Name:           "EPYC 7513",
		Kind:           CPU,
		RuntimeInit:    0,
		LibraryInit:    420 * time.Millisecond,
		LaunchOverhead: 100 * time.Microsecond,
		ComputeRate:    7e10,
		CopyBandwidth:  60e9,
		CopyLatency:    0,
		Slots:          64,
		MemoryBytes:    4 << 40,
		IdlePower:      100,
		BusyPower:      400,
	}
)
