// Package metrics provides the measurement machinery of the evaluation
// harness: per-invocation phase breakdowns, sample statistics with 95%
// confidence intervals (the paper reports mean and 95% CI over ten
// samples), and time-series recording for the autoscaling experiment.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Breakdown decomposes one task completion time into the phases the paper
// plots in Figs. 2 and 7. Zero-valued phases did not occur (e.g. no
// library init on a warm start).
type Breakdown struct {
	// Queue is time waiting for a device slot or runner capacity.
	Queue time.Duration
	// Spawn is task-runner process start cost.
	Spawn time.Duration
	// LibraryInit is host framework import cost.
	LibraryInit time.Duration
	// RuntimeInit is device context creation cost.
	RuntimeInit time.Duration
	// Compile is JIT/compile cost on an artifact-cache miss; a cache hit
	// (or a platform without a cache) leaves it zero.
	Compile time.Duration
	// Setup is kernel-specific one-time work (weights, transpile).
	Setup time.Duration
	// Network is client-server transfer time.
	Network time.Duration
	// CopyIn and CopyOut are host-device transfers.
	CopyIn, CopyOut time.Duration
	// Exec is kernel execution on the device fabric.
	Exec time.Duration
	// Other is unattributed time (client launch, response handling).
	Other time.Duration
}

// Total sums all phases.
func (b Breakdown) Total() time.Duration {
	return b.Queue + b.Spawn + b.LibraryInit + b.RuntimeInit + b.Compile +
		b.Setup + b.Network + b.CopyIn + b.CopyOut + b.Exec + b.Other
}

// Overhead is total time minus data movement and kernel execution — the
// paper's "overhead" series in Fig. 7.
func (b Breakdown) Overhead() time.Duration {
	return b.Total() - b.KernelTime()
}

// KernelTime is data copy plus computation — the paper's "kernel time".
func (b Breakdown) KernelTime() time.Duration {
	return b.CopyIn + b.Exec + b.CopyOut
}

// Add returns the phase-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Queue:       b.Queue + o.Queue,
		Spawn:       b.Spawn + o.Spawn,
		LibraryInit: b.LibraryInit + o.LibraryInit,
		RuntimeInit: b.RuntimeInit + o.RuntimeInit,
		Compile:     b.Compile + o.Compile,
		Setup:       b.Setup + o.Setup,
		Network:     b.Network + o.Network,
		CopyIn:      b.CopyIn + o.CopyIn,
		CopyOut:     b.CopyOut + o.CopyOut,
		Exec:        b.Exec + o.Exec,
		Other:       b.Other + o.Other,
	}
}

// Phase is one named component of a Breakdown.
type Phase struct {
	// Name is the snake_case phase label used in metric and stats output.
	Name string
	// D is the phase's duration.
	D time.Duration
}

// Phases lists every phase of the breakdown in plot order, including
// zero-valued ones, for metric accumulation and export.
func (b Breakdown) Phases() []Phase {
	return []Phase{
		{"queue", b.Queue},
		{"spawn", b.Spawn},
		{"library_init", b.LibraryInit},
		{"runtime_init", b.RuntimeInit},
		{"compile", b.Compile},
		{"setup", b.Setup},
		{"network", b.Network},
		{"copy_in", b.CopyIn},
		{"copy_out", b.CopyOut},
		{"exec", b.Exec},
		{"other", b.Other},
	}
}

// Sample is a set of float64 observations.
type Sample struct {
	vals []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.vals = append(s.vals, v) }

// AddDuration appends a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the sample mean (0 for empty samples).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Std returns the sample standard deviation (Bessel corrected).
func (s *Sample) Std() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// tCritical95 holds two-sided 95% Student-t critical values by degrees of
// freedom; beyond the table the normal approximation 1.96 is used.
var tCritical95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func (s *Sample) CI95() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.96
	if df < len(tCritical95) {
		t = tCritical95[df]
	}
	return t * s.Std() / math.Sqrt(float64(n))
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between the two closest ranks (the "exclusive" C = 1
// variant: rank p/100 * (n-1) over the sorted sample). p <= 0 returns the
// minimum, p >= 100 the maximum, and an empty sample returns 0.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, s.vals)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String formats the sample as "mean ± ci95 (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.N())
}

// Point is one time-series observation.
type Point struct {
	T time.Duration // offset from series start
	V float64
}

// TimeSeries records timestamped values, used for the autoscaling
// experiment's client/runner/utilization traces. It is safe for
// concurrent use.
type TimeSeries struct {
	mu     sync.Mutex
	start  time.Time
	points []Point
}

// NewTimeSeries creates a series anchored at start.
func NewTimeSeries(start time.Time) *TimeSeries {
	return &TimeSeries{start: start}
}

// Record appends a value observed at time now.
func (ts *TimeSeries) Record(now time.Time, v float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.points = append(ts.points, Point{T: now.Sub(ts.start), V: v})
}

// Points returns a copy of the recorded points.
func (ts *TimeSeries) Points() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Point, len(ts.points))
	copy(out, ts.points)
	return out
}

// Bin averages the series into fixed-width buckets, returning one value
// per bucket (NaN-free: empty buckets repeat the previous value, starting
// from 0).
func (ts *TimeSeries) Bin(width time.Duration, total time.Duration) []float64 {
	if width <= 0 || total <= 0 {
		return nil
	}
	n := int(total/width) + 1
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, p := range ts.Points() {
		i := int(p.T / width)
		if i < 0 || i >= n {
			continue
		}
		sums[i] += p.V
		counts[i]++
	}
	out := make([]float64, n)
	var last float64
	for i := range out {
		if counts[i] > 0 {
			last = sums[i] / float64(counts[i])
		}
		out[i] = last
	}
	return out
}
