package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the runtime metrics registry: lock-cheap counters,
// gauges, and fixed-bucket latency histograms that the control plane
// updates on every invocation. Metric updates are single atomic
// operations; the registry lock is only taken on first registration of a
// (name, labels) pair and when exporting, so hot paths that cache the
// returned metric pointers never contend.

// Counter is a monotonically increasing counter. The zero value is ready
// to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the histogram bucket upper bounds used for
// invocation latencies: roughly exponential from 1 ms to 5 min, covering
// warm sub-millisecond GPU calls up to FPGA transpilation cold starts.
// Observations beyond the last bound land in the overflow bucket.
func DefaultLatencyBuckets() []time.Duration {
	return []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		1 * time.Second, 2500 * time.Millisecond, 5 * time.Second,
		10 * time.Second, 30 * time.Second, 60 * time.Second,
		5 * time.Minute,
	}
}

// Histogram is a fixed-bucket duration histogram. Observations are two
// atomic adds plus min/max maintenance; quantiles are estimated by linear
// interpolation within the bucket containing the requested rank, clamped
// to the observed min and max. The zero value is not usable; construct
// with NewHistogram or NewLatencyHistogram.
type Histogram struct {
	bounds []time.Duration // sorted ascending bucket upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64 // nanoseconds; valid when count > 0
	max    atomic.Int64 // nanoseconds; valid when count > 0
}

// NewHistogram creates a histogram with the given sorted bucket upper
// bounds.
func NewHistogram(bounds []time.Duration) *Histogram {
	b := make([]time.Duration, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h := &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// NewLatencyHistogram creates a histogram over DefaultLatencyBuckets.
func NewLatencyHistogram() *Histogram { return NewHistogram(DefaultLatencyBuckets()) }

// Observe records one duration. Negative observations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.min.Load()
		if int64(d) >= cur || h.min.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket containing the rank, clamped to the
// observed min and max so single-sample and narrow distributions do not
// report bucket bounds they never reached. Returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	min, max := time.Duration(h.min.Load()), time.Duration(h.max.Load())
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := q * float64(total)
	var cum uint64
	lower := time.Duration(0)
	for i, ub := range h.bounds {
		c := h.counts[i].Load()
		if c > 0 && float64(cum+c) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			return clampDuration(lower+time.Duration(frac*float64(ub-lower)), min, max)
		}
		cum += c
		lower = ub
	}
	// Rank lands in the overflow bucket: the best estimate is the largest
	// observation.
	return max
}

func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// BucketCount is one histogram bucket in a snapshot, with the cumulative
// count of observations at or below its upper bound.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound.
	UpperBound time.Duration
	// CumulativeCount counts observations <= UpperBound.
	CumulativeCount uint64
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count         uint64
	Sum           time.Duration
	Min, Max      time.Duration
	Mean          time.Duration
	P50, P95, P99 time.Duration
	Buckets       []BucketCount
}

// Snapshot captures the histogram's current state. Concurrent Observe
// calls may tear between fields; each field is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	var cum uint64
	s.Buckets = make([]BucketCount, len(h.bounds))
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets[i] = BucketCount{UpperBound: ub, CumulativeCount: cum}
	}
	return s
}

// metricKey identifies one metric instance inside a family.
type metricKey struct {
	name   string
	labels string // rendered `k1="v1",k2="v2"` form, sorted by construction
}

// Registry is a set of named metrics with label sets, exportable in the
// Prometheus text exposition format. Get-or-create methods are safe for
// concurrent use; callers on hot paths should cache the returned pointers
// so updates stay single atomic operations.
type Registry struct {
	mu       sync.RWMutex
	types    map[string]string // family name -> counter|gauge|histogram
	help     map[string]string
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
	buckets  map[string][]time.Duration // histogram family -> bucket bounds
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		types:    make(map[string]string),
		help:     make(map[string]string),
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]*Gauge),
		hists:    make(map[metricKey]*Histogram),
		buckets:  make(map[string][]time.Duration),
	}
}

// Help sets the HELP text for a metric family.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// SetHistogramBuckets overrides the bucket bounds used for histograms of
// the named family created after the call.
func (r *Registry) SetHistogramBuckets(name string, bounds []time.Duration) {
	b := make([]time.Duration, len(bounds))
	copy(b, bounds)
	r.mu.Lock()
	r.buckets[name] = b
	r.mu.Unlock()
}

// renderLabels turns alternating key, value strings into the canonical
// `k1="v1",k2="v2"` form. Panics on an odd number of arguments — label
// sets are static call sites, not data.
func renderLabels(kv []string) string {
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter returns the counter for the name and label pairs, creating it
// on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := metricKey{name, renderLabels(labels)}
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	r.types[name] = "counter"
	c = &Counter{}
	r.counters[key] = c
	return c
}

// Gauge returns the gauge for the name and label pairs, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key := metricKey{name, renderLabels(labels)}
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	r.types[name] = "gauge"
	g = &Gauge{}
	r.gauges[key] = g
	return g
}

// Histogram returns the histogram for the name and label pairs, creating
// it on first use with the family's configured buckets (default
// DefaultLatencyBuckets).
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	key := metricKey{name, renderLabels(labels)}
	r.mu.RLock()
	h, ok := r.hists[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	r.types[name] = "histogram"
	bounds := r.buckets[name]
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	h = NewHistogram(bounds)
	r.hists[key] = h
	return h
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series
// sorted by label set for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()

	names := make([]string, 0, len(r.types))
	for name := range r.types {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		if help := r.help[name]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, r.types[name]); err != nil {
			return err
		}
		switch r.types[name] {
		case "counter":
			for _, key := range sortedKeys(r.counters, name) {
				if err := writeSeries(w, name, key.labels, "", float64(r.counters[key].Value())); err != nil {
					return err
				}
			}
		case "gauge":
			for _, key := range sortedKeys(r.gauges, name) {
				if err := writeSeries(w, name, key.labels, "", float64(r.gauges[key].Value())); err != nil {
					return err
				}
			}
		case "histogram":
			for _, key := range sortedKeys(r.hists, name) {
				if err := writeHistogram(w, name, key.labels, r.hists[key]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// sortedKeys returns the keys of one family in m, sorted by label set.
func sortedKeys[M any](m map[metricKey]M, name string) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for key := range m {
		if key.name == name {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].labels < keys[j].labels })
	return keys
}

// writeSeries writes one `name{labels} value` line; suffix extends the
// metric name (histogram _bucket/_sum/_count lines).
func writeSeries(w io.Writer, name, labels, suffix string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s%s %s\n", name, suffix, formatValue(v))
	} else {
		_, err = fmt.Fprintf(w, "%s%s{%s} %s\n", name, suffix, labels, formatValue(v))
	}
	return err
}

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent, everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// writeHistogram writes the cumulative _bucket series plus _sum and
// _count for one histogram, with durations expressed in seconds.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	snap := h.Snapshot()
	for _, b := range snap.Buckets {
		le := fmt.Sprintf(`le="%g"`, b.UpperBound.Seconds())
		ls := le
		if labels != "" {
			ls = labels + "," + le
		}
		if err := writeSeries(w, name, ls, "_bucket", float64(b.CumulativeCount)); err != nil {
			return err
		}
	}
	inf := `le="+Inf"`
	if labels != "" {
		inf = labels + "," + inf
	}
	if err := writeSeries(w, name, inf, "_bucket", float64(snap.Count)); err != nil {
		return err
	}
	if err := writeSeries(w, name, labels, "_sum", snap.Sum.Seconds()); err != nil {
		return err
	}
	return writeSeries(w, name, labels, "_count", float64(snap.Count))
}
