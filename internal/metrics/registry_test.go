package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Counter = %d, want 5", got)
	}
	var g Gauge
	g.Inc()
	g.Add(10)
	g.Dec()
	if got := g.Value(); got != 10 {
		t.Errorf("Gauge = %d, want 10", got)
	}
	g.Add(-15)
	if got := g.Value(); got != -5 {
		t.Errorf("Gauge = %d, want -5 (gauges may go negative)", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Errorf("Gauge = %d after Set, want 7", got)
	}
}

func TestRegistryGetOrCreateReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits", "kernel", "matmul")
	c2 := r.Counter("hits", "kernel", "matmul")
	if c1 != c2 {
		t.Error("same (name, labels) returned distinct counters")
	}
	if c3 := r.Counter("hits", "kernel", "mci"); c3 == c1 {
		t.Error("different labels share a counter")
	}
	if g1, g2 := r.Gauge("depth"), r.Gauge("depth"); g1 != g2 {
		t.Error("same gauge name returned distinct gauges")
	}
	if h1, h2 := r.Histogram("lat"), r.Histogram("lat"); h1 != h2 {
		t.Error("same histogram name returned distinct histograms")
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c", "k", "v").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "k", "v").Value(); got != 1600 {
		t.Errorf("concurrent increments = %d, want 1600", got)
	}
}

func TestRenderLabelsPanicsOnOddList(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd label list did not panic")
		}
	}()
	NewRegistry().Counter("c", "keyWithoutValue")
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram not all-zero: count=%d sum=%v min=%v max=%v mean=%v",
			h.Count(), h.Sum(), h.Min(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) of empty histogram = %v, want 0", q, got)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(7 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Min() != 7*time.Millisecond || h.Max() != 7*time.Millisecond {
		t.Errorf("min/max = %v/%v, want 7ms/7ms", h.Min(), h.Max())
	}
	// Every quantile of a single observation is that observation: the
	// in-bucket interpolation must clamp to the observed min and max
	// rather than report a bucket bound the sample never reached.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 7*time.Millisecond {
			t.Errorf("Quantile(%v) = %v, want 7ms", q, got)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond)
	h.Observe(time.Hour) // beyond the last bound: overflow bucket
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	// The high quantile's rank lands in the overflow bucket, whose only
	// defensible estimate is the observed max.
	if got := h.Quantile(0.99); got != time.Hour {
		t.Errorf("Quantile(0.99) = %v, want 1h (observed max)", got)
	}
	snap := h.Snapshot()
	if len(snap.Buckets) != 2 {
		t.Fatalf("snapshot has %d buckets, want 2", len(snap.Buckets))
	}
	if snap.Buckets[1].CumulativeCount != 1 {
		t.Errorf("cumulative count at 10ms = %d, want 1 (1h overflows)", snap.Buckets[1].CumulativeCount)
	}
}

func TestHistogramNegativeObservationCountsAsZero(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(-time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative observation: min=%v max=%v count=%d, want 0/0/1",
			h.Min(), h.Max(), h.Count())
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	h := NewLatencyHistogram()
	// 100 observations, 1..100 ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p50 < 25*time.Millisecond || p50 > 75*time.Millisecond {
		t.Errorf("P50 = %v, want within bucket-resolution of 50ms", p50)
	}
	if p99 < 90*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("P99 = %v, want within bucket-resolution of 99ms", p99)
	}
	if p50 > p99 {
		t.Errorf("P50 %v > P99 %v", p50, p99)
	}
	if h.Mean() != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", h.Mean())
	}
}

func TestHistogramSnapshotCumulative(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond})
	h.Observe(time.Millisecond)     // first bucket (bounds are inclusive)
	h.Observe(1500 * time.Microsecond) // second bucket
	h.Observe(4 * time.Millisecond) // third bucket
	snap := h.Snapshot()
	want := []uint64{1, 2, 3}
	for i, b := range snap.Buckets {
		if b.CumulativeCount != want[i] {
			t.Errorf("bucket %v cumulative = %d, want %d", b.UpperBound, b.CumulativeCount, want[i])
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Help("kaas_invocations_total", "Total invocations.")
	r.Counter("kaas_invocations_total", "kernel", "matmul").Add(3)
	r.Counter("kaas_invocations_total", "kernel", "mci").Add(1)
	r.Gauge("kaas_in_flight").Set(2)
	r.SetHistogramBuckets("kaas_latency_seconds", []time.Duration{time.Millisecond, time.Second})
	r.Histogram("kaas_latency_seconds", "kernel", "matmul").Observe(500 * time.Microsecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP kaas_invocations_total Total invocations.",
		"# TYPE kaas_invocations_total counter",
		`kaas_invocations_total{kernel="matmul"} 3`,
		`kaas_invocations_total{kernel="mci"} 1`,
		"# TYPE kaas_in_flight gauge",
		"kaas_in_flight 2",
		"# TYPE kaas_latency_seconds histogram",
		`kaas_latency_seconds_bucket{kernel="matmul",le="0.001"} 1`,
		`kaas_latency_seconds_bucket{kernel="matmul",le="1"} 1`,
		`kaas_latency_seconds_bucket{kernel="matmul",le="+Inf"} 1`,
		`kaas_latency_seconds_sum{kernel="matmul"} 0.0005`,
		`kaas_latency_seconds_count{kernel="matmul"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Deterministic: families sorted by name, series by label set.
	if strings.Index(out, "kaas_in_flight") > strings.Index(out, "kaas_invocations_total") {
		t.Error("families not sorted by name")
	}
	if strings.Index(out, `kernel="matmul"} 3`) > strings.Index(out, `kernel="mci"`) {
		t.Error("series not sorted by label set")
	}
}

func TestWritePrometheusEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", "a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if want := `c{k="a\"b\\c\nd"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("output missing escaped series %q:\n%s", want, sb.String())
	}
}
