package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBreakdownTotalAndOverhead(t *testing.T) {
	b := Breakdown{
		Queue:       1 * time.Second,
		Spawn:       2 * time.Second,
		LibraryInit: 3 * time.Second,
		RuntimeInit: 4 * time.Second,
		Setup:       5 * time.Second,
		Network:     6 * time.Second,
		CopyIn:      7 * time.Second,
		CopyOut:     8 * time.Second,
		Exec:        9 * time.Second,
		Other:       10 * time.Second,
	}
	if got := b.Total(); got != 55*time.Second {
		t.Errorf("Total = %v, want 55s", got)
	}
	if got := b.KernelTime(); got != 24*time.Second {
		t.Errorf("KernelTime = %v, want 24s", got)
	}
	if got := b.Overhead(); got != 31*time.Second {
		t.Errorf("Overhead = %v, want 31s", got)
	}
	sum := b.Add(b)
	if sum.Total() != 110*time.Second {
		t.Errorf("Add Total = %v, want 110s", sum.Total())
	}
}

func TestSampleStatsKnownValues(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Std(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Std = %v, want ~2.138", got)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.CI95() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample stats not all zero")
	}
	if s.Percentile(50) != 0 {
		t.Error("empty percentile not zero")
	}
	s.Add(7)
	if s.Mean() != 7 || s.Std() != 0 || s.CI95() != 0 {
		t.Error("single-observation stats wrong")
	}
}

func TestCI95TenSamples(t *testing.T) {
	// The paper uses ten samples: df=9 -> t=2.262.
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	want := 2.262 * s.Std() / math.Sqrt(10)
	if got := s.CI95(); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestCI95LargeSampleUsesNormal(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 10))
	}
	want := 1.96 * s.Std() / 10
	if got := s.CI95(); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestCI95CoversConstantSample(t *testing.T) {
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(3.5)
	}
	if got := s.CI95(); got != 0 {
		t.Errorf("CI95 of constant sample = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v, want 100", got)
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("P50 = %v, want 50.5", got)
	}
}

// TestPercentileInterpolation pins the documented behaviour: linear
// interpolation between the two closest ranks (rank p/100 * (n-1) over
// the sorted sample), not nearest-rank.
func TestPercentileInterpolation(t *testing.T) {
	for _, tt := range []struct {
		name string
		vals []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, 0},
		{"single p0", []float64{42}, 0, 42},
		{"single p50", []float64{42}, 50, 42},
		{"single p100", []float64{42}, 100, 42},
		{"two p50 midpoint", []float64{10, 20}, 50, 15},
		{"two p25", []float64{10, 20}, 25, 12.5},
		{"two p75", []float64{10, 20}, 75, 17.5},
		{"unsorted input", []float64{30, 10, 20}, 50, 20},
		{"three p25 interpolates", []float64{10, 20, 30}, 25, 15},
		{"four p50 between ranks", []float64{1, 2, 3, 4}, 50, 2.5},
		{"four p90", []float64{1, 2, 3, 4}, 90, 3.7},
		{"below range clamps to min", []float64{5, 6}, -10, 5},
		{"above range clamps to max", []float64{5, 6}, 200, 6},
	} {
		t.Run(tt.name, func(t *testing.T) {
			var s Sample
			for _, v := range tt.vals {
				s.Add(v)
			}
			if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Percentile(%v) of %v = %v, want %v", tt.p, tt.vals, got, tt.want)
			}
		})
	}
}

func TestMeanWithinMinMaxProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			// Skip pathological inputs whose sum overflows float64.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
				return true
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSampleString(t *testing.T) {
	var s Sample
	s.AddDuration(2 * time.Second)
	s.AddDuration(4 * time.Second)
	str := s.String()
	if str == "" {
		t.Error("empty String()")
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v, want 3 (seconds)", s.Mean())
	}
}

func TestTimeSeriesRecordAndBin(t *testing.T) {
	start := time.Unix(0, 0)
	ts := NewTimeSeries(start)
	ts.Record(start.Add(1*time.Second), 10)
	ts.Record(start.Add(2*time.Second), 20)
	ts.Record(start.Add(11*time.Second), 30)

	pts := ts.Points()
	if len(pts) != 3 {
		t.Fatalf("Points = %d, want 3", len(pts))
	}
	if pts[0].T != time.Second || pts[0].V != 10 {
		t.Errorf("point 0 = %+v", pts[0])
	}

	bins := ts.Bin(10*time.Second, 20*time.Second)
	if len(bins) != 3 {
		t.Fatalf("bins = %d, want 3", len(bins))
	}
	if bins[0] != 15 {
		t.Errorf("bin 0 = %v, want 15", bins[0])
	}
	if bins[1] != 30 {
		t.Errorf("bin 1 = %v, want 30", bins[1])
	}
	// Empty trailing bin repeats previous value.
	if bins[2] != 30 {
		t.Errorf("bin 2 = %v, want 30 (carried)", bins[2])
	}
}

func TestTimeSeriesBinEdgeCases(t *testing.T) {
	ts := NewTimeSeries(time.Unix(0, 0))
	if got := ts.Bin(0, time.Second); got != nil {
		t.Error("zero width did not return nil")
	}
	if got := ts.Bin(time.Second, 0); got != nil {
		t.Error("zero total did not return nil")
	}
	// Points outside the window are ignored.
	ts.Record(time.Unix(100, 0), 5)
	bins := ts.Bin(time.Second, 2*time.Second)
	for _, b := range bins {
		if b != 0 {
			t.Errorf("out-of-window point leaked into bins: %v", bins)
			break
		}
	}
}
