package scenario

import (
	"time"

	"kaas/internal/client"
	"kaas/internal/faults"
	"kaas/internal/netshape"
)

// registry holds the named scenario matrix. Every entry is pure data —
// chaos schedules with fixed cycle counts, trace specs expanded from the
// run seed — so `kaasbench -scenario <name> -seed N` is reproducible by
// construction. All durations in trace and chaos schedules are modeled
// time (compressed by the run's time scale); InvokeTimeout and drain
// timeouts are wall-clock backstops.
//
// The matrix deliberately covers every transport: the in-process control
// plane, the plain and multiplexed wire transports, the shaped link, and
// the federated cluster.
var registry = map[string]Spec{
	"replay-diurnal": {
		Name:        "replay-diurnal",
		Description: "diurnal open-loop trace on the in-process control plane; quiet-path contract: every invocation succeeds",
		Transport:   TransportInProcess,
		Trace: TraceSpec{
			Events: 400,
			Arrivals: ArrivalSpec{
				Kind:      "diurnal",
				Mean:      30 * time.Millisecond,
				Amplitude: 0.6,
				Period:    4 * time.Second,
			},
			Mix: []KernelMix{
				{Kernel: "mci", Weight: 3, MinN: 5e8, MaxN: 2e9},
				{Kernel: "mci", Weight: 1, MinN: 2e9, MaxN: 4e9, Payload: 4 << 10},
			},
		},
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			OutcomesIn{Allowed: []Outcome{OutcomeOK}},
			MinSuccess{Fraction: 1},
			BoundedP99{Max: 10 * time.Second},
		},
	},

	"replay-burst": {
		Name:        "replay-burst",
		Description: "MMPP bursts against admission control; the excess is shed with OVERLOADED, never lost or failed untyped",
		Transport:   TransportInProcess,
		Trace: TraceSpec{
			Events: 500,
			Arrivals: ArrivalSpec{
				Kind:       "mmpp",
				Mean:       40 * time.Millisecond,
				Burst:      3 * time.Millisecond,
				SwitchProb: 0.05,
			},
			Mix: []KernelMix{{Kernel: "mci", Weight: 1, MinN: 1e9, MaxN: 3e9}},
		},
		MaxConcurrent:     64,
		MaxInFlightTotal:  16,
		MaxQueuePerKernel: 8,
		// The MMPP spends half its time in the burst state, where demand is
		// ~10x capacity, so most of the offered load is legitimately shed —
		// and the ok/shed split tracks wall-clock machine speed (admission
		// watches real queues), swinging hard under e.g. the race detector.
		// The bounds are therefore wide: they pin down "work still lands
		// and shedding never becomes a full outage", and the hard contract
		// stays with Accounted/TypedFailures/OutcomesIn — nothing lost,
		// nothing untyped.
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			OutcomesIn{Allowed: []Outcome{OutcomeOK, OutcomeShed}},
			MinSuccess{Fraction: 0.02},
			ShedBounded{MaxFraction: 0.99},
		},
	},

	"replay-heavytail": {
		Name:        "replay-heavytail",
		Description: "Pareto (heavy-tailed) inter-arrivals over the plain wire transport; uncapped, so bursts queue but never fail",
		Transport:   TransportTCP,
		Trace: TraceSpec{
			Events: 400,
			Arrivals: ArrivalSpec{
				Kind:  "pareto",
				Mean:  5 * time.Millisecond,
				Alpha: 1.3,
			},
			Mix: []KernelMix{{Kernel: "mci", Weight: 1, MinN: 5e8, MaxN: 2e9, Payload: 1 << 10}},
		},
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			OutcomesIn{Allowed: []Outcome{OutcomeOK}},
			MinSuccess{Fraction: 1},
			BoundedP99{Max: 10 * time.Second},
		},
	},

	"chaos-flap": {
		Name: "chaos-flap",
		Description: "one of two GPUs flaps three times under sustained load; breakers trip, reopen, and end closed, " +
			"failover keeps clients whole",
		Transport: TransportInProcess,
		Trace: TraceSpec{
			Events:   1600,
			Arrivals: ArrivalSpec{Kind: "poisson", Mean: 10 * time.Millisecond},
			Mix:      []KernelMix{{Kernel: "mci", Weight: 1, MinN: 3e9, MaxN: 5e9}},
		},
		BreakerThreshold:   1,
		BreakerOpenTimeout: time.Second,
		Chaos: Chaos{
			Flaps: []FlapSpec{{
				Device: 1,
				Schedule: faults.FlapSchedule{
					Delay:  3 * time.Second,
					Cycles: 3,
					Down:   1500 * time.Millisecond,
					Up:     2 * time.Second,
				},
			}},
		},
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			MinSuccess{Fraction: 0.9},
			BreakerRecovered{MinTransitions: 3},
			TransitionsComplete{},
		},
	},

	"chaos-link": {
		Name:        "chaos-link",
		Description: "the client link degrades mid-run (50ms RTT, 20% loss) and recovers; latency moves, correctness must not",
		Transport:   TransportShaped,
		BaseLink:    netshape.Profile{RTT: 200 * time.Microsecond, BandwidthBps: 1e9},
		Trace: TraceSpec{
			Events:   400,
			Arrivals: ArrivalSpec{Kind: "poisson", Mean: 25 * time.Millisecond},
			Mix:      []KernelMix{{Kernel: "mci", Weight: 1, MinN: 5e8, MaxN: 2e9, Payload: 32 << 10}},
		},
		Chaos: Chaos{
			// Event-anchored: wire wall latency is not modeled, so a purely
			// modeled offset could fire before any traffic is on the link.
			Link: &LinkSpec{
				AfterEvent: 100,
				Duration:   4 * time.Second,
				Degraded:   netshape.Profile{RTT: 50 * time.Millisecond, BandwidthBps: 2e8, Loss: 0.2},
			},
		},
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			OutcomesIn{Allowed: []Outcome{OutcomeOK}},
			MinSuccess{Fraction: 1},
			BoundedP99{Max: 10 * time.Second},
			TransitionsComplete{},
		},
	},

	"chaos-connkill": {
		Name:        "chaos-connkill",
		Description: "live client connections are severed repeatedly; the retrying client must convert every kill into an eventual success",
		Transport:   TransportTCP,
		Retry: &client.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    100 * time.Millisecond,
		},
		Trace: TraceSpec{
			Events:   500,
			Arrivals: ArrivalSpec{Kind: "poisson", Mean: 20 * time.Millisecond},
			Mix:      []KernelMix{{Kernel: "mci", Weight: 1, MinN: 5e8, MaxN: 2e9}},
		},
		Chaos: Chaos{
			// Event-anchored so every kill lands while connections carry
			// live streams.
			ConnKills: &ConnKillSpec{
				AfterEvent: 50,
				Every:      1500 * time.Millisecond,
				Kills:      6,
			},
		},
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			OutcomesIn{Allowed: []Outcome{OutcomeOK}},
			MinSuccess{Fraction: 1},
			TransitionsComplete{},
		},
	},

	"drain-midload": {
		Name:        "drain-midload",
		Description: "graceful drain halfway through the trace; in-flight work completes, later arrivals get the typed draining error",
		Transport:   TransportInProcess,
		Trace: TraceSpec{
			Events:   400,
			Arrivals: ArrivalSpec{Kind: "poisson", Mean: 25 * time.Millisecond},
			Mix:      []KernelMix{{Kernel: "mci", Weight: 1, MinN: 5e8, MaxN: 2e9}},
		},
		Chaos: Chaos{
			// Event-anchored halfway point: everything issued before the
			// drain completes ok, the rest gets the typed draining error.
			Drain: &DrainSpec{AfterEvent: 200, Timeout: 20 * time.Second},
		},
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			OutcomesIn{Allowed: []Outcome{OutcomeOK, OutcomeDraining}},
			MinSuccess{Fraction: 0.3},
			DrainClean{},
			TransitionsComplete{},
		},
	},

	"mux-storm": {
		Name:        "mux-storm",
		Description: "dense load over the multiplexed wire transport while a device flaps; streams share conns, failures stay typed",
		Transport:   TransportMux,
		MuxConns:    4,
		Trace: TraceSpec{
			Events:   1200,
			Arrivals: ArrivalSpec{Kind: "poisson", Mean: 10 * time.Millisecond},
			Mix:      []KernelMix{{Kernel: "mci", Weight: 1, MinN: 3e9, MaxN: 5e9}},
		},
		BreakerThreshold:   1,
		BreakerOpenTimeout: time.Second,
		Chaos: Chaos{
			// Fully event-driven: by event 300 the autoscaler has warm
			// runners on both devices and the mux streams are saturated,
			// and event-counted down/up windows guarantee the flap overlaps
			// in-flight work whatever the machine speed (wire wall latency
			// is not modeled).
			Flaps: []FlapSpec{{
				Device:     1,
				AfterEvent: 300,
				DownEvents: 150,
				UpEvents:   150,
				Schedule:   faults.FlapSchedule{Cycles: 2},
			}},
		},
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			MinSuccess{Fraction: 0.9},
			BreakerRecovered{MinTransitions: 2},
			TransitionsComplete{},
		},
	},

	"oob-lease-revoke": {
		Name: "oob-lease-revoke",
		Description: "zero-copy leases over the mux while a device flaps; each breaker-open revokes the leased arena " +
			"windows mid-load and clients must degrade to in-band transfer without surfacing a single error",
		Transport: TransportMux,
		MuxConns:  4,
		OOB:       true,
		Trace: TraceSpec{
			Events:   1200,
			Arrivals: ArrivalSpec{Kind: "poisson", Mean: 10 * time.Millisecond},
			// Every event carries a payload, so every stream wants a leased
			// window and the revocations always have victims.
			Mix: []KernelMix{{Kernel: "mci", Weight: 1, MinN: 3e9, MaxN: 5e9, Payload: 32 << 10}},
		},
		BreakerThreshold:   1,
		BreakerOpenTimeout: time.Second,
		Chaos: Chaos{
			// Same event-driven flap shape as mux-storm: by event 300 the
			// mux conns hold negotiated leases, and each of the two
			// breaker-open transitions revokes them with streams in flight.
			Flaps: []FlapSpec{{
				Device:     1,
				AfterEvent: 300,
				DownEvents: 150,
				UpEvents:   150,
				Schedule:   faults.FlapSchedule{Cycles: 2},
			}},
		},
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			MinSuccess{Fraction: 0.9},
			BoundedP99{Max: 10 * time.Second},
			BreakerRecovered{MinTransitions: 2},
			TransitionsComplete{},
			OOBServed{Min: 1},
			LeasesRevoked{Min: 1},
		},
	},

	"cluster-failover": {
		Name:        "cluster-failover",
		Description: "one of two federated hosts shuts down mid-load; cluster rerouting makes the loss invisible to every client",
		Transport:   TransportCluster,
		Hosts:       2,
		GPUs:        1,
		Trace: TraceSpec{
			Events:   300,
			Arrivals: ArrivalSpec{Kind: "poisson", Mean: 30 * time.Millisecond},
			Mix:      []KernelMix{{Kernel: "mci", Weight: 1, MinN: 5e8, MaxN: 2e9}},
		},
		Chaos: Chaos{
			HostDown: &HostDownSpec{Host: 0, At: 4 * time.Second, Timeout: 20 * time.Second},
		},
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			OutcomesIn{Allowed: []Outcome{OutcomeOK}},
			MinSuccess{Fraction: 1},
			DrainClean{},
			TransitionsComplete{},
		},
	},

	"node-kill-midload": {
		Name: "node-kill-midload",
		Description: "three wire-joined kaasd nodes under sustained load; one is killed abruptly at peak — the control plane " +
			"must detect the death, fail in-flight work over, and keep routing around the corpse",
		Transport: TransportNodes,
		Hosts:     3,
		GPUs:      2,
		Trace: TraceSpec{
			Events:   600,
			Arrivals: ArrivalSpec{Kind: "poisson", Mean: 10 * time.Millisecond},
			Mix:      []KernelMix{{Kernel: "mci", Weight: 1, MinN: 5e8, MaxN: 2e9}},
		},
		Chaos: Chaos{
			// Event-anchored at the halfway point so the kill lands with
			// requests in flight on the dying node, whatever the machine
			// speed.
			NodeKill: &NodeKillSpec{Node: 2, AfterEvent: 300},
		},
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			MinSuccessExclShed{Fraction: 0.99},
			BoundedP99{Max: 10 * time.Second},
			FailedOver{Min: 1},
			TransitionsComplete{},
		},
	},

	"node-drain-handoff": {
		Name: "node-drain-handoff",
		Description: "two wire-joined kaasd nodes; one drains gracefully mid-load — gossip broadcasts the drain, routing hands " +
			"off to the survivor, and no caller ever sees an error",
		Transport: TransportNodes,
		Hosts:     2,
		GPUs:      2,
		Trace: TraceSpec{
			Events:   400,
			Arrivals: ArrivalSpec{Kind: "poisson", Mean: 15 * time.Millisecond},
			Mix:      []KernelMix{{Kernel: "mci", Weight: 1, MinN: 5e8, MaxN: 2e9}},
		},
		Chaos: Chaos{
			HostDown: &HostDownSpec{Host: 0, AfterEvent: 200, Timeout: 20 * time.Second},
		},
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			OutcomesIn{Allowed: []Outcome{OutcomeOK}},
			MinSuccess{Fraction: 1},
			DrainClean{},
			TransitionsComplete{},
		},
	},

	"noisy-neighbor": {
		Name: "noisy-neighbor",
		Description: "one aggressor tenant offers ~10x the victims' load into a saturated server; weighted fair queueing " +
			"must preserve the victims' success rate and tail latency while the sheds land on the aggressor",
		Transport: TransportInProcess,
		Trace: TraceSpec{
			// Inter-arrivals are hundreds of modeled milliseconds so the
			// open-loop replay can pace them in wall time (at the test
			// time scale that is ~200µs between timer fires, comfortably
			// above timer overhead even under the race detector). Tighter
			// spacing collapses into a machine-speed flood that lands
			// before the first cold start finishes, and then only queue
			// structure — not scheduling — decides the outcomes.
			Events: 650,
			Arrivals: ArrivalSpec{
				Kind: "poisson",
				Mean: 400 * time.Millisecond,
			},
			// The aggressor draws ~10x the weight of either victim, so
			// ~10/12 of the trace is its flood. Per-request device time is
			// 3-5 modeled seconds, so the aggressor's ~2.1/s offered rate
			// saturates its own in-flight cap while each victim's ~0.2/s
			// sits far below its fair third of capacity — fairness must
			// keep the victims whole.
			Mix: []KernelMix{
				{Kernel: "mci", Weight: 10, MinN: 3e11, MaxN: 5e11, Tenant: "aggressor"},
				{Kernel: "mci", Weight: 1, MinN: 3e11, MaxN: 5e11, Tenant: "victim-a"},
				{Kernel: "mci", Weight: 1, MinN: 3e11, MaxN: 5e11, Tenant: "victim-b"},
			},
		},
		MaxConcurrent:    64,
		MaxInFlightTotal: 8,
		// Per-tenant bounds do the isolating: the aggressor pins its
		// in-flight cap, overflows its own queue bound, and absorbs the
		// sheds, while the victims' thin streams fit inside their caps.
		// Weights are equal — the point is per-tenant flow queues, not a
		// privileged victim. The anti-neutering test runs this same spec
		// with DisableFairQueueing: the flat gate sheds whoever arrives at
		// a full server, so the victim floors and the aggressor's shed
		// share must fail there.
		TenantWeights:        map[string]float64{"aggressor": 1, "victim-a": 1, "victim-b": 1},
		MaxInFlightPerTenant: 4,
		MaxQueuePerTenant:    8,
		StickinessBound:      4,
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			OutcomesIn{Allowed: []Outcome{OutcomeOK, OutcomeShed}},
			TenantMinSuccess{Tenant: "victim-a", Fraction: 0.95},
			TenantMinSuccess{Tenant: "victim-b", Fraction: 0.95},
			TenantBoundedP99{Tenant: "victim-a", Max: 10 * time.Second},
			TenantBoundedP99{Tenant: "victim-b", Max: 10 * time.Second},
			ShedsChargedTo{Tenant: "aggressor", MinShare: 0.9},
		},
	},

	"diurnal-scale-to-zero": {
		Name: "diurnal-scale-to-zero",
		Description: "sparse diurnal trace against scale-to-zero, the compiled-artifact cache, and predictive pre-warm; " +
			"idle capacity is released, repeat boots skip the JIT, and no invocation is lost to the churn",
		Transport: TransportInProcess,
		Trace: TraceSpec{
			// Mean inter-arrival gap (90s modeled) is 3x the keepalive
			// window, so most gaps scale the kernel to zero and every
			// boot after the first is a cache-hit reboot. Four diurnal
			// periods give the pre-warm estimator dense daytime stretches
			// to learn from and sparse nighttime stretches to predict.
			Events: 80,
			Arrivals: ArrivalSpec{
				Kind:      "diurnal",
				Mean:      90 * time.Second,
				Amplitude: 0.5,
				Period:    1800 * time.Second,
			},
			Mix: []KernelMix{{Kernel: "mci", Weight: 1, MinN: 5e8, MaxN: 2e9}},
		},
		// All modeled time, and every window is far above the worst-case
		// timer granularity (a few modeled seconds at the default time
		// scale), so reap/pre-warm/cache-hit counts clear their floors on
		// any machine: runners idle out after 30s, sweeps land every 10s,
		// and speculative boots fire 15s ahead of the predicted arrival.
		KeepAliveIdle:      30 * time.Second,
		KeepAliveSweep:     10 * time.Second,
		PreWarmLead:        15 * time.Second,
		ArtifactCacheBytes: 64 << 20,
		Invariants: []Invariant{
			Accounted{},
			TypedFailures{},
			OutcomesIn{Allowed: []Outcome{OutcomeOK}},
			MinSuccess{Fraction: 1},
			BoundedP99{Max: 10 * time.Second},
			ScaledToZero{MinReaps: 3},
			CacheWarmed{MinHits: 3},
			PreWarmed{Min: 1},
		},
	},
}
