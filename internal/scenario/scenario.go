package scenario

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kaas"
	"kaas/internal/accel"
	"kaas/internal/artifact"
	"kaas/internal/client"
	"kaas/internal/core"
	"kaas/internal/cplane"
	"kaas/internal/faults"
	"kaas/internal/kernels"
	"kaas/internal/netshape"
	"kaas/internal/shm"
	"kaas/internal/vclock"
	"kaas/internal/workload"
)

// Transport selects the invocation path a scenario exercises.
type Transport string

// Transports.
const (
	// TransportInProcess invokes core.Server directly — the control
	// plane without a wire in front of it.
	TransportInProcess Transport = "inproc"
	// TransportTCP goes through the full wire protocol over one-shot
	// pooled connections.
	TransportTCP Transport = "tcp"
	// TransportMux goes over the multiplexed wire transport.
	TransportMux Transport = "mux"
	// TransportShaped goes over TCP with a modeled network link in
	// front, so link chaos has something to degrade.
	TransportShaped Transport = "shaped"
	// TransportCluster invokes through a federated multi-host Cluster.
	TransportCluster Transport = "cluster"
	// TransportNodes invokes through the wire-backed cluster control
	// plane: Hosts kaasd platforms joined into one gossip cluster, with a
	// cplane.Router dispatching over the wire and failing work over
	// across nodes under a shared retry budget.
	TransportNodes Transport = "nodes"
)

// Spec is a complete scenario: the workload, the platform shape, the
// chaos schedule, and the invariants that must hold.
type Spec struct {
	// Name and Description identify the scenario in listings.
	Name, Description string
	// Transport is the invocation path.
	Transport Transport
	// Trace describes the synthetic workload. When an external trace is
	// replayed instead (kaasbench -scenario-trace), it replaces this.
	Trace TraceSpec
	// GPUs is the accelerator count per host (default 2).
	GPUs int
	// Hosts is the cluster host count (cluster transport only,
	// default 2).
	Hosts int
	// MaxConcurrent caps in-flight replay invocations (default 32).
	MaxConcurrent int
	// MaxInFlightTotal and MaxQueuePerKernel configure admission
	// control (0 = uncapped).
	MaxInFlightTotal, MaxQueuePerKernel int
	// TenantWeights enables weighted fair queueing across the trace's
	// tenants (absent tenants get weight 1).
	TenantWeights map[string]float64
	// MaxInFlightPerTenant and MaxQueuePerTenant bound each tenant's
	// concurrent and queued load (0 = uncapped); the excess is shed with
	// OVERLOADED charged to the offending tenant.
	MaxInFlightPerTenant, MaxQueuePerTenant int
	// StickinessBound caps consecutive warm-runner fairness bypasses
	// (0 = core default, negative disables stickiness).
	StickinessBound int
	// DisableFairQueueing forces the flat FCFS admission path even with
	// tenant knobs set — the anti-neutering check runs the noisy-neighbor
	// scenario with this on and expects its invariants to fail.
	DisableFairQueueing bool
	// BreakerThreshold and BreakerOpenTimeout configure the device
	// circuit breakers (0 = core defaults).
	BreakerThreshold   int
	BreakerOpenTimeout time.Duration
	// KeepAliveIdle enables scale-to-zero when positive: idle runners
	// release their device slots after this much modeled time.
	// KeepAliveSweep is the reaper cadence (0 = idle/2).
	KeepAliveIdle, KeepAliveSweep time.Duration
	// PreWarmLead enables predictive pre-warming when positive: once a
	// kernel scales to zero, a speculative runner boots this much
	// modeled time before the predicted next arrival.
	PreWarmLead time.Duration
	// ArtifactCacheBytes enables the content-addressed compiled-kernel
	// cache with this byte budget when positive, so repeat cold starts
	// skip the modeled JIT compile (cached-cold).
	ArtifactCacheBytes int64
	// OOB enables the zero-copy out-of-band data plane (mux transport
	// only): the server fronts a pooled tensor arena, the client
	// negotiates per-stream leases, and breaker-open/drain revoke them
	// mid-load. ArenaBytes is the arena budget (0 = 256 MiB).
	OOB        bool
	ArenaBytes int64
	// Retry enables client retries (tcp transports); its Seed is
	// re-derived from the scenario seed at run time.
	Retry *client.RetryPolicy
	// RetryBudgetCapacity and RetryBudgetRatio shape the shared
	// cross-host retry budget of the nodes transport (0 = a generous
	// 256-token bucket refilled at half a token per success — wide enough
	// that legitimate failover is never clipped, finite so a storm is).
	RetryBudgetCapacity, RetryBudgetRatio float64
	// MuxConns is the mux pool size (mux transport, default 4).
	MuxConns int
	// BaseLink is the healthy link profile (shaped transport).
	BaseLink netshape.Profile
	// InvokeTimeout bounds each invocation in wall time (default 30s) —
	// the backstop that keeps a wedged invocation from hanging the run.
	InvokeTimeout time.Duration
	// Chaos is the fault schedule.
	Chaos Chaos
	// Invariants are the pass/fail properties checked after the run.
	Invariants []Invariant
}

// withDefaults fills the zero-valued knobs.
func (s Spec) withDefaults() Spec {
	if s.GPUs <= 0 {
		s.GPUs = 2
	}
	if s.Hosts <= 0 {
		s.Hosts = 2
	}
	if s.MaxConcurrent <= 0 {
		s.MaxConcurrent = 32
	}
	if s.MuxConns <= 0 {
		s.MuxConns = 4
	}
	if s.InvokeTimeout <= 0 {
		s.InvokeTimeout = 30 * time.Second
	}
	return s
}

// errSpec builds a scenario configuration error.
func errSpec(format string, args ...any) error {
	return fmt.Errorf("scenario: "+format, args...)
}

// Verdict is one invariant's outcome for a run.
type Verdict struct {
	Invariant string `json:"invariant"`
	Pass      bool   `json:"pass"`
	Detail    string `json:"detail,omitempty"`
}

// Result reports one scenario run. The fields rendered by
// DeterministicLines are identical across same-seed runs; the rest
// (latencies, outcome splits, wall time) depend on real scheduling and
// are diagnostics for the JSON report.
type Result struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Transport   string `json:"transport"`
	Seed        int64  `json:"seed"`
	Events      int    `json:"events"`
	Fingerprint string `json:"trace_fingerprint"`
	// ScriptedTransitions is the chaos transition count the spec
	// scripts (deterministic); ObservedTransitions is what actually ran.
	ScriptedTransitions int       `json:"scripted_transitions"`
	Verdicts            []Verdict `json:"verdicts"`
	Passed              bool      `json:"passed"`

	Issued              int                 `json:"issued"`
	Counts              map[string]int      `json:"counts"`
	ObservedTransitions int                 `json:"observed_transitions"`
	BreakerTransitions  uint64              `json:"breaker_transitions"`
	Failover            *cplane.RouterStats `json:"failover,omitempty"`
	LatencyMS           map[string]float64  `json:"latency_ms,omitempty"`
	WallMS              float64             `json:"wall_ms"`
}

// DeterministicLines renders the reproducible output surface: everything
// here is a pure function of (scenario, seed), so two same-seed runs must
// print byte-identical lines — that is the contract `kaasbench -scenario`
// CI reproducibility checks diff.
func (r *Result) DeterministicLines() []string {
	lines := []string{
		fmt.Sprintf("scenario %s: transport=%s seed=%d", r.Scenario, r.Transport, r.Seed),
		fmt.Sprintf("  trace: %d events, fingerprint %s", r.Events, r.Fingerprint),
		fmt.Sprintf("  chaos: %d scripted transitions", r.ScriptedTransitions),
	}
	for _, v := range r.Verdicts {
		s := "PASS"
		if !v.Pass {
			s = "FAIL — " + v.Detail
		}
		lines = append(lines, fmt.Sprintf("  invariant %s: %s", v.Invariant, s))
	}
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	lines = append(lines, fmt.Sprintf("  result: %s", verdict))
	return lines
}

// kernelNames returns the distinct kernels of a trace, in first-seen
// order.
func kernelNames(t Trace) []string {
	seen := map[string]bool{}
	var names []string
	for _, e := range t {
		if !seen[e.Kernel] {
			seen[e.Kernel] = true
			names = append(names, e.Kernel)
		}
	}
	return names
}

// harness is an assembled transport: an invoke function plus the chaos
// targets and teardown for whatever was built.
type harness struct {
	invoke func(ctx context.Context, e Event) error
	env    *chaosEnv
	stats  func() []core.Stats
	// failover snapshots the cluster router's dispatch counters (nodes
	// transport only, nil elsewhere).
	failover func() cplane.RouterStats
	cleanup  []func()
}

func (h *harness) close() {
	for i := len(h.cleanup) - 1; i >= 0; i-- {
		h.cleanup[i]()
	}
}

// Run executes the scenario with the given seed and time scale and
// returns its result. Harness failures (invalid spec, setup errors)
// return an error; invariant failures are verdicts in the result.
func Run(ctx context.Context, spec Spec, seed int64, scale float64) (*Result, error) {
	spec = spec.withDefaults()
	if scale <= 0 {
		return nil, errSpec("time scale must be positive, got %g", scale)
	}
	trace, err := Synthesize(spec.Trace, seed)
	if err != nil {
		return nil, err
	}
	return RunTrace(ctx, spec, trace, seed, scale)
}

// RunTrace executes the scenario against an explicit trace (synthesized
// by Run, or loaded from a CSV recording).
func RunTrace(ctx context.Context, spec Spec, trace Trace, seed int64, scale float64) (*Result, error) {
	spec = spec.withDefaults()
	if len(trace) == 0 {
		return nil, errSpec("empty trace")
	}
	clock := vclock.Scaled(scale)
	h, err := buildHarness(spec, trace, clock, seed, scale)
	if err != nil {
		return nil, err
	}
	defer h.close()

	var (
		mu      sync.Mutex
		issued  atomic.Int64
		records []Record
	)
	// AfterEvent chaos triggers anchor to this counter, so it must be
	// visible to the injectors before they start.
	h.env.issued = func() int { return int(issued.Load()) }

	chaos, err := spec.Chaos.start(ctx, h.env, seed)
	if err != nil {
		return nil, err
	}

	task := func(tctx context.Context, i int) (time.Duration, error) {
		issued.Add(1)
		e := trace[i]
		ictx, cancel := context.WithTimeout(tctx, spec.InvokeTimeout)
		t0 := time.Now()
		err := h.invoke(ictx, e)
		d := time.Since(t0)
		cancel()
		rec := Record{Index: i, Outcome: Classify(err), Latency: d, Tenant: core.NormalizeTenant(e.Tenant)}
		if err != nil {
			rec.Err = err.Error()
		}
		mu.Lock()
		records = append(records, rec)
		mu.Unlock()
		// Errors are classified above, never surfaced to the replay: the
		// arrival process must keep firing through chaos.
		return d, nil
	}

	wallStart := time.Now()
	if _, err := workload.Replay(ctx, clock, trace.Offsets(), spec.MaxConcurrent, task); err != nil {
		chaos.wg.Wait()
		return nil, fmt.Errorf("scenario %s: replay: %w", spec.Name, err)
	}
	chaos.wg.Wait()
	wall := time.Since(wallStart)
	for _, cerr := range chaos.errs {
		return nil, fmt.Errorf("scenario %s: chaos injector: %w", spec.Name, cerr)
	}

	stats := h.stats()
	data := &RunData{
		Seed:                seed,
		Issued:              int(issued.Load()),
		Records:             records,
		Counts:              map[Outcome]int{},
		Stats:               stats,
		ScriptedTransitions: spec.Chaos.Transitions(),
		ObservedTransitions: chaos.transitions(),
		Drained:             chaos.drained,
		DrainErr:            chaos.drainErr,
	}
	if h.failover != nil {
		fs := h.failover()
		data.Failover = &fs
	}
	sort.Slice(data.Records, func(i, j int) bool { return data.Records[i].Index < data.Records[j].Index })
	for _, r := range data.Records {
		data.Counts[r.Outcome]++
	}
	for _, st := range stats {
		for _, dev := range st.PerDevice {
			data.BreakerTransitions += dev.BreakerTransitions
		}
	}

	res := &Result{
		Scenario:            spec.Name,
		Description:         spec.Description,
		Transport:           string(spec.Transport),
		Seed:                seed,
		Events:              len(trace),
		Fingerprint:         trace.Fingerprint(),
		ScriptedTransitions: data.ScriptedTransitions,
		Passed:              true,
		Issued:              data.Issued,
		Counts:              map[string]int{},
		ObservedTransitions: data.ObservedTransitions,
		BreakerTransitions:  data.BreakerTransitions,
		Failover:            data.Failover,
		WallMS:              float64(wall) / float64(time.Millisecond),
	}
	for out, n := range data.Counts {
		res.Counts[string(out)] = n
	}
	if lat := okLatencies(records); len(lat) > 0 {
		res.LatencyMS = map[string]float64{
			"p50": percentileMS(lat, 0.50),
			"p95": percentileMS(lat, 0.95),
			"p99": percentileMS(lat, 0.99),
		}
	}
	for _, inv := range spec.Invariants {
		v := Verdict{Invariant: inv.Name(), Pass: true}
		if err := inv.Check(data); err != nil {
			v.Pass = false
			v.Detail = err.Error()
			res.Passed = false
		}
		res.Verdicts = append(res.Verdicts, v)
	}
	return res, nil
}

// okLatencies returns the sorted wall latencies of successful records.
func okLatencies(records []Record) []time.Duration {
	var out []time.Duration
	for _, r := range records {
		if r.Outcome == OutcomeOK {
			out = append(out, r.Latency)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// percentileMS reads percentile p (nearest rank) from sorted latencies,
// in ms.
func percentileMS(sorted []time.Duration, p float64) float64 {
	return float64(sorted[rankIndex(len(sorted), p)]) / float64(time.Millisecond)
}

// buildHarness assembles the transport the spec asks for.
func buildHarness(spec Spec, trace Trace, clock vclock.Clock, seed int64, scale float64) (*harness, error) {
	// Register the union of the spec's mix and the trace's kernels, so
	// externally loaded traces work without editing the scenario.
	names := kernelNames(trace)
	switch spec.Transport {
	case TransportCluster:
		return buildCluster(spec, names, clock, scale)
	case TransportNodes:
		return buildNodes(spec, names, clock, scale)
	case TransportInProcess, TransportTCP, TransportMux, TransportShaped:
		return buildServer(spec, names, clock, seed)
	default:
		return nil, errSpec("unknown transport %q", spec.Transport)
	}
}

// buildServer assembles the single-host transports: a core.Server with
// the spec's admission/breaker shape, optionally fronted by the wire
// protocol (plain, multiplexed, or behind a modeled link), with chaos
// hooks wired to whatever exists on the chosen path.
func buildServer(spec Spec, names []string, clock vclock.Clock, seed int64) (*harness, error) {
	h := &harness{}
	profiles := make([]accel.Profile, spec.GPUs)
	for i := range profiles {
		profiles[i] = accel.TeslaP100
	}
	host, err := accel.NewHost(clock, "scenario", accel.XeonE52698, profiles...)
	if err != nil {
		return nil, err
	}
	h.cleanup = append(h.cleanup, host.Close)
	var cache *artifact.Cache
	if spec.ArtifactCacheBytes > 0 {
		cache = artifact.NewCache(spec.ArtifactCacheBytes)
	}
	srv, err := core.New(core.Config{
		Clock:                clock,
		Host:                 host,
		MaxInFlightTotal:     spec.MaxInFlightTotal,
		MaxQueuePerKernel:    spec.MaxQueuePerKernel,
		TenantWeights:        spec.TenantWeights,
		MaxInFlightPerTenant: spec.MaxInFlightPerTenant,
		MaxQueuePerTenant:    spec.MaxQueuePerTenant,
		StickinessBound:      spec.StickinessBound,
		DisableFairQueueing:  spec.DisableFairQueueing,
		BreakerThreshold:     spec.BreakerThreshold,
		BreakerOpenTimeout:   spec.BreakerOpenTimeout,
		KeepAlive: core.KeepAlive{
			Idle:        spec.KeepAliveIdle,
			SweepEvery:  spec.KeepAliveSweep,
			PreWarmLead: spec.PreWarmLead,
		},
		Artifacts:      cache,
		DisableCompute: true,
	})
	if err != nil {
		h.close()
		return nil, err
	}
	h.cleanup = append(h.cleanup, srv.Close)
	for _, name := range names {
		k, err := kernels.ByName(name)
		if err != nil {
			h.close()
			return nil, err
		}
		if err := srv.Register(k); err != nil {
			h.close()
			return nil, err
		}
	}
	h.env = &chaosEnv{clock: clock, drain: srv.Drain}
	for _, d := range host.Devices() {
		h.env.devices = append(h.env.devices, d)
	}
	h.stats = func() []core.Stats { return []core.Stats{srv.Stats()} }

	if spec.Transport == TransportInProcess {
		h.invoke = func(ctx context.Context, e Event) error {
			_, _, err := srv.Invoke(ctx, e.Kernel, &kernels.Request{
				Params: kernels.Params{"n": e.N},
				Data:   make([]byte, e.Payload),
				Tenant: e.Tenant,
			})
			return err
		}
		return h, nil
	}

	// Wire transports share the TCP server; conn-kill chaos needs the
	// fault-injecting listener in front of it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.close()
		return nil, err
	}
	var (
		tcpOpts []core.TCPOption
		arena   *shm.ArenaPool
	)
	if spec.OOB {
		// Leases ride the v2 mux; a one-shot connection has no stream to
		// pin one to.
		if spec.Transport != TransportMux {
			h.close()
			return nil, errSpec("OOB needs the mux transport, got %q", spec.Transport)
		}
		if ok, reason := shm.Supported(); !ok {
			h.close()
			return nil, errSpec("OOB data plane unavailable: %s", reason)
		}
		bytes := spec.ArenaBytes
		if bytes <= 0 {
			bytes = 256 << 20
		}
		arena = shm.NewArenaPool(bytes)
		tcpOpts = append(tcpOpts, core.WithArenaPool(arena))
	}
	fln := faults.Wrap(ln, faults.Script())
	tcp, err := core.ServeTCPListener(srv, fln, shm.NewRegistry(1<<30), tcpOpts...)
	if err != nil {
		ln.Close()
		h.close()
		return nil, err
	}
	h.cleanup = append(h.cleanup, func() { tcp.Close() })
	h.env.listener = fln

	var opts []client.Option
	if spec.Retry != nil {
		p := *spec.Retry
		p.Seed = seed ^ 0x7265747279 // sub-seed: "retry"
		opts = append(opts, client.WithRetryPolicy(p))
	}
	switch spec.Transport {
	case TransportMux:
		opts = append(opts, client.WithMux(spec.MuxConns))
		if arena != nil {
			opts = append(opts, client.WithArena(arena))
		}
	case TransportShaped:
		if err := spec.BaseLink.Validate(); err != nil {
			h.close()
			return nil, errSpec("shaped transport base link: %v", err)
		}
		link, err := netshape.NewLinkProfile(clock, spec.BaseLink)
		if err != nil {
			h.close()
			return nil, err
		}
		h.env.link = link
		opts = append(opts, client.WithLink(link))
	}
	c := client.Dial(tcp.Addr(), opts...)
	h.cleanup = append(h.cleanup, c.Close)
	h.invoke = func(ctx context.Context, e Event) error {
		_, err := c.InvokeTenantContext(ctx, e.Tenant, e.Kernel, kernels.Params{"n": e.N}, make([]byte, e.Payload))
		return err
	}
	return h, nil
}

// tenantOptions translates the spec's fairness knobs into platform
// options for the multi-host transports.
func tenantOptions(spec Spec) []kaas.Option {
	var opts []kaas.Option
	if len(spec.TenantWeights) > 0 {
		opts = append(opts, kaas.WithTenantWeights(spec.TenantWeights))
	}
	if spec.MaxInFlightPerTenant > 0 || spec.MaxQueuePerTenant > 0 {
		opts = append(opts, kaas.WithTenantLimits(spec.MaxInFlightPerTenant, spec.MaxQueuePerTenant))
	}
	if spec.StickinessBound != 0 {
		opts = append(opts, kaas.WithStickinessBound(spec.StickinessBound))
	}
	if spec.DisableFairQueueing {
		opts = append(opts, kaas.WithoutFairQueueing())
	}
	return opts
}

// buildCluster assembles the federated transport: Hosts platforms with
// the spec's device shape behind one Cluster, host-down chaos wired to
// Platform.Shutdown.
func buildCluster(spec Spec, names []string, clock vclock.Clock, scale float64) (*harness, error) {
	h := &harness{}
	profiles := make([]kaas.DeviceProfile, spec.GPUs)
	for i := range profiles {
		profiles[i] = kaas.TeslaP100
	}
	platforms := make([]*kaas.Platform, spec.Hosts)
	for i := range platforms {
		opts := []kaas.Option{
			kaas.WithTimeScale(scale),
			kaas.WithHostName(fmt.Sprintf("host%d", i)),
			kaas.WithAccelerators(profiles...),
			kaas.WithAdmissionLimits(spec.MaxInFlightTotal, spec.MaxQueuePerKernel),
			kaas.WithBreaker(spec.BreakerThreshold, spec.BreakerOpenTimeout),
			kaas.WithoutResultComputation(),
		}
		opts = append(opts, tenantOptions(spec)...)
		if spec.KeepAliveIdle > 0 {
			opts = append(opts, kaas.WithKeepAlive(spec.KeepAliveIdle, spec.KeepAliveSweep))
		}
		if spec.PreWarmLead > 0 {
			opts = append(opts, kaas.WithPreWarm(spec.PreWarmLead))
		}
		if spec.ArtifactCacheBytes > 0 {
			opts = append(opts, kaas.WithArtifactCache(spec.ArtifactCacheBytes))
		}
		p, err := kaas.New(opts...)
		if err != nil {
			h.close()
			return nil, err
		}
		platforms[i] = p
		h.cleanup = append(h.cleanup, p.Close)
	}
	cluster, err := kaas.NewCluster(platforms...)
	if err != nil {
		h.close()
		return nil, err
	}
	for _, name := range names {
		if err := cluster.RegisterByName(name); err != nil {
			h.close()
			return nil, err
		}
	}
	h.env = &chaosEnv{
		clock: clock,
		hostDown: func(ctx context.Context, host int) error {
			if host < 0 || host >= len(platforms) {
				return errSpec("host-down host %d out of range (cluster has %d)", host, len(platforms))
			}
			return platforms[host].Shutdown(ctx)
		},
	}
	h.stats = func() []core.Stats { return cluster.Stats() }
	h.invoke = func(ctx context.Context, e Event) error {
		_, _, _, err := cluster.Invoke(ctx, e.Kernel, kaas.Params{"n": e.N}, make([]byte, e.Payload))
		return err
	}
	return h, nil
}

// buildNodes assembles the wire-backed cluster transport: Hosts kaasd
// platforms joined into one gossip cluster over MsgControl frames, an
// observer control-plane node tracking their health from the client
// side, and a cplane.Router dispatching every invocation over the wire
// with cross-host failover under a shared retry budget. Node-kill chaos
// closes a platform abruptly (connections die mid-request); host-down
// chaos drains one gracefully.
func buildNodes(spec Spec, names []string, clock vclock.Clock, scale float64) (*harness, error) {
	h := &harness{}
	profiles := make([]kaas.DeviceProfile, spec.GPUs)
	for i := range profiles {
		profiles[i] = kaas.TeslaP100
	}
	platforms := make([]*kaas.Platform, spec.Hosts)
	var seeds []string
	for i := range platforms {
		opts := []kaas.Option{
			kaas.WithTimeScale(scale),
			kaas.WithHostName(fmt.Sprintf("node%d", i)),
			kaas.WithAccelerators(profiles...),
			kaas.WithAdmissionLimits(spec.MaxInFlightTotal, spec.MaxQueuePerKernel),
			kaas.WithBreaker(spec.BreakerThreshold, spec.BreakerOpenTimeout),
			kaas.WithoutResultComputation(),
			kaas.WithListenAddr("127.0.0.1:0"),
			// Every node seeds from the ones before it; gossip converges
			// the rest of the mesh.
			kaas.WithClusterNode(fmt.Sprintf("node%d", i), seeds...),
		}
		opts = append(opts, tenantOptions(spec)...)
		p, err := kaas.New(opts...)
		if err != nil {
			h.close()
			return nil, err
		}
		platforms[i] = p
		h.cleanup = append(h.cleanup, p.Close)
		seeds = append(seeds, p.Addr())
	}

	obs := cplane.NewNode(cplane.Config{Name: "bench-router", Clock: clock})
	h.cleanup = append(h.cleanup, obs.Close)
	for _, p := range platforms {
		obs.Join(p.Addr())
	}
	wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := obs.WaitMembers(wctx, spec.Hosts); err != nil {
		h.close()
		return nil, err
	}

	capacity, ratio := spec.RetryBudgetCapacity, spec.RetryBudgetRatio
	if capacity <= 0 {
		capacity = 256
	}
	if ratio <= 0 {
		ratio = 0.5
	}
	router := cplane.NewRouter(cplane.RouterConfig{
		Node:   obs,
		Budget: client.NewRetryBudget(capacity, ratio),
		// The scenario kernels are pure functions of their parameters, so
		// re-dispatching after an ambiguous connection failure is safe.
		Idempotent: true,
	})
	h.cleanup = append(h.cleanup, router.Close)
	for _, name := range names {
		if err := router.Register(wctx, name); err != nil {
			h.close()
			return nil, err
		}
	}

	h.env = &chaosEnv{
		clock: clock,
		nodeKill: func(node int) error {
			if node < 0 || node >= len(platforms) {
				return errSpec("node-kill node %d out of range (cluster has %d)", node, len(platforms))
			}
			platforms[node].Close()
			return nil
		},
		hostDown: func(ctx context.Context, host int) error {
			if host < 0 || host >= len(platforms) {
				return errSpec("host-down host %d out of range (cluster has %d)", host, len(platforms))
			}
			return platforms[host].Shutdown(ctx)
		},
	}
	h.stats = func() []core.Stats {
		out := make([]core.Stats, len(platforms))
		for i, p := range platforms {
			out[i] = p.Stats()
		}
		return out
	}
	h.failover = router.Stats
	h.invoke = func(ctx context.Context, e Event) error {
		_, err := router.InvokeTenant(ctx, e.Tenant, e.Kernel, kernels.Params{"n": e.N}, make([]byte, e.Payload))
		return err
	}
	return h, nil
}

// List returns the registry's scenario names, sorted.
func List() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns a registered scenario spec by name. The error lists the
// known names so a typo on the command line is self-correcting.
func Lookup(name string) (Spec, error) {
	spec, ok := registry[name]
	if !ok {
		return Spec{}, errSpec("unknown scenario %q (known: %s)", name, strings.Join(List(), ", "))
	}
	return spec, nil
}
