package scenario

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"kaas/internal/faults"
	"kaas/internal/netshape"
	"kaas/internal/vclock"
)

// Chaos composes the named fault injectors a scenario runs alongside its
// trace. Every injector is scripted — fixed cycle counts and modeled-time
// offsets, no wall-clock loops — so the number of injected transitions is
// a pure function of the spec and shows up identically in every run.
//
// Injectors anchor to the run two ways, composable per spec: a modeled
// At offset, and AfterEvent — wait until the replay has issued at least
// that many invocations. Event anchoring is how wire-transport scenarios
// stay aligned with traffic: wire RPC wall latency is not modeled, so at
// high time scales a purely modeled offset can elapse before any traffic
// flows; "after the Nth invocation" cannot.
type Chaos struct {
	// Flaps fail/repair devices on the scripted schedules.
	Flaps []FlapSpec `json:"flaps,omitempty"`
	// Link degrades the client link mid-run (shaped transport only).
	Link *LinkSpec `json:"link,omitempty"`
	// ConnKills severs live client connections (tcp transports only).
	ConnKills *ConnKillSpec `json:"conn_kills,omitempty"`
	// Drain gracefully drains the server mid-load (inproc transport).
	Drain *DrainSpec `json:"drain,omitempty"`
	// HostDown shuts one cluster host down mid-load (cluster and nodes
	// transports).
	HostDown *HostDownSpec `json:"host_down,omitempty"`
	// NodeKill abruptly kills one cluster node mid-load (nodes
	// transport): no drain, no goodbye — connections die mid-request,
	// the way a real node death looks to its peers.
	NodeKill *NodeKillSpec `json:"node_kill,omitempty"`
}

// Transitions returns the total scripted fault-transition count the
// chaos drives when it runs to completion: device fail/repair pairs, the
// link degrade/restore pair, each connection kill, and each shutdown.
// It is printed on the deterministic output surface, so a chaos schedule
// that drifted (lost a goroutine, skipped a cycle) breaks reproducibility
// loudly instead of silently weakening the scenario.
func (c Chaos) Transitions() int {
	n := 0
	for _, f := range c.Flaps {
		n += f.Schedule.Transitions()
	}
	if c.Link != nil {
		n += 2 // degrade + restore
	}
	if c.ConnKills != nil {
		n += c.ConnKills.Kills
	}
	if c.Drain != nil {
		n++
	}
	if c.HostDown != nil {
		n++
	}
	if c.NodeKill != nil {
		n++
	}
	return n
}

// FlapSpec flaps one device by host-device index.
type FlapSpec struct {
	// Device indexes into the host's accelerator devices.
	Device int `json:"device"`
	// AfterEvent defers the schedule until the replay has issued at least
	// this many invocations (see Chaos.AfterEvent semantics).
	AfterEvent int `json:"after_event,omitempty"`
	// DownEvents/UpEvents, when DownEvents > 0, switch the flap windows
	// from the schedule's modeled durations to event counts: the device
	// stays failed while DownEvents invocations are issued, then healthy
	// for UpEvents, for Schedule.Cycles cycles. Wire-transport scenarios
	// need this — their traffic progresses on unmodeled wall time, so only
	// event-counted windows are guaranteed to overlap in-flight work.
	DownEvents int `json:"down_events,omitempty"`
	UpEvents   int `json:"up_events,omitempty"`
	// Schedule scripts the fail/repair cycles (modeled-time mode), or just
	// the cycle count (event mode).
	Schedule faults.FlapSchedule `json:"schedule"`
}

// LinkSpec degrades the client link to the Degraded profile At after the
// run starts and restores the original profile Duration later — the
// "network turns bad mid-run" injector for the shaped transport.
type LinkSpec struct {
	AfterEvent int              `json:"after_event,omitempty"`
	At         time.Duration    `json:"at"`
	Duration   time.Duration    `json:"duration"`
	Degraded   netshape.Profile `json:"degraded"`
}

// ConnKillSpec severs a random live client connection Kills times,
// starting At and then Every apart (modeled time). Which connection dies
// is drawn from a PRNG sub-seeded from the scenario seed, so the kill
// sequence is reproducible.
type ConnKillSpec struct {
	AfterEvent int           `json:"after_event,omitempty"`
	At         time.Duration `json:"at"`
	Every      time.Duration `json:"every"`
	Kills      int           `json:"kills"`
}

// DrainSpec gracefully drains the server At after the run starts,
// allowing Timeout (wall time) for in-flight work to finish.
type DrainSpec struct {
	AfterEvent int           `json:"after_event,omitempty"`
	At         time.Duration `json:"at"`
	Timeout    time.Duration `json:"timeout"`
}

// HostDownSpec shuts down cluster host Host At after the run starts,
// allowing Timeout (wall time) for its in-flight work to finish. The
// cluster's failover routing should make the loss invisible to clients.
type HostDownSpec struct {
	Host       int           `json:"host"`
	AfterEvent int           `json:"after_event,omitempty"`
	At         time.Duration `json:"at"`
	Timeout    time.Duration `json:"timeout"`
}

// NodeKillSpec kills cluster node Node abruptly once the replay has
// issued AfterEvent invocations (and At of modeled time has passed).
// Unlike HostDownSpec there is no drain and no timeout: the node's
// connections are cut with requests in flight, and the control plane
// must detect the death and re-route around it.
type NodeKillSpec struct {
	Node       int           `json:"node"`
	AfterEvent int           `json:"after_event,omitempty"`
	At         time.Duration `json:"at,omitempty"`
}

// chaosEnv is what the injectors act on; the transport setup in Run
// fills in whichever targets exist for the chosen transport.
type chaosEnv struct {
	clock vclock.Clock
	// devices are the flappable host devices (nil for cluster runs).
	devices []faults.FailRepairer
	// link is the shaped transport's client link.
	link *netshape.Link
	// listener is the fault-injecting listener of tcp transports.
	listener *faults.Listener
	// drain gracefully drains the serving platform.
	drain func(context.Context) error
	// hostDown shuts down one cluster host.
	hostDown func(ctx context.Context, host int) error
	// nodeKill abruptly kills one cluster node (nodes transport).
	nodeKill func(node int) error
	// issued reports how many invocations the replay has dispatched so
	// far — the anchor for AfterEvent triggers.
	issued func() int
}

// chaosRun drives every injector of the spec concurrently and reports
// completion through its WaitGroup; results that invariants consume
// (drain outcome, flapper transition counts) land in the returned state.
type chaosRun struct {
	wg       sync.WaitGroup
	flappers []*faults.DeviceFlapper

	mu        sync.Mutex
	drainErr  error
	drained   bool
	killsDone int
	linkSwaps int
	nodeKills int
	errs      []error
}

// start launches the chaos schedule against env. Injector goroutines end
// on their own once their scripts complete (or promptly when ctx is
// cancelled); wait for them with wg.Wait.
func (c Chaos) start(ctx context.Context, env *chaosEnv, seed int64) (*chaosRun, error) {
	run := &chaosRun{}
	for _, f := range c.Flaps {
		if f.Device < 0 || f.Device >= len(env.devices) {
			return nil, errSpec("flap device %d out of range (host has %d)", f.Device, len(env.devices))
		}
		flapper := faults.NewDeviceFlapper(env.devices[f.Device])
		run.flappers = append(run.flappers, flapper)
		schedule := f.Schedule
		run.wg.Add(1)
		spec := f
		go func() {
			defer run.wg.Done()
			if spec.DownEvents > 0 {
				mark := spec.AfterEvent
				for cyc := 0; cyc < schedule.Cycles; cyc++ {
					if !waitEvents(ctx, env, mark) {
						return
					}
					flapper.Fail()
					if !waitEvents(ctx, env, mark+spec.DownEvents) {
						flapper.Repair() // never leave the device failed
						return
					}
					flapper.Repair()
					mark += spec.DownEvents + spec.UpEvents
				}
				return
			}
			if !waitEvents(ctx, env, spec.AfterEvent) {
				return
			}
			if err := flapper.Run(ctx, env.clock, schedule); err != nil {
				run.record(err)
			}
		}()
	}
	if c.Link != nil {
		if env.link == nil {
			return nil, errSpec("link chaos needs the shaped transport")
		}
		spec := *c.Link
		if err := spec.Degraded.Validate(); err != nil {
			return nil, err
		}
		run.wg.Add(1)
		go func() {
			defer run.wg.Done()
			if !waitEvents(ctx, env, spec.AfterEvent) || !waitModeled(ctx, env.clock, spec.At) {
				return
			}
			original := env.link.Profile()
			if err := env.link.SetProfile(spec.Degraded); err != nil {
				run.record(err)
				return
			}
			run.swapLink()
			// Whatever happens (including cancellation mid-degrade),
			// leave the link as we found it.
			defer func() {
				if err := env.link.SetProfile(original); err != nil {
					run.record(err)
					return
				}
				run.swapLink()
			}()
			waitModeled(ctx, env.clock, spec.Duration)
		}()
	}
	if c.ConnKills != nil {
		if env.listener == nil {
			return nil, errSpec("conn-kill chaos needs a tcp transport")
		}
		spec := *c.ConnKills
		if spec.Kills <= 0 {
			return nil, errSpec("conn-kill chaos needs a positive kill count")
		}
		rng := rand.New(rand.NewSource(seed ^ 0x636f6e6e)) // sub-seed: "conn"
		run.wg.Add(1)
		go func() {
			defer run.wg.Done()
			if !waitEvents(ctx, env, spec.AfterEvent) || !waitModeled(ctx, env.clock, spec.At) {
				return
			}
			for i := 0; i < spec.Kills; i++ {
				if i > 0 && !waitModeled(ctx, env.clock, spec.Every) {
					return
				}
				env.listener.CloseRandom(rng)
				run.mu.Lock()
				run.killsDone++
				run.mu.Unlock()
			}
		}()
	}
	if c.Drain != nil {
		if env.drain == nil {
			return nil, errSpec("drain chaos is not supported on this transport")
		}
		spec := *c.Drain
		run.wg.Add(1)
		go func() {
			defer run.wg.Done()
			if !waitEvents(ctx, env, spec.AfterEvent) || !waitModeled(ctx, env.clock, spec.At) {
				return
			}
			dctx, cancel := context.WithTimeout(ctx, spec.Timeout)
			defer cancel()
			err := env.drain(dctx)
			run.mu.Lock()
			run.drained = true
			run.drainErr = err
			run.mu.Unlock()
		}()
	}
	if c.HostDown != nil {
		if env.hostDown == nil {
			return nil, errSpec("host-down chaos needs the cluster transport")
		}
		spec := *c.HostDown
		run.wg.Add(1)
		go func() {
			defer run.wg.Done()
			if !waitEvents(ctx, env, spec.AfterEvent) || !waitModeled(ctx, env.clock, spec.At) {
				return
			}
			dctx, cancel := context.WithTimeout(ctx, spec.Timeout)
			defer cancel()
			err := env.hostDown(dctx, spec.Host)
			run.mu.Lock()
			run.drained = true
			run.drainErr = err
			run.mu.Unlock()
		}()
	}
	if c.NodeKill != nil {
		if env.nodeKill == nil {
			return nil, errSpec("node-kill chaos needs the nodes transport")
		}
		spec := *c.NodeKill
		run.wg.Add(1)
		go func() {
			defer run.wg.Done()
			if !waitEvents(ctx, env, spec.AfterEvent) || !waitModeled(ctx, env.clock, spec.At) {
				return
			}
			if err := env.nodeKill(spec.Node); err != nil {
				run.record(err)
				return
			}
			run.mu.Lock()
			run.nodeKills++
			run.mu.Unlock()
		}()
	}
	return run, nil
}

// record stores a non-nil injector error for the run report.
func (r *chaosRun) record(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	r.errs = append(r.errs, err)
	r.mu.Unlock()
}

// swapLink counts one applied link-profile swap (degrade or restore).
func (r *chaosRun) swapLink() {
	r.mu.Lock()
	r.linkSwaps++
	r.mu.Unlock()
}

// transitions sums the fault transitions the injectors actually drove.
func (r *chaosRun) transitions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.killsDone + r.linkSwaps + r.nodeKills
	for _, f := range r.flappers {
		fails, repairs := f.Cycles()
		n += fails + repairs
	}
	if r.drained {
		n++
	}
	return n
}

// waitEvents blocks until the replay has issued at least n invocations,
// returning false if ctx is done first. It polls the issued counter on a
// short wall-clock tick: the trigger anchors to real traffic progress, so
// modeled time is the wrong clock for it.
func waitEvents(ctx context.Context, env *chaosEnv, n int) bool {
	if n <= 0 {
		return true
	}
	if env.issued == nil {
		return false
	}
	for env.issued() < n {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(200 * time.Microsecond):
		}
	}
	return true
}

// waitModeled blocks for d of modeled time, returning false if ctx is
// done first (same contract as the faults package's scheduler waits).
func waitModeled(ctx context.Context, clock vclock.Clock, d time.Duration) bool {
	if ctx.Err() != nil {
		return false
	}
	if d <= 0 {
		return true
	}
	done := make(chan struct{})
	t := clock.AfterFunc(d, func() { close(done) })
	select {
	case <-ctx.Done():
		t.Stop()
		return false
	case <-done:
		return true
	}
}
